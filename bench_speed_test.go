// Typed hot-path microbenchmarks and allocation gates for the unboxed
// slot protocol and the striped lock table. Paired with BENCH_speed.json,
// the committed per-location-vs-striped sweep (cmd/gstm-loadgen
// -speed-bench).
package gstm_test

import (
	"fmt"
	"testing"

	"gstm/internal/tl2"
)

// BenchmarkTypedReadWrite times the unboxed protocol's two hottest
// operations: a transactional read on the read-only fast path, and an
// in-place rewrite of an already-buffered location — one raw pointer
// moved per access. The whole loop runs inside one transaction so access
// cost, not commit cost, is on the clock.
func BenchmarkTypedReadWrite(b *testing.B) {
	const cells = 1024
	b.Run("unboxed-read", func(b *testing.B) {
		rt := tl2.New(tl2.Config{})
		arr := tl2.NewArray[int64](cells)
		b.ReportAllocs()
		var sum int64
		if err := rt.AtomicRO(0, 0, func(tx *tl2.Tx) error {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum += tl2.ReadAt(tx, arr, i&(cells-1))
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		sinkVal = sum
	})
	b.Run("unboxed-rewrite", func(b *testing.B) {
		rt := tl2.New(tl2.Config{})
		arr := tl2.NewArray[int64](16)
		b.ReportAllocs()
		if err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
			for j := 0; j < 16; j++ {
				tl2.WriteAt(tx, arr, j, int64(j))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i & 15
				tl2.WriteAt(tx, arr, j, int64(i))
				if tl2.ReadAt(tx, arr, j) != int64(i) {
					b.Fatal("buffered read mismatch")
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	})
}

var sinkVal int64 // defeats dead-code elimination of benchmark read loops

// BenchmarkStripedArraySweep compares lock-table modes on short array
// transactions: per-location lock words against striped tables at two
// densities (256 stripes ≈ rare aliasing, 2 stripes = constant aliasing).
// Each iteration is one whole transaction — 8 reads on the read-only path
// or 8 writes through commit — so the striped write numbers include the
// stripe dedup and sorted-acquisition work.
func BenchmarkStripedArraySweep(b *testing.B) {
	const cells = 4096
	for _, mode := range []struct {
		name    string
		stripes int
	}{
		{"per-location", 0},
		{"striped-256", 256},
		{"striped-2", 2},
	} {
		rt := tl2.New(tl2.Config{LockStripes: mode.stripes, PrivateClock: true})
		arr := tl2.NewArray[int64](cells)
		b.Run(fmt.Sprintf("%s/read", mode.name), func(b *testing.B) {
			b.ReportAllocs()
			var sum int64
			for i := 0; i < b.N; i++ {
				base := i * 8
				if err := rt.AtomicRO(0, 0, func(tx *tl2.Tx) error {
					for k := 0; k < 8; k++ {
						sum += tl2.ReadAt(tx, arr, (base+k*511)&(cells-1))
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			sinkVal = sum
		})
		b.Run(fmt.Sprintf("%s/write", mode.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				base := i * 8
				if err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
					for k := 0; k < 8; k++ {
						tl2.WriteAt(tx, arr, (base+k*511)&(cells-1), int64(i))
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTypedReadWriteZeroAllocs is the allocation gate on the unboxed typed
// hot path: a read on the read-only fast path (no read-set append, one
// pointer load and deref) and a buffered rewrite (in-place redo-box
// update) must both run without a single allocation.
func TestTypedReadWriteZeroAllocs(t *testing.T) {
	rt := tl2.New(tl2.Config{})
	arr := tl2.NewArray[int64](64)
	if err := rt.AtomicRO(0, 0, func(tx *tl2.Tx) error {
		var sum int64
		if avg := testing.AllocsPerRun(200, func() {
			for j := 0; j < 64; j++ {
				sum += tl2.ReadAt(tx, arr, j)
			}
		}); avg != 0 {
			t.Errorf("typed read-only sweep = %.2f allocs/op, want 0", avg)
		}
		sinkVal = sum
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
		for j := 0; j < 16; j++ {
			tl2.WriteAt(tx, arr, j, int64(j))
		}
		if avg := testing.AllocsPerRun(200, func() {
			tl2.WriteAt(tx, arr, 7, 99)
			if tl2.ReadAt(tx, arr, 7) != 99 {
				t.Error("buffered read mismatch")
			}
		}); avg != 0 {
			t.Errorf("typed buffered rewrite = %.2f allocs/op, want 0", avg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestStripedArraySweepZeroAllocs is the same gate on a striped runtime:
// hashing addresses onto the stripe table must not add an allocation to
// either the read-only sweep or the buffered rewrite.
func TestStripedArraySweepZeroAllocs(t *testing.T) {
	rt := tl2.New(tl2.Config{LockStripes: 256, PrivateClock: true})
	arr := tl2.NewArray[int64](64)
	if err := rt.AtomicRO(0, 0, func(tx *tl2.Tx) error {
		var sum int64
		if avg := testing.AllocsPerRun(200, func() {
			for j := 0; j < 64; j++ {
				sum += tl2.ReadAt(tx, arr, j)
			}
		}); avg != 0 {
			t.Errorf("striped read-only sweep = %.2f allocs/op, want 0", avg)
		}
		sinkVal = sum
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
		for j := 0; j < 16; j++ {
			tl2.WriteAt(tx, arr, j, int64(j))
		}
		if avg := testing.AllocsPerRun(200, func() {
			tl2.WriteAt(tx, arr, 7, 99)
			if tl2.ReadAt(tx, arr, 7) != 99 {
				t.Error("buffered read mismatch")
			}
		}); avg != 0 {
			t.Errorf("striped buffered rewrite = %.2f allocs/op, want 0", avg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
