package gstm

import (
	"fmt"
	"sync"

	"gstm/internal/guide"
	"gstm/internal/model"
	"gstm/internal/telemetry"
	"gstm/internal/tl2"
	"gstm/internal/trace"
)

// Config parameterizes a System.
type Config struct {
	// Threads is the number of worker threads the application will use.
	// It is metadata recorded in models trained on this system; Run
	// accepts any ThreadID regardless.
	Threads int

	// Interleave, when positive, makes each transactional operation yield
	// the processor with probability 1/Interleave, forcing realistic
	// transaction interleaving on machines with fewer cores than worker
	// threads (see DESIGN.md). Zero disables forced yields.
	Interleave int

	// MaxReadSpin / MaxLockSpin bound the TL2 spin loops; zero means the
	// engine defaults.
	MaxReadSpin int
	MaxLockSpin int

	// EagerWriteLock selects encounter-time write locking instead of TL2's
	// default commit-time (lazy) locking. See tl2.Config.EagerWriteLock.
	EagerWriteLock bool

	// Label names the system's telemetry registration (default "tl2").
	// Sharded deployments label each shard distinctly so GatherTelemetry
	// and the /metrics endpoint can report per-shard series alongside the
	// aggregate.
	Label string

	// PrivateClock gives the system its own TL2 global version clock
	// instead of the process-wide one shared by default. Vars used under a
	// private-clock system must never be touched by transactions of
	// another system. The shard router sets this so unrelated transactions
	// stop contending on one clock cache line.
	PrivateClock bool

	// LockStripes, when positive, selects the striped lock-table engine
	// mode: versioned write-locks live in a fixed cache-line-padded table
	// of that many stripes (rounded up to a power of two) instead of one
	// lock word per location, so Array elements and data-structure nodes
	// share lock metadata. Locations hashing to one stripe conflict
	// falsely but never unsafely. Vars used under a striped system must be
	// used exclusively by it (the same ownership contract as
	// PrivateClock). Zero keeps per-location locks.
	LockStripes int
}

// WatchdogOptions configures the guidance watchdog (see
// guide.WatchdogConfig for field semantics; the zero value selects sound
// defaults).
type WatchdogOptions = guide.WatchdogConfig

// WatchdogSnapshot is a point-in-time view of the watchdog, reported by
// System.Health.
type WatchdogSnapshot = guide.WatchdogSnapshot

// System is an STM instance together with its instrumentation and
// (optionally) a guidance controller — the paper's modified TL2 library.
type System struct {
	cfg Config
	rt  *tl2.Runtime

	mu        sync.Mutex
	collector *trace.Collector // non-nil while profiling/measuring
	ctrl      *guide.Controller
	dog       *guide.Watchdog // non-nil when guidance runs under a watchdog
	schedGate tl2.Gate        // non-guidance scheduler, if any
	schedSink tl2.EventSink   // its observer, if any
	tap       tl2.EventSink   // persistent observer (WAL), survives hot-swaps
}

// Scheduler is consulted at every transaction start and may delay the
// caller; it must eventually return. Guided execution is one Scheduler;
// contention-manager policies (internal/cm) are others. Arrive reports how
// the transaction got through — GatePass (no delay), GateHold (delayed),
// GateEscape (forced through by an escape hatch) — which feeds the gate
// telemetry counters and the variance observatory's gate-phase spans.
type Scheduler = tl2.Gate

// GateOutcome is a Scheduler.Arrive result.
type GateOutcome = telemetry.GateOutcome

// GateOutcome values.
const (
	GatePass   = telemetry.GatePass
	GateHold   = telemetry.GateHold
	GateEscape = telemetry.GateEscape
)

// Observer receives the commit/abort event stream (see tl2.EventSink).
type Observer = tl2.EventSink

// NewSystem returns a System with cfg.
func NewSystem(cfg Config) *System {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	rt := tl2.New(tl2.Config{
		Interleave:     cfg.Interleave,
		MaxReadSpin:    cfg.MaxReadSpin,
		MaxLockSpin:    cfg.MaxLockSpin,
		EagerWriteLock: cfg.EagerWriteLock,
		Label:          cfg.Label,
		PrivateClock:   cfg.PrivateClock,
		LockStripes:    cfg.LockStripes,
	})
	return &System{cfg: cfg, rt: rt}
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// StartProfiling begins capturing the transaction sequence. It composes
// with guidance: when a guidance controller is installed the collector
// receives events through it, so guided runs can be measured too.
func (s *System) StartProfiling() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collector = trace.NewCollector()
	s.installSinks()
}

// StopProfiling finalizes and returns the trace captured since
// StartProfiling, or nil when profiling was not active.
func (s *System) StopProfiling() *Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.collector == nil {
		return nil
	}
	tr := s.collector.Finalize()
	s.collector = nil
	s.installSinks()
	return tr
}

// EnableGuidance validates m, compiles it into a guide table and installs
// the guided-execution gate. It returns ErrGuidanceRejected (wrapped with
// the analyzer's reason) when the model fails validation. Options follow
// the TxOption style of Run: WithTfactor, WithGateRetries, WithWatchdog.
func (s *System) EnableGuidance(m *Model, opts ...GuidanceOption) error {
	set := applyGuidanceOptions(opts)
	an := model.DefaultAnalyzer()
	if set.tfactor > 0 {
		an.Tfactor = set.tfactor
	}
	rep := an.Analyze(m)
	if !rep.Guidable {
		return fmt.Errorf("%w: %s", ErrGuidanceRejected, rep.Reason)
	}
	s.forceGuidance(m, set)
	return nil
}

// ForceGuidance installs guidance without analyzer validation, for
// experiments that deliberately guide unguidable workloads (the paper's
// ssca2 degradation measurements).
func (s *System) ForceGuidance(m *Model, opts ...GuidanceOption) {
	s.forceGuidance(m, applyGuidanceOptions(opts))
}

func (s *System) forceGuidance(m *Model, set guidanceSettings) {
	table := model.Compile(m, set.tfactor)
	gopts := []guide.Option{guide.WithTelemetry(s.rt.Telemetry())}
	if set.gateRetries > 0 {
		gopts = append(gopts, guide.WithGateRetries(set.gateRetries))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl = guide.NewController(table, gopts...)
	s.dog = nil
	if set.watchdog != nil {
		s.dog = guide.NewWatchdog(s.ctrl, *set.watchdog)
	}
	s.schedGate, s.schedSink = nil, nil
	s.installSinks()
	if s.dog != nil {
		s.rt.SetGate(s.dog)
	} else {
		s.rt.SetGate(s.ctrl)
	}
}

// DisableGuidance removes the guided-execution gate (and its watchdog).
func (s *System) DisableGuidance() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl = nil
	s.dog = nil
	s.rt.SetGate(nil)
	s.installSinks()
}

// SetScheduler installs a custom transaction-start scheduler (for example
// a contention-manager policy) with an optional event observer. It
// replaces any guidance controller; pass (nil, nil) to remove. Profiling
// composes: the observer and an active collector both receive events.
func (s *System) SetScheduler(gate Scheduler, obs Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl = nil
	s.dog = nil
	s.schedGate = gate
	s.schedSink = obs
	if gate == nil {
		s.rt.SetGate(nil)
	} else {
		s.rt.SetGate(gate)
	}
	s.installSinks()
}

// Guided reports whether a guidance controller is installed.
func (s *System) Guided() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl != nil
}

// SetTap installs (or, with nil, removes) a persistent event observer that
// is fenced across guidance hot-swaps: every installSinks rewiring —
// profiling start/stop, guidance install/disable, scheduler swaps — keeps
// the tap in the delivery chain, after the scheduler's observer and the
// collector. The durability layer hangs its write-ahead log here, so no
// lifecycle transition can silently drop commits from the log. The tap
// also pins the unique-wv clock discipline: with any sink installed every
// commit draws its own write version (see tl2.Runtime.Clock).
func (s *System) SetTap(obs Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tap = obs
	s.installSinks()
}

// Clock returns the system's current version-clock value (see
// tl2.Runtime.Clock for its semantics with and without sinks).
func (s *System) Clock() uint64 { return s.rt.Clock() }

// AdvanceClock raises the system's version clock to at least v; crash
// recovery uses it to move past the last durable commit before serving.
func (s *System) AdvanceClock(v uint64) { s.rt.AdvanceClock(v) }

// installSinks wires the event stream: the active scheduler's observer (a
// guidance controller needs events for state tracking; a watchdog wraps
// the controller and must see events for its windows) first, then the
// collector when profiling, then the persistent tap. Called with mu held.
func (s *System) installSinks() {
	first := s.schedSink
	if s.ctrl != nil {
		first = s.ctrl
	}
	if s.dog != nil {
		first = s.dog
	}
	var chain multiSink
	for _, sink := range []tl2.EventSink{first, sinkOrNil(s.collector), s.tap} {
		if sink != nil {
			chain = append(chain, sink)
		}
	}
	switch len(chain) {
	case 0:
		s.rt.SetSink(nil)
	case 1:
		s.rt.SetSink(chain[0])
	default:
		s.rt.SetSink(chain)
	}
}

// sinkOrNil converts a possibly-nil *trace.Collector into a plain
// EventSink without smuggling a typed nil into an interface.
func sinkOrNil(c *trace.Collector) tl2.EventSink {
	if c == nil {
		return nil
	}
	return c
}

// multiSink fans events out in order: the scheduler's observer first
// (online state tracking), then the collector (measurement), then the tap
// (durability). The slice is immutable once installed; rewiring swaps in a
// freshly built chain.
type multiSink []tl2.EventSink

func (m multiSink) TxCommit(p Pair, wv uint64, aborts int) {
	for _, s := range m {
		s.TxCommit(p, wv, aborts)
	}
}

func (m multiSink) TxAbort(p Pair, byWV uint64, by Pair, known bool) {
	for _, s := range m {
		s.TxAbort(p, byWV, by, known)
	}
}

// Stats returns cumulative committed transactions and aborted attempts.
func (s *System) Stats() (commits, aborts uint64) { return s.rt.Stats() }

// Telemetry returns the system's live metrics: sharded lifecycle counters,
// sampled commit/validation latency histograms, per-state gate telemetry
// and the diagnostic event ring. The same object feeds the process-wide
// exporter (telemetry.Gather).
func (s *System) Telemetry() *telemetry.Metrics { return s.rt.Telemetry() }

// TelemetrySnapshot returns a point-in-time view of the system's metrics.
func (s *System) TelemetrySnapshot() TelemetrySnapshot { return s.rt.Telemetry().Snapshot() }

// ResetStats zeroes the cumulative counters.
func (s *System) ResetStats() { s.rt.ResetStats() }

// GateStats reports guided-execution gate decisions (passed immediately,
// held at least once, forced through after k retries). All zeros when
// guidance is off.
func (s *System) GateStats() (passed, held, escaped uint64) {
	s.mu.Lock()
	ctrl := s.ctrl
	s.mu.Unlock()
	if ctrl == nil {
		return 0, 0, 0
	}
	return ctrl.GateStats()
}

// AdaptiveGuidance is the online-learning guidance controller returned by
// EnableAdaptiveGuidance; it exposes the live model's size and snapshot.
type AdaptiveGuidance = guide.Adaptive

// EnableAdaptiveGuidance installs guidance that keeps learning the Thread
// State Automaton from the live event stream, recompiling its guide table
// every WithRecompileEvery state changes (unset selects the default). seed
// may be nil for a cold start — the gate then passes everything until
// evidence accumulates. This is an extension beyond the paper, whose
// models are trained strictly offline.
func (s *System) EnableAdaptiveGuidance(seed *Model, opts ...GuidanceOption) *AdaptiveGuidance {
	set := applyGuidanceOptions(opts)
	gopts := []guide.Option{guide.WithTelemetry(s.rt.Telemetry())}
	if set.gateRetries > 0 {
		gopts = append(gopts, guide.WithGateRetries(set.gateRetries))
	}
	a := guide.NewAdaptive(s.cfg.Threads, seed, set.tfactor, set.recompileEvery, gopts...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrl = a.Controller
	s.dog = nil
	s.schedGate, s.schedSink = nil, nil
	s.installSinks()
	s.rt.SetGate(a.Controller)
	return a
}

// Health is a point-in-time view of the system's runtime resilience state:
// the execution mode, cumulative work counters, policy-abandonment
// counters, gate decision counts, and — when guidance runs under a
// watchdog — the breaker state.
type Health struct {
	// Mode mirrors System.Mode: the execution mode derived from what is
	// installed (guided/degraded, profiling, unguided).
	Mode Mode

	// Commits and Aborts mirror Stats.
	Commits, Aborts uint64

	// RetryBudgetExceeded counts transactions abandoned because their
	// per-call retry budget ran out; ContextCanceled counts transactions
	// abandoned on context cancellation or deadline expiry. Both are
	// whole-transaction outcomes, separate from the per-attempt Aborts.
	RetryBudgetExceeded uint64
	ContextCanceled     uint64

	// Guided reports whether a guidance controller is installed;
	// GatePassed/GateHeld/GateEscaped mirror GateStats.
	Guided                            bool
	GatePassed, GateHeld, GateEscaped uint64

	// WatchdogEnabled reports whether guidance runs under a watchdog;
	// Watchdog is its snapshot (zero value when disabled).
	WatchdogEnabled bool
	Watchdog        WatchdogSnapshot
}

// Degraded reports whether the system is currently running in degraded
// (pass-through) mode: guidance is installed but its watchdog has tripped.
// Equivalent to Mode == ModeDegraded.
func (h Health) Degraded() bool {
	return h.WatchdogEnabled && h.Watchdog.State == guide.WatchdogTripped
}

// Health returns the system's current resilience snapshot. It is safe to
// call concurrently with running transactions.
func (s *System) Health() Health {
	s.mu.Lock()
	ctrl, dog := s.ctrl, s.dog
	s.mu.Unlock()

	var h Health
	h.Commits, h.Aborts = s.rt.Stats()
	h.Mode = s.Mode()
	h.RetryBudgetExceeded, h.ContextCanceled = s.rt.ResilienceStats()
	if ctrl != nil {
		h.Guided = true
		h.GatePassed, h.GateHeld, h.GateEscaped = ctrl.GateStats()
	}
	if dog != nil {
		h.WatchdogEnabled = true
		h.Watchdog = dog.Snapshot()
	}
	return h
}
