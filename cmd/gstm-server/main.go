// Command gstm-server serves a transactional key-value store over TCP on
// the guided STM. It runs the paper's lifecycle against live traffic:
// serve unguided while profiling the request stream, build and analyze
// the thread-state model in the background, and hot-swap into guided
// execution when the model passes (with the watchdog armed). SIGINT/
// SIGTERM drain gracefully: in-flight operations are answered before the
// process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gstm"
	"gstm/internal/server"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7900", "TCP listen address (\":0\" picks a free port)")
		shards        = flag.Int("shards", 1, "independent STM shards the keyspace is hash-partitioned across")
		workers       = flag.Int("workers", 4, "execution pool size; worker i is STM thread i")
		batch         = flag.Int("batch", 8, "max same-kind disjoint-key ops coalesced per transaction (1 disables batching)")
		buckets       = flag.Int("buckets", 4096, "hash table buckets")
		queueDepth    = flag.Int("queue-depth", 256, "per-worker request queue depth")
		profileOps    = flag.Int("profile-ops", 2048, "committed ops per profiling slice")
		profileSlices = flag.Int("profile-slices", 4, "profiling slices before the model is trained")
		maxAttempts   = flag.Int("max-attempts", 0, "attempt budget per transaction (0 = unlimited); exhaustion maps to StatusBudget")
		force         = flag.Bool("force-guidance", false, "install the trained model even if the analyzer rejects it")
		watchdog      = flag.Bool("watchdog", true, "arm the guidance watchdog on the hot-swapped gate")
		unguided      = flag.Bool("unguided", false, "start with the lifecycle parked (plain TL2); CtlModeAuto can still start it")
		interleave    = flag.Int("interleave", 0, "yield 1-in-N transactional operations (0 = never; exposes real interleaving on few cores)")
		lockStripes   = flag.Int("lock-stripes", 0, "striped lock-table engine mode: versioned write-locks in a table of this many stripes per shard, rounded up to a power of two (0 = per-location locks)")
		tfactor       = flag.Float64("tfactor", 0, "guidance gate Tfactor (0 = default)")
		gateK         = flag.Int("k", 0, "guidance gate re-check bound (0 = default)")
		metrics       = flag.String("metrics-addr", "", "serve live telemetry on this address (e.g. :9100 or :0): /metrics (Prometheus), /debug/vars (JSON), /debug/pprof")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
		procs         = flag.Int("gomaxprocs", 0, "GOMAXPROCS (0 = runtime default)")
		walDir        = flag.String("wal-dir", "", "durability: per-shard write-ahead log directory (empty = in-memory only); restarts recover snapshot+log before serving")
		fsyncInterval = flag.Duration("fsync-interval", 0, "WAL fsync window: 0 fsyncs before every ack (strict, survives power loss); >0 acks from page cache and fsyncs per interval (relaxed, survives SIGKILL)")
		snapshotEvery = flag.Int("snapshot-every", 0, "WAL snapshot+truncate cycle after this many logged commits per shard (0 = never)")
		guidedWarmup  = flag.Bool("guided-warmup", false, "log aborts too and pre-train each shard's model from the replayed Tseq on recovery")
	)
	flag.Parse()
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	cfg := server.Config{
		Addr:          *addr,
		Shards:        *shards,
		Workers:       *workers,
		Batch:         *batch,
		Buckets:       *buckets,
		QueueDepth:    *queueDepth,
		ProfileOps:    *profileOps,
		ProfileSlices: *profileSlices,
		MaxAttempts:   *maxAttempts,
		ForceGuidance: *force,
		Tfactor:       *tfactor,
		GateRetries:   *gateK,
		Unguided:      *unguided,
		Interleave:    *interleave,
		LockStripes:   *lockStripes,
		WALDir:        *walDir,
		FsyncInterval: *fsyncInterval,
		SnapshotEvery: *snapshotEvery,
		GuidedWarmup:  *guidedWarmup,
	}
	if *watchdog {
		cfg.Watchdog = &gstm.WatchdogOptions{}
	}

	s := server.New(cfg)

	var drainTelemetry func(context.Context) error
	if *metrics != "" {
		srv, err := gstm.ServeTelemetry(*metrics, gstm.TelemetryMount{
			Pattern: "/debug/trace",
			Handler: gstm.TraceHandler(s.Observatory()),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars, /debug/pprof, /debug/trace on http://%s\n", srv.BoundAddr)
		drainTelemetry = srv.Shutdown
	}

	if err := s.Start(); err != nil {
		fatal(err)
	}
	durability := "off"
	if *walDir != "" {
		durability = "strict"
		if *fsyncInterval > 0 {
			durability = fmt.Sprintf("relaxed(%v)", *fsyncInterval)
		}
	}
	fmt.Fprintf(os.Stderr, "gstm-server: listening on %s (%d shards, %d workers, batch %d, mode %s, durability %s)\n",
		s.Addr(), s.Shards(), *workers, *batch, s.Mode(), durability)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "gstm-server: draining...")

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "gstm-server: drain incomplete:", err)
	}
	if drainTelemetry != nil {
		if err := drainTelemetry(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gstm-server: telemetry drain:", err)
		}
	}
	commits, aborts := s.Router().Stats()
	fmt.Fprintf(os.Stderr, "gstm-server: done (mode %s, %d commits, %d aborts)\n", s.Mode(), commits, aborts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gstm-server:", err)
	os.Exit(1)
}
