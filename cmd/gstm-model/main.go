// Command gstm-model builds and inspects Thread State Automaton model
// files (the artifact's state_data). It can profile a STAMP benchmark into
// a model (the artifact's mcmc_data mode), print a model's states and
// transition structure, and run the Section IV analyzer on it.
//
//	gstm-model -profile kmeans -threads 8 -o kmeans.state_data
//	gstm-model -inspect kmeans.state_data
//	gstm-model -inspect kmeans.state_data -top 20 -tfactor 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gstm"
	"gstm/internal/model"
	"gstm/internal/stamp"
	"gstm/internal/trace"
)

func main() {
	var (
		profile    = flag.String("profile", "", "STAMP benchmark to profile into a model")
		inspect    = flag.String("inspect", "", "model file to inspect")
		out        = flag.String("o", "state_data", "output path for -profile")
		threads    = flag.Int("threads", 8, "worker thread count")
		trainRuns  = flag.Int("trainruns", 12, "profiling runs")
		size       = flag.String("size", "medium", "training input size")
		interleave = flag.Int("interleave", 6, "yield 1-in-N transactional operations")
		seed       = flag.Uint64("seed", 0xC0FFEE, "profiling seed")
		top        = flag.Int("top", 10, "states to print during -inspect (by visit frequency)")
		asJSON     = flag.Bool("json", false, "emit the inspected model as JSON instead of text")
		traceDir   = flag.String("savetraces", "", "directory to also save each profiling run's transaction sequence into")
		tfactor    = flag.Float64("tfactor", 4, "Tfactor used for the analyzer and destination sets")
		procs      = flag.Int("gomaxprocs", 1, "GOMAXPROCS while profiling")
	)
	flag.Parse()
	runtime.GOMAXPROCS(*procs)

	switch {
	case *profile != "":
		exitOn(buildModel(*profile, *out, *threads, *trainRuns, *size, *interleave, *seed, *traceDir))
	case *inspect != "":
		exitOn(inspectModel(*inspect, *top, *tfactor, *asJSON))
	default:
		fmt.Fprintln(os.Stderr, "gstm-model: need -profile <bench> or -inspect <file>")
		flag.Usage()
		os.Exit(2)
	}
}

func buildModel(bench, out string, threads, trainRuns int, sizeName string, interleave int, seed uint64, traceDir string) error {
	w, err := stamp.ByName(bench)
	if err != nil {
		return err
	}
	var size stamp.Size
	switch sizeName {
	case "small":
		size = stamp.Small
	case "medium":
		size = stamp.Medium
	case "large":
		size = stamp.Large
	default:
		return fmt.Errorf("unknown size %q", sizeName)
	}
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: interleave})
	var traces []*gstm.Trace
	for run := 0; run < trainRuns; run++ {
		inst, err := w.NewInstance(stamp.Params{Threads: threads, Size: size, Seed: seed + uint64(run)*7919})
		if err != nil {
			return err
		}
		sys.StartProfiling()
		if _, err := inst.Run(sys); err != nil {
			sys.StopProfiling()
			return err
		}
		tr := sys.StopProfiling()
		if err := inst.Validate(sys); err != nil {
			return err
		}
		traces = append(traces, tr)
		if traceDir != "" {
			path := fmt.Sprintf("%s/%s_run%02d.tseq", traceDir, bench, run)
			if err := trace.SaveTrace(tr, path); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "run %d: %d commits, %d aborts, %d distinct states\n",
			run, tr.Commits, tr.Aborts, tr.DistinctStates())
	}
	m := gstm.BuildModel(threads, traces)
	if err := gstm.SaveModel(m, out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d states from %d runs of %s (%d threads, %s input)\n",
		out, m.NumStates(), trainRuns, bench, threads, sizeName)
	return nil
}

func inspectModel(path string, top int, tfactor float64, asJSON bool) error {
	m, err := model.Load(path)
	if err != nil {
		return err
	}
	if asJSON {
		return m.ExportJSON(os.Stdout)
	}
	an := model.DefaultAnalyzer()
	an.Tfactor = tfactor
	rep := an.Analyze(m)
	ms := m.ComputeStats()
	fmt.Printf("model: %d states, %d edges, %d transitions, ~%.1fKB serialized, mean transition entropy %.2f, trained for %d threads\n",
		ms.States, ms.Edges, ms.Transitions, float64(ms.SerializedBytes)/1024, ms.MeanEntropy, m.Threads)
	fmt.Printf("analyzer: guidance metric %.0f%%, guidable=%v", rep.Metric, rep.Guidable)
	if !rep.Guidable {
		fmt.Printf(" (%s)", rep.Reason)
	}
	fmt.Println()

	// Rank states by total outbound frequency (visit count).
	type ranked struct {
		key   trace.Key
		total int64
	}
	var rs []ranked
	for _, k := range m.Keys() {
		rs = append(rs, ranked{key: k, total: m.Node(k).Total})
	}
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if rs[j].total > rs[i].total {
				rs[i], rs[j] = rs[j], rs[i]
			}
		}
	}
	if top > len(rs) {
		top = len(rs)
	}
	fmt.Printf("top %d states by visits:\n", top)
	for _, r := range rs[:top] {
		st, err := trace.ParseKey(r.key)
		if err != nil {
			return err
		}
		fmt.Printf("  %-40s visits=%-6d destinations(Tfactor=%g): ", st, r.total, tfactor)
		for i, e := range m.Destinations(r.key, tfactor) {
			if i > 0 {
				fmt.Print(", ")
			}
			to, err := trace.ParseKey(e.To)
			if err != nil {
				return err
			}
			fmt.Printf("%s(%.2f)", to, e.Prob)
			if i == 4 {
				fmt.Print(", ...")
				break
			}
		}
		fmt.Println()
	}
	return nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstm-model:", err)
		os.Exit(1)
	}
}
