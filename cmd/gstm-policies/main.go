// Command gstm-policies compares scheduling policies on a STAMP workload:
// unmanaged execution, the contention managers the paper's Related Work
// discusses (Polite, Karma, Greedy), a DeSTM-style deterministic
// round-robin, and model-driven guided execution. It quantifies the
// paper's argument that contention managers cannot reduce variance and
// non-determinism the way guidance does without sacrificing speculation.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gstm"
	"gstm/internal/harness"
	"gstm/internal/stamp"
)

func main() {
	var (
		bench      = flag.String("bench", "kmeans", "STAMP benchmark to compare policies on")
		threads    = flag.Int("threads", 8, "worker thread count")
		trainRuns  = flag.Int("trainruns", 12, "profiling runs for the guided row")
		runs       = flag.Int("runs", 20, "measured runs per policy")
		interleave = flag.Int("interleave", 6, "yield 1-in-N transactional operations")
		tfactor    = flag.Float64("tfactor", 2, "guided row's Tfactor")
		gateK      = flag.Int("k", 16, "guided row's gate re-check bound")
		seed       = flag.Uint64("seed", 11, "experiment seed")
		procs      = flag.Int("gomaxprocs", 1, "GOMAXPROCS for the experiment")
		metrics    = flag.String("metrics-addr", "", "serve live telemetry on this address (e.g. :9100 or :0): /metrics (Prometheus), /debug/vars (JSON), /debug/pprof")
	)
	flag.Parse()
	runtime.GOMAXPROCS(*procs)

	if *metrics != "" {
		srv, err := gstm.ServeTelemetry(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gstm-policies:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.BoundAddr)
		defer srv.Close()
	}

	w, err := stamp.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstm-policies:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "comparing 6 policies on %s (%d threads, %d runs each)...\n",
		*bench, *threads, *runs)
	pc, err := harness.ComparePolicies(w, harness.Config{
		Threads:     *threads,
		TrainRuns:   *trainRuns,
		Runs:        *runs,
		TrainSize:   stamp.Medium,
		TestSize:    stamp.Small,
		Interleave:  *interleave,
		Tfactor:     *tfactor,
		GateRetries: *gateK,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstm-policies:", err)
		os.Exit(1)
	}
	pc.Write(os.Stdout)
}
