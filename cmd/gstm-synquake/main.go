// Command gstm-synquake runs the paper's Section VIII experiment: it
// trains the Thread State Automaton on the 4worst_case and 4moving quests
// of the SynQuake game server, then measures default versus guided
// execution on the 4quadrants and 4center_spread6 quests, printing Table V
// and the three panels of Figures 11 and 12.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gstm"
	"gstm/internal/harness"
)

func main() {
	var (
		threads     = flag.Int("threads", 8, "server thread count (paper: 8 or 16)")
		players     = flag.Int("players", 256, "player count (paper: 1000; scaled default for one core)")
		trainFrames = flag.Int("trainframes", 100, "frames per training-quest run (paper: 1000)")
		testFrames  = flag.Int("testframes", 400, "frames per measured quest (paper: 10000)")
		trainRuns   = flag.Int("trainruns", 3, "runs per training quest")
		measureRuns = flag.Int("runs", 5, "measured runs per side per quest (averaged)")
		interleave  = flag.Int("interleave", 6, "yield 1-in-N transactional operations (0 disables)")
		tfactor     = flag.Float64("tfactor", 2, "destination-set threshold divisor")
		gateK       = flag.Int("k", 16, "gate re-check bound (the paper's k)")
		seed        = flag.Uint64("seed", 0xBADA55, "experiment seed")
		table       = flag.Int("table", 0, "print only Table 5 when set to 5")
		fig         = flag.Int("fig", 0, "print only Figure 11 or 12 when set")
		procs       = flag.Int("gomaxprocs", 1, "GOMAXPROCS for the experiment")
		metrics     = flag.String("metrics-addr", "", "serve live telemetry on this address (e.g. :9100 or :0): /metrics (Prometheus), /debug/vars (JSON), /debug/pprof")
	)
	flag.Parse()
	runtime.GOMAXPROCS(*procs)

	if *metrics != "" {
		srv, err := gstm.ServeTelemetry(*metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gstm-synquake:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.BoundAddr)
		defer srv.Close()
	}

	fmt.Fprintf(os.Stderr, "training on 4worst_case+4moving (%d runs x %d frames), measuring 4quadrants and 4center_spread6 (%d frames)...\n",
		*trainRuns, *trainFrames, *testFrames)
	res, err := harness.RunSynQuake(harness.SynQuakeConfig{
		Threads:     *threads,
		Players:     *players,
		TrainFrames: *trainFrames,
		TestFrames:  *testFrames,
		TrainRuns:   *trainRuns,
		MeasureRuns: *measureRuns,
		Interleave:  *interleave,
		Tfactor:     *tfactor,
		GateRetries: *gateK,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstm-synquake:", err)
		os.Exit(1)
	}

	switch {
	case *table == 5:
		res.WriteTableV(os.Stdout)
	case *fig == 11 || *fig == 12:
		want := "4quadrants"
		if *fig == 12 {
			want = "4center_spread6"
		}
		for _, q := range res.Quests {
			if q.Quest == want {
				one := *res
				one.Quests = []harness.SynQuakeQuestResult{q}
				one.WriteFigures(os.Stdout)
			}
		}
	default:
		res.WriteTableV(os.Stdout)
		res.WriteFigures(os.Stdout)
	}
}
