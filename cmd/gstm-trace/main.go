// Command gstm-trace inspects and compares on-disk transaction-sequence
// logs (.tseq files written by gstm-model -savetraces). It replaces the
// artifact's post-processing scripts: dumping a run's states in the
// paper's notation, and diffing a default group against a guided group for
// non-determinism and abort-tail changes.
//
//	gstm-trace -dump run00.tseq
//	gstm-trace -diff "default_*.tseq=guided_*.tseq"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gstm/internal/trace"
)

func main() {
	var (
		dump      = flag.String("dump", "", "trace file to dump")
		diff      = flag.String("diff", "", "two glob patterns separated by '=': groupA=groupB")
		maxStates = flag.Int("n", 40, "states to print during -dump (0 = all)")
	)
	flag.Parse()

	switch {
	case *dump != "":
		t, err := trace.LoadTrace(*dump)
		exitOn(err)
		trace.Dump(os.Stdout, t, *maxStates)
	case *diff != "":
		parts := strings.SplitN(*diff, "=", 2)
		if len(parts) != 2 {
			exitOn(fmt.Errorf("-diff wants groupA=groupB glob patterns, got %q", *diff))
		}
		groupA, err := loadGroup(parts[0])
		exitOn(err)
		groupB, err := loadGroup(parts[1])
		exitOn(err)
		fmt.Printf("A: %d traces (%s)\nB: %d traces (%s)\n",
			len(groupA), parts[0], len(groupB), parts[1])
		trace.Compare(groupA, groupB).Write(os.Stdout)
	default:
		fmt.Fprintln(os.Stderr, "gstm-trace: need -dump <file> or -diff 'a*=b*'")
		flag.Usage()
		os.Exit(2)
	}
}

func loadGroup(pattern string) ([]*trace.Trace, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no traces match %q", pattern)
	}
	out := make([]*trace.Trace, 0, len(paths))
	for _, p := range paths {
		t, err := trace.LoadTrace(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstm-trace:", err)
		os.Exit(1)
	}
}
