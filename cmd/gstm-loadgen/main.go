// Command gstm-loadgen drives load against a running gstm-server and
// measures service-level run-to-run variance guided vs unguided: R
// repeated fixed-duration runs per mode reporting throughput and
// p50/p95/p99 latency, with variance as the coefficient of variation of
// per-run throughput and p95. With -out it writes the full comparison as
// BENCH_server.json. With -once it performs a single run in whatever mode
// the server is in (used by CI's server-smoke job), reporting aggregate
// and — against a sharded server — per-shard completion spread. With
// -shard-bench it ignores -addr, boots in-process servers itself, and
// sweeps shard counts × workloads into BENCH_shard.json. With
// -speed-bench it sweeps the STM engine's hot-path variants (unboxed
// slot protocol over per-location lock words vs over striped lock
// tables) across workloads and GOMAXPROCS into BENCH_speed.json. With
// -xshard-bench it sweeps cross-shard transfer percentages into
// BENCH_xshard.json; standalone runs can mix transfers into any load via
// -transfer-pct and assert conservation with -check-balance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gstm/internal/server"
	"gstm/internal/speedbench"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7900", "gstm-server address")
		conns    = flag.Int("conns", 16, "concurrent client connections")
		duration = flag.Duration("duration", 2*time.Second, "length of each measured run (timed mode)")
		opsPer   = flag.Int("ops", 4000, "fixed-work mode: ops per connection per run (0 = timed mode)")
		runs     = flag.Int("runs", 5, "measured runs per mode (R)")
		keys     = flag.Int("keys", 128, "key-space size")
		skew     = flag.Float64("skew", 5, "key skew exponent (1 = uniform; larger = hotter head)")
		getPct   = flag.Int("get", 10, "percent GET")
		putPct   = flag.Int("put", 5, "percent PUT")
		delPct   = flag.Int("del", 5, "percent DEL (remainder is ADD)")
		seed     = flag.Uint64("seed", 0xC0FFEE, "workload seed")
		window   = flag.Int("window", 0, "pipeline depth per connection (0/1 = synchronous request/response)")
		once     = flag.Bool("once", false, "single run in the server's current mode; skip the guided/unguided comparison")
		shBench  = flag.Bool("shard-bench", false, "sweep shard counts x workloads against in-process servers (ignores -addr)")
		spBench  = flag.Bool("speed-bench", false, "sweep engine hot-path variants (unboxed/unboxed+stripes) x workloads x GOMAXPROCS in-process (ignores -addr; BENCH_speed.json)")
		durBench = flag.Bool("durability", false, "sweep WAL fsync windows vs a non-durable baseline against in-process servers (ignores -addr; BENCH_wal.json)")
		xsBench  = flag.Bool("xshard-bench", false, "sweep cross-shard transfer percentages against an in-process sharded server (ignores -addr; BENCH_xshard.json)")
		xferPct  = flag.Int("transfer-pct", 0, "percent of ops issued as two-key cross-shard transfers (one OpTxn each, zero-sum)")
		balance  = flag.Bool("check-balance", false, "after the run, sum the signed key-space total and fail unless it is zero (transfers conserve balance)")
		ledger   = flag.String("ledger", "", "drive an add-only load and write the acked/in-flight ledger JSON here; tolerates the server dying mid-run (kill-and-recover chaos)")
		verify   = flag.String("verify-ledger", "", "check a recovered server against a ledger file: acked <= value <= acked+inflight for every key")
		out      = flag.String("out", "", "write the report as JSON to this file (BENCH_server.json / BENCH_shard.json / BENCH_wal.json)")
		trace    = flag.Bool("trace", false, "set the protocol trace-request bit on every op (server retains a span per op on /debug/trace)")
		subs     = flag.Int("subscribers", 0, "long-poll watch connections riding alongside the load (each chains OpWatch on one hot key; wakeups reported as sub_wakeups)")
		traceTab = flag.String("trace-addr", "", "server telemetry address (host:port): scrape /debug/trace?format=agg around the run and print the per-shard per-phase tail-attribution table")
	)
	flag.Parse()

	if *shBench {
		shardBench(*runs, *out)
		return
	}
	if *spBench {
		speedBench(*out)
		return
	}
	if *durBench {
		durabilityBench(*runs, *out)
		return
	}
	if *xsBench {
		xshardBench(*runs, *out)
		return
	}
	if *verify != "" {
		led, err := server.ReadLedger(*verify)
		if err != nil {
			fatal(err)
		}
		violations, err := server.VerifyLedger(*addr, led)
		if err != nil {
			fatal(err)
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "gstm-loadgen: VIOLATION:", v)
			}
			fatal(fmt.Errorf("%d ledger violations: recovery lost acknowledged writes", len(violations)))
		}
		fmt.Printf("ledger verified: %d acked keys, %d in-flight keys, no violations\n",
			len(led.Acked), len(led.Inflight))
		return
	}

	load := server.LoadConfig{
		Addr:        *addr,
		Conns:       *conns,
		Duration:    *duration,
		OpsPerConn:  *opsPer,
		Keys:        *keys,
		Skew:        *skew,
		GetPct:      *getPct,
		PutPct:      *putPct,
		DelPct:      *delPct,
		TransferPct: *xferPct,
		Seed:        *seed,
		Window:      *window,
		Trace:       *trace,
		Subscribers: *subs,
	}

	// Tail attribution: scrape the observatory's aggregation before the
	// measured work and again after it, so the printed table covers exactly
	// this invocation's requests.
	var aggBefore server.TraceAgg
	if *traceTab != "" {
		var err error
		if aggBefore, err = server.FetchTraceAgg(*traceTab); err != nil {
			fatal(fmt.Errorf("trace scrape (%s): %w", *traceTab, err))
		}
	}
	printTail := func() {
		if *traceTab == "" {
			return
		}
		aggAfter, err := server.FetchTraceAgg(*traceTab)
		if err != nil {
			fatal(fmt.Errorf("trace scrape (%s): %w", *traceTab, err))
		}
		fmt.Println("tail attribution (this run; phase latencies per shard):")
		fmt.Print(server.FormatTailTable(server.DiffTraceAgg(aggAfter, aggBefore)))
	}

	if *ledger != "" {
		led := server.RunLedgerLoad(load)
		if err := led.WriteFile(*ledger); err != nil {
			fatal(err)
		}
		fmt.Printf("ledger: %d ops acked over %d keys, %d errors, %d in-flight keys -> %s\n",
			led.Ops, len(led.Acked), led.Errors, len(led.Inflight), *ledger)
		return
	}

	if *once {
		// Against a sharded server, attribute traffic per shard and report
		// the per-shard completion spread next to the aggregate one.
		if ctl, err := server.Dial(*addr); err == nil {
			if n, err := ctl.Info(server.InfoShards); err == nil {
				load.Shards = int(n)
			}
			ctl.Close()
		}
		st, err := server.RunLoad(load)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ops=%d errors=%d throughput=%.0f ops/s p50=%.1fus p95=%.1fus p99=%.1fus\n",
			st.Ops, st.Errors, st.Throughput, st.P50us, st.P95us, st.P99us)
		if len(st.ShardOps) > 0 {
			fmt.Printf("spread: conns %.2f%%  shards %.2f%%  per-shard ops %v\n",
				st.ConnSpreadPct, st.ShardSpreadPct, st.ShardOps)
		}
		if st.Transfers > 0 {
			fmt.Printf("transfers: %d two-key atomic transfers committed\n", st.Transfers)
		}
		if load.Subscribers > 0 {
			fmt.Printf("subscribers: %d long-poll watchers, %d wakeups\n",
				load.Subscribers, st.SubWakeups)
		}
		printTail()
		if st.Ops == 0 {
			fatal(fmt.Errorf("no operations completed"))
		}
		if *balance {
			total, err := server.VerifyBalance(*addr, *keys)
			if err != nil {
				fatal(err)
			}
			if total != 0 {
				fatal(fmt.Errorf("balance check: signed key-space total %d, want 0 (a transfer tore)", total))
			}
			fmt.Printf("balance check: key-space total 0 across %d keys\n", *keys)
		}
		return
	}

	work := fmt.Sprintf("%d ops/conn", *opsPer)
	if *opsPer <= 0 {
		work = (*duration).String()
	}
	fmt.Fprintf(os.Stderr, "gstm-loadgen: %d runs/mode x %s, %d conns, %d keys (skew %.1f), mix get/put/del %d/%d/%d\n",
		*runs, work, *conns, *keys, *skew, *getPct, *putPct, *delPct)
	rep, err := server.BenchModes(server.BenchConfig{Load: load, Runs: *runs})
	if err != nil {
		fatal(err)
	}

	printMode := func(m server.ModeReport) {
		fmt.Printf("%-9s  %9.0f ops/s  cv %5.2f%%  p50 %7.1fus  p95 %7.1fus (cv %5.2f%%)  p99 %7.1fus  abort-ratio %.3f cv %5.2f%%  spread %5.2f%%  runtime-cv %5.2f%%  %d commits  %d aborts\n",
			m.Mode, m.ThroughputMean, m.ThroughputCVPct, m.P50MeanUs, m.P95MeanUs, m.P95CVPct, m.P99MeanUs,
			m.AbortRatioMean, m.AbortRatioCVPct, m.ConnSpreadMeanPct, m.RunTimeCVPct, m.Commits, m.Aborts)
	}
	printMode(rep.Unguided)
	printMode(rep.Guided)
	fmt.Printf("variance reduced (guided cv <= unguided cv): %v\n", rep.VarianceReduced)
	printTail()

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gstm-loadgen: wrote %s\n", *out)
	}
}

// speedBench runs the engine hot-path sweep and writes BENCH_speed.json.
func speedBench(out string) {
	fmt.Fprintln(os.Stderr, "gstm-loadgen: engine speed sweep (unboxed vs unboxed+stripes x read-only,mixed,write-heavy x GOMAXPROCS 1,2,4,8)")
	rep := speedbench.Run(speedbench.Config{Progress: os.Stderr})
	fmt.Printf("striped within bound of per-location on read-only and mixed at every core count: %v\n", rep.StripedWithinBound)
	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gstm-loadgen: wrote %s\n", out)
	}
}

// durabilityBench runs the WAL cost sweep and writes BENCH_wal.json.
func durabilityBench(runs int, out string) {
	fmt.Fprintln(os.Stderr, "gstm-loadgen: durability sweep (WAL off vs strict vs relaxed fsync windows; pipelined write-heavy fixed-work runs)")
	rep, err := server.BenchDurability(server.WALBenchConfig{Runs: runs, Progress: os.Stderr})
	if err != nil {
		fatal(err)
	}
	for _, pt := range rep.Points {
		fmt.Printf("%-14s %9.0f ops/s (cv %5.2f%%)  rel %.2fx  appends %d fsyncs %d\n",
			pt.Name, pt.ThroughputMean, pt.ThroughputCVPct, pt.RelativeThroughput,
			pt.WALAppends, pt.WALFsyncs)
	}
	fmt.Printf("relaxed >= 70%% of baseline: %v\n", rep.RelaxedTargetMet)
	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gstm-loadgen: wrote %s\n", out)
	}
}

// xshardBench runs the in-process cross-shard transfer sweep and writes
// BENCH_xshard.json.
func xshardBench(runs int, out string) {
	fmt.Fprintln(os.Stderr, "gstm-loadgen: cross-shard transfer sweep (transfer-pct 0/10/20/30/50 on 4 shards; pipelined fixed-work runs)")
	rep, err := server.BenchXShard(server.XShardBenchConfig{Runs: runs, Progress: os.Stderr})
	if err != nil {
		fatal(err)
	}
	print := func(name string, pt server.XShardPoint) {
		fmt.Printf("%-12s %9.0f ops/s  transfers %8d  xshard commits %8d aborts %6d (ratio %.3f)\n",
			name, pt.ThroughputMedian, pt.Transfers, pt.XShardCommits, pt.XShardAborts, pt.XShardAbortRatio)
	}
	print("baseline/0", rep.Baseline)
	print("check/0", rep.Check)
	for _, pt := range rep.Points {
		print(fmt.Sprintf("transfer/%d", pt.TransferPct), pt)
	}
	fmt.Printf("single-shard path within 3%% (pct-0 ratio %.4f): %v; balance conserved: %v\n",
		rep.BaselineRatio, rep.SingleShardWithin3Pct, rep.BalanceConserved)
	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gstm-loadgen: wrote %s\n", out)
	}
}

// shardBench runs the in-process shard sweep and writes BENCH_shard.json.
func shardBench(runs int, out string) {
	cfg := server.ShardBenchConfig{Runs: runs, Progress: os.Stderr}
	fmt.Fprintln(os.Stderr, "gstm-loadgen: shard sweep (1/2/4/8 shards x write-heavy,mixed; pipelined fixed-work runs)")
	rep, err := server.BenchShards(cfg)
	if err != nil {
		fatal(err)
	}
	for _, wr := range rep.Workloads {
		fmt.Printf("%s: guided 4-shard speedup %.2fx, unguided %.2fx\n",
			wr.Workload.Name, wr.GuidedSpeedup4x, wr.UnguidedSpeedup4x)
	}
	if out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gstm-loadgen: wrote %s\n", out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gstm-loadgen:", err)
	os.Exit(1)
}
