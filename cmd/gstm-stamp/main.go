// Command gstm-stamp runs the paper's STAMP experiments end to end: it
// profiles each benchmark, builds and analyzes the Thread State Automaton,
// measures paired default and guided executions, and prints the paper's
// tables and figures. It is the equivalent of the artifact's exec.sh
// pipeline (mcmc_data → model → default/ND_only vs model/ND_mcmc runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gstm"
	"gstm/internal/harness"
	"gstm/internal/stamp"
)

func main() {
	var (
		benchFlag  = flag.String("bench", "all", "benchmark to run: all or one of genome,intruder,kmeans,labyrinth,ssca2,vacation,yada")
		threads    = flag.String("threads", "8", "comma-separated worker thread counts (paper: 8,16)")
		trainRuns  = flag.Int("trainruns", 12, "profiling runs used to build the model (paper: 20)")
		runs       = flag.Int("runs", 20, "measured runs per configuration (paper: 20)")
		trainSize  = flag.String("trainsize", "medium", "training input size: small, medium or large")
		testSize   = flag.String("testsize", "small", "measured input size: small, medium or large")
		interleave = flag.Int("interleave", 6, "yield 1-in-N transactional operations to force interleaving (0 disables)")
		tfactor    = flag.Float64("tfactor", 2, "destination-set threshold divisor (the paper's Tfactor)")
		gateK      = flag.Int("k", 16, "gate re-check bound before forcing progress (the paper's k)")
		seed       = flag.Uint64("seed", 0xC0FFEE, "experiment seed")
		table      = flag.Int("table", 0, "print only this table (1, 3 or 4); 0 prints everything")
		csvOut     = flag.String("csv", "", "also write a machine-readable CSV of all results to this path")
		fig        = flag.Int("fig", 0, "print only this figure (4, 5, 6, 7, 9 or 10); 0 prints everything")
		procs      = flag.Int("gomaxprocs", 1, "GOMAXPROCS for the experiment (1 gives the least timing noise on one core)")
		watchdog   = flag.Bool("watchdog", false, "arm the guidance watchdog on the guided side (default thresholds); the RESILIENCE report section then records degraded-mode transitions")
		metrics    = flag.String("metrics-addr", "", "serve live telemetry on this address (e.g. :9100 or :0 for an ephemeral port): /metrics (Prometheus), /debug/vars (JSON), /debug/pprof")
	)
	flag.Parse()
	runtime.GOMAXPROCS(*procs)

	if *metrics != "" {
		srv, err := gstm.ServeTelemetry(*metrics)
		exitOn(err)
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.BoundAddr)
		defer srv.Close()
	}

	trainSz, err := parseSize(*trainSize)
	exitOn(err)
	testSz, err := parseSize(*testSize)
	exitOn(err)
	threadCounts, err := parseThreads(*threads)
	exitOn(err)

	var wdOpts *gstm.WatchdogOptions
	if *watchdog {
		wdOpts = &gstm.WatchdogOptions{} // zero value = sound defaults
	}

	var workloads []stamp.Workload
	if *benchFlag == "all" {
		workloads = stamp.All()
	} else {
		w, err := stamp.ByName(*benchFlag)
		exitOn(err)
		workloads = []stamp.Workload{w}
	}

	suite := harness.NewSuite()
	for _, th := range threadCounts {
		for _, w := range workloads {
			fmt.Fprintf(os.Stderr, "running %s at %d threads (%d train + 2x%d measured runs)...\n",
				w.Name(), th, *trainRuns, *runs)
			res, err := harness.RunBenchmark(w, harness.Config{
				Threads:     th,
				TrainRuns:   *trainRuns,
				Runs:        *runs,
				TrainSize:   trainSz,
				TestSize:    testSz,
				Interleave:  *interleave,
				Tfactor:     *tfactor,
				GateRetries: *gateK,
				Seed:        *seed,
				Watchdog:    wdOpts,
			})
			exitOn(err)
			suite.Add(res)
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		exitOn(err)
		exitOn(suite.WriteCSV(f))
		exitOn(f.Close())
	}

	out := os.Stdout
	switch {
	case *table == 1:
		suite.WriteTableI(out)
	case *table == 3:
		suite.WriteTableIII(out)
	case *table == 4:
		suite.WriteTableIV(out)
	case *fig == 4 || *fig == 6:
		for _, th := range threadCounts {
			suite.WriteVarianceFigure(out, th)
		}
	case *fig == 5 || *fig == 7:
		for _, th := range threadCounts {
			suite.WriteAbortTailFigure(out, th)
		}
	case *fig == 9:
		suite.WriteNonDeterminismFigure(out)
	case *fig == 10:
		suite.WriteSlowdownFigure(out)
	default:
		fmt.Fprint(out, suite.FormatAll())
	}
}

func parseSize(s string) (stamp.Size, error) {
	switch s {
	case "small":
		return stamp.Small, nil
	case "medium":
		return stamp.Medium, nil
	case "large":
		return stamp.Large, nil
	default:
		return 0, fmt.Errorf("gstm-stamp: unknown size %q (want small, medium or large)", s)
	}
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("gstm-stamp: bad thread count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gstm-stamp:", err)
		os.Exit(1)
	}
}
