// Game: a miniature frame-based game server — the paper's motivating use
// case. Players crowd one hotspot; each frame every player moves and
// fights inside transactions; the server reports the frame-time
// distribution before and after enabling model-driven guidance. Guidance
// trades mean throughput for predictability: relative jitter
// (stddev/mean) and the worst frame relative to the mean both tighten.
//
//	go run ./examples/game
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"sync"
	"time"

	"gstm"
)

const (
	threads  = 8
	players  = 384
	world    = 64 // world side; one cell per coordinate
	frames   = 100
	hotspotX = 32
	hotspotY = 32
)

type player struct {
	X, Y int
	HP   int
}

type gameState struct {
	players *gstm.Array[player]
	cells   *gstm.Array[int32] // occupancy count per world cell
}

func newGame() *gameState {
	g := &gameState{
		players: gstm.NewArray[player](players),
		cells:   gstm.NewArray[int32](world * world),
	}
	for i := 0; i < players; i++ {
		p := player{X: (i * 7) % world, Y: (i * 13) % world, HP: 100}
		g.players.Reset(i, p)
		g.cells.Reset(p.Y*world+p.X, g.cells.Peek(p.Y*world+p.X)+1)
	}
	return g
}

// playFrames runs the frame loop and returns each frame's processing time.
func playFrames(sys *gstm.System, g *gameState) []float64 {
	frameTimes := make([]float64, 0, frames)
	for f := 0; f < frames; f++ {
		start := time.Now()
		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				lo, hi := id*players/threads, (id+1)*players/threads
				for i := lo; i < hi; i++ {
					err := sys.Run(nil, gstm.ThreadID(id), 0, func(tx *gstm.Tx) error {
						p := gstm.ReadAt(tx, g.players, i)
						old := p.Y*world + p.X
						p.X += sign(hotspotX - p.X)
						p.Y += sign(hotspotY - p.Y)
						next := p.Y*world + p.X
						if next != old {
							gstm.WriteAt(tx, g.cells, old, gstm.ReadAt(tx, g.cells, old)-1)
							gstm.WriteAt(tx, g.cells, next, gstm.ReadAt(tx, g.cells, next)+1)
						}
						gstm.WriteAt(tx, g.players, i, p)
						return nil
					})
					if err != nil {
						log.Fatal(err)
					}
					// Fight whoever shares the crowded hotspot cell.
					err = sys.Run(nil, gstm.ThreadID(id), 1, func(tx *gstm.Tx) error {
						p := gstm.ReadAt(tx, g.players, i)
						if gstm.ReadAt(tx, g.cells, p.Y*world+p.X) > 1 {
							victim := (i + 1) % players
							v := gstm.ReadAt(tx, g.players, victim)
							v.HP--
							if v.HP <= 0 {
								v.HP = 100
							}
							gstm.WriteAt(tx, g.players, victim, v)
						}
						return nil
					})
					if err != nil {
						log.Fatal(err)
					}
				}
			}(t)
		}
		wg.Wait()
		frameTimes = append(frameTimes, time.Since(start).Seconds())
	}
	return frameTimes
}

func main() {
	runtime.GOMAXPROCS(1)
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 6})

	// Train the automaton on a few profiled sessions.
	var traces []*gstm.Trace
	for run := 0; run < 4; run++ {
		sys.StartProfiling()
		playFrames(sys, newGame())
		traces = append(traces, sys.StopProfiling())
	}
	m := gstm.BuildModel(threads, traces)
	rep := gstm.Analyze(m)
	fmt.Printf("model: %d states, guidance metric %.0f%%, guidable=%v\n",
		m.NumStates(), rep.Metric, rep.Guidable)

	report := func(label string, ft []float64) {
		mean, sd, worst := 0.0, 0.0, 0.0
		for _, t := range ft {
			mean += t
			if t > worst {
				worst = t
			}
		}
		mean /= float64(len(ft))
		for _, t := range ft {
			sd += (t - mean) * (t - mean)
		}
		sd = math.Sqrt(sd / float64(len(ft)-1))
		fmt.Printf("%-8s frame mean=%6.3fms  stddev=%6.3fms  worst=%6.3fms  jitter=%5.1f%%\n",
			label, mean*1e3, sd*1e3, worst*1e3, sd/mean*100)
	}

	report("default", playFrames(sys, newGame()))

	sys.ForceGuidance(m, gstm.WithTfactor(2))
	report("guided", playFrames(sys, newGame()))
	passed, held, escaped := sys.GateStats()
	fmt.Printf("gate decisions: %d passed, %d held, %d escaped\n", passed, held, escaped)
}

func sign(d int) int {
	switch {
	case d > 0:
		return 1
	case d < 0:
		return -1
	default:
		return 0
	}
}
