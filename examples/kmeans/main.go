// K-means: transactional clustering on the public API — the workload the
// paper's kmeans experiments are built on, written the way a library user
// would: points are private, cluster accumulators are shared transactional
// state, and a global "memberships changed" counter decides convergence.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"gstm"
)

const (
	k       = 5
	dims    = 2
	npoints = 4000
	threads = 4
)

type accum struct {
	Count int
	Sum   [dims]float64
}

func main() {
	rng := rand.New(rand.NewSource(7))
	// Three clear clusters plus noise.
	points := make([][dims]float64, npoints)
	for i := range points {
		c := i % 3
		for d := 0; d < dims; d++ {
			points[i][d] = float64(c*20) + rng.Float64()*6
		}
	}

	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 6})
	accums := gstm.NewArray[accum](k)
	changed := gstm.NewVar(0)
	centers := make([][dims]float64, k)
	for c := range centers {
		centers[c] = points[rng.Intn(npoints)]
	}
	member := make([]int, npoints)
	for i := range member {
		member[i] = -1
	}

	for iter := 1; ; iter++ {
		for c := 0; c < k; c++ {
			accums.Reset(c, accum{})
		}
		changed.Reset(0)

		var wg sync.WaitGroup
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				lo, hi := id*npoints/threads, (id+1)*npoints/threads
				for i := lo; i < hi; i++ {
					pt := points[i]
					c := nearest(centers, pt)
					err := sys.Run(nil, gstm.ThreadID(id), 0, func(tx *gstm.Tx) error {
						a := gstm.ReadAt(tx, accums, c)
						a.Count++
						for d := 0; d < dims; d++ {
							a.Sum[d] += pt[d]
						}
						gstm.WriteAt(tx, accums, c, a)
						if member[i] != c {
							gstm.Write(tx, changed, gstm.Read(tx, changed)+1)
						}
						return nil
					})
					if err != nil {
						log.Fatal(err)
					}
					member[i] = c
				}
			}(t)
		}
		wg.Wait()

		// Barrier phase: recompute centers from the shared accumulators.
		for c := 0; c < k; c++ {
			a := accums.Peek(c)
			if a.Count > 0 {
				for d := 0; d < dims; d++ {
					centers[c][d] = a.Sum[d] / float64(a.Count)
				}
			}
		}
		moved := changed.Peek()
		fmt.Printf("iteration %d: %d membership changes\n", iter, moved)
		if moved == 0 || iter >= 20 {
			break
		}
	}

	commits, aborts := sys.Stats()
	fmt.Printf("\nfinal centers:\n")
	for c, ctr := range centers {
		n := accums.Peek(c).Count
		fmt.Printf("  cluster %d: (%6.2f, %6.2f)  %d points\n", c, ctr[0], ctr[1], n)
	}
	fmt.Printf("commits=%d aborts=%d (the per-cluster accumulators are the hot spots)\n",
		commits, aborts)
}

func nearest(centers [][dims]float64, pt [dims]float64) int {
	best, bestD := 0, -1.0
	for c := range centers {
		d := 0.0
		for i := 0; i < dims; i++ {
			diff := centers[c][i] - pt[i]
			d += diff * diff
		}
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
