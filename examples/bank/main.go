// Bank: the paper's full four-phase workflow on a custom application —
// profile a contended banking workload, build the Thread State Automaton,
// check it with the analyzer, and compare default vs guided execution.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"sync"
	"time"

	"gstm"
)

const (
	threads     = 8
	accounts    = 16
	transfersBy = 1500
)

// workload runs the banking day: every thread does transfers (site 0) and
// occasionally an all-accounts audit (site 1), a long read-only
// transaction that conflicts with everything.
func workload(sys *gstm.System, bank *gstm.Array[int]) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id gstm.ThreadID) {
			defer wg.Done()
			rng := uint64(id)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < transfersBy; i++ {
				if i%100 == 99 { // audit
					err := sys.Run(nil, id, 1, func(tx *gstm.Tx) error {
						total := 0
						for a := 0; a < accounts; a++ {
							total += gstm.ReadAt(tx, bank, a)
						}
						if total != accounts*1000 {
							return fmt.Errorf("audit: total %d", total)
						}
						return nil
					})
					if err != nil {
						log.Fatal(err)
					}
					continue
				}
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
					amt := 1 + next(5)
					gstm.WriteAt(tx, bank, from, gstm.ReadAt(tx, bank, from)-amt)
					gstm.WriteAt(tx, bank, to, gstm.ReadAt(tx, bank, to)+amt)
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(gstm.ThreadID(w))
	}
	wg.Wait()
	return time.Since(start)
}

func freshBank() *gstm.Array[int] {
	bank := gstm.NewArray[int](accounts)
	for i := 0; i < accounts; i++ {
		bank.Reset(i, 1000)
	}
	return bank
}

func main() {
	runtime.GOMAXPROCS(1)
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 6})

	// Phase 1: profile.
	var traces []*gstm.Trace
	for run := 0; run < 8; run++ {
		sys.StartProfiling()
		workload(sys, freshBank())
		traces = append(traces, sys.StopProfiling())
	}
	fmt.Printf("profiled %d runs, %d commits in the last one\n",
		len(traces), traces[len(traces)-1].Commits)

	// Phase 2: model generation (Algorithm 1).
	m := gstm.BuildModel(threads, traces)
	fmt.Printf("thread state automaton: %d states\n", m.NumStates())

	// Phase 3: model analysis.
	rep := gstm.Analyze(m)
	fmt.Printf("analyzer: guidance metric %.0f%% — guidable: %v\n", rep.Metric, rep.Guidable)

	// Phase 4: guided vs default execution.
	measure := func(label string) {
		var times []time.Duration
		var aborts uint64
		for run := 0; run < 5; run++ {
			sys.ResetStats()
			times = append(times, workload(sys, freshBank()))
			_, a := sys.Stats()
			aborts += a
		}
		mean, sd := meanStd(times)
		fmt.Printf("%-8s mean=%8.2fms  stddev=%6.2fms  aborts/run=%d\n",
			label, mean*1e3, sd*1e3, aborts/uint64(len(times)))
	}

	sys.DisableGuidance()
	measure("default")

	if err := sys.EnableGuidance(m, gstm.WithTfactor(2)); err != nil {
		fmt.Printf("guidance rejected: %v — forcing for demonstration\n", err)
		sys.ForceGuidance(m, gstm.WithTfactor(2))
	}
	measure("guided")
	passed, held, escaped := sys.GateStats()
	fmt.Printf("gate: %d passed, %d held, %d escaped after k retries\n", passed, held, escaped)
}

func meanStd(ds []time.Duration) (mean, sd float64) {
	for _, d := range ds {
		mean += d.Seconds()
	}
	mean /= float64(len(ds))
	for _, d := range ds {
		diff := d.Seconds() - mean
		sd += diff * diff
	}
	if len(ds) > 1 {
		sd /= float64(len(ds) - 1)
	}
	return mean, math.Sqrt(sd)
}
