// Quickstart: shared state, transactions, and the commit/abort statistics
// that the rest of the library is built around.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"gstm"
)

func main() {
	// A System is an STM instance. Interleave forces transactions to
	// overlap even on a single core (see DESIGN.md).
	sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: 6})

	// Shared transactional state: a counter and an account array.
	counter := gstm.NewVar(0)
	accounts := gstm.NewArray[int](8)
	for i := 0; i < accounts.Len(); i++ {
		accounts.Reset(i, 100)
	}

	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(id gstm.ThreadID) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				// Transaction site 0: increment the shared counter. The
				// function may re-run after conflicts; all effects go
				// through Read/Write so retries are safe.
				err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
					gstm.Write(tx, counter, gstm.Read(tx, counter)+1)
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}

				// Transaction site 1: move a unit between two accounts.
				from := i % accounts.Len()
				to := (i + int(id) + 1) % accounts.Len()
				if from == to {
					continue
				}
				err = sys.Run(nil, id, 1, func(tx *gstm.Tx) error {
					gstm.WriteAt(tx, accounts, from, gstm.ReadAt(tx, accounts, from)-1)
					gstm.WriteAt(tx, accounts, to, gstm.ReadAt(tx, accounts, to)+1)
					return nil
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}(gstm.ThreadID(worker))
	}
	wg.Wait()

	total := 0
	for i := 0; i < accounts.Len(); i++ {
		total += accounts.Peek(i)
	}
	commits, aborts := sys.Stats()
	fmt.Printf("counter = %d (want 4000)\n", counter.Peek())
	fmt.Printf("account total = %d (want 800 — transfers conserve money)\n", total)
	fmt.Printf("commits = %d, aborts = %d (aborts are retried conflicts, not failures)\n",
		commits, aborts)
}
