package gstm

// GuidanceOption configures one guidance installation (EnableGuidance,
// ForceGuidance or EnableAdaptiveGuidance), mirroring the TxOption style of
// Run. Options are plain values; a []GuidanceOption built once may be
// reused across installs.
type GuidanceOption func(*guidanceSettings)

type guidanceSettings struct {
	tfactor        float64
	gateRetries    int
	watchdog       *WatchdogOptions
	recompileEvery int
}

func applyGuidanceOptions(opts []GuidanceOption) guidanceSettings {
	var set guidanceSettings
	for _, o := range opts {
		o(&set)
	}
	return set
}

// WithTfactor sets the paper's Tfactor: the highest outbound probability is
// divided by it to obtain the destination-set threshold. Zero (the default)
// selects the paper's value of 4.
func WithTfactor(t float64) GuidanceOption {
	return func(s *guidanceSettings) { s.tfactor = t }
}

// WithGateRetries sets the paper's k: how many times a held-back thread is
// re-checked before being forced through. Zero (the default) selects the
// engine default.
func WithGateRetries(k int) GuidanceOption {
	return func(s *guidanceSettings) { s.gateRetries = k }
}

// WithWatchdog arms the guidance watchdog: a circuit breaker that samples
// gate escape/hold rates and the abort rate over sliding windows and trips
// guidance into pass-through mode when the model is degrading execution —
// the runtime analogue of the analyzer's offline rejection. The zero
// WatchdogOptions value selects sound defaults; System.Health reports the
// breaker state and System.Mode refines ModeGuided to ModeDegraded while
// it is tripped.
func WithWatchdog(w WatchdogOptions) GuidanceOption {
	return func(s *guidanceSettings) {
		wd := w
		s.watchdog = &wd
	}
}

// WithRecompileEvery sets how many automaton state changes adaptive
// guidance accumulates before recompiling its guide table (0 selects the
// default). Only EnableAdaptiveGuidance consults it; the offline installs
// ignore it.
func WithRecompileEvery(n int) GuidanceOption {
	return func(s *guidanceSettings) { s.recompileEvery = n }
}
