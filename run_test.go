package gstm

import (
	"context"
	"errors"
	"testing"

	"gstm/internal/faultinject"
)

// TestRunReadOnlyOption checks that ReadOnly selects the write-rejecting
// fast path and that plain reads commit and count.
func TestRunReadOnlyOption(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	v := NewVar(41)

	if err := sys.Run(nil, 0, 0, func(tx *Tx) error {
		if got := Read(tx, v); got != 41 {
			t.Errorf("Read = %d, want 41", got)
		}
		return nil
	}, ReadOnly()); err != nil {
		t.Fatalf("read-only Run: %v", err)
	}

	err := sys.Run(nil, 0, 0, func(tx *Tx) error {
		Write(tx, v, 42)
		return nil
	}, ReadOnly())
	if err == nil {
		t.Fatal("Write inside ReadOnly Run succeeded")
	}
	if v.Peek() != 41 {
		t.Fatalf("rejected write was published: %d", v.Peek())
	}
}

// TestRunMaxAttempts turns a permanent spurious-abort schedule into
// ErrRetryBudgetExhausted after exactly n attempts, without any context.
func TestRunMaxAttempts(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	sys.rt.SetFaultInjector(faultinject.New(faultinject.Config{Seed: 1, SpuriousAbortProb: 1.01}))
	v := NewVar(0)

	attempts := 0
	err := sys.Run(nil, 0, 0, func(tx *Tx) error {
		attempts++
		Write(tx, v, Read(tx, v)+1)
		return nil
	}, MaxAttempts(3))
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if !errors.Is(err, ErrRetryBudgetExceeded) {
		t.Fatal("deprecated alias no longer matches")
	}
	if attempts != 3 {
		t.Fatalf("body ran %d times, want 3", attempts)
	}
	if v.Peek() != 0 {
		t.Fatalf("budget-exhausted Run published a write: %d", v.Peek())
	}
	h := sys.Health()
	if h.RetryBudgetExceeded != 1 {
		t.Fatalf("Health.RetryBudgetExceeded = %d, want 1", h.RetryBudgetExceeded)
	}
}

// TestRunMaxAttemptsOverridesContextBudget: the option wins over a
// context-carried budget when both are present.
func TestRunMaxAttemptsOverridesContextBudget(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	sys.rt.SetFaultInjector(faultinject.New(faultinject.Config{Seed: 1, SpuriousAbortProb: 1.01}))

	attempts := 0
	err := sys.Run(WithRetryBudget(context.Background(), 10), 0, 0, func(tx *Tx) error {
		attempts++
		return nil
	}, MaxAttempts(2))
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if attempts != 2 {
		t.Fatalf("body ran %d times, want 2 (MaxAttempts should override ctx budget)", attempts)
	}
}

// TestRunCanceledSentinel: a pre-canceled context surfaces as an error
// matching both gstm.ErrCanceled and context.Canceled.
func TestRunCanceledSentinel(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ran := false
	err := sys.Run(ctx, 0, 0, func(tx *Tx) error { ran = true; return nil })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, should also match context.Canceled", err)
	}
	if ran {
		t.Fatal("body ran under a pre-canceled context")
	}
}

// TestErrGuidanceRejectedSentinel: EnableGuidance on a hopeless model
// wraps the exported sentinel (and its deprecated alias).
func TestErrGuidanceRejectedSentinel(t *testing.T) {
	sys := NewSystem(Config{Threads: 2})
	m := BuildModel(2, nil) // empty model: nothing to guide with
	err := sys.EnableGuidance(m, GuidanceOptions{})
	if !errors.Is(err, ErrGuidanceRejected) {
		t.Fatalf("err = %v, want ErrGuidanceRejected", err)
	}
	if !errors.Is(err, ErrUnguidable) {
		t.Fatal("deprecated alias no longer matches")
	}
	if sys.Guided() {
		t.Fatal("rejected model installed guidance anyway")
	}
}

// TestDeprecatedWrappersDelegate drives each legacy entrypoint once and
// checks they still commit through the unified path.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	v := NewVar(0)
	bump := func(tx *Tx) error { Write(tx, v, Read(tx, v)+1); return nil }
	read := func(tx *Tx) error { Read(tx, v); return nil }

	if err := sys.Atomic(0, 0, bump); err != nil {
		t.Fatal(err)
	}
	if err := sys.AtomicCtx(context.Background(), 0, 0, bump); err != nil {
		t.Fatal(err)
	}
	if err := sys.AtomicRO(0, 0, read); err != nil {
		t.Fatal(err)
	}
	if err := sys.AtomicROCtx(context.Background(), 0, 0, read); err != nil {
		t.Fatal(err)
	}
	if v.Peek() != 2 {
		t.Fatalf("v = %d, want 2", v.Peek())
	}
	if c, _ := sys.Stats(); c != 4 {
		t.Fatalf("commits = %d, want 4", c)
	}
}
