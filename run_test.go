package gstm

import (
	"context"
	"errors"
	"testing"

	"gstm/internal/faultinject"
)

// TestRunReadOnlyOption checks that WithReadOnly selects the write-rejecting
// fast path and that plain reads commit and count.
func TestRunReadOnlyOption(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	v := NewVar(41)

	if err := sys.Run(nil, 0, 0, func(tx *Tx) error {
		if got := Read(tx, v); got != 41 {
			t.Errorf("Read = %d, want 41", got)
		}
		return nil
	}, WithReadOnly()); err != nil {
		t.Fatalf("read-only Run: %v", err)
	}

	err := sys.Run(nil, 0, 0, func(tx *Tx) error {
		Write(tx, v, 42)
		return nil
	}, WithReadOnly())
	if err == nil {
		t.Fatal("Write inside WithReadOnly Run succeeded")
	}
	if v.Peek() != 41 {
		t.Fatalf("rejected write was published: %d", v.Peek())
	}
}

// TestRunMaxAttempts turns a permanent spurious-abort schedule into
// ErrRetryBudgetExhausted after exactly n attempts, without any context.
func TestRunMaxAttempts(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	sys.rt.SetFaultInjector(faultinject.New(faultinject.Config{Seed: 1, SpuriousAbortProb: 1.01}))
	v := NewVar(0)

	attempts := 0
	err := sys.Run(nil, 0, 0, func(tx *Tx) error {
		attempts++
		Write(tx, v, Read(tx, v)+1)
		return nil
	}, WithMaxAttempts(3))
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if attempts != 3 {
		t.Fatalf("body ran %d times, want 3", attempts)
	}
	if v.Peek() != 0 {
		t.Fatalf("budget-exhausted Run published a write: %d", v.Peek())
	}
	h := sys.Health()
	if h.RetryBudgetExceeded != 1 {
		t.Fatalf("Health.RetryBudgetExceeded = %d, want 1", h.RetryBudgetExceeded)
	}
}

// TestRunMaxAttemptsOverridesContextBudget: the option wins over a
// context-carried budget when both are present.
func TestRunMaxAttemptsOverridesContextBudget(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	sys.rt.SetFaultInjector(faultinject.New(faultinject.Config{Seed: 1, SpuriousAbortProb: 1.01}))

	attempts := 0
	err := sys.Run(WithRetryBudget(context.Background(), 10), 0, 0, func(tx *Tx) error {
		attempts++
		return nil
	}, WithMaxAttempts(2))
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if attempts != 2 {
		t.Fatalf("body ran %d times, want 2 (WithMaxAttempts should override ctx budget)", attempts)
	}
}

// TestRunCanceledSentinel: a pre-canceled context surfaces as an error
// matching both gstm.ErrCanceled and context.Canceled.
func TestRunCanceledSentinel(t *testing.T) {
	sys := NewSystem(Config{Threads: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ran := false
	err := sys.Run(ctx, 0, 0, func(tx *Tx) error { ran = true; return nil })
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, should also match context.Canceled", err)
	}
	if ran {
		t.Fatal("body ran under a pre-canceled context")
	}
}

// TestErrGuidanceRejectedSentinel: EnableGuidance on a hopeless model
// wraps the exported sentinel.
func TestErrGuidanceRejectedSentinel(t *testing.T) {
	sys := NewSystem(Config{Threads: 2})
	m := BuildModel(2, nil) // empty model: nothing to guide with
	err := sys.EnableGuidance(m)
	if !errors.Is(err, ErrGuidanceRejected) {
		t.Fatalf("err = %v, want ErrGuidanceRejected", err)
	}
	if sys.Guided() {
		t.Fatal("rejected model installed guidance anyway")
	}
}

// TestSystemModeLifecycle walks the mode machine through its System-level
// states: unguided → profiling → guided → unguided, with Health agreeing
// at every step.
func TestSystemModeLifecycle(t *testing.T) {
	sys := NewSystem(Config{Threads: 2})
	if got := sys.Mode(); got != ModeUnguided {
		t.Fatalf("fresh system mode = %v, want unguided", got)
	}
	sys.StartProfiling()
	if got := sys.Mode(); got != ModeProfiling {
		t.Fatalf("mode while profiling = %v, want profiling", got)
	}
	v := NewVar(0)
	for i := 0; i < 64; i++ {
		if err := sys.Run(nil, ThreadID(i%2), 0, func(tx *Tx) error {
			Write(tx, v, Read(tx, v)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	tr := sys.StopProfiling()
	if got := sys.Mode(); got != ModeUnguided {
		t.Fatalf("mode after StopProfiling = %v, want unguided", got)
	}
	sys.ForceGuidance(BuildModel(2, []*Trace{tr}), WithTfactor(2))
	if got := sys.Mode(); got != ModeGuided {
		t.Fatalf("mode after ForceGuidance = %v, want guided", got)
	}
	if h := sys.Health(); h.Mode != ModeGuided {
		t.Fatalf("Health.Mode = %v, want guided", h.Mode)
	}
	sys.DisableGuidance()
	if got := sys.Mode(); got != ModeUnguided {
		t.Fatalf("mode after DisableGuidance = %v, want unguided", got)
	}
	for _, m := range []Mode{ModeUnguided, ModeGuided, ModeRejected, ModeDegraded} {
		if !m.Settled() {
			t.Fatalf("%v.Settled() = false", m)
		}
	}
	if ModeProfiling.Settled() || ModeTraining.Settled() {
		t.Fatal("transitional modes report Settled")
	}
}
