module gstm

go 1.24
