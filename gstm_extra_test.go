package gstm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"gstm"
	"gstm/internal/cm"
)

func TestEagerConfigThroughPublicAPI(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 2, Interleave: 4, EagerWriteLock: true})
	v := gstm.NewVar(0)
	runCounterWorkload(sys, 2, 100, v)
	if got := v.Peek(); got != 200 {
		t.Fatalf("eager counter = %d, want 200", got)
	}
}

type spyScheduler struct {
	arrivals atomic.Int64
	commits  atomic.Int64
}

func (s *spyScheduler) Arrive(p gstm.Pair) gstm.GateOutcome { s.arrivals.Add(1); return gstm.GatePass }
func (s *spyScheduler) TxCommit(p gstm.Pair, wv uint64, aborts int) {
	s.commits.Add(1)
}
func (s *spyScheduler) TxAbort(p gstm.Pair, byWV uint64, by gstm.Pair, known bool) {}

func TestSetSchedulerReceivesEventsAndComposesWithProfiling(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 2, Interleave: 4})
	spy := &spyScheduler{}
	sys.SetScheduler(spy, spy)
	if sys.Guided() {
		t.Fatal("custom scheduler must not report as guidance")
	}

	v := gstm.NewVar(0)
	sys.StartProfiling()
	runCounterWorkload(sys, 2, 50, v)
	tr := sys.StopProfiling()

	if spy.arrivals.Load() < 100 {
		t.Fatalf("scheduler arrivals = %d, want >= 100", spy.arrivals.Load())
	}
	if spy.commits.Load() != 100 {
		t.Fatalf("scheduler commits = %d, want 100", spy.commits.Load())
	}
	if tr == nil || tr.Commits != 100 {
		t.Fatalf("profiling alongside scheduler lost events: %+v", tr)
	}

	// Removal stops consultations.
	sys.SetScheduler(nil, nil)
	before := spy.arrivals.Load()
	_ = sys.Run(nil, 0, 0, func(tx *gstm.Tx) error { return nil })
	if spy.arrivals.Load() != before {
		t.Fatal("scheduler consulted after removal")
	}
}

func TestContentionManagerThroughPublicAPI(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: 4})
	p := cm.NewPolite(0)
	sys.SetScheduler(p, p)
	v := gstm.NewVar(0)
	runCounterWorkload(sys, 4, 100, v)
	if got := v.Peek(); got != 400 {
		t.Fatalf("counter under Polite = %d, want 400", got)
	}
}

func TestForceGuidanceReplacesScheduler(t *testing.T) {
	const threads = 2
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 4})
	spy := &spyScheduler{}
	sys.SetScheduler(spy, spy)

	v := gstm.NewVar(0)
	sys.StartProfiling()
	runCounterWorkload(sys, threads, 50, v)
	m := gstm.BuildModel(threads, []*gstm.Trace{sys.StopProfiling()})

	sys.ForceGuidance(m)
	if !sys.Guided() {
		t.Fatal("guidance not installed")
	}
	before := spy.arrivals.Load()
	v2 := gstm.NewVar(0)
	runCounterWorkload(sys, threads, 20, v2)
	if spy.arrivals.Load() != before {
		t.Fatal("old scheduler still consulted after ForceGuidance")
	}
	if v2.Peek() != 40 {
		t.Fatalf("guided counter = %d", v2.Peek())
	}
}

func TestConcurrentProfilingTogglesSafe(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 2, Interleave: 4})
	v := gstm.NewVar(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = sys.Run(nil, 0, 0, func(tx *gstm.Tx) error {
				gstm.Write(tx, v, gstm.Read(tx, v)+1)
				return nil
			})
		}
	}()
	for i := 0; i < 30; i++ {
		sys.StartProfiling()
		_ = sys.StopProfiling()
	}
	close(stop)
	wg.Wait()
}

func TestAnalyzeMatchesEnableDecision(t *testing.T) {
	const threads = 4
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 4})
	var traces []*gstm.Trace
	for i := 0; i < 4; i++ {
		v := gstm.NewVar(0)
		sys.StartProfiling()
		runCounterWorkload(sys, threads, 100, v)
		traces = append(traces, sys.StopProfiling())
	}
	m := gstm.BuildModel(threads, traces)
	rep := gstm.Analyze(m)
	err := sys.EnableGuidance(m)
	if rep.Guidable && err != nil {
		t.Fatalf("analyzer accepts but EnableGuidance fails: %v", err)
	}
	if !rep.Guidable && err == nil {
		t.Fatal("analyzer rejects but EnableGuidance succeeded")
	}
}

func TestAdaptiveGuidanceThroughPublicAPI(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: 4})
	ad := sys.EnableAdaptiveGuidance(nil, gstm.WithTfactor(2), gstm.WithRecompileEvery(128))
	if ad == nil {
		t.Fatal("nil adaptive controller")
	}
	if !sys.Guided() {
		t.Fatal("adaptive guidance not reported as guided")
	}
	v := gstm.NewVar(0)
	runCounterWorkload(sys, 4, 200, v)
	if got := v.Peek(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
	if ad.ModelStates() == 0 {
		t.Fatal("adaptive controller learned nothing")
	}
	snap := ad.Snapshot()
	if snap.NumStates() != ad.ModelStates() {
		t.Fatal("snapshot size mismatch")
	}
	sys.DisableGuidance()
	if sys.Guided() {
		t.Fatal("still guided after disable")
	}
}
