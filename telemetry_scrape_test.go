package gstm_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"gstm"
	"gstm/internal/harness"
	"gstm/internal/stamp"
)

// scrape fetches one telemetry endpoint and returns the body.
func scrape(t *testing.T, base, path string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(body), resp
}

// promValue extracts the value of an unlabeled sample from Prometheus text.
func promValue(t *testing.T, text, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parsing %s sample %q: %v", name, line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, text)
	return 0
}

// TestServeTelemetryScrapeMatchesHarness is the end-to-end check that the
// exporter and the harness agree: it runs a small benchmark, scrapes the
// live endpoint, and asserts the process-wide counters cover both measured
// sides and that sampled commit latencies actually accumulated.
func TestServeTelemetryScrapeMatchesHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full small benchmark")
	}
	before := gstm.GatherTelemetry()

	w, err := stamp.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.RunBenchmark(w, harness.Config{
		Threads:   2,
		TrainRuns: 2,
		Runs:      2,
		TrainSize: stamp.Small,
		TestSize:  stamp.Small,
		Tfactor:   4,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	measured := res.Default.Commits + res.Guided.Commits
	if measured == 0 {
		t.Fatal("benchmark committed nothing")
	}

	srv, err := gstm.ServeTelemetry("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Graceful shutdown drains in-flight scrapes and frees the port at
	// once, so later tests (or a re-run) can rebind without a flake.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("telemetry shutdown: %v", err)
		}
	}()
	base := fmt.Sprintf("http://%s", srv.BoundAddr)

	// /metrics: the process-wide commit counter must cover every commit the
	// harness reported for its two measured sides (the registry also holds
	// training-side runtimes, so >= rather than ==).
	metrics, resp := scrape(t, base, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	commits := promValue(t, metrics, "gstm_tx_commits_total")
	delta := commits - float64(before.Commits)
	if delta < float64(measured) {
		t.Fatalf("scraped commit delta %.0f < harness measured commits %d", delta, measured)
	}
	if got := promValue(t, metrics, "gstm_commit_latency_seconds_count"); got <= float64(before.CommitLatency.Count) {
		t.Fatalf("commit latency count did not grow: %.0f <= %d", got, before.CommitLatency.Count)
	}

	// The harness's own per-side snapshots must agree with what it counted.
	for side, s := range map[string]harness.SideResult{"default": res.Default, "guided": res.Guided} {
		if s.Telemetry.Commits != s.Commits {
			t.Errorf("%s side: telemetry commits %d != harness commits %d", side, s.Telemetry.Commits, s.Commits)
		}
		if s.Telemetry.CommitLatency.Count == 0 {
			t.Errorf("%s side: no sampled commit latencies", side)
		}
	}

	// /debug/vars: the gstm key is a full Snapshot and must agree with the
	// Prometheus exposition scraped moments ago (counters only grow).
	vars, resp := scrape(t, base, "/debug/vars")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/debug/vars content-type = %q", ct)
	}
	var payload struct {
		Cmdline []string               `json:"cmdline"`
		Gstm    gstm.TelemetrySnapshot `json:"gstm"`
	}
	if err := json.Unmarshal([]byte(vars), &payload); err != nil {
		t.Fatalf("unmarshal /debug/vars: %v", err)
	}
	if len(payload.Cmdline) == 0 {
		t.Fatal("/debug/vars missing cmdline")
	}
	if float64(payload.Gstm.Commits) < commits {
		t.Fatalf("/debug/vars commits %d < /metrics commits %.0f", payload.Gstm.Commits, commits)
	}

	// /debug/pprof/: the index must be up.
	if body, _ := scrape(t, base, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index missing profile listing")
	}
}
