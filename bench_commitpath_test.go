// Commit-path microbenchmarks and allocation gates: the write-set lookup
// fast path, global-clock contention, and the traced (sink-installed) commit
// discipline. Paired with BENCH_commitpath.json, the committed before/after
// record of the commit-path overhaul these benches guard.
package gstm_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"gstm/internal/libtm"
	"gstm/internal/tl2"
	"gstm/internal/txid"
)

// BenchmarkWriteSetLookup times the buffered-write fast path: rewriting and
// re-reading locations already in the write set, the operations the
// small-vector set answers from its filter word plus a sorted lookup. Both
// regimes are covered: a set that fits the inline array and one that has
// spilled to the sorted heap slice. The whole loop runs inside one
// transaction so only lookups (never commits) are on the clock; allocs/op
// must report 0 (the redo boxes are updated in place).
func BenchmarkWriteSetLookup(b *testing.B) {
	for _, size := range []int{8, 64} {
		name := fmt.Sprintf("inline%d", size)
		if size > 8 {
			name = fmt.Sprintf("spill%d", size)
		}
		b.Run(name, func(b *testing.B) {
			rt := tl2.New(tl2.Config{})
			arr := tl2.NewArray[int](size)
			b.ReportAllocs()
			if err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
				for j := 0; j < size; j++ {
					tl2.WriteAt(tx, arr, j, j)
				}
				b.ResetTimer()
				mask := size - 1
				for i := 0; i < b.N; i++ {
					j := i & mask
					tl2.WriteAt(tx, arr, j, i)
					if tl2.ReadAt(tx, arr, j) != i {
						b.Fatal("buffered read mismatch")
					}
				}
				return nil
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkClockContention hammers the global version clock: worker
// goroutines committing to disjoint Vars, so the only shared write is the
// clock itself. The gv4_adoptions metric counts commits that resolved a
// failed clock CAS by adopting the winner's value (pass-on-failure) instead
// of retrying the RMW.
func BenchmarkClockContention(b *testing.B) {
	rt := tl2.New(tl2.Config{})
	rt.Telemetry().Reset()
	var tid atomic.Uint64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.RunParallel(func(pb *testing.PB) {
		id := txid.ThreadID(tid.Add(1))
		v := tl2.NewVar(0)
		for pb.Next() {
			_ = rt.Atomic(id, 0, func(tx *tl2.Tx) error {
				tl2.Write(tx, v, tl2.Read(tx, v)+1)
				return nil
			})
		}
	})
	b.ReportMetric(float64(rt.Telemetry().ClockCASFallbacks.Load()), "gv4_adoptions")
}

// nopSink is an installed-but-trivial EventSink: its presence switches the
// commit path to the traced discipline (unique ticks, no elision), the mode
// guided execution and profiling run in.
type nopSink struct{}

func (nopSink) TxCommit(p txid.Pair, wv uint64, aborts int)                {}
func (nopSink) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, known bool) {}

// BenchmarkTL2TracedReadWrite is BenchmarkTL2ReadWrite with a sink
// installed: the commit cost guided/profiled runs pay, including the
// mandatory unique clock tick.
func BenchmarkTL2TracedReadWrite(b *testing.B) {
	rt := tl2.New(tl2.Config{})
	rt.SetSink(nopSink{})
	v := tl2.NewVar(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(0, 0, func(tx *tl2.Tx) error {
			tl2.Write(tx, v, tl2.Read(tx, v)+1)
			return nil
		})
	}
}

// TestTL2WriteFastPathZeroAllocs is the hard allocation gate on the
// buffered-write fast path: a Write to an already-buffered location updates
// the redo box in place, and the paired Read answers from the write set, so
// neither may allocate. (The first write to a location allocates exactly
// the box that commit publishes; that is the floor for a write-back STM.)
func TestTL2WriteFastPathZeroAllocs(t *testing.T) {
	rt := tl2.New(tl2.Config{})
	arr := tl2.NewArray[int](16)
	if err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
		for j := 0; j < 16; j++ {
			tl2.WriteAt(tx, arr, j, j)
		}
		if avg := testing.AllocsPerRun(200, func() {
			tl2.WriteAt(tx, arr, 5, 99)
			if tl2.ReadAt(tx, arr, 5) != 99 {
				t.Error("buffered read mismatch")
			}
		}); avg != 0 {
			t.Errorf("tl2 buffered Write+Read = %.2f allocs/op, want 0", avg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleShardCommitAllocFloor gates the WHOLE single-shard
// transaction — begin, typed read and write, lock, validate, publish,
// release — now that the cross-shard commit machinery (MultiGroup fence,
// exchanged-timestamp publish sweep) is compiled into the runtime. A
// read-only transaction must stay at zero allocations end to end; a write
// transaction at exactly one (the redo box its first write to the
// location allocates — the write-back floor, unchanged from before the
// cross-shard protocol existed). A transaction with one home shard never
// loads the fence words or takes the exchange path, so the multi-shard
// protocol's cost to the fast path has to stay exactly nothing.
func TestSingleShardCommitAllocFloor(t *testing.T) {
	rt := tl2.New(tl2.Config{})
	arr := tl2.NewArray[int64](64)
	var i int
	read := func(tx *tl2.Tx) error {
		sinkI64 += tl2.ReadAt(tx, arr, i&63)
		return nil
	}
	if avg := testing.AllocsPerRun(200, func() {
		i++
		if err := rt.Atomic(0, 0, read); err != nil {
			t.Error(err)
		}
	}); avg != 0 {
		t.Errorf("single-shard read-only commit loop = %.2f allocs/op, want 0", avg)
	}
	write := func(tx *tl2.Tx) error {
		v := tl2.ReadAt(tx, arr, i&63)
		tl2.WriteAt(tx, arr, i&63, v+1)
		return nil
	}
	if avg := testing.AllocsPerRun(200, func() {
		i++
		if err := rt.Atomic(0, 0, write); err != nil {
			t.Error(err)
		}
	}); avg > 1 {
		t.Errorf("single-shard write commit loop = %.2f allocs/op, want <= 1 (the redo box)", avg)
	}
}

var sinkI64 int64

// TestLibTMWriteFastPathZeroAllocs: same gate for the libtm engine, which
// shares the write-set structure.
func TestLibTMWriteFastPathZeroAllocs(t *testing.T) {
	rt := libtm.New(libtm.Config{})
	objs := make([]*libtm.Obj[int], 16)
	for i := range objs {
		objs[i] = libtm.NewObj(i)
	}
	if err := rt.Atomic(0, 0, func(tx *libtm.Tx) error {
		for j, o := range objs {
			libtm.Write(tx, o, j)
		}
		if avg := testing.AllocsPerRun(200, func() {
			libtm.Write(tx, objs[5], 99)
			if libtm.Read(tx, objs[5]) != 99 {
				t.Error("buffered read mismatch")
			}
		}); avg != 0 {
			t.Errorf("libtm buffered Write+Read = %.2f allocs/op, want 0", avg)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
