package gstm

import (
	"context"

	"gstm/internal/obs"
	"gstm/internal/tl2"
)

// TxOption configures one Run call. Options are plain values; building a
// []TxOption once and reusing it across calls is fine and allocation-free
// when passed as a pre-built slice.
//
// All constructors follow the With* naming convention (WithReadOnly,
// WithMaxAttempts, WithSpan, WithBlocking, WithNoBlock). The pre-v1
// spellings ReadOnly and MaxAttempts are gone; see the README migration
// table.
type TxOption func(*txSettings)

type txSettings struct {
	readOnly    bool
	maxAttempts int
	span        *obs.Span
	block       bool
	blockCtx    context.Context
}

// WithReadOnly selects TL2's read-only fast path: no read-set bookkeeping,
// because access-time validation already covers a transaction that writes
// nothing. A Write inside the body returns an error without retrying.
// (Combined with WithBlocking, reads are tracked after all — a park needs
// to know what was read — but the commit stays validation-free.)
func WithReadOnly() TxOption {
	return func(s *txSettings) { s.readOnly = true }
}

// WithMaxAttempts bounds the attempts one Run call may make: n allows the
// initial attempt plus n-1 retries; when the last allowed attempt aborts
// on a conflict Run returns ErrRetryBudgetExhausted. n <= 0 means
// unlimited (the classic STM contract). It subsumes WithRetryBudget
// without the context allocation, and overrides a context-carried budget
// when both are present.
func WithMaxAttempts(n int) TxOption {
	return func(s *txSettings) { s.maxAttempts = n }
}

// WithSpan attaches a variance-observatory span to the Run call: gate
// waits, every aborted attempt (with its taxonomy cause) and the commit
// protocol's lock/validate/publish phases are recorded into sp's timeline.
// sp may be nil (the option is then a no-op). The caller owns sp's
// lifecycle — Start it before Run and Finish it after; Run only appends
// events. The untraced path (no WithSpan) records nothing and allocates
// nothing.
func WithSpan(sp *Span) TxOption {
	return func(s *txSettings) { s.span = sp }
}

// WithBlocking enables composable blocking for the Run call: when the
// transaction body calls tx.Retry (directly, or because every Select
// alternative retried), the goroutine parks on the locations the attempt
// read and the transaction re-runs when a concurrent commit changes one of
// them — no polling, no spin-retrying. ctx bounds the parks: its
// cancellation or deadline ends a park (and the Run call) with an error
// matching ErrCanceled. A nil ctx bounds parks by Run's own context
// instead; with neither, a park waits indefinitely.
//
// Parked time is visible in the variance observatory as the PhasePark
// phase ("wakeup" cause) and counted by gstm_tx_parked_total.
func WithBlocking(ctx context.Context) TxOption {
	return func(s *txSettings) {
		s.block = true
		s.blockCtx = ctx
	}
}

// WithNoBlock restores the default fail-fast behavior (a tx.Retry returns
// ErrWouldBlock immediately), overriding an earlier WithBlocking in the
// same option list — useful when a call site layers options over a shared
// pre-built slice.
func WithNoBlock() TxOption {
	return func(s *txSettings) {
		s.block = false
		s.blockCtx = nil
	}
}

// Run executes fn transactionally as transaction site txn on worker
// thread — the package's single transactional entrypoint.
//
// fn may be re-executed after conflicts and must confine its effects to
// transactional Reads and Writes; a non-nil error from fn aborts the
// attempt without retry and is returned verbatim.
//
// ctx may be nil, meaning not cancelable — the fastest path, with no
// per-attempt check. Otherwise cancellation or deadline expiry is checked
// between attempts (an in-flight attempt always finishes aborting or
// committing first) and surfaces as an error matching both ErrCanceled
// and the context's own error, with no locks held and no writes
// published. A retry bound set with WithMaxAttempts (or carried by ctx via
// WithRetryBudget) turns budget exhaustion into ErrRetryBudgetExhausted.
//
// A tx.Retry inside fn returns ErrWouldBlock unless WithBlocking enabled
// parking for this call.
func (s *System) Run(ctx context.Context, thread ThreadID, txn TxnID, fn func(*Tx) error, opts ...TxOption) error {
	var set txSettings
	for _, o := range opts {
		o(&set)
	}
	return s.rt.RunOpt(ctx, thread, txn, fn, tl2.RunOpts{
		ReadOnly:    set.readOnly,
		MaxAttempts: set.maxAttempts,
		Span:        set.span,
		Block:       set.block,
		BlockCtx:    set.blockCtx,
	})
}
