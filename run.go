package gstm

import (
	"context"

	"gstm/internal/obs"
)

// TxOption configures one Run call. Options are plain values; building a
// []TxOption once and reusing it across calls is fine and allocation-free
// when passed as a pre-built slice.
type TxOption func(*txSettings)

type txSettings struct {
	readOnly    bool
	maxAttempts int
	span        *obs.Span
}

// ReadOnly selects TL2's read-only fast path: no read-set bookkeeping,
// because access-time validation already covers a transaction that writes
// nothing. A Write inside the body returns an error without retrying.
func ReadOnly() TxOption {
	return func(s *txSettings) { s.readOnly = true }
}

// MaxAttempts bounds the attempts one Run call may make: n allows the
// initial attempt plus n-1 retries; when the last allowed attempt aborts
// on a conflict Run returns ErrRetryBudgetExhausted. n <= 0 means
// unlimited (the classic STM contract). It subsumes WithRetryBudget
// without the context allocation, and overrides a context-carried budget
// when both are present.
func MaxAttempts(n int) TxOption {
	return func(s *txSettings) { s.maxAttempts = n }
}

// WithSpan attaches a variance-observatory span to the Run call: gate
// waits, every aborted attempt (with its taxonomy cause) and the commit
// protocol's lock/validate/publish phases are recorded into sp's timeline.
// sp may be nil (the option is then a no-op). The caller owns sp's
// lifecycle — Start it before Run and Finish it after; Run only appends
// events. The untraced path (no WithSpan) records nothing and allocates
// nothing.
func WithSpan(sp *Span) TxOption {
	return func(s *txSettings) { s.span = sp }
}

// Run executes fn transactionally as transaction site txn on worker
// thread — the package's single transactional entrypoint.
//
// fn may be re-executed after conflicts and must confine its effects to
// transactional Reads and Writes; a non-nil error from fn aborts the
// attempt without retry and is returned verbatim.
//
// ctx may be nil, meaning not cancelable — the fastest path, with no
// per-attempt check. Otherwise cancellation or deadline expiry is checked
// between attempts (an in-flight attempt always finishes aborting or
// committing first) and surfaces as an error matching both ErrCanceled
// and the context's own error, with no locks held and no writes
// published. A retry bound set with MaxAttempts (or carried by ctx via
// WithRetryBudget) turns budget exhaustion into ErrRetryBudgetExhausted.
func (s *System) Run(ctx context.Context, thread ThreadID, txn TxnID, fn func(*Tx) error, opts ...TxOption) error {
	var set txSettings
	for _, o := range opts {
		o(&set)
	}
	if set.span != nil {
		return s.rt.RunSpan(ctx, thread, txn, fn, set.readOnly, set.maxAttempts, set.span)
	}
	return s.rt.Run(ctx, thread, txn, fn, set.readOnly, set.maxAttempts)
}
