package gstm

import (
	"errors"

	"gstm/internal/retry"
)

// This file is the package's stable error surface. Every sentinel here is
// usable with errors.Is; wrapped variants carry detail (the analyzer's
// rejection reason, the underlying context error) without breaking the
// match. Network front-ends such as internal/server map these sentinels
// onto protocol status codes.

// ErrRetryBudgetExhausted is returned by Run when the transaction's last
// allowed attempt (see MaxAttempts and WithRetryBudget) also aborted on a
// conflict. It is a policy outcome, not corruption: no partial effects are
// visible and the call may be retried with a fresh budget.
var ErrRetryBudgetExhausted = retry.ErrBudgetExceeded

// ErrCanceled is returned (wrapped around the context's own error) by Run
// when its context is canceled or its deadline passes between attempts.
// errors.Is also matches context.Canceled / context.DeadlineExceeded on
// the same error. No locks remain held and no writes were published.
var ErrCanceled = retry.ErrCanceled

// ErrWouldBlock is returned by Run when the transaction body called
// tx.Retry (directly or via Select) and blocking was not enabled for the
// call (no WithBlocking option), or when it retried with an empty read set
// — a transaction that read nothing can never be woken, so parking it
// would sleep forever. No partial effects are visible; enable WithBlocking
// or handle the sentinel as "not ready yet".
var ErrWouldBlock = retry.ErrWouldBlock

// ErrGuidanceRejected is returned by EnableGuidance when the model fails
// the analyzer's validation (not enough bias to guide — the paper's
// "unguidable" verdict) and ForceGuidance is not used. The returned error
// wraps this sentinel together with the analyzer's reason.
var ErrGuidanceRejected = errors.New("gstm: model rejected by analyzer")
