package gstm

import "gstm/internal/guide"

// Mode is the execution mode of a System (and, one level up, of each shard
// of a sharded deployment): where it currently sits in the paper's
// profile → train → analyze → guide lifecycle. The System itself only ever
// occupies the states its own methods can establish — ModeUnguided,
// ModeProfiling, ModeGuided and ModeDegraded, derived in System.Mode from
// the installed collector, controller and watchdog. The remaining states
// (ModeTraining, ModeRejected) belong to lifecycle drivers such as
// internal/server, which overlay them while a model is being built in the
// background or after the analyzer rejected one; they reuse this type so
// the whole repo speaks one mode vocabulary.
type Mode uint32

const (
	// ModeUnguided: plain TL2 — no guidance gate, no profiling collector.
	ModeUnguided Mode = 0
	// ModeProfiling: serving unguided while a collector captures the
	// transaction sequence (StartProfiling is active).
	ModeProfiling Mode = 1
	// ModeTraining: profiling finished and a model is being built and
	// analyzed in the background while execution continues unguided. A
	// System never reports this itself; lifecycle drivers overlay it.
	ModeTraining Mode = 2
	// ModeGuided: a guidance controller is installed (EnableGuidance,
	// ForceGuidance or EnableAdaptiveGuidance).
	ModeGuided Mode = 3
	// ModeRejected: the analyzer rejected the trained model
	// (ErrGuidanceRejected) and execution stays unguided. A System never
	// reports this itself; lifecycle drivers latch it.
	ModeRejected Mode = 4
	// ModeDegraded: guidance is installed but its watchdog has tripped it
	// into pass-through. Always derived, never stored.
	ModeDegraded Mode = 5
)

func (m Mode) String() string {
	switch m {
	case ModeUnguided:
		return "unguided"
	case ModeProfiling:
		return "profiling"
	case ModeTraining:
		return "training"
	case ModeGuided:
		return "guided"
	case ModeRejected:
		return "rejected"
	case ModeDegraded:
		return "degraded"
	default:
		return "unknown"
	}
}

// Settled reports whether the mode is a resting state of the lifecycle
// rather than a transitional one: everything except ModeProfiling and
// ModeTraining.
func (m Mode) Settled() bool {
	return m != ModeProfiling && m != ModeTraining
}

// Mode derives the System's current execution mode from what is installed:
// guided (refined to degraded while the watchdog holds guidance tripped)
// when a guidance controller is present, profiling when only a collector
// is, unguided otherwise. This is the single source of truth the serving
// lifecycle builds on; see Health for the same value alongside counters.
func (s *System) Mode() Mode {
	s.mu.Lock()
	ctrl, dog, col := s.ctrl, s.dog, s.collector
	s.mu.Unlock()
	switch {
	case ctrl != nil && dog != nil && dog.Snapshot().State == guide.WatchdogTripped:
		return ModeDegraded
	case ctrl != nil:
		return ModeGuided
	case col != nil:
		return ModeProfiling
	default:
		return ModeUnguided
	}
}
