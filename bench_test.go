// Experiment benchmarks: one per table and figure of the paper's
// evaluation, plus micro-benchmarks of the STM primitives and ablations of
// the design knobs (Tfactor, gate retries, interleave).
//
// The table/figure benchmarks share two cached experiment suites (8 and 16
// worker threads) built on first use with inputs scaled for a single-core
// machine; the timed region of each benchmark is only the rendering of the
// table, so `go test -bench=.` both regenerates every result and stays
// bounded. Each table is printed to stdout once, so the bench log doubles
// as the experiment report (see EXPERIMENTS.md for the paper-vs-measured
// comparison).
package gstm_test

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"gstm"
	"gstm/internal/harness"
	"gstm/internal/libtm"
	"gstm/internal/stamp"
	"gstm/internal/tl2"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

// ---------------------------------------------------------------------------
// Cached experiment suites
// ---------------------------------------------------------------------------

var (
	suiteOnce  sync.Map // threads → *sync.Once
	suiteCache sync.Map // threads → *harness.Suite

	synquakeOnce   sync.Once
	synquakeResult *harness.SynQuakeResult
	synquakeErr    error
)

// benchConfig returns the scaled-down experiment configuration used by the
// table/figure benchmarks.
func benchConfig(threads int) harness.Config {
	return harness.Config{
		Threads:     threads,
		TrainRuns:   4,
		Runs:        8,
		TrainSize:   stamp.Small,
		TestSize:    stamp.Small,
		Interleave:  6,
		Tfactor:     2,
		GateRetries: 16,
		Seed:        0xC0FFEE,
	}
}

func suiteFor(b *testing.B, threads int) *harness.Suite {
	b.Helper()
	onceAny, _ := suiteOnce.LoadOrStore(threads, &sync.Once{})
	onceAny.(*sync.Once).Do(func() {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		s := harness.NewSuite()
		for _, w := range stamp.All() {
			res, err := harness.RunBenchmark(w, benchConfig(threads))
			if err != nil {
				b.Fatalf("building %d-thread suite: %s: %v", threads, w.Name(), err)
			}
			s.Add(res)
		}
		suiteCache.Store(threads, s)
	})
	s, ok := suiteCache.Load(threads)
	if !ok {
		b.Fatalf("suite for %d threads failed to build", threads)
	}
	return s.(*harness.Suite)
}

func synquakeFor(b *testing.B) *harness.SynQuakeResult {
	b.Helper()
	synquakeOnce.Do(func() {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		synquakeResult, synquakeErr = harness.RunSynQuake(harness.SynQuakeConfig{
			Threads: 8, Players: 192, TrainFrames: 60, TestFrames: 150, TrainRuns: 2,
			Interleave: 6, Tfactor: 2, GateRetries: 16, Seed: 5,
		})
	})
	if synquakeErr != nil {
		b.Fatal(synquakeErr)
	}
	return synquakeResult
}

var printedSections sync.Map

// printOnce writes a section to stdout exactly once per process so repeated
// bench iterations do not spam the report.
func printOnce(section, content string) {
	if _, loaded := printedSections.LoadOrStore(section, true); !loaded {
		fmt.Fprintf(os.Stdout, "\n%s\n", content)
	}
}

// ---------------------------------------------------------------------------
// Tables and figures (STAMP)
// ---------------------------------------------------------------------------

func BenchmarkTableI_GuidanceMetric(b *testing.B) {
	s8, s16 := suiteFor(b, 8), suiteFor(b, 16)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		s8.WriteTableI(&sb)
		_ = s16 // both thread counts live in one suite table below
	}
	merged := mergedSuite(b)
	var out strings.Builder
	merged.WriteTableI(&out)
	printOnce("table1", out.String())
	if r := merged.Get("kmeans", 8); r != nil {
		b.ReportMetric(r.Report.Metric, "kmeans_metric_%")
	}
}

func BenchmarkTableIII_ModelStates(b *testing.B) {
	merged := mergedSuite(b)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		merged.WriteTableIII(&sb)
	}
	printOnce("table3", sb.String())
	if r := merged.Get("ssca2", 8); r != nil {
		b.ReportMetric(float64(r.Model.NumStates()), "ssca2_states")
	}
}

func BenchmarkTableIV_TailImprovement(b *testing.B) {
	merged := mergedSuite(b)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		merged.WriteTableIV(&sb)
	}
	printOnce("table4", sb.String())
	if r := merged.Get("kmeans", 8); r != nil {
		b.ReportMetric(r.TailImprovement(), "kmeans_tail_improvement_%")
	}
}

func BenchmarkFig4_Variance8(b *testing.B) {
	s := suiteFor(b, 8)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		s.WriteVarianceFigure(&sb, 8)
	}
	printOnce("fig4", sb.String())
}

func BenchmarkFig5_AbortTails8(b *testing.B) {
	s := suiteFor(b, 8)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		s.WriteAbortTailFigure(&sb, 8)
	}
	printOnce("fig5", sb.String())
}

func BenchmarkFig6_Variance16(b *testing.B) {
	s := suiteFor(b, 16)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		s.WriteVarianceFigure(&sb, 16)
	}
	printOnce("fig6", sb.String())
}

func BenchmarkFig7_AbortTails16(b *testing.B) {
	s := suiteFor(b, 16)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		s.WriteAbortTailFigure(&sb, 16)
	}
	printOnce("fig7", sb.String())
}

func BenchmarkFig8_SSCA2(b *testing.B) {
	merged := mergedSuite(b)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		for _, th := range []int{8, 16} {
			r := merged.Get("ssca2", th)
			if r == nil {
				continue
			}
			vi := r.VarianceImprovement()
			sum := 0.0
			for _, v := range vi {
				sum += v
			}
			fmt.Fprintf(&sb, "FIG 8 (ssca2, %d threads): guidable=%v, mean variance change %+.1f%%, slowdown %.2fx\n",
				th, r.Report.Guidable, sum/float64(len(vi)), r.Slowdown())
			fmt.Fprintf(&sb, "  abort tail (thread 4): default %q vs guided %q\n",
				r.Default.AbortHist[4%len(r.Default.AbortHist)].String(),
				r.Guided.AbortHist[4%len(r.Guided.AbortHist)].String())
		}
	}
	printOnce("fig8", sb.String())
}

func BenchmarkFig9_NonDeterminism(b *testing.B) {
	merged := mergedSuite(b)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		merged.WriteNonDeterminismFigure(&sb)
	}
	printOnce("fig9", sb.String())
	if r := merged.Get("kmeans", 8); r != nil {
		b.ReportMetric(r.NonDeterminismReduction(), "kmeans_nd_reduction_%")
	}
}

func BenchmarkFig10_Slowdown(b *testing.B) {
	merged := mergedSuite(b)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		merged.WriteSlowdownFigure(&sb)
	}
	printOnce("fig10", sb.String())
}

// mergedSuite combines the 8- and 16-thread suites into one for the
// two-column tables.
func mergedSuite(b *testing.B) *harness.Suite {
	s8, s16 := suiteFor(b, 8), suiteFor(b, 16)
	merged := harness.NewSuite()
	for _, w := range stamp.All() {
		if r := s8.Get(w.Name(), 8); r != nil {
			merged.Add(r)
		}
		if r := s16.Get(w.Name(), 16); r != nil {
			merged.Add(r)
		}
	}
	return merged
}

// ---------------------------------------------------------------------------
// Tables and figures (SynQuake)
// ---------------------------------------------------------------------------

func BenchmarkTableV_SynQuakeGuidance(b *testing.B) {
	res := synquakeFor(b)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		res.WriteTableV(&sb)
	}
	printOnce("table5", sb.String())
	b.ReportMetric(res.Report.Metric, "synquake_metric_%")
}

func BenchmarkFig11_SynQuake4Quadrants(b *testing.B) {
	benchSynQuakeQuest(b, "4quadrants", "fig11")
}

func BenchmarkFig12_SynQuakeCenterSpread(b *testing.B) {
	benchSynQuakeQuest(b, "4center_spread6", "fig12")
}

func benchSynQuakeQuest(b *testing.B, quest, section string) {
	res := synquakeFor(b)
	b.ResetTimer()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		for _, q := range res.Quests {
			if q.Quest != quest {
				continue
			}
			one := *res
			one.Quests = []harness.SynQuakeQuestResult{q}
			one.WriteFigures(&sb)
		}
	}
	printOnce(section, sb.String())
	for _, q := range res.Quests {
		if q.Quest == quest {
			b.ReportMetric(q.FrameVarianceImprovement(), "frame_var_improvement_%")
			b.ReportMetric(q.AbortRatioReduction(), "abort_reduction_%")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (design knobs called out in DESIGN.md)
// ---------------------------------------------------------------------------

func BenchmarkAblationTfactor(b *testing.B) {
	for _, tf := range []float64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("tfactor=%g", tf), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(prev)
			cfg := benchConfig(4)
			cfg.Tfactor = tf
			cfg.Runs = 6
			w, _ := stamp.ByName("kmeans")
			for i := 0; i < b.N; i++ {
				res, err := harness.RunBenchmark(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.NonDeterminismReduction(), "nd_reduction_%")
					b.ReportMetric(res.Slowdown(), "slowdown_x")
				}
			}
		})
	}
}

func BenchmarkAblationGateRetries(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(prev)
			cfg := benchConfig(4)
			cfg.GateRetries = k
			cfg.Runs = 6
			w, _ := stamp.ByName("intruder")
			for i := 0; i < b.N; i++ {
				res, err := harness.RunBenchmark(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(res.Guided.AbortRatio(), "guided_abort_ratio")
					b.ReportMetric(res.Slowdown(), "slowdown_x")
				}
			}
		})
	}
}

func BenchmarkAblationInterleave(b *testing.B) {
	for _, il := range []int{0, 3, 6, 12} {
		b.Run(fmt.Sprintf("interleave=%d", il), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(prev)
			w, _ := stamp.ByName("kmeans")
			for i := 0; i < b.N; i++ {
				sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: il})
				inst, err := w.NewInstance(stamp.Params{Threads: 4, Size: stamp.Small, Seed: 7})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := inst.Run(sys); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					c, a := sys.Stats()
					b.ReportMetric(float64(a)/float64(c), "abort_ratio")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// STM micro-benchmarks
// ---------------------------------------------------------------------------

func BenchmarkTL2ReadOnly(b *testing.B) {
	rt := tl2.New(tl2.Config{})
	v := tl2.NewVar(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(0, 0, func(tx *tl2.Tx) error {
			_ = tl2.Read(tx, v)
			return nil
		})
	}
}

func BenchmarkTL2ReadWrite(b *testing.B) {
	rt := tl2.New(tl2.Config{})
	v := tl2.NewVar(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(0, 0, func(tx *tl2.Tx) error {
			tl2.Write(tx, v, tl2.Read(tx, v)+1)
			return nil
		})
	}
}

func BenchmarkTL2TenVarTx(b *testing.B) {
	rt := tl2.New(tl2.Config{})
	arr := tl2.NewArray[int](10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(0, 0, func(tx *tl2.Tx) error {
			for j := 0; j < 10; j++ {
				tl2.WriteAt(tx, arr, j, tl2.ReadAt(tx, arr, j)+1)
			}
			return nil
		})
	}
}

func BenchmarkMutexBaselineRMW(b *testing.B) {
	// The uninstrumented lower bound the STM overhead is judged against.
	var mu sync.Mutex
	v := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		v++
		mu.Unlock()
	}
	_ = v
}

func BenchmarkLibTMReadWrite(b *testing.B) {
	rt := libtm.New(libtm.Config{})
	o := libtm.NewObj(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Atomic(0, 0, func(tx *libtm.Tx) error {
			libtm.Write(tx, o, libtm.Read(tx, o)+1)
			return nil
		})
	}
}

func BenchmarkStateKeyEncode(b *testing.B) {
	aborted := []txid.Packed{
		txid.Pair{Txn: 1, Thread: 2}.Pack(),
		txid.Pair{Txn: 3, Thread: 4}.Pack(),
		txid.Pair{Txn: 5, Thread: 6}.Pack(),
	}
	commit := txid.Pair{Txn: 7, Thread: 8}.Pack()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := trace.NewState(aborted, commit)
		_ = st.Key()
	}
}

func BenchmarkCollectorCommit(b *testing.B) {
	col := trace.NewCollector()
	p := txid.Pair{Txn: 1, Thread: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col.TxCommit(p, uint64(i+1), 0)
	}
	_ = col.Finalize()
}

func BenchmarkModelBuild(b *testing.B) {
	// Build a model from a realistic profiled trace.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: 6})
	w, _ := stamp.ByName("kmeans")
	inst, err := w.NewInstance(stamp.Params{Threads: 4, Size: stamp.Small, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sys.StartProfiling()
	if _, err := inst.Run(sys); err != nil {
		b.Fatal(err)
	}
	tr := sys.StopProfiling()
	traces := []*gstm.Trace{tr}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := gstm.BuildModel(4, traces)
		if m.NumStates() == 0 {
			b.Fatal("empty model")
		}
	}
}

func BenchmarkModelSerialize(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: 6})
	w, _ := stamp.ByName("vacation")
	inst, err := w.NewInstance(stamp.Params{Threads: 4, Size: stamp.Small, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	sys.StartProfiling()
	if _, err := inst.Run(sys); err != nil {
		b.Fatal(err)
	}
	m := gstm.BuildModel(4, []*gstm.Trace{sys.StopProfiling()})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyComparison pits guided execution against the
// contention-manager policies of the paper's Related Work (Polite, Karma,
// Greedy) and a DeSTM-style deterministic round-robin, on the kmeans
// workload. The paper's argument: CMs compromise one thread over another
// and cannot reduce variance the way model-driven guidance does.
func BenchmarkPolicyComparison(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	w, err := stamp.ByName("kmeans")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig(8)
	cfg.Runs = 8
	var pc *harness.PolicyComparison
	for i := 0; i < b.N; i++ {
		pc, err = harness.ComparePolicies(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sb strings.Builder
	pc.Write(&sb)
	printOnce("policy", sb.String())
	for _, row := range pc.Rows {
		if row.Policy == "guided" {
			b.ReportMetric(float64(row.Side.NonDeterminism), "guided_nd_states")
		}
		if row.Policy == "default" {
			b.ReportMetric(float64(row.Side.NonDeterminism), "default_nd_states")
		}
	}
}

// BenchmarkAblationEagerVsLazy compares TL2's lazy (commit-time) conflict
// detection against the eager (encounter-time) variant on a contended
// read-modify-write workload — Section II argues guided-execution results
// on lazy detection imply the eager case because lazy minimizes retries.
func BenchmarkAblationEagerVsLazy(b *testing.B) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		b.Run(name, func(b *testing.B) {
			prev := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				rt := tl2.New(tl2.Config{Interleave: 4, EagerWriteLock: eager})
				v := tl2.NewVar(0)
				var wg sync.WaitGroup
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(id txid.ThreadID) {
						defer wg.Done()
						for j := 0; j < 250; j++ {
							_ = rt.Atomic(id, 0, func(tx *tl2.Tx) error {
								tl2.Write(tx, v, tl2.Read(tx, v)+1)
								return nil
							})
						}
					}(txid.ThreadID(w))
				}
				wg.Wait()
				if i == b.N-1 {
					c, a := rt.Stats()
					b.ReportMetric(float64(a)/float64(c), "abort_ratio")
				}
			}
		})
	}
}

// BenchmarkAblationAdaptiveGuidance compares offline-trained guidance
// against the online-learning adaptive controller (cold start and
// pre-seeded) on kmeans: the adaptive extension's promise is recovering
// the paper's offline-model benefits without a separate profiling phase.
func BenchmarkAblationAdaptiveGuidance(b *testing.B) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	w, err := stamp.ByName("kmeans")
	if err != nil {
		b.Fatal(err)
	}
	const threads = 8
	for _, mode := range []string{"default", "offline", "adaptive-cold"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 6})
				switch mode {
				case "offline":
					var traces []*gstm.Trace
					for r := 0; r < 4; r++ {
						inst, err := w.NewInstance(stamp.Params{Threads: threads, Size: stamp.Small, Seed: uint64(r)})
						if err != nil {
							b.Fatal(err)
						}
						sys.StartProfiling()
						if _, err := inst.Run(sys); err != nil {
							b.Fatal(err)
						}
						traces = append(traces, sys.StopProfiling())
					}
					sys.ForceGuidance(gstm.BuildModel(threads, traces), gstm.WithTfactor(2))
				case "adaptive-cold":
					sys.EnableAdaptiveGuidance(nil, gstm.WithTfactor(2), gstm.WithRecompileEvery(1024))
				}
				sys.ResetStats()
				var measured []*gstm.Trace
				for r := 0; r < 4; r++ {
					inst, err := w.NewInstance(stamp.Params{Threads: threads, Size: stamp.Small, Seed: uint64(100 + r)})
					if err != nil {
						b.Fatal(err)
					}
					sys.StartProfiling()
					if _, err := inst.Run(sys); err != nil {
						b.Fatal(err)
					}
					measured = append(measured, sys.StopProfiling())
				}
				if i == b.N-1 {
					commits, aborts := sys.Stats()
					b.ReportMetric(float64(aborts)/float64(commits), "abort_ratio")
					b.ReportMetric(float64(trace.DistinctStatesAcross(measured)), "nd_states")
				}
			}
		})
	}
}
