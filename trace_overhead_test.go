// Traced-overhead gate for the variance observatory: attaching a span to a
// Run call must stay cheap enough to leave on in production serving. The
// traced commit takes three clock reads (lock start, lock end / publish
// start shared, publish end — four when validation runs), so its fixed cost
// is a few hundred nanoseconds; against a transaction with a non-trivial
// footprint that must stay under 5%.
//
// The comparison is noisy on shared runners, so the gate is opt-in
// (GSTM_OVERHEAD_GATE=1, set by CI's bench-smoke job) and takes the best of
// several benchmark runs for each side before comparing.
package gstm_test

import (
	"context"
	"os"
	"testing"
	"time"

	"gstm/internal/obs"
	"gstm/internal/tl2"
)

// overheadWorkload is one read-modify-write transaction over nvars
// locations, the denominator the traced fixed cost is measured against.
func overheadWorkload(b *testing.B, span *obs.Span) {
	const nvars = 64
	rt := tl2.New(tl2.Config{})
	arr := tl2.NewArray[int](nvars)
	ctx := context.Background()
	begin := time.Now().UnixNano()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span.Start(uint32(i), 0, 0, 0, 1, false, begin)
		_ = rt.RunSpan(ctx, 0, 0, func(tx *tl2.Tx) error {
			for j := 0; j < nvars; j++ {
				tl2.WriteAt(tx, arr, j, tl2.ReadAt(tx, arr, j)+1)
			}
			return nil
		}, false, 0, span)
	}
}

func TestTracedRunOverheadGate(t *testing.T) {
	if os.Getenv("GSTM_OVERHEAD_GATE") == "" {
		t.Skip("set GSTM_OVERHEAD_GATE=1 to run the traced-overhead gate (CI bench-smoke)")
	}
	// Interleave the two sides round by round so machine drift (thermal,
	// noisy neighbors, cold caches) lands on both, and keep each side's
	// fastest run — the minimum is the least-noisy estimator of true cost.
	const rounds = 5
	var sp obs.Span
	untraced, traced := int64(1<<62), int64(1<<62)
	for i := 0; i < rounds; i++ {
		if ns := testing.Benchmark(func(b *testing.B) { overheadWorkload(b, nil) }).NsPerOp(); ns < untraced {
			untraced = ns
		}
		if ns := testing.Benchmark(func(b *testing.B) { overheadWorkload(b, &sp) }).NsPerOp(); ns < traced {
			traced = ns
		}
	}
	overhead := 100 * float64(traced-untraced) / float64(untraced)
	t.Logf("untraced %dns/op, traced %dns/op, overhead %.2f%%", untraced, traced, overhead)
	if overhead >= 5.0 {
		t.Fatalf("traced span overhead %.2f%% (traced %dns vs untraced %dns), gate is <5%%",
			overhead, traced, untraced)
	}
}
