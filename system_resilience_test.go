package gstm

// Internal-package resilience tests: these need to build adversarial
// models out of raw trace keys and to reach the runtime's fault-injection
// hook, neither of which the public API exposes (deliberately).

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gstm/internal/faultinject"
	"gstm/internal/guide"
	"gstm/internal/model"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

func soloKey(p txid.Pair) trace.Key {
	return trace.NewState(nil, p.Pack()).Key()
}

// adversarialModel returns a TSA that knows the solo states of the given
// pairs but routes every one of them to a ghost pair that never runs: the
// gate will hold (and finally escape) every real arrival.
func adversarialModel(threads int, pairs []txid.Pair) *Model {
	m := model.New(threads)
	ghost := txid.Pair{Txn: 99, Thread: 99}
	for _, p := range pairs {
		m.AddTransitionKeys(soloKey(p), soloKey(ghost))
	}
	return m
}

// TestSystemRunCancelUnderLivelock is acceptance criterion (a): a
// canceled context stops a high-contention Run within one retry
// iteration, with no locks held, and Health counts the abandonment.
func TestSystemRunCancelUnderLivelock(t *testing.T) {
	sys := NewSystem(Config{Threads: 2, EagerWriteLock: true})
	// A permanent spurious-abort schedule turns the transaction into an
	// abort/retry livelock that only cancellation can end.
	sys.rt.SetFaultInjector(faultinject.New(faultinject.Config{Seed: 1, SpuriousAbortProb: 1.01}))
	v := NewVar(0)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- sys.Run(ctx, 0, 0, func(tx *Tx) error {
			Write(tx, v, Read(tx, v)+1)
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let it spin through aborts
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run kept retrying after cancel")
	}
	if _, locked := v.LockState(); locked {
		t.Fatal("canceled transaction left its lock held")
	}
	if v.Peek() != 0 {
		t.Fatalf("canceled transaction published a write: %d", v.Peek())
	}
	h := sys.Health()
	if h.ContextCanceled != 1 {
		t.Fatalf("Health.ContextCanceled = %d, want 1", h.ContextCanceled)
	}
	if h.Commits != 0 {
		t.Fatalf("Health.Commits = %d, want 0", h.Commits)
	}
}

// TestSystemRetryBudgetDeterministicConflict drives the public budget API
// with a real (not injected) conflict: the transaction reads x, then the
// test commits a new version of x before letting the attempt commit, so
// read validation must fail every attempt until the budget runs out.
func TestSystemRetryBudgetDeterministicConflict(t *testing.T) {
	sys := NewSystem(Config{Threads: 2})
	x := NewVar(0)
	y := NewVar(0)

	const budget = 4
	var attempts atomic.Int32
	bodyRead := make(chan struct{})
	conflictDone := make(chan struct{})

	done := make(chan error, 1)
	go func() {
		done <- sys.Run(WithRetryBudget(context.Background(), budget), 0, 0, func(tx *Tx) error {
			attempts.Add(1)
			_ = Read(tx, x) // records x's version in the read set
			bodyRead <- struct{}{}
			<-conflictDone // test now commits a newer x
			Write(tx, y, 1)
			return nil
		})
	}()
	for i := 0; i < budget; i++ {
		<-bodyRead
		if err := sys.Run(nil, 1, 1, func(tx *Tx) error {
			Write(tx, x, Read(tx, x)+1)
			return nil
		}); err != nil {
			t.Fatalf("conflicting writer: %v", err)
		}
		conflictDone <- struct{}{}
	}
	if err := <-done; !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if got := attempts.Load(); got != budget {
		t.Fatalf("body ran %d times, want %d", got, budget)
	}
	if y.Peek() != 0 {
		t.Fatalf("budget-exhausted transaction published writes: y=%d", y.Peek())
	}
	h := sys.Health()
	if h.RetryBudgetExceeded != 1 {
		t.Fatalf("Health.RetryBudgetExceeded = %d, want 1", h.RetryBudgetExceeded)
	}
	if h.Aborts != budget {
		t.Fatalf("Health.Aborts = %d, want %d", h.Aborts, budget)
	}
}

// TestWatchdogFallbackOnAdversarialModel is acceptance criterion (b): a
// deliberately wrong model (every destination set names a pair that never
// runs) would hold every arrival forever; the watchdog must detect the
// degradation, trip guidance into pass-through, and let the workload
// complete near unguided speed. Health and Degraded must report it.
func TestWatchdogFallbackOnAdversarialModel(t *testing.T) {
	const threads = 4
	iters := 3000
	if testing.Short() {
		iters = 600
	}
	pairs := make([]txid.Pair, threads)
	for i := range pairs {
		pairs[i] = txid.Pair{Txn: txid.TxnID(i), Thread: txid.ThreadID(i)}
	}

	// Per-thread private vars: the workload itself is conflict-free, so any
	// slowdown is pure guidance overhead.
	run := func(sys *System) time.Duration {
		vars := make([]*Var[int], threads)
		for i := range vars {
			vars[i] = NewVar(0)
		}
		begin := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					_ = sys.Run(nil, ThreadID(w), TxnID(w), func(tx *Tx) error {
						Write(tx, vars[w], Read(tx, vars[w])+1)
						return nil
					})
				}
			}(w)
		}
		wg.Wait()
		for i, v := range vars {
			if got := v.Peek(); got != iters {
				t.Fatalf("worker %d completed %d/%d increments", i, got, iters)
			}
		}
		return time.Since(begin)
	}

	baseSys := NewSystem(Config{Threads: threads})
	baseline := run(baseSys)

	sys := NewSystem(Config{Threads: threads})
	sys.ForceGuidance(adversarialModel(threads, pairs),
		WithTfactor(4),
		WithGateRetries(1),
		WithWatchdog(WatchdogOptions{
			Window:         64,
			MinGateSamples: 8,
			MaxEscapeRate:  0.25,
			// Cooldown 0: the trip is final — the model cannot improve.
		}),
	)
	guided := run(sys)

	h := sys.Health()
	if !h.WatchdogEnabled {
		t.Fatal("Health.WatchdogEnabled = false under ForceGuidance with Watchdog options")
	}
	if h.Watchdog.State != guide.WatchdogTripped || h.Watchdog.Trips < 1 {
		t.Fatalf("watchdog did not trip on the adversarial model: %+v", h.Watchdog)
	}
	if !h.Degraded() {
		t.Fatal("Health.Degraded() = false after a final trip")
	}
	if h.GateEscaped == 0 {
		t.Fatal("no escapes recorded: the model was not actually adversarial")
	}
	if h.Watchdog.EscapeRate <= 0 {
		t.Fatalf("recorded escape rate %v, want > 0", h.Watchdog.EscapeRate)
	}
	if h.Commits != uint64(threads*iters) {
		t.Fatalf("guided commits = %d, want %d", h.Commits, threads*iters)
	}

	// Near-unguided completion: the bound is deliberately generous (the
	// spec's 10% is a real-machine number; CI boxes jitter far more), but
	// tight enough to fail if guidance had stayed on — every one of the
	// threads*iters arrivals would then spin the gate's full retry ladder.
	limit := 5*baseline + 250*time.Millisecond
	if guided > limit {
		t.Fatalf("degraded mode still slow: guided %v vs baseline %v (limit %v)", guided, baseline, limit)
	}
	t.Logf("baseline %v, guided-with-tripped-watchdog %v, trips=%d", baseline, guided, h.Watchdog.Trips)
}

// TestReconfigureUnderLoad toggles every sink/gate reconfiguration entry
// point — profiling on/off, guidance on/off (with and without watchdog),
// custom scheduler, adaptive guidance — while workers keep committing.
// Run under -race this checks the atomic gate/sink swap paths; the final
// counts check that no increment was lost across any reconfiguration.
func TestReconfigureUnderLoad(t *testing.T) {
	const threads = 4
	iters := 2000
	if testing.Short() {
		iters = 400
	}
	sys := NewSystem(Config{Threads: threads})
	vars := make([]*Var[int], threads)
	for i := range vars {
		vars[i] = NewVar(0)
	}
	shared := NewVar(0)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := sys.Run(nil, ThreadID(w), TxnID(w), func(tx *Tx) error {
					Write(tx, vars[w], Read(tx, vars[w])+1)
					Write(tx, shared, Read(tx, shared)+1)
					return nil
				}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	pairs := make([]txid.Pair, threads)
	for i := range pairs {
		pairs[i] = txid.Pair{Txn: txid.TxnID(i), Thread: txid.ThreadID(i)}
	}
	m := adversarialModel(threads, pairs)
	stop := make(chan struct{})
	go func() { wg.Wait(); close(stop) }()
	for i := 0; ; i++ {
		select {
		case <-stop:
			goto done
		default:
		}
		switch i % 6 {
		case 0:
			sys.StartProfiling()
		case 1:
			sys.StopProfiling()
		case 2:
			// EnableGuidance may reject the adversarial model; the validated
			// install path is exercised either way, ForceGuidance regardless.
			_ = sys.EnableGuidance(m, WithTfactor(4), WithGateRetries(1))
			sys.ForceGuidance(m, WithTfactor(4), WithGateRetries(1),
				WithWatchdog(WatchdogOptions{Window: 32, MinGateSamples: 4}))
		case 3:
			sys.SetScheduler(faultinject.NewStarvingGate(nil, 2), faultinject.NewStallingSink(nil, 2))
		case 4:
			sys.EnableAdaptiveGuidance(nil, WithTfactor(4), WithGateRetries(1), WithRecompileEvery(64))
		case 5:
			sys.DisableGuidance()
		}
		_ = sys.Health()
		_, _ = sys.Stats()
		time.Sleep(200 * time.Microsecond)
	}
done:
	if t.Failed() {
		return
	}
	sys.StopProfiling() // drop any profiling left active by the last toggle
	for w, v := range vars {
		if got := v.Peek(); got != iters {
			t.Fatalf("worker %d count = %d, want %d (lost under reconfiguration)", w, got, iters)
		}
	}
	if got := shared.Peek(); got != threads*iters {
		t.Fatalf("shared count = %d, want %d", got, threads*iters)
	}
}

// TestHealthSnapshotShape covers the Health plumbing that the other tests
// don't: unguided systems, and guidance without a watchdog.
func TestHealthSnapshotShape(t *testing.T) {
	sys := NewSystem(Config{Threads: 2})
	if err := sys.Run(nil, 0, 0, func(tx *Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	h := sys.Health()
	if h.Guided || h.WatchdogEnabled || h.Degraded() {
		t.Fatalf("unguided health claims guidance: %+v", h)
	}
	if h.Commits != 1 {
		t.Fatalf("Commits = %d, want 1", h.Commits)
	}

	sys.ForceGuidance(adversarialModel(2, []txid.Pair{{Txn: 0, Thread: 0}}), WithTfactor(4))
	h = sys.Health()
	if !h.Guided || h.WatchdogEnabled {
		t.Fatalf("guided-without-watchdog health wrong: %+v", h)
	}
	sys.DisableGuidance()
	if h := sys.Health(); h.Guided {
		t.Fatal("health still guided after DisableGuidance")
	}
}
