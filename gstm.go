// Package gstm is a Go reproduction of "Quantifying and Reducing Execution
// Variance in STM via Model Driven Commit Optimization" (Mururu,
// Gavrilovska, Pande — PPoPP 2018).
//
// It provides a TL2 software transactional memory whose commit order can be
// steered by a profile-derived probabilistic automaton (the Thread State
// Automaton, TSA) so that repeated runs follow common execution paths,
// cutting the run-to-run variance that speculation otherwise causes.
//
// The workflow mirrors the paper's four phases:
//
//	sys := gstm.NewSystem(gstm.Config{Threads: 8})
//
//	// 1. Profile: run the workload several times under instrumentation.
//	var traces []*gstm.Trace
//	for run := 0; run < 20; run++ {
//		sys.StartProfiling()
//		runWorkload(sys) // calls sys.Run(ctx, thread, txnSite, fn)
//		traces = append(traces, sys.StopProfiling())
//	}
//
//	// 2. Generate the Thread State Automaton.
//	m := gstm.BuildModel(8, traces)
//
//	// 3. Analyze: is there enough bias to guide?
//	report := gstm.Analyze(m)
//	if !report.Guidable {
//		// fall back to unguided execution (the paper's ssca2 case)
//	}
//
//	// 4. Guided execution.
//	sys.EnableGuidance(m, gstm.WithTfactor(4))
//	runWorkload(sys)
//
// Shared state lives in Var[T] and Array[T] cells accessed with Read and
// Write inside a Run block. Each Run call names its worker thread and its
// static transaction site — the paper's TM_BEGIN(ID) — and takes options
// (WithReadOnly, WithMaxAttempts, WithBlocking) plus an optional context
// for cancellation.
//
// Blocking transactions compose in the classic STM style: a body that
// finds the state unusable calls tx.Retry(), Select races alternatives,
// Compose chains them, and WithBlocking parks the goroutine until a commit
// changes something the attempt read (see README "Blocking transactions").
package gstm

import (
	"context"
	"net/http"

	"gstm/internal/model"
	"gstm/internal/obs"
	"gstm/internal/retry"
	"gstm/internal/telemetry"
	"gstm/internal/tl2"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

// ThreadID identifies a worker thread (goroutine) of the application.
type ThreadID = txid.ThreadID

// TxnID identifies a static transaction site, the paper's TM_BEGIN(ID).
type TxnID = txid.TxnID

// Pair is a (transaction site, thread) pair, the unit of the paper's
// thread transactional states.
type Pair = txid.Pair

// Tx is a transaction attempt passed to the function given to
// System.Run.
type Tx = tl2.Tx

// Var is a transactional memory cell of type T.
type Var[T any] = tl2.Var[T]

// Array is a fixed-length sequence of transactional cells with
// per-element conflict detection.
type Array[T any] = tl2.Array[T]

// Trace is the finalized observation of one profiled run: the transaction
// sequence and per-thread abort histograms.
type Trace = trace.Trace

// State is a thread transactional state (a commit plus the aborts it
// caused).
type State = trace.State

// Model is the Thread State Automaton built from profiled traces.
type Model = model.TSA

// Report is the model analyzer's verdict, including the guidance metric.
type Report = model.Report

// NewVar returns a transactional cell initialized to val.
func NewVar[T any](val T) *Var[T] { return tl2.NewVar(val) }

// NewArray returns an Array of n zero-valued cells.
func NewArray[T any](n int) *Array[T] { return tl2.NewArray[T](n) }

// Read returns v's value inside the transaction, observing the
// transaction's own buffered writes first.
func Read[T any](tx *Tx, v *Var[T]) T { return tl2.Read(tx, v) }

// Write buffers val as tx's pending write to v; it becomes visible to
// other transactions only if tx commits.
func Write[T any](tx *Tx, v *Var[T], val T) { tl2.Write(tx, v, val) }

// ReadAt is Read on an Array element.
func ReadAt[T any](tx *Tx, a *Array[T], i int) T { return tl2.ReadAt(tx, a, i) }

// WriteAt is Write on an Array element.
func WriteAt[T any](tx *Tx, a *Array[T], i int, val T) { tl2.WriteAt(tx, a, i, val) }

// Select returns a transaction function that races alternatives: each fn
// is tried in order and the first that does not call tx.Retry decides the
// transaction (its error included). When every alternative retries, the
// combined function retries — under WithBlocking the transaction then
// parks on the union of everything the alternatives read, so a commit
// enabling any one of them wakes it; without blocking Run returns
// ErrWouldBlock.
//
// Matching the classic orElse semantics (and the anacrolix/stm surface
// this mirrors), a retrying alternative's buffered writes are not rolled
// back: alternatives should check their guard and Retry before writing.
func Select(fns ...func(*Tx) error) func(*Tx) error { return tl2.Select(fns...) }

// Compose returns a transaction function chaining fns into one atomic
// unit: each runs in order, a non-nil error stops the chain, and a
// tx.Retry in any of them blocks (or ErrWouldBlock's) the whole
// composition.
func Compose(fns ...func(*Tx) error) func(*Tx) error { return tl2.Compose(fns...) }

// BuildModel runs the paper's Algorithm 1 over profiled traces, producing
// the Thread State Automaton for a workload trained at the given thread
// count.
func BuildModel(threads int, traces []*Trace) *Model {
	return model.BuildFromTraces(threads, traces)
}

// Analyze validates a model with the paper's default analyzer parameters
// (Tfactor 4, 50% guidance-metric threshold).
func Analyze(m *Model) Report { return model.DefaultAnalyzer().Analyze(m) }

// SaveModel writes m to path in the binary state_data format.
func SaveModel(m *Model, path string) error { return m.Save(path) }

// LoadModel reads a model written by SaveModel.
func LoadModel(path string) (*Model, error) { return model.Load(path) }

// TelemetrySnapshot is a point-in-time view of the runtime telemetry layer:
// transaction lifecycle counters, sampled commit/validation latency
// histograms with p50/p95/p99, per-automaton-state gate telemetry, and the
// recent diagnostic event ring. See System.TelemetrySnapshot.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryHist is one latency histogram inside a TelemetrySnapshot.
type TelemetryHist = telemetry.HistSnapshot

// Span is a per-request variance-observatory timeline (see internal/obs):
// attach one to a Run call with WithSpan to record gate waits, aborted
// attempts with their causes, and the commit protocol's phases.
type Span = obs.Span

// SpanCause is the abort-cause taxonomy recorded on spans and exported as
// the gstm_tx_aborts_by_cause_total telemetry series.
type SpanCause = obs.Cause

// GatherTelemetry merges the telemetry of every live runtime in the process
// into one snapshot — the view the -metrics-addr HTTP endpoint serves.
func GatherTelemetry() TelemetrySnapshot { return telemetry.Gather() }

// TelemetryMount is an extra route served by the telemetry endpoint
// alongside /metrics, /debug/vars and /debug/pprof — the server mounts
// /debug/trace (the variance observatory) this way.
type TelemetryMount = telemetry.Mount

// ServeTelemetry starts the observability HTTP endpoint on addr (":0" picks
// a free port), serving /metrics (Prometheus text format), /debug/vars
// (JSON) and /debug/pprof for the whole process, plus any extra mounts. It
// returns the bound address; shut the server down with its Close or
// Shutdown method.
func ServeTelemetry(addr string, mounts ...TelemetryMount) (*telemetry.Server, error) {
	return telemetry.ServeAddr(addr, mounts...)
}

// TraceHandler returns the /debug/trace HTTP handler for an observatory
// owned by a serving layer (see internal/obs): ?format=json (default) for
// the K-slowest / forced / sampled spans, ?format=agg for per-shard
// per-phase histogram buckets, ?format=chrome for a Chrome trace_event
// file loadable in chrome://tracing or Perfetto.
func TraceHandler(o *obs.Observatory) http.Handler { return o.Handler() }

// WithRetryBudget returns a context carrying a per-call attempt budget for
// Run: a budget of n allows the initial attempt plus n-1 retries.
// attempts <= 0 removes the budget (unlimited retries, the classic STM
// contract). Prefer the MaxAttempts option, which needs no derived
// context; a context budget is useful when the budget must travel through
// call layers that only pass ctx.
func WithRetryBudget(ctx context.Context, attempts int) context.Context {
	return retry.WithBudget(ctx, attempts)
}
