package gstm_test

import (
	"errors"
	"sync"
	"testing"

	"gstm"
)

// runCounterWorkload drives a contended counter with `threads` workers and
// two transaction sites, returning the final counter value.
func runCounterWorkload(sys *gstm.System, threads, perThread int, v *gstm.Var[int]) {
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(id gstm.ThreadID) {
			defer wg.Done()
			for i := 0; i < perThread; i++ {
				_ = sys.Run(nil, id, gstm.TxnID(int(id)%2), func(tx *gstm.Tx) error {
					gstm.Write(tx, v, gstm.Read(tx, v)+1)
					return nil
				})
			}
		}(gstm.ThreadID(w))
	}
	wg.Wait()
}

func TestFourPhaseWorkflow(t *testing.T) {
	const threads, per = 4, 100
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 4})

	// Phase 1: profile several runs.
	var traces []*gstm.Trace
	for run := 0; run < 5; run++ {
		v := gstm.NewVar(0)
		sys.StartProfiling()
		runCounterWorkload(sys, threads, per, v)
		tr := sys.StopProfiling()
		if tr == nil {
			t.Fatal("StopProfiling returned nil during active profiling")
		}
		if tr.Commits != threads*per {
			t.Fatalf("run %d commits = %d, want %d", run, tr.Commits, threads*per)
		}
		traces = append(traces, tr)
	}

	// Phase 2+3: model and analysis.
	m := gstm.BuildModel(threads, traces)
	if m.NumStates() == 0 {
		t.Fatal("empty model")
	}
	rep := gstm.Analyze(m)
	t.Logf("model: %d states, guidance metric %.1f%%, guidable=%v",
		rep.States, rep.Metric, rep.Guidable)

	// Phase 4: guided execution stays correct.
	sys.ForceGuidance(m)
	if !sys.Guided() {
		t.Fatal("Guided() = false after ForceGuidance")
	}
	v := gstm.NewVar(0)
	sys.StartProfiling()
	runCounterWorkload(sys, threads, per, v)
	guidedTrace := sys.StopProfiling()
	if got := v.Peek(); got != threads*per {
		t.Fatalf("guided counter = %d, want %d", got, threads*per)
	}
	if guidedTrace.Commits != threads*per {
		t.Fatalf("guided trace commits = %d", guidedTrace.Commits)
	}
	passed, held, escaped := sys.GateStats()
	if passed+held+escaped == 0 {
		t.Fatal("gate made no decisions during guided run")
	}
	sys.DisableGuidance()
	if sys.Guided() {
		t.Fatal("Guided() = true after DisableGuidance")
	}
}

func TestStopProfilingWithoutStart(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 2})
	if tr := sys.StopProfiling(); tr != nil {
		t.Fatalf("StopProfiling without start = %+v, want nil", tr)
	}
}

func TestEnableGuidanceRejectsTinyModel(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 2})
	m := gstm.BuildModel(2, nil)
	err := sys.EnableGuidance(m)
	if !errors.Is(err, gstm.ErrGuidanceRejected) {
		t.Fatalf("err = %v, want ErrGuidanceRejected", err)
	}
	if sys.Guided() {
		t.Fatal("guidance installed despite rejection")
	}
}

func TestModelSaveLoadThroughPublicAPI(t *testing.T) {
	const threads = 2
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 4})
	v := gstm.NewVar(0)
	sys.StartProfiling()
	runCounterWorkload(sys, threads, 50, v)
	m := gstm.BuildModel(threads, []*gstm.Trace{sys.StopProfiling()})

	path := t.TempDir() + "/state_data"
	if err := gstm.SaveModel(m, path); err != nil {
		t.Fatal(err)
	}
	got, err := gstm.LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != m.NumStates() {
		t.Fatalf("loaded states = %d, want %d", got.NumStates(), m.NumStates())
	}
}

func TestStatsAccumulateAndReset(t *testing.T) {
	sys := gstm.NewSystem(gstm.Config{Threads: 2})
	v := gstm.NewVar(0)
	runCounterWorkload(sys, 2, 20, v)
	commits, _ := sys.Stats()
	if commits != 40 {
		t.Fatalf("commits = %d, want 40", commits)
	}
	sys.ResetStats()
	if c, a := sys.Stats(); c != 0 || a != 0 {
		t.Fatalf("after reset: %d/%d", c, a)
	}
}
