package gstm

import (
	"context"

	"gstm/internal/tl2"
)

// MultiGroup is the shared coordination word set of one group of Systems
// that run cross-shard transactions against each other (see
// tl2.MultiGroup). Every RunMulti call over systems drawn from one group
// must pass the same MultiGroup; the shard router owns one per Router.
// Single-system transactions never touch it.
type MultiGroup = tl2.MultiGroup

// NewMultiGroup returns a fresh coordination group for RunMulti.
func NewMultiGroup() *MultiGroup { return new(MultiGroup) }

// RunMulti executes fn as one atomic transaction spanning several
// Systems: one sub-transaction per system, handed to fn as txs aligned
// with systems, all committing at one exchanged write version or none
// committing at all. The systems must be distinct, each with its own
// clock (Config.PrivateClock), and every concurrent RunMulti over
// overlapping systems must list them in the same order and share g —
// the shard router's RunMulti arranges all three.
//
// Options: WithReadOnly rejects writes but (unlike single-system runs)
// still tracks and validates reads — cross-shard consistency always
// needs commit-time validation; WithMaxAttempts and WithSpan work as in
// Run (the span records cross-shard commits under the xprepare/xpublish
// phases). Blocking is not supported: a tx.Retry returns ErrWouldBlock
// even with WithBlocking.
func RunMulti(ctx context.Context, g *MultiGroup, systems []*System, thread ThreadID, txn TxnID, fn func(txs []*Tx) error, opts ...TxOption) error {
	var set txSettings
	for _, o := range opts {
		o(&set)
	}
	rts := make([]*tl2.Runtime, len(systems))
	for i, s := range systems {
		rts[i] = s.rt
	}
	return tl2.MultiRun(ctx, g, rts, thread, txn, fn, tl2.RunOpts{
		ReadOnly:    set.readOnly,
		MaxAttempts: set.maxAttempts,
		Span:        set.span,
	})
}
