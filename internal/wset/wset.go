// Package wset is the shared transactional write-set of both STM engines
// (internal/tl2, internal/libtm): a small-vector redo log optimized for the
// hot path of short transactions.
//
// Layout and cost model:
//
//   - Entries live in a single slice kept sorted by location address. For
//     write sets up to InlineSize entries the slice is backed by an inline
//     array inside the Set (inside the pooled Tx), so short transactions
//     never allocate for bookkeeping; larger sets spill once to a heap
//     slice whose capacity is retained across transactions (the per-Tx
//     arena), so even spilling transactions amortize to zero steady-state
//     allocations.
//   - Lookups are a branch on a 64-bit filter word (the common read-only
//     and read-mostly miss answered in O(1) with no memory traffic beyond
//     the Set itself), then a binary search over the sorted entries.
//   - Iterating Entries() visits locations in ascending address order,
//     which is what gives the engines their deterministic commit-time lock
//     acquisition order (the TL2 deadlock-avoidance rule): two transactions
//     locking overlapping write sets acquire the shared prefix in the same
//     global order, so neither can hold a lock the other spins on while
//     spinning on a lock the other holds.
//
// Entries also carry the per-location lock bookkeeping (Pre, Locked) so the
// engines need no parallel lock slices and a commit can answer "do I hold
// this location?" from the entry itself.
//
// A Set is owned by a single transaction attempt and is not safe for
// concurrent use, exactly like the Tx that embeds it.
package wset

import "unsafe"

// InlineSize is the number of entries the inline fast path holds before the
// set spills to a heap-backed slice. Eight covers the write sets of the
// STAMP ports' common transactions (counters, two-account transfers,
// k-means centroid updates) without making the pooled Tx unreasonably big.
const InlineSize = 8

// maxRetainedCap bounds the spill capacity kept across Reset: a single
// monster transaction must not pin an arbitrarily large arena in the Tx
// pool forever.
const maxRetainedCap = 1024

// Entry is one buffered write: the location (Key, with its address addr as
// the sort key), the raw redo pointer, and the engine's lock bookkeeping
// for the location.
type Entry[K comparable] struct {
	addr uintptr
	// Key is the written location.
	Key K
	// Val is the engine's redo box as a raw pointer (a *T the generic
	// entry points publish without an interface conversion). The box is
	// private to the transaction until commit publishes it, so engines
	// update it in place on rewrites instead of boxing again. Typed as
	// unsafe.Pointer (not any) so the hot path moves one word with no
	// interface header and no type assertion.
	Val unsafe.Pointer
	// Pre is the location's pre-lock word, valid while Locked (tl2's abort
	// path restores it; libtm leaves it zero).
	Pre uint64
	// Locked records that the owning transaction holds this location's
	// write lock (taken at encounter time or during commit).
	Locked bool
}

// Addr returns the entry's location address (the sort key).
func (e *Entry[K]) Addr() uintptr { return e.addr }

// Set is a small-vector write set. The zero value is ready for use.
type Set[K comparable] struct {
	filter  uint64
	entries []Entry[K]
	inline  [InlineSize]Entry[K]
}

// filterBit maps a location address to its bit in the 64-bit filter word.
// The low alignment bits are discarded before the Fibonacci-hash multiply
// so same-sized locations allocated together still spread over the word.
func filterBit(addr uintptr) uint64 {
	return uint64(1) << ((uint64(addr) >> 4) * 0x9e3779b97f4a7c15 >> 58)
}

// Len returns the number of buffered writes.
func (s *Set[K]) Len() int { return len(s.entries) }

// MayContain reports whether addr could be in the set: false means
// definitely absent (the O(1) miss check), true means a Lookup is needed.
func (s *Set[K]) MayContain(addr uintptr) bool {
	return s.filter&filterBit(addr) != 0
}

// find returns the index of addr in the sorted entries, or the insertion
// position when absent.
func (s *Set[K]) find(addr uintptr) (int, bool) {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.entries[mid].addr < addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.entries) && s.entries[lo].addr == addr {
		return lo, true
	}
	return lo, false
}

// Lookup returns the entry buffered for addr, or nil. falsePositive reports
// that the filter admitted addr but no entry matched — the diagnostic the
// engines count, since every false positive pays the search that the filter
// exists to skip. The returned pointer is invalidated by the next Insert.
func (s *Set[K]) Lookup(addr uintptr) (e *Entry[K], falsePositive bool) {
	if s.filter&filterBit(addr) == 0 {
		return nil, false
	}
	if i, ok := s.find(addr); ok {
		return &s.entries[i], false
	}
	return nil, true
}

// Insert adds an entry for (key, addr), keeping the entries sorted by
// address, and returns it for the caller to fill in. spilled reports that
// this insert grew the set past the inline fast path. If addr is already
// present its existing entry is returned. The returned pointer is
// invalidated by the next Insert.
func (s *Set[K]) Insert(key K, addr uintptr) (e *Entry[K], spilled bool) {
	if s.entries == nil {
		s.entries = s.inline[:0]
	}
	i, ok := s.find(addr)
	if ok {
		return &s.entries[i], false
	}
	spilled = len(s.entries) == InlineSize
	s.entries = append(s.entries, Entry[K]{})
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = Entry[K]{addr: addr, Key: key}
	s.filter |= filterBit(addr)
	return &s.entries[i], spilled
}

// Entries returns the buffered writes in ascending address order. The
// caller may mutate Val/Pre/Locked through the slice; it is invalidated by
// the next Insert or Reset.
func (s *Set[K]) Entries() []Entry[K] { return s.entries }

// Reset empties the set for the next transaction attempt, dropping every
// value reference so a pooled Tx does not retain dead redo boxes. Spill
// capacity up to maxRetainedCap is kept as the reusable per-Tx arena.
func (s *Set[K]) Reset() {
	for i := range s.entries {
		s.entries[i] = Entry[K]{}
	}
	if cap(s.entries) > maxRetainedCap {
		s.entries = nil // rebind to the inline array on next use
	} else {
		s.entries = s.entries[:0]
	}
	s.filter = 0
}
