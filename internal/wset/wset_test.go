package wset

import (
	"math/rand"
	"sort"
	"testing"
	"unsafe"
)

// keyPool gives tests stable heap locations whose addresses behave like the
// engines' *base pointers.
func keyPool(n int) []*int {
	keys := make([]*int, n)
	for i := range keys {
		keys[i] = new(int)
	}
	return keys
}

func addrOf(k *int) uintptr { return uintptr(unsafe.Pointer(k)) }

// boxInt heap-boxes val the way the engines box redo values: Entry.Val
// carries a raw *T pointer, not an interface.
func boxInt(val int) unsafe.Pointer {
	v := val
	return unsafe.Pointer(&v)
}

func unboxInt(p unsafe.Pointer) int { return *(*int)(p) }

func TestInsertKeepsEntriesSortedByAddress(t *testing.T) {
	keys := keyPool(64)
	rand.New(rand.NewSource(1)).Shuffle(len(keys), func(i, j int) {
		keys[i], keys[j] = keys[j], keys[i]
	})
	var s Set[*int]
	for i, k := range keys {
		e, _ := s.Insert(k, addrOf(k))
		e.Val = boxInt(i)
	}
	ents := s.Entries()
	if len(ents) != len(keys) {
		t.Fatalf("Len = %d, want %d", len(ents), len(keys))
	}
	if !sort.SliceIsSorted(ents, func(i, j int) bool { return ents[i].Addr() < ents[j].Addr() }) {
		t.Fatal("Entries() not in ascending address order")
	}
}

func TestInsertExistingReturnsSameEntry(t *testing.T) {
	keys := keyPool(4)
	var s Set[*int]
	e, spilled := s.Insert(keys[0], addrOf(keys[0]))
	if spilled {
		t.Fatal("first insert reported a spill")
	}
	e.Val = boxInt(7)
	again, spilled := s.Insert(keys[0], addrOf(keys[0]))
	if spilled {
		t.Fatal("duplicate insert reported a spill")
	}
	if again.Val == nil || unboxInt(again.Val) != 7 {
		t.Fatalf("duplicate insert returned a fresh entry (Val=%v)", again.Val)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after duplicate insert", s.Len())
	}
}

func TestSpillFlagFiresExactlyOnceAtInlineBoundary(t *testing.T) {
	keys := keyPool(InlineSize * 3)
	var s Set[*int]
	spills := 0
	for i, k := range keys {
		_, spilled := s.Insert(k, addrOf(k))
		if spilled {
			spills++
			if i != InlineSize {
				t.Errorf("spill reported at insert %d, want %d", i, InlineSize)
			}
		}
	}
	if spills != 1 {
		t.Fatalf("spill reported %d times, want 1", spills)
	}
}

func TestResetDropsEntriesAndFilter(t *testing.T) {
	keys := keyPool(InlineSize + 4)
	var s Set[*int]
	for _, k := range keys {
		e, _ := s.Insert(k, addrOf(k))
		e.Val = unsafe.Pointer(new(int))
		e.Pre = 5
		e.Locked = true
	}
	spillCap := cap(s.entries)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Reset", s.Len())
	}
	for _, k := range keys {
		if s.MayContain(addrOf(k)) {
			t.Fatal("filter survived Reset")
		}
	}
	// Spill capacity within the retention bound is kept as the arena.
	if cap(s.entries) != spillCap {
		t.Fatalf("retained cap = %d, want %d", cap(s.entries), spillCap)
	}
	// The zeroing must have dropped every value/lock field so a pooled Tx
	// does not retain dead redo boxes.
	full := s.entries[:spillCap]
	for i := range full {
		if full[i].Val != nil || full[i].Locked || full[i].Pre != 0 || full[i].Key != nil {
			t.Fatalf("entry %d not zeroed after Reset: %+v", i, full[i])
		}
	}
}

func TestResetReleasesOversizedArena(t *testing.T) {
	keys := make([]*int, maxRetainedCap+InlineSize)
	for i := range keys {
		keys[i] = new(int)
	}
	var s Set[*int]
	for _, k := range keys {
		s.Insert(k, addrOf(k))
	}
	if cap(s.entries) <= maxRetainedCap {
		t.Skipf("append growth landed at cap %d, cannot exercise release path", cap(s.entries))
	}
	s.Reset()
	if s.entries != nil {
		t.Fatal("oversized arena retained after Reset")
	}
	// The set must rebind to the inline array and keep working.
	e, spilled := s.Insert(keys[0], addrOf(keys[0]))
	if e == nil || spilled {
		t.Fatal("insert after oversized Reset misbehaved")
	}
}

func TestMayContainNeverFalseNegative(t *testing.T) {
	keys := keyPool(256)
	var s Set[*int]
	for _, k := range keys {
		s.Insert(k, addrOf(k))
		if !s.MayContain(addrOf(k)) {
			t.Fatal("filter false negative for an inserted address")
		}
	}
}

// FuzzSetVsMapOracle drives a Set and a plain map (the semantics of the old
// map[*base]any write set) through the same operation stream and requires
// identical observable behaviour: membership, stored values, and the
// sorted-iteration contents. This is the equivalence property the engines
// rely on after swapping the map out for the small vector.
func FuzzSetVsMapOracle(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2, 0, 3})
	f.Add([]byte{9, 0, 9, 1, 9, 2, 17, 0, 255, 1})
	seed := make([]byte, 3*InlineSize+6)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed) // crosses the spill boundary
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := keyPool(32)
		var s Set[*int]
		oracle := make(map[*int]int)
		for i := 0; i+1 < len(data); i += 2 {
			k := keys[int(data[i])%len(keys)]
			addr := addrOf(k)
			op, val := data[i+1]%4, int(data[i+1])
			switch op {
			case 0, 1: // write: in-place rewrite or insert, like the engines
				if e, _ := s.Lookup(addr); e != nil {
					*(*int)(e.Val) = val
				} else {
					e, _ := s.Insert(k, addr)
					e.Val = boxInt(val)
				}
				oracle[k] = val
			case 2: // read-after-write lookup
				e, fp := s.Lookup(addr)
				want, ok := oracle[k]
				if (e != nil) != ok {
					t.Fatalf("Lookup presence = %v, oracle = %v", e != nil, ok)
				}
				if ok && unboxInt(e.Val) != want {
					t.Fatalf("Lookup value = %v, oracle = %d", unboxInt(e.Val), want)
				}
				if fp && ok {
					t.Fatal("Lookup reported false positive for a present key")
				}
			case 3: // filter miss check: absent is allowed, present is not
				if !s.MayContain(addr) {
					if _, ok := oracle[k]; ok {
						t.Fatal("MayContain denied a present key")
					}
				}
			}
			if s.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle = %d", s.Len(), len(oracle))
			}
		}
		// Final sweep: the sorted entries must be exactly the oracle.
		ents := s.Entries()
		if len(ents) != len(oracle) {
			t.Fatalf("final Len = %d, oracle = %d", len(ents), len(oracle))
		}
		var prev uintptr
		for i := range ents {
			if i > 0 && ents[i].Addr() <= prev {
				t.Fatal("entries not strictly ascending by address")
			}
			prev = ents[i].Addr()
			want, ok := oracle[ents[i].Key]
			if !ok {
				t.Fatalf("entry for key not in oracle")
			}
			if unboxInt(ents[i].Val) != want {
				t.Fatalf("entry value %v, oracle %d", unboxInt(ents[i].Val), want)
			}
		}
	})
}
