package stamp

import (
	"fmt"
	"time"

	"gstm"
	"gstm/internal/xrand"
)

// KMeans ports STAMP's kmeans: iterative clustering where each point's
// assignment updates a shared per-cluster accumulator and a global
// membership-change counter inside transactions. With few clusters the
// accumulators are hot, producing the high abort rates the paper's kmeans
// figures show.
//
// Transaction sites:
//
//	0 — add a point to its nearest cluster's accumulator
//	1 — bump the global delta counter when a point switches clusters
type KMeans struct{}

// NewKMeans returns the kmeans workload.
func NewKMeans() *KMeans { return &KMeans{} }

// Name implements Workload.
func (*KMeans) Name() string { return "kmeans" }

const kmeansDims = 4

type kmPoint [kmeansDims]float64

type kmAccum struct {
	Count int
	Sum   kmPoint
}

type kmeansInstance struct {
	threads  int
	iters    int
	points   []kmPoint
	centers  []kmPoint // refreshed between iterations (non-TM)
	member   []int32   // each point's cluster from the previous iteration
	accums   *gstm.Array[kmAccum]
	delta    *gstm.Var[int]
	k        int
	assigned int // points accumulated in the final iteration (validation)
}

// NewInstance implements Workload.
func (*KMeans) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("kmeans: non-positive thread count %d", p.Threads)
	}
	var npoints, iters int
	switch p.Size {
	case Small:
		npoints, iters = 2048, 3
	case Medium:
		npoints, iters = 4096, 3
	case Large:
		npoints, iters = 16384, 4
	default:
		return nil, fmt.Errorf("kmeans: unknown size %v", p.Size)
	}
	const k = 8
	rng := xrand.New(p.Seed + 101)
	inst := &kmeansInstance{
		threads: p.Threads,
		iters:   iters,
		points:  make([]kmPoint, npoints),
		centers: make([]kmPoint, k),
		member:  make([]int32, npoints),
		accums:  gstm.NewArray[kmAccum](k),
		delta:   gstm.NewVar(0),
		k:       k,
	}
	// Points drawn around k well-separated anchors plus noise.
	for i := range inst.points {
		anchor := rng.Intn(k)
		for d := 0; d < kmeansDims; d++ {
			inst.points[i][d] = float64(anchor*10) + rng.Float64()*4
		}
		inst.member[i] = -1
	}
	for c := range inst.centers {
		inst.centers[c] = inst.points[rng.Intn(npoints)]
	}
	return inst, nil
}

func (in *kmeansInstance) nearest(pt kmPoint) int {
	best, bestDist := 0, sqDist(pt, in.centers[0])
	for c := 1; c < in.k; c++ {
		if d := sqDist(pt, in.centers[c]); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

func sqDist(a, b kmPoint) float64 {
	s := 0.0
	for d := 0; d < kmeansDims; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// Run implements Instance.
func (in *kmeansInstance) Run(sys *gstm.System) ([]time.Duration, error) {
	total := make([]time.Duration, in.threads)
	for iter := 0; iter < in.iters; iter++ {
		// Reset accumulators and delta (setup, single-threaded).
		for c := 0; c < in.k; c++ {
			in.accums.Reset(c, kmAccum{})
		}
		in.delta.Reset(0)

		durs, err := RunThreads(in.threads, func(t int) error {
			lo := t * len(in.points) / in.threads
			hi := (t + 1) * len(in.points) / in.threads
			for i := lo; i < hi; i++ {
				pt := in.points[i]
				c := in.nearest(pt)
				if err := sys.Run(nil, gstm.ThreadID(t), 0, func(tx *gstm.Tx) error {
					acc := gstm.ReadAt(tx, in.accums, c)
					acc.Count++
					for d := 0; d < kmeansDims; d++ {
						acc.Sum[d] += pt[d]
					}
					gstm.WriteAt(tx, in.accums, c, acc)
					return nil
				}); err != nil {
					return err
				}
				if int32(c) != in.member[i] {
					in.member[i] = int32(c)
					if err := sys.Run(nil, gstm.ThreadID(t), 1, func(tx *gstm.Tx) error {
						gstm.Write(tx, in.delta, gstm.Read(tx, in.delta)+1)
						return nil
					}); err != nil {
						return err
					}
				}
			}
			return nil
		})
		addDurations(total, durs)
		if err != nil {
			return total, err
		}

		// Recompute centers from the accumulators (single-threaded barrier
		// phase, as in STAMP's main loop).
		in.assigned = 0
		for c := 0; c < in.k; c++ {
			acc := in.accums.Peek(c)
			in.assigned += acc.Count
			if acc.Count > 0 {
				for d := 0; d < kmeansDims; d++ {
					in.centers[c][d] = acc.Sum[d] / float64(acc.Count)
				}
			}
		}
	}
	return total, nil
}

// Validate implements Instance.
func (in *kmeansInstance) Validate(sys *gstm.System) error {
	if in.assigned != len(in.points) {
		return fmt.Errorf("kmeans: final iteration accumulated %d points, want %d (lost updates)",
			in.assigned, len(in.points))
	}
	for i, m := range in.member {
		if m < 0 || int(m) >= in.k {
			return fmt.Errorf("kmeans: point %d has invalid membership %d", i, m)
		}
	}
	return nil
}
