// Package stamp re-implements the seven STAMP benchmarks the paper
// evaluates (genome, intruder, kmeans, labyrinth, ssca2, vacation, yada)
// over the gstm STM. bayes is omitted exactly as in the paper, which
// excludes it after it seg-faults in the authors' environment.
//
// The ports preserve each benchmark's *transactional structure* — the
// shared data structures, the transaction boundaries and their static
// site IDs (the paper's TM_BEGIN(ID) numbering), and the conflict pattern
// (hot counters in kmeans, long claims in labyrinth, near-zero conflicts
// in ssca2, ...) — at inputs scaled for fast repeated runs, since the
// experiments average 20 runs per configuration. Input sizes follow the
// artifact's small/medium/large scheme: medium trains the model, small is
// measured.
package stamp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gstm"
)

// Size selects an input scale, mirroring the artifact's size-of-data
// argument.
type Size int

// Input scales.
const (
	Small Size = iota
	Medium
	Large
)

// String returns the artifact's name for the size.
func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("Size(%d)", int(s))
	}
}

// Params configures one benchmark run.
type Params struct {
	Threads int
	Size    Size
	Seed    uint64
}

// Workload is one STAMP application.
type Workload interface {
	// Name returns the benchmark's STAMP name (lowercase).
	Name() string

	// NewInstance builds fresh shared state for a single run. Instances
	// must not be reused across runs.
	NewInstance(p Params) (Instance, error)
}

// Instance is one run's worth of shared state.
type Instance interface {
	// Run executes the parallel transactional phase and returns each
	// worker thread's wall-clock execution time — the quantity whose
	// variance the paper studies.
	Run(sys *gstm.System) ([]time.Duration, error)

	// Validate checks the run's post-conditions (result correctness under
	// any commit order).
	Validate(sys *gstm.System) error
}

// All returns the seven benchmarks in the paper's table order.
func All() []Workload {
	return []Workload{
		NewGenome(),
		NewIntruder(),
		NewKMeans(),
		NewLabyrinth(),
		NewSSCA2(),
		NewVacation(),
		NewYada(),
	}
}

// ByName returns the named benchmark, or an error listing valid names.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	names := make([]string, 0, 7)
	for _, w := range All() {
		names = append(names, w.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("stamp: unknown benchmark %q (have %v)", name, names)
}

// RunThreads launches one goroutine per thread running body and returns
// each thread's wall-clock duration. The first body error (if any) is
// returned; all threads always run to completion.
func RunThreads(threads int, body func(thread int) error) ([]time.Duration, error) {
	durations := make([]time.Duration, threads)
	errs := make([]error, threads)
	var start sync.WaitGroup // line threads up for a simultaneous start
	start.Add(1)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			start.Wait()
			begin := time.Now()
			errs[t] = body(t)
			durations[t] = time.Since(begin)
		}(t)
	}
	start.Done()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return durations, err
		}
	}
	return durations, nil
}

// addDurations sums b into a element-wise; used by multi-phase benchmarks
// to accumulate each thread's total execution time across phases.
func addDurations(a, b []time.Duration) {
	for i := range a {
		a[i] += b[i]
	}
}
