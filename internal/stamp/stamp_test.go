package stamp

import (
	"errors"
	"testing"
	"time"

	"gstm"
)

// runOnce executes one instance of w and validates it.
func runOnce(t *testing.T, w Workload, p Params, sys *gstm.System) []time.Duration {
	t.Helper()
	inst, err := w.NewInstance(p)
	if err != nil {
		t.Fatalf("%s: NewInstance: %v", w.Name(), err)
	}
	durs, err := inst.Run(sys)
	if err != nil {
		t.Fatalf("%s: Run: %v", w.Name(), err)
	}
	if len(durs) != p.Threads {
		t.Fatalf("%s: %d durations for %d threads", w.Name(), len(durs), p.Threads)
	}
	for i, d := range durs {
		if d <= 0 {
			t.Fatalf("%s: thread %d has non-positive duration %v", w.Name(), i, d)
		}
	}
	if err := inst.Validate(sys); err != nil {
		t.Fatalf("%s: Validate: %v", w.Name(), err)
	}
	return durs
}

func TestAllBenchmarksSmallDefault(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: 8})
			runOnce(t, w, Params{Threads: 4, Size: Small, Seed: 1}, sys)
		})
	}
}

func TestAllBenchmarksMediumDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("medium inputs in -short mode")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			sys := gstm.NewSystem(gstm.Config{Threads: 8, Interleave: 8})
			runOnce(t, w, Params{Threads: 8, Size: Medium, Seed: 2}, sys)
		})
	}
}

// TestAllBenchmarksGuided profiles each benchmark, builds a model and
// re-runs it under forced guidance: results must stay correct whatever the
// gate does.
func TestAllBenchmarksGuided(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			t.Parallel()
			const threads = 4
			sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 8})
			var traces []*gstm.Trace
			for run := 0; run < 2; run++ {
				sys.StartProfiling()
				runOnce(t, w, Params{Threads: threads, Size: Small, Seed: 3}, sys)
				traces = append(traces, sys.StopProfiling())
			}
			m := gstm.BuildModel(threads, traces)
			if m.NumStates() == 0 {
				t.Fatal("profiling produced an empty model")
			}
			sys.ForceGuidance(m)
			runOnce(t, w, Params{Threads: threads, Size: Small, Seed: 4}, sys)
		})
	}
}

func TestBenchmarksProduceAborts(t *testing.T) {
	// The contended benchmarks must produce aborts under interleaving —
	// otherwise the variance experiments are vacuous. ssca2 is exempt: its
	// near-zero abort rate is the paper's point.
	for _, name := range []string{"kmeans", "intruder", "yada"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			sys := gstm.NewSystem(gstm.Config{Threads: 8, Interleave: 4})
			runOnce(t, w, Params{Threads: 8, Size: Small, Seed: 5}, sys)
			_, aborts := sys.Stats()
			if aborts == 0 {
				t.Errorf("%s: no aborts under 8-thread interleaved run", name)
			}
		})
	}
}

func TestSSCA2HasFarFewerAbortsThanKMeans(t *testing.T) {
	run := func(name string) float64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sys := gstm.NewSystem(gstm.Config{Threads: 8, Interleave: 4})
		runOnce(t, w, Params{Threads: 8, Size: Small, Seed: 6}, sys)
		commits, aborts := sys.Stats()
		return float64(aborts) / float64(commits)
	}
	ssca2 := run("ssca2")
	kmeans := run("kmeans")
	if ssca2 >= kmeans {
		t.Fatalf("abort ratio ssca2 %.4f >= kmeans %.4f; ssca2 should be near conflict-free", ssca2, kmeans)
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"genome", "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "yada"} {
		w, err := ByName(want)
		if err != nil {
			t.Fatalf("ByName(%q): %v", want, err)
		}
		if w.Name() != want {
			t.Fatalf("ByName(%q).Name() = %q", want, w.Name())
		}
	}
	if _, err := ByName("bayes"); err == nil {
		t.Fatal("bayes should be absent (excluded by the paper)")
	}
}

func TestSizeString(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("Size names wrong")
	}
	if Size(42).String() == "" {
		t.Fatal("unknown size should still render")
	}
}

func TestInvalidParams(t *testing.T) {
	for _, w := range All() {
		if _, err := w.NewInstance(Params{Threads: 0, Size: Small}); err == nil {
			t.Errorf("%s accepted zero threads", w.Name())
		}
		if _, err := w.NewInstance(Params{Threads: 2, Size: Size(99)}); err == nil {
			t.Errorf("%s accepted invalid size", w.Name())
		}
	}
}

func TestRunThreadsReportsBodyError(t *testing.T) {
	want := errors.New("thread failure")
	durs, err := RunThreads(3, func(th int) error {
		if th == 1 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	if len(durs) != 3 {
		t.Fatalf("durations = %d", len(durs))
	}
}

func TestDeterministicInputs(t *testing.T) {
	// Same seed → identical generated inputs (the STM interleaving is the
	// only non-determinism). Check via ssca2's edge list.
	w := NewSSCA2()
	a, err := w.NewInstance(Params{Threads: 2, Size: Small, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.NewInstance(Params{Threads: 2, Size: Small, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.(*ssca2Instance).edges, b.(*ssca2Instance).edges
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}
