package stamp

import (
	"fmt"
	"time"

	"gstm"
	"gstm/internal/stmds"
	"gstm/internal/xrand"
)

// Vacation ports STAMP's vacation: a travel-reservation database with
// three resource tables (flights, rooms, cars) and a customer table, hit by
// client threads issuing pseudo-random operations. Like the original, each
// client transaction touches several tree paths, and the operation mix is
// skewed toward reservations.
//
// Transaction sites:
//
//	0 — make reservation (query q random resources, book the cheapest)
//	1 — delete customer (release everything it holds)
//	2 — update tables (add capacity / change prices)
type Vacation struct{}

// NewVacation returns the vacation workload.
func NewVacation() *Vacation { return &Vacation{} }

// Name implements Workload.
func (*Vacation) Name() string { return "vacation" }

const vacationKinds = 3 // flight, room, car

type vacResource struct {
	Total int
	Used  int
	Price int
}

type vacBooking struct {
	Kind int
	ID   int64
}

type vacationInstance struct {
	threads   int
	relations int // resources per kind
	opsPerTh  int
	queries   int
	tables    [vacationKinds]*stmds.Map[vacResource]
	customers *stmds.Map[[]vacBooking]
	seed      uint64
}

// NewInstance implements Workload.
func (*Vacation) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("vacation: non-positive thread count %d", p.Threads)
	}
	var relations, opsPerTh int
	switch p.Size {
	case Small:
		relations, opsPerTh = 64, 192
	case Medium:
		relations, opsPerTh = 128, 320
	case Large:
		relations, opsPerTh = 512, 1024
	default:
		return nil, fmt.Errorf("vacation: unknown size %v", p.Size)
	}
	inst := &vacationInstance{
		threads:   p.Threads,
		relations: relations,
		opsPerTh:  opsPerTh,
		queries:   4,
		customers: stmds.NewMap[[]vacBooking](),
		seed:      p.Seed + 303,
	}
	rng := xrand.New(inst.seed)
	// Populate tables non-transactionally before the timed phase — the
	// stmds structures require a transaction, so use a setup system.
	setup := gstm.NewSystem(gstm.Config{Threads: 1})
	for k := 0; k < vacationKinds; k++ {
		inst.tables[k] = stmds.NewMap[vacResource]()
		for id := 0; id < relations; id++ {
			res := vacResource{Total: 1 + rng.Intn(5), Price: 50 + rng.Intn(450)}
			tbl := inst.tables[k]
			if err := setup.Run(nil, 0, 0, func(tx *gstm.Tx) error {
				tbl.Insert(tx, int64(id), res)
				return nil
			}); err != nil {
				return nil, err
			}
		}
	}
	return inst, nil
}

// Run implements Instance.
func (in *vacationInstance) Run(sys *gstm.System) ([]time.Duration, error) {
	return RunThreads(in.threads, func(t int) error {
		rng := xrand.NewThread(in.seed, t)
		for op := 0; op < in.opsPerTh; op++ {
			var err error
			switch r := rng.Intn(100); {
			case r < 80:
				err = in.makeReservation(sys, t, rng)
			case r < 90:
				err = in.deleteCustomer(sys, t, rng)
			default:
				err = in.updateTables(sys, t, rng)
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
}

func (in *vacationInstance) makeReservation(sys *gstm.System, t int, rng *xrand.Rand) error {
	kind := rng.Intn(vacationKinds)
	custID := int64(rng.Intn(in.relations))
	ids := make([]int64, in.queries)
	for i := range ids {
		ids[i] = int64(rng.Intn(in.relations))
	}
	tbl := in.tables[kind]
	return sys.Run(nil, gstm.ThreadID(t), 0, func(tx *gstm.Tx) error {
		bestID := int64(-1)
		bestPrice := 0
		for _, id := range ids {
			res, ok := tbl.Get(tx, id)
			if !ok || res.Used >= res.Total {
				continue
			}
			if bestID == -1 || res.Price < bestPrice {
				bestID, bestPrice = id, res.Price
			}
		}
		if bestID == -1 {
			return nil // nothing available among the queried resources
		}
		res, _ := tbl.Get(tx, bestID)
		res.Used++
		tbl.Set(tx, bestID, res)
		bookings, _ := in.customers.Get(tx, custID)
		updated := make([]vacBooking, len(bookings), len(bookings)+1)
		copy(updated, bookings)
		updated = append(updated, vacBooking{Kind: kind, ID: bestID})
		in.customers.Upsert(tx, custID, updated)
		return nil
	})
}

func (in *vacationInstance) deleteCustomer(sys *gstm.System, t int, rng *xrand.Rand) error {
	custID := int64(rng.Intn(in.relations))
	return sys.Run(nil, gstm.ThreadID(t), 1, func(tx *gstm.Tx) error {
		bookings, ok := in.customers.Get(tx, custID)
		if !ok {
			return nil
		}
		for _, b := range bookings {
			res, ok := in.tables[b.Kind].Get(tx, b.ID)
			if !ok {
				continue // resource removed by an update; booking is void
			}
			if res.Used > 0 {
				res.Used--
				in.tables[b.Kind].Set(tx, b.ID, res)
			}
		}
		in.customers.Remove(tx, custID)
		return nil
	})
}

func (in *vacationInstance) updateTables(sys *gstm.System, t int, rng *xrand.Rand) error {
	kind := rng.Intn(vacationKinds)
	id := int64(rng.Intn(in.relations))
	addCapacity := rng.Intn(2) == 0
	newPrice := 50 + rng.Intn(450)
	tbl := in.tables[kind]
	return sys.Run(nil, gstm.ThreadID(t), 2, func(tx *gstm.Tx) error {
		res, ok := tbl.Get(tx, id)
		if !ok {
			return nil
		}
		if addCapacity {
			res.Total++
		} else {
			res.Price = newPrice
		}
		tbl.Set(tx, id, res)
		return nil
	})
}

// Validate implements Instance.
func (in *vacationInstance) Validate(sys *gstm.System) error {
	var verr error
	err := sys.Run(nil, 0, 0, func(tx *gstm.Tx) error {
		verr = nil
		// used counts must never exceed totals, and every used unit must be
		// accounted for by some customer's booking.
		held := make(map[[2]int64]int) // (kind, id) → bookings held
		in.customers.Range(tx, func(cust int64, bookings []vacBooking) bool {
			for _, b := range bookings {
				held[[2]int64{int64(b.Kind), b.ID}]++
			}
			return true
		})
		for k := 0; k < vacationKinds; k++ {
			kind := k
			in.tables[k].Range(tx, func(id int64, res vacResource) bool {
				if res.Used < 0 || res.Used > res.Total {
					verr = fmt.Errorf("vacation: resource (%d,%d) used %d of %d", kind, id, res.Used, res.Total)
					return false
				}
				if h := held[[2]int64{int64(kind), id}]; res.Used != h {
					verr = fmt.Errorf("vacation: resource (%d,%d) used=%d but customers hold %d", kind, id, res.Used, h)
					return false
				}
				return true
			})
			if verr != nil {
				return nil
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return verr
}
