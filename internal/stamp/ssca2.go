package stamp

import (
	"fmt"
	"time"

	"gstm"
	"gstm/internal/xrand"
)

// SSCA2 ports STAMP's ssca2 (kernel 1, graph construction): threads insert
// a partitioned edge list into shared adjacency structures with one tiny
// read-modify-write transaction per edge. The shared arrays are much larger
// than the thread count, so conflicts are innately near zero — exactly the
// property that makes the paper's model analyzer reject ssca2 for guidance
// (guidance metric 72%/57%, Table I) and why guiding it anyway only adds
// overhead (Figure 8).
//
// Transaction sites:
//
//	0 — insert one edge (bump both endpoints' degree and weight cells)
type SSCA2 struct{}

// NewSSCA2 returns the ssca2 workload.
func NewSSCA2() *SSCA2 { return &SSCA2{} }

// Name implements Workload.
func (*SSCA2) Name() string { return "ssca2" }

type ssca2Edge struct {
	u, v   int32
	weight int32
}

type ssca2Instance struct {
	threads int
	nVerts  int
	edges   []ssca2Edge
	degree  *gstm.Array[int32]
	weight  *gstm.Array[int64]
}

// NewInstance implements Workload.
func (*SSCA2) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("ssca2: non-positive thread count %d", p.Threads)
	}
	var nVerts, nEdges int
	switch p.Size {
	case Small:
		nVerts, nEdges = 4096, 8192
	case Medium:
		nVerts, nEdges = 8192, 16384
	case Large:
		nVerts, nEdges = 32768, 65536
	default:
		return nil, fmt.Errorf("ssca2: unknown size %v", p.Size)
	}
	rng := xrand.New(p.Seed + 606)
	inst := &ssca2Instance{
		threads: p.Threads,
		nVerts:  nVerts,
		edges:   make([]ssca2Edge, nEdges),
		degree:  gstm.NewArray[int32](nVerts),
		weight:  gstm.NewArray[int64](nVerts),
	}
	for i := range inst.edges {
		u := int32(rng.Intn(nVerts))
		v := int32(rng.Intn(nVerts))
		if u == v {
			v = (v + 1) % int32(nVerts)
		}
		inst.edges[i] = ssca2Edge{u: u, v: v, weight: int32(1 + rng.Intn(100))}
	}
	return inst, nil
}

// Run implements Instance.
func (in *ssca2Instance) Run(sys *gstm.System) ([]time.Duration, error) {
	return RunThreads(in.threads, func(t int) error {
		lo := t * len(in.edges) / in.threads
		hi := (t + 1) * len(in.edges) / in.threads
		for _, e := range in.edges[lo:hi] {
			if err := sys.Run(nil, gstm.ThreadID(t), 0, func(tx *gstm.Tx) error {
				gstm.WriteAt(tx, in.degree, int(e.u), gstm.ReadAt(tx, in.degree, int(e.u))+1)
				gstm.WriteAt(tx, in.degree, int(e.v), gstm.ReadAt(tx, in.degree, int(e.v))+1)
				gstm.WriteAt(tx, in.weight, int(e.u), gstm.ReadAt(tx, in.weight, int(e.u))+int64(e.weight))
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

// Validate implements Instance.
func (in *ssca2Instance) Validate(sys *gstm.System) error {
	var totalDeg int64
	var totalWeight int64
	for v := 0; v < in.nVerts; v++ {
		totalDeg += int64(in.degree.Peek(v))
		totalWeight += in.weight.Peek(v)
	}
	if want := int64(2 * len(in.edges)); totalDeg != want {
		return fmt.Errorf("ssca2: total degree %d, want %d", totalDeg, want)
	}
	var wantWeight int64
	for _, e := range in.edges {
		wantWeight += int64(e.weight)
	}
	if totalWeight != wantWeight {
		return fmt.Errorf("ssca2: total weight %d, want %d", totalWeight, wantWeight)
	}
	return nil
}
