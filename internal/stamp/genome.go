package stamp

import (
	"fmt"
	"time"

	"gstm"
	"gstm/internal/stmds"
	"gstm/internal/xrand"
)

// Genome ports STAMP's genome: gene sequencing by (1) de-duplicating an
// oversampled pool of DNA segments into a shared hash set and (2) linking
// unique segments into chains by claiming overlapping successors. Phase 2's
// claims conflict when two segments race for the same successor — the
// benchmark's characteristic contention.
//
// Transaction sites:
//
//	0 — insert a sampled segment into the de-duplication hash set
//	1 — look up overlap candidates and claim a successor link
type Genome struct{}

// NewGenome returns the genome workload.
func NewGenome() *Genome { return &Genome{} }

// Name implements Workload.
func (*Genome) Name() string { return "genome" }

type genomeInstance struct {
	threads    int
	geneLen    int
	segLen     int
	samples    []int64 // sampled segment start positions (with duplicates)
	table      *stmds.HashTable[struct{}]
	prev       *gstm.Array[int64] // prev[s] = start of the segment that claimed s as successor, -1 if unclaimed
	uniqueWant map[int64]bool     // ground truth of unique segments
}

// NewInstance implements Workload.
func (*Genome) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("genome: non-positive thread count %d", p.Threads)
	}
	var geneLen, oversample int
	switch p.Size {
	case Small:
		geneLen, oversample = 1024, 4
	case Medium:
		geneLen, oversample = 2048, 4
	case Large:
		geneLen, oversample = 8192, 6
	default:
		return nil, fmt.Errorf("genome: unknown size %v", p.Size)
	}
	const segLen = 16
	rng := xrand.New(p.Seed + 202)
	nSamples := geneLen * oversample
	inst := &genomeInstance{
		threads: p.Threads,
		geneLen: geneLen,
		segLen:  segLen,
		samples: make([]int64, nSamples),
		// A small table keeps bucket chains hot: the original's segment
		// table is sized to contend during the insertion phase.
		table:      stmds.NewHashTable[struct{}](geneLen / 8),
		prev:       gstm.NewArray[int64](geneLen),
		uniqueWant: make(map[int64]bool),
	}
	for i := range inst.samples {
		s := int64(rng.Intn(geneLen - segLen))
		inst.samples[i] = s
		inst.uniqueWant[s] = true
	}
	for i := 0; i < geneLen; i++ {
		inst.prev.Reset(i, -1)
	}
	return inst, nil
}

// Run implements Instance.
func (in *genomeInstance) Run(sys *gstm.System) ([]time.Duration, error) {
	total := make([]time.Duration, in.threads)

	// Phase 1: de-duplicate the sampled segments.
	durs, err := RunThreads(in.threads, func(t int) error {
		lo := t * len(in.samples) / in.threads
		hi := (t + 1) * len(in.samples) / in.threads
		for _, s := range in.samples[lo:hi] {
			if err := sys.Run(nil, gstm.ThreadID(t), 0, func(tx *gstm.Tx) error {
				// The counted insert maintains the table's global element
				// counter, the same shared hot spot the original's segment
				// insertion phase contends on.
				in.table.Insert(tx, s, struct{}{})
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	addDurations(total, durs)
	if err != nil {
		return total, err
	}

	// Phase 2: for each unique segment, claim the nearest overlapping
	// successor (smallest start' > start within segLen-1) whose prev link
	// is free. Threads partition the gene's position space.
	durs, err = RunThreads(in.threads, func(t int) error {
		for s := int64(t); s < int64(in.geneLen); s += int64(in.threads) {
			if !in.uniqueWant[s] {
				continue
			}
			if err := sys.Run(nil, gstm.ThreadID(t), 1, func(tx *gstm.Tx) error {
				for d := int64(1); d < int64(in.segLen); d++ {
					succ := s + d
					if succ >= int64(in.geneLen) {
						break
					}
					if !in.table.Contains(tx, succ) {
						continue
					}
					if gstm.ReadAt(tx, in.prev, int(succ)) == -1 {
						gstm.WriteAt(tx, in.prev, int(succ), s)
						return nil
					}
				}
				return nil // no free successor: end of a chain
			}); err != nil {
				return err
			}
		}
		return nil
	})
	addDurations(total, durs)
	return total, err
}

// Validate implements Instance.
func (in *genomeInstance) Validate(sys *gstm.System) error {
	// Every unique sampled segment must be in the table; nothing else.
	var tableErr error
	err := sys.Run(nil, 0, 0, func(tx *gstm.Tx) error {
		for s := range in.uniqueWant {
			if !in.table.Contains(tx, s) {
				tableErr = fmt.Errorf("genome: unique segment %d missing from table", s)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if tableErr != nil {
		return tableErr
	}
	// Claims must be valid overlaps between unique segments, and each
	// claimer must claim at most one successor.
	claimsBy := make(map[int64]int)
	for s := 0; s < in.geneLen; s++ {
		p := in.prev.Peek(s)
		if p == -1 {
			continue
		}
		if !in.uniqueWant[p] || !in.uniqueWant[int64(s)] {
			return fmt.Errorf("genome: link %d→%d involves a non-unique segment", p, s)
		}
		if int64(s) <= p || int64(s)-p >= int64(in.segLen) {
			return fmt.Errorf("genome: link %d→%d is not a valid overlap", p, s)
		}
		claimsBy[p]++
		if claimsBy[p] > 1 {
			return fmt.Errorf("genome: segment %d claimed %d successors", p, claimsBy[p])
		}
	}
	return nil
}
