package stamp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gstm"
	"gstm/internal/stmds"
	"gstm/internal/xrand"
)

// Labyrinth ports STAMP's labyrinth: threads pull (source, destination)
// routing requests from a shared queue, plan a path over a snapshot of the
// shared grid, and transactionally claim every cell of the path. Claims are
// long transactions with large write sets, so crossing paths abort each
// other — the original's signature behaviour.
//
// Transaction sites:
//
//	0 — pop a routing request from the work queue
//	1 — claim a planned path's cells on the grid
type Labyrinth struct{}

// NewLabyrinth returns the labyrinth workload.
func NewLabyrinth() *Labyrinth { return &Labyrinth{} }

// Name implements Workload.
func (*Labyrinth) Name() string { return "labyrinth" }

type labTask struct {
	ID       int32
	Src, Dst int
}

type labyrinthInstance struct {
	threads int
	w, h    int
	grid    *gstm.Array[int32] // 0 = free, else path ID
	tasks   *stmds.Queue[labTask]
	nTasks  int
	routed  *gstm.Var[int]
	failed  *gstm.Var[int]
	paths   map[int32][]int // recorded by Run's claims for validation
	pathsMu sync.Mutex      // guards paths
}

// errPathBlocked aborts a claim transaction when a planned cell is already
// owned; the router then replans on a fresh snapshot.
var errPathBlocked = errors.New("labyrinth: path cell already claimed")

// NewInstance implements Workload.
func (*Labyrinth) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("labyrinth: non-positive thread count %d", p.Threads)
	}
	var side, nTasks int
	switch p.Size {
	case Small:
		side, nTasks = 48, 96
	case Medium:
		side, nTasks = 64, 160
	case Large:
		side, nTasks = 96, 384
	default:
		return nil, fmt.Errorf("labyrinth: unknown size %v", p.Size)
	}
	rng := xrand.New(p.Seed + 505)
	inst := &labyrinthInstance{
		threads: p.Threads,
		w:       side,
		h:       side,
		grid:    gstm.NewArray[int32](side * side),
		tasks:   stmds.NewQueue[labTask](),
		nTasks:  nTasks,
		routed:  gstm.NewVar(0),
		failed:  gstm.NewVar(0),
		paths:   make(map[int32][]int),
	}
	setup := gstm.NewSystem(gstm.Config{Threads: 1})
	for i := 0; i < nTasks; i++ {
		task := labTask{
			ID:  int32(i + 1),
			Src: rng.Intn(side*side/2) * 2 % (side * side),
			Dst: rng.Intn(side * side),
		}
		if task.Src == task.Dst {
			task.Dst = (task.Dst + side + 1) % (side * side)
		}
		if err := setup.Run(nil, 0, 0, func(tx *gstm.Tx) error {
			inst.tasks.Enqueue(tx, task)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// snapshotBFS plans a shortest path from src to dst over a non-transactional
// snapshot of the grid, avoiding occupied cells (but allowing occupied
// endpoints to be rejected). It returns nil when no path exists.
func (in *labyrinthInstance) snapshotBFS(src, dst int) []int {
	n := in.w * in.h
	if in.grid.Peek(src) != 0 || in.grid.Peek(dst) != 0 {
		return nil
	}
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = int32(src)
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		x, y := cur%in.w, cur/in.w
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx < 0 || ny < 0 || nx >= in.w || ny >= in.h {
				continue
			}
			next := ny*in.w + nx
			if prev[next] != -1 || in.grid.Peek(next) != 0 {
				continue
			}
			prev[next] = int32(cur)
			queue = append(queue, next)
		}
	}
	if prev[dst] == -1 {
		return nil
	}
	var path []int
	for cur := dst; ; cur = int(prev[cur]) {
		path = append(path, cur)
		if cur == src {
			break
		}
	}
	return path
}

// Run implements Instance.
func (in *labyrinthInstance) Run(sys *gstm.System) ([]time.Duration, error) {
	const maxReplans = 8
	return RunThreads(in.threads, func(t int) error {
		id := gstm.ThreadID(t)
		for {
			var task labTask
			var got bool
			if err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
				task, got = in.tasks.Dequeue(tx)
				return nil
			}); err != nil {
				return err
			}
			if !got {
				return nil
			}
			routed := false
			for replan := 0; replan < maxReplans && !routed; replan++ {
				path := in.snapshotBFS(task.Src, task.Dst)
				if path == nil {
					break
				}
				err := sys.Run(nil, id, 1, func(tx *gstm.Tx) error {
					for _, cell := range path {
						if gstm.ReadAt(tx, in.grid, cell) != 0 {
							return errPathBlocked
						}
						gstm.WriteAt(tx, in.grid, cell, task.ID)
					}
					gstm.Write(tx, in.routed, gstm.Read(tx, in.routed)+1)
					return nil
				})
				switch {
				case err == nil:
					routed = true
					in.pathsMu.Lock()
					in.paths[task.ID] = path
					in.pathsMu.Unlock()
				case errors.Is(err, errPathBlocked):
					// Stale snapshot: replan.
				default:
					return err
				}
			}
			if !routed {
				if err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
					gstm.Write(tx, in.failed, gstm.Read(tx, in.failed)+1)
					return nil
				}); err != nil {
					return err
				}
			}
		}
	})
}

// Validate implements Instance.
func (in *labyrinthInstance) Validate(sys *gstm.System) error {
	routed, failed := in.routed.Peek(), in.failed.Peek()
	if routed+failed != in.nTasks {
		return fmt.Errorf("labyrinth: routed %d + failed %d != %d tasks", routed, failed, in.nTasks)
	}
	if routed != len(in.paths) {
		return fmt.Errorf("labyrinth: routed counter %d != recorded paths %d", routed, len(in.paths))
	}
	// Grid ownership must exactly reflect the recorded paths: disjoint,
	// connected, claimed with the right ID.
	owned := make(map[int]int32)
	for id, path := range in.paths {
		for i, cell := range path {
			if prev, dup := owned[cell]; dup {
				return fmt.Errorf("labyrinth: cell %d claimed by both %d and %d", cell, prev, id)
			}
			owned[cell] = id
			if got := in.grid.Peek(cell); got != id {
				return fmt.Errorf("labyrinth: cell %d owned by %d, want %d", cell, got, id)
			}
			if i > 0 && !adjacent(in.w, path[i-1], cell) {
				return fmt.Errorf("labyrinth: path %d not connected at %d→%d", id, path[i-1], cell)
			}
		}
	}
	// No stray claims outside recorded paths.
	for c := 0; c < in.w*in.h; c++ {
		if v := in.grid.Peek(c); v != 0 {
			if _, ok := owned[c]; !ok {
				return fmt.Errorf("labyrinth: cell %d owned by %d but in no recorded path", c, v)
			}
		}
	}
	return nil
}

func adjacent(w, a, b int) bool {
	ax, ay := a%w, a/w
	bx, by := b%w, b/w
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx+dy == 1
}
