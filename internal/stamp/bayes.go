package stamp

import (
	"fmt"
	"math"
	"time"

	"gstm"
	"gstm/internal/stmds"
	"gstm/internal/xrand"
)

// Bayes ports STAMP's bayes: hill-climbing structure learning of a
// Bayesian network. Worker threads pull candidate edge insertions from a
// shared queue and, in one long transaction each, verify acyclicity by
// walking the shared adjacency structure (a large read set), score the
// candidate against the training data, and install improving edges (writes
// to adjacency and per-variable score cells). Long transactions over a
// shared graph give bayes the largest transaction footprints in the suite.
//
// The paper EXCLUDES bayes from every result table because it seg-faults
// in the authors' environment (a known STAMP issue they cite). This port
// runs correctly, but to keep the reproduction faithful it is likewise
// excluded from stamp.All() and from the experiment harness; it is
// available via NewBayes / AllWithBayes for completeness.
//
// Transaction sites:
//
//	0 — pop a candidate edge operation from the work queue
//	1 — validate, score and (if improving) apply the edge
type Bayes struct{}

// NewBayes returns the bayes workload.
func NewBayes() *Bayes { return &Bayes{} }

// AllWithBayes returns the full eight-benchmark suite including bayes.
func AllWithBayes() []Workload {
	return append([]Workload{NewBayes()}, All()...)
}

// Name implements Workload.
func (*Bayes) Name() string { return "bayes" }

type bayesCandidate struct {
	From, To int32
}

type bayesInstance struct {
	threads int
	nVars   int
	records [][]byte // binary training data, records × vars

	adj       *gstm.Array[bool]    // adjacency matrix, row-major From*nVars+To
	parents   *gstm.Array[int32]   // parent count per variable
	scores    *gstm.Array[float64] // local score per variable
	inserted  *gstm.Var[int]
	evaluated *gstm.Var[int]
	work      *stmds.Queue[bayesCandidate]
	nCands    int
	maxParent int32
}

// NewInstance implements Workload.
func (*Bayes) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("bayes: non-positive thread count %d", p.Threads)
	}
	var nVars, nRecords, nCands int
	switch p.Size {
	case Small:
		nVars, nRecords, nCands = 12, 128, 160
	case Medium:
		nVars, nRecords, nCands = 16, 256, 320
	case Large:
		nVars, nRecords, nCands = 24, 512, 960
	default:
		return nil, fmt.Errorf("bayes: unknown size %v", p.Size)
	}
	rng := xrand.New(p.Seed + 808)
	inst := &bayesInstance{
		threads:   p.Threads,
		nVars:     nVars,
		records:   make([][]byte, nRecords),
		adj:       gstm.NewArray[bool](nVars * nVars),
		parents:   gstm.NewArray[int32](nVars),
		scores:    gstm.NewArray[float64](nVars),
		inserted:  gstm.NewVar(0),
		evaluated: gstm.NewVar(0),
		work:      stmds.NewQueue[bayesCandidate](),
		nCands:    nCands,
		maxParent: 4,
	}
	// Ground truth: a random DAG over the variable order; data sampled
	// from noisy OR of parents.
	truth := make([][]int32, nVars)
	for v := 1; v < nVars; v++ {
		for k := 0; k < 2; k++ {
			truth[v] = append(truth[v], int32(rng.Intn(v)))
		}
	}
	for r := range inst.records {
		rec := make([]byte, nVars)
		for v := 0; v < nVars; v++ {
			bit := byte(0)
			for _, par := range truth[v] {
				bit |= rec[par]
			}
			if rng.Intn(100) < 20 { // noise
				bit ^= 1
			}
			rec[v] = bit
		}
		inst.records[r] = rec
	}
	// Candidate operations: random directed edges, duplicates allowed (a
	// later duplicate scores as no improvement).
	setup := gstm.NewSystem(gstm.Config{Threads: 1})
	for i := 0; i < nCands; i++ {
		from := int32(rng.Intn(nVars))
		to := int32(rng.Intn(nVars))
		if from == to {
			to = (to + 1) % int32(nVars)
		}
		cand := bayesCandidate{From: from, To: to}
		if err := setup.Run(nil, 0, 0, func(tx *gstm.Tx) error {
			inst.work.Enqueue(tx, cand)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// localScore computes a BIC-flavoured score of variable v given one extra
// parent from: the mutual agreement between v and its would-be parent over
// the data, penalized by parent count. Pure computation over the private
// training data.
func (in *bayesInstance) localScore(v, from int32, nParents int32) float64 {
	agree := 0
	for _, rec := range in.records {
		if rec[v] == rec[from] {
			agree++
		}
	}
	p := float64(agree) / float64(len(in.records))
	if p <= 0 || p >= 1 {
		return -float64(nParents)
	}
	n := float64(len(in.records))
	return n*(p*math.Log(p)+(1-p)*math.Log(1-p))/10 + n*p - float64(nParents)*math.Log(n)
}

// reachable reports (transactionally) whether dst is reachable from src in
// the current adjacency — the acyclicity check; its DFS is the big read
// set that makes bayes transactions long.
func (in *bayesInstance) reachable(tx *gstm.Tx, src, dst int32) bool {
	seen := make([]bool, in.nVars)
	stack := []int32{src}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == dst {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for next := int32(0); next < int32(in.nVars); next++ {
			if gstm.ReadAt(tx, in.adj, int(cur)*in.nVars+int(next)) && !seen[next] {
				stack = append(stack, next)
			}
		}
	}
	return false
}

// Run implements Instance.
func (in *bayesInstance) Run(sys *gstm.System) ([]time.Duration, error) {
	return RunThreads(in.threads, func(t int) error {
		id := gstm.ThreadID(t)
		for {
			var cand bayesCandidate
			var got bool
			if err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
				cand, got = in.work.Dequeue(tx)
				return nil
			}); err != nil {
				return err
			}
			if !got {
				return nil
			}
			if err := sys.Run(nil, id, 1, func(tx *gstm.Tx) error {
				gstm.Write(tx, in.evaluated, gstm.Read(tx, in.evaluated)+1)
				idx := int(cand.From)*in.nVars + int(cand.To)
				if gstm.ReadAt(tx, in.adj, idx) {
					return nil // already present
				}
				nPar := gstm.ReadAt(tx, in.parents, int(cand.To))
				if nPar >= in.maxParent {
					return nil
				}
				// Adding From→To creates a cycle iff From is reachable
				// from To.
				if in.reachable(tx, cand.To, cand.From) {
					return nil
				}
				oldScore := gstm.ReadAt(tx, in.scores, int(cand.To))
				newScore := in.localScore(cand.To, cand.From, nPar+1)
				if newScore <= oldScore {
					return nil
				}
				gstm.WriteAt(tx, in.adj, idx, true)
				gstm.WriteAt(tx, in.parents, int(cand.To), nPar+1)
				gstm.WriteAt(tx, in.scores, int(cand.To), newScore)
				gstm.Write(tx, in.inserted, gstm.Read(tx, in.inserted)+1)
				return nil
			}); err != nil {
				return err
			}
		}
	})
}

// Validate implements Instance.
func (in *bayesInstance) Validate(sys *gstm.System) error {
	if got := in.evaluated.Peek(); got != in.nCands {
		return fmt.Errorf("bayes: evaluated %d candidates, want %d", got, in.nCands)
	}
	// Parent counts must match adjacency columns.
	edges := 0
	for v := 0; v < in.nVars; v++ {
		col := int32(0)
		for u := 0; u < in.nVars; u++ {
			if in.adj.Peek(u*in.nVars + v) {
				col++
				edges++
			}
		}
		if got := in.parents.Peek(v); got != col {
			return fmt.Errorf("bayes: var %d parent count %d, adjacency says %d", v, got, col)
		}
		if col > in.maxParent {
			return fmt.Errorf("bayes: var %d has %d parents (max %d)", v, col, in.maxParent)
		}
	}
	if got := in.inserted.Peek(); got != edges {
		return fmt.Errorf("bayes: inserted counter %d, adjacency has %d edges", got, edges)
	}
	// The learned graph must be acyclic: Kahn's algorithm consumes all
	// vertices.
	indeg := make([]int, in.nVars)
	for u := 0; u < in.nVars; u++ {
		for v := 0; v < in.nVars; v++ {
			if in.adj.Peek(u*in.nVars + v) {
				indeg[v]++
			}
		}
	}
	var queue []int
	for v, d := range indeg {
		if d == 0 {
			queue = append(queue, v)
		}
	}
	removed := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for v := 0; v < in.nVars; v++ {
			if in.adj.Peek(u*in.nVars + v) {
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
	}
	if removed != in.nVars {
		return fmt.Errorf("bayes: learned graph has a cycle (%d of %d vertices topologically sorted)", removed, in.nVars)
	}
	return nil
}
