package stamp

import (
	"fmt"
	"time"

	"gstm"
	"gstm/internal/stmds"
	"gstm/internal/xrand"
)

// Yada ports STAMP's yada (Delaunay mesh refinement): threads pop the
// worst-quality element from a shared priority heap, retriangulate its
// cavity — modelled as a contiguous neighbourhood of a shared region array
// whose generation counters the transaction bumps — and push any newly
// created bad elements back onto the heap. The heap root and overlapping
// cavities are the contended state, giving the original's mix of a global
// hot spot plus spatial conflicts.
//
// Children are derived deterministically from the parent element, so the
// complete work set is a pure function of the seed and validation can
// recompute it exactly.
//
// Transaction sites:
//
//	0 — pop the worst bad element from the work heap
//	1 — retriangulate the cavity and push spawned elements
type Yada struct{}

// NewYada returns the yada workload.
func NewYada() *Yada { return &Yada{} }

// Name implements Workload.
func (*Yada) Name() string { return "yada" }

type yadaElem struct {
	ID      int64
	Quality int
	Loc     int
	Depth   int
}

type yadaInstance struct {
	threads   int
	regionLen int
	cavity    int
	maxDepth  int
	seeds     []yadaElem
	region    *gstm.Array[int32]
	work      *stmds.Heap[yadaElem]
	processed *gstm.Var[int]
}

// NewInstance implements Workload.
func (*Yada) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("yada: non-positive thread count %d", p.Threads)
	}
	var nSeeds, regionLen int
	switch p.Size {
	case Small:
		nSeeds, regionLen = 96, 512
	case Medium:
		nSeeds, regionLen = 192, 1024
	case Large:
		nSeeds, regionLen = 512, 4096
	default:
		return nil, fmt.Errorf("yada: unknown size %v", p.Size)
	}
	const maxDepth = 3
	rng := xrand.New(p.Seed + 707)
	inst := &yadaInstance{
		threads:   p.Threads,
		regionLen: regionLen,
		cavity:    5,
		maxDepth:  maxDepth,
		region:    gstm.NewArray[int32](regionLen),
		work:      stmds.NewHeap[yadaElem](1<<14, func(a, b yadaElem) bool { return a.Quality < b.Quality }),
		processed: gstm.NewVar(0),
	}
	inst.seeds = make([]yadaElem, nSeeds)
	for i := range inst.seeds {
		inst.seeds[i] = yadaElem{
			ID:      int64(i + 1),
			Quality: rng.Intn(1000),
			Loc:     rng.Intn(regionLen),
			Depth:   0,
		}
	}
	setup := gstm.NewSystem(gstm.Config{Threads: 1})
	for _, e := range inst.seeds {
		elem := e
		if err := setup.Run(nil, 0, 0, func(tx *gstm.Tx) error {
			return inst.work.Push(tx, elem)
		}); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// children derives the elements spawned by processing e: 0–2 children with
// locations and qualities hashed from the parent, stopping at maxDepth.
func (in *yadaInstance) children(e yadaElem) []yadaElem {
	if e.Depth >= in.maxDepth {
		return nil
	}
	h := uint64(e.ID) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	n := int(h % 3) // 0, 1 or 2 children
	kids := make([]yadaElem, 0, n)
	for c := 0; c < n; c++ {
		hh := h ^ uint64(c+1)*0xbf58476d1ce4e5b9
		hh ^= hh >> 31
		kids = append(kids, yadaElem{
			ID:      e.ID*4 + int64(c) + 1,
			Quality: int(hh % 1000),
			Loc:     int(hh>>10) % in.regionLen,
			Depth:   e.Depth + 1,
		})
	}
	return kids
}

// Run implements Instance.
func (in *yadaInstance) Run(sys *gstm.System) ([]time.Duration, error) {
	return RunThreads(in.threads, func(t int) error {
		id := gstm.ThreadID(t)
		for {
			var elem yadaElem
			var got bool
			if err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
				elem, got = in.work.Pop(tx)
				return nil
			}); err != nil {
				return err
			}
			if !got {
				// The heap can be momentarily empty while another thread is
				// mid-retriangulation and about to push children. A few
				// idle re-checks settle it: once every thread sees an empty
				// heap after all pushes, the counter-validated work set is
				// complete. Check the processed counter for quiescence.
				done := false
				if err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
					done = in.work.Len(tx) == 0
					return nil
				}); err != nil {
					return err
				}
				if done && in.quiesced(sys, id) {
					return nil
				}
				continue
			}
			kids := in.children(elem)
			if err := sys.Run(nil, id, 1, func(tx *gstm.Tx) error {
				for off := 0; off < in.cavity; off++ {
					cell := (elem.Loc + off) % in.regionLen
					gstm.WriteAt(tx, in.region, cell, gstm.ReadAt(tx, in.region, cell)+1)
				}
				for _, kid := range kids {
					if err := in.work.Push(tx, kid); err != nil {
						return err
					}
				}
				gstm.Write(tx, in.processed, gstm.Read(tx, in.processed)+1)
				return nil
			}); err != nil {
				return err
			}
		}
	})
}

// quiesced reports whether all spawned work has been processed: the heap is
// empty and the processed counter is stable across two reads with a yield
// between them. Combined with the deterministic child derivation this is
// sufficient: an in-flight retriangulation would bump the counter.
func (in *yadaInstance) quiesced(sys *gstm.System, id gstm.ThreadID) bool {
	read := func() (n int, empty bool) {
		_ = sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
			n = gstm.Read(tx, in.processed)
			empty = in.work.Len(tx) == 0
			return nil
		})
		return n, empty
	}
	n1, e1 := read()
	for i := 0; i < 4; i++ {
		// Give any mid-flight producer a chance to publish.
		time.Sleep(50 * time.Microsecond)
	}
	n2, e2 := read()
	return e1 && e2 && n1 == n2
}

// expectedWork recomputes the full deterministic work set.
func (in *yadaInstance) expectedWork() (count int, cavityHits map[int]int32) {
	cavityHits = make(map[int]int32)
	stack := append([]yadaElem(nil), in.seeds...)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for off := 0; off < in.cavity; off++ {
			cavityHits[(e.Loc+off)%in.regionLen]++
		}
		stack = append(stack, in.children(e)...)
	}
	return count, cavityHits
}

// Validate implements Instance.
func (in *yadaInstance) Validate(sys *gstm.System) error {
	wantCount, wantHits := in.expectedWork()
	if got := in.processed.Peek(); got != wantCount {
		return fmt.Errorf("yada: processed %d elements, want %d", got, wantCount)
	}
	for cell := 0; cell < in.regionLen; cell++ {
		if got := in.region.Peek(cell); got != wantHits[cell] {
			return fmt.Errorf("yada: region[%d] = %d, want %d", cell, got, wantHits[cell])
		}
	}
	return nil
}
