package stamp

import (
	"strings"
	"testing"

	"gstm"
)

func TestLabyrinthAdjacent(t *testing.T) {
	const w = 8
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 1, true},
		{0, 8, true},
		{9, 8, true},
		{9, 17, true},
		{0, 9, false},  // diagonal
		{7, 8, false},  // row wrap: (7,0) and (0,1) are not neighbours
		{0, 0, false},  // same cell
		{0, 16, false}, // two rows apart
	}
	for _, c := range cases {
		if got := adjacent(w, c.a, c.b); got != c.want {
			t.Errorf("adjacent(%d, %d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLabyrinthBFSFindsShortestPath(t *testing.T) {
	w := NewLabyrinth()
	inst, err := w.NewInstance(Params{Threads: 1, Size: Small, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lab := inst.(*labyrinthInstance)
	// On an empty grid the path length equals the Manhattan distance + 1.
	src := 0
	dst := 5*lab.w + 7 // (7, 5)
	path := lab.snapshotBFS(src, dst)
	if path == nil {
		t.Fatal("no path on empty grid")
	}
	if want := 5 + 7 + 1; len(path) != want {
		t.Fatalf("path length %d, want %d (shortest)", len(path), want)
	}
	// Path endpoints: BFS builds the path from dst back to src.
	if path[0] != dst || path[len(path)-1] != src {
		t.Fatalf("endpoints %d..%d, want %d..%d", path[0], path[len(path)-1], dst, src)
	}
	// Occupied destination: no path.
	lab.grid.Reset(dst, 99)
	if lab.snapshotBFS(src, dst) != nil {
		t.Fatal("path found to occupied destination")
	}
	// Walled-off destination: no path.
	lab.grid.Reset(dst, 0)
	for _, n := range []int{dst - 1, dst + 1, dst - lab.w, dst + lab.w} {
		lab.grid.Reset(n, 88)
	}
	if lab.snapshotBFS(src, dst) != nil {
		t.Fatal("path found through walls")
	}
}

func TestIntruderAttackStraddlesFragments(t *testing.T) {
	// The attack signature is injected before fragmentation, so it can
	// straddle fragment boundaries; detection must still find every
	// attack. Run several seeds to exercise different injection points.
	for seed := uint64(0); seed < 4; seed++ {
		w := NewIntruder()
		inst, err := w.NewInstance(Params{Threads: 2, Size: Small, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sys := gstm.NewSystem(gstm.Config{Threads: 2, Interleave: 6})
		if _, err := inst.Run(sys); err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(sys); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestIntruderGroundTruthHasAttacks(t *testing.T) {
	w := NewIntruder()
	inst, err := w.NewInstance(Params{Threads: 2, Size: Medium, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := inst.(*intruderInstance)
	if len(in.wantBad) == 0 {
		t.Fatal("no attack flows generated; detection path untested")
	}
	if len(in.wantBad) >= in.nFlows {
		t.Fatal("every flow is an attack; detection path trivial")
	}
}

func TestYadaChildrenDeterministic(t *testing.T) {
	w := NewYada()
	a, err := w.NewInstance(Params{Threads: 2, Size: Small, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.NewInstance(Params{Threads: 2, Size: Small, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ya, yb := a.(*yadaInstance), b.(*yadaInstance)
	ca, _ := ya.expectedWork()
	cb, _ := yb.expectedWork()
	if ca != cb {
		t.Fatalf("expected work differs across instances: %d vs %d", ca, cb)
	}
	if ca <= len(ya.seeds) {
		t.Fatalf("no children ever spawned: work %d, seeds %d", ca, len(ya.seeds))
	}
	// Depth cap: no element may exceed maxDepth.
	for _, s := range ya.seeds {
		stack := []yadaElem{s}
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if e.Depth > ya.maxDepth {
				t.Fatalf("element %d at depth %d > %d", e.ID, e.Depth, ya.maxDepth)
			}
			stack = append(stack, ya.children(e)...)
		}
	}
}

func TestVacationGuidedKeepsInvariants(t *testing.T) {
	w := NewVacation()
	const threads = 4
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 6})
	var traces []*gstm.Trace
	for i := 0; i < 2; i++ {
		inst, err := w.NewInstance(Params{Threads: threads, Size: Small, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		sys.StartProfiling()
		if _, err := inst.Run(sys); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, sys.StopProfiling())
		if err := inst.Validate(sys); err != nil {
			t.Fatal(err)
		}
	}
	m := gstm.BuildModel(threads, traces)
	sys.ForceGuidance(m, gstm.WithTfactor(2))
	inst, err := w.NewInstance(Params{Threads: threads, Size: Small, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(sys); err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(sys); err != nil {
		t.Fatalf("guided vacation broke booking invariants: %v", err)
	}
}

func TestGenomeUniqueSegmentsBounded(t *testing.T) {
	w := NewGenome()
	inst, err := w.NewInstance(Params{Threads: 2, Size: Small, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := inst.(*genomeInstance)
	if len(g.uniqueWant) == 0 {
		t.Fatal("no unique segments")
	}
	if len(g.uniqueWant) > g.geneLen {
		t.Fatalf("more unique segments (%d) than gene positions (%d)", len(g.uniqueWant), g.geneLen)
	}
	for s := range g.uniqueWant {
		if s < 0 || s >= int64(g.geneLen-g.segLen)+1 {
			t.Fatalf("segment start %d out of range", s)
		}
	}
}

func TestKMeansNearestIsArgmin(t *testing.T) {
	w := NewKMeans()
	inst, err := w.NewInstance(Params{Threads: 1, Size: Small, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	km := inst.(*kmeansInstance)
	for i := 0; i < 50; i++ {
		pt := km.points[i]
		got := km.nearest(pt)
		for c := 0; c < km.k; c++ {
			if sqDist(pt, km.centers[c]) < sqDist(pt, km.centers[got]) {
				t.Fatalf("nearest(%v) = %d but %d is closer", pt, got, c)
			}
		}
	}
}

func TestSSCA2NoSelfLoops(t *testing.T) {
	w := NewSSCA2()
	inst, err := w.NewInstance(Params{Threads: 1, Size: Small, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	g := inst.(*ssca2Instance)
	for i, e := range g.edges {
		if e.u == e.v {
			t.Fatalf("edge %d is a self-loop (%d)", i, e.u)
		}
		if e.weight <= 0 {
			t.Fatalf("edge %d has weight %d", i, e.weight)
		}
	}
}

func TestWorkloadDocNamesMatchTable(t *testing.T) {
	// The benchmarks must render in the paper's table order via All().
	var names []string
	for _, w := range All() {
		names = append(names, w.Name())
	}
	if got := strings.Join(names, ","); got != "genome,intruder,kmeans,labyrinth,ssca2,vacation,yada" {
		t.Fatalf("All() order = %s", got)
	}
}

func TestBayesRunsAndLearnsAcyclicGraph(t *testing.T) {
	w := NewBayes()
	sys := gstm.NewSystem(gstm.Config{Threads: 4, Interleave: 6})
	inst, err := w.NewInstance(Params{Threads: 4, Size: Small, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(sys); err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(sys); err != nil {
		t.Fatal(err)
	}
	b := inst.(*bayesInstance)
	if b.inserted.Peek() == 0 {
		t.Fatal("no edges learned; scoring path untested")
	}
	_, aborts := sys.Stats()
	if aborts == 0 {
		t.Error("bayes produced no conflicts; its long transactions should contend")
	}
}

func TestBayesExcludedFromAllButAvailable(t *testing.T) {
	for _, w := range All() {
		if w.Name() == "bayes" {
			t.Fatal("bayes must not be in All() (the paper excludes it)")
		}
	}
	found := false
	for _, w := range AllWithBayes() {
		if w.Name() == "bayes" {
			found = true
		}
	}
	if !found {
		t.Fatal("AllWithBayes must include bayes")
	}
	if _, err := ByName("bayes"); err == nil {
		t.Fatal("ByName must reject bayes to keep the harness faithful")
	}
}

func TestBayesGuidedStaysValid(t *testing.T) {
	w := NewBayes()
	const threads = 4
	sys := gstm.NewSystem(gstm.Config{Threads: threads, Interleave: 6})
	var traces []*gstm.Trace
	for i := 0; i < 2; i++ {
		inst, err := w.NewInstance(Params{Threads: threads, Size: Small, Seed: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		sys.StartProfiling()
		if _, err := inst.Run(sys); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, sys.StopProfiling())
		if err := inst.Validate(sys); err != nil {
			t.Fatal(err)
		}
	}
	sys.ForceGuidance(gstm.BuildModel(threads, traces), gstm.WithTfactor(2))
	inst, err := w.NewInstance(Params{Threads: threads, Size: Small, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(sys); err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(sys); err != nil {
		t.Fatalf("guided bayes invalid: %v", err)
	}
}
