package stamp

import (
	"fmt"
	"strings"
	"time"

	"gstm"
	"gstm/internal/stmds"
	"gstm/internal/xrand"
)

// Intruder ports STAMP's intruder: network intrusion detection in three
// stages — capture (pull a packet fragment from a shared queue), reassembly
// (collect a flow's fragments in a shared dictionary), and detection
// (scan the reassembled payload; findings go to a shared result list).
// The capture queue head and the per-flow dictionary entries are the
// contended state.
//
// Transaction sites:
//
//	0 — capture: dequeue one fragment
//	1 — reassembly: add the fragment to its flow, extracting the flow when
//	    complete
//	2 — report: append a detected attack to the result list
type Intruder struct{}

// NewIntruder returns the intruder workload.
func NewIntruder() *Intruder { return &Intruder{} }

// Name implements Workload.
func (*Intruder) Name() string { return "intruder" }

const intruderAttack = "ATTACK"

type intruderFragment struct {
	Flow  int64
	Index int
	Count int
	Data  string
}

type intruderFlowState struct {
	Received int
	Parts    []string // immutable snapshot; copy-on-write
}

type intruderInstance struct {
	threads   int
	nFlows    int
	packets   *stmds.Queue[intruderFragment]
	assembly  *stmds.Map[intruderFlowState]
	attacks   *stmds.List[struct{}]
	processed *gstm.Var[int]
	wantBad   map[int64]bool
}

// NewInstance implements Workload.
func (*Intruder) NewInstance(p Params) (Instance, error) {
	if p.Threads <= 0 {
		return nil, fmt.Errorf("intruder: non-positive thread count %d", p.Threads)
	}
	var nFlows, fragsPerFlow int
	switch p.Size {
	case Small:
		nFlows, fragsPerFlow = 128, 6
	case Medium:
		nFlows, fragsPerFlow = 256, 8
	case Large:
		nFlows, fragsPerFlow = 768, 10
	default:
		return nil, fmt.Errorf("intruder: unknown size %v", p.Size)
	}
	rng := xrand.New(p.Seed + 404)
	inst := &intruderInstance{
		threads:   p.Threads,
		nFlows:    nFlows,
		packets:   stmds.NewQueue[intruderFragment](),
		assembly:  stmds.NewMap[intruderFlowState](),
		attacks:   stmds.NewList[struct{}](),
		processed: gstm.NewVar(0),
		wantBad:   make(map[int64]bool),
	}
	// Build flows: ~25% contain the attack signature, split into fragments,
	// then globally shuffle all fragments into the capture queue.
	var frags []intruderFragment
	letters := "abcdefgh"
	for f := 0; f < nFlows; f++ {
		var payload strings.Builder
		for i := 0; i < fragsPerFlow*4; i++ {
			payload.WriteByte(letters[rng.Intn(len(letters))])
		}
		s := payload.String()
		if rng.Intn(4) == 0 {
			pos := rng.Intn(len(s) - len(intruderAttack))
			s = s[:pos] + intruderAttack + s[pos+len(intruderAttack):]
			inst.wantBad[int64(f)] = true
		}
		per := len(s) / fragsPerFlow
		for i := 0; i < fragsPerFlow; i++ {
			end := (i + 1) * per
			if i == fragsPerFlow-1 {
				end = len(s)
			}
			frags = append(frags, intruderFragment{
				Flow: int64(f), Index: i, Count: fragsPerFlow, Data: s[i*per : end],
			})
		}
	}
	order := rng.Perm(len(frags))
	setup := gstm.NewSystem(gstm.Config{Threads: 1})
	for _, i := range order {
		frag := frags[i]
		if err := setup.Run(nil, 0, 0, func(tx *gstm.Tx) error {
			inst.packets.Enqueue(tx, frag)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// Run implements Instance.
func (in *intruderInstance) Run(sys *gstm.System) ([]time.Duration, error) {
	return RunThreads(in.threads, func(t int) error {
		id := gstm.ThreadID(t)
		for {
			// Capture.
			var frag intruderFragment
			var got bool
			if err := sys.Run(nil, id, 0, func(tx *gstm.Tx) error {
				frag, got = in.packets.Dequeue(tx)
				return nil
			}); err != nil {
				return err
			}
			if !got {
				return nil
			}
			// Reassembly: add the fragment; extract the payload when the
			// flow completes.
			var payload string
			var complete bool
			if err := sys.Run(nil, id, 1, func(tx *gstm.Tx) error {
				payload, complete = "", false
				st, ok := in.assembly.Get(tx, frag.Flow)
				if !ok {
					st = intruderFlowState{Parts: make([]string, frag.Count)}
				}
				parts := make([]string, len(st.Parts))
				copy(parts, st.Parts)
				parts[frag.Index] = frag.Data
				st = intruderFlowState{Received: st.Received + 1, Parts: parts}
				if st.Received == frag.Count {
					in.assembly.Remove(tx, frag.Flow)
					payload = strings.Join(parts, "")
					complete = true
					gstm.Write(tx, in.processed, gstm.Read(tx, in.processed)+1)
				} else {
					in.assembly.Upsert(tx, frag.Flow, st)
				}
				return nil
			}); err != nil {
				return err
			}
			// Detection (pure computation) + report.
			if complete && strings.Contains(payload, intruderAttack) {
				if err := sys.Run(nil, id, 2, func(tx *gstm.Tx) error {
					in.attacks.Insert(tx, frag.Flow, struct{}{})
					return nil
				}); err != nil {
					return err
				}
			}
		}
	})
}

// Validate implements Instance.
func (in *intruderInstance) Validate(sys *gstm.System) error {
	if got := in.processed.Peek(); got != in.nFlows {
		return fmt.Errorf("intruder: %d flows completed, want %d", got, in.nFlows)
	}
	detected := make(map[int64]bool)
	var verr error
	err := sys.Run(nil, 0, 0, func(tx *gstm.Tx) error {
		if n := in.assembly.Len(tx); n != 0 {
			verr = fmt.Errorf("intruder: %d flows left unassembled", n)
			return nil
		}
		in.attacks.Range(tx, func(k int64, _ struct{}) bool {
			detected[k] = true
			return true
		})
		return nil
	})
	if err != nil {
		return err
	}
	if verr != nil {
		return verr
	}
	if len(detected) != len(in.wantBad) {
		return fmt.Errorf("intruder: detected %d attacks, want %d", len(detected), len(in.wantBad))
	}
	for f := range in.wantBad {
		if !detected[f] {
			return fmt.Errorf("intruder: attack flow %d not detected", f)
		}
	}
	return nil
}
