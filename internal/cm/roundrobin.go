package cm

import (
	"runtime"
	"sync/atomic"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// RoundRobin is a DeSTM-inspired deterministic scheduler (Ravichandran et
// al., PACT'14 — discussed in the paper's Related Work): threads may only
// start a transaction when they hold the rotation token, and the token
// advances on commit, so the commit order is (nearly) a fixed round-robin.
// It is the opposite extreme from guided execution — non-determinism is
// driven to its floor by serializing the commit order outright, at a
// correspondingly extreme cost in parallelism.
//
// Full determinism would deadlock when a thread finishes its work and
// stops transacting, so a waiter steals the token after MaxYields
// scheduler yields; steals are counted so experiments can report how
// deterministic a run actually was.
type RoundRobin struct {
	threads   int
	MaxYields int

	turn   atomic.Uint64
	steals atomic.Uint64
}

// NewRoundRobin returns a scheduler rotating over the given thread count
// (maxYields <= 0 selects 512).
func NewRoundRobin(threads, maxYields int) *RoundRobin {
	if threads < 1 {
		threads = 1
	}
	if maxYields <= 0 {
		maxYields = 512
	}
	return &RoundRobin{threads: threads, MaxYields: maxYields}
}

// Steals reports how many times a waiter had to steal the token from an
// idle thread (0 means the run was fully round-robin deterministic).
func (rr *RoundRobin) Steals() uint64 { return rr.steals.Load() }

// Arrive implements tl2.Gate: wait for the token. Returns GatePass when the
// token was already held, GateHold after waiting for it, and GateEscape when
// the wait bound expired and the token was stolen.
func (rr *RoundRobin) Arrive(pair txid.Pair) telemetry.GateOutcome {
	want := int(pair.Thread) % rr.threads
	cur := rr.turn.Load()
	for i := 0; i < rr.MaxYields; i++ {
		if int(cur%uint64(rr.threads)) == want {
			if i == 0 {
				return telemetry.GatePass
			}
			return telemetry.GateHold
		}
		runtime.Gosched()
		cur = rr.turn.Load()
	}
	// The token holder has gone quiet: steal by advancing the rotation to
	// this thread. CAS keeps concurrent stealers consistent.
	for {
		cur = rr.turn.Load()
		if int(cur%uint64(rr.threads)) == want {
			return telemetry.GateHold
		}
		next := cur + uint64((want-int(cur%uint64(rr.threads)))+rr.threads)%uint64(rr.threads)
		if rr.turn.CompareAndSwap(cur, next) {
			rr.steals.Add(1)
			return telemetry.GateEscape
		}
	}
}

// TxCommit implements tl2.EventSink: pass the token to the next thread.
func (rr *RoundRobin) TxCommit(pair txid.Pair, wv uint64, aborts int) {
	rr.turn.Add(1)
}

// TxAbort implements tl2.EventSink: aborts do not advance the rotation —
// the thread retries while it still holds the token.
func (rr *RoundRobin) TxAbort(pair txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
}
