// Package cm implements contention-manager scheduling policies in the
// style of Polite (Herlihy et al., PODC'03), Karma (Scherer & Scott,
// PODC'05) and Greedy (Guerraoui et al., PODC'05) — the alternatives the
// paper's Related Work discusses and argues against: "CMs clearly
// compromise one thread over another which only leads to higher variance."
//
// The original managers choose a victim at conflict time. A commit-time
// locking STM like TL2 has no victim choice — the committer always wins —
// so each policy is realized here the way the paper realizes guidance: as
// a transaction-start gate (tl2.Gate) plus an event observer
// (tl2.EventSink), shaping who gets to *enter* the conflict race rather
// than who wins it. The ablation benchmarks in bench_test.go compare the
// per-thread execution-time variance of these policies against guided
// execution, putting the paper's claim to the test.
package cm

import (
	"runtime"
	"sync/atomic"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// Sink mirrors tl2.EventSink for the policies that learn from the event
// stream.
type Sink interface {
	TxCommit(p txid.Pair, wv uint64, aborts int)
	TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool)
}

// maxThreads bounds the per-thread state arrays. ThreadIDs at or above the
// bound share the last slot (degraded but safe).
const maxThreads = 256

func slot(t txid.ThreadID) int {
	if int(t) >= maxThreads {
		return maxThreads - 1
	}
	return int(t)
}

// Polite backs a thread off exponentially after each consecutive abort
// before letting it re-enter the transactional race, and forgets on
// commit.
type Polite struct {
	// MaxExponent caps the backoff at 2^MaxExponent scheduler yields.
	MaxExponent int

	streak [maxThreads]atomic.Int32
}

// NewPolite returns a Polite manager with the given backoff cap
// (values <= 0 mean the default of 6, i.e. at most 64 yields).
func NewPolite(maxExponent int) *Polite {
	if maxExponent <= 0 {
		maxExponent = 6
	}
	return &Polite{MaxExponent: maxExponent}
}

// Arrive implements tl2.Gate: exponential yield backoff in the current
// abort streak.
func (p *Polite) Arrive(pair txid.Pair) telemetry.GateOutcome {
	n := int(p.streak[slot(pair.Thread)].Load())
	if n == 0 {
		return telemetry.GatePass
	}
	if n > p.MaxExponent {
		n = p.MaxExponent
	}
	for i := 0; i < 1<<n; i++ {
		runtime.Gosched()
	}
	return telemetry.GateHold
}

// TxCommit implements tl2.EventSink: a commit clears the thread's streak.
func (p *Polite) TxCommit(pair txid.Pair, wv uint64, aborts int) {
	p.streak[slot(pair.Thread)].Store(0)
}

// TxAbort implements tl2.EventSink: an abort lengthens the streak.
func (p *Polite) TxAbort(pair txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	p.streak[slot(pair.Thread)].Add(1)
}

// Karma prioritizes threads that have invested more transactional work:
// karma grows with every committed transaction's footprint (approximated
// by its retry count plus one) and with each abort (the invested work was
// lost but the priority is retained, as in the original). At arrival a
// thread yields while its karma is far below the current maximum.
type Karma struct {
	// Threshold is how far below the maximum karma a thread may be before
	// it is made to yield; larger values gate less.
	Threshold int64
	// MaxYields bounds the yielding (progress guarantee).
	MaxYields int

	karma [maxThreads]atomic.Int64
}

// NewKarma returns a Karma manager. Zero arguments select the defaults
// (threshold 16, at most 32 yields).
func NewKarma(threshold int64, maxYields int) *Karma {
	if threshold <= 0 {
		threshold = 16
	}
	if maxYields <= 0 {
		maxYields = 32
	}
	return &Karma{Threshold: threshold, MaxYields: maxYields}
}

func (k *Karma) maxKarma() int64 {
	var max int64
	for i := 0; i < maxThreads; i++ {
		if v := k.karma[i].Load(); v > max {
			max = v
		}
	}
	return max
}

// Arrive implements tl2.Gate.
func (k *Karma) Arrive(pair txid.Pair) telemetry.GateOutcome {
	mine := k.karma[slot(pair.Thread)].Load()
	for i := 0; i < k.MaxYields; i++ {
		if k.maxKarma()-mine <= k.Threshold {
			if i == 0 {
				return telemetry.GatePass
			}
			return telemetry.GateHold
		}
		runtime.Gosched()
		mine = k.karma[slot(pair.Thread)].Load()
	}
	return telemetry.GateEscape
}

// TxCommit implements tl2.EventSink: karma decays on commit (the priority
// was spent) but the completed footprint still counts a little, matching
// Karma's reset-to-zero with the footprint re-accumulating next time.
func (k *Karma) TxCommit(pair txid.Pair, wv uint64, aborts int) {
	k.karma[slot(pair.Thread)].Store(0)
}

// TxAbort implements tl2.EventSink: lost work raises priority.
func (k *Karma) TxAbort(pair txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	k.karma[slot(pair.Thread)].Add(1)
}

// Greedy favours the transaction with the earliest start time: a thread
// whose current transaction started recently yields while any much older
// transaction is still active.
type Greedy struct {
	// MaxYields bounds the deference (progress guarantee).
	MaxYields int

	clock atomic.Uint64
	start [maxThreads]atomic.Uint64 // logical start time; 0 = inactive
}

// NewGreedy returns a Greedy manager (maxYields <= 0 selects 32).
func NewGreedy(maxYields int) *Greedy {
	if maxYields <= 0 {
		maxYields = 32
	}
	return &Greedy{MaxYields: maxYields}
}

// Arrive implements tl2.Gate: stamp the transaction's start (kept across
// retries — retries keep their seniority, as in Greedy) and defer to
// older active transactions.
func (g *Greedy) Arrive(pair txid.Pair) telemetry.GateOutcome {
	s := slot(pair.Thread)
	mine := g.start[s].Load()
	if mine == 0 {
		mine = g.clock.Add(1)
		g.start[s].Store(mine)
	}
	for i := 0; i < g.MaxYields; i++ {
		if !g.olderActive(mine, s) {
			if i == 0 {
				return telemetry.GatePass
			}
			return telemetry.GateHold
		}
		runtime.Gosched()
	}
	return telemetry.GateEscape
}

func (g *Greedy) olderActive(mine uint64, self int) bool {
	for i := 0; i < maxThreads; i++ {
		if i == self {
			continue
		}
		if v := g.start[i].Load(); v != 0 && v < mine {
			return true
		}
	}
	return false
}

// TxCommit implements tl2.EventSink: the transaction is done, its
// seniority is released.
func (g *Greedy) TxCommit(pair txid.Pair, wv uint64, aborts int) {
	g.start[slot(pair.Thread)].Store(0)
}

// TxAbort implements tl2.EventSink: seniority is retained across retries.
func (g *Greedy) TxAbort(pair txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {}
