package cm

import (
	"sync"
	"testing"

	"gstm/internal/tl2"
	"gstm/internal/txid"
)

func pair(txn, thread int) txid.Pair {
	return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}
}

// runCounter drives a contended counter through rt and returns the final
// value.
func runCounter(t *testing.T, rt *tl2.Runtime, workers, per int) int {
	t.Helper()
	v := tl2.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := rt.Atomic(id, 0, func(tx *tl2.Tx) error {
					tl2.Write(tx, v, tl2.Read(tx, v)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	return v.Peek()
}

// install wires a manager as both gate and sink of a fresh runtime.
type manager interface {
	tl2.Gate
	Sink
}

func newManagedRuntime(m manager) *tl2.Runtime {
	rt := tl2.New(tl2.Config{Interleave: 4})
	rt.SetGate(m)
	rt.SetSink(m)
	return rt
}

func TestPoliteCorrectUnderContention(t *testing.T) {
	rt := newManagedRuntime(NewPolite(0))
	if got := runCounter(t, rt, 6, 150); got != 900 {
		t.Fatalf("counter = %d, want 900", got)
	}
}

func TestKarmaCorrectUnderContention(t *testing.T) {
	rt := newManagedRuntime(NewKarma(0, 0))
	if got := runCounter(t, rt, 6, 150); got != 900 {
		t.Fatalf("counter = %d, want 900", got)
	}
}

func TestGreedyCorrectUnderContention(t *testing.T) {
	rt := newManagedRuntime(NewGreedy(0))
	if got := runCounter(t, rt, 6, 150); got != 900 {
		t.Fatalf("counter = %d, want 900", got)
	}
}

func TestRoundRobinCorrectAndNearDeterministic(t *testing.T) {
	// A deep yield budget before stealing: on a loaded machine the token
	// holder can be descheduled past the default 512 yields mid-run, and
	// the steal hatch firing then is liveness working as designed, not a
	// rotation bug. With the deeper budget only genuine stalls steal.
	rr := NewRoundRobin(4, 8192)
	rt := newManagedRuntime(rr)
	if got := runCounter(t, rt, 4, 100); got != 400 {
		t.Fatalf("counter = %d, want 400", got)
	}
	// All four threads run the same number of transactions, so steals
	// should be confined to the tail (threads finishing) plus whatever
	// stalls the machine itself injects: require the rotation to hold for
	// at least 90% of the 400 commits.
	if rr.Steals() > 40 {
		t.Fatalf("steals = %d; rotation should be followed almost always", rr.Steals())
	}
}

func TestPoliteStreakTracking(t *testing.T) {
	p := NewPolite(3)
	pr := pair(0, 1)
	p.TxAbort(pr, 1, pair(0, 0), true)
	p.TxAbort(pr, 2, pair(0, 0), true)
	if got := p.streak[1].Load(); got != 2 {
		t.Fatalf("streak = %d, want 2", got)
	}
	p.TxCommit(pr, 3, 2)
	if got := p.streak[1].Load(); got != 0 {
		t.Fatalf("streak after commit = %d, want 0", got)
	}
	// Arrive with zero streak must return immediately (no panic, no wait).
	p.Arrive(pr)
}

func TestKarmaAccumulatesAndResets(t *testing.T) {
	k := NewKarma(4, 8)
	pr := pair(0, 2)
	for i := 0; i < 10; i++ {
		k.TxAbort(pr, 1, pair(0, 0), true)
	}
	if got := k.karma[2].Load(); got != 10 {
		t.Fatalf("karma = %d", got)
	}
	k.TxCommit(pr, 2, 10)
	if got := k.karma[2].Load(); got != 0 {
		t.Fatalf("karma after commit = %d", got)
	}
}

func TestKarmaGatesLowPriorityThread(t *testing.T) {
	k := NewKarma(2, 4)
	rich := pair(0, 0)
	for i := 0; i < 50; i++ {
		k.TxAbort(rich, 1, pair(0, 1), true)
	}
	// The poor thread must yield its bounded amount, then proceed (the
	// call returning at all is the progress guarantee).
	k.Arrive(pair(0, 1))
	// The rich thread proceeds immediately.
	k.Arrive(rich)
}

func TestGreedySeniorityHeldAcrossRetries(t *testing.T) {
	g := NewGreedy(4)
	old := pair(0, 0)
	young := pair(0, 1)
	g.Arrive(old) // stamps seniority 1
	g.Arrive(young)
	if g.start[0].Load() == 0 || g.start[1].Load() == 0 {
		t.Fatal("start stamps missing")
	}
	if g.start[0].Load() >= g.start[1].Load() {
		t.Fatal("older transaction must have the smaller stamp")
	}
	// An abort keeps the stamp; a commit clears it.
	g.TxAbort(old, 1, young, true)
	if g.start[0].Load() == 0 {
		t.Fatal("abort cleared seniority")
	}
	g.TxCommit(old, 2, 1)
	if g.start[0].Load() != 0 {
		t.Fatal("commit did not clear seniority")
	}
}

func TestThreadSlotClamping(t *testing.T) {
	// ThreadIDs beyond the state arrays must not panic.
	p := NewPolite(2)
	big := txid.Pair{Txn: 0, Thread: 9999}
	p.TxAbort(big, 1, pair(0, 0), true)
	p.Arrive(big)
	p.TxCommit(big, 2, 1)

	k := NewKarma(0, 2)
	k.TxAbort(big, 1, pair(0, 0), true)
	k.Arrive(big)

	g := NewGreedy(2)
	g.Arrive(big)
	g.TxCommit(big, 1, 0)
}
