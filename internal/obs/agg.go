package obs

import (
	"math/bits"
	"sync/atomic"
)

// Per-shard, per-phase latency aggregation. Every finished span feeds it —
// sampling only affects which whole spans are *retained*, never the
// aggregate — so the loadgen tail-attribution table is exact regardless of
// ring sizes. The bucket layout is identical to internal/telemetry's
// histograms (subCount sub-buckets per octave, ≤25% relative width, last
// bucket open at ~60s) so the two surfaces report comparable quantiles.
const (
	aggSubBits  = 2
	aggSubCount = 1 << aggSubBits
	aggBuckets  = 140
)

// aggBucketOf maps a nanosecond value to its bucket index (see
// telemetry.bucketOf — the layouts must stay in lockstep).
func aggBucketOf(v uint64) int {
	if v < aggSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - aggSubBits - 1
	idx := exp*aggSubCount + int(v>>uint(exp))
	if idx >= aggBuckets {
		return aggBuckets - 1
	}
	return idx
}

// aggBucketLow returns bucket i's inclusive lower bound (ns).
func aggBucketLow(i int) uint64 {
	if i < aggSubCount {
		return uint64(i)
	}
	exp := i/aggSubCount - 1
	mant := uint64(aggSubCount + i%aggSubCount)
	return mant << uint(exp)
}

// aggBucketHigh returns bucket i's exclusive upper bound (ns).
func aggBucketHigh(i int) uint64 {
	if i >= aggBuckets-1 {
		return 2 * aggBucketLow(aggBuckets-1)
	}
	return aggBucketLow(i + 1)
}

// phaseHist is one (shard, phase) latency distribution. Writers are the
// worker/acker goroutines; contention is negligible next to the request
// work, so it is unsharded.
type phaseHist struct {
	counts [aggBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

func (h *phaseHist) observe(ns uint64) {
	h.counts[aggBucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// shardAgg is one shard's per-phase histograms plus the whole-span total.
type shardAgg struct {
	phases [NumPhases]phaseHist
	total  phaseHist
}

// observeSpan folds one finished span into the aggregation: each phase's
// summed duration (a span may hold many retry events) and the span total.
// Phases with zero time are not recorded, so a phase's count reflects the
// spans that actually spent time there.
func (a *shardAgg) observeSpan(sp *Span) {
	tot := sp.PhaseTotals()
	for ph, ns := range tot {
		if ns > 0 {
			a.phases[ph].observe(ns)
		}
	}
	a.total.observe(uint64(sp.TotalNs))
}

// HistCounts is a raw bucket dump of one (shard, phase) distribution.
// Bucket i covers [Low(i), High(i)) per the shared layout; only non-zero
// buckets are emitted. Raw counts (not quantiles) let a scraper diff two
// snapshots and compute run-local quantiles — that is how gstm-loadgen
// builds its tail-attribution table.
type HistCounts struct {
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets,omitempty"` // pairs: bucket index, count
}

func (h *phaseHist) snapshot() HistCounts {
	var out HistCounts
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			out.Buckets = append(out.Buckets, uint64(i), n)
			out.Count += n
		}
	}
	out.SumNs = h.sum.Load()
	return out
}

// Sub subtracts an earlier snapshot of the same distribution, yielding the
// counts accumulated between the two scrapes.
func (h HistCounts) Sub(prev HistCounts) HistCounts {
	prevAt := make(map[uint64]uint64, len(prev.Buckets)/2)
	for i := 0; i+1 < len(prev.Buckets); i += 2 {
		prevAt[prev.Buckets[i]] = prev.Buckets[i+1]
	}
	var out HistCounts
	for i := 0; i+1 < len(h.Buckets); i += 2 {
		b, n := h.Buckets[i], h.Buckets[i+1]
		if n > prevAt[b] {
			d := n - prevAt[b]
			out.Buckets = append(out.Buckets, b, d)
			out.Count += d
		}
	}
	if h.SumNs > prev.SumNs {
		out.SumNs = h.SumNs - prev.SumNs
	}
	return out
}

// Quantile estimates the q-quantile (ns) as the midpoint of the bucket
// where the cumulative count crosses the target.
func (h HistCounts) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := 0; i+1 < len(h.Buckets); i += 2 {
		cum += h.Buckets[i+1]
		if cum >= target {
			b := int(h.Buckets[i])
			return (aggBucketLow(b) + aggBucketHigh(b)) / 2
		}
	}
	return 0
}

// MeanNs returns the distribution's mean (ns).
func (h HistCounts) MeanNs() uint64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumNs / h.Count
}

// ShardAggSnapshot is one shard's aggregation snapshot.
type ShardAggSnapshot struct {
	Shard  int                   `json:"shard"`
	Phases map[string]HistCounts `json:"phases"`
	Total  HistCounts            `json:"total"`
}

// AggSnapshot is the full per-shard per-phase aggregation, served by
// /debug/trace?format=agg.
type AggSnapshot struct {
	Shards []ShardAggSnapshot `json:"shards"`
}

func (a *shardAgg) snapshot(sh int) ShardAggSnapshot {
	out := ShardAggSnapshot{Shard: sh, Phases: make(map[string]HistCounts, int(NumPhases))}
	for ph := range a.phases {
		if hc := a.phases[ph].snapshot(); hc.Count > 0 {
			out.Phases[Phase(ph).String()] = hc
		}
	}
	out.Total = a.total.snapshot()
	return out
}
