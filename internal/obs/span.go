package obs

import "time"

// MaxEvents bounds a span's inline timeline. A request that retries more
// than the array holds keeps its totals exact and drops the oldest retry
// events (Truncated is set) — attribution degrades gracefully instead of
// allocating.
const MaxEvents = 32

// Event is one packed timeline entry: 12 bytes, recorded by value into the
// span's inline array.
type Event struct {
	Phase   Phase
	Cause   Cause
	Attempt uint16
	StartNs uint32 // offset from Span.Begin, ns (saturating)
	DurNs   uint32 // ns (saturating)
}

// Span is one request's (or batch sub-transaction's) recorded timeline.
// It is a plain value: workers keep per-shard scratch spans and copy them
// into retention structures wholesale, so no part of it may hold pointers.
type Span struct {
	ID        uint32 // protocol request ID of the first op in the batch
	Op        uint8  // protocol op kind
	Shard     uint8  // home shard of this sub-transaction
	Worker    uint8  // worker (STM thread) that executed it
	Forced    bool   // the client set the protocol trace-request bit
	Truncated bool   // more events occurred than MaxEvents holds
	Ops       uint16 // operations coalesced into this sub-transaction
	Attempts  uint16 // STM attempts (1 = first try committed)
	Cause     Cause  // terminal cause (CauseNone = success)
	Begin     int64  // wall clock, unix nanos
	TotalNs   uint32 // Begin → Finish, ns (saturating)

	n  uint16
	ev [MaxEvents]Event
}

// sat32 clamps a nanosecond count into a uint32 (~4.29s); spans longer
// than that saturate rather than wrap.
func sat32(v int64) uint32 {
	if v < 0 {
		return 0
	}
	if v > 0xFFFFFFFF {
		return 0xFFFFFFFF
	}
	return uint32(v)
}

// Start (re)initializes the span for a new request. The event array is not
// cleared — entries past n are unreachable through Events — so restarting a
// scratch span costs a handful of stores, not a 400-byte memclear. Nil-safe.
func (s *Span) Start(id uint32, op, shard, worker uint8, ops int, forced bool, begin int64) {
	if s == nil {
		return
	}
	s.ID = id
	s.Op = op
	s.Shard = shard
	s.Worker = worker
	s.Forced = forced
	s.Truncated = false
	s.Ops = uint16(ops)
	s.Attempts = 0
	s.Cause = CauseNone
	s.Begin = begin
	s.TotalNs = 0
	s.n = 0
}

// Add records one event with an absolute start time (unix nanos) and a
// duration. Nil-safe; never allocates. When the inline array is full, the
// oldest PhaseRetry event is evicted (retries are the only unbounded
// phase); if none exists the event is dropped and Truncated is set.
func (s *Span) Add(ph Phase, cause Cause, attempt int, startUnixNs, durNs int64) {
	if s == nil {
		return
	}
	e := Event{
		Phase:   ph,
		Cause:   cause,
		Attempt: uint16(attempt),
		StartNs: sat32(startUnixNs - s.Begin),
		DurNs:   sat32(durNs),
	}
	if int(s.n) < MaxEvents {
		s.ev[s.n] = e
		s.n++
		return
	}
	s.Truncated = true
	for i := range s.ev {
		if s.ev[i].Phase == PhaseRetry {
			copy(s.ev[i:], s.ev[i+1:])
			s.ev[MaxEvents-1] = e
			return
		}
	}
}

// AddSince records an event spanning [start, now). Nil-safe.
func (s *Span) AddSince(ph Phase, cause Cause, attempt int, start time.Time) {
	if s == nil {
		return
	}
	ns := start.UnixNano()
	s.Add(ph, cause, attempt, ns, time.Since(start).Nanoseconds())
}

// AddSinceNs records an event spanning [startUnixNs, now) — the variant for
// callers that carry a nanosecond boundary (often LastEndNs) instead of a
// time.Time, sparing one clock read. Nil-safe: a nil span reads no clock.
func (s *Span) AddSinceNs(ph Phase, cause Cause, attempt int, startUnixNs int64) {
	if s == nil {
		return
	}
	s.Add(ph, cause, attempt, startUnixNs, time.Now().UnixNano()-startUnixNs)
}

// LastEndNs returns the absolute end (unix ns) of the most recently
// recorded event, or Begin when the timeline is empty — the natural start
// boundary for the next phase without another clock read. Nil-safe.
func (s *Span) LastEndNs() int64 {
	if s == nil {
		return 0
	}
	if s.n == 0 {
		return s.Begin
	}
	e := &s.ev[s.n-1]
	return s.Begin + int64(e.StartNs) + int64(e.DurNs)
}

// NoteAttempt bumps the attempt counter. Nil-safe.
func (s *Span) NoteAttempt() {
	if s == nil {
		return
	}
	s.Attempts++
}

// Finish stamps the terminal cause and the total duration. Nil-safe.
func (s *Span) Finish(cause Cause, endUnixNs int64) {
	if s == nil {
		return
	}
	s.Cause = cause
	s.TotalNs = sat32(endUnixNs - s.Begin)
}

// Events returns the recorded timeline (aliasing the span's storage).
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	return s.ev[:s.n]
}

// Len returns how many events are recorded.
func (s *Span) Len() int {
	if s == nil {
		return 0
	}
	return int(s.n)
}

// PhaseTotals sums the recorded durations by phase.
func (s *Span) PhaseTotals() [NumPhases]uint64 {
	var tot [NumPhases]uint64
	if s == nil {
		return tot
	}
	for i := 0; i < int(s.n); i++ {
		tot[s.ev[i].Phase] += uint64(s.ev[i].DurNs)
	}
	return tot
}
