package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler serves the observatory over HTTP:
//
//	GET /debug/trace              — Snapshot JSON (slowest / forced / sampled)
//	GET /debug/trace?format=agg   — per-shard per-phase bucket counts
//	GET /debug/trace?format=chrome — Chrome trace_event JSON (load into
//	                                 chrome://tracing or Perfetto)
//
// Mount it on the telemetry HTTP server next to /metrics.
func (o *Observatory) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "", "json":
			writeJSON(w, o.Snapshot())
		case "agg":
			writeJSON(w, o.Agg())
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			writeChromeTrace(w, o.Snapshot())
		default:
			http.Error(w, "unknown format (want json, agg or chrome)", http.StatusBadRequest)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// chromeEvent is one trace_event entry ("X" complete events; microsecond
// timestamps per the format).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// writeChromeTrace renders the snapshot's spans as a Chrome trace: one
// process per shard, one thread per worker, one complete event per span
// plus one per recorded phase segment.
func writeChromeTrace(w http.ResponseWriter, snap Snapshot) {
	var evs []chromeEvent
	emit := func(sp SpanJSON) {
		args := map[string]string{"cause": sp.Cause, "op": fmt.Sprint(sp.Op)}
		evs = append(evs, chromeEvent{
			Name: fmt.Sprintf("req %d", sp.ID),
			Ph:   "X",
			Ts:   float64(sp.BeginUnix) / 1e3,
			Dur:  float64(sp.TotalNs) / 1e3,
			Pid:  sp.Shard,
			Tid:  sp.Worker,
			Args: args,
		})
		for _, e := range sp.Events {
			a := map[string]string{}
			if e.Cause != "" {
				a["cause"] = e.Cause
			}
			if e.Attempt > 0 {
				a["attempt"] = fmt.Sprint(e.Attempt)
			}
			evs = append(evs, chromeEvent{
				Name: e.Phase,
				Ph:   "X",
				Ts:   float64(sp.BeginUnix+int64(e.StartNs)) / 1e3,
				Dur:  float64(e.DurNs) / 1e3,
				Pid:  sp.Shard,
				Tid:  sp.Worker,
				Args: a,
			})
		}
	}
	for _, sp := range snap.Slowest {
		emit(sp)
	}
	for _, sp := range snap.Forced {
		emit(sp)
	}
	_ = json.NewEncoder(w).Encode(map[string]any{"traceEvents": evs})
}
