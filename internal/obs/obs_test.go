package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestCausePhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Cause(0); c < NumCauses; c++ {
		n := c.String()
		if n == "" || n == "unknown" {
			t.Fatalf("cause %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate cause name %q", n)
		}
		seen[n] = true
	}
	if Cause(250).String() != "unknown" {
		t.Fatal("out-of-range cause should be unknown")
	}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() == "" || p.String() == "unknown" {
			t.Fatalf("phase %d has no name", p)
		}
	}
	if Phase(250).String() != "unknown" {
		t.Fatal("out-of-range phase should be unknown")
	}
}

func TestSpanTimeline(t *testing.T) {
	var sp Span
	base := int64(1_000_000_000)
	sp.Start(7, 2, 1, 3, 4, true, base)
	sp.NoteAttempt()
	sp.Add(PhaseDecode, CauseNone, 0, base, 500)
	sp.Add(PhaseQueue, CauseNone, 0, base+500, 1500)
	sp.Add(PhaseRetry, CauseLockBusy, 1, base+2000, 3000)
	sp.NoteAttempt()
	sp.Add(PhaseLock, CauseNone, 2, base+5000, 100)
	sp.Finish(CauseNone, base+6000)

	if sp.ID != 7 || sp.Shard != 1 || sp.Worker != 3 || sp.Ops != 4 || !sp.Forced {
		t.Fatalf("header fields wrong: %+v", sp)
	}
	if sp.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", sp.Attempts)
	}
	if sp.TotalNs != 6000 {
		t.Fatalf("total = %d, want 6000", sp.TotalNs)
	}
	ev := sp.Events()
	if len(ev) != 4 {
		t.Fatalf("events = %d, want 4", len(ev))
	}
	if ev[2].Phase != PhaseRetry || ev[2].Cause != CauseLockBusy || ev[2].Attempt != 1 {
		t.Fatalf("retry event wrong: %+v", ev[2])
	}
	if ev[1].StartNs != 500 || ev[1].DurNs != 1500 {
		t.Fatalf("queue event offsets wrong: %+v", ev[1])
	}
	tot := sp.PhaseTotals()
	if tot[PhaseRetry] != 3000 || tot[PhaseLock] != 100 {
		t.Fatalf("phase totals wrong: %v", tot)
	}
}

func TestSpanOverflowEvictsRetries(t *testing.T) {
	var sp Span
	sp.Start(1, 1, 0, 0, 1, false, 0)
	sp.Add(PhaseDecode, CauseNone, 0, 0, 10)
	for i := 0; i < MaxEvents+8; i++ {
		sp.Add(PhaseRetry, CauseReadValidation, i+1, int64(i*100), 50)
	}
	sp.Add(PhaseLock, CauseNone, 0, 9000, 5)
	if !sp.Truncated {
		t.Fatal("overflowed span must be marked truncated")
	}
	if sp.Len() != MaxEvents {
		t.Fatalf("len = %d, want %d", sp.Len(), MaxEvents)
	}
	ev := sp.Events()
	if ev[0].Phase != PhaseDecode {
		t.Fatal("non-retry head event must survive eviction")
	}
	if ev[MaxEvents-1].Phase != PhaseLock {
		t.Fatal("newest event must be present after eviction")
	}
}

func TestNilSpanSafe(t *testing.T) {
	var sp *Span
	sp.Start(1, 1, 0, 0, 1, false, 0)
	sp.Add(PhaseRetry, CauseLockBusy, 1, 0, 1)
	sp.AddSince(PhaseGate, CauseNone, 0, time.Now())
	sp.NoteAttempt()
	sp.Finish(CauseNone, 0)
	if sp.Len() != 0 || sp.Events() != nil {
		t.Fatal("nil span must report empty")
	}
	var o *Observatory
	o.Collect(0, &Span{})
	if len(o.Snapshot().Slowest) != 0 || len(o.Agg().Shards) != 0 {
		t.Fatal("nil observatory must report empty")
	}
}

func TestSat32(t *testing.T) {
	if sat32(-5) != 0 {
		t.Fatal("negative must clamp to 0")
	}
	if sat32(1<<40) != 0xFFFFFFFF {
		t.Fatal("overflow must saturate")
	}
	if sat32(123) != 123 {
		t.Fatal("in-range must pass through")
	}
}

func mkSpan(id uint32, shard uint8, total uint32, forced bool) Span {
	var sp Span
	sp.Start(id, 1, shard, 0, 1, forced, int64(id)*1000)
	sp.Add(PhaseQueue, CauseNone, 0, int64(id)*1000, int64(total/2))
	sp.Add(PhaseRetry, CauseGateTimeout, 1, int64(id)*1000, int64(total/2))
	sp.Finish(CauseNone, int64(id)*1000+int64(total))
	return sp
}

func TestReservoirKeepsSlowest(t *testing.T) {
	o := New(Config{Shards: 2, Workers: 2, TailK: 4, SampleEvery: 1, Window: time.Hour})
	for i := uint32(1); i <= 100; i++ {
		sp := mkSpan(i, uint8(i%2), i*10, false)
		o.Collect(int(i%2), &sp)
	}
	snap := o.Snapshot()
	if len(snap.Slowest) != 4 {
		t.Fatalf("slowest = %d, want 4", len(snap.Slowest))
	}
	// The four slowest totals are 970..1000.
	for _, sp := range snap.Slowest {
		if sp.TotalNs < 970 {
			t.Fatalf("reservoir kept a fast span: %+v", sp)
		}
	}
	if snap.Slowest[0].TotalNs < snap.Slowest[1].TotalNs {
		t.Fatal("slowest must be sorted descending")
	}
}

func TestReservoirWindowRotation(t *testing.T) {
	o := New(Config{Shards: 1, Workers: 1, TailK: 2, Window: time.Nanosecond})
	a := mkSpan(1, 0, 500, false)
	o.Collect(0, &a)
	b := mkSpan(2, 0, 400, false)
	b.Begin = a.Begin + int64(time.Second) // forces rotation
	o.Collect(0, &b)
	snap := o.Snapshot()
	// Both windows are served: the rotated-out span and the new one.
	if len(snap.Slowest) != 2 {
		t.Fatalf("slowest across windows = %d, want 2", len(snap.Slowest))
	}
}

func TestForcedRingAlwaysRetained(t *testing.T) {
	o := New(Config{Shards: 1, Workers: 1, SampleEvery: 1 << 30, TailK: 1, Window: time.Hour})
	sp := mkSpan(9, 0, 1, true) // far too fast for the tail, never sampled
	o.Collect(0, &sp)
	snap := o.Snapshot()
	if len(snap.Forced) != 1 || snap.Forced[0].ID != 9 || !snap.Forced[0].Forced {
		t.Fatalf("forced span not retained: %+v", snap.Forced)
	}
}

func TestAggQuantilesAndDiff(t *testing.T) {
	o := New(Config{Shards: 2, Workers: 1})
	before := o.Agg()
	for i := 0; i < 1000; i++ {
		sp := mkSpan(uint32(i), 1, 1000, false) // 500ns queue + 500ns retry
		o.Collect(0, &sp)
	}
	after := o.Agg()
	if len(after.Shards) != 2 {
		t.Fatalf("shards = %d, want 2", len(after.Shards))
	}
	sh1 := after.Shards[1]
	q := sh1.Phases["queue"].Sub(before.Shards[1].Phases["queue"])
	if q.Count != 1000 {
		t.Fatalf("queue count = %d, want 1000", q.Count)
	}
	p50 := q.Quantile(0.50)
	// 500ns lands in a log bucket; midpoint must be within 25%.
	if p50 < 375 || p50 > 625 {
		t.Fatalf("queue p50 = %dns, want ~500ns", p50)
	}
	if sh1.Total.Count != 1000 {
		t.Fatalf("total count = %d, want 1000", sh1.Total.Count)
	}
	if m := q.MeanNs(); m != 500 {
		t.Fatalf("queue mean = %d, want 500", m)
	}
	if got := after.Shards[0].Total.Count; got != 0 {
		t.Fatalf("shard 0 saw %d spans, want 0", got)
	}
}

func TestAggBucketLayoutMatchesTelemetry(t *testing.T) {
	// The layout contract: bucketLow(bucketOf(v)) <= v < bucketHigh(bucketOf(v)).
	for _, v := range []uint64{0, 1, 3, 4, 5, 100, 1023, 1024, 1 << 20, 1 << 40} {
		b := aggBucketOf(v)
		if aggBucketLow(b) > v || (b < aggBuckets-1 && v >= aggBucketHigh(b)) {
			t.Fatalf("v=%d bucket=%d low=%d high=%d", v, b, aggBucketLow(b), aggBucketHigh(b))
		}
	}
}

func TestHandlerFormats(t *testing.T) {
	o := New(Config{Shards: 1, Workers: 1, SampleEvery: 1})
	sp := mkSpan(42, 0, 5000, true)
	o.Collect(0, &sp)
	h := o.Handler()

	for _, format := range []string{"", "?format=agg", "?format=chrome"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace"+format, nil))
		if rec.Code != 200 {
			t.Fatalf("format %q: status %d", format, rec.Code)
		}
		var v any
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("format %q: invalid JSON: %v", format, err)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=nope", nil))
	if rec.Code != 400 {
		t.Fatalf("bad format: status %d, want 400", rec.Code)
	}

	// The default view carries the cause labels the e2e tests assert on.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Forced) != 1 || snap.Forced[0].Events[1].Cause != "gate-timeout" {
		t.Fatalf("cause label missing from rendered span: %+v", snap.Forced)
	}
}

// TestSpanRecordZeroAlloc is the CI gate: the untraced (nil-span) hook and
// the traced record path must both be allocation-free.
func TestSpanRecordZeroAlloc(t *testing.T) {
	var nilSpan *Span
	if n := testing.AllocsPerRun(1000, func() {
		nilSpan.Add(PhaseRetry, CauseLockBusy, 1, 0, 10)
		nilSpan.NoteAttempt()
		nilSpan.Finish(CauseNone, 0)
	}); n != 0 {
		t.Fatalf("nil-span hooks allocate %.1f/op, want 0", n)
	}

	var sp Span
	if n := testing.AllocsPerRun(1000, func() {
		sp.Start(1, 1, 0, 0, 4, false, 1000)
		sp.Add(PhaseQueue, CauseNone, 0, 1000, 10)
		sp.Add(PhaseRetry, CauseReadValidation, 1, 1010, 10)
		sp.Add(PhaseLock, CauseNone, 2, 1020, 10)
		sp.Finish(CauseNone, 1030)
	}); n != 0 {
		t.Fatalf("span record path allocates %.1f/op, want 0", n)
	}

	o := New(Config{Shards: 1, Workers: 1, SampleEvery: 2})
	sp2 := mkSpan(1, 0, 100, false)
	if n := testing.AllocsPerRun(1000, func() {
		o.Collect(0, &sp2)
	}); n != 0 {
		t.Fatalf("Collect allocates %.1f/op, want 0", n)
	}
}

func BenchmarkSpanRecordUntraced(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Add(PhaseRetry, CauseLockBusy, 1, 0, 10)
		sp.NoteAttempt()
		sp.Finish(CauseNone, 0)
	}
}

func BenchmarkSpanRecordTraced(b *testing.B) {
	var sp Span
	o := New(Config{Shards: 4, Workers: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Start(uint32(i), 1, uint8(i&3), 0, 4, false, int64(i))
		sp.Add(PhaseQueue, CauseNone, 0, int64(i), 10)
		sp.Add(PhaseLock, CauseNone, 1, int64(i)+10, 10)
		sp.Finish(CauseNone, int64(i)+100)
		o.Collect(0, &sp)
	}
}
