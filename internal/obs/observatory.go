package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Observatory defaults.
const (
	DefaultSampleEvery = 64
	DefaultRingSize    = 256
	DefaultTailK       = 32
	DefaultWindow      = 2 * time.Second
	forcedRingSize     = 256
)

// Config parameterizes an Observatory; zero fields take defaults.
type Config struct {
	// Shards and Workers size the aggregation and ring arrays.
	Shards  int
	Workers int

	// SampleEvery retains every Nth finished span in its worker's ring
	// (1 = every span).
	SampleEvery int

	// RingSize is the per-worker sampled-span ring capacity.
	RingSize int

	// TailK is how many slowest spans the reservoir keeps per window.
	TailK int

	// Window is the tail reservoir's rotation period.
	Window time.Duration
}

func (c Config) normalize() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.TailK <= 0 {
		c.TailK = DefaultTailK
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	return c
}

// ring is one worker's sampled-span retention. The worker is usually the
// only writer — the mutex exists for scrapers (a snapshot copies the
// slots out under it), so the lock is all but uncontended on the record
// path — but two rings are genuinely shared: the forced ring (any worker
// with a trace-bit span) and the watch thread's ring (every parked watch
// goroutine collects under ThreadID Workers+1). The tick is therefore an
// atomic add, and slot writes are already serialized by mu.
type ring struct {
	mu    sync.Mutex
	tick  atomic.Uint64 // sample countdown; atomic for the shared rings
	slots []Span
	next  int
	full  bool
	_     [32]byte // keep neighbors' hot fields apart
}

func (r *ring) offer(sp *Span, every int) {
	if r.tick.Add(1)%uint64(every) != 0 {
		return
	}
	r.mu.Lock()
	r.slots[r.next] = *sp
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

func (r *ring) collect(dst []Span) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.slots)
	}
	return append(dst, r.slots[:n]...)
}

// reservoir keeps the K slowest spans per rotation window (plus the
// previous window, so a scrape right after rotation still sees a tail).
// The floor of the current window's kept set is cached in an atomic so the
// overwhelmingly common case — a span faster than the current tail — is
// rejected with one load and no lock.
type reservoir struct {
	k      int
	window int64 // ns

	floor atomic.Uint32 // min TotalNs among cur when full; 0 otherwise

	mu      sync.Mutex
	started int64 // window start, unix nanos
	cur     []Span
	prev    []Span
}

func (t *reservoir) offer(sp *Span, now int64) {
	if sp.TotalNs <= t.floor.Load() {
		// Fast reject — but still rotate eventually even if all spans are
		// fast; rotation is also checked here via the lock-free clock read.
		if now-atomic.LoadInt64(&t.started) < t.window {
			return
		}
	}
	t.mu.Lock()
	if now-t.started >= t.window {
		t.prev = append(t.prev[:0], t.cur...)
		t.cur = t.cur[:0]
		atomic.StoreInt64(&t.started, now)
		t.floor.Store(0)
	}
	if sp.TotalNs > t.floor.Load() || len(t.cur) < t.k {
		if len(t.cur) < t.k {
			t.cur = append(t.cur, *sp)
		} else {
			// Replace the current minimum.
			min := 0
			for i := 1; i < len(t.cur); i++ {
				if t.cur[i].TotalNs < t.cur[min].TotalNs {
					min = i
				}
			}
			if t.cur[min].TotalNs < sp.TotalNs {
				t.cur[min] = *sp
			}
		}
		if len(t.cur) == t.k {
			min := t.cur[0].TotalNs
			for i := 1; i < len(t.cur); i++ {
				if t.cur[i].TotalNs < min {
					min = t.cur[i].TotalNs
				}
			}
			t.floor.Store(min)
		}
	}
	t.mu.Unlock()
}

func (t *reservoir) collect(dst []Span) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	dst = append(dst, t.cur...)
	return append(dst, t.prev...)
}

// Observatory is the process-wide span retention: per-worker sampled
// rings, a forced-trace ring, the K-slowest tail reservoir, and the
// per-shard per-phase aggregation.
type Observatory struct {
	cfg Config

	rings  []ring
	agg    []shardAgg
	tail   reservoir
	forced ring
}

// New returns an Observatory for the given topology.
func New(cfg Config) *Observatory {
	cfg = cfg.normalize()
	o := &Observatory{
		cfg:   cfg,
		rings: make([]ring, cfg.Workers),
		agg:   make([]shardAgg, cfg.Shards),
	}
	for i := range o.rings {
		o.rings[i].slots = make([]Span, cfg.RingSize)
	}
	o.forced.slots = make([]Span, forcedRingSize)
	o.tail.k = cfg.TailK
	o.tail.window = int64(cfg.Window)
	o.tail.cur = make([]Span, 0, cfg.TailK)
	o.tail.prev = make([]Span, 0, cfg.TailK)
	return o
}

// Collect retains one finished span recorded by the given worker. It is
// allocation-free: retention copies the span by value into preallocated
// slots. Nil-safe (a nil Observatory drops the span), so callers can keep
// one unconditional call site.
func (o *Observatory) Collect(worker int, sp *Span) {
	if o == nil || sp == nil {
		return
	}
	sh := int(sp.Shard)
	if sh >= len(o.agg) {
		sh = len(o.agg) - 1
	}
	o.agg[sh].observeSpan(sp)
	if worker < 0 || worker >= len(o.rings) {
		worker = 0
	}
	o.rings[worker].offer(sp, o.cfg.SampleEvery)
	if sp.Forced {
		o.forced.offer(sp, 1)
	}
	now := sp.Begin + int64(sp.TotalNs)
	o.tail.offer(sp, now)
}

// Snapshot is the JSON shape served by /debug/trace.
type Snapshot struct {
	// Slowest is the tail reservoir (current + previous window), slowest
	// first.
	Slowest []SpanJSON `json:"slowest"`
	// Forced is the ring of spans whose requests set the protocol
	// trace-request bit, newest last.
	Forced []SpanJSON `json:"forced,omitempty"`
	// Sampled is the per-worker 1-in-N sample, unordered.
	Sampled []SpanJSON `json:"sampled,omitempty"`
}

// SpanJSON is a Span rendered for humans and tests: phases and causes as
// strings, times in ns.
type SpanJSON struct {
	ID        uint32      `json:"id"`
	Op        uint8       `json:"op"`
	Shard     int         `json:"shard"`
	Worker    int         `json:"worker"`
	Forced    bool        `json:"forced,omitempty"`
	Truncated bool        `json:"truncated,omitempty"`
	Ops       int         `json:"ops"`
	Attempts  int         `json:"attempts"`
	Cause     string      `json:"cause"`
	BeginUnix int64       `json:"begin_unix_ns"`
	TotalNs   uint32      `json:"total_ns"`
	Events    []EventJSON `json:"events"`
}

// EventJSON is one rendered timeline entry.
type EventJSON struct {
	Phase   string `json:"phase"`
	Cause   string `json:"cause,omitempty"`
	Attempt uint16 `json:"attempt,omitempty"`
	StartNs uint32 `json:"start_ns"`
	DurNs   uint32 `json:"dur_ns"`
}

func renderSpan(sp *Span) SpanJSON {
	out := SpanJSON{
		ID:        sp.ID,
		Op:        sp.Op,
		Shard:     int(sp.Shard),
		Worker:    int(sp.Worker),
		Forced:    sp.Forced,
		Truncated: sp.Truncated,
		Ops:       int(sp.Ops),
		Attempts:  int(sp.Attempts),
		Cause:     sp.Cause.String(),
		BeginUnix: sp.Begin,
		TotalNs:   sp.TotalNs,
		Events:    make([]EventJSON, 0, sp.Len()),
	}
	for _, e := range sp.Events() {
		ej := EventJSON{
			Phase:   e.Phase.String(),
			Attempt: e.Attempt,
			StartNs: e.StartNs,
			DurNs:   e.DurNs,
		}
		if e.Cause != CauseNone {
			ej.Cause = e.Cause.String()
		}
		out.Events = append(out.Events, ej)
	}
	return out
}

func renderSpans(spans []Span) []SpanJSON {
	out := make([]SpanJSON, 0, len(spans))
	for i := range spans {
		out = append(out, renderSpan(&spans[i]))
	}
	return out
}

// Snapshot gathers the current retention state. Safe while writers run.
func (o *Observatory) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	slow := o.tail.collect(nil)
	sort.Slice(slow, func(i, j int) bool { return slow[i].TotalNs > slow[j].TotalNs })
	if len(slow) > o.cfg.TailK {
		slow = slow[:o.cfg.TailK]
	}
	var sampled []Span
	for i := range o.rings {
		sampled = o.rings[i].collect(sampled)
	}
	return Snapshot{
		Slowest: renderSpans(slow),
		Forced:  renderSpans(o.forced.collect(nil)),
		Sampled: renderSpans(sampled),
	}
}

// Agg gathers the per-shard per-phase aggregation. Safe while writers run.
func (o *Observatory) Agg() AggSnapshot {
	if o == nil {
		return AggSnapshot{}
	}
	out := AggSnapshot{Shards: make([]ShardAggSnapshot, 0, len(o.agg))}
	for sh := range o.agg {
		out.Shards = append(out.Shards, o.agg[sh].snapshot(sh))
	}
	return out
}
