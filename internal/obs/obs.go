// Package obs is the variance observatory: an always-on, allocation-free
// per-transaction span tracer with tail attribution. Where the telemetry
// package answers "how is the system doing in aggregate", obs answers the
// paper's sharper question for a single slow request — *where did the time
// go*: server decode, worker queue wait, gate hold, each STM attempt (and
// why it aborted), commit lock/validate/publish, WAL ack wait.
//
// The package is deliberately a leaf (stdlib only): the abort-cause
// taxonomy defined here is shared by the engines (internal/tl2,
// internal/libtm), the telemetry counters, and the serving layer without
// import cycles.
//
// Recording discipline: a Span is a fixed-size value owned by exactly one
// goroutine while it is being recorded (a worker's per-shard scratch slot).
// Every record method is nil-safe — engine hot paths hold a possibly-nil
// *Span and pay one predictable branch when tracing is off — and none of
// them allocates; the zero-alloc property is CI-gated like internal/wset.
// Retention is decoupled from recording: every finished span feeds the
// per-shard per-phase aggregation (always), a 1-in-N sampled per-worker
// ring, a ring of explicitly trace-requested spans, and a tail-triggered
// reservoir that keeps the K slowest spans per window.
package obs

// Cause is the abort/failure taxonomy threaded through both engines, the
// serving layer and telemetry. CauseNone marks success.
type Cause uint8

// Causes, in taxonomy order. NumCauses bounds cause-indexed arrays.
const (
	// CauseNone: the span (or attempt) succeeded.
	CauseNone Cause = iota
	// CauseReadValidation: commit-time (or read-time) version validation
	// observed a word newer than the transaction's read version.
	CauseReadValidation
	// CauseLockBusy: a lock word (read spin, eager write lock, or the
	// commit's write-set lock sweep) stayed busy past the spin bound.
	CauseLockBusy
	// CauseClockCAS: the GV4 clock CAS lost and the adopted winner's wv
	// forced a validation pass that then failed.
	CauseClockCAS
	// CauseGateTimeout: the guidance gate held the transaction until the
	// K-retry escape hatch forced it through.
	CauseGateTimeout
	// CauseRetryBudget: the per-transaction attempt budget ran out
	// (gstm.ErrRetryBudgetExhausted).
	CauseRetryBudget
	// CauseWALUnavailable: the shard's write-ahead log is in a terminal
	// failure state, so the operation's durability cannot be promised.
	CauseWALUnavailable
	// CauseCanceled: the transaction's context was canceled.
	CauseCanceled
	// CauseSpurious: a fault injector forced the abort (chaos tests).
	CauseSpurious
	// CauseWakeup: a blocking transaction's park ended because a commit
	// published a new version of a location it had read (tx.Retry). Stamped
	// on the park event of the span timeline, not on an abort — a wakeup is
	// the park succeeding, not the attempt failing.
	CauseWakeup
	// CauseXShardValidation: a cross-shard commit's prepare phase failed on
	// one participant — a sub-transaction's read set no longer validated
	// against its home clock, or a participant's write locks stayed busy —
	// so every participant aborted (all-or-nothing).
	CauseXShardValidation

	NumCauses
)

var causeNames = [NumCauses]string{
	"none",
	"read-validation",
	"lock-busy",
	"clock-cas",
	"gate-timeout",
	"retry-budget",
	"wal-unavailable",
	"canceled",
	"spurious",
	"wakeup",
	"cross-shard-validation",
}

func (c Cause) String() string {
	if c >= NumCauses {
		return "unknown"
	}
	return causeNames[c]
}

// CauseName returns the label for cause index i (for exporters iterating
// the taxonomy).
func CauseName(i int) string { return Cause(i).String() }

// Phase labels one timed segment of a request's life.
type Phase uint8

// Phases, in request order. NumPhases bounds phase-indexed arrays.
const (
	// PhaseDecode: reading and decoding the request frame off the socket.
	PhaseDecode Phase = iota
	// PhaseQueue: waiting in the worker's queue (and batch assembly).
	PhaseQueue
	// PhaseGate: held at the guidance gate before the attempt started.
	PhaseGate
	// PhaseRetry: one aborted STM attempt (its Cause says why).
	PhaseRetry
	// PhaseLock: the successful commit's write-set lock acquisition.
	PhaseLock
	// PhaseValidate: the successful commit's read-set validation.
	PhaseValidate
	// PhasePublish: the successful commit's write publication + unlock.
	PhasePublish
	// PhaseWALAck: waiting for the write-ahead log to acknowledge the
	// commit record per the durability mode.
	PhaseWALAck
	// PhasePark: a blocking transaction (tx.Retry under WithBlocking) parked
	// on its read set, waiting for a commit to change something it read. The
	// event's Cause is CauseWakeup when a commit woke it, CauseCanceled when
	// the park context ended first.
	PhasePark
	// PhaseXPrepare: a cross-shard commit's prepare sweep — locking every
	// participant's write set and validating every read set, in ascending
	// shard order, before any shard publishes.
	PhaseXPrepare
	// PhaseXPublish: a cross-shard commit's publish sweep — the timestamp
	// exchange (every participant clock advanced to the agreed commit
	// point) followed by per-shard publication and lock release.
	PhaseXPublish

	NumPhases
)

var phaseNames = [NumPhases]string{
	"decode",
	"queue",
	"gate",
	"retry",
	"lock",
	"validate",
	"publish",
	"walack",
	"park",
	"xprepare",
	"xpublish",
}

func (p Phase) String() string {
	if p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseName returns the label for phase index i.
func PhaseName(i int) string { return Phase(i).String() }
