// Package harness orchestrates the paper's experiments end to end: profile
// a benchmark under the instrumented STM, build and analyze the Thread
// State Automaton, then measure paired default and guided runs and compute
// every quantity the evaluation section reports — per-thread execution-time
// standard deviation, non-determinism (distinct thread transactional
// states), per-thread abort histograms and their tail metric, abort ratios
// and slowdown. It is the equivalent of the artifact's exec.sh pipeline
// (mcmc_data → model → default / ND_mcmc / ND_only runs).
package harness

import (
	"fmt"
	"time"

	"gstm"
	"gstm/internal/stamp"
	"gstm/internal/stats"
	"gstm/internal/telemetry"
	"gstm/internal/trace"
)

// Config parameterizes one benchmark experiment.
type Config struct {
	Threads     int
	TrainRuns   int        // profiling runs used to build the model (paper: 20)
	Runs        int        // measured runs per configuration (paper: 20)
	TrainSize   stamp.Size // paper: medium
	TestSize    stamp.Size // paper: small
	Interleave  int
	Tfactor     float64 // destination-set divisor (paper: 4)
	GateRetries int     // the paper's k
	Seed        uint64

	// Watchdog, when non-nil, arms the guidance watchdog on the guided
	// side; the result then records the degraded-mode transitions it
	// observed (see Result.GuidedHealth and Suite.WriteResilience).
	Watchdog *gstm.WatchdogOptions
}

// Normalize fills defaults matching the paper's protocol.
func (c Config) Normalize() Config {
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.TrainRuns <= 0 {
		c.TrainRuns = 20
	}
	if c.Runs <= 0 {
		c.Runs = 20
	}
	if c.Interleave == 0 {
		c.Interleave = 6
	}
	if c.Tfactor <= 0 {
		c.Tfactor = 4
	}
	if c.Seed == 0 {
		c.Seed = 0xC0FFEE
	}
	return c
}

// SideResult holds the measured quantities of one configuration (default or
// guided).
type SideResult struct {
	// ThreadTimes[t][r] is thread t's execution time in run r (seconds).
	ThreadTimes [][]float64

	// ThreadStd[t] is the sample standard deviation of thread t's times.
	ThreadStd []float64

	// ProgramTimes[r] is run r's parallel-phase wall-clock time (seconds).
	ProgramTimes []float64

	// AbortHist[t] is thread t's abort histogram merged over all runs.
	AbortHist []*stats.Histogram

	// NonDeterminism is the number of distinct thread transactional states
	// across all measured runs.
	NonDeterminism int

	Commits, Aborts uint64

	// Telemetry is the side's runtime-telemetry snapshot taken after its
	// measured runs: sampled commit/validation latency quantiles, gate
	// telemetry by automaton state, and the diagnostic event ring.
	Telemetry telemetry.Snapshot
}

// MeanProgramTime returns the mean wall-clock time of the configuration.
func (s *SideResult) MeanProgramTime() float64 { return stats.Mean(s.ProgramTimes) }

// AbortRatio returns aborts per commit.
func (s *SideResult) AbortRatio() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits)
}

// Result is the complete outcome of one benchmark experiment.
type Result struct {
	App     string
	Config  Config
	Model   *gstm.Model
	Report  gstm.Report
	Default SideResult
	Guided  SideResult

	// GuidedHealth is the guided system's resilience snapshot taken after
	// its measured runs: gate decision counts and, when Config.Watchdog
	// armed a watchdog, its state, trip/re-arm counts and window rates.
	GuidedHealth gstm.Health
}

// VarianceImprovement returns the per-thread percentage reduction in
// execution-time standard deviation (Figures 4 and 6).
func (r *Result) VarianceImprovement() []float64 {
	out := make([]float64, len(r.Default.ThreadStd))
	for t := range out {
		out[t] = stats.PercentImprovement(r.Default.ThreadStd[t], r.Guided.ThreadStd[t])
	}
	return out
}

// NonDeterminismReduction returns the percentage reduction in distinct
// states, guided vs default (Figure 9).
func (r *Result) NonDeterminismReduction() float64 {
	return stats.PercentImprovement(float64(r.Default.NonDeterminism), float64(r.Guided.NonDeterminism))
}

// Slowdown returns guided mean program time over default mean program time
// (Figure 10; 1.0 = no slowdown).
func (r *Result) Slowdown() float64 {
	return stats.Slowdown(r.Default.MeanProgramTime(), r.Guided.MeanProgramTime())
}

// TailImprovement returns the average percentage improvement of the abort
// tail metric across threads (Table IV).
func (r *Result) TailImprovement() float64 {
	return stats.TailImprovement(r.Default.AbortHist, r.Guided.AbortHist)
}

// RunBenchmark executes the full pipeline for one STAMP workload.
func RunBenchmark(w stamp.Workload, cfg Config) (*Result, error) {
	cfg = cfg.Normalize()
	res := &Result{App: w.Name(), Config: cfg}

	// Phase 1+2: profile on the training input and build the model.
	trainSys := gstm.NewSystem(gstm.Config{Threads: cfg.Threads, Interleave: cfg.Interleave})
	var traces []*gstm.Trace
	for run := 0; run < cfg.TrainRuns; run++ {
		tr, _, _, err := measuredRun(trainSys, w, stamp.Params{
			Threads: cfg.Threads,
			Size:    cfg.TrainSize,
			Seed:    cfg.Seed + uint64(run)*7919,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: training run %d: %w", w.Name(), run, err)
		}
		traces = append(traces, tr)
	}
	res.Model = gstm.BuildModel(cfg.Threads, traces)

	// Phase 3: analyze.
	res.Report = gstm.Analyze(res.Model)

	// Phase 4: measured runs. Both sides run with instrumentation on (the
	// paper's ND_only vs ND_mcmc), with paired input seeds.
	defSys := gstm.NewSystem(gstm.Config{Threads: cfg.Threads, Interleave: cfg.Interleave})
	d, err := measureSide(defSys, w, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: default side: %w", w.Name(), err)
	}
	res.Default = *d

	guidedSys := gstm.NewSystem(gstm.Config{Threads: cfg.Threads, Interleave: cfg.Interleave})
	gopts := []gstm.GuidanceOption{gstm.WithTfactor(cfg.Tfactor), gstm.WithGateRetries(cfg.GateRetries)}
	if cfg.Watchdog != nil {
		gopts = append(gopts, gstm.WithWatchdog(*cfg.Watchdog))
	}
	guidedSys.ForceGuidance(res.Model, gopts...)
	g, err := measureSide(guidedSys, w, cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: guided side: %w", w.Name(), err)
	}
	res.Guided = *g
	res.GuidedHealth = guidedSys.Health()
	return res, nil
}

// measureSide performs cfg.Runs measured runs of w on sys.
func measureSide(sys *gstm.System, w stamp.Workload, cfg Config) (*SideResult, error) {
	side := &SideResult{
		ThreadTimes: make([][]float64, cfg.Threads),
		ThreadStd:   make([]float64, cfg.Threads),
		AbortHist:   make([]*stats.Histogram, cfg.Threads),
	}
	for t := 0; t < cfg.Threads; t++ {
		side.AbortHist[t] = stats.NewHistogram()
	}
	var traces []*trace.Trace
	sys.ResetStats()
	for run := 0; run < cfg.Runs; run++ {
		tr, durs, wall, err := measuredRun(sys, w, stamp.Params{
			Threads: cfg.Threads,
			Size:    cfg.TestSize,
			Seed:    cfg.Seed + 1_000_003 + uint64(run)*104729,
		})
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", run, err)
		}
		traces = append(traces, tr)
		for t := 0; t < cfg.Threads; t++ {
			side.ThreadTimes[t] = append(side.ThreadTimes[t], durs[t].Seconds())
		}
		side.ProgramTimes = append(side.ProgramTimes, wall.Seconds())
		for t, h := range tr.ThreadHistograms(cfg.Threads) {
			side.AbortHist[t].Merge(h)
		}
	}
	for t := 0; t < cfg.Threads; t++ {
		sd, err := stats.StdDev(side.ThreadTimes[t])
		if err != nil {
			return nil, fmt.Errorf("thread %d: %w", t, err)
		}
		side.ThreadStd[t] = sd
	}
	side.NonDeterminism = trace.DistinctStatesAcross(traces)
	side.Commits, side.Aborts = sys.Stats()
	side.Telemetry = sys.TelemetrySnapshot()
	return side, nil
}

// measuredRun executes one instance under profiling, returning its trace,
// per-thread times and the parallel phase's wall-clock time.
func measuredRun(sys *gstm.System, w stamp.Workload, p stamp.Params) (*trace.Trace, []time.Duration, time.Duration, error) {
	inst, err := w.NewInstance(p)
	if err != nil {
		return nil, nil, 0, err
	}
	sys.StartProfiling()
	begin := time.Now()
	durs, err := inst.Run(sys)
	wall := time.Since(begin)
	tr := sys.StopProfiling()
	if err != nil {
		return nil, nil, 0, err
	}
	if err := inst.Validate(sys); err != nil {
		return nil, nil, 0, err
	}
	return tr, durs, wall, nil
}
