package harness

import (
	"encoding/csv"
	"fmt"
	"io"

	"gstm/internal/stats"
)

// WriteCSV emits one row per (application, threads) with every headline
// quantity — the machine-readable counterpart of the tables, standing in
// for the artifact's var_Percentagediff.py / avg_Percentagediff.py
// post-processing scripts.
func (s *Suite) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "threads", "guidance_metric_pct", "guidable", "model_states",
		"default_nd", "guided_nd", "nd_reduction_pct",
		"tail_improvement_pct",
		"mean_variance_improvement_pct",
		"default_abort_ratio", "guided_abort_ratio",
		"default_mean_time_s", "guided_mean_time_s", "slowdown_x",
		"default_commit_p50_ns", "default_commit_p95_ns", "default_commit_p99_ns",
		"guided_commit_p50_ns", "guided_commit_p95_ns", "guided_commit_p99_ns",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, th := range s.threadCounts() {
		for _, app := range s.apps() {
			r := s.Get(app, th)
			if r == nil {
				continue
			}
			vi := r.VarianceImprovement()
			row := []string{
				app,
				fmt.Sprintf("%d", th),
				fmt.Sprintf("%.2f", r.Report.Metric),
				fmt.Sprintf("%v", r.Report.Guidable),
				fmt.Sprintf("%d", r.Model.NumStates()),
				fmt.Sprintf("%d", r.Default.NonDeterminism),
				fmt.Sprintf("%d", r.Guided.NonDeterminism),
				fmt.Sprintf("%.2f", r.NonDeterminismReduction()),
				fmt.Sprintf("%.2f", r.TailImprovement()),
				fmt.Sprintf("%.2f", stats.Mean(vi)),
				fmt.Sprintf("%.4f", r.Default.AbortRatio()),
				fmt.Sprintf("%.4f", r.Guided.AbortRatio()),
				fmt.Sprintf("%.6f", r.Default.MeanProgramTime()),
				fmt.Sprintf("%.6f", r.Guided.MeanProgramTime()),
				fmt.Sprintf("%.3f", r.Slowdown()),
				fmt.Sprintf("%d", r.Default.Telemetry.CommitLatency.P50.Nanoseconds()),
				fmt.Sprintf("%d", r.Default.Telemetry.CommitLatency.P95.Nanoseconds()),
				fmt.Sprintf("%d", r.Default.Telemetry.CommitLatency.P99.Nanoseconds()),
				fmt.Sprintf("%d", r.Guided.Telemetry.CommitLatency.P50.Nanoseconds()),
				fmt.Sprintf("%d", r.Guided.Telemetry.CommitLatency.P95.Nanoseconds()),
				fmt.Sprintf("%d", r.Guided.Telemetry.CommitLatency.P99.Nanoseconds()),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
