package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"gstm/internal/telemetry"
)

// Suite is a set of benchmark results keyed by (app, threads), holding
// everything needed to print the paper's tables and figures.
type Suite struct {
	results map[suiteKey]*Result
}

type suiteKey struct {
	app     string
	threads int
}

// NewSuite returns an empty result suite.
func NewSuite() *Suite { return &Suite{results: make(map[suiteKey]*Result)} }

// Add stores r in the suite.
func (s *Suite) Add(r *Result) {
	s.results[suiteKey{app: r.App, threads: r.Config.Threads}] = r
}

// Get returns the result for (app, threads), or nil.
func (s *Suite) Get(app string, threads int) *Result {
	return s.results[suiteKey{app: app, threads: threads}]
}

// apps returns the distinct application names in table order.
func (s *Suite) apps() []string {
	seen := map[string]bool{}
	var out []string
	for k := range s.results {
		if !seen[k.app] {
			seen[k.app] = true
			out = append(out, k.app)
		}
	}
	sort.Strings(out)
	return out
}

// threadCounts returns the distinct thread counts ascending.
func (s *Suite) threadCounts() []int {
	seen := map[int]bool{}
	var out []int
	for k := range s.results {
		if !seen[k.threads] {
			seen[k.threads] = true
			out = append(out, k.threads)
		}
	}
	sort.Ints(out)
	return out
}

func (s *Suite) perThreadsCell(app string, threads int, f func(*Result) string) string {
	r := s.Get(app, threads)
	if r == nil {
		return "-"
	}
	return f(r)
}

// WriteTableI prints the model analyzer guidance metric (lower is better).
func (s *Suite) WriteTableI(w io.Writer) {
	fmt.Fprintln(w, "TABLE I: MODEL ANALYZER GUIDANCE METRIC PERCENTAGE (LOWER IS BETTER)")
	s.writePerApp(w, func(r *Result) string { return fmt.Sprintf("%.0f", r.Report.Metric) })
}

// WriteTableIII prints the number of states in each model.
func (s *Suite) WriteTableIII(w io.Writer) {
	fmt.Fprintln(w, "TABLE III: THE NUMBER OF STATES IN THE MODEL OF APPLICATION")
	s.writePerApp(w, func(r *Result) string { return fmt.Sprintf("%d", r.Model.NumStates()) })
}

// WriteTableIV prints the average percentage improvement in the abort tail
// distribution.
func (s *Suite) WriteTableIV(w io.Writer) {
	fmt.Fprintln(w, "TABLE IV: AVERAGE PERCENTAGE IMPROVEMENT IN THE TAIL DISTRIBUTION OF ABORTS")
	s.writePerApp(w, func(r *Result) string { return fmt.Sprintf("%.0f%%", r.TailImprovement()) })
}

// writePerApp renders one row per app with one column per thread count.
func (s *Suite) writePerApp(w io.Writer, cell func(*Result) string) {
	threads := s.threadCounts()
	fmt.Fprintf(w, "%-12s", "Application")
	for _, th := range threads {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("%d threads", th))
	}
	fmt.Fprintln(w)
	for _, app := range s.apps() {
		fmt.Fprintf(w, "%-12s", app)
		for _, th := range threads {
			fmt.Fprintf(w, " %12s", s.perThreadsCell(app, th, cell))
		}
		fmt.Fprintln(w)
	}
}

// WriteVarianceFigure prints per-thread percentage execution-time variance
// improvement for the given thread count (Figure 4 for 8 threads, Figure 6
// for 16).
func (s *Suite) WriteVarianceFigure(w io.Writer, threads int) {
	fmt.Fprintf(w, "FIG (variance): %% EXECUTION TIME VARIANCE IMPROVEMENT PER THREAD, %d THREADS\n", threads)
	for _, app := range s.apps() {
		r := s.Get(app, threads)
		if r == nil {
			continue
		}
		fmt.Fprintf(w, "%-12s", app)
		for _, v := range r.VarianceImprovement() {
			fmt.Fprintf(w, " %7.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// WriteAbortTailFigure prints each thread's abort histogram for default
// (dotted line in the paper) and guided (solid line) executions (Figures 5
// and 7), in the artifact's "aborts:frequency" format.
func (s *Suite) WriteAbortTailFigure(w io.Writer, threads int) {
	fmt.Fprintf(w, "FIG (abort tails): ABORT DISTRIBUTION PER THREAD, %d THREADS (default | guided)\n", threads)
	for _, app := range s.apps() {
		r := s.Get(app, threads)
		if r == nil {
			continue
		}
		fmt.Fprintf(w, "%s:\n", app)
		for t := 0; t < threads; t++ {
			fmt.Fprintf(w, "  thread %2d: %-40s | %s\n",
				t, r.Default.AbortHist[t].String(), r.Guided.AbortHist[t].String())
		}
	}
}

// WriteNonDeterminismFigure prints the percentage reduction in
// non-determinism, guided vs default (Figure 9).
func (s *Suite) WriteNonDeterminismFigure(w io.Writer) {
	fmt.Fprintln(w, "FIG 9: REDUCTION IN NON-DETERMINISM, GUIDED VS DEFAULT")
	s.writePerApp(w, func(r *Result) string {
		return fmt.Sprintf("%.1f%% (%d→%d)", r.NonDeterminismReduction(),
			r.Default.NonDeterminism, r.Guided.NonDeterminism)
	})
}

// WriteSlowdownFigure prints the slowdown of guided vs default execution
// (Figure 10; values < 1 are speedups).
func (s *Suite) WriteSlowdownFigure(w io.Writer) {
	fmt.Fprintln(w, "FIG 10: SLOWDOWN OF GUIDED VS DEFAULT EXECUTION (X)")
	s.writePerApp(w, func(r *Result) string { return fmt.Sprintf("%.2fx", r.Slowdown()) })
}

// WriteResilience prints each guided run's resilience outcome: gate
// decision counts and — when a watchdog was armed — its final state, the
// degraded-mode transitions (trips to pass-through, re-arms back) and the
// window rates it last sampled.
func (s *Suite) WriteResilience(w io.Writer) {
	fmt.Fprintln(w, "RESILIENCE (guided side): watchdog state, degraded-mode transitions, gate/abort rates")
	for _, th := range s.threadCounts() {
		for _, app := range s.apps() {
			r := s.Get(app, th)
			if r == nil {
				continue
			}
			h := r.GuidedHealth
			fmt.Fprintf(w, "%-12s %2dt gate(pass/held/esc)=%d/%d/%d", app, th,
				h.GatePassed, h.GateHeld, h.GateEscaped)
			if !h.WatchdogEnabled {
				fmt.Fprintln(w, " watchdog=off")
				continue
			}
			fmt.Fprintf(w, " watchdog=%s trips=%d rearms=%d esc=%.2f hold=%.2f abort=%.2f\n",
				h.Watchdog.State, h.Watchdog.Trips, h.Watchdog.Rearms,
				h.Watchdog.EscapeRate, h.Watchdog.HoldRate, h.Watchdog.AbortRate)
		}
	}
}

// WriteTelemetry prints each side's runtime telemetry: sampled commit and
// validation latency quantiles, gate hold-time quantiles, the hottest
// automaton states at the gate, and any diagnostic events the ring caught.
func (s *Suite) WriteTelemetry(w io.Writer) {
	fmt.Fprintln(w, "TELEMETRY (per app/threads): sampled latency quantiles, hot gate states, diagnostic events")
	for _, th := range s.threadCounts() {
		for _, app := range s.apps() {
			r := s.Get(app, th)
			if r == nil {
				continue
			}
			for _, side := range []struct {
				name string
				snap telemetry.Snapshot
			}{{"default", r.Default.Telemetry}, {"guided", r.Guided.Telemetry}} {
				t := side.snap
				fmt.Fprintf(w, "%-12s %2dt %-7s commit p50/p95/p99=%v/%v/%v (n=%d) validation p99=%v (n=%d)\n",
					app, th, side.name,
					t.CommitLatency.P50, t.CommitLatency.P95, t.CommitLatency.P99, t.CommitLatency.Count,
					t.ValidationLatency.P99, t.ValidationLatency.Count)
				if t.GateHoldTime.Count > 0 {
					fmt.Fprintf(w, "%-12s %2dt %-7s gate hold p50/p99=%v/%v (n=%d)\n",
						app, th, side.name, t.GateHoldTime.P50, t.GateHoldTime.P99, t.GateHoldTime.Count)
				}
				for i, g := range t.GateStates {
					if i >= 3 { // hottest three states suffice for the report
						fmt.Fprintf(w, "%-12s %2dt %-7s   ... %d more states\n", app, th, side.name, len(t.GateStates)-i)
						break
					}
					fmt.Fprintf(w, "%-12s %2dt %-7s   state %-24q visits=%d holds=%d escapes=%d\n",
						app, th, side.name, g.State, g.Visits, g.Holds, g.Escapes)
				}
				for _, ev := range t.Events {
					if ev.Kind == telemetry.KindWatchdogTrip {
						fmt.Fprintf(w, "%-12s %2dt %-7s   event %s: %s\n", app, th, side.name, ev.Kind, ev.Detail)
					}
				}
			}
		}
	}
}

// WriteSummary prints one compact line per result: the headline numbers of
// the whole experiment.
func (s *Suite) WriteSummary(w io.Writer) {
	fmt.Fprintln(w, "SUMMARY (per app/threads): metric, states, mean variance improvement, ND reduction, tail improvement, slowdown")
	for _, th := range s.threadCounts() {
		for _, app := range s.apps() {
			r := s.Get(app, th)
			if r == nil {
				continue
			}
			vi := r.VarianceImprovement()
			sum := 0.0
			for _, v := range vi {
				sum += v
			}
			fmt.Fprintf(w, "%-12s %2dt metric=%3.0f%% states=%6d var=%+6.1f%% nd=%+6.1f%% tail=%+6.1f%% slow=%.2fx guidable=%v\n",
				app, th, r.Report.Metric, r.Model.NumStates(),
				sum/float64(len(vi)), r.NonDeterminismReduction(),
				r.TailImprovement(), r.Slowdown(), r.Report.Guidable)
		}
	}
}

// FormatAll renders every table and figure into one string (used by the
// CLI's -all mode and by EXPERIMENTS.md generation).
func (s *Suite) FormatAll() string {
	var b strings.Builder
	s.WriteTableI(&b)
	b.WriteByte('\n')
	s.WriteTableIII(&b)
	b.WriteByte('\n')
	s.WriteTableIV(&b)
	b.WriteByte('\n')
	for _, th := range s.threadCounts() {
		s.WriteVarianceFigure(&b, th)
		b.WriteByte('\n')
		s.WriteAbortTailFigure(&b, th)
		b.WriteByte('\n')
	}
	s.WriteNonDeterminismFigure(&b)
	b.WriteByte('\n')
	s.WriteSlowdownFigure(&b)
	b.WriteByte('\n')
	s.WriteResilience(&b)
	b.WriteByte('\n')
	s.WriteTelemetry(&b)
	b.WriteByte('\n')
	s.WriteSummary(&b)
	return b.String()
}
