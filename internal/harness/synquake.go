package harness

import (
	"fmt"
	"io"

	"gstm/internal/guide"
	"gstm/internal/libtm"
	"gstm/internal/model"
	"gstm/internal/stats"
	"gstm/internal/synquake"
	"gstm/internal/trace"
)

// SynQuakeConfig parameterizes the Section VIII experiment.
type SynQuakeConfig struct {
	Threads     int
	Players     int
	TrainFrames int // paper: 1000 frames per training quest
	TestFrames  int // paper: 10000 frames per test quest
	TrainRuns   int // runs per training quest
	MeasureRuns int // measured runs per side per quest (averaged, paper: 20)
	Interleave  int
	Tfactor     float64
	GateRetries int
	Seed        uint64
}

// Normalize fills defaults scaled for the test machine.
func (c SynQuakeConfig) Normalize() SynQuakeConfig {
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Players <= 0 {
		c.Players = 256
	}
	if c.TrainFrames <= 0 {
		c.TrainFrames = 100
	}
	if c.TestFrames <= 0 {
		c.TestFrames = 400
	}
	if c.TrainRuns <= 0 {
		c.TrainRuns = 3
	}
	if c.MeasureRuns <= 0 {
		c.MeasureRuns = 5
	}
	if c.Interleave == 0 {
		c.Interleave = 6
	}
	if c.Tfactor <= 0 {
		c.Tfactor = 2
	}
	if c.Seed == 0 {
		c.Seed = 0xBADA55
	}
	return c
}

// SynQuakeQuestResult holds one test quest's paired measurements — the
// three panels of Figures 11 and 12.
type SynQuakeQuestResult struct {
	Quest string

	DefaultFrameStd float64 // std-dev of frame processing time (s)
	GuidedFrameStd  float64

	DefaultRateStd float64 // std-dev of the frame rate (frames/s)
	GuidedRateStd  float64

	DefaultAbortRatio float64
	GuidedAbortRatio  float64

	DefaultTotal float64 // total processing time (s)
	GuidedTotal  float64
}

// FrameVarianceImprovement returns the % reduction in frame-RATE std-dev,
// the quantity of Figures 11a/12a ("% improvement in frame Rate variance"):
// the stability of the delivered frames-per-second, the measure a game
// player experiences as jitter.
func (r *SynQuakeQuestResult) FrameVarianceImprovement() float64 {
	return stats.PercentImprovement(r.DefaultRateStd, r.GuidedRateStd)
}

// FrameTimeVarianceImprovement returns the % reduction in frame-TIME
// std-dev, the absolute-milliseconds view also reported for transparency.
func (r *SynQuakeQuestResult) FrameTimeVarianceImprovement() float64 {
	return stats.PercentImprovement(r.DefaultFrameStd, r.GuidedFrameStd)
}

// AbortRatioReduction returns the % reduction in aborts per commit
// (Figures 11b/12b).
func (r *SynQuakeQuestResult) AbortRatioReduction() float64 {
	return stats.PercentImprovement(r.DefaultAbortRatio, r.GuidedAbortRatio)
}

// Slowdown returns guided/default total time (Figures 11c/12c; < 1 is the
// paper's "negative slowdown", a speedup).
func (r *SynQuakeQuestResult) Slowdown() float64 {
	return stats.Slowdown(r.DefaultTotal, r.GuidedTotal)
}

// SynQuakeResult is the complete Section VIII experiment outcome.
type SynQuakeResult struct {
	Config SynQuakeConfig
	Model  *model.TSA
	Report model.Report // Table V's guidance metric
	Quests []SynQuakeQuestResult
}

// RunSynQuake trains the model on 4worst_case and 4moving and measures the
// default and guided servers on 4quadrants and 4center_spread6.
func RunSynQuake(cfg SynQuakeConfig) (*SynQuakeResult, error) {
	cfg = cfg.Normalize()
	res := &SynQuakeResult{Config: cfg}

	// Train.
	trainRT := libtm.New(libtm.Config{Interleave: cfg.Interleave})
	col := trace.NewCollector()
	trainRT.SetSink(col)
	var traces []*trace.Trace
	for _, q := range synquake.TrainingQuests(1024) {
		for run := 0; run < cfg.TrainRuns; run++ {
			g, err := synquake.NewGame(synquake.Config{
				Threads: cfg.Threads, Players: cfg.Players, Frames: cfg.TrainFrames,
				MapSize: 1024, Seed: cfg.Seed + uint64(run)*31, Interleave: cfg.Interleave,
			}, q, trainRT)
			if err != nil {
				return nil, fmt.Errorf("synquake train %s: %w", q.Name(), err)
			}
			if _, err := g.Run(); err != nil {
				return nil, fmt.Errorf("synquake train %s run %d: %w", q.Name(), run, err)
			}
			if err := g.Validate(); err != nil {
				return nil, fmt.Errorf("synquake train %s run %d: %w", q.Name(), run, err)
			}
			traces = append(traces, col.Finalize())
		}
	}
	res.Model = model.BuildFromTraces(cfg.Threads, traces)
	res.Report = model.DefaultAnalyzer().Analyze(res.Model)

	// Measure both test quests.
	table := model.Compile(res.Model, cfg.Tfactor)
	for _, q := range synquake.TestQuests(1024) {
		qr := SynQuakeQuestResult{Quest: q.Name()}

		// Each side is measured over MeasureRuns paired runs; the reported
		// frame-time std-dev, abort ratio and total time are means over
		// runs, following the paper's 20-run averaging protocol.
		run := func(guided bool) (frameStd, rateStd, abortRatio, total float64, err error) {
			for rep := 0; rep < cfg.MeasureRuns; rep++ {
				rt := libtm.New(libtm.Config{Interleave: cfg.Interleave})
				if guided {
					opts := []guide.Option{guide.WithTelemetry(rt.Telemetry())}
					if cfg.GateRetries > 0 {
						opts = append(opts, guide.WithGateRetries(cfg.GateRetries))
					}
					ctrl := guide.NewController(table, opts...)
					rt.SetSink(ctrl)
					rt.SetGate(ctrl)
				}
				g, err := synquake.NewGame(synquake.Config{
					Threads: cfg.Threads, Players: cfg.Players, Frames: cfg.TestFrames,
					MapSize: 1024, Seed: cfg.Seed + 777 + uint64(rep)*101, Interleave: cfg.Interleave,
				}, q, rt)
				if err != nil {
					return 0, 0, 0, 0, err
				}
				r, err := g.Run()
				if err != nil {
					return 0, 0, 0, 0, err
				}
				if err := g.Validate(); err != nil {
					return 0, 0, 0, 0, err
				}
				sd, err := stats.StdDev(r.FrameTimes)
				if err != nil {
					return 0, 0, 0, 0, err
				}
				rates := make([]float64, len(r.FrameTimes))
				for i, ft := range r.FrameTimes {
					if ft > 0 {
						rates[i] = 1 / ft
					}
				}
				rsd, err := stats.StdDev(rates)
				if err != nil {
					return 0, 0, 0, 0, err
				}
				frameStd += sd
				rateStd += rsd
				abortRatio += r.AbortRatio()
				total += r.TotalTime()
			}
			n := float64(cfg.MeasureRuns)
			return frameStd / n, rateStd / n, abortRatio / n, total / n, nil
		}

		var err error
		if qr.DefaultFrameStd, qr.DefaultRateStd, qr.DefaultAbortRatio, qr.DefaultTotal, err = run(false); err != nil {
			return nil, fmt.Errorf("synquake %s default: %w", q.Name(), err)
		}
		if qr.GuidedFrameStd, qr.GuidedRateStd, qr.GuidedAbortRatio, qr.GuidedTotal, err = run(true); err != nil {
			return nil, fmt.Errorf("synquake %s guided: %w", q.Name(), err)
		}
		res.Quests = append(res.Quests, qr)
	}
	return res, nil
}

// WriteTableV prints the SynQuake guidance metric (Table V).
func (r *SynQuakeResult) WriteTableV(w io.Writer) {
	fmt.Fprintln(w, "TABLE V: SYNQUAKE GUIDANCE METRIC (LOWER IS BETTER)")
	fmt.Fprintf(w, "%-12s %d threads\n", "Application", r.Config.Threads)
	fmt.Fprintf(w, "%-12s %.0f   (states: %d, guidable: %v)\n",
		"SynQuake", r.Report.Metric, r.Model.NumStates(), r.Report.Guidable)
}

// WriteFigures prints the three panels for each test quest (Figures 11 and
// 12).
func (r *SynQuakeResult) WriteFigures(w io.Writer) {
	for _, q := range r.Quests {
		fig := "FIG 11"
		if q.Quest == "4center_spread6" {
			fig = "FIG 12"
		}
		fmt.Fprintf(w, "%s (%s), %d threads:\n", fig, q.Quest, r.Config.Threads)
		fmt.Fprintf(w, "  (a) frame-rate variance improvement: %+.1f%% (fps std %.0f -> %.0f; time std %.3fms -> %.3fms, %+.1f%%)\n",
			q.FrameVarianceImprovement(), q.DefaultRateStd, q.GuidedRateStd,
			q.DefaultFrameStd*1e3, q.GuidedFrameStd*1e3, q.FrameTimeVarianceImprovement())
		fmt.Fprintf(w, "  (b) abort-ratio reduction:           %+.1f%% (%.3f -> %.3f)\n",
			q.AbortRatioReduction(), q.DefaultAbortRatio, q.GuidedAbortRatio)
		fmt.Fprintf(w, "  (c) slowdown:                        %.2fx (total %.2fs -> %.2fs)\n",
			q.Slowdown(), q.DefaultTotal, q.GuidedTotal)
	}
}
