package harness

import (
	"encoding/csv"
	"strings"
	"testing"

	"gstm/internal/stamp"
)

// smallCfg keeps harness tests fast: few runs on small inputs.
func smallCfg(threads int) Config {
	return Config{
		Threads:    threads,
		TrainRuns:  3,
		Runs:       4,
		TrainSize:  stamp.Small,
		TestSize:   stamp.Small,
		Interleave: 6,
		Tfactor:    4,
		Seed:       42,
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Threads != 8 || c.TrainRuns != 20 || c.Runs != 20 || c.Tfactor != 4 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	custom := Config{Threads: 4, TrainRuns: 2, Runs: 3, Tfactor: 6, Interleave: -1}.Normalize()
	if custom.Threads != 4 || custom.TrainRuns != 2 || custom.Runs != 3 || custom.Tfactor != 6 {
		t.Fatalf("explicit values clobbered: %+v", custom)
	}
	if custom.Interleave != -1 {
		t.Fatalf("explicit no-interleave clobbered: %+v", custom)
	}
}

func TestRunBenchmarkKMeansEndToEnd(t *testing.T) {
	w, err := stamp.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBenchmark(w, smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.App != "kmeans" {
		t.Fatalf("App = %q", res.App)
	}
	if res.Model.NumStates() == 0 {
		t.Fatal("empty model")
	}
	if len(res.Default.ThreadStd) != 4 || len(res.Guided.ThreadStd) != 4 {
		t.Fatalf("thread std lengths: %d/%d", len(res.Default.ThreadStd), len(res.Guided.ThreadStd))
	}
	if res.Default.NonDeterminism == 0 {
		t.Fatal("default side saw no states")
	}
	if res.Default.Commits == 0 || res.Guided.Commits == 0 {
		t.Fatal("sides recorded no commits")
	}
	if len(res.Default.ProgramTimes) != 4 {
		t.Fatalf("program times = %d", len(res.Default.ProgramTimes))
	}
	if s := res.Slowdown(); s <= 0 {
		t.Fatalf("Slowdown = %v", s)
	}
	if vi := res.VarianceImprovement(); len(vi) != 4 {
		t.Fatalf("variance improvement per thread = %d entries", len(vi))
	}
}

func TestSuiteReportRendersAllSections(t *testing.T) {
	w, err := stamp.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBenchmark(w, smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	suite := NewSuite()
	suite.Add(res)
	out := suite.FormatAll()
	for _, want := range []string{
		"TABLE I", "TABLE III", "TABLE IV",
		"FIG (variance)", "FIG (abort tails)", "FIG 9", "FIG 10", "SUMMARY",
		"ssca2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if suite.Get("ssca2", 2) != res {
		t.Fatal("Get did not return stored result")
	}
	if suite.Get("nope", 2) != nil {
		t.Fatal("Get returned result for unknown app")
	}
}

func TestPairedSeedsGiveIdenticalInputs(t *testing.T) {
	// The default and guided sides must see the same per-run inputs: the
	// harness pairs seeds. Detect via deterministic commit counts of a
	// conflict-free workload (ssca2's commit count is input-determined).
	w, err := stamp.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBenchmark(w, smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Default.Commits != res.Guided.Commits {
		t.Fatalf("sides diverged: %d vs %d commits", res.Default.Commits, res.Guided.Commits)
	}
}

func TestMeasureSchedulerWithPolicies(t *testing.T) {
	w, err := stamp.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(2)
	cfg.Runs = 2
	for name, factory := range BuiltinPolicies() {
		side, err := MeasureScheduler(w, cfg, factory)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if side.Commits == 0 {
			t.Fatalf("%s: no commits", name)
		}
		if len(side.ProgramTimes) != cfg.Runs {
			t.Fatalf("%s: %d program times", name, len(side.ProgramTimes))
		}
	}
}

func TestComparePoliciesProducesAllRows(t *testing.T) {
	w, err := stamp.ByName("kmeans")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg(2)
	cfg.TrainRuns, cfg.Runs = 2, 2
	pc, err := ComparePolicies(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"default": true, "polite": true, "karma": true,
		"greedy": true, "roundrobin": true, "guided": true}
	for _, row := range pc.Rows {
		if !want[row.Policy] {
			t.Fatalf("unexpected policy row %q", row.Policy)
		}
		delete(want, row.Policy)
		if row.Side == nil || row.Side.Commits == 0 {
			t.Fatalf("policy %q has empty side", row.Policy)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing policy rows: %v", want)
	}
	var sb strings.Builder
	pc.Write(&sb)
	if !strings.Contains(sb.String(), "POLICY COMPARISON") {
		t.Fatal("report header missing")
	}
}

func TestWriteCSV(t *testing.T) {
	w, err := stamp.ByName("ssca2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBenchmark(w, smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	suite := NewSuite()
	suite.Add(res)
	var sb strings.Builder
	if err := suite.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, sb.String())
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want header + 1", len(rows))
	}
	if rows[1][0] != "ssca2" || rows[1][1] != "2" {
		t.Fatalf("data row = %v", rows[1])
	}
	if len(rows[0]) != len(rows[1]) {
		t.Fatal("header/data width mismatch")
	}
}

func TestSideResultAccessors(t *testing.T) {
	side := &SideResult{
		ProgramTimes: []float64{1, 2, 3},
		Commits:      10,
		Aborts:       5,
	}
	if got := side.MeanProgramTime(); got != 2 {
		t.Fatalf("MeanProgramTime = %v", got)
	}
	if got := side.AbortRatio(); got != 0.5 {
		t.Fatalf("AbortRatio = %v", got)
	}
	empty := &SideResult{}
	if empty.AbortRatio() != 0 {
		t.Fatal("zero-commit AbortRatio should be 0")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := &Result{
		Default: SideResult{
			ThreadStd:      []float64{2, 4},
			ProgramTimes:   []float64{10},
			NonDeterminism: 100,
		},
		Guided: SideResult{
			ThreadStd:      []float64{1, 1},
			ProgramTimes:   []float64{12},
			NonDeterminism: 40,
		},
	}
	vi := r.VarianceImprovement()
	if vi[0] != 50 || vi[1] != 75 {
		t.Fatalf("variance improvement = %v", vi)
	}
	if got := r.NonDeterminismReduction(); got != 60 {
		t.Fatalf("nd reduction = %v", got)
	}
	if got := r.Slowdown(); got != 1.2 {
		t.Fatalf("slowdown = %v", got)
	}
}

func TestRunSynQuakeEndToEnd(t *testing.T) {
	res, err := RunSynQuake(SynQuakeConfig{
		Threads: 2, Players: 32, TrainFrames: 10, TestFrames: 15, TrainRuns: 1,
		MeasureRuns: 2, Interleave: 6, Tfactor: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.NumStates() == 0 {
		t.Fatal("empty model")
	}
	if len(res.Quests) != 2 {
		t.Fatalf("quests = %d, want 2", len(res.Quests))
	}
	names := map[string]bool{}
	for _, q := range res.Quests {
		names[q.Quest] = true
		if q.DefaultFrameStd <= 0 || q.GuidedFrameStd <= 0 {
			t.Fatalf("%s: zero frame stds", q.Quest)
		}
		if q.DefaultRateStd <= 0 || q.GuidedRateStd <= 0 {
			t.Fatalf("%s: zero rate stds", q.Quest)
		}
		if q.DefaultTotal <= 0 || q.GuidedTotal <= 0 {
			t.Fatalf("%s: zero totals", q.Quest)
		}
	}
	if !names["4quadrants"] || !names["4center_spread6"] {
		t.Fatalf("quests = %v", names)
	}
	var sb strings.Builder
	res.WriteTableV(&sb)
	res.WriteFigures(&sb)
	for _, want := range []string{"TABLE V", "FIG 11", "FIG 12", "frame-rate variance"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
}
