package harness

import (
	"fmt"
	"io"

	"gstm"
	"gstm/internal/cm"
	"gstm/internal/stamp"
	"gstm/internal/stats"
)

// PolicyFactory builds a transaction-start scheduler (and its event
// observer) for a measurement run; nil values mean unscheduled execution.
type PolicyFactory func(threads int) (gstm.Scheduler, gstm.Observer)

// MeasureScheduler measures one configuration of w under an arbitrary
// scheduling policy, using the same protocol as the default/guided sides
// of RunBenchmark.
func MeasureScheduler(w stamp.Workload, cfg Config, factory PolicyFactory) (*SideResult, error) {
	cfg = cfg.Normalize()
	sys := gstm.NewSystem(gstm.Config{Threads: cfg.Threads, Interleave: cfg.Interleave})
	if factory != nil {
		gate, obs := factory(cfg.Threads)
		sys.SetScheduler(gate, obs)
	}
	return measureSide(sys, w, cfg)
}

// PolicyComparison measures a workload under the built-in scheduling
// policies — unmanaged, the three contention managers from the paper's
// Related Work, and the DeSTM-style round-robin — and, separately, guided
// execution, so the paper's claim that "CMs … only lead to higher
// variance" can be tested directly (see bench_test.go and EXPERIMENTS.md).
type PolicyComparison struct {
	Workload string
	Config   Config
	Rows     []PolicyRow
}

// PolicyRow is one policy's measurements.
type PolicyRow struct {
	Policy string
	Side   *SideResult
}

// BuiltinPolicies returns the named non-guidance policies.
func BuiltinPolicies() map[string]PolicyFactory {
	return map[string]PolicyFactory{
		"default": nil,
		"polite": func(int) (gstm.Scheduler, gstm.Observer) {
			p := cm.NewPolite(0)
			return p, p
		},
		"karma": func(int) (gstm.Scheduler, gstm.Observer) {
			k := cm.NewKarma(0, 0)
			return k, k
		},
		"greedy": func(int) (gstm.Scheduler, gstm.Observer) {
			g := cm.NewGreedy(0)
			return g, g
		},
		"roundrobin": func(threads int) (gstm.Scheduler, gstm.Observer) {
			rr := cm.NewRoundRobin(threads, 0)
			return rr, rr
		},
	}
}

// policyOrder fixes the report row order.
var policyOrder = []string{"default", "polite", "karma", "greedy", "roundrobin", "guided"}

// ComparePolicies runs the comparison, including a guided row trained per
// RunBenchmark's protocol.
func ComparePolicies(w stamp.Workload, cfg Config) (*PolicyComparison, error) {
	cfg = cfg.Normalize()
	out := &PolicyComparison{Workload: w.Name(), Config: cfg}

	builtin := BuiltinPolicies()
	for _, name := range policyOrder {
		if name == "guided" {
			res, err := RunBenchmark(w, cfg)
			if err != nil {
				return nil, fmt.Errorf("policy guided: %w", err)
			}
			g := res.Guided
			out.Rows = append(out.Rows, PolicyRow{Policy: "guided", Side: &g})
			continue
		}
		factory := builtin[name]
		side, err := MeasureScheduler(w, cfg, factory)
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", name, err)
		}
		out.Rows = append(out.Rows, PolicyRow{Policy: name, Side: side})
	}
	return out, nil
}

// Write renders the comparison: mean per-thread execution-time std-dev,
// non-determinism, abort ratio and mean program time per policy.
func (pc *PolicyComparison) Write(w io.Writer) {
	fmt.Fprintf(w, "POLICY COMPARISON (%s, %d threads): per-thread time stddev / non-determinism / abort ratio / mean time\n",
		pc.Workload, pc.Config.Threads)
	var base float64
	for _, row := range pc.Rows {
		meanStd := stats.Mean(row.Side.ThreadStd)
		meanTime := row.Side.MeanProgramTime()
		if row.Policy == "default" {
			base = meanTime
		}
		slow := 0.0
		if base > 0 {
			slow = meanTime / base
		}
		fmt.Fprintf(w, "  %-10s stddev=%8.3fms  nd=%5d  aborts/commit=%6.3f  time=%8.2fms (%.2fx)\n",
			row.Policy, meanStd*1e3, row.Side.NonDeterminism,
			row.Side.AbortRatio(), meanTime*1e3, slow)
	}
}
