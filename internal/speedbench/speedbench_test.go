package speedbench

import "testing"

// TestRunShape runs a miniature sweep and checks the report's structure:
// every (engine, workload, cores) cell present with fixed-work-consistent
// counters, every speedup cell carrying one ratio per round. The real
// numbers come from cmd/gstm-loadgen -speed-bench; this keeps the
// harness itself race-clean and honest.
func TestRunShape(t *testing.T) {
	cfg := Config{
		Cores:      []int{1, 2},
		Cells:      256,
		TxnsPerRun: 800,
		Runs:       2,
	}
	rep := Run(cfg)

	if want := 2 * 3 * len(cfg.Cores); len(rep.Points) != want {
		t.Fatalf("points = %d, want %d", len(rep.Points), want)
	}
	for _, pt := range rep.Points {
		if len(pt.Runs) != cfg.Runs {
			t.Errorf("%s/%s/%d: %d runs, want %d", pt.Engine, pt.Workload, pt.Cores, len(pt.Runs), cfg.Runs)
		}
		if pt.OpsPerSec <= 0 {
			t.Errorf("%s/%s/%d: ops/sec = %v, want > 0", pt.Engine, pt.Workload, pt.Cores, pt.OpsPerSec)
		}
		if pt.Commits == 0 {
			t.Errorf("%s/%s/%d: no commits recorded", pt.Engine, pt.Workload, pt.Cores)
		}
	}

	if want := 3 * len(cfg.Cores); len(rep.Speedups) != want {
		t.Fatalf("speedups = %d, want %d", len(rep.Speedups), want)
	}
	for _, sp := range rep.Speedups {
		if len(sp.RunRatios) != cfg.Runs {
			t.Errorf("%s/%d: %d ratios, want %d", sp.Workload, sp.Cores, len(sp.RunRatios), cfg.Runs)
		}
		if sp.Ratio <= 0 {
			t.Errorf("%s/%d: ratio = %v, want > 0", sp.Workload, sp.Cores, sp.Ratio)
		}
	}
}
