// Package speedbench measures the per-access cost of the TL2 engine's
// hot path: the unboxed slot protocol over per-location lock words
// against the same protocol over the striped lock table (the two engine
// modes the serving stack actually deploys, now that the any-boxed
// protocol is gone). The sweep crosses engine variants with workload
// mixes and GOMAXPROCS values and runs fixed work per point so
// throughput is comparable.
//
// The per-location-vs-striped ratio — the number the acceptance gate
// reads — is measured by fine-grained interleaving: both engines stay
// live for a whole round and execute their fixed work as many small
// alternating slices (ABBA order), so any external slowdown longer than
// one slice (co-tenant CPU steal, frequency shifts, page-cache storms)
// hits both engines nearly equally and divides out of the per-round
// elapsed-time ratio. Sub-slice noise averages over the slice count. On
// a shared two-core box, back-to-back whole runs measure the neighbors
// as much as the engines — wall-clock throughput swings severalfold with
// bursts both longer and shorter than a run — and the kernel's
// per-process CPU clock is too coarse (scheduler-tick resolution) to
// resolve the deltas under test, so slice interleaving is what actually
// isolates protocol cost. It backs cmd/gstm-loadgen's -speed-bench flag,
// which writes the report as BENCH_speed.json.
package speedbench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gstm/internal/tl2"
	"gstm/internal/txid"
)

// Engine variants under measurement.
const (
	EngineUnboxed = "unboxed"         // slot protocol, per-location lock words
	EngineStriped = "unboxed+stripes" // slot protocol over the striped lock table
)

// Workload mixes. Every transaction performs exactly accessesPerTxn
// transactional operations regardless of mix, so ops/sec stays
// comparable across workloads. Reads sweep the whole array; writes land
// in a worker-private partition (see newBench). Mixed uses the
// Synchrobench-style update ratio: 90% read-only transactions, 10%
// update transactions of 31 reads + 1 write.
const (
	WorkloadReadOnly   = "read-only"   // 32 reads on the read-only fast path
	WorkloadMixed      = "mixed"       // 90% read-only txns, 10% update txns
	WorkloadWriteHeavy = "write-heavy" // 16 read-modify-write pairs
)

// accessesPerTxn is sized so transactions are access-dominated rather
// than commit-dominated: the sweep measures per-access protocol cost, and
// at 8 accesses the (engine-identical) commit sequence is most of the
// transaction, diluting the very delta under test below machine noise.
const accessesPerTxn = 32

// slicesPerRun is how many alternating slices one paired round is cut
// into. More slices shrink the noise window each engine can see alone;
// fewer slices amortize the per-slice goroutine spawn/join barrier
// (which both engines pay identically, so it cancels from the ratio
// either way).
const slicesPerRun = 32

// stripedFloor is the acceptance bound: the striped table trades
// per-location lock words for cache-compact shared stripes and may pay
// for the aliasing, but on the protocol-dominated workloads it must stay
// within 25% of the per-location engine (ratio >= 0.75) or the trade is
// mis-tuned.
const stripedFloor = 0.75

// Config parameterizes the sweep. The zero value is usable; normalize
// fills defaults tuned so each timed section runs long enough to average
// scheduler jitter while the full matrix stays under a few minutes on a
// two-core CI box.
type Config struct {
	Cores       []int `json:"cores"`        // GOMAXPROCS values swept (default 1,2,4,8)
	Cells       int   `json:"cells"`        // shared array length (default 4096)
	TxnsPerRun  int   `json:"txns_per_run"` // fixed total transactions per run, split across workers (default 120k)
	Runs        int   `json:"runs"`         // measured rounds per point; median reported (default 17)
	LockStripes int   `json:"lock_stripes"` // stripe count for the striped engine (default 256)

	Progress io.Writer `json:"-"` // optional per-point progress lines
}

func (cfg Config) normalize() Config {
	if len(cfg.Cores) == 0 {
		cfg.Cores = []int{1, 2, 4, 8}
	}
	if cfg.Cells <= 0 {
		cfg.Cells = 4096
	}
	if cfg.TxnsPerRun <= 0 {
		// Sized so each round's timed work runs on the order of 100ms even
		// on the fastest engine, giving every slice enough transactions to
		// dominate the spawn/join barrier around it.
		cfg.TxnsPerRun = 120_000
	}
	if cfg.Runs <= 0 {
		// Enough rounds for a stable median of the per-round interleaved
		// time ratios.
		cfg.Runs = 17
	}
	if cfg.LockStripes <= 0 {
		cfg.LockStripes = 256
	}
	return cfg
}

// Point is one (engine, workload, cores) cell of the matrix.
type Point struct {
	Engine   string `json:"engine"`
	Workload string `json:"workload"`
	Cores    int    `json:"cores"` // GOMAXPROCS and worker count

	// OpsPerSec is the median over rounds of transactional accesses per
	// wall-clock second (reads + writes, accessesPerTxn per transaction),
	// counting only time inside the measured slices. Absolute numbers
	// still carry whatever the neighbors were doing that round — compare
	// engines through Report.Speedups, which is what the interleaving
	// protects.
	OpsPerSec float64   `json:"ops_per_sec"`
	Runs      []float64 `json:"runs_ops_per_sec"`

	// Engine counters summed over the measured rounds.
	Commits          uint64 `json:"commits"`
	Aborts           uint64 `json:"aborts"`
	StripeCollisions uint64 `json:"stripe_collisions"`
}

// Report is the full sweep, written to BENCH_speed.json.
type Report struct {
	Description string  `json:"description"`
	Config      Config  `json:"config"`
	Points      []Point `json:"points"`

	// Speedups holds, per (workload, cores) cell, the striped-over-
	// per-location ratio: the median over rounds of (per-location elapsed
	// / striped elapsed) for identical fixed work executed as interleaved
	// slices within the same noise window. >1 means the striped table was
	// faster that cell.
	Speedups []Speedup `json:"speedups"`

	// StripedWithinBound is the acceptance flag: on the read-only and
	// mixed workloads at every swept core count, the striped engine stays
	// within stripedFloor of the per-location engine.
	StripedWithinBound bool `json:"striped_within_bound"`
}

// Speedup is one cell's striped-over-per-location ratio.
type Speedup struct {
	Workload string `json:"workload"`
	Cores    int    `json:"cores"`

	// Ratio is the median of RunRatios; >1 means striped is faster.
	Ratio float64 `json:"striped_over_unboxed"`

	// RunRatios are the per-round interleaved time ratios
	// (per-location/striped); their spread is the sweep's residual noise
	// floor.
	RunRatios []float64 `json:"run_ratios"`
}

// Run executes the sweep.
func Run(cfg Config) Report {
	cfg = cfg.normalize()
	rep := Report{
		Description: "Engine hot-path sweep: unboxed slot protocol over per-location lock words vs the same protocol over the striped lock table, across GOMAXPROCS and workload mixes. Fixed transactional work per point; every transaction performs 32 accesses so per-access protocol cost, not the engine-identical commit sequence, dominates; mixed is a Synchrobench-style 10% update ratio (90% read-only transactions, 10% of 31 reads + 1 write). Speedups are medians over rounds of per-round elapsed-time ratios with both engines executing as fine-grained interleaved slices (ABBA order) inside the same noise window, so machine noise longer than a slice divides out. Counters are summed over rounds.",
		Config:      cfg,
	}
	engines := []string{EngineUnboxed, EngineStriped}
	workloads := []string{WorkloadReadOnly, WorkloadMixed, WorkloadWriteHeavy}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	points := make(map[[3]string]*Point)
	addRound := func(eng, wl string, cores int, res result) {
		key := [3]string{eng, wl, fmt.Sprint(cores)}
		pt := points[key]
		if pt == nil {
			pt = &Point{Engine: eng, Workload: wl, Cores: cores}
			points[key] = pt
		}
		pt.Runs = append(pt.Runs, res.opsPerSec)
		pt.Commits += res.commits
		pt.Aborts += res.aborts
		pt.StripeCollisions += res.collisions
	}
	ratios := make(map[[2]string][]float64)

	for _, cores := range cfg.Cores {
		runtime.GOMAXPROCS(cores)
		for round := 0; round < cfg.Runs; round++ {
			for _, wl := range workloads {
				plainRes, stripedRes, ratio := measurePaired(wl, cores, cfg, uint64(round+1))
				addRound(EngineUnboxed, wl, cores, plainRes)
				addRound(EngineStriped, wl, cores, stripedRes)
				rk := [2]string{wl, fmt.Sprint(cores)}
				ratios[rk] = append(ratios[rk], ratio)
			}
		}
	}

	for _, cores := range cfg.Cores {
		for _, eng := range engines {
			for _, wl := range workloads {
				pt := points[[3]string{eng, wl, fmt.Sprint(cores)}]
				pt.OpsPerSec = median(pt.Runs)
				rep.Points = append(rep.Points, *pt)
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%-16s %-11s cores=%d  %10.0f ops/s  commits %d aborts %d collisions %d\n",
						pt.Engine, pt.Workload, pt.Cores, pt.OpsPerSec, pt.Commits, pt.Aborts, pt.StripeCollisions)
				}
			}
		}
	}

	rep.StripedWithinBound = true
	for _, cores := range cfg.Cores {
		for _, wl := range workloads {
			rr := ratios[[2]string{wl, fmt.Sprint(cores)}]
			sp := Speedup{Workload: wl, Cores: cores, Ratio: median(rr), RunRatios: rr}
			rep.Speedups = append(rep.Speedups, sp)
			if (wl == WorkloadReadOnly || wl == WorkloadMixed) && sp.Ratio < stripedFloor {
				rep.StripedWithinBound = false
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "speedup %-11s cores=%d  striped/per-location %.3fx\n", wl, cores, sp.Ratio)
			}
		}
	}
	return rep
}

type result struct {
	opsPerSec  float64
	commits    uint64
	aborts     uint64
	collisions uint64
}

// sink defeats dead-code elimination of the benchmark read loops.
var sink atomic.Int64

// bench is one engine's live benchmark state for a round: runtime, array
// and per-worker RNG streams persist across the round's slices so a
// slice resumes exactly where the previous one stopped.
type bench struct {
	engine   string
	workload string
	cores    int
	cfg      Config
	rt       *tl2.Runtime
	arr      *tl2.Array[int64]
	rngs     []uint64
	part     int // worker-private write partition length
}

func newBench(engine, workload string, cores int, cfg Config, round uint64) *bench {
	rcfg := tl2.Config{PrivateClock: true, Label: "speedbench"}
	if engine == EngineStriped {
		rcfg.LockStripes = cfg.LockStripes
	}
	b := &bench{
		engine:   engine,
		workload: workload,
		cores:    cores,
		cfg:      cfg,
		rt:       tl2.New(rcfg),
		arr:      tl2.NewArray[int64](cfg.Cells),
		rngs:     make([]uint64, cores),
	}
	// Writes land in a worker-private partition of the array: the sweep
	// measures per-access protocol cost, which both engines pay identically
	// per conflict too — so letting random write-write conflicts (and the
	// chaotic abort/retry schedules they cause on an oversubscribed box)
	// into the measurement only adds engine-independent noise. Reads still
	// sweep the whole array.
	b.part = cfg.Cells / cores
	if b.part <= 0 {
		b.part = 1
	}
	for w := range b.rngs {
		// splitmix-style per-worker seed so rounds and workers draw
		// distinct index streams deterministically.
		b.rngs[w] = (uint64(w+1)*0x9e3779b97f4a7c15 + round*0xbf58476d1ce4e5b9) | 1
	}
	return b
}

// runSlice executes txnsPerWorker transactions on every worker and
// returns the wall time of the whole slice (spawn to join).
func (b *bench) runSlice(txnsPerWorker int) float64 {
	wcfg := b.cfg
	wcfg.TxnsPerRun = txnsPerWorker
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < b.cores; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := b.rngs[w] // worker-local copy: no cross-worker cache-line sharing
			partLo := (w * b.part) % b.cfg.Cells
			worker(b.rt, b.arr, b.workload, w, wcfg, &rng, partLo, b.part)
			b.rngs[w] = rng
		}(w)
	}
	wg.Wait()
	return time.Since(start).Seconds()
}

// warmup runs a tenth of a round's work (Tx pool, caches, branch state),
// then forces a collection so construction garbage is never collected on
// a timed slice's clock, and resets the engine counters.
func (b *bench) warmup(perWorker int) {
	b.runSlice(perWorker/10 + 1)
	b.rt.ResetStats()
	runtime.GC()
}

func (b *bench) collect(opsRun float64, elapsed float64) result {
	commits, aborts := b.rt.Stats()
	snap := b.rt.Telemetry().Snapshot()
	res := result{
		commits:    commits,
		aborts:     aborts,
		collisions: snap.StripeCollisions,
	}
	if elapsed > 0 {
		res.opsPerSec = opsRun / elapsed
	}
	return res
}

// measurePaired runs one round of the per-location and striped engines
// side by side as alternating slices and returns both engines' results
// plus the round's per-location/striped elapsed-time ratio (>1 = striped
// faster).
func measurePaired(workload string, cores int, cfg Config, round uint64) (plainRes, stripedRes result, ratio float64) {
	pb := newBench(EngineUnboxed, workload, cores, cfg, round)
	sb := newBench(EngineStriped, workload, cores, cfg, round)

	perWorker := cfg.TxnsPerRun / cores
	if perWorker <= 0 {
		perWorker = 1
	}
	slices := slicesPerRun
	chunk := perWorker / slices
	if chunk <= 0 {
		chunk, slices = 1, perWorker
	}

	pb.warmup(perWorker)
	sb.warmup(perWorker)

	var tPlain, tStriped float64
	for s := 0; s < slices; s++ {
		// ABBA ordering: alternating which engine goes first in each pair
		// cancels any linear drift across the round.
		if s%2 == 0 {
			tPlain += pb.runSlice(chunk)
			tStriped += sb.runSlice(chunk)
		} else {
			tStriped += sb.runSlice(chunk)
			tPlain += pb.runSlice(chunk)
		}
	}

	ops := float64(cores) * float64(chunk*slices) * accessesPerTxn
	plainRes = pb.collect(ops, tPlain)
	stripedRes = sb.collect(ops, tStriped)
	if tStriped > 0 {
		ratio = tPlain / tStriped
	}
	return plainRes, stripedRes, ratio
}

// nextIdx advances the worker's xorshift stream and maps it to a cell
// index. Identical across engines so index-generation cost cancels out.
func nextIdx(rng *uint64, cells int) int {
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	return int(x % uint64(cells))
}

func worker(rt *tl2.Runtime, arr *tl2.Array[int64], workload string, w int, cfg Config, rng *uint64, partLo, part int) {
	thread, txn := txid.ThreadID(w), txid.TxnID(1)
	var total int64 // worker-local; one contended sink store per slice, not per txn
	switch workload {
	case WorkloadReadOnly:
		body := func(tx *tl2.Tx) error {
			var s int64
			for k := 0; k < accessesPerTxn; k++ {
				s += tl2.ReadAt(tx, arr, nextIdx(rng, cfg.Cells))
			}
			total += s
			return nil
		}
		for t := 0; t < cfg.TxnsPerRun; t++ {
			_ = rt.AtomicRO(thread, txn, body)
		}
	case WorkloadMixed:
		roBody := func(tx *tl2.Tx) error {
			var s int64
			for k := 0; k < accessesPerTxn; k++ {
				s += tl2.ReadAt(tx, arr, nextIdx(rng, cfg.Cells))
			}
			total += s
			return nil
		}
		upBody := func(tx *tl2.Tx) error {
			var s int64
			for k := 0; k < accessesPerTxn-1; k++ {
				s += tl2.ReadAt(tx, arr, nextIdx(rng, cfg.Cells))
			}
			tl2.WriteAt(tx, arr, partLo+int(*rng%uint64(part)), s)
			total += s
			return nil
		}
		for t := 0; t < cfg.TxnsPerRun; t++ {
			if t%10 == 0 {
				_ = rt.Atomic(thread, txn, upBody)
			} else {
				_ = rt.AtomicRO(thread, txn, roBody)
			}
		}
	default: // WorkloadWriteHeavy
		body := func(tx *tl2.Tx) error {
			for k := 0; k < accessesPerTxn/2; k++ {
				i := partLo + nextIdx(rng, part)
				tl2.WriteAt(tx, arr, i, tl2.ReadAt(tx, arr, i)+1)
			}
			return nil
		}
		for t := 0; t < cfg.TxnsPerRun; t++ {
			_ = rt.Atomic(thread, txn, body)
		}
	}
	sink.Store(total)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
