// Package libtm is a from-scratch implementation of the LibTM software
// transactional memory used by SynQuake (Lupei et al., PPoPP'10), which the
// paper ports its guided execution onto. The original LibTM is proprietary
// (the paper's artifact appendix notes it cannot be disclosed), so this
// implementation follows the published description:
//
//   - object-granularity conflict detection with visible readers: every
//     transactional read registers in the object's reader list;
//   - four conflict-detection modes, from fully pessimistic (read and
//     write locks acquired at access time) to fully optimistic (write
//     locks acquired at commit, reads proceed without blocking);
//   - two conflict-resolution policies for the writer/reader edge:
//     abort-readers (the committing writer dooms every registered reader)
//     and wait-for-readers (the writer waits for readers to drain).
//
// The paper's experiments use fully-optimistic detection with
// abort-readers resolution; the other modes exist for completeness and are
// covered by tests and ablation benches.
//
// Like internal/tl2, the runtime exposes the commit/abort event stream and
// a start gate so the tracing and guidance layers plug in unchanged —
// "guided STM ported for our experiments" (Section VIII).
package libtm

import (
	"sync/atomic"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// ReadMode selects how reads detect conflicts.
type ReadMode int

// Read modes.
const (
	// ReadOptimistic registers the reader and proceeds even when a writer
	// holds the object.
	ReadOptimistic ReadMode = iota
	// ReadPessimistic blocks (bounded) while a writer holds the object.
	ReadPessimistic
)

// WriteMode selects when write locks are acquired.
type WriteMode int

// Write modes.
const (
	// WriteCommitTime acquires write locks during commit (optimistic).
	WriteCommitTime WriteMode = iota
	// WriteEncounterTime acquires write locks at the first Write
	// (pessimistic); write-write conflicts surface immediately.
	WriteEncounterTime
)

// Resolution selects how a committing writer treats registered readers.
type Resolution int

// Resolution policies.
const (
	// AbortReaders dooms every conflicting reader (they abort and retry).
	AbortReaders Resolution = iota
	// WaitForReaders stalls the writer (bounded) until readers drain.
	WaitForReaders
)

// Config parameterizes a Runtime. The zero value is the paper's
// configuration: fully optimistic with abort-readers.
type Config struct {
	ReadMode   ReadMode
	WriteMode  WriteMode
	Resolution Resolution

	// MaxSpin bounds every wait loop (writer locks, reader drains) before
	// the waiter aborts itself, the deadlock-avoidance rule.
	MaxSpin int

	// Interleave, when positive, yields the processor with probability
	// 1/Interleave per transactional operation (see tl2.Config).
	Interleave int

	// RegistryCapacity sizes the wv→committer attribution ring.
	RegistryCapacity int
}

// Normalize returns cfg with defaults applied.
func (cfg Config) Normalize() Config {
	if cfg.MaxSpin <= 0 {
		cfg.MaxSpin = 64
	}
	if cfg.RegistryCapacity <= 0 {
		cfg.RegistryCapacity = 1 << 14
	}
	return cfg
}

// EventSink mirrors tl2.EventSink: the same tracing and guidance
// implementations satisfy both.
type EventSink interface {
	TxCommit(p txid.Pair, wv uint64, aborts int)
	TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool)
}

// Gate mirrors tl2.Gate.
type Gate interface {
	Arrive(p txid.Pair) telemetry.GateOutcome
}

// FaultInjector mirrors tl2.FaultInjector: the chaos-testing hook
// implemented by internal/faultinject. One injector value satisfies both
// engines' interfaces structurally.
type FaultInjector interface {
	// SpuriousAbort forces a cleanly-executed attempt to abort and retry.
	SpuriousAbort(p txid.Pair, attempt int) bool
	// CommitDelay returns extra scheduler yields inserted while the commit
	// holds its write locks.
	CommitDelay(p txid.Pair, attempt int) int
}

// seq is the package-global commit sequence for libtm runtimes (the
// analogue of tl2's global version clock; libtm itself versions objects per
// commit and only needs a global order for the event stream).
var seq atomic.Uint64
