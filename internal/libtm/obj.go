package libtm

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// objBase is the non-generic core of a transactional object: its writer
// lock, visible-reader list and the published value snapshot as a raw
// pointer (the same unboxed slot protocol as tl2's base — commit publishes
// a redo box with one pointer store, no apply closure, no interface hop).
// The reader list is guarded by a small mutex; LibTM's visible readers are
// inherently a shared structure and the experiments run on a single core,
// where a short critical section costs less than a lock-free multi-writer
// set.
type objBase struct {
	mu      sync.Mutex
	writer  *txState              // commit-lock holder, nil when free
	readers map[*txState]struct{} // registered active readers
	version atomic.Uint64
	slot    unsafe.Pointer // the current *T snapshot, loaded/stored atomically
}

// loadPtr atomically loads the published value snapshot.
func (b *objBase) loadPtr() unsafe.Pointer { return atomic.LoadPointer(&b.slot) }

// storePtr atomically publishes p as the new value snapshot.
func (b *objBase) storePtr(p unsafe.Pointer) { atomic.StorePointer(&b.slot, p) }

// Obj is a transactional object holding a value of type T, the
// object-granularity unit of LibTM conflict detection (SynQuake wraps each
// game entity and spatial cell in one).
type Obj[T any] struct {
	b objBase
}

// NewObj returns an object initialized to val.
func NewObj[T any](val T) *Obj[T] {
	o := &Obj[T]{}
	o.b.storePtr(unsafe.Pointer(&val))
	o.b.readers = make(map[*txState]struct{})
	return o
}

// Peek loads the current value non-transactionally (setup and verification
// only).
func (o *Obj[T]) Peek() T { return *(*T)(o.b.loadPtr()) }

// Reset stores val non-transactionally (setup only).
func (o *Obj[T]) Reset(val T) { o.b.storePtr(unsafe.Pointer(&val)) }

// LockState reports whether a writer currently holds the object and how
// many readers are registered. It is a diagnostic for tests and
// fault-injection sweeps: at any quiescent point both must be zero, or an
// abort path leaked a lock or registration.
func (o *Obj[T]) LockState() (writerHeld bool, readers int) {
	o.b.mu.Lock()
	defer o.b.mu.Unlock()
	return o.b.writer != nil, len(o.b.readers)
}

// registerReader adds tx to the object's visible-reader list. In
// pessimistic read mode it refuses while a writer holds the object; in
// optimistic mode it refuses only while the holder is inside its commit's
// resolve→publish window (txState.committing), which is what guarantees
// every registered reader of a pre-publish value is either doomed or
// waited for — a registration during the window could otherwise load a
// stale snapshot the resolution pass never saw.
func (b *objBase) registerReader(tx *txState, pessimistic bool) (ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.writer != nil && b.writer != tx {
		if pessimistic || b.writer.committing.Load() {
			return false
		}
	}
	b.readers[tx] = struct{}{}
	return true
}

// deregisterReader removes tx from the reader list.
func (b *objBase) deregisterReader(tx *txState) {
	b.mu.Lock()
	delete(b.readers, tx)
	b.mu.Unlock()
}

// tryLockWriter attempts to make tx the object's writer. It fails when
// another transaction holds the write lock.
func (b *objBase) tryLockWriter(tx *txState) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.writer != nil && b.writer != tx {
		return false
	}
	b.writer = tx
	return true
}

// unlockWriter releases tx's write lock if it holds it.
func (b *objBase) unlockWriter(tx *txState) {
	b.mu.Lock()
	if b.writer == tx {
		b.writer = nil
	}
	b.mu.Unlock()
}

// resolveReaders applies the writer/reader resolution policy for writer tx:
// with abortReaders it dooms every other registered reader (recording tx's
// commit sequence as the cause) and reports success; with wait-for-readers
// it reports whether the reader list (excluding tx) is empty, leaving the
// waiting to the caller's bounded loop.
func (b *objBase) resolveReaders(tx *txState, abortReaders bool, wv uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for r := range b.readers {
		if r == tx {
			continue
		}
		if !abortReaders {
			return false
		}
		r.doom(wv, tx.self)
	}
	return true
}
