package libtm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// allConfigs enumerates the four detection modes × two resolutions.
func allConfigs() []Config {
	var out []Config
	for _, rm := range []ReadMode{ReadOptimistic, ReadPessimistic} {
		for _, wm := range []WriteMode{WriteCommitTime, WriteEncounterTime} {
			for _, res := range []Resolution{AbortReaders, WaitForReaders} {
				out = append(out, Config{ReadMode: rm, WriteMode: wm, Resolution: res, Interleave: 4})
			}
		}
	}
	return out
}

func cfgName(c Config) string {
	return fmt.Sprintf("r%d-w%d-res%d", c.ReadMode, c.WriteMode, c.Resolution)
}

func TestBasicReadWriteAllModes(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			rt := New(cfg)
			o := NewObj(10)
			if err := rt.Atomic(0, 0, func(tx *Tx) error {
				Write(tx, o, Read(tx, o)+5)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if got := o.Peek(); got != 15 {
				t.Fatalf("Peek = %d, want 15", got)
			}
		})
	}
}

func TestCounterUnderContentionAllModes(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		if cfg.ReadMode == ReadOptimistic && cfg.Resolution == WaitForReaders {
			// Known property of this combination: on a read-modify-write
			// hot spot, new optimistic readers keep registering while the
			// committing writer waits for the reader list to drain, so the
			// writer starves. SynQuake pairs optimistic reads with
			// abort-readers for exactly this reason.
			continue
		}
		t.Run(cfgName(cfg), func(t *testing.T) {
			rt := New(cfg)
			o := NewObj(0)
			const workers, per = 6, 150
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id txid.ThreadID) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := rt.Atomic(id, 0, func(tx *Tx) error {
							Write(tx, o, Read(tx, o)+1)
							return nil
						}); err != nil {
							t.Errorf("Atomic: %v", err)
							return
						}
					}
				}(txid.ThreadID(w))
			}
			wg.Wait()
			if got := o.Peek(); got != workers*per {
				t.Fatalf("counter = %d, want %d", got, workers*per)
			}
			commits, _ := rt.Stats()
			if commits != workers*per {
				t.Fatalf("commits = %d", commits)
			}
		})
	}
}

func TestUserErrorDiscardsWrites(t *testing.T) {
	rt := New(Config{})
	o := NewObj(1)
	sentinel := errors.New("nope")
	err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, o, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if o.Peek() != 1 {
		t.Fatal("aborted write leaked")
	}
	// Locks and reader registrations must be released: a following
	// transaction must succeed promptly.
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, o, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 2 {
		t.Fatal("follow-up write failed")
	}
}

func TestNoTornReads(t *testing.T) {
	// Two objects updated together must never be observed unequal.
	rt := New(Config{Interleave: 2})
	a, b := NewObj(0), NewObj(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	var torn int
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = rt.Atomic(0, 0, func(tx *Tx) error {
				Write(tx, a, i)
				Write(tx, b, i)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		defer close(stop)
		for j := 0; j < 1500; j++ {
			_ = rt.Atomic(1, 1, func(tx *Tx) error {
				if Read(tx, a) != Read(tx, b) {
					torn++
				}
				return nil
			})
		}
	}()
	wg.Wait()
	if torn != 0 {
		t.Fatalf("observed %d torn reads", torn)
	}
}

func TestAbortReadersDoomsReader(t *testing.T) {
	rt := New(Config{Resolution: AbortReaders})
	o := NewObj(0)
	readerStarted := make(chan struct{})
	writerDone := make(chan struct{})
	var readerAttempts int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rt.Atomic(1, 1, func(tx *Tx) error {
			readerAttempts++
			_ = Read(tx, o)
			if readerAttempts == 1 {
				close(readerStarted)
				<-writerDone // stay registered while the writer commits
			}
			return nil
		})
	}()
	<-readerStarted
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, o, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(writerDone)
	wg.Wait()
	if readerAttempts < 2 {
		t.Fatalf("reader attempts = %d, want >= 2 (should have been doomed)", readerAttempts)
	}
	_, aborts := rt.Stats()
	if aborts == 0 {
		t.Fatal("no abort recorded")
	}
}

func TestWaitForReadersWriterWaits(t *testing.T) {
	rt := New(Config{Resolution: WaitForReaders, MaxSpin: 1 << 20})
	o := NewObj(0)
	readerIn := make(chan struct{})
	releaseReader := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	first := true
	go func() {
		defer wg.Done()
		_ = rt.Atomic(1, 1, func(tx *Tx) error {
			_ = Read(tx, o)
			if first {
				first = false
				close(readerIn)
				<-releaseReader
			}
			return nil
		})
	}()
	<-readerIn
	done := make(chan struct{})
	go func() {
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, o, 7)
			return nil
		})
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("writer committed while a reader was registered")
	default:
	}
	close(releaseReader)
	<-done
	wg.Wait()
	if o.Peek() != 7 {
		t.Fatal("write lost")
	}
}

type countSink struct {
	mu      sync.Mutex
	commits int
	aborts  int
	known   int
}

func (s *countSink) TxCommit(p txid.Pair, wv uint64, aborts int) {
	s.mu.Lock()
	s.commits++
	s.mu.Unlock()
}

func (s *countSink) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	s.mu.Lock()
	s.aborts++
	if byKnown {
		s.known++
	}
	s.mu.Unlock()
}

func TestSinkReceivesEvents(t *testing.T) {
	rt := New(Config{Interleave: 3})
	sink := &countSink{}
	rt.SetSink(sink)
	o := NewObj(0)
	const workers, per = 6, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(id, 0, func(tx *Tx) error {
					Write(tx, o, Read(tx, o)+1)
					return nil
				})
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	if sink.commits != workers*per {
		t.Fatalf("sink commits = %d", sink.commits)
	}
	commits, aborts := rt.Stats()
	if int(commits) != sink.commits || int(aborts) != sink.aborts {
		t.Fatalf("stats %d/%d vs sink %d/%d", commits, aborts, sink.commits, sink.aborts)
	}
	if sink.aborts > 0 && sink.known == 0 {
		t.Error("no abort had known attribution (dooming should attribute exactly)")
	}
}

type recordGate struct{ n int }

func (g *recordGate) Arrive(p txid.Pair) telemetry.GateOutcome {
	g.n++
	return telemetry.GateHold
}

func TestGateConsulted(t *testing.T) {
	rt := New(Config{})
	g := &recordGate{}
	rt.SetGate(g)
	o := NewObj(0)
	for i := 0; i < 5; i++ {
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, o, i)
			return nil
		})
	}
	if g.n < 5 {
		t.Fatalf("gate consulted %d times", g.n)
	}
	rt.SetGate(nil)
	before := g.n
	_ = rt.Atomic(0, 0, func(tx *Tx) error { return nil })
	if g.n != before {
		t.Fatal("gate consulted after removal")
	}
}

func TestEncounterTimeWriteBlocksSecondWriter(t *testing.T) {
	rt := New(Config{WriteMode: WriteEncounterTime, MaxSpin: 4})
	o := NewObj(0)
	inWrite := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	first := true
	go func() {
		defer wg.Done()
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, o, 1)
			if first {
				first = false
				close(inWrite)
				<-release
			}
			return nil
		})
	}()
	<-inWrite
	// The second writer must abort on the held lock (bounded spin) rather
	// than buffer freely: encounter-time locking surfaces write-write
	// conflicts at the Write call. Bail out via user error after observing
	// a few aborted attempts so the test terminates.
	errSeen := errors.New("seen enough attempts")
	err := rt.Atomic(1, 1, func(tx *Tx) error {
		if tx.Attempt() >= 3 {
			return errSeen
		}
		Write(tx, o, 2) // aborts while the lock is held elsewhere
		return errSeen
	})
	if !errors.Is(err, errSeen) {
		t.Fatalf("err = %v", err)
	}
	_, aborts := rt.Stats()
	if aborts == 0 {
		t.Fatal("second writer never aborted on the held write lock")
	}
	close(release)
	wg.Wait()
}

func TestBankTransfersAllModes(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		if cfg.ReadMode == ReadOptimistic && cfg.Resolution == WaitForReaders {
			continue // writer starvation; see TestCounterUnderContentionAllModes
		}
		t.Run(cfgName(cfg), func(t *testing.T) {
			rt := New(cfg)
			const n = 8
			accounts := make([]*Obj[int], n)
			for i := range accounts {
				accounts[i] = NewObj(100)
			}
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(id txid.ThreadID) {
					defer wg.Done()
					rng := uint64(id)*2654435761 + 7
					next := func(m int) int {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						return int(rng % uint64(m))
					}
					for i := 0; i < 100; i++ {
						from, to := next(n), next(n)
						if from == to {
							continue
						}
						if err := rt.Atomic(id, 0, func(tx *Tx) error {
							bf := Read(tx, accounts[from])
							bt := Read(tx, accounts[to])
							Write(tx, accounts[from], bf-1)
							Write(tx, accounts[to], bt+1)
							return nil
						}); err != nil {
							t.Errorf("Atomic: %v", err)
							return
						}
					}
				}(txid.ThreadID(w))
			}
			wg.Wait()
			total := 0
			for _, a := range accounts {
				total += a.Peek()
			}
			if total != n*100 {
				t.Fatalf("total = %d, want %d", total, n*100)
			}
		})
	}
}
