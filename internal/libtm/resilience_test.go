package libtm

import (
	"context"
	"errors"
	"testing"
	"time"

	"gstm/internal/retry"
	"gstm/internal/txid"
)

type alwaysAbort struct{}

func (alwaysAbort) SpuriousAbort(txid.Pair, int) bool { return true }
func (alwaysAbort) CommitDelay(txid.Pair, int) int    { return 0 }

// TestPanicReleasesLocksAndReaders: a panic out of the body must release
// the encounter-time write lock and the visible-reader registration before
// propagating, and must not pool a dirty Tx.
func TestPanicReleasesLocksAndReaders(t *testing.T) {
	rt := New(Config{WriteMode: WriteEncounterTime})
	o := NewObj(0)
	r := NewObj(0)

	func() {
		defer func() {
			if rec := recover(); rec != "boom" {
				t.Fatalf("panic value = %v, want boom", rec)
			}
		}()
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			_ = Read(tx, r) // registers as visible reader
			Write(tx, o, 1) // takes encounter-time write lock
			panic("boom")
		})
	}()

	if held, readers := o.LockState(); held || readers != 0 {
		t.Fatalf("written object leaked state: writerHeld=%v readers=%d", held, readers)
	}
	if held, readers := r.LockState(); held || readers != 0 {
		t.Fatalf("read object leaked registration: writerHeld=%v readers=%d", held, readers)
	}
	// Object must still be writable by another transaction, promptly.
	done := make(chan error, 1)
	go func() {
		done <- rt.Atomic(1, 1, func(tx *Tx) error {
			Write(tx, o, Read(tx, o)+41)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow-up transaction failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow-up transaction hung on leaked write lock")
	}
	if got := o.Peek(); got != 41 {
		t.Fatalf("panicked write leaked: got %d, want 41", got)
	}
}

// TestAtomicCtxCanceled covers the context path: pre-canceled contexts
// return immediately, and cancellation breaks an injected retry livelock.
func TestAtomicCtxCanceled(t *testing.T) {
	rt := New(Config{})
	o := NewObj(0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.AtomicCtx(ctx, 0, 0, func(tx *Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	rt.SetFaultInjector(alwaysAbort{})
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- rt.AtomicCtx(ctx2, 0, 0, func(tx *Tx) error {
			Write(tx, o, Read(tx, o)+1)
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AtomicCtx did not stop after cancel")
	}
	if held, readers := o.LockState(); held || readers != 0 {
		t.Fatalf("canceled transaction leaked: writerHeld=%v readers=%d", held, readers)
	}
	if _, canceled := rt.ResilienceStats(); canceled != 2 {
		_, c := rt.ResilienceStats()
		t.Fatalf("canceled counter = %d, want 2", c)
	}
}

// TestAtomicCtxRetryBudget mirrors the tl2 budget semantics on LibTM.
func TestAtomicCtxRetryBudget(t *testing.T) {
	rt := New(Config{})
	rt.SetFaultInjector(alwaysAbort{})
	o := NewObj(0)

	const budget = 3
	attempts := 0
	err := rt.AtomicCtx(retry.WithBudget(context.Background(), budget), 0, 0, func(tx *Tx) error {
		attempts++
		Write(tx, o, Read(tx, o)+1)
		return nil
	})
	if !errors.Is(err, retry.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if attempts != budget {
		t.Fatalf("body ran %d times, want %d", attempts, budget)
	}
	if exceeded, _ := rt.ResilienceStats(); exceeded != 1 {
		t.Fatalf("budgetExceeded = %d, want 1", exceeded)
	}
	if held, readers := o.LockState(); held || readers != 0 {
		t.Fatalf("budget-exhausted transaction leaked: writerHeld=%v readers=%d", held, readers)
	}
	if got := o.Peek(); got != 0 {
		t.Fatalf("aborted attempts published writes: %d", got)
	}
}
