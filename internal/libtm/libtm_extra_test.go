package libtm

import (
	"sync"
	"testing"

	"gstm/internal/txid"
)

func TestObjPeekReset(t *testing.T) {
	o := NewObj("hello")
	if o.Peek() != "hello" {
		t.Fatal("Peek initial")
	}
	o.Reset("bye")
	if o.Peek() != "bye" {
		t.Fatal("Reset")
	}
}

func TestVersionAdvancesPerCommit(t *testing.T) {
	rt := New(Config{})
	o := NewObj(0)
	before := o.b.version.Load()
	for i := 0; i < 3; i++ {
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, o, i)
			return nil
		})
	}
	if got := o.b.version.Load(); got != before+3 {
		t.Fatalf("version advanced %d, want 3", got-before)
	}
}

func TestReadOnlyTxLeavesVersion(t *testing.T) {
	rt := New(Config{})
	o := NewObj(1)
	before := o.b.version.Load()
	_ = rt.Atomic(0, 0, func(tx *Tx) error {
		_ = Read(tx, o)
		return nil
	})
	if o.b.version.Load() != before {
		t.Fatal("read-only commit bumped the version")
	}
}

func TestPessimisticReadBlocksOnWriter(t *testing.T) {
	rt := New(Config{ReadMode: ReadPessimistic, WriteMode: WriteEncounterTime, MaxSpin: 4})
	o := NewObj(0)
	inWrite := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	first := true
	go func() {
		defer wg.Done()
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, o, 1)
			if first {
				first = false
				close(inWrite)
				<-release
			}
			return nil
		})
	}()
	<-inWrite
	// A pessimistic reader must abort (bounded spin) while the writer
	// holds the object.
	sawAbort := false
	_ = rt.Atomic(1, 1, func(tx *Tx) error {
		if tx.Attempt() >= 2 {
			sawAbort = true
			return nil // give up without reading
		}
		_ = Read(tx, o)
		return nil
	})
	if !sawAbort {
		t.Fatal("pessimistic reader never aborted on writer-held object")
	}
	close(release)
	wg.Wait()
}

func TestOptimisticReadProceedsUnderWriter(t *testing.T) {
	rt := New(Config{ReadMode: ReadOptimistic, WriteMode: WriteEncounterTime, MaxSpin: 1 << 16})
	o := NewObj(7)
	inWrite := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	first := true
	go func() {
		defer wg.Done()
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, o, 8)
			if first {
				first = false
				close(inWrite)
				<-release
			}
			return nil
		})
	}()
	<-inWrite
	// An optimistic reader sees the last committed value even while the
	// writer holds its encounter-time lock.
	var got int
	if err := rt.Atomic(1, 1, func(tx *Tx) error {
		got = Read(tx, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("optimistic read = %d, want pre-commit 7", got)
	}
	close(release)
	wg.Wait()
	if o.Peek() != 8 {
		t.Fatal("writer's commit lost")
	}
}

func TestSelfDoomCleared(t *testing.T) {
	// A doomed attempt must not leak its doom flag into the retry.
	rt := New(Config{})
	o := NewObj(0)
	readerStarted := make(chan struct{})
	writerDone := make(chan struct{})
	attempts := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = rt.Atomic(1, 1, func(tx *Tx) error {
			attempts++
			_ = Read(tx, o)
			if attempts == 1 {
				close(readerStarted)
				<-writerDone
			}
			Write(tx, o, 100+attempts)
			return nil
		})
	}()
	<-readerStarted
	_ = rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, o, 42)
		return nil
	})
	close(writerDone)
	wg.Wait()
	if attempts < 2 {
		t.Fatalf("attempts = %d", attempts)
	}
	if got := o.Peek(); got != 100+attempts {
		t.Fatalf("final = %d, want %d (retry must eventually commit)", got, 100+attempts)
	}
}

func TestStatsAndReset(t *testing.T) {
	rt := New(Config{})
	o := NewObj(0)
	for i := 0; i < 5; i++ {
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, o, i)
			return nil
		})
	}
	c, _ := rt.Stats()
	if c != 5 {
		t.Fatalf("commits = %d", c)
	}
	rt.ResetStats()
	if c, a := rt.Stats(); c != 0 || a != 0 {
		t.Fatalf("after reset %d/%d", c, a)
	}
}

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg := Config{}.Normalize()
	if cfg.MaxSpin <= 0 || cfg.RegistryCapacity <= 0 {
		t.Fatalf("defaults missing: %+v", cfg)
	}
	if cfg.ReadMode != ReadOptimistic || cfg.WriteMode != WriteCommitTime || cfg.Resolution != AbortReaders {
		t.Fatal("zero config must be the paper's fully-optimistic abort-readers")
	}
	if rt := New(Config{}); rt.Config().MaxSpin == 0 {
		t.Fatal("runtime did not normalize config")
	}
}

func TestNonConflictPanicPropagatesLibTM(t *testing.T) {
	rt := New(Config{})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = rt.Atomic(0, 0, func(tx *Tx) error { panic("boom") })
}

func TestManyObjectsDisjointNoAborts(t *testing.T) {
	rt := New(Config{})
	objs := make([]*Obj[int], 8)
	for i := range objs {
		objs[i] = NewObj(0)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = rt.Atomic(txid.ThreadID(id), 0, func(tx *Tx) error {
					Write(tx, objs[id], Read(tx, objs[id])+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	for i, o := range objs {
		if o.Peek() != 100 {
			t.Fatalf("obj %d = %d", i, o.Peek())
		}
	}
}
