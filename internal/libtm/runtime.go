package libtm

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gstm/internal/commitreg"
	"gstm/internal/obs"
	"gstm/internal/retry"
	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// Runtime is a LibTM STM instance.
type Runtime struct {
	cfg   Config
	reg   *commitreg.Registry
	sink  atomic.Pointer[sinkBox]
	gate  atomic.Pointer[gateBox]
	fault atomic.Pointer[faultBox]
	pool  sync.Pool

	// tel holds all runtime counters and latency histograms (sharded by
	// worker thread), registered in the process-wide telemetry registry.
	tel *telemetry.Metrics
}

type sinkBox struct{ s EventSink }
type gateBox struct{ g Gate }
type faultBox struct{ f FaultInjector }

// New returns a Runtime with cfg (zero fields defaulted: the paper's fully
// optimistic detection with abort-readers resolution).
func New(cfg Config) *Runtime {
	rt := &Runtime{cfg: cfg.Normalize(), tel: telemetry.New("libtm")}
	rt.reg = commitreg.New(rt.cfg.RegistryCapacity)
	rt.pool.New = func() any { return &Tx{} }
	return rt
}

// Telemetry returns this runtime's metrics: sharded lifecycle counters,
// sampled latency histograms, and the diagnostic event ring.
func (rt *Runtime) Telemetry() *telemetry.Metrics { return rt.tel }

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SetSink installs (or removes, with nil) the instrumentation sink.
func (rt *Runtime) SetSink(s EventSink) {
	if s == nil {
		rt.sink.Store(nil)
		return
	}
	rt.sink.Store(&sinkBox{s: s})
}

// SetGate installs (or removes, with nil) the transaction-start gate.
func (rt *Runtime) SetGate(g Gate) {
	if g == nil {
		rt.gate.Store(nil)
		return
	}
	rt.gate.Store(&gateBox{g: g})
}

// SetFaultInjector installs (or removes, with nil) the chaos-testing fault
// injector (see tl2.FaultInjector; the interface is structurally shared).
func (rt *Runtime) SetFaultInjector(f FaultInjector) {
	if f == nil {
		rt.fault.Store(nil)
		return
	}
	rt.fault.Store(&faultBox{f: f})
}

// injector returns the installed fault injector, or nil.
func (rt *Runtime) injector() FaultInjector {
	if fb := rt.fault.Load(); fb != nil {
		return fb.f
	}
	return nil
}

// Stats returns cumulative committed transactions and aborted attempts.
func (rt *Runtime) Stats() (commits, aborts uint64) {
	return rt.tel.Commits.Load(), rt.tel.Aborts.Load()
}

// ResetStats zeroes the cumulative telemetry — counters, latency
// histograms and the event ring.
func (rt *Runtime) ResetStats() {
	rt.tel.Reset()
}

// ResilienceStats returns how many transactions were abandoned on a spent
// retry budget and on context cancellation (see tl2.Runtime.ResilienceStats).
func (rt *Runtime) ResilienceStats() (budgetExceeded, canceled uint64) {
	return rt.tel.RetryBudgetExceeded.Load(), rt.tel.ContextCanceled.Load()
}

// Atomic executes fn transactionally as transaction site txn on worker
// thread, retrying on conflicts. A non-nil error from fn aborts the attempt
// and is returned without retry. Atomic must not be nested.
func (rt *Runtime) Atomic(thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error) error {
	return rt.run(nil, thread, txn, fn, 0, nil)
}

// AtomicCtx is Atomic honoring ctx: cancellation/deadline is checked
// between retry attempts and surfaces as ctx.Err(); a per-call attempt
// budget attached with retry.WithBudget bounds retries, returning
// retry.ErrBudgetExceeded when spent. Either way every write lock and
// reader registration has been released.
func (rt *Runtime) AtomicCtx(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error) error {
	return rt.run(ctx, thread, txn, fn, 0, nil)
}

// Run mirrors tl2.Runtime.Run for this engine: ctx may be nil, and
// maxAttempts > 0 bounds attempts without a context allocation (overriding
// any retry.WithBudget budget; <= 0 defers to it). LibTM has no read-only
// fast path, so there is no readOnly parameter.
func (rt *Runtime) Run(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error, maxAttempts int) error {
	return rt.run(ctx, thread, txn, fn, maxAttempts, nil)
}

// RunSpan is Run with a variance-observatory span attached: gate waits and
// per-attempt retries (with their abort causes) are recorded into span's
// timeline. span may be nil, in which case RunSpan is exactly Run.
func (rt *Runtime) RunSpan(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error, maxAttempts int, span *obs.Span) error {
	return rt.run(ctx, thread, txn, fn, maxAttempts, span)
}

func (rt *Runtime) run(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error, maxAttempts int, span *obs.Span) error {
	self := txid.Pair{Txn: txn, Thread: thread}
	tx := rt.pool.Get().(*Tx)
	defer func() {
		if r := recover(); r != nil {
			// A panic escaped the user's transaction body: release write
			// locks and reader registrations, scrub the write set, pool a
			// clean Tx, and let the panic continue.
			tx.cleanup()
			tx.scrub()
			rt.pool.Put(tx)
			panic(r)
		}
		rt.pool.Put(tx)
	}()

	budget := maxAttempts
	if budget <= 0 {
		budget = retry.Budget(ctx)
	}
	shard := uint64(thread)
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				rt.tel.TxCanceled(shard)
				return fmt.Errorf("%w: %w", retry.ErrCanceled, err)
			}
		}
		if gb := rt.gate.Load(); gb != nil {
			if span != nil {
				g0 := time.Now()
				outcome := gb.g.Arrive(self)
				gc := obs.CauseNone
				if outcome == telemetry.GateEscape {
					gc = obs.CauseGateTimeout
				}
				span.AddSince(obs.PhaseGate, gc, attempt+1, g0)
			} else {
				gb.g.Arrive(self)
			}
		}
		sampled := rt.tel.TxStart(shard)
		tx.reset(rt, self, attempt)
		span.NoteAttempt()
		// Attempt start = end of the last recorded event (gate, queue, or
		// the previous retry): a field read instead of a clock read, so the
		// committing fast path pays no time.Now for abort attribution.
		attStart := span.LastEndNs()

		err, c := runBody(tx, fn)
		if c != nil {
			tx.cleanup()
			span.AddSinceNs(obs.PhaseRetry, c.cause, attempt+1, attStart)
			rt.noteAbort(self, c)
			if rt.budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		if err != nil {
			tx.cleanup()
			return err
		}
		if fi := rt.injector(); fi != nil && fi.SpuriousAbort(self, attempt) {
			tx.cleanup()
			span.AddSinceNs(obs.PhaseRetry, obs.CauseSpurious, attempt+1, attStart)
			rt.noteAbort(self, &conflict{cause: obs.CauseSpurious})
			if rt.budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		wv, c, ok := tx.commit()
		if !ok {
			tx.cleanup()
			span.AddSinceNs(obs.PhaseRetry, c.cause, attempt+1, attStart)
			rt.noteAbort(self, c)
			if rt.budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		if sampled {
			// LibTM's visible readers validate at access time; there is no
			// commit-time read-set validation phase to time separately.
			rt.tel.ObserveCommit(shard, time.Since(t0), 0, false)
		}
		rt.tel.TxCommit(shard)
		if sb := rt.sink.Load(); sb != nil {
			sb.s.TxCommit(self, wv, attempt)
		}
		return nil
	}
}

// budgetSpent reports whether the aborted attempt was the last budgeted
// one, counting the exhaustion when it was.
func (rt *Runtime) budgetSpent(shard uint64, budget, attempt int) bool {
	if budget > 0 && attempt+1 >= budget {
		rt.tel.TxBudgetExceeded(shard)
		return true
	}
	return false
}

// noteAbort counts and reports an abort. Dooming gives exact attribution;
// lock-wait conflicts fall back to the most recent commit.
func (rt *Runtime) noteAbort(self txid.Pair, c *conflict) {
	rt.tel.TxAbort(uint64(self.Thread), c.cause)
	sb := rt.sink.Load()
	if sb == nil {
		return
	}
	if c.byKnown && c.byWV != 0 {
		sb.s.TxAbort(self, c.byWV, c.by, true)
		return
	}
	guessWV := seq.Load()
	by, ok := rt.reg.Lookup(guessWV)
	if !ok {
		by = txid.Pair{}
	}
	sb.s.TxAbort(self, guessWV, by, false)
}

// backoff mirrors tl2's yield-based contention backoff.
func backoff(attempt int) {
	yields := 0
	switch {
	case attempt < 2:
	case attempt < 8:
		yields = 1
	case attempt < 32:
		yields = 4
	default:
		yields = 16
	}
	for i := 0; i < yields; i++ {
		runtime.Gosched()
	}
}

// runBody executes fn, converting a conflict panic into a result and a
// Retry into ErrBlockingUnsupported (ending the call, not the attempt),
// while letting other panics propagate.
func runBody(tx *Tx, fn func(*Tx) error) (err error, c *conflict) {
	defer func() {
		if r := recover(); r != nil {
			if cc, ok := r.(*conflict); ok {
				c = cc
				return
			}
			if _, ok := r.(retrySignal); ok {
				err = ErrBlockingUnsupported
				return
			}
			panic(r)
		}
	}()
	return fn(tx), nil
}
