package libtm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gstm/internal/commitreg"
	"gstm/internal/txid"
)

// Runtime is a LibTM STM instance.
type Runtime struct {
	cfg  Config
	reg  *commitreg.Registry
	sink atomic.Pointer[sinkBox]
	gate atomic.Pointer[gateBox]
	pool sync.Pool

	commits atomic.Uint64
	aborts  atomic.Uint64
}

type sinkBox struct{ s EventSink }
type gateBox struct{ g Gate }

// New returns a Runtime with cfg (zero fields defaulted: the paper's fully
// optimistic detection with abort-readers resolution).
func New(cfg Config) *Runtime {
	rt := &Runtime{cfg: cfg.Normalize()}
	rt.reg = commitreg.New(rt.cfg.RegistryCapacity)
	rt.pool.New = func() any { return &Tx{} }
	return rt
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SetSink installs (or removes, with nil) the instrumentation sink.
func (rt *Runtime) SetSink(s EventSink) {
	if s == nil {
		rt.sink.Store(nil)
		return
	}
	rt.sink.Store(&sinkBox{s: s})
}

// SetGate installs (or removes, with nil) the transaction-start gate.
func (rt *Runtime) SetGate(g Gate) {
	if g == nil {
		rt.gate.Store(nil)
		return
	}
	rt.gate.Store(&gateBox{g: g})
}

// Stats returns cumulative committed transactions and aborted attempts.
func (rt *Runtime) Stats() (commits, aborts uint64) {
	return rt.commits.Load(), rt.aborts.Load()
}

// ResetStats zeroes the counters.
func (rt *Runtime) ResetStats() {
	rt.commits.Store(0)
	rt.aborts.Store(0)
}

// Atomic executes fn transactionally as transaction site txn on worker
// thread, retrying on conflicts. A non-nil error from fn aborts the attempt
// and is returned without retry. Atomic must not be nested.
func (rt *Runtime) Atomic(thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error) error {
	self := txid.Pair{Txn: txn, Thread: thread}
	tx := rt.pool.Get().(*Tx)
	defer rt.pool.Put(tx)

	for attempt := 0; ; attempt++ {
		if gb := rt.gate.Load(); gb != nil {
			gb.g.Arrive(self)
		}
		tx.reset(rt, self, attempt)

		err, c := runBody(tx, fn)
		if c != nil {
			tx.cleanup()
			rt.noteAbort(self, c)
			backoff(attempt)
			continue
		}
		if err != nil {
			tx.cleanup()
			return err
		}
		wv, c, ok := tx.commit()
		if !ok {
			tx.cleanup()
			rt.noteAbort(self, c)
			backoff(attempt)
			continue
		}
		rt.commits.Add(1)
		if sb := rt.sink.Load(); sb != nil {
			sb.s.TxCommit(self, wv, attempt)
		}
		return nil
	}
}

// noteAbort counts and reports an abort. Dooming gives exact attribution;
// lock-wait conflicts fall back to the most recent commit.
func (rt *Runtime) noteAbort(self txid.Pair, c *conflict) {
	rt.aborts.Add(1)
	sb := rt.sink.Load()
	if sb == nil {
		return
	}
	if c.byKnown && c.byWV != 0 {
		sb.s.TxAbort(self, c.byWV, c.by, true)
		return
	}
	guessWV := seq.Load()
	by, ok := rt.reg.Lookup(guessWV)
	if !ok {
		by = txid.Pair{}
	}
	sb.s.TxAbort(self, guessWV, by, false)
}

// backoff mirrors tl2's yield-based contention backoff.
func backoff(attempt int) {
	yields := 0
	switch {
	case attempt < 2:
	case attempt < 8:
		yields = 1
	case attempt < 32:
		yields = 4
	default:
		yields = 16
	}
	for i := 0; i < yields; i++ {
		runtime.Gosched()
	}
}

// runBody executes fn, converting a conflict panic into a result while
// letting other panics propagate.
func runBody(tx *Tx, fn func(*Tx) error) (err error, c *conflict) {
	defer func() {
		if r := recover(); r != nil {
			if cc, ok := r.(*conflict); ok {
				c = cc
				return
			}
			panic(r)
		}
	}()
	return fn(tx), nil
}
