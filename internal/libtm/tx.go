package libtm

import (
	"errors"
	"runtime"
	"sync/atomic"
	"unsafe"

	"gstm/internal/obs"
	"gstm/internal/txid"
	"gstm/internal/wset"
)

// txState is the shared-visibility part of a transaction attempt: other
// transactions find it in reader lists and doom it through it.
type txState struct {
	self     txid.Pair
	doomed   atomic.Bool
	doomWV   atomic.Uint64
	doomPair atomic.Uint32 // txid.Packed of the committing writer
	// committing is set for the window between the commit's reader
	// resolution and the end of publishing. Optimistic readers refuse to
	// register on an object whose writer is in this window: a registration
	// slipping in after the object's resolveReaders pass but before its
	// publish would read a stale value without ever being doomed (the torn
	// read the resolution pass exists to prevent). Readers registered
	// before resolution are doomed/waited as usual; readers arriving
	// during the window retry until the writer finishes.
	committing atomic.Bool
}

// doom marks the transaction aborted by the commit (wv, by). Only the first
// doom records attribution.
func (st *txState) doom(wv uint64, by txid.Pair) {
	if st.doomed.CompareAndSwap(false, true) {
		st.doomWV.Store(wv)
		st.doomPair.Store(uint32(by.Pack()))
	}
}

// conflict carries abort attribution out of a transaction body. cause
// classifies the conflict for the abort taxonomy: a doom is a read
// invalidation (the committing writer invalidated our visible read), a
// spin-bound exhaustion is lock-busy.
type conflict struct {
	byWV    uint64
	by      txid.Pair
	byKnown bool
	cause   obs.Cause
}

// doomConflict builds the conflict describing this attempt's doom.
func doomConflict(st *txState) *conflict {
	return &conflict{
		byWV:    st.doomWV.Load(),
		by:      txid.Packed(st.doomPair.Load()).Unpack(),
		byKnown: true,
		cause:   obs.CauseReadValidation,
	}
}

// Tx is one attempt of a LibTM transaction.
type Tx struct {
	rt    *Runtime
	st    *txState
	reads []*objBase
	// ws is the same small-vector write set tl2 uses (internal/wset):
	// address-sorted entries with an inline fast path, a filter word for
	// O(1) read-after-write miss checks, and per-entry lock bookkeeping
	// (Entry.Locked replaces the separate locked slice; objBase write
	// locks have no pre-word, so Entry.Pre stays zero).
	ws      wset.Set[*objBase]
	attempt int
	rng     uint64
}

func (tx *Tx) reset(rt *Runtime, self txid.Pair, attempt int) {
	tx.rt = rt
	tx.st = &txState{self: self} // fresh shared state: old dooms must not leak
	tx.reads = tx.reads[:0]
	tx.ws.Reset()
	tx.attempt = attempt
	if tx.rng == 0 {
		tx.rng = rngSeq.Add(0x9e3779b97f4a7c15) | 1
	}
}

// rngSeq seeds per-Tx yield generators (see tl2 for rationale).
var rngSeq atomic.Uint64

// Self returns the attempt's (transaction, thread) pair.
func (tx *Tx) Self() txid.Pair { return tx.st.self }

// Attempt returns the zero-based retry count.
func (tx *Tx) Attempt() int { return tx.attempt }

func (tx *Tx) maybeYield() {
	n := tx.rt.cfg.Interleave
	if n <= 0 {
		return
	}
	tx.rng ^= tx.rng << 13
	tx.rng ^= tx.rng >> 7
	tx.rng ^= tx.rng << 17
	if tx.rng%uint64(n) == 0 {
		runtime.Gosched()
	}
}

func (tx *Tx) abort(c *conflict) {
	panic(c)
}

// ErrBlockingUnsupported is returned by a Run whose body called Retry:
// LibTM's visible-reader protocol has no per-location waiter lists, so the
// engine cannot park a transaction on its read set the way tl2 does. The
// sentinel is typed so callers sharing transaction bodies across engines
// can detect the capability gap with errors.Is instead of blocking forever
// or silently spinning.
var ErrBlockingUnsupported = errors.New("libtm: blocking (tx.Retry) is not supported by this engine")

// retrySignal is panicked by Retry and converted by runBody into
// ErrBlockingUnsupported.
type retrySignal struct{}

// Retry mirrors the tl2 composable-blocking primitive's signature so
// transaction bodies stay engine-portable, but LibTM does not implement
// parking: the enclosing Run returns ErrBlockingUnsupported. Writes
// buffered before Retry are discarded with the attempt.
func (tx *Tx) Retry() {
	panic(retrySignal{})
}

// checkDoomed aborts the attempt when a committing writer has doomed it.
func (tx *Tx) checkDoomed() {
	if tx.st.doomed.Load() {
		tx.abort(doomConflict(tx.st))
	}
}

// objAddr is the write-set key of b: its address, also the deterministic
// commit-time lock ordering key.
func objAddr(b *objBase) uintptr { return uintptr(unsafe.Pointer(b)) }

// readBase implements the LibTM read protocol: register as a visible
// reader (blocking while a writer holds the object in pessimistic read
// mode), load the value, then re-check the doom flag so a value published
// after our registration can never enter the read set unnoticed. The
// snapshot is returned as a raw pointer for the generic Read to
// dereference — no closure, no interface conversion (the unboxed protocol
// mirrored from tl2).
func (tx *Tx) readBase(b *objBase) unsafe.Pointer {
	tx.maybeYield()
	tx.checkDoomed()
	if e, fp := tx.ws.Lookup(objAddr(b)); e != nil {
		return e.Val
	} else if fp {
		tx.rt.tel.FilterFalsePositives.Inc(uint64(tx.st.self.Thread))
	}
	pess := tx.rt.cfg.ReadMode == ReadPessimistic
	for spins := 0; !b.registerReader(tx.st, pess); spins++ {
		if spins >= tx.rt.cfg.MaxSpin {
			tx.abort(&conflict{cause: obs.CauseLockBusy})
		}
		runtime.Gosched()
		tx.checkDoomed()
	}
	tx.reads = append(tx.reads, b)
	p := b.loadPtr()
	tx.checkDoomed()
	return p
}

// Read returns o's value inside the transaction.
func Read[T any](tx *Tx, o *Obj[T]) T {
	return *(*T)(tx.readBase(&o.b))
}

// box copies val to a fresh heap box, kept out of Write so the in-place
// rewrite fast path stays allocation-free (see tl2).
func box[T any](val T) *T {
	v := val
	return &v
}

// Write buffers val as tx's pending write to o. In encounter-time write
// mode the object's write lock is acquired immediately. Rewrites of an
// already-buffered object update the private redo box in place without
// allocating.
func Write[T any](tx *Tx, o *Obj[T], val T) {
	tx.maybeYield()
	tx.checkDoomed()
	b := &o.b
	addr := objAddr(b)
	if e, fp := tx.ws.Lookup(addr); e != nil {
		// The entry keyed by b was inserted by a Write through the same
		// Obj[T] (the base is embedded in it), so the redo box is a *T.
		*(*T)(e.Val) = val
		return
	} else if fp {
		tx.rt.tel.FilterFalsePositives.Inc(uint64(tx.st.self.Thread))
	}
	e, spilled := tx.ws.Insert(b, addr)
	e.Val = unsafe.Pointer(box(val))
	if spilled {
		tx.rt.tel.WriteSetSpills.Inc(uint64(tx.st.self.Thread))
	}
	if tx.rt.cfg.WriteMode == WriteEncounterTime {
		tx.lockOne(e, b)
	}
}

// lockOne acquires b's write lock with bounded spinning, aborting the
// transaction on exhaustion.
func (tx *Tx) lockOne(e *wset.Entry[*objBase], b *objBase) {
	for spins := 0; ; spins++ {
		if b.tryLockWriter(tx.st) {
			e.Locked = true
			return
		}
		if spins >= tx.rt.cfg.MaxSpin {
			tx.abort(&conflict{cause: obs.CauseLockBusy})
		}
		runtime.Gosched()
		tx.checkDoomed()
	}
}

// cleanup releases all write locks and reader registrations. Idempotent:
// entries release their lock at most once.
func (tx *Tx) cleanup() {
	ents := tx.ws.Entries()
	for i := range ents {
		if ents[i].Locked {
			ents[i].Key.unlockWriter(tx.st)
			ents[i].Locked = false
		}
	}
	for _, b := range tx.reads {
		b.deregisterReader(tx.st)
	}
	tx.reads = tx.reads[:0]
}

// scrub clears the write set after cleanup so a Tx abandoned on a user
// panic pools clean (cleanup already released locks and registrations).
func (tx *Tx) scrub() {
	tx.ws.Reset()
}

// commit runs the LibTM commit protocol: acquire outstanding write locks
// (in ascending object address order, the same deterministic rule as tl2's
// commit locking), draw the commit sequence number, resolve readers per the
// configured policy, re-check our own doom flag, publish, release.
func (tx *Tx) commit() (wv uint64, c *conflict, ok bool) {
	if tx.st.doomed.Load() {
		return 0, doomConflict(tx.st), false
	}
	ents := tx.ws.Entries()
	if len(ents) == 0 {
		tx.cleanup()
		return seq.Add(1), nil, true
	}
	if tx.rt.cfg.WriteMode == WriteCommitTime {
		for i := range ents {
			if ents[i].Locked {
				continue
			}
			if !tx.tryLockBounded(&ents[i], ents[i].Key) {
				return 0, &conflict{cause: obs.CauseLockBusy}, false
			}
		}
	}
	// Enter the resolve→publish window: from here until the publish loop
	// finishes, optimistic readers cannot register on our locked objects
	// (registerReader refuses), so every reader that could observe a
	// pre-publish value is already registered and will be doomed or
	// drained below. Cleared on every exit path.
	tx.st.committing.Store(true)
	defer tx.st.committing.Store(false)
	if fi := tx.rt.injector(); fi != nil {
		// Fault point: hold the write locks longer before publishing.
		for i, n := 0, fi.CommitDelay(tx.st.self, tx.attempt); i < n; i++ {
			runtime.Gosched()
		}
	}
	wv = seq.Add(1)
	abortReaders := tx.rt.cfg.Resolution == AbortReaders
	for i := range ents {
		b := ents[i].Key
		for spins := 0; !b.resolveReaders(tx.st, abortReaders, wv); spins++ {
			// wait-for-readers: stall until this object's readers drain.
			if spins >= tx.rt.cfg.MaxSpin {
				return 0, &conflict{cause: obs.CauseLockBusy}, false
			}
			runtime.Gosched()
			if tx.st.doomed.Load() {
				return 0, doomConflict(tx.st), false
			}
		}
	}
	// A concurrent committer may have doomed us through an object we read;
	// our dooms above are only undone by those readers retrying, which is
	// the abort-readers policy's intended behaviour.
	if tx.st.doomed.Load() {
		return 0, doomConflict(tx.st), false
	}
	for i := range ents {
		b := ents[i].Key
		b.storePtr(ents[i].Val)
		b.version.Add(1)
	}
	tx.rt.reg.Record(wv, tx.st.self)
	tx.cleanup()
	return wv, nil, true
}

// tryLockBounded is lockOne without the panic path, for use during commit
// where the caller owns cleanup.
func (tx *Tx) tryLockBounded(e *wset.Entry[*objBase], b *objBase) bool {
	for spins := 0; ; spins++ {
		if b.tryLockWriter(tx.st) {
			e.Locked = true
			return true
		}
		if spins >= tx.rt.cfg.MaxSpin {
			return false
		}
		runtime.Gosched()
	}
}
