package libtm

import (
	"runtime"
	"sync/atomic"

	"gstm/internal/txid"
)

// txState is the shared-visibility part of a transaction attempt: other
// transactions find it in reader lists and doom it through it.
type txState struct {
	self     txid.Pair
	doomed   atomic.Bool
	doomWV   atomic.Uint64
	doomPair atomic.Uint32 // txid.Packed of the committing writer
}

// doom marks the transaction aborted by the commit (wv, by). Only the first
// doom records attribution.
func (st *txState) doom(wv uint64, by txid.Pair) {
	if st.doomed.CompareAndSwap(false, true) {
		st.doomWV.Store(wv)
		st.doomPair.Store(uint32(by.Pack()))
	}
}

// conflict carries abort attribution out of a transaction body.
type conflict struct {
	byWV    uint64
	by      txid.Pair
	byKnown bool
}

// Tx is one attempt of a LibTM transaction.
type Tx struct {
	rt      *Runtime
	st      *txState
	reads   []*objBase
	writes  map[*objBase]any
	locked  []*objBase // write locks held (encounter-time and commit-time)
	attempt int
	rng     uint64
}

func (tx *Tx) reset(rt *Runtime, self txid.Pair, attempt int) {
	tx.rt = rt
	tx.st = &txState{self: self} // fresh shared state: old dooms must not leak
	tx.reads = tx.reads[:0]
	if tx.writes == nil {
		tx.writes = make(map[*objBase]any, 8)
	} else {
		clear(tx.writes)
	}
	tx.locked = tx.locked[:0]
	tx.attempt = attempt
	if tx.rng == 0 {
		tx.rng = rngSeq.Add(0x9e3779b97f4a7c15) | 1
	}
}

// rngSeq seeds per-Tx yield generators (see tl2 for rationale).
var rngSeq atomic.Uint64

// Self returns the attempt's (transaction, thread) pair.
func (tx *Tx) Self() txid.Pair { return tx.st.self }

// Attempt returns the zero-based retry count.
func (tx *Tx) Attempt() int { return tx.attempt }

func (tx *Tx) maybeYield() {
	n := tx.rt.cfg.Interleave
	if n <= 0 {
		return
	}
	tx.rng ^= tx.rng << 13
	tx.rng ^= tx.rng >> 7
	tx.rng ^= tx.rng << 17
	if tx.rng%uint64(n) == 0 {
		runtime.Gosched()
	}
}

func (tx *Tx) abort(c *conflict) {
	panic(c)
}

// checkDoomed aborts the attempt when a committing writer has doomed it.
func (tx *Tx) checkDoomed() {
	if tx.st.doomed.Load() {
		tx.abort(&conflict{
			byWV:    tx.st.doomWV.Load(),
			by:      txid.Packed(tx.st.doomPair.Load()).Unpack(),
			byKnown: true,
		})
	}
}

// readBase implements the LibTM read protocol: register as a visible
// reader (blocking while a writer holds the object in pessimistic read
// mode), load the value, then re-check the doom flag so a value published
// after our registration can never enter the read set unnoticed.
func (tx *Tx) readBase(b *objBase, load func() any) any {
	tx.maybeYield()
	tx.checkDoomed()
	if boxed, ok := tx.writes[b]; ok {
		return boxed
	}
	pess := tx.rt.cfg.ReadMode == ReadPessimistic
	for spins := 0; !b.registerReader(tx.st, pess); spins++ {
		if spins >= tx.rt.cfg.MaxSpin {
			tx.abort(&conflict{})
		}
		runtime.Gosched()
		tx.checkDoomed()
	}
	tx.reads = append(tx.reads, b)
	val := load()
	tx.checkDoomed()
	return val
}

// Read returns o's value inside the transaction.
func Read[T any](tx *Tx, o *Obj[T]) T {
	boxed := tx.readBase(&o.b, func() any { return o.p.Load() })
	return *(boxed.(*T))
}

// Write buffers val as tx's pending write to o. In encounter-time write
// mode the object's write lock is acquired immediately.
func Write[T any](tx *Tx, o *Obj[T], val T) {
	tx.maybeYield()
	tx.checkDoomed()
	b := &o.b
	if tx.rt.cfg.WriteMode == WriteEncounterTime {
		if _, already := tx.writes[b]; !already {
			tx.lockOne(b)
		}
	}
	tx.writes[b] = &val
}

// lockOne acquires b's write lock with bounded spinning, aborting the
// transaction on exhaustion.
func (tx *Tx) lockOne(b *objBase) {
	for spins := 0; ; spins++ {
		if b.tryLockWriter(tx.st) {
			tx.locked = append(tx.locked, b)
			return
		}
		if spins >= tx.rt.cfg.MaxSpin {
			tx.abort(&conflict{})
		}
		runtime.Gosched()
		tx.checkDoomed()
	}
}

// cleanup releases all write locks and reader registrations.
func (tx *Tx) cleanup() {
	for _, b := range tx.locked {
		b.unlockWriter(tx.st)
	}
	tx.locked = tx.locked[:0]
	for _, b := range tx.reads {
		b.deregisterReader(tx.st)
	}
	tx.reads = tx.reads[:0]
}

// scrub clears the write set after cleanup so a Tx abandoned on a user
// panic pools clean (cleanup already emptied the read/lock slices).
func (tx *Tx) scrub() {
	if tx.writes != nil {
		clear(tx.writes)
	}
}

// commit runs the LibTM commit protocol: acquire outstanding write locks,
// draw the commit sequence number, resolve readers per the configured
// policy, re-check our own doom flag, publish, release.
func (tx *Tx) commit() (wv uint64, c *conflict, ok bool) {
	if tx.st.doomed.Load() {
		return 0, &conflict{
			byWV:    tx.st.doomWV.Load(),
			by:      txid.Packed(tx.st.doomPair.Load()).Unpack(),
			byKnown: true,
		}, false
	}
	if len(tx.writes) == 0 {
		tx.cleanup()
		return seq.Add(1), nil, true
	}
	if tx.rt.cfg.WriteMode == WriteCommitTime {
		for b := range tx.writes {
			if !tx.tryLockBounded(b) {
				return 0, &conflict{}, false
			}
		}
	}
	if fi := tx.rt.injector(); fi != nil {
		// Fault point: hold the write locks longer before publishing.
		for i, n := 0, fi.CommitDelay(tx.st.self, tx.attempt); i < n; i++ {
			runtime.Gosched()
		}
	}
	wv = seq.Add(1)
	abortReaders := tx.rt.cfg.Resolution == AbortReaders
	for b := range tx.writes {
		for spins := 0; !b.resolveReaders(tx.st, abortReaders, wv); spins++ {
			// wait-for-readers: stall until this object's readers drain.
			if spins >= tx.rt.cfg.MaxSpin {
				return 0, &conflict{}, false
			}
			runtime.Gosched()
			if tx.st.doomed.Load() {
				return 0, &conflict{
					byWV:    tx.st.doomWV.Load(),
					by:      txid.Packed(tx.st.doomPair.Load()).Unpack(),
					byKnown: true,
				}, false
			}
		}
	}
	// A concurrent committer may have doomed us through an object we read;
	// our dooms above are only undone by those readers retrying, which is
	// the abort-readers policy's intended behaviour.
	if tx.st.doomed.Load() {
		return 0, &conflict{
			byWV:    tx.st.doomWV.Load(),
			by:      txid.Packed(tx.st.doomPair.Load()).Unpack(),
			byKnown: true,
		}, false
	}
	for b, boxed := range tx.writes {
		b.apply(boxed)
		b.version.Add(1)
	}
	tx.rt.reg.Record(wv, tx.st.self)
	tx.cleanup()
	return wv, nil, true
}

// tryLockBounded is lockOne without the panic path, for use during commit
// where the caller owns cleanup.
func (tx *Tx) tryLockBounded(b *objBase) bool {
	for spins := 0; ; spins++ {
		if b.tryLockWriter(tx.st) {
			tx.locked = append(tx.locked, b)
			return true
		}
		if spins >= tx.rt.cfg.MaxSpin {
			return false
		}
		runtime.Gosched()
	}
}
