// Package shard partitions a transactional keyspace across independent
// STM Systems. Each shard is a full gstm.System — its own TL2 runtime,
// private version clock, telemetry registration and guidance lifecycle —
// so shards never contend on a clock cache line, a lock table, or a
// commit-sequence slot, and one shard's rejected model never holds back a
// neighbor's hot-swap.
//
// Routing is static: a key's home shard is a splittable-hash of the key
// modulo the shard count, fixed at startup. Transactions whose footprint
// lives on one shard run untouched on that shard's System; multi-key
// batches are scatter-gathered — split into per-shard sub-transactions
// executed in ascending shard order, each atomic on its own shard.
// A Plan batch is therefore NOT atomic as a whole: shard i's
// sub-transaction can commit while shard j's fails. Callers that need
// per-operation results (the serving layer does) read per-shard errors
// back from the Plan.
//
// When whole-batch atomicity is required, RunMulti runs one transaction
// spanning several shards and commits it on all of them or none: every
// participant's write locks are taken and every read set validated
// before any shard publishes, and all participants publish at one
// exchanged write version (see DESIGN.md, "Cross-shard commit").
// Single-shard traffic through Run/Plan never pays for it.
package shard

import (
	"context"
	"fmt"

	"gstm"
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the number of independent Systems the keyspace is split
	// across (default 1). Fixed for the Router's lifetime: rerouting live
	// keys would need cross-shard transactions, which the design excludes.
	Shards int

	// Threads sizes every shard's System. Workers address the same
	// ThreadID on whichever shard a key routes to, so the per-shard
	// Thread State Automata keep the paper's thread identity.
	Threads int

	// Interleave is forwarded to each shard's gstm.Config.
	Interleave int

	// LabelPrefix names the shards' telemetry registrations:
	// "<prefix><i>" (default prefix "shard"). With a single shard the
	// prefix is used bare, so an unsharded deployment keeps its label.
	LabelPrefix string

	// LockStripes is forwarded to each shard's gstm.Config: positive
	// selects the striped lock-table engine mode per shard (each shard
	// gets its own table, so striping never couples shards). Zero keeps
	// per-location locks.
	LockStripes int
}

func (cfg Config) normalize() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.LabelPrefix == "" {
		cfg.LabelPrefix = "shard"
	}
	return cfg
}

// Router owns the shard Systems and routes keys to them.
type Router struct {
	cfg     Config
	systems []*gstm.System

	// group is the cross-shard coordination state shared by every RunMulti
	// over this router's shards. Single-shard transactions never touch it.
	group *gstm.MultiGroup
}

// New builds a Router with cfg.Shards independent Systems. Each shard
// gets a private version clock when there is more than one shard;
// a single-shard router behaves exactly like a bare System.
func New(cfg Config) *Router {
	cfg = cfg.normalize()
	r := &Router{cfg: cfg, group: gstm.NewMultiGroup()}
	for i := 0; i < cfg.Shards; i++ {
		label := cfg.LabelPrefix
		if cfg.Shards > 1 {
			label = fmt.Sprintf("%s%d", cfg.LabelPrefix, i)
		}
		r.systems = append(r.systems, gstm.NewSystem(gstm.Config{
			Threads:      cfg.Threads,
			Interleave:   cfg.Interleave,
			Label:        label,
			PrivateClock: cfg.Shards > 1,
			LockStripes:  cfg.LockStripes,
		}))
	}
	return r
}

// NewRouting returns a routing-only Router: it answers HomeOf and Shards
// for an n-shard split without building any shard Systems, so clients
// (the load generator) can attribute traffic by home shard. Calling Run,
// RunMulti, System or NewPlan on a routing-only Router panics.
func NewRouting(n int) *Router {
	return &Router{cfg: Config{Shards: n}.normalize()}
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.cfg.Shards }

// System returns shard i's System (per-shard guidance, profiling,
// telemetry and health go through it).
func (r *Router) System(i int) *gstm.System { return r.systems[i] }

// mix is the splitmix64 finalizer: an invertible avalanche so dense or
// striding key patterns still spread across shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HomeOf returns key's home shard — the routing rule, deterministic for
// the Router's lifetime: same key, same shard. It replaces the pre-v1
// package-level HomeOf(key, n); callers without a real Router get one
// from NewRouting.
func (r *Router) HomeOf(key uint64) int {
	if n := r.cfg.Shards; n > 1 {
		return int(mix(key) % uint64(n))
	}
	return 0
}

// Run executes one transaction on shard s — the single-shard fast path,
// identical to calling the shard System's Run directly.
func (r *Router) Run(ctx context.Context, s int, thread gstm.ThreadID, txn gstm.TxnID, fn func(tx *gstm.Tx) error, opts ...gstm.TxOption) error {
	return r.systems[s].Run(ctx, thread, txn, fn, opts...)
}

// Stats sums commit/abort counters across shards.
func (r *Router) Stats() (commits, aborts uint64) {
	for _, sys := range r.systems {
		c, a := sys.Stats()
		commits += c
		aborts += a
	}
	return commits, aborts
}

// ResetStats resets every shard's counters.
func (r *Router) ResetStats() {
	for _, sys := range r.systems {
		sys.ResetStats()
	}
}

// Plan is a reusable scatter-gather of one multi-key batch: item indices
// grouped by home shard, each group preserving the batch's relative
// order. A worker keeps one Plan and rebuilds it per batch; steady-state
// reuse allocates nothing.
type Plan struct {
	r      *Router
	groups [][]int // groups[s]: indices of items homed on shard s
	errs   []error // errs[s]: shard s's sub-transaction outcome
	active []int   // shards with non-empty groups, ascending
}

// NewPlan returns an empty Plan bound to the Router.
func (r *Router) NewPlan() *Plan {
	n := r.Shards()
	p := &Plan{r: r, groups: make([][]int, n), errs: make([]error, n), active: make([]int, 0, n)}
	for s := range p.groups {
		p.groups[s] = make([]int, 0, 8)
	}
	return p
}

// Build partitions items 0..n-1 by the home shard of key(i).
func (p *Plan) Build(n int, key func(i int) uint64) {
	for _, s := range p.active {
		p.groups[s] = p.groups[s][:0]
		p.errs[s] = nil
	}
	p.active = p.active[:0]
	for i := 0; i < n; i++ {
		s := p.r.HomeOf(key(i))
		if len(p.groups[s]) == 0 {
			p.active = append(p.active, s)
		}
		p.groups[s] = append(p.groups[s], i)
	}
	// Ascending shard order keeps sub-transaction execution deterministic
	// for a given batch. Insertion sort: active is at most Shards long and
	// nearly sorted for hash-spread batches.
	for i := 1; i < len(p.active); i++ {
		for j := i; j > 0 && p.active[j] < p.active[j-1]; j-- {
			p.active[j], p.active[j-1] = p.active[j-1], p.active[j]
		}
	}
}

// Active returns the shards this batch touches, ascending. Valid until
// the next Build.
func (p *Plan) Active() []int { return p.active }

// Group returns the batch indices homed on shard s, in batch order.
func (p *Plan) Group(s int) []int { return p.groups[s] }

// Err returns shard s's sub-transaction error from the last Run (nil
// when it committed or the batch didn't touch s).
func (p *Plan) Err(s int) error { return p.errs[s] }

// PlanOption configures one Plan.Run call, mirroring the TxOption style
// of gstm.System.Run.
type PlanOption func(*planSettings)

type planSettings struct {
	opts    []gstm.TxOption
	optsFor func(s int) []gstm.TxOption
}

// WithTxOptions applies the same transaction options to every shard's
// sub-transaction.
func WithTxOptions(opts ...gstm.TxOption) PlanOption {
	return func(ps *planSettings) { ps.opts = opts }
}

// WithShardOptions supplies per-shard transaction options: optsFor(s) is
// called once per active shard and its slice is not retained, letting a
// caller attach shard-specific state — the serving layer threads one
// variance-observatory span per shard sub-transaction this way. When
// combined with WithTxOptions, the shared options apply first and
// optsFor(s)'s after, so per-shard options win on conflict.
func WithShardOptions(optsFor func(s int) []gstm.TxOption) PlanOption {
	return func(ps *planSettings) { ps.optsFor = optsFor }
}

// Run executes the planned batch: one transaction per active shard,
// sequentially in ascending shard order. body runs inside shard s's
// transaction and sees the indices homed there; it is re-run wholesale
// when that shard's transaction retries. Per-shard failures are recorded
// (see Err) and do not stop later shards — a Plan batch is per-shard
// atomic only; callers needing whole-batch atomicity use
// Router.RunMulti. Returns true when every active shard committed.
func (p *Plan) Run(ctx context.Context, thread gstm.ThreadID, txn gstm.TxnID, body func(tx *gstm.Tx, s int, idxs []int) error, opts ...PlanOption) bool {
	var set planSettings
	for _, o := range opts {
		o(&set)
	}
	ok := true
	for _, s := range p.active {
		s, idxs := s, p.groups[s]
		shardOpts := set.opts
		if set.optsFor != nil {
			if extra := set.optsFor(s); len(shardOpts) == 0 {
				shardOpts = extra
			} else if len(extra) > 0 {
				shardOpts = append(append([]gstm.TxOption(nil), shardOpts...), extra...)
			}
		}
		err := p.r.systems[s].Run(ctx, thread, txn, func(tx *gstm.Tx) error {
			return body(tx, s, idxs)
		}, shardOpts...)
		p.errs[s] = err
		if err != nil {
			ok = false
		}
	}
	return ok
}

// RunEach executes the planned batch with one option slice for every
// shard.
//
// Deprecated: use Run, whose variadic PlanOptions subsume both RunEach
// (WithTxOptions) and RunEachOpts (WithShardOptions).
func (p *Plan) RunEach(ctx context.Context, thread gstm.ThreadID, txn gstm.TxnID, body func(tx *gstm.Tx, s int, idxs []int) error, opts ...gstm.TxOption) bool {
	return p.Run(ctx, thread, txn, body, WithTxOptions(opts...))
}

// RunEachOpts executes the planned batch with per-shard option slices.
//
// Deprecated: use Run with WithShardOptions.
func (p *Plan) RunEachOpts(ctx context.Context, thread gstm.ThreadID, txn gstm.TxnID, body func(tx *gstm.Tx, s int, idxs []int) error, optsFor func(s int) []gstm.TxOption) bool {
	return p.Run(ctx, thread, txn, body, WithShardOptions(optsFor))
}

// MultiTx is the cross-shard transaction handle RunMulti passes to its
// body: one sub-transaction per participant shard, all committing
// atomically. Valid only inside the body invocation it was passed to.
type MultiTx struct {
	shards []int      // participant shard indices, ascending
	txs    []*gstm.Tx // aligned with shards
}

// Shards returns the participant shard indices, ascending. The slice is
// shared; do not mutate it.
func (m *MultiTx) Shards() []int { return m.shards }

// On returns the sub-transaction bound to shard s. All transactional
// reads and writes of locations homed on s must go through it — touching
// a shard's Vars through another participant's Tx violates the per-shard
// clock ownership contract. Panics if s is not a participant.
func (m *MultiTx) On(s int) *gstm.Tx {
	for i, sh := range m.shards {
		if sh == s {
			return m.txs[i]
		}
	}
	panic(fmt.Sprintf("shard: MultiTx.On(%d): shard not a participant of this RunMulti", s))
}

// RunMulti executes body as ONE atomic transaction spanning the given
// shards: either every participant publishes its writes at a single
// exchanged write version, or none does (all-or-nothing, abort cause
// cross-shard-validation). shards may repeat and arrive in any order;
// they are deduplicated and sorted ascending, which is the global
// acquisition order that keeps concurrent cross-shard commits
// deadlock-free. body must route each location's access through
// m.On(home shard); it may be re-executed like any transaction body.
//
// A single-shard call degenerates to exactly Run's fast path — no
// cross-shard coordination state is touched. Options follow Run;
// blocking is unsupported cross-shard (a tx.Retry returns
// gstm.ErrWouldBlock).
func (r *Router) RunMulti(ctx context.Context, shards []int, thread gstm.ThreadID, txn gstm.TxnID, body func(m *MultiTx) error, opts ...gstm.TxOption) error {
	norm := normalizeShards(shards, len(r.systems))
	systems := make([]*gstm.System, len(norm))
	for i, s := range norm {
		systems[i] = r.systems[s]
	}
	m := &MultiTx{shards: norm}
	return gstm.RunMulti(ctx, r.group, systems, thread, txn, func(txs []*gstm.Tx) error {
		m.txs = txs
		return body(m)
	}, opts...)
}

// normalizeShards returns the participant list deduplicated and sorted
// ascending, panicking on an out-of-range index (a programming error,
// like indexing System out of range).
func normalizeShards(shards []int, n int) []int {
	norm := make([]int, 0, len(shards))
	for _, s := range shards {
		if s < 0 || s >= n {
			panic(fmt.Sprintf("shard: RunMulti shard %d out of range [0,%d)", s, n))
		}
		norm = append(norm, s)
	}
	// Insertion sort + dedup: participant lists are a handful of shards.
	for i := 1; i < len(norm); i++ {
		for j := i; j > 0 && norm[j] < norm[j-1]; j-- {
			norm[j], norm[j-1] = norm[j-1], norm[j]
		}
	}
	uniq := norm[:0]
	for i, s := range norm {
		if i == 0 || s != norm[i-1] {
			uniq = append(uniq, s)
		}
	}
	return uniq
}
