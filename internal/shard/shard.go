// Package shard partitions a transactional keyspace across independent
// STM Systems. Each shard is a full gstm.System — its own TL2 runtime,
// private version clock, telemetry registration and guidance lifecycle —
// so shards never contend on a clock cache line, a lock table, or a
// commit-sequence slot, and one shard's rejected model never holds back a
// neighbor's hot-swap.
//
// Routing is static: a key's home shard is a splittable-hash of the key
// modulo the shard count, fixed at startup. Transactions whose footprint
// lives on one shard run untouched on that shard's System; multi-key
// batches are scatter-gathered — split into per-shard sub-transactions
// executed in ascending shard order, each atomic on its own shard.
// A cross-shard batch is therefore NOT atomic as a whole: shard i's
// sub-transaction can commit while shard j's fails. Callers that need
// per-operation results (the serving layer does) read per-shard errors
// back from the Plan.
package shard

import (
	"context"
	"fmt"

	"gstm"
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the number of independent Systems the keyspace is split
	// across (default 1). Fixed for the Router's lifetime: rerouting live
	// keys would need cross-shard transactions, which the design excludes.
	Shards int

	// Threads sizes every shard's System. Workers address the same
	// ThreadID on whichever shard a key routes to, so the per-shard
	// Thread State Automata keep the paper's thread identity.
	Threads int

	// Interleave is forwarded to each shard's gstm.Config.
	Interleave int

	// LabelPrefix names the shards' telemetry registrations:
	// "<prefix><i>" (default prefix "shard"). With a single shard the
	// prefix is used bare, so an unsharded deployment keeps its label.
	LabelPrefix string

	// LockStripes is forwarded to each shard's gstm.Config: positive
	// selects the striped lock-table engine mode per shard (each shard
	// gets its own table, so striping never couples shards). Zero keeps
	// per-location locks.
	LockStripes int
}

func (cfg Config) normalize() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.LabelPrefix == "" {
		cfg.LabelPrefix = "shard"
	}
	return cfg
}

// Router owns the shard Systems and routes keys to them.
type Router struct {
	cfg     Config
	systems []*gstm.System
}

// New builds a Router with cfg.Shards independent Systems. Each shard
// gets a private version clock when there is more than one shard;
// a single-shard router behaves exactly like a bare System.
func New(cfg Config) *Router {
	cfg = cfg.normalize()
	r := &Router{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		label := cfg.LabelPrefix
		if cfg.Shards > 1 {
			label = fmt.Sprintf("%s%d", cfg.LabelPrefix, i)
		}
		r.systems = append(r.systems, gstm.NewSystem(gstm.Config{
			Threads:      cfg.Threads,
			Interleave:   cfg.Interleave,
			Label:        label,
			PrivateClock: cfg.Shards > 1,
			LockStripes:  cfg.LockStripes,
		}))
	}
	return r
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.systems) }

// System returns shard i's System (per-shard guidance, profiling,
// telemetry and health go through it).
func (r *Router) System(i int) *gstm.System { return r.systems[i] }

// mix is the splitmix64 finalizer: an invertible avalanche so dense or
// striding key patterns still spread across shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HomeOf returns key's home shard under an n-shard split — the routing
// rule itself, exported so clients (the load generator) can attribute
// traffic to shards without a Router.
func HomeOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(mix(key) % uint64(n))
}

// Home returns the key's home shard. Deterministic for the Router's
// lifetime: same key, same shard.
func (r *Router) Home(key uint64) int {
	return HomeOf(key, len(r.systems))
}

// Run executes one transaction on shard s — the single-shard fast path,
// identical to calling the shard System's Run directly.
func (r *Router) Run(ctx context.Context, s int, thread gstm.ThreadID, txn gstm.TxnID, fn func(tx *gstm.Tx) error, opts ...gstm.TxOption) error {
	return r.systems[s].Run(ctx, thread, txn, fn, opts...)
}

// Stats sums commit/abort counters across shards.
func (r *Router) Stats() (commits, aborts uint64) {
	for _, sys := range r.systems {
		c, a := sys.Stats()
		commits += c
		aborts += a
	}
	return commits, aborts
}

// ResetStats resets every shard's counters.
func (r *Router) ResetStats() {
	for _, sys := range r.systems {
		sys.ResetStats()
	}
}

// Plan is a reusable scatter-gather of one multi-key batch: item indices
// grouped by home shard, each group preserving the batch's relative
// order. A worker keeps one Plan and rebuilds it per batch; steady-state
// reuse allocates nothing.
type Plan struct {
	r      *Router
	groups [][]int // groups[s]: indices of items homed on shard s
	errs   []error // errs[s]: shard s's sub-transaction outcome
	active []int   // shards with non-empty groups, ascending
}

// NewPlan returns an empty Plan bound to the Router.
func (r *Router) NewPlan() *Plan {
	n := r.Shards()
	p := &Plan{r: r, groups: make([][]int, n), errs: make([]error, n), active: make([]int, 0, n)}
	for s := range p.groups {
		p.groups[s] = make([]int, 0, 8)
	}
	return p
}

// Build partitions items 0..n-1 by the home shard of key(i).
func (p *Plan) Build(n int, key func(i int) uint64) {
	for _, s := range p.active {
		p.groups[s] = p.groups[s][:0]
		p.errs[s] = nil
	}
	p.active = p.active[:0]
	for i := 0; i < n; i++ {
		s := p.r.Home(key(i))
		if len(p.groups[s]) == 0 {
			p.active = append(p.active, s)
		}
		p.groups[s] = append(p.groups[s], i)
	}
	// Ascending shard order keeps sub-transaction execution deterministic
	// for a given batch. Insertion sort: active is at most Shards long and
	// nearly sorted for hash-spread batches.
	for i := 1; i < len(p.active); i++ {
		for j := i; j > 0 && p.active[j] < p.active[j-1]; j-- {
			p.active[j], p.active[j-1] = p.active[j-1], p.active[j]
		}
	}
}

// Active returns the shards this batch touches, ascending. Valid until
// the next Build.
func (p *Plan) Active() []int { return p.active }

// Group returns the batch indices homed on shard s, in batch order.
func (p *Plan) Group(s int) []int { return p.groups[s] }

// Err returns shard s's sub-transaction error from the last RunEach
// (nil when it committed or the batch didn't touch s).
func (p *Plan) Err(s int) error { return p.errs[s] }

// RunEach executes the planned batch: one transaction per active shard,
// sequentially in ascending shard order. body runs inside shard s's
// transaction and sees the indices homed there; it is re-run wholesale
// when that shard's transaction retries. Per-shard failures are recorded
// (see Err) and do not stop later shards — cross-shard batches are not
// atomic. Returns true when every active shard committed.
func (p *Plan) RunEach(ctx context.Context, thread gstm.ThreadID, txn gstm.TxnID, body func(tx *gstm.Tx, s int, idxs []int) error, opts ...gstm.TxOption) bool {
	return p.RunEachOpts(ctx, thread, txn, body, func(int) []gstm.TxOption { return opts })
}

// RunEachOpts is RunEach with per-shard options: optsFor(s) supplies shard
// s's option slice, letting a caller attach shard-specific state — the
// serving layer threads one variance-observatory span per shard
// sub-transaction this way. optsFor is called once per active shard; the
// returned slice is not retained.
func (p *Plan) RunEachOpts(ctx context.Context, thread gstm.ThreadID, txn gstm.TxnID, body func(tx *gstm.Tx, s int, idxs []int) error, optsFor func(s int) []gstm.TxOption) bool {
	ok := true
	for _, s := range p.active {
		idxs := p.groups[s]
		err := p.r.systems[s].Run(ctx, thread, txn, func(tx *gstm.Tx) error {
			return body(tx, s, idxs)
		}, optsFor(s)...)
		p.errs[s] = err
		if err != nil {
			ok = false
		}
	}
	return ok
}
