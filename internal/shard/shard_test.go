package shard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gstm"
	"gstm/internal/stmds"
)

func TestHomeDeterministicAndSpread(t *testing.T) {
	r := New(Config{Shards: 4, Threads: 2})
	counts := make([]int, r.Shards())
	for k := uint64(0); k < 8192; k++ {
		s := r.HomeOf(k)
		if again := r.HomeOf(k); again != s {
			t.Fatalf("Home(%d) unstable: %d then %d", k, s, again)
		}
		counts[s]++
	}
	for s, n := range counts {
		// Perfectly even would be 2048 per shard; the splitmix64 finalizer
		// should land well within ±25% even on a dense key range.
		if n < 1536 || n > 2560 {
			t.Fatalf("shard %d got %d of 8192 keys (counts %v)", s, n, counts)
		}
	}
	if one := New(Config{Shards: 1, Threads: 1}); one.HomeOf(12345) != 0 {
		t.Fatal("single-shard router routed off shard 0")
	}
}

// opKind mirrors the serving protocol's data operations.
type opKind int

const (
	opGet opKind = iota
	opPut
	opAdd
	opDel
)

type op struct {
	kind opKind
	key  uint64
	arg  uint64
}

type opResult struct {
	ok  bool
	val uint64
}

// applyOp is the per-operation body shared by the sharded run; it matches
// the serving layer's semantics (put reports whether the key existed, add
// upserts and returns the new value, del reports whether it removed).
func applyOp(tx *gstm.Tx, st *stmds.HashTable[uint64], o op) opResult {
	k := int64(o.key)
	switch o.kind {
	case opGet:
		v, ok := st.Get(tx, k)
		return opResult{ok: ok, val: v}
	case opPut:
		if st.Set(tx, k, o.arg) {
			return opResult{ok: true}
		}
		st.InsertNoCount(tx, k, o.arg)
		return opResult{ok: false}
	case opAdd:
		if v, ok := st.Get(tx, k); ok {
			nv := v + o.arg
			st.Set(tx, k, nv)
			return opResult{ok: true, val: nv}
		}
		st.InsertNoCount(tx, k, o.arg)
		return opResult{ok: false, val: o.arg}
	default: // opDel
		return opResult{ok: st.RemoveNoCount(tx, k)}
	}
}

// oracleOp applies the same semantics to a plain map.
func oracleOp(m map[uint64]uint64, o op) opResult {
	switch o.kind {
	case opGet:
		v, ok := m[o.key]
		return opResult{ok: ok, val: v}
	case opPut:
		_, existed := m[o.key]
		m[o.key] = o.arg
		return opResult{ok: existed}
	case opAdd:
		v, existed := m[o.key]
		m[o.key] = v + o.arg
		return opResult{ok: existed, val: v + o.arg}
	default:
		_, existed := m[o.key]
		delete(m, o.key)
		return opResult{ok: existed}
	}
}

// randBatch draws one same-kind batch of up to 8 ops over pairwise
// distinct keys — the serving layer's batching rules.
func randBatch(rng *rand.Rand, keyspace uint64) []op {
	kind := opKind(rng.Intn(4))
	n := 1 + rng.Intn(8)
	batch := make([]op, 0, n)
	seen := make(map[uint64]bool, n)
	for len(batch) < n {
		k := rng.Uint64() % keyspace
		if seen[k] {
			continue
		}
		seen[k] = true
		batch = append(batch, op{kind: kind, key: k, arg: rng.Uint64() % 1000})
	}
	return batch
}

// TestRouterPropertyVsOracle streams randomized multi-key batches through
// a 4-shard router via scatter-gather Plans and checks every operation's
// result — and the final keyspace — against a sequential single-map
// oracle. Mid-run, every shard trains guidance from live profiling;
// shard 2's model is force-rejected, so it keeps serving unguided while
// its neighbors run guided. Distinct keys within a batch make the oracle
// order-insensitive inside a batch, so per-shard sub-transaction order
// cannot change observable results.
func TestRouterPropertyVsOracle(t *testing.T) {
	const (
		threads  = 4
		batches  = 1200
		keyspace = 96
		rejected = 2
	)
	r := New(Config{Shards: 4, Threads: threads, Interleave: 4})
	stores := make([]*stmds.HashTable[uint64], r.Shards())
	for s := range stores {
		stores[s] = stmds.NewHashTable[uint64](64)
	}
	oracle := make(map[uint64]uint64, keyspace)
	rng := rand.New(rand.NewSource(0xD1CE))
	plan := r.NewPlan()

	// Phase boundaries: profile the first third on every shard, then
	// hot-swap guidance (force-rejecting shard `rejected`) and keep
	// streaming.
	for s := 0; s < r.Shards(); s++ {
		r.System(s).StartProfiling()
	}
	swapped := false

	results := make([]opResult, 8)
	for b := 0; b < batches; b++ {
		if !swapped && b == batches/3 {
			for s := 0; s < r.Shards(); s++ {
				tr := r.System(s).StopProfiling()
				if tr == nil {
					t.Fatalf("shard %d: profiling produced no trace", s)
				}
				if s == rejected {
					// An empty model is exactly what the analyzer rejects;
					// the shard must latch unguided and keep serving.
					if err := r.System(s).EnableGuidance(gstm.BuildModel(threads, nil)); err == nil {
						t.Fatal("empty model unexpectedly accepted")
					}
					continue
				}
				r.System(s).ForceGuidance(gstm.BuildModel(threads, []*gstm.Trace{tr}), gstm.WithTfactor(2))
			}
			swapped = true
		}

		batch := randBatch(rng, keyspace)
		plan.Build(len(batch), func(i int) uint64 { return batch[i].key })
		thread := gstm.ThreadID(b % threads)
		okAll := plan.Run(nil, thread, gstm.TxnID(batch[0].kind), func(tx *gstm.Tx, s int, idxs []int) error {
			for _, i := range idxs {
				results[i] = applyOp(tx, stores[s], batch[i])
			}
			return nil
		})
		if !okAll {
			for _, s := range plan.Active() {
				if err := plan.Err(s); err != nil {
					t.Fatalf("batch %d shard %d: %v", b, s, err)
				}
			}
		}
		for i, o := range batch {
			want := oracleOp(oracle, o)
			if results[i] != want {
				t.Fatalf("batch %d op %d (%+v): got %+v, want %+v", b, i, o, results[i], want)
			}
		}
	}
	if !swapped {
		t.Fatal("guidance swap never happened")
	}
	if mode := r.System(rejected).Mode(); mode != gstm.ModeUnguided {
		t.Fatalf("rejected shard mode = %v, want unguided", mode)
	}
	guidedShards := 0
	for s := 0; s < r.Shards(); s++ {
		if r.System(s).Mode() == gstm.ModeGuided {
			guidedShards++
		}
	}
	if guidedShards != r.Shards()-1 {
		t.Fatalf("guided shards = %d, want %d", guidedShards, r.Shards()-1)
	}

	// Final-state sweep: every key reads back exactly the oracle's value,
	// through its home shard.
	for k := uint64(0); k < keyspace; k++ {
		var got opResult
		s := r.HomeOf(k)
		err := r.Run(nil, s, 0, 0, func(tx *gstm.Tx) error {
			got = applyOp(tx, stores[s], op{kind: opGet, key: k})
			return nil
		}, gstm.WithReadOnly())
		if err != nil {
			t.Fatalf("final read key %d: %v", k, err)
		}
		wantV, wantOK := oracle[k]
		if got.ok != wantOK || (wantOK && got.val != wantV) {
			t.Fatalf("key %d: sharded %+v, oracle (%d,%v)", k, got, wantV, wantOK)
		}
	}

	commits, _ := r.Stats()
	if commits == 0 {
		t.Fatal("router counted no commits")
	}
}

// addDelta adds delta (two's complement) to key in st, upserting.
func addDelta(tx *gstm.Tx, st *stmds.HashTable[uint64], key, delta uint64) {
	k := int64(key)
	if v, ok := st.Get(tx, k); ok {
		st.Set(tx, k, v+delta)
	} else {
		st.InsertNoCount(tx, k, delta)
	}
}

// TestRouterCrossShardTransfers drives concurrent zero-sum transfers
// through Router.RunMulti while reader goroutines take cross-shard
// snapshots of the whole keyspace: every snapshot must sum to the seeded
// total (all-or-nothing publication — a torn commit would surface as a
// wrong sum), and the final per-key sweep must conserve balance exactly.
// Mid-run every shard's guidance hot-swaps from live profiling with
// shard 2's model force-rejected, so transfers keep committing across a
// guided/unguided mix.
func TestRouterCrossShardTransfers(t *testing.T) {
	const (
		workers  = 4
		readers  = 2
		perW     = 400
		keyspace = 64
		seedVal  = uint64(1) << 20
		rejected = 2
	)
	r := New(Config{Shards: 4, Threads: workers + readers, Interleave: 4})
	stores := make([]*stmds.HashTable[uint64], r.Shards())
	for s := range stores {
		stores[s] = stmds.NewHashTable[uint64](64)
	}
	for k := uint64(0); k < keyspace; k++ {
		s := r.HomeOf(k)
		if err := r.Run(nil, s, 0, 0, func(tx *gstm.Tx) error {
			addDelta(tx, stores[s], k, seedVal)
			return nil
		}); err != nil {
			t.Fatalf("seed key %d: %v", k, err)
		}
	}
	total := uint64(keyspace) * seedVal

	for s := 0; s < r.Shards(); s++ {
		r.System(s).StartProfiling()
	}

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	all := make([]int, r.Shards())
	for s := range all {
		all[s] = s
	}
	for i := 0; i < readers; i++ {
		rwg.Add(1)
		go func(i int) {
			defer rwg.Done()
			thread := gstm.ThreadID(workers + i)
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sum uint64
				err := r.RunMulti(nil, all, thread, 0, func(m *MultiTx) error {
					sum = 0
					for k := uint64(0); k < keyspace; k++ {
						s := r.HomeOf(k)
						v, _ := stores[s].Get(m.On(s), int64(k))
						sum += v
					}
					return nil
				}, gstm.WithReadOnly())
				if err != nil {
					t.Errorf("snapshot read: %v", err)
					return
				}
				if sum != total {
					t.Errorf("torn read: snapshot sum %d, want %d", sum, total)
					return
				}
			}
		}(i)
	}

	var done, transfers atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 3))
			shards := make([]int, 0, 2)
			for i := 0; i < perW; i++ {
				from := rng.Uint64() % keyspace
				to := rng.Uint64() % keyspace
				if to == from {
					to = (from + 1) % keyspace
				}
				amt := rng.Uint64()%16 + 1
				shards = append(shards[:0], r.HomeOf(from), r.HomeOf(to))
				err := r.RunMulti(nil, shards, gstm.ThreadID(w), 1, func(m *MultiTx) error {
					addDelta(m.On(r.HomeOf(from)), stores[r.HomeOf(from)], from, -amt)
					addDelta(m.On(r.HomeOf(to)), stores[r.HomeOf(to)], to, amt)
					return nil
				})
				if err != nil {
					t.Errorf("transfer %d/%d: %v", w, i, err)
					return
				}
				if shards[0] != shards[1] {
					transfers.Add(1)
				}
				done.Add(1)
			}
		}(w)
	}

	// Half-way through the transfer stream, train guidance from the live
	// profile and hot-swap it in — with shard `rejected` kept unguided via
	// an analyzer-rejected empty model.
	for done.Load() < workers*perW/2 {
		time.Sleep(time.Millisecond)
	}
	for s := 0; s < r.Shards(); s++ {
		tr := r.System(s).StopProfiling()
		if tr == nil {
			t.Fatalf("shard %d: profiling produced no trace", s)
		}
		if s == rejected {
			if err := r.System(s).EnableGuidance(gstm.BuildModel(workers+readers, nil)); err == nil {
				t.Fatal("empty model unexpectedly accepted")
			}
			continue
		}
		r.System(s).ForceGuidance(gstm.BuildModel(workers+readers, []*gstm.Trace{tr}), gstm.WithTfactor(2))
	}

	wg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if transfers.Load() == 0 {
		t.Fatal("no transfer crossed shards")
	}
	if mode := r.System(rejected).Mode(); mode != gstm.ModeUnguided {
		t.Fatalf("rejected shard mode = %v, want unguided", mode)
	}

	// Exact conservation on the final state, read per home shard.
	var final uint64
	for k := uint64(0); k < keyspace; k++ {
		s := r.HomeOf(k)
		var got uint64
		if err := r.Run(nil, s, 0, 0, func(tx *gstm.Tx) error {
			got, _ = stores[s].Get(tx, int64(k))
			return nil
		}, gstm.WithReadOnly()); err != nil {
			t.Fatalf("final read key %d: %v", k, err)
		}
		final += got
	}
	if final != total {
		t.Fatalf("balance not conserved: final sum %d, want %d", final, total)
	}
}

// TestRouterConcurrentAdds hammers the router from concurrent workers
// with commutative add-only batches while guidance flips on and off on
// one shard — the data path and the lifecycle path racing is exactly
// what -race should see. Final sums must be exact.
func TestRouterConcurrentAdds(t *testing.T) {
	const (
		workers  = 4
		perW     = 300
		keyspace = 48
	)
	r := New(Config{Shards: 4, Threads: workers, Interleave: 4})
	stores := make([]*stmds.HashTable[uint64], r.Shards())
	for s := range stores {
		stores[s] = stmds.NewHashTable[uint64](64)
	}

	var wg sync.WaitGroup
	expected := make([]map[uint64]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			plan := r.NewPlan()
			exp := make(map[uint64]uint64, keyspace)
			for b := 0; b < perW; b++ {
				batch := randBatch(rng, keyspace)
				for i := range batch {
					batch[i].kind = opAdd
				}
				plan.Build(len(batch), func(i int) uint64 { return batch[i].key })
				ok := plan.Run(nil, gstm.ThreadID(w), 0, func(tx *gstm.Tx, s int, idxs []int) error {
					for _, i := range idxs {
						applyOp(tx, stores[s], batch[i])
					}
					return nil
				})
				if !ok {
					t.Error("unbounded add batch failed")
					return
				}
				for _, o := range batch {
					exp[o.key] += o.arg
				}
			}
			expected[w] = exp
		}(w)
	}

	// Lifecycle churn on shard 1 while the data path is hot. Throttled so
	// the churn goroutine doesn't monopolize a single-core machine.
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		sys := r.System(1)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			sys.StartProfiling()
			if tr := sys.StopProfiling(); tr != nil && i%2 == 0 {
				sys.ForceGuidance(gstm.BuildModel(workers, []*gstm.Trace{tr}), gstm.WithTfactor(2))
			}
			sys.DisableGuidance()
		}
	}()

	wg.Wait()
	close(stop)
	churn.Wait()

	want := make(map[uint64]uint64, keyspace)
	for _, exp := range expected {
		for k, v := range exp {
			want[k] += v
		}
	}
	for k, wv := range want {
		s := r.HomeOf(k)
		var got opResult
		if err := r.Run(nil, s, 0, 0, func(tx *gstm.Tx) error {
			got = applyOp(tx, stores[s], op{kind: opGet, key: k})
			return nil
		}, gstm.WithReadOnly()); err != nil {
			t.Fatalf("read key %d: %v", k, err)
		}
		if !got.ok || got.val != wv {
			t.Fatalf("key %d: got (%d,%v), want %d", k, got.val, got.ok, wv)
		}
	}
}
