// Package stats provides the statistical measures used throughout the GSTM
// experiments: sample standard deviation and variance of execution times,
// abort-count histograms and their tail metric, the distinct-state count
// used as the non-determinism measure, and percentage-change helpers.
//
// All definitions follow Section II-B of the paper:
//
//   - Variance of a thread's execution time is reported as the sample
//     standard deviation s = sqrt(1/(N-1) * Σ (x_i - mean)^2).
//   - Non-determinism is the number of distinct thread transactional states
//     |S| exercised by an execution.
//   - The tail metric for a thread is Σ j^2 over every distinct abort count
//     j that occurred with non-zero frequency (Section VII).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need at least two
// samples (e.g. sample standard deviation).
var ErrInsufficientData = errors.New("stats: need at least two samples")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
// It returns ErrInsufficientData when len(xs) < 2.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation of xs, the paper's measure of
// execution-time variance. It returns ErrInsufficientData when len(xs) < 2.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice.
// The input slice is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// PercentChange returns the percentage change from base to next:
// positive when next > base. It returns 0 when base == 0.
func PercentChange(base, next float64) float64 {
	if base == 0 {
		return 0
	}
	return (next - base) / base * 100
}

// PercentImprovement returns the percentage *reduction* from base to next:
// positive when next < base (an improvement for variance-like quantities).
// It returns 0 when base == 0.
func PercentImprovement(base, next float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - next) / base * 100
}

// Slowdown returns next/base as a multiplicative slowdown factor
// (1.0 = unchanged, 2.0 = twice as slow). It returns 0 when base == 0.
func Slowdown(base, next float64) float64 {
	if base == 0 {
		return 0
	}
	return next / base
}

// Percentile returns the p-th percentile of xs (0 <= p <= 100) using
// nearest-rank on a sorted copy; it returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	rank := int(math.Ceil(p / 100 * float64(len(cp))))
	if rank < 1 {
		rank = 1
	}
	return cp[rank-1]
}

// CoefficientOfVariation returns the sample standard deviation divided by
// the mean — the relative jitter measure used for frame-time reporting.
// It returns 0 when the mean is 0 or there are fewer than two samples.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0
	}
	return sd / m
}
