package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts occurrences of small non-negative integer observations,
// such as "number of aborts a transaction suffered before committing".
// The zero value is an empty histogram ready for use.
type Histogram struct {
	counts map[int]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Add records one observation of value v. Negative values are rejected.
func (h *Histogram) Add(v int) error {
	if v < 0 {
		return fmt.Errorf("stats: negative histogram value %d", v)
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[v]++
	h.total++
	return nil
}

// AddN records n observations of value v.
func (h *Histogram) AddN(v int, n int64) error {
	if v < 0 {
		return fmt.Errorf("stats: negative histogram value %d", v)
	}
	if n < 0 {
		return fmt.Errorf("stats: negative histogram count %d", n)
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	h.counts[v] += n
	h.total += n
	return nil
}

// Merge adds every bucket of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	for v, n := range other.counts {
		h.counts[v] += n
		h.total += n
	}
}

// Count returns the frequency of value v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int64 { return h.total }

// MaxValue returns the largest observed value, or -1 if empty.
func (h *Histogram) MaxValue() int {
	max := -1
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Values returns the distinct observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// TailMetric implements the paper's tail-of-distribution measure for a
// thread's abort histogram:
//
//	tail = Σ j²  over each distinct abort count j with non-zero frequency.
//
// Squaring weights the long tail: a thread that ever saw 30 aborts
// contributes 900 regardless of how rarely, so cutting extreme abort counts
// shows up strongly even if common cases are unchanged.
func (h *Histogram) TailMetric() float64 {
	tail := 0.0
	for v, n := range h.counts {
		if n > 0 {
			tail += float64(v) * float64(v)
		}
	}
	return tail
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0.0
	for v, n := range h.counts {
		sum += float64(v) * float64(n)
	}
	return sum / float64(h.total)
}

// String renders the histogram in the artifact's "aborts:frequency" format,
// e.g. "0:700 1:52 4:3".
func (h *Histogram) String() string {
	var b strings.Builder
	for i, v := range h.Values() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", v, h.counts[v])
	}
	return b.String()
}

// TailImprovement returns the average percentage improvement of the tail
// metric across paired per-thread histograms (Table IV). Threads whose
// baseline tail metric is zero are skipped, matching the paper's ssca2 rows
// reported as 0.
func TailImprovement(base, guided []*Histogram) float64 {
	n := len(base)
	if len(guided) < n {
		n = len(guided)
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		bt := base[i].TailMetric()
		if bt == 0 {
			continue
		}
		sum += PercentImprovement(bt, guided[i].TailMetric())
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
