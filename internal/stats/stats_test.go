package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 32.0/7.0) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
	s, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s, math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", s)
	}
}

func TestVarianceInsufficientData(t *testing.T) {
	if _, err := Variance([]float64{1}); err != ErrInsufficientData {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
	if _, err := StdDev(nil); err != ErrInsufficientData {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median = %v, want 3", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5) {
		t.Fatalf("even Median = %v, want 2.5", got)
	}
	// Median must not reorder its input.
	if xs[0] != 3 || xs[4] != 5 {
		t.Fatal("Median mutated input")
	}
	if Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty-slice extrema should be 0")
	}
}

func TestPercentHelpers(t *testing.T) {
	if got := PercentChange(100, 120); !almostEqual(got, 20) {
		t.Fatalf("PercentChange = %v", got)
	}
	if got := PercentImprovement(100, 40); !almostEqual(got, 60) {
		t.Fatalf("PercentImprovement = %v", got)
	}
	if got := PercentImprovement(100, 120); !almostEqual(got, -20) {
		t.Fatalf("negative improvement = %v", got)
	}
	if PercentChange(0, 5) != 0 || PercentImprovement(0, 5) != 0 || Slowdown(0, 5) != 0 {
		t.Fatal("zero-base helpers must return 0")
	}
	if got := Slowdown(2, 3); !almostEqual(got, 1.5) {
		t.Fatalf("Slowdown = %v", got)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		s, err := StdDev(clean)
		return err == nil && s >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStdDevShiftInvarianceProperty(t *testing.T) {
	// StdDev(x + c) == StdDev(x) for any constant shift.
	f := func(seed uint32) bool {
		xs := make([]float64, 16)
		r := uint64(seed) | 1
		for i := range xs {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			xs[i] = float64(r % 1000)
		}
		s1, _ := StdDev(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 12345
		}
		s2, _ := StdDev(shifted)
		return math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 99); got != 5 {
		t.Fatalf("p99 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Out-of-range p clamps.
	if Percentile(xs, -5) != 1 || Percentile(xs, 200) != 5 {
		t.Fatal("clamping broken")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if got := CoefficientOfVariation([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("constant CV = %v", got)
	}
	xs := []float64{1, 3}
	want := math.Sqrt(2) / 2
	if got := CoefficientOfVariation(xs); !almostEqual(got, want) {
		t.Fatalf("CV = %v, want %v", got, want)
	}
	if CoefficientOfVariation(nil) != 0 || CoefficientOfVariation([]float64{0, 0}) != 0 {
		t.Fatal("degenerate CV should be 0")
	}
}
