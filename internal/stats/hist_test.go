package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 || h.MaxValue() != -1 || h.String() != "" {
		t.Fatal("empty histogram invariants violated")
	}
	for i := 0; i < 700; i++ {
		if err := h.Add(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddN(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(7); err != nil {
		t.Fatal(err)
	}
	if h.Count(0) != 700 || h.Count(3) != 2 || h.Count(7) != 1 {
		t.Fatalf("counts wrong: %v", h)
	}
	if h.Total() != 703 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.MaxValue() != 7 {
		t.Fatalf("MaxValue = %d", h.MaxValue())
	}
	if got := h.String(); got != "0:700 3:2 7:1" {
		t.Fatalf("String = %q", got)
	}
	if got, want := h.TailMetric(), float64(0+9+49); got != want {
		t.Fatalf("TailMetric = %v, want %v", got, want)
	}
}

func TestHistogramRejectsNegative(t *testing.T) {
	h := NewHistogram()
	if err := h.Add(-1); err == nil {
		t.Fatal("Add(-1) accepted")
	}
	if err := h.AddN(1, -2); err == nil {
		t.Fatal("AddN with negative count accepted")
	}
	if err := h.AddN(-1, 2); err == nil {
		t.Fatal("AddN with negative value accepted")
	}
}

func TestHistogramZeroValueUsable(t *testing.T) {
	var h Histogram
	if err := h.Add(2); err != nil {
		t.Fatal(err)
	}
	if h.Count(2) != 1 {
		t.Fatal("zero-value histogram unusable")
	}
	var h2 Histogram
	if err := h2.AddN(1, 5); err != nil {
		t.Fatal(err)
	}
	if h2.Total() != 5 {
		t.Fatal("zero-value AddN failed")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	_ = a.AddN(0, 10)
	_ = a.AddN(2, 1)
	_ = b.AddN(0, 5)
	_ = b.AddN(4, 2)
	a.Merge(b)
	if a.Count(0) != 15 || a.Count(2) != 1 || a.Count(4) != 2 || a.Total() != 18 {
		t.Fatalf("merge wrong: %v", a)
	}
	a.Merge(nil) // must not panic
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	_ = h.AddN(0, 2)
	_ = h.AddN(3, 2)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("Mean = %v, want 1.5", got)
	}
	if NewHistogram().Mean() != 0 {
		t.Fatal("empty Mean != 0")
	}
}

func TestTailMetricCutsWithTail(t *testing.T) {
	// Removing the extreme abort count must shrink the tail metric even if
	// common-case counts grow.
	long := NewHistogram()
	_ = long.AddN(0, 100)
	_ = long.AddN(1, 10)
	_ = long.AddN(30, 1)
	short := NewHistogram()
	_ = short.AddN(0, 80)
	_ = short.AddN(1, 40)
	_ = short.AddN(2, 5)
	if long.TailMetric() <= short.TailMetric() {
		t.Fatalf("tail metric did not weight the tail: long=%v short=%v",
			long.TailMetric(), short.TailMetric())
	}
}

func TestTailImprovement(t *testing.T) {
	mk := func(vals ...int) *Histogram {
		h := NewHistogram()
		for _, v := range vals {
			_ = h.Add(v)
		}
		return h
	}
	base := []*Histogram{mk(0, 1, 4), mk(0, 2)}   // tails: 17, 4
	guided := []*Histogram{mk(0, 1), mk(0, 1)}    // tails: 1, 1
	got := TailImprovement(base, guided)          // (16/17 + 3/4)/2 * 100
	want := ((16.0/17.0)*100 + (3.0/4.0)*100) / 2 //
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("TailImprovement = %v, want %v", got, want)
	}
	// Zero-tail baselines are skipped (ssca2 rows report 0).
	if got := TailImprovement([]*Histogram{mk(0)}, []*Histogram{mk(0)}); got != 0 {
		t.Fatalf("zero-tail TailImprovement = %v, want 0", got)
	}
}

func TestHistogramValuesSortedProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		h := NewHistogram()
		for _, v := range raw {
			if err := h.Add(int(v)); err != nil {
				return false
			}
		}
		vs := h.Values()
		for i := 1; i < len(vs); i++ {
			if vs[i-1] >= vs[i] {
				return false
			}
		}
		var total int64
		for _, v := range vs {
			total += h.Count(v)
		}
		return total == int64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramZeroValueReady(t *testing.T) {
	// The doc comment promises "the zero value is an empty histogram ready
	// for use": every path that writes the lazily-made counts map, and every
	// reader, must tolerate a Histogram that never went through NewHistogram.
	var h Histogram
	if h.Total() != 0 || h.Count(0) != 0 || h.MaxValue() != -1 {
		t.Fatalf("zero value not empty: total=%d count0=%d max=%d", h.Total(), h.Count(0), h.MaxValue())
	}
	if vs := h.Values(); len(vs) != 0 {
		t.Fatalf("zero-value Values = %v", vs)
	}
	if h.Mean() != 0 || h.TailMetric() != 0 || h.String() != "" {
		t.Fatalf("zero-value reads: mean=%v tail=%v str=%q", h.Mean(), h.TailMetric(), h.String())
	}

	var a Histogram
	if err := a.Add(3); err != nil {
		t.Fatal(err)
	}
	if a.Count(3) != 1 || a.Total() != 1 {
		t.Fatalf("Add on zero value: %v", a.String())
	}

	var b Histogram
	if err := b.AddN(2, 5); err != nil {
		t.Fatal(err)
	}
	if b.Count(2) != 5 || b.Total() != 5 {
		t.Fatalf("AddN on zero value: %v", b.String())
	}

	var c Histogram
	c.Merge(&b)
	if c.Count(2) != 5 || c.Total() != 5 {
		t.Fatalf("Merge into zero value: %v", c.String())
	}
	c.Merge(nil) // nil other is a no-op
	if c.Total() != 5 {
		t.Fatalf("Merge(nil) changed the histogram: %v", c.String())
	}

	// Merging a zero-value source must not disturb the destination.
	var empty Histogram
	c.Merge(&empty)
	if c.Total() != 5 {
		t.Fatalf("merging empty source changed totals: %v", c.String())
	}
}
