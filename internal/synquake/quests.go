// Package synquake is a from-scratch 2-D multiplayer game server in the
// mould of SynQuake (Lupei et al., PPoPP'10), the Quake 3 derivative the
// paper uses for its real-world evaluation (Section VIII). Players move on
// a 1024×1024 map under quest attraction; server threads process players
// frame by frame inside barriers, with every game-state mutation running as
// a LibTM transaction (fully optimistic detection, abort-readers
// resolution, as in the paper).
//
// The original's quest inputs are reproduced by name: 4worst_case and
// 4moving train the model, 4quadrants and 4center_spread6 are measured.
package synquake

import (
	"fmt"
	"math"
)

// Quest produces the map locations of the four high-interest points for a
// given frame. Players are attracted to their assigned point, concentrating
// them — and their transactional footprints — in small regions.
type Quest interface {
	// Name returns the artifact's quest name.
	Name() string
	// Points returns the four attraction points for the frame.
	Points(frame int) [4][2]int32
}

// QuestByName returns one of the four paper quests for a map of the given
// size.
func QuestByName(name string, mapSize int32) (Quest, error) {
	switch name {
	case "4worst_case":
		return worstCase{size: mapSize}, nil
	case "4moving":
		return moving{size: mapSize}, nil
	case "4quadrants":
		return quadrants{size: mapSize}, nil
	case "4center_spread6":
		return centerSpread{size: mapSize, spreadCells: 6}, nil
	default:
		return nil, fmt.Errorf("synquake: unknown quest %q (have 4worst_case, 4moving, 4quadrants, 4center_spread6)", name)
	}
}

// TrainingQuests returns the two quests the paper trains on.
func TrainingQuests(mapSize int32) []Quest {
	return []Quest{worstCase{size: mapSize}, moving{size: mapSize}}
}

// TestQuests returns the two quests the paper measures.
func TestQuests(mapSize int32) []Quest {
	return []Quest{quadrants{size: mapSize}, centerSpread{size: mapSize, spreadCells: 6}}
}

// worstCase piles all four points onto the map centre: every player
// converges on one spot, the maximum-contention input.
type worstCase struct{ size int32 }

func (worstCase) Name() string { return "4worst_case" }

func (q worstCase) Points(int) [4][2]int32 {
	c := q.size / 2
	return [4][2]int32{{c, c}, {c + 8, c}, {c, c + 8}, {c + 8, c + 8}}
}

// moving orbits the four points slowly around the centre, dragging the
// player crowd (and the contention locus) across the map.
type moving struct{ size int32 }

func (moving) Name() string { return "4moving" }

func (q moving) Points(frame int) [4][2]int32 {
	c := float64(q.size / 2)
	r := float64(q.size) / 4
	var out [4][2]int32
	for i := 0; i < 4; i++ {
		ang := float64(frame)/40 + float64(i)*math.Pi/2
		out[i] = [2]int32{
			int32(c + r*math.Cos(ang)),
			int32(c + r*math.Sin(ang)),
		}
	}
	return out
}

// quadrants places one point at the centre of each map quadrant, splitting
// the crowd four ways.
type quadrants struct{ size int32 }

func (quadrants) Name() string { return "4quadrants" }

func (q quadrants) Points(int) [4][2]int32 {
	lo, hi := q.size/4, 3*q.size/4
	return [4][2]int32{{lo, lo}, {hi, lo}, {lo, hi}, {hi, hi}}
}

// centerSpread spreads four points around the centre at a radius of
// spreadCells grid cells — crowded but not piled onto one spot.
type centerSpread struct {
	size        int32
	spreadCells int32
}

func (centerSpread) Name() string { return "4center_spread6" }

func (q centerSpread) Points(int) [4][2]int32 {
	c := q.size / 2
	d := q.spreadCells * cellSize
	return [4][2]int32{{c - d, c}, {c + d, c}, {c, c - d}, {c, c + d}}
}
