package synquake

import (
	"testing"

	"gstm/internal/libtm"
)

func TestCellIndexCoversGrid(t *testing.T) {
	rt := libtm.New(libtm.Config{})
	q, _ := QuestByName("4quadrants", 1024)
	g, err := NewGame(Config{Threads: 1, Players: 4, Frames: 1, MapSize: 1024}, q, rt)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]bool)
	for y := int32(0); y < 1024; y += cellSize {
		for x := int32(0); x < 1024; x += cellSize {
			ci := g.cellIndex(x, y)
			if ci < 0 || int(ci) >= len(g.cells) {
				t.Fatalf("cellIndex(%d,%d) = %d out of range", x, y, ci)
			}
			if seen[ci] {
				t.Fatalf("cell %d mapped twice", ci)
			}
			seen[ci] = true
		}
	}
	if len(seen) != len(g.cells) {
		t.Fatalf("covered %d cells of %d", len(seen), len(g.cells))
	}
	// Same cell for all positions within one cell.
	if g.cellIndex(0, 0) != g.cellIndex(cellSize-1, cellSize-1) {
		t.Fatal("positions within one cell map to different cells")
	}
}

func TestStepClampsSpeed(t *testing.T) {
	cases := []struct {
		target, cur, want int32
	}{
		{100, 0, 12},
		{0, 100, -12},
		{5, 0, 5},
		{0, 5, -5},
		{7, 7, 0},
	}
	for _, c := range cases {
		if got := step(c.target, c.cur); got != c.want {
			t.Errorf("step(%d, %d) = %d, want %d", c.target, c.cur, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if clamp(-5, 0, 10) != 0 || clamp(15, 0, 10) != 10 || clamp(5, 0, 10) != 5 {
		t.Fatal("clamp broken")
	}
}

func TestRemoveAppendID(t *testing.T) {
	ids := []int32{1, 2, 3}
	got := removeID(ids, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("removeID = %v", got)
	}
	// Original must be untouched (copy-on-write).
	if len(ids) != 3 || ids[1] != 2 {
		t.Fatal("removeID mutated input")
	}
	got2 := appendID(ids, 9)
	if len(got2) != 4 || got2[3] != 9 {
		t.Fatalf("appendID = %v", got2)
	}
	if len(ids) != 3 {
		t.Fatal("appendID mutated input")
	}
	// Removing an absent ID is a no-op copy.
	if got3 := removeID(ids, 42); len(got3) != 3 {
		t.Fatalf("removeID(absent) = %v", got3)
	}
}

func TestInitialPlacementConsistent(t *testing.T) {
	rt := libtm.New(libtm.Config{})
	q, _ := QuestByName("4worst_case", 1024)
	g, err := NewGame(Config{Threads: 2, Players: 100, Frames: 1, MapSize: 1024, Seed: 8}, q, rt)
	if err != nil {
		t.Fatal(err)
	}
	// Before any frame runs, the grid must already be consistent.
	if err := g.Validate(); err != nil {
		t.Fatalf("initial world invalid: %v", err)
	}
}

func TestCenterSpreadPointsInBounds(t *testing.T) {
	q, _ := QuestByName("4center_spread6", 1024)
	for _, p := range q.Points(0) {
		if p[0] < 0 || p[0] >= 1024 || p[1] < 0 || p[1] >= 1024 {
			t.Fatalf("point %v out of bounds", p)
		}
	}
}

func TestMovingQuestStaysInBounds(t *testing.T) {
	q, _ := QuestByName("4moving", 1024)
	for frame := 0; frame < 2000; frame += 37 {
		for _, p := range q.Points(frame) {
			if p[0] < 0 || p[0] >= 1024 || p[1] < 0 || p[1] >= 1024 {
				t.Fatalf("frame %d point %v out of bounds", frame, p)
			}
		}
	}
}

func TestFrameCountRespected(t *testing.T) {
	rt := libtm.New(libtm.Config{Interleave: 4})
	q, _ := QuestByName("4quadrants", 1024)
	g, err := NewGame(Config{Threads: 2, Players: 32, Frames: 7, MapSize: 1024, Seed: 2}, q, rt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FrameTimes) != 7 {
		t.Fatalf("frames = %d, want 7", len(res.FrameTimes))
	}
}

func TestPlayersConvergeOnQuest(t *testing.T) {
	rt := libtm.New(libtm.Config{})
	q, _ := QuestByName("4worst_case", 1024)
	cfg := Config{Threads: 2, Players: 64, Frames: 120, MapSize: 1024, Seed: 4}
	g, err := NewGame(cfg, q, rt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	// After many frames, players must be near the centre (the quest is
	// there and movement is 12 units/frame with ±8 jitter).
	centre := int32(512)
	far := 0
	for _, p := range g.players {
		pl := p.Peek()
		dx, dy := pl.X-centre, pl.Y-centre
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy > 200 {
			far++
		}
	}
	if far > len(g.players)/4 {
		t.Fatalf("%d of %d players never converged on the hotspot", far, len(g.players))
	}
}

func TestItemsConservedUnderContention(t *testing.T) {
	rt := libtm.New(libtm.Config{Interleave: 4})
	q, _ := QuestByName("4worst_case", 1024)
	g, err := NewGame(Config{Threads: 4, Players: 96, Frames: 60, MapSize: 1024, Seed: 6}, q, rt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if g.spawned == 0 {
		t.Fatal("no items spawned")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("item conservation broken: %v", err)
	}
	// With everyone at the hotspot, at least some pickups must happen.
	picked := int32(0)
	for _, p := range g.players {
		picked += p.Peek().Items
	}
	if picked == 0 {
		t.Fatal("no items ever picked up; pickup path untested")
	}
}

func TestAreaOfInterestShape(t *testing.T) {
	rt := libtm.New(libtm.Config{})
	q, _ := QuestByName("4quadrants", 1024)
	g, err := NewGame(Config{Threads: 1, Players: 4, Frames: 1, MapSize: 1024}, q, rt)
	if err != nil {
		t.Fatal(err)
	}
	// Interior cell: 9 neighbours; corner: 4; edge: 6.
	interior := g.cellsW + 1 // (1,1)
	if got := len(g.areaOfInterest(interior)); got != 9 {
		t.Fatalf("interior AoI = %d, want 9", got)
	}
	if got := len(g.areaOfInterest(0)); got != 4 {
		t.Fatalf("corner AoI = %d, want 4", got)
	}
	if got := len(g.areaOfInterest(1)); got != 6 {
		t.Fatalf("edge AoI = %d, want 6", got)
	}
	// Every returned cell is in range and unique.
	seen := map[int32]bool{}
	for _, c := range g.areaOfInterest(interior) {
		if c < 0 || int(c) >= len(g.cells) || seen[c] {
			t.Fatalf("bad AoI cell %d", c)
		}
		seen[c] = true
	}
}
