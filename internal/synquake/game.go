package synquake

import (
	"fmt"
	"time"

	"gstm/internal/libtm"
	"gstm/internal/stamp"
	"gstm/internal/txid"
	"gstm/internal/xrand"
)

// cellSize is the side of one spatial-grid cell in map units. SynQuake uses
// object-level consistency; the grid cell is the shared object players
// contend on when they crowd the same area.
const cellSize = 32

// Player is a game entity. Values stored in a libtm.Obj are immutable
// snapshots; transactions write modified copies.
type Player struct {
	X, Y  int32
	HP    int32
	Score int32 // kills
	Items int32 // pickups collected
	Quest int8  // assigned quest point (0..3)
}

// Config parameterizes a game run.
type Config struct {
	Threads    int
	Players    int
	Frames     int
	MapSize    int32 // square map side, paper: 1024
	Seed       uint64
	Interleave int
}

// Normalize fills defaults (paper-scaled where affordable).
func (c Config) Normalize() Config {
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Players <= 0 {
		c.Players = 256
	}
	if c.Frames <= 0 {
		c.Frames = 200
	}
	if c.MapSize <= 0 {
		c.MapSize = 1024
	}
	return c
}

// Game is one run's world state over a LibTM runtime.
type Game struct {
	cfg     Config
	quest   Quest
	rt      *libtm.Runtime
	players []*libtm.Obj[Player]
	cells   []*libtm.Obj[[]int32] // player IDs per grid cell
	items   []*libtm.Obj[int32]   // pickup count per grid cell
	cellsW  int32
	spawned int // items spawned so far (single-threaded phases only)
}

// Transaction sites (the paper's statically numbered TM_BEGIN IDs).
const (
	txnMove   txid.TxnID = 0
	txnAttack txid.TxnID = 1
	txnHeal   txid.TxnID = 2
	txnPickup txid.TxnID = 3
	txnSpawn  txid.TxnID = 4
)

// NewGame builds a world for the quest with players placed at their quest
// points' surroundings.
func NewGame(cfg Config, quest Quest, rt *libtm.Runtime) (*Game, error) {
	cfg = cfg.Normalize()
	if cfg.MapSize%cellSize != 0 {
		return nil, fmt.Errorf("synquake: map size %d not a multiple of the cell size %d", cfg.MapSize, cellSize)
	}
	g := &Game{
		cfg:    cfg,
		quest:  quest,
		rt:     rt,
		cellsW: cfg.MapSize / cellSize,
	}
	g.cells = make([]*libtm.Obj[[]int32], g.cellsW*g.cellsW)
	g.items = make([]*libtm.Obj[int32], g.cellsW*g.cellsW)
	for i := range g.cells {
		g.cells[i] = libtm.NewObj[[]int32](nil)
		g.items[i] = libtm.NewObj[int32](0)
	}
	rng := xrand.New(cfg.Seed + 909)
	points := quest.Points(0)
	g.players = make([]*libtm.Obj[Player], cfg.Players)
	membership := make(map[int32][]int32)
	for id := range g.players {
		q := int8(id % 4)
		p := Player{
			X:     clamp(points[q][0]+int32(rng.Intn(200))-100, 0, cfg.MapSize-1),
			Y:     clamp(points[q][1]+int32(rng.Intn(200))-100, 0, cfg.MapSize-1),
			HP:    100,
			Quest: q,
		}
		g.players[id] = libtm.NewObj(p)
		membership[g.cellIndex(p.X, p.Y)] = append(membership[g.cellIndex(p.X, p.Y)], int32(id))
	}
	for cell, ids := range membership {
		g.cells[cell].Reset(ids)
	}
	return g, nil
}

func clamp(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (g *Game) cellIndex(x, y int32) int32 {
	return (y/cellSize)*g.cellsW + x/cellSize
}

// Result is one run's measurements.
type Result struct {
	// FrameTimes is each frame's processing wall-clock time (seconds) —
	// the quantity whose variance Figures 11a/12a report.
	FrameTimes []float64

	Commits uint64
	Aborts  uint64
}

// AbortRatio returns aborts per commit.
func (r *Result) AbortRatio() float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(r.Commits)
}

// TotalTime returns the summed frame time in seconds.
func (r *Result) TotalTime() float64 {
	t := 0.0
	for _, f := range r.FrameTimes {
		t += f
	}
	return t
}

// Run plays cfg.Frames frames, each processed by cfg.Threads server threads
// inside a barrier, and returns per-frame processing times. "Because
// multiple client frames are handled by threads and executed within
// barriers, time variance per thread is not of significance" (Section
// VIII) — the frame time is the reported quantity.
func (g *Game) Run() (*Result, error) {
	res := &Result{FrameTimes: make([]float64, 0, g.cfg.Frames)}
	startCommits, startAborts := g.rt.Stats()
	rngs := make([]*xrand.Rand, g.cfg.Threads)
	for t := range rngs {
		rngs[t] = xrand.NewThread(g.cfg.Seed, t)
	}
	for frame := 0; frame < g.cfg.Frames; frame++ {
		points := g.quest.Points(frame)
		if frame%4 == 0 {
			if err := g.spawnItems(points); err != nil {
				return nil, err
			}
		}
		begin := time.Now()
		_, err := stamp.RunThreads(g.cfg.Threads, func(t int) error {
			lo := t * g.cfg.Players / g.cfg.Threads
			hi := (t + 1) * g.cfg.Players / g.cfg.Threads
			for id := lo; id < hi; id++ {
				if err := g.processPlayer(txid.ThreadID(t), int32(id), points, rngs[t]); err != nil {
					return err
				}
			}
			return nil
		})
		res.FrameTimes = append(res.FrameTimes, time.Since(begin).Seconds())
		if err != nil {
			return nil, err
		}
	}
	commits, aborts := g.rt.Stats()
	res.Commits = commits - startCommits
	res.Aborts = aborts - startAborts
	return res, nil
}

// spawnItems drops one pickup at each quest point (single-threaded
// between-frame phase, like SynQuake's server tick bookkeeping; it still
// runs transactionally because player transactions from the previous frame
// shape the same cells' versions).
func (g *Game) spawnItems(points [4][2]int32) error {
	for _, pt := range points {
		cell := g.cellIndex(pt[0], pt[1])
		if err := g.rt.Atomic(0, txnSpawn, func(tx *libtm.Tx) error {
			libtm.Write(tx, g.items[cell], libtm.Read(tx, g.items[cell])+1)
			return nil
		}); err != nil {
			return err
		}
		g.spawned++
	}
	return nil
}

// processPlayer executes one player's frame: a movement transaction that
// updates the player and its spatial-grid membership, then — when the
// player shares a cell with others — an attack transaction against a
// neighbour scanning the 3×3 area of interest, an item pickup, and
// occasionally a heal.
func (g *Game) processPlayer(thread txid.ThreadID, id int32, points [4][2]int32, rng *xrand.Rand) error {
	jx, jy := int32(rng.Intn(17))-8, int32(rng.Intn(17))-8
	attackRoll := rng.Intn(100)

	var cellAfter int32
	if err := g.rt.Atomic(thread, txnMove, func(tx *libtm.Tx) error {
		p := libtm.Read(tx, g.players[id])
		oldCell := g.cellIndex(p.X, p.Y)
		target := points[p.Quest]
		p.X = clamp(p.X+step(target[0], p.X)+jx, 0, g.cfg.MapSize-1)
		p.Y = clamp(p.Y+step(target[1], p.Y)+jy, 0, g.cfg.MapSize-1)
		newCell := g.cellIndex(p.X, p.Y)
		if oldCell != newCell {
			libtm.Write(tx, g.cells[oldCell], removeID(libtm.Read(tx, g.cells[oldCell]), id))
			libtm.Write(tx, g.cells[newCell], appendID(libtm.Read(tx, g.cells[newCell]), id))
		}
		libtm.Write(tx, g.players[id], p)
		cellAfter = newCell
		return nil
	}); err != nil {
		return err
	}

	if attackRoll < 30 {
		if err := g.rt.Atomic(thread, txnAttack, func(tx *libtm.Tx) error {
			// Prefer a victim in the player's own cell; widen to the 3×3
			// area of interest only when it is empty, so the common-case
			// transaction footprint stays one container (as in SynQuake,
			// where range queries grow the footprint only when needed).
			var victim int32 = -1
			for _, m := range libtm.Read(tx, g.cells[cellAfter]) {
				if m != id {
					victim = m
					break
				}
			}
			if victim < 0 {
				for _, cell := range g.areaOfInterest(cellAfter) {
					if cell == cellAfter {
						continue
					}
					for _, m := range libtm.Read(tx, g.cells[cell]) {
						if m != id {
							victim = m
							break
						}
					}
					if victim >= 0 {
						break
					}
				}
			}
			if victim < 0 {
				return nil
			}
			v := libtm.Read(tx, g.players[victim])
			v.HP -= 10
			if v.HP <= 0 {
				v.HP = 100 // respawn in place
				me := libtm.Read(tx, g.players[id])
				me.Score++
				libtm.Write(tx, g.players[id], me)
			}
			libtm.Write(tx, g.players[victim], v)
			return nil
		}); err != nil {
			return err
		}
	} else if attackRoll < 40 {
		// Try to grab a pickup from the current cell.
		if err := g.rt.Atomic(thread, txnPickup, func(tx *libtm.Tx) error {
			n := libtm.Read(tx, g.items[cellAfter])
			if n <= 0 {
				return nil
			}
			libtm.Write(tx, g.items[cellAfter], n-1)
			p := libtm.Read(tx, g.players[id])
			p.Items++
			libtm.Write(tx, g.players[id], p)
			return nil
		}); err != nil {
			return err
		}
	} else if attackRoll >= 95 {
		if err := g.rt.Atomic(thread, txnHeal, func(tx *libtm.Tx) error {
			p := libtm.Read(tx, g.players[id])
			if p.HP < 100 {
				p.HP += 5
				if p.HP > 100 {
					p.HP = 100
				}
				libtm.Write(tx, g.players[id], p)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// areaOfInterest returns the up-to-9 grid cells around (and including)
// cell.
func (g *Game) areaOfInterest(cell int32) []int32 {
	out := make([]int32, 0, 9)
	cx, cy := cell%g.cellsW, cell/g.cellsW
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || y < 0 || x >= g.cellsW || y >= g.cellsW {
				continue
			}
			out = append(out, y*g.cellsW+x)
		}
	}
	return out
}

// step moves one coordinate toward the target at up to 12 map units.
func step(target, cur int32) int32 {
	d := target - cur
	if d > 12 {
		return 12
	}
	if d < -12 {
		return -12
	}
	return d
}

func removeID(ids []int32, id int32) []int32 {
	out := make([]int32, 0, len(ids))
	for _, v := range ids {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

func appendID(ids []int32, id int32) []int32 {
	out := make([]int32, 0, len(ids)+1)
	out = append(out, ids...)
	return append(out, id)
}

// Validate checks world invariants after a run: every player is in bounds
// with sane HP, and the spatial grid's membership exactly matches player
// positions.
func (g *Game) Validate() error {
	seen := make(map[int32]int32) // player → cell from grid
	for ci, cell := range g.cells {
		for _, id := range cell.Peek() {
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("synquake: player %d in cells %d and %d", id, prev, ci)
			}
			seen[id] = int32(ci)
		}
	}
	if len(seen) != len(g.players) {
		return fmt.Errorf("synquake: grid holds %d players, want %d", len(seen), len(g.players))
	}
	var held int64
	for id, obj := range g.players {
		p := obj.Peek()
		if p.X < 0 || p.Y < 0 || p.X >= g.cfg.MapSize || p.Y >= g.cfg.MapSize {
			return fmt.Errorf("synquake: player %d out of bounds (%d,%d)", id, p.X, p.Y)
		}
		if p.HP <= 0 || p.HP > 100 {
			return fmt.Errorf("synquake: player %d has HP %d", id, p.HP)
		}
		if p.Items < 0 {
			return fmt.Errorf("synquake: player %d has %d items", id, p.Items)
		}
		held += int64(p.Items)
		if got := seen[int32(id)]; got != g.cellIndex(p.X, p.Y) {
			return fmt.Errorf("synquake: player %d at (%d,%d) should be in cell %d, grid says %d",
				id, p.X, p.Y, g.cellIndex(p.X, p.Y), got)
		}
	}
	// Item conservation: spawned = still on the ground + picked up.
	var ground int64
	for i, it := range g.items {
		n := it.Peek()
		if n < 0 {
			return fmt.Errorf("synquake: cell %d has %d items", i, n)
		}
		ground += int64(n)
	}
	if ground+held != int64(g.spawned) {
		return fmt.Errorf("synquake: items %d on ground + %d held != %d spawned",
			ground, held, g.spawned)
	}
	return nil
}
