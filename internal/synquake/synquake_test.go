package synquake

import (
	"testing"

	"gstm/internal/guide"
	"gstm/internal/libtm"
	"gstm/internal/model"
	"gstm/internal/trace"
)

func smallCfg() Config {
	return Config{Threads: 4, Players: 64, Frames: 20, MapSize: 1024, Seed: 3, Interleave: 6}
}

func TestQuestByName(t *testing.T) {
	for _, name := range []string{"4worst_case", "4moving", "4quadrants", "4center_spread6"} {
		q, err := QuestByName(name, 1024)
		if err != nil {
			t.Fatalf("QuestByName(%q): %v", name, err)
		}
		if q.Name() != name {
			t.Fatalf("Name = %q, want %q", q.Name(), name)
		}
		pts := q.Points(0)
		for _, p := range pts {
			if p[0] < 0 || p[0] >= 1024 || p[1] < 0 || p[1] >= 1024 {
				t.Fatalf("%s point %v out of bounds", name, p)
			}
		}
	}
	if _, err := QuestByName("bogus", 1024); err == nil {
		t.Fatal("unknown quest accepted")
	}
}

func TestWorstCaseConcentratesPoints(t *testing.T) {
	wc, _ := QuestByName("4worst_case", 1024)
	qd, _ := QuestByName("4quadrants", 1024)
	spreadOf := func(pts [4][2]int32) int32 {
		var minX, maxX = pts[0][0], pts[0][0]
		for _, p := range pts {
			if p[0] < minX {
				minX = p[0]
			}
			if p[0] > maxX {
				maxX = p[0]
			}
		}
		return maxX - minX
	}
	if spreadOf(wc.Points(0)) >= spreadOf(qd.Points(0)) {
		t.Fatal("4worst_case should be more concentrated than 4quadrants")
	}
}

func TestMovingQuestMoves(t *testing.T) {
	q, _ := QuestByName("4moving", 1024)
	if q.Points(0) == q.Points(100) {
		t.Fatal("4moving points did not move")
	}
}

func TestGameRunsAndValidates(t *testing.T) {
	rt := libtm.New(libtm.Config{Interleave: 6})
	q, _ := QuestByName("4quadrants", 1024)
	g, err := NewGame(smallCfg(), q, rt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FrameTimes) != 20 {
		t.Fatalf("frames = %d", len(res.FrameTimes))
	}
	for i, f := range res.FrameTimes {
		if f <= 0 {
			t.Fatalf("frame %d time %v", i, f)
		}
	}
	if res.Commits == 0 {
		t.Fatal("no commits")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.TotalTime() <= 0 || res.AbortRatio() < 0 {
		t.Fatal("result accessors broken")
	}
}

func TestWorstCaseContendsMoreThanQuadrants(t *testing.T) {
	run := func(name string) float64 {
		rt := libtm.New(libtm.Config{Interleave: 4})
		q, _ := QuestByName(name, 1024)
		cfg := smallCfg()
		cfg.Frames = 40
		cfg.Players = 128
		g, err := NewGame(cfg, q, rt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		return res.AbortRatio()
	}
	wc := run("4worst_case")
	qd := run("4quadrants")
	if wc <= qd {
		t.Fatalf("abort ratio: worst_case %.4f <= quadrants %.4f", wc, qd)
	}
}

func TestGuidedGameStaysCorrect(t *testing.T) {
	// Train on the training quests, then run 4center_spread6 guided.
	cfg := smallCfg()
	train := libtm.New(libtm.Config{Interleave: 6})
	col := trace.NewCollector()
	train.SetSink(col)
	var traces []*trace.Trace
	for _, q := range TrainingQuests(1024) {
		g, err := NewGame(cfg, q, train)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Run(); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, col.Finalize())
	}
	m := model.BuildFromTraces(cfg.Threads, traces)
	if m.NumStates() == 0 {
		t.Fatal("empty model")
	}
	table := model.Compile(m, 2)
	ctrl := guide.NewController(table)

	guided := libtm.New(libtm.Config{Interleave: 6})
	guided.SetSink(ctrl)
	guided.SetGate(ctrl)
	q, _ := QuestByName("4center_spread6", 1024)
	g, err := NewGame(cfg, q, guided)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("guided run broke invariants: %v", err)
	}
	passed, held, escaped := ctrl.GateStats()
	if passed+held+escaped == 0 {
		t.Fatal("gate made no decisions")
	}
}

func TestConfigValidation(t *testing.T) {
	rt := libtm.New(libtm.Config{})
	q, _ := QuestByName("4quadrants", 1000) // 1000 % 32 != 0
	if _, err := NewGame(Config{MapSize: 1000}, q, rt); err == nil {
		t.Fatal("map size not multiple of cell size accepted")
	}
	cfg := Config{}.Normalize()
	if cfg.Threads != 8 || cfg.Players != 256 || cfg.MapSize != 1024 {
		t.Fatalf("Normalize defaults wrong: %+v", cfg)
	}
}
