// Package xrand provides a tiny, fast, deterministic pseudo-random
// generator (xoshiro-style splitmix/xorshift) for the workload generators.
// Each worker thread owns one generator seeded from (benchmark seed, thread
// id), making every run's *input sequence* reproducible while the STM
// interleaving remains the source of non-determinism the paper studies.
package xrand

// Rand is a small xorshift* generator. Not safe for concurrent use; give
// each goroutine its own.
type Rand struct {
	s uint64
}

// New returns a generator seeded with seed (0 is remapped so the state is
// never stuck at zero).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	// splitmix the seed once to decorrelate close seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return &Rand{s: z ^ (z >> 31) | 1}
}

// NewThread returns a generator for a worker thread, decorrelated from
// other threads of the same run.
func NewThread(seed uint64, thread int) *Rand {
	return New(seed*0x100000001b3 + uint64(thread)*0x9e3779b97f4a7c15 + 1)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s * 0x2545f4914f6cdd1d
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
