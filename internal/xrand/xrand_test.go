package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at %d", i)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("Intn never produced %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewThreadDistinct(t *testing.T) {
	r0, r1 := NewThread(9, 0), NewThread(9, 1)
	if r0.Uint64() == r1.Uint64() {
		t.Fatal("thread generators correlated")
	}
}
