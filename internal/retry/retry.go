// Package retry carries per-call transaction retry budgets through a
// context.Context, shared by both STM engines (internal/tl2 and
// internal/libtm) and re-exported by the public gstm API.
//
// A budget bounds the number of *attempts* a single Atomic call may make:
// a budget of 1 means "no retries", a budget of 5 allows the initial
// attempt plus four retries. A zero or negative budget means unlimited,
// the classic STM contract.
package retry

import (
	"context"
	"errors"
)

// ErrBudgetExceeded is returned by AtomicCtx when a transaction's last
// budgeted attempt also aborted on a conflict. It marks a policy decision,
// not data corruption: no partial effects are visible and the call may be
// safely retried with a fresh budget.
var ErrBudgetExceeded = errors.New("stm: transaction retry budget exceeded")

// ErrWouldBlock marks a transaction whose body called Retry (the
// composable-blocking primitive) while blocking was not enabled for the
// call, or while its read set was empty so no commit could ever wake it.
// Like the other sentinels it is a policy outcome: no partial effects are
// visible. The public gstm package re-exports it as gstm.ErrWouldBlock.
var ErrWouldBlock = errors.New("stm: transaction would block")

// ErrCanceled marks a transaction abandoned because its context was
// canceled or its deadline passed. Both engines wrap the context's own
// error with it, so errors.Is matches this sentinel as well as
// context.Canceled / context.DeadlineExceeded. No partial effects are
// visible. The public gstm package re-exports it as gstm.ErrCanceled.
var ErrCanceled = errors.New("stm: transaction canceled")

type budgetKey struct{}

// WithBudget returns a context carrying a per-call attempt budget for
// AtomicCtx. attempts <= 0 removes any budget (unlimited retries).
func WithBudget(ctx context.Context, attempts int) context.Context {
	if attempts <= 0 {
		attempts = 0
	}
	return context.WithValue(ctx, budgetKey{}, attempts)
}

// Budget extracts the attempt budget from ctx; 0 means unlimited.
func Budget(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	if n, ok := ctx.Value(budgetKey{}).(int); ok {
		return n
	}
	return 0
}
