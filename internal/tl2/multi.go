package tl2

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gstm/internal/obs"
	"gstm/internal/retry"
	"gstm/internal/txid"
)

// Cross-shard atomic commit.
//
// MultiRun executes one transaction spanning several Runtimes (shards),
// each with its own private version clock, and commits it atomically on
// all of them or none. The protocol is the TL2 commit with the lock set
// widened across shards:
//
//  1. prepare — acquire every participant's write-set locks, walking the
//     participants in the caller-given order (the router passes ascending
//     shard index, the same deterministic-ordering rule the single-shard
//     commit applies within a write set, so two cross-shard commits
//     acquire the shards they share in one global order and cannot
//     deadlock); then validate every participant's read set against its
//     home clock. Validation never elides on clock evidence: a sibling
//     shard's clock says nothing about this shard's history.
//  2. exchange — tick every participant's clock once and agree on
//     commitWV, the maximum. Ticking every home clock keeps the
//     per-shard discipline that any later transaction locking an
//     overlapping location on that shard draws a strictly larger wv.
//  3. publish — for each participant: raise its clock to commitWV
//     (versions must never exceed the clock a reader samples rv from),
//     then publish its write set at commitWV and release its locks.
//
// Any prepare failure aborts all participants with no writes published
// (cause: cross-shard-validation). Single-shard transactions never touch
// any of this — no shared word, no extra branch — which keeps the
// cross-shard tax entirely off the fast path.
//
// Two cross-shard commits may publish the same commitWV on a shard they
// share only when their write sets on that shard are disjoint (an
// overlapping location serializes them through its lock, and the earlier
// commit's advanceTo forces the later one's tick past its commitWV), so
// equal write versions in a shard's WAL never order-depend.

// ErrNoShards reports a MultiRun call with an empty runtime list.
var ErrNoShards = errors.New("tl2: MultiRun with no runtimes")

// MultiGroup is the publish fence shared by every cross-shard transaction
// of one shard group (the router owns one). Per-shard locks make
// conflicting cross-shard writers mutually exclusive, but a transaction
// whose footprint is disjoint from a publish sweep could still observe it
// half-applied — shard i already at commitWV, shard j not yet — because
// the sweep publishes its shards one at a time. The fence closes that
// window seqlock-style: sweeps bump seq before their first store and done
// after their last, and every MultiRun attempt (a) waits for in-flight
// sweeps to drain before sampling its read versions and (b) aborts after
// validation if any sweep started since. Single-shard commits never load
// or store either word.
type MultiGroup struct {
	_    [7]uint64 // keep the two hot words off shared cache lines
	seq  atomic.Uint64
	_    [7]uint64
	done atomic.Uint64
	_    [7]uint64
}

// enterQuiescent waits until no publish sweep is in flight and returns
// the sweep count to compare against after validation. Sweeps are a few
// pointer stores per shard, so the wait is short and yield-bounded.
func (g *MultiGroup) enterQuiescent() uint64 {
	for {
		s := g.seq.Load()
		if g.done.Load() >= s {
			return s
		}
		spinYield()
	}
}

// multiState is the pooled per-call scratch of MultiRun.
type multiState struct{ txs []*Tx }

var multiPool = sync.Pool{New: func() any { return &multiState{} }}

// MultiRun executes fn as one atomic transaction across rts — one
// sub-transaction per runtime, handed to fn as txs aligned with rts. The
// runtimes must be distinct and ordered by the caller's deterministic
// rule (the shard router passes ascending shard index); every concurrent
// MultiRun over overlapping runtime sets must use the same order and the
// same MultiGroup.
//
// fn may be re-executed like any transaction body. The read-write
// discipline always applies (reads are tracked and re-validated at
// commit on every participant, even under RunOpts.ReadOnly, which only
// keeps rejecting writes); blocking is not supported — a tx.Retry
// returns retry.ErrWouldBlock regardless of RunOpts.Block.
func MultiRun(ctx context.Context, g *MultiGroup, rts []*Runtime, thread txid.ThreadID, txn txid.TxnID, fn func(txs []*Tx) error, o RunOpts) error {
	switch len(rts) {
	case 0:
		return ErrNoShards
	case 1:
		// One participant: the plain single-shard commit is the same
		// protocol, without the fence or the exchange.
		rt := rts[0]
		one := [1]*Tx{}
		return rt.RunOpt(ctx, thread, txn, func(tx *Tx) error {
			one[0] = tx
			return fn(one[:])
		}, RunOpts{ReadOnly: o.ReadOnly, MaxAttempts: o.MaxAttempts, Span: o.Span})
	}

	self := txid.Pair{Txn: txn, Thread: thread}
	ms := multiPool.Get().(*multiState)
	for len(ms.txs) < len(rts) {
		ms.txs = append(ms.txs, nil)
	}
	ms.txs = ms.txs[:len(rts)]
	for i, rt := range rts {
		ms.txs[i] = rt.pool.Get().(*Tx)
	}
	release := func() {
		for _, tx := range ms.txs {
			tx.releaseLocks(0)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			// A panic escaped the transaction body: release every lock any
			// participant still holds and pool clean Txs, then re-panic.
			for i, tx := range ms.txs {
				tx.releaseLocks(0)
				tx.scrub()
				rts[i].pool.Put(tx)
			}
			ms.txs = ms.txs[:0]
			multiPool.Put(ms)
			panic(r)
		}
		for i, tx := range ms.txs {
			rts[i].pool.Put(tx)
		}
		ms.txs = ms.txs[:0]
		multiPool.Put(ms)
	}()

	budget := o.MaxAttempts
	if budget <= 0 {
		budget = retry.Budget(ctx)
	}
	span := o.Span
	spanned := span != nil
	shard := uint64(thread)
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				rts[0].tel.TxCanceled(shard)
				return &multiErr{retry.ErrCanceled, err}
			}
		}
		// Wait out in-flight publish sweeps before sampling read versions,
		// so no shard is observed mid-sweep.
		f0 := g.enterQuiescent()
		for _, rt := range rts {
			if gb := rt.gate.Load(); gb != nil {
				gb.g.Arrive(self)
			}
		}
		for i, rt := range rts {
			rt.tel.TxStart(shard)
			ms.txs[i].reset(rt, self, attempt, o.ReadOnly, true)
		}
		span.NoteAttempt()
		attStart := span.LastEndNs()

		err, conflict, retried := runMultiBody(ms.txs, fn)
		if retried {
			release()
			return retry.ErrWouldBlock
		}
		if conflict != nil {
			release()
			span.AddSinceNs(obs.PhaseRetry, conflict.cause, attempt+1, attStart)
			for _, rt := range rts {
				rt.noteAbort(self, conflict.byWV, conflict.cause)
			}
			if rts[0].budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		if err != nil {
			release()
			return err
		}

		// Prepare: every participant's write-set locks in list order, then
		// every participant's read-set validation, then the fence check —
		// an overlapping publish sweep may have left this attempt's reads
		// straddling another cross-shard commit even though no single
		// shard's validation can tell.
		var t0 time.Time
		if spanned {
			t0 = time.Now()
		}
		prepared, byWV := true, uint64(0)
		for _, tx := range ms.txs {
			if !tx.lockWriteSet() {
				prepared = false
				break
			}
		}
		if prepared {
			for _, tx := range ms.txs {
				if v, _, ok := tx.validateReads(); !ok {
					prepared, byWV = false, v
					break
				}
			}
		}
		if prepared && g.seq.Load() != f0 {
			prepared = false
		}
		if !prepared {
			release()
			span.AddSince(obs.PhaseXPrepare, obs.CauseXShardValidation, attempt+1, t0)
			for _, rt := range rts {
				rt.tel.XShardAborts.Inc(shard)
				rt.noteAbort(self, byWV, obs.CauseXShardValidation)
			}
			if rts[0].budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		var mark time.Time
		if spanned {
			mark = time.Now()
			span.Add(obs.PhaseXPrepare, obs.CauseNone, attempt+1, t0.UnixNano(), mark.Sub(t0).Nanoseconds())
		}

		// Exchange: tick every home clock, agree on the maximum.
		commitWV := uint64(0)
		for _, rt := range rts {
			if wv := rt.clk().tick(); wv > commitWV {
				commitWV = wv
			}
		}
		// Publish sweep, fenced: every participant's clock advances to the
		// agreed commit point before its locations carry it.
		g.seq.Add(1)
		for i, rt := range rts {
			rt.clk().advanceTo(commitWV)
			ms.txs[i].publishAt(commitWV)
		}
		g.done.Add(1)
		if spanned {
			span.AddSinceNs(obs.PhaseXPublish, obs.CauseNone, attempt+1, mark.UnixNano())
		}
		for _, rt := range rts {
			rt.tel.TxCommit(shard)
			rt.tel.XShardCommits.Inc(shard)
			// Sinks (per-shard WAL taps, trace collectors) see the exchanged
			// timestamp, so every shard's log records this commit at
			// commitWV and recovery replays the shards consistently.
			if sb := rt.sink.Load(); sb != nil {
				sb.s.TxCommit(self, commitWV, attempt)
			}
		}
		return nil
	}
}

// runMultiBody executes fn over the participant transactions, converting
// the engine's control-flow panics exactly like runBody.
func runMultiBody(txs []*Tx, fn func([]*Tx) error) (err error, conflict *conflictSignal, retried bool) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(*conflictSignal); ok {
				conflict = c
				return
			}
			if _, ok := r.(retrySignal); ok {
				retried = true
				return
			}
			if e, ok := r.(errWriteInReadOnly); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	return fn(txs), nil, false
}

// multiErr wraps a sentinel and its underlying cause without the
// fmt.Errorf allocation cost varying by message.
type multiErr struct{ sentinel, cause error }

func (e *multiErr) Error() string { return e.sentinel.Error() + ": " + e.cause.Error() }
func (e *multiErr) Is(target error) bool {
	return errors.Is(e.sentinel, target) || errors.Is(e.cause, target)
}
func (e *multiErr) Unwrap() error { return e.cause }
