package tl2

import (
	"errors"
	"testing"

	"gstm/internal/wset"
)

// Eager-mode interactions with the small-vector write set: encounter-time
// locks must survive rewrites, set spills, and aborts with the lock and
// version bookkeeping intact.

func TestEagerRewriteOfLockedVarHoldsOneLock(t *testing.T) {
	rt := New(Config{EagerWriteLock: true})
	v := NewVar(0)
	preVersion, _ := v.LockState()
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 1)
		if _, locked := v.LockState(); !locked {
			t.Error("encounter-time lock not held after first Write")
		}
		// Rewrites must reuse the existing locked entry: update the redo box
		// in place, not lock again (a second acquire would self-deadlock).
		Write(tx, v, 2)
		Write(tx, v, 3)
		if got := Read(tx, v); got != 3 {
			t.Errorf("buffered read = %d, want 3", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != 3 {
		t.Fatalf("Peek = %d, want 3", got)
	}
	version, locked := v.LockState()
	if locked {
		t.Fatal("lock leaked past commit")
	}
	if version <= preVersion {
		t.Fatalf("version %d did not advance past %d", version, preVersion)
	}
}

func TestEagerSpillWhileHoldingLocks(t *testing.T) {
	rt := New(Config{EagerWriteLock: true})
	rt.Telemetry().Reset()
	const n = wset.InlineSize*2 + 4
	arr := NewArray[int](n)
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		for i := 0; i < n; i++ {
			WriteAt(tx, arr, i, i*i)
		}
		// The insert that spilled the set moved every entry to a new backing
		// array; the locks acquired before the spill must still be tracked.
		for i := 0; i < n; i++ {
			if _, locked := arr.At(i).LockState(); !locked {
				t.Errorf("element %d not locked mid-transaction", i)
			}
		}
		// Rewrite across the spill boundary: entries from both the pre- and
		// post-spill population must resolve to their buffered boxes.
		WriteAt(tx, arr, 0, -1)
		WriteAt(tx, arr, n-1, -2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := arr.Peek(0); got != -1 {
		t.Fatalf("arr[0] = %d, want -1", got)
	}
	if got := arr.Peek(n - 1); got != -2 {
		t.Fatalf("arr[%d] = %d, want -2", n-1, got)
	}
	for i := 1; i < n-1; i++ {
		if got := arr.Peek(i); got != i*i {
			t.Fatalf("arr[%d] = %d, want %d", i, got, i*i)
		}
		if _, locked := arr.At(i).LockState(); locked {
			t.Fatalf("element %d still locked after commit", i)
		}
	}
	if got := rt.Telemetry().WriteSetSpills.Load(); got == 0 {
		t.Fatal("spill crossing not counted in telemetry")
	}
}

func TestEagerAbortAfterSpillRestoresAllLocks(t *testing.T) {
	rt := New(Config{EagerWriteLock: true})
	const n = wset.InlineSize + 4
	arr := NewArray[int](n)
	// Commit once so every element has a nonzero pre-version to restore.
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		for i := 0; i < n; i++ {
			WriteAt(tx, arr, i, i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pre := make([]uint64, n)
	for i := 0; i < n; i++ {
		pre[i], _ = arr.At(i).LockState()
	}
	sentinel := errors.New("user abort after eager locks")
	err := rt.Atomic(0, 0, func(tx *Tx) error {
		for i := 0; i < n; i++ {
			WriteAt(tx, arr, i, 100+i)
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	for i := 0; i < n; i++ {
		version, locked := arr.At(i).LockState()
		if locked {
			t.Fatalf("element %d left locked by abort", i)
		}
		if version != pre[i] {
			t.Fatalf("element %d version %d, want pre-abort %d", i, version, pre[i])
		}
		if got := arr.Peek(i); got != i {
			t.Fatalf("element %d value %d leaked from aborted tx", i, got)
		}
	}
	// The runtime and the vars stay fully usable.
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		WriteAt(tx, arr, 0, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := arr.Peek(0); got != 42 {
		t.Fatalf("follow-up write = %d", got)
	}
}

func TestEagerLockedEntryOwnerTagVisible(t *testing.T) {
	// The O(1) ownership check: while an eager transaction holds a location,
	// its own validation must see the owner tag (ownedPre), and the tag must
	// be gone once the lock is released.
	rt := New(Config{EagerWriteLock: true})
	v := NewVar(7)
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 8)
		if pre, owned := tx.ownedPre(tx.rt.lockFor(&v.b), &v.b); !owned {
			t.Error("ownedPre does not recognize our eager lock")
		} else if wordLocked(pre) {
			t.Error("recorded pre-lock word already locked")
		}
		// Reading our own locked location must come from the write set, not
		// spin on the lock we hold.
		if got := Read(tx, v); got != 8 {
			t.Errorf("read-own-locked = %d, want 8", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.b.lk.owner.Load() != 0 {
		t.Fatal("owner tag not cleared on release")
	}
}
