package tl2

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

func TestReadInitialValue(t *testing.T) {
	rt := New(Config{})
	v := NewVar(42)
	var got int
	err := rt.Atomic(0, 0, func(tx *Tx) error {
		got = Read(tx, v)
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got != 42 {
		t.Fatalf("Read = %d, want 42", got)
	}
}

func TestWriteThenPeek(t *testing.T) {
	rt := New(Config{})
	v := NewVar("old")
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, "new")
		return nil
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if got := v.Peek(); got != "new" {
		t.Fatalf("Peek = %q, want %q", got, "new")
	}
}

func TestReadAfterWriteSeesBuffer(t *testing.T) {
	rt := New(Config{})
	v := NewVar(1)
	err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 99)
		if got := Read(tx, v); got != 99 {
			t.Fatalf("read-after-write = %d, want 99", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func TestUserErrorAbortsAndDiscardsWrites(t *testing.T) {
	rt := New(Config{})
	v := NewVar(7)
	sentinel := errors.New("boom")
	err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 1000)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := v.Peek(); got != 7 {
		t.Fatalf("write leaked through user abort: Peek = %d, want 7", got)
	}
}

func TestNonConflictPanicPropagates(t *testing.T) {
	rt := New(Config{})
	defer func() {
		if r := recover(); r != "user panic" {
			t.Fatalf("recover = %v, want user panic", r)
		}
	}()
	_ = rt.Atomic(0, 0, func(tx *Tx) error { panic("user panic") })
}

func TestCounterUnderContention(t *testing.T) {
	rt := New(Config{Interleave: 4})
	v := NewVar(0)
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := rt.Atomic(id, 0, func(tx *Tx) error {
					Write(tx, v, Read(tx, v)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	if got := v.Peek(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	commits, _ := rt.Stats()
	if commits != workers*perWorker {
		t.Fatalf("commits = %d, want %d", commits, workers*perWorker)
	}
}

func TestBankTransferConservesTotal(t *testing.T) {
	rt := New(Config{Interleave: 4})
	const accounts = 16
	const initial = 1000
	arr := NewArray[int](accounts)
	for i := 0; i < accounts; i++ {
		arr.Reset(i, initial)
	}
	const workers, transfers = 8, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			rng := uint64(id)*2654435761 + 12345
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < transfers; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				if err := rt.Atomic(id, 1, func(tx *Tx) error {
					bf := ReadAt(tx, arr, from)
					bt := ReadAt(tx, arr, to)
					WriteAt(tx, arr, from, bf-1)
					WriteAt(tx, arr, to, bt+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	total := 0
	for i := 0; i < accounts; i++ {
		total += arr.Peek(i)
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (money created or destroyed)", total, accounts*initial)
	}
}

func TestNoDirtyReads(t *testing.T) {
	// A transaction that writes two vars must never expose a state where
	// only one write is visible.
	rt := New(Config{Interleave: 2})
	a, b := NewVar(0), NewVar(0)
	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = rt.Atomic(0, 0, func(tx *Tx) error {
				Write(tx, a, i)
				Write(tx, b, i)
				return nil
			})
		}
	}()
	go func() {
		defer wg.Done()
		for j := 0; j < 2000; j++ {
			_ = rt.Atomic(1, 1, func(tx *Tx) error {
				va := Read(tx, a)
				vb := Read(tx, b)
				if va != vb {
					violations.Add(1)
				}
				return nil
			})
		}
		close(stop)
	}()
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("observed %d torn states (a != b inside a transaction)", n)
	}
}

type recordingSink struct {
	mu      sync.Mutex
	commits []uint64
	aborts  int
}

func (s *recordingSink) TxCommit(p txid.Pair, wv uint64, aborts int) {
	s.mu.Lock()
	s.commits = append(s.commits, wv)
	s.mu.Unlock()
}

func (s *recordingSink) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	s.mu.Lock()
	s.aborts++
	s.mu.Unlock()
}

func TestSinkSeesUniqueCommitVersions(t *testing.T) {
	rt := New(Config{Interleave: 4})
	sink := &recordingSink{}
	rt.SetSink(sink)
	v := NewVar(0)
	const workers, per = 6, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(id, 0, func(tx *Tx) error {
					Write(tx, v, Read(tx, v)+1)
					return nil
				})
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	if len(sink.commits) != workers*per {
		t.Fatalf("sink saw %d commits, want %d", len(sink.commits), workers*per)
	}
	seen := make(map[uint64]bool, len(sink.commits))
	for _, wv := range sink.commits {
		if wv == 0 {
			t.Fatal("commit reported with wv 0")
		}
		if seen[wv] {
			t.Fatalf("duplicate commit version %d", wv)
		}
		seen[wv] = true
	}
	commits, aborts := rt.Stats()
	if int(commits) != workers*per {
		t.Fatalf("Stats commits = %d, want %d", commits, workers*per)
	}
	if int(aborts) != sink.aborts {
		t.Fatalf("Stats aborts = %d, sink aborts = %d", aborts, sink.aborts)
	}
}

func TestReadOnlyCommitTicksClockOnlyWhenTraced(t *testing.T) {
	rt := New(Config{})
	v := NewVar(5)

	// Untraced: the read-only commit elides the global-clock tick (nothing
	// is published and no sink consumes the sequence number).
	before := rt.Clock()
	_ = rt.Atomic(0, 0, func(tx *Tx) error {
		_ = Read(tx, v)
		return nil
	})
	if rt.Clock() != before {
		t.Fatalf("clock = %d, want %d (untraced read-only commit must elide the tick)", rt.Clock(), before)
	}

	// Traced: every commit, including read-only ones, draws a unique tick
	// so the trace layer can totally order the transaction sequence.
	sink := &recordingSink{}
	rt.SetSink(sink)
	before = rt.Clock()
	_ = rt.Atomic(0, 0, func(tx *Tx) error {
		_ = Read(tx, v)
		return nil
	})
	if rt.Clock() != before+1 {
		t.Fatalf("clock = %d, want %d (traced read-only commits must be sequenced)", rt.Clock(), before+1)
	}
	if len(sink.commits) != 1 || sink.commits[0] != before+1 {
		t.Fatalf("sink saw %v, want [%d]", sink.commits, before+1)
	}
}

type countingGate struct{ n atomic.Int64 }

func (g *countingGate) Arrive(p txid.Pair) telemetry.GateOutcome {
	g.n.Add(1)
	return telemetry.GatePass
}

func TestGateCalledPerAttempt(t *testing.T) {
	rt := New(Config{})
	g := &countingGate{}
	rt.SetGate(g)
	v := NewVar(0)
	for i := 0; i < 10; i++ {
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, v, i)
			return nil
		})
	}
	if got := g.n.Load(); got < 10 {
		t.Fatalf("gate called %d times, want >= 10", got)
	}
	rt.SetGate(nil)
	before := g.n.Load()
	_ = rt.Atomic(0, 0, func(tx *Tx) error { return nil })
	if g.n.Load() != before {
		t.Fatal("gate called after removal")
	}
}

func TestArrayDisjointElementsDoNotConflict(t *testing.T) {
	rt := New(Config{})
	sink := &recordingSink{}
	rt.SetSink(sink)
	arr := NewArray[int](8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = rt.Atomic(txid.ThreadID(id), 0, func(tx *Tx) error {
					WriteAt(tx, arr, id, ReadAt(tx, arr, id)+1)
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if got := arr.Peek(i); got != 100 {
			t.Fatalf("arr[%d] = %d, want 100", i, got)
		}
	}
}

func TestVersionedLockWord(t *testing.T) {
	if err := quick.Check(func(version uint64, locked bool) bool {
		version &= (1 << 62) - 1 // stay in range
		w := makeWord(version, locked)
		return wordVersion(w) == version && wordLocked(w) == locked
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg := Config{}.Normalize()
	if cfg.MaxReadSpin <= 0 || cfg.MaxLockSpin <= 0 || cfg.RegistryCapacity <= 0 {
		t.Fatalf("Normalize left zero defaults: %+v", cfg)
	}
	custom := Config{MaxReadSpin: 5, MaxLockSpin: 6, RegistryCapacity: 2048}.Normalize()
	if custom.MaxReadSpin != 5 || custom.MaxLockSpin != 6 || custom.RegistryCapacity != 2048 {
		t.Fatalf("Normalize clobbered explicit values: %+v", custom)
	}
}

func TestQuickSequentialTransfersConserve(t *testing.T) {
	// Property: any sequence of (from, to, amount) transfers leaves the
	// total balance unchanged.
	rt := New(Config{})
	f := func(ops []struct {
		From, To uint8
		Amt      uint8
	}) bool {
		const n = 8
		arr := NewArray[int](n)
		for i := 0; i < n; i++ {
			arr.Reset(i, 100)
		}
		for _, op := range ops {
			from, to := int(op.From)%n, int(op.To)%n
			_ = rt.Atomic(0, 0, func(tx *Tx) error {
				bf := ReadAt(tx, arr, from)
				WriteAt(tx, arr, from, bf-int(op.Amt))
				bt := ReadAt(tx, arr, to)
				WriteAt(tx, arr, to, bt+int(op.Amt))
				return nil
			})
		}
		total := 0
		for i := 0; i < n; i++ {
			total += arr.Peek(i)
		}
		return total == n*100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEagerModeBasicOps(t *testing.T) {
	rt := New(Config{EagerWriteLock: true})
	v := NewVar(1)
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, Read(tx, v)+10)
		if got := Read(tx, v); got != 11 {
			t.Fatalf("read-after-write = %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != 11 {
		t.Fatalf("Peek = %d", got)
	}
}

func TestEagerModeCounterUnderContention(t *testing.T) {
	rt := New(Config{EagerWriteLock: true, Interleave: 4})
	v := NewVar(0)
	const workers, per = 6, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := rt.Atomic(id, 0, func(tx *Tx) error {
					Write(tx, v, Read(tx, v)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	if got := v.Peek(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestEagerModeReleasesLocksOnUserError(t *testing.T) {
	rt := New(Config{EagerWriteLock: true})
	v := NewVar(0)
	sentinel := errors.New("bail")
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 7)
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	// The lock must be free: a following transaction succeeds without
	// spinning out.
	if err := rt.Atomic(1, 0, func(tx *Tx) error {
		Write(tx, v, 9)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Peek() != 9 {
		t.Fatal("follow-up write failed")
	}
}

func TestEagerModeBankTransfers(t *testing.T) {
	rt := New(Config{EagerWriteLock: true, Interleave: 4})
	const accounts = 8
	arr := NewArray[int](accounts)
	for i := 0; i < accounts; i++ {
		arr.Reset(i, 100)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			rng := uint64(id)*2654435761 + 5
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			for i := 0; i < 100; i++ {
				from, to := next(accounts), next(accounts)
				if from == to {
					continue
				}
				if err := rt.Atomic(id, 0, func(tx *Tx) error {
					WriteAt(tx, arr, from, ReadAt(tx, arr, from)-1)
					WriteAt(tx, arr, to, ReadAt(tx, arr, to)+1)
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	total := 0
	for i := 0; i < accounts; i++ {
		total += arr.Peek(i)
	}
	if total != accounts*100 {
		t.Fatalf("total = %d, want %d", total, accounts*100)
	}
}

func TestEagerModeStaleVersionConflicts(t *testing.T) {
	// An eager write to a location whose version is newer than rv must
	// conflict immediately (encounter-time detection).
	rt := New(Config{EagerWriteLock: true})
	v := NewVar(0)
	attempts := 0
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			attempts++
			if attempts == 1 {
				close(started)
				<-release // let another commit advance v's version past rv
			}
			Write(tx, v, 1)
			return nil
		})
	}()
	<-started
	if err := rt.Atomic(1, 1, func(tx *Tx) error {
		Write(tx, v, 2)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(release)
	<-done
	if attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (eager write should have conflicted)", attempts)
	}
	if v.Peek() != 1 {
		t.Fatalf("final value = %d, want 1 (thread 0 commits last)", v.Peek())
	}
}
