package tl2

import "unsafe"

// Striped lock tables.
//
// Config.LockStripes > 0 switches a Runtime from per-location versioned
// lock words to a fixed table of 2^k cache-line-padded stripes: every
// location address hashes to a stripe, and the stripe's lockSlot is the
// versioned write-lock for all locations that hash to it. This is the
// classic ownership-record (orec) layout of word-based STMs — SNIPPETS.md
// Snippet 1 shows the single-lock degenerate case — generalized to a
// power-of-two table with Fibonacci-hash placement (the same multiplier the
// wset filter word uses, so hot write sets and hot stripes shade together).
//
// What striping buys: Array[T] elements stop carrying a 16-byte lock slot
// each, dense sweeps touch a handful of stripe cache lines instead of one
// lock word per element, and the lock-metadata footprint of a shard becomes
// a constant independent of how much data it serves.
//
// What it costs: two locations that hash to the same stripe falsely
// conflict — a commit locking one blocks or aborts readers/writers of the
// other, and publishing either advances the shared version, forcing the
// other's readers to revalidate. Both effects are conservative (safety is
// never weakened: a too-new shared version can only cause spurious aborts,
// never a stale read). The telemetry counter StripeCollisions counts
// write-set aliasing so sweeps can size tables against observed collision
// rates.
//
// Ownership rule: a striped runtime's transactions must only touch Vars
// used exclusively under that runtime — the same exclusivity contract as
// Config.PrivateClock, and the shard router already guarantees it. Mixing
// runtimes on one Var would split its lock protocol across two tables.

// stripe is one versioned write-lock, padded so adjacent stripes never
// share a cache line (the table is written by every committer; false
// sharing here would serialize unrelated commits).
type stripe struct {
	lockSlot
	_ [6]uint64 // lockSlot is 16 bytes; pad the rest of the 64-byte line
}

// stripeTable maps location addresses onto stripes.
type stripeTable struct {
	mask  uint64
	slots []stripe
}

// newStripeTable returns a table of n stripes; n must be a power of two
// (Config.Normalize rounds up).
func newStripeTable(n int) *stripeTable {
	return &stripeTable{mask: uint64(n - 1), slots: make([]stripe, n)}
}

// of returns the stripe guarding addr. The low alignment bits are discarded
// before the Fibonacci-hash multiply, then the high bits select the slot —
// consecutive Array cells (24 bytes apart) spread over the whole table
// instead of marching through adjacent stripes in lockstep.
func (t *stripeTable) of(addr uintptr) *lockSlot {
	h := (uint64(addr) >> 4) * 0x9e3779b97f4a7c15
	return &t.slots[(h>>40)&t.mask].lockSlot
}

// locked counts stripes whose lock bit is currently set: the striped-mode
// analogue of sweeping Var.LockState over every location.
func (t *stripeTable) locked() int {
	n := 0
	for i := range t.slots {
		if wordLocked(t.slots[i].word.Load()) {
			n++
		}
	}
	return n
}

// lockFor returns the versioned lock slot guarding b under this runtime's
// engine mode: b's own embedded slot in per-location mode, the stripe b's
// address hashes to in striped mode. This is the single indirection the
// striped engine adds to the read/validate/lock protocol.
func (rt *Runtime) lockFor(b *base) *lockSlot {
	if t := rt.stripes; t != nil {
		return t.of(uintptr(unsafe.Pointer(b)))
	}
	return &b.lk
}

// Striped reports whether this runtime uses a striped lock table.
func (rt *Runtime) Striped() bool { return rt.stripes != nil }

// LockedStripes returns how many stripes of the runtime's lock table are
// currently locked, and the table size. At any quiescent point the count
// must be zero, or an abort path leaked a stripe lock — the striped-mode
// replacement for sweeping Var.LockState. On a per-location runtime it
// returns (0, 0).
func (rt *Runtime) LockedStripes() (locked, total int) {
	if rt.stripes == nil {
		return 0, 0
	}
	return rt.stripes.locked(), len(rt.stripes.slots)
}

// stripeRef records one stripe lock held by a transaction: the slot, its
// pre-lock word (restored on abort), and whether the acquisition succeeded
// (refs are appended only after a successful CAS, but the flag keeps
// release idempotent during partial-failure unwinding).
type stripeRef struct {
	lk  *lockSlot
	pre uint64
}
