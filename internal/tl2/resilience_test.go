package tl2

import (
	"context"
	"errors"
	"testing"
	"time"

	"gstm/internal/retry"
	"gstm/internal/txid"
)

// alwaysAbort is a FaultInjector that spuriously aborts every attempt,
// turning any transaction into an infinite retry loop.
type alwaysAbort struct{}

func (alwaysAbort) SpuriousAbort(txid.Pair, int) bool { return true }
func (alwaysAbort) CommitDelay(txid.Pair, int) int    { return 0 }

// TestPanicReleasesEagerLocks is the regression test for the lock-leak on
// user panic: under encounter-time locking a panic out of the transaction
// body used to skip releaseLocks and pool a Tx still holding locks, so the
// location stayed locked forever.
func TestPanicReleasesEagerLocks(t *testing.T) {
	rt := New(Config{EagerWriteLock: true})
	v := NewVar(0)

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("user panic did not propagate out of Atomic")
			} else if r != "boom" {
				t.Fatalf("panic value changed: %v", r)
			}
		}()
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, v, 1) // takes the encounter-time lock
			panic("boom")
		})
	}()

	if _, locked := v.LockState(); locked {
		t.Fatal("lock leaked: location still locked after panic")
	}
	// The pooled Tx must be clean and the location usable: a fresh
	// transaction on the same Var must commit promptly.
	done := make(chan error, 1)
	go func() {
		done <- rt.Atomic(1, 1, func(tx *Tx) error {
			Write(tx, v, Read(tx, v)+41)
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follow-up transaction failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow-up transaction hung: leaked lock or dirty pooled Tx")
	}
	if got := v.Peek(); got != 41 {
		t.Fatalf("panicked attempt's write leaked: got %d, want 41", got)
	}
}

// TestPanicReleasesLazyState checks the same panic path under the default
// commit-time locking: no locks are held mid-body, but the pooled Tx must
// still come back clean.
func TestPanicReleasesLazyState(t *testing.T) {
	rt := New(Config{})
	v := NewVar(0)
	for i := 0; i < 8; i++ {
		func() {
			defer func() { recover() }()
			_ = rt.Atomic(0, 0, func(tx *Tx) error {
				Write(tx, v, 99)
				panic(i)
			})
		}()
	}
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, Read(tx, v)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != 1 {
		t.Fatalf("panicked writes leaked into commit: got %d, want 1", got)
	}
}

// TestAtomicCtxPreCanceled returns ctx.Err() without ever running the body.
func TestAtomicCtxPreCanceled(t *testing.T) {
	rt := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := rt.AtomicCtx(ctx, 0, 0, func(tx *Tx) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("body ran under a canceled context")
	}
	if _, canceled := rt.ResilienceStats(); canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1", canceled)
	}
}

// TestAtomicCtxCancelStopsRetryLoop cancels a transaction stuck in an
// abort/retry livelock (every attempt spuriously aborted) and requires it
// to stop within one retry iteration, leaving no locks held.
func TestAtomicCtxCancelStopsRetryLoop(t *testing.T) {
	rt := New(Config{EagerWriteLock: true})
	rt.SetFaultInjector(alwaysAbort{})
	v := NewVar(0)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- rt.AtomicCtx(ctx, 0, 0, func(tx *Tx) error {
			Write(tx, v, Read(tx, v)+1)
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let it spin through some aborts
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AtomicCtx did not stop after cancel")
	}
	if _, locked := v.LockState(); locked {
		t.Fatal("lock held after canceled transaction")
	}
	if _, canceled := rt.ResilienceStats(); canceled != 1 {
		_, c := rt.ResilienceStats()
		t.Fatalf("canceled counter = %d, want 1", c)
	}
}

// TestAtomicCtxRetryBudget exhausts a per-call budget against permanent
// spurious aborts: exactly budget attempts run, the call returns
// ErrBudgetExceeded, and the exhaustion is counted separately from aborts.
func TestAtomicCtxRetryBudget(t *testing.T) {
	rt := New(Config{})
	rt.SetFaultInjector(alwaysAbort{})
	v := NewVar(0)

	const budget = 5
	attempts := 0
	ctx := retry.WithBudget(context.Background(), budget)
	err := rt.AtomicCtx(ctx, 0, 0, func(tx *Tx) error {
		attempts++
		Write(tx, v, Read(tx, v)+1)
		return nil
	})
	if !errors.Is(err, retry.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if attempts != budget {
		t.Fatalf("body ran %d times, want %d", attempts, budget)
	}
	if _, aborts := rt.Stats(); aborts != budget {
		t.Fatalf("aborts = %d, want %d", aborts, budget)
	}
	if exceeded, _ := rt.ResilienceStats(); exceeded != 1 {
		t.Fatalf("budgetExceeded = %d, want 1", exceeded)
	}
	if got := v.Peek(); got != 0 {
		t.Fatalf("aborted attempts published writes: %d", got)
	}
	// Without a budget the same runtime still retries: clear the injector
	// and the transaction must succeed.
	rt.SetFaultInjector(nil)
	if err := rt.AtomicCtx(context.Background(), 0, 0, func(tx *Tx) error {
		Write(tx, v, Read(tx, v)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicROCtx covers the read-only fast path under context control.
func TestAtomicROCtx(t *testing.T) {
	rt := New(Config{})
	v := NewVar(7)
	var got int
	if err := rt.AtomicROCtx(context.Background(), 0, 0, func(tx *Tx) error {
		got = Read(tx, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("read %d, want 7", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.AtomicROCtx(ctx, 0, 0, func(tx *Tx) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
