package tl2

import (
	"sync/atomic"
	"time"
	"unsafe"

	"gstm/internal/obs"
	"gstm/internal/txid"
	"gstm/internal/wset"
)

// rngSeq hands out distinct initial states for per-Tx yield generators.
var rngSeq atomic.Uint64

// tagSeq hands out nonzero ownership tags, one per pooled Tx object. A tag
// only ever marks locks the Tx itself holds, and every lock is released
// (owner cleared) before the Tx is pooled, so reuse across attempts is safe.
var tagSeq atomic.Uint64

// conflictSignal is panicked by transactional reads/writes (and returned by
// the commit protocol) when a conflict is detected. byWV is the write
// version of the commit that invalidated this transaction, or 0 when the
// invalidating commit could not be identified (e.g. the location stayed
// locked past the spin bound). cause classifies the conflict for the abort
// taxonomy.
type conflictSignal struct {
	byWV  uint64
	cause obs.Cause
}

// Tx is a single attempt of a transaction. A Tx is only valid inside the
// function passed to Runtime.Atomic and must not escape it or be shared
// across goroutines.
type Tx struct {
	rt       *Runtime
	self     txid.Pair
	rv       uint64
	tag      uint64 // nonzero ownership tag stamped into lock-slot owners while locking
	reads    []*base
	ws       wset.Set[*base] // redo log: sorted small-vector write set with lock bookkeeping
	attempt  int
	rng      uint64
	ops      int
	readOnly bool

	// trackReads records read bases into tx.reads. True for every
	// read-write transaction (commit-time validation needs the read set)
	// and, independently of readOnly, for blockable transactions: a park
	// registers waiters on exactly the bases the attempt read, so the
	// blocking mode of a Run call forces read tracking even on the
	// read-only fast path.
	trackReads bool

	// parkW is the reusable wakeup record for blocking parks (waiters.go).
	parkW parkWaiter

	// Striped-mode lock bookkeeping: every stripeRef in stripes is a
	// stripe lock this attempt currently holds (appended only after a
	// successful CAS); stripePlan is the reusable scratch list of stripes
	// the commit still needs, kept sorted by slot address for the
	// deterministic acquisition order striping takes away from the
	// write set's address sort. Both retain capacity across attempts (the
	// per-Tx arena pattern), so steady-state striped commits allocate
	// nothing for lock bookkeeping. Unused (always empty) in per-location
	// mode, where the write-set entries carry Pre/Locked instead.
	stripes    []stripeRef
	stripePlan []*lockSlot

	// Latency-sampling state: when measure is set (1 in telemetry.SampleEvery
	// commits per shard) the commit protocol times its read-set validation
	// phase into valDur; validated records whether validation ran at all.
	measure   bool
	valDur    time.Duration
	validated bool

	// span, when non-nil, receives the commit protocol's phase timeline
	// (lock / validate / publish). It is owned by the caller of Run and all
	// Span methods are nil-safe, so the untraced path stays branch-cheap.
	span *obs.Span
}

// errWriteInReadOnly reports a Write inside a read-only transaction.
type errWriteInReadOnly struct{}

func (errWriteInReadOnly) Error() string {
	return "tl2: Write inside a read-only transaction"
}

func (tx *Tx) reset(rt *Runtime, self txid.Pair, attempt int, readOnly, blockable bool) {
	tx.rt = rt
	tx.self = self
	tx.readOnly = readOnly
	tx.trackReads = !readOnly || blockable
	tx.rv = rt.clk().now()
	tx.reads = tx.reads[:0]
	tx.ws.Reset()
	tx.stripes = tx.stripes[:0]
	tx.stripePlan = tx.stripePlan[:0]
	tx.attempt = attempt
	tx.measure = false
	tx.valDur = 0
	tx.validated = false
	tx.span = nil
	if tx.tag == 0 {
		tx.tag = tagSeq.Add(1)
	}
	// The yield generator is seeded once per Tx object and then evolves
	// across transactions and attempts. Re-seeding per attempt would make
	// the yield pattern a pure function of (pair, attempt): short
	// transactions would then either always or never yield at the same
	// operation, and on a single core "never" means transactions stop
	// overlapping entirely.
	if tx.rng == 0 {
		tx.rng = rngSeq.Add(0x9e3779b97f4a7c15) | 1
	}
	tx.ops = 0
}

// Self returns the (transaction, thread) pair of this attempt.
func (tx *Tx) Self() txid.Pair { return tx.self }

// Attempt returns the zero-based retry count of this attempt.
func (tx *Tx) Attempt() int { return tx.attempt }

// maybeYield implements the Interleave knob: on the single-core test
// machine, transactions would otherwise frequently run to completion
// between preemptions and never conflict, so every STM operation has a
// 1/Interleave chance of yielding the processor mid-transaction. This
// substitutes for the paper's true multi-core interleaving (see DESIGN.md).
func (tx *Tx) maybeYield() {
	n := tx.rt.cfg.Interleave
	if n <= 0 {
		return
	}
	tx.ops++
	tx.rng ^= tx.rng << 13
	tx.rng ^= tx.rng >> 7
	tx.rng ^= tx.rng << 17
	if tx.rng%uint64(n) == 0 {
		spinYield()
	}
}

func (tx *Tx) conflict(byWV uint64, cause obs.Cause) {
	panic(&conflictSignal{byWV: byWV, cause: cause})
}

// baseAddr is the write-set key of b: its address, which is also the
// deterministic commit-time lock ordering key (and, under striping, the
// stripe hash input).
func baseAddr(b *base) uintptr { return uintptr(unsafe.Pointer(b)) }

// slotAddr is the striped-mode lock acquisition ordering key.
func slotAddr(lk *lockSlot) uintptr { return uintptr(unsafe.Pointer(lk)) }

// readBase performs the TL2 post-validated read protocol on b and returns
// the consistent value snapshot as a raw pointer (a *T the generic Read
// dereferences — no interface hop, no closure). It panics with a
// conflictSignal when the location's version exceeds rv or the location
// stays locked.
func (tx *Tx) readBase(b *base) unsafe.Pointer {
	tx.maybeYield()
	// Read-after-write fast path: the filter answers the common miss in
	// O(1) (read-only transactions keep it at zero, so this is one branch),
	// and a hit returns the private redo box without allocating.
	if e, fp := tx.ws.Lookup(baseAddr(b)); e != nil {
		return e.Val
	} else if fp {
		tx.rt.tel.FilterFalsePositives.Inc(uint64(tx.self.Thread))
	}
	lk := tx.rt.lockFor(b)
	for spins := 0; ; spins++ {
		w1 := lk.word.Load()
		if wordLocked(w1) {
			// Under striping an eager writer can hold the stripe of a
			// location it never wrote (an alias of something it did write);
			// the RAW lookup above cannot catch that, so check ownership
			// here. Holding the stripe freezes its word and excludes
			// publishers, so the snapshot is consistent against the
			// pre-lock version, which eager acquisition validated ≤ rv.
			if pre, mine := tx.ownedPre(lk, b); mine {
				if v := wordVersion(pre); v > tx.rv {
					tx.conflict(v, obs.CauseReadValidation)
				}
				p := b.loadPtr()
				if tx.trackReads {
					tx.reads = append(tx.reads, b)
				}
				return p
			}
			if spins < tx.rt.cfg.MaxReadSpin {
				spinYield()
				continue
			}
			// The lock holder is mid-commit and will bump the version past
			// rv the moment it finishes; treat it as the invalidator but
			// its wv is not yet knowable.
			tx.conflict(0, obs.CauseLockBusy)
		}
		p := b.loadPtr()
		w2 := lk.word.Load()
		if w1 != w2 {
			// Raced with a commit; re-run the protocol.
			continue
		}
		if v := wordVersion(w1); v > tx.rv {
			tx.conflict(v, obs.CauseReadValidation)
		}
		// TL2's read-only fast path: reads are fully validated here
		// against rv, and a read-only commit performs no further
		// validation, so the read set need not be recorded at all —
		// unless the call is blockable, in which case a park needs to
		// know what was read.
		if tx.trackReads {
			tx.reads = append(tx.reads, b)
		}
		return p
	}
}

// Read returns the value of v inside the transaction, observing the
// transaction's own buffered writes first. The unboxed hot path: one
// pointer returned by the read protocol, one typed dereference.
func Read[T any](tx *Tx, v *Var[T]) T {
	return *(*T)(tx.readBase(&v.b))
}

// box copies val to a fresh heap box. Kept out of Write so that escape
// analysis only allocates on the paths that call it: the buffered-write
// fast path updates an existing box in place and must stay allocation-free.
func box[T any](val T) *T {
	v := val
	return &v
}

// Write buffers val as the transaction's pending write to v. The write
// becomes visible to other transactions only if this attempt commits.
// Under eager detection (Config.EagerWriteLock) the location's versioned
// lock is acquired here, at encounter time.
//
// A rewrite of an already-buffered location updates the redo box in place
// through the raw entry pointer (the box is private until commit publishes
// it), so the buffered-write fast path performs no allocation and no
// interface conversion; only the first write to a location allocates the
// box that commit will publish.
func Write[T any](tx *Tx, v *Var[T], val T) {
	if tx.readOnly {
		panic(errWriteInReadOnly{})
	}
	tx.maybeYield()
	b := &v.b
	addr := baseAddr(b)
	if e, fp := tx.ws.Lookup(addr); e != nil {
		// The entry keyed by b was inserted by a Write through the same
		// Var[T] (the base is embedded in it), so the redo box is a *T.
		*(*T)(e.Val) = val
		return
	} else if fp {
		tx.rt.tel.FilterFalsePositives.Inc(uint64(tx.self.Thread))
	}
	e, spilled := tx.ws.Insert(b, addr)
	e.Val = unsafe.Pointer(box(val))
	if spilled {
		tx.rt.tel.WriteSetSpills.Inc(uint64(tx.self.Thread))
	}
	if tx.rt.cfg.EagerWriteLock {
		tx.lockEager(e, b)
	}
}

// lockEager acquires b's versioned lock at encounter time with bounded
// spinning, validating the version against rv (a newer version means a
// conflicting commit already happened). In per-location mode the lock
// bookkeeping is recorded in b's write-set entry e; in striped mode it goes
// to the transaction's stripe list, and a stripe already held (an aliased
// second write) is counted and reused rather than re-acquired.
func (tx *Tx) lockEager(e *wset.Entry[*base], b *base) {
	lk := tx.rt.lockFor(b)
	striped := tx.rt.stripes != nil
	if striped && lk.owner.Load() == tx.tag {
		// Two written locations share this stripe; one lock covers both.
		tx.rt.tel.StripeCollisions.Inc(uint64(tx.self.Thread))
		return
	}
	for spins := 0; ; spins++ {
		w := lk.word.Load()
		if wordLocked(w) {
			if spins >= tx.rt.cfg.MaxLockSpin {
				tx.conflict(0, obs.CauseLockBusy)
			}
			spinYield()
			continue
		}
		if v := wordVersion(w); v > tx.rv {
			tx.conflict(v, obs.CauseReadValidation)
		}
		if lk.word.CompareAndSwap(w, w|lockedBit) {
			lk.owner.Store(tx.tag)
			if striped {
				tx.stripes = append(tx.stripes, stripeRef{lk: lk, pre: w})
			} else {
				e.Pre = w
				e.Locked = true
			}
			return
		}
	}
}

// ReadAt is shorthand for Read on an Array element.
func ReadAt[T any](tx *Tx, a *Array[T], i int) T { return Read(tx, a.At(i)) }

// WriteAt is shorthand for Write on an Array element.
func WriteAt[T any](tx *Tx, a *Array[T], i int, val T) { Write(tx, a.At(i), val) }

// lockWriteSet acquires the versioned lock of every written location with
// bounded spinning. It reports failure (and releases everything acquired)
// when some lock cannot be taken, the TL2 deadlock-avoidance rule.
//
// In per-location mode locks are acquired in ascending location address
// order (the write set is sorted), so any two transactions acquire the
// locks they share in the same global order: the random-map-iteration
// livelock window — two commits each holding a lock the other spins on,
// both aborting, retrying, and colliding again in a new random order —
// cannot occur. In striped mode the stripe hash destroys that ordering, so
// the needed stripes are first deduplicated (counting aliases) and sorted
// by slot address to restore a global acquisition order.
func (tx *Tx) lockWriteSet() bool {
	if tx.rt.stripes != nil {
		return tx.lockStripedWriteSet()
	}
	ents := tx.ws.Entries()
	for i := range ents {
		e := &ents[i]
		if e.Locked {
			continue // already taken at encounter time (eager mode)
		}
		b := e.Key
		lk := &b.lk
		acquired := false
		for spins := 0; spins <= tx.rt.cfg.MaxLockSpin; spins++ {
			w := lk.word.Load()
			if wordLocked(w) {
				spinYield()
				continue
			}
			if lk.word.CompareAndSwap(w, w|lockedBit) {
				lk.owner.Store(tx.tag)
				e.Pre = w
				e.Locked = true
				acquired = true
				break
			}
		}
		if !acquired {
			tx.releaseLocks(0)
			return false
		}
	}
	return true
}

// lockStripedWriteSet is the striped-mode commit lock phase: map every
// write-set entry to its stripe, drop duplicates (two entries on one
// stripe — the aliasing telemetry), skip stripes already taken at
// encounter time, sort the remainder by slot address for a deterministic
// global acquisition order, then acquire each with bounded spinning.
func (tx *Tx) lockStripedWriteSet() bool {
	t := tx.rt.stripes
	ents := tx.ws.Entries()
	tx.stripePlan = tx.stripePlan[:0]
plan:
	for i := range ents {
		lk := t.of(ents[i].Addr())
		for j := range tx.stripes {
			if tx.stripes[j].lk == lk {
				// Held since encounter time (eager) — an alias only if a
				// previous *entry* mapped here, which eager counting
				// already recorded; nothing to plan either way.
				continue plan
			}
		}
		for j := range tx.stripePlan {
			if tx.stripePlan[j] == lk {
				tx.rt.tel.StripeCollisions.Inc(uint64(tx.self.Thread))
				continue plan
			}
		}
		tx.stripePlan = append(tx.stripePlan, lk)
	}
	// Insertion sort by slot address: write sets are small (InlineSize 8
	// before spilling) and sort.Slice's reflection would allocate on every
	// striped commit.
	for i := 1; i < len(tx.stripePlan); i++ {
		for j := i; j > 0 && slotAddr(tx.stripePlan[j]) < slotAddr(tx.stripePlan[j-1]); j-- {
			tx.stripePlan[j], tx.stripePlan[j-1] = tx.stripePlan[j-1], tx.stripePlan[j]
		}
	}
	for _, lk := range tx.stripePlan {
		acquired := false
		for spins := 0; spins <= tx.rt.cfg.MaxLockSpin; spins++ {
			w := lk.word.Load()
			if wordLocked(w) {
				spinYield()
				continue
			}
			if lk.word.CompareAndSwap(w, w|lockedBit) {
				lk.owner.Store(tx.tag)
				tx.stripes = append(tx.stripes, stripeRef{lk: lk, pre: w})
				acquired = true
				break
			}
		}
		if !acquired {
			tx.releaseLocks(0)
			return false
		}
	}
	return true
}

// releaseLocks restores every acquired lock word. When wv is zero the
// pre-lock words are restored (abort path); otherwise each location is
// published at version wv (commit path). The owner tag is cleared before
// the unlocking store so no later lock holder's tag is ever clobbered.
func (tx *Tx) releaseLocks(wv uint64) {
	if tx.rt != nil && tx.rt.stripes != nil {
		for i := range tx.stripes {
			r := &tx.stripes[i]
			r.lk.owner.Store(0)
			if wv == 0 {
				r.lk.word.Store(r.pre)
			} else {
				r.lk.word.Store(makeWord(wv, false))
			}
		}
		tx.stripes = tx.stripes[:0]
		return
	}
	ents := tx.ws.Entries()
	for i := range ents {
		e := &ents[i]
		if !e.Locked {
			continue
		}
		lk := &e.Key.lk
		lk.owner.Store(0)
		if wv == 0 {
			lk.word.Store(e.Pre)
		} else {
			lk.word.Store(makeWord(wv, false))
		}
		e.Locked = false
	}
}

// scrub clears the attempt's read/write bookkeeping so a Tx abandoned on a
// user panic can be pooled without retaining the dead attempt's sets.
// Releasing any held locks is the caller's job (releaseLocks).
func (tx *Tx) scrub() {
	tx.reads = tx.reads[:0]
	tx.ws.Reset()
	tx.stripes = tx.stripes[:0]
	tx.stripePlan = tx.stripePlan[:0]
}

// ownedPre returns the pre-lock word of lk (the slot guarding b) if this
// transaction holds its lock. The ownership test is one atomic load of the
// slot's owner tag — O(1), replacing the linear lock-list scan that made
// read-set validation O(reads×locks) — and only a positive answer (rare: a
// location both read and written by this transaction, or an alias of one
// under striping) pays the lookup for the pre-lock word.
func (tx *Tx) ownedPre(lk *lockSlot, b *base) (uint64, bool) {
	if lk.owner.Load() != tx.tag {
		return 0, false
	}
	if tx.rt.stripes != nil {
		for i := range tx.stripes {
			if tx.stripes[i].lk == lk {
				return tx.stripes[i].pre, true
			}
		}
		return 0, false
	}
	e, _ := tx.ws.Lookup(baseAddr(b))
	if e == nil || !e.Locked {
		return 0, false
	}
	return e.Pre, true
}

// validateReads re-validates the attempt's full read set against rv: a
// location locked by someone else or carrying a version newer than rv
// fails. Unlike the inline validation in commit it never elides on clock
// evidence — the cross-shard prepare path calls it after every
// participant's locks are down, and a sibling participant's clock tells
// this shard nothing. The caller owns lock release on failure.
func (tx *Tx) validateReads() (byWV uint64, cause obs.Cause, ok bool) {
	for _, b := range tx.reads {
		lk := tx.rt.lockFor(b)
		w := lk.word.Load()
		if wordLocked(w) {
			pre, mine := tx.ownedPre(lk, b)
			if !mine {
				return 0, obs.CauseLockBusy, false
			}
			w = pre
		}
		if v := wordVersion(w); v > tx.rv {
			return v, obs.CauseReadValidation, false
		}
	}
	return 0, obs.CauseNone, true
}

// publishAt is the back half of the prepared-commit split: it publishes
// the write set at the caller-chosen write version wv, records the
// attribution, releases every lock at wv and wakes parked readers. The
// caller must hold the write-set locks (lockWriteSet succeeded), have
// validated the read set, and have advanced this runtime's clock to at
// least wv — locations must never carry versions the clock has not
// reached, or readers under this clock would spin on the future.
func (tx *Tx) publishAt(wv uint64) {
	ents := tx.ws.Entries()
	for i := range ents {
		ents[i].Key.storePtr(ents[i].Val)
	}
	tx.rt.reg.Record(wv, tx.self)
	tx.releaseLocks(wv)
	for i := range ents {
		if b := ents[i].Key; b.wtrs.Load() != nil {
			b.wakeWaiters()
		}
	}
}

// commit runs the TL2 commit protocol. On success it returns the commit's
// write version. On conflict it returns the invalidating write version (0
// when unknown), the taxonomy cause, and ok=false; all locks are released
// and no writes are published. When tx.span is set, the lock / validate /
// publish phases are recorded into its timeline.
//
// traced selects the clock discipline. With a sink installed (traced), every
// commit — including read-only ones — draws a unique tick so the tracing
// layer can totally order the transaction sequence by wv. Untraced, the
// commit path sheds global-clock cacheline traffic two ways: read-only
// commits skip the tick entirely (no location version advances and nobody
// consumes the sequence number), and write commits draw wv through the GV4
// pass-on-failure clock (see tickGV4), so a failed clock CAS is never
// retried.
func (tx *Tx) commit(traced bool) (wv uint64, byWV uint64, cause obs.Cause, ok bool) {
	if tx.ws.Len() == 0 {
		// Reads were validated against rv at access time; nothing to do.
		if traced {
			return tx.rt.clk().tick(), 0, obs.CauseNone, true
		}
		return tx.rv, 0, obs.CauseNone, true
	}
	att := tx.attempt + 1
	spanned := tx.span != nil
	// The traced commit shares one clock read per phase boundary (lock end
	// doubles as validate start, validate end as publish start), so a fully
	// validated commit costs four time.Now calls, not per-phase pairs.
	var lockStart, mark time.Time
	if spanned {
		lockStart = time.Now()
	}
	if !tx.lockWriteSet() {
		tx.span.AddSince(obs.PhaseLock, obs.CauseLockBusy, att, lockStart)
		return 0, 0, obs.CauseLockBusy, false
	}
	if spanned {
		mark = time.Now()
		tx.span.Add(obs.PhaseLock, obs.CauseNone, att, lockStart.UnixNano(), mark.Sub(lockStart).Nanoseconds())
	}
	if fi := tx.rt.injector(); fi != nil {
		// Fault point: hold the write-set locks longer, widening the
		// mid-commit window other transactions see as locked words.
		for i, n := 0, fi.CommitDelay(tx.self, tx.attempt); i < n; i++ {
			spinYield()
		}
		if spanned {
			mark = time.Now() // the injected hold is not a validate cost
		}
	}
	needValidate := true
	adopted := false
	if traced {
		wv = tx.rt.clk().tick()
		needValidate = wv != tx.rv+1
	} else {
		wv, needValidate, adopted = tx.rt.clk().tickGV4(tx.rv)
		if adopted {
			tx.rt.tel.ClockCASFallbacks.Inc(uint64(tx.self.Thread))
		}
	}
	if needValidate {
		// Something committed since we sampled rv: validate the read set.
		// A failure after a GV4 adoption is classified clock-cas — the
		// adopted (reused) tick forced a validation the unique-tick path
		// might have skipped.
		valCause := obs.CauseReadValidation
		if adopted {
			valCause = obs.CauseClockCAS
		}
		var vt0 time.Time
		if spanned {
			vt0 = mark
		} else if tx.measure {
			vt0 = time.Now()
		}
		for _, b := range tx.reads {
			lk := tx.rt.lockFor(b)
			w := lk.word.Load()
			if wordLocked(w) {
				pre, mine := tx.ownedPre(lk, b)
				if !mine {
					tx.releaseLocks(0)
					tx.span.AddSince(obs.PhaseValidate, obs.CauseLockBusy, att, vt0)
					return 0, 0, obs.CauseLockBusy, false
				}
				w = pre
			}
			if v := wordVersion(w); v > tx.rv {
				tx.releaseLocks(0)
				tx.span.AddSince(obs.PhaseValidate, valCause, att, vt0)
				return 0, v, valCause, false
			}
		}
		if tx.measure || spanned {
			end := time.Now()
			if tx.measure {
				tx.valDur = end.Sub(vt0)
				tx.validated = true
			}
			if spanned {
				tx.span.Add(obs.PhaseValidate, obs.CauseNone, att, vt0.UnixNano(), end.Sub(vt0).Nanoseconds())
				mark = end
			}
		}
	}
	ents := tx.ws.Entries()
	for i := range ents {
		// Publish the redo box: one raw pointer store per location, the
		// unboxed replacement for the old per-location apply closure call.
		ents[i].Key.storePtr(ents[i].Val)
	}
	// Publish attribution before the new version becomes observable.
	tx.rt.reg.Record(wv, tx.self)
	tx.releaseLocks(wv)
	if spanned {
		tx.span.AddSinceNs(obs.PhasePublish, obs.CauseNone, att, mark.UnixNano())
	}
	// Wake transactions parked on any written location (waiters.go). The
	// versions published above are already observable, so a parker that
	// registers after the detach below re-validates against them and never
	// sleeps through this commit. On the non-blocking fast path this is one
	// atomic nil-load per written location and nothing else.
	for i := range ents {
		if b := ents[i].Key; b.wtrs.Load() != nil {
			b.wakeWaiters()
		}
	}
	return wv, 0, obs.CauseNone, true
}
