package tl2

import (
	"sync/atomic"
	"time"

	"gstm/internal/txid"
)

// rngSeq hands out distinct initial states for per-Tx yield generators.
var rngSeq atomic.Uint64

// conflictSignal is panicked by transactional reads/writes (and returned by
// the commit protocol) when a conflict is detected. byWV is the write
// version of the commit that invalidated this transaction, or 0 when the
// invalidating commit could not be identified (e.g. the location stayed
// locked past the spin bound).
type conflictSignal struct {
	byWV uint64
}

// Tx is a single attempt of a transaction. A Tx is only valid inside the
// function passed to Runtime.Atomic and must not escape it or be shared
// across goroutines.
type Tx struct {
	rt       *Runtime
	self     txid.Pair
	rv       uint64
	reads    []*base
	writes   map[*base]any // boxed *T redo values
	lockIdx  []*base       // bases locked during commit, in acquisition order
	lockPre  []uint64      // their pre-lock words, parallel to lockIdx
	attempt  int
	rng      uint64
	ops      int
	readOnly bool

	// Latency-sampling state: when measure is set (1 in telemetry.SampleEvery
	// commits per shard) the commit protocol times its read-set validation
	// phase into valDur; validated records whether validation ran at all.
	measure   bool
	valDur    time.Duration
	validated bool
}

// errWriteInReadOnly reports a Write inside a read-only transaction.
type errWriteInReadOnly struct{}

func (errWriteInReadOnly) Error() string {
	return "tl2: Write inside a read-only transaction"
}

func (tx *Tx) reset(rt *Runtime, self txid.Pair, attempt int, readOnly bool) {
	tx.rt = rt
	tx.self = self
	tx.readOnly = readOnly
	tx.rv = rt.clk().now()
	tx.reads = tx.reads[:0]
	if tx.writes == nil {
		tx.writes = make(map[*base]any, 8)
	} else if len(tx.writes) != 0 {
		// Guarded: read-only and read-heavy transactions recycle the Tx with
		// an already-empty write map, and clearing an empty map still costs a
		// runtime call on what is otherwise the minimal hot path.
		clear(tx.writes)
	}
	tx.lockIdx = tx.lockIdx[:0]
	tx.lockPre = tx.lockPre[:0]
	tx.attempt = attempt
	tx.measure = false
	tx.valDur = 0
	tx.validated = false
	// The yield generator is seeded once per Tx object and then evolves
	// across transactions and attempts. Re-seeding per attempt would make
	// the yield pattern a pure function of (pair, attempt): short
	// transactions would then either always or never yield at the same
	// operation, and on a single core "never" means transactions stop
	// overlapping entirely.
	if tx.rng == 0 {
		tx.rng = rngSeq.Add(0x9e3779b97f4a7c15) | 1
	}
	tx.ops = 0
}

// Self returns the (transaction, thread) pair of this attempt.
func (tx *Tx) Self() txid.Pair { return tx.self }

// Attempt returns the zero-based retry count of this attempt.
func (tx *Tx) Attempt() int { return tx.attempt }

// maybeYield implements the Interleave knob: on the single-core test
// machine, transactions would otherwise frequently run to completion
// between preemptions and never conflict, so every STM operation has a
// 1/Interleave chance of yielding the processor mid-transaction. This
// substitutes for the paper's true multi-core interleaving (see DESIGN.md).
func (tx *Tx) maybeYield() {
	n := tx.rt.cfg.Interleave
	if n <= 0 {
		return
	}
	tx.ops++
	tx.rng ^= tx.rng << 13
	tx.rng ^= tx.rng >> 7
	tx.rng ^= tx.rng << 17
	if tx.rng%uint64(n) == 0 {
		spinYield()
	}
}

func (tx *Tx) conflict(byWV uint64) {
	panic(&conflictSignal{byWV: byWV})
}

// readBase performs the TL2 post-validated read protocol on b and returns
// the consistent value snapshot. It panics with a conflictSignal when the
// location's version exceeds rv or the location stays locked.
func (tx *Tx) readBase(b *base, load func() any) any {
	tx.maybeYield()
	if boxed, ok := tx.writes[b]; ok {
		return boxed
	}
	for spins := 0; ; spins++ {
		w1 := b.word.Load()
		if wordLocked(w1) {
			if spins < tx.rt.cfg.MaxReadSpin {
				spinYield()
				continue
			}
			// The lock holder is mid-commit and will bump the version past
			// rv the moment it finishes; treat it as the invalidator but
			// its wv is not yet knowable.
			tx.conflict(0)
		}
		val := load()
		w2 := b.word.Load()
		if w1 != w2 {
			// Raced with a commit; re-run the protocol.
			continue
		}
		if v := wordVersion(w1); v > tx.rv {
			tx.conflict(v)
		}
		// TL2's read-only fast path: reads are fully validated here
		// against rv, and a read-only commit performs no further
		// validation, so the read set need not be recorded at all.
		if !tx.readOnly {
			tx.reads = append(tx.reads, b)
		}
		return val
	}
}

// Read returns the value of v inside the transaction, observing the
// transaction's own buffered writes first.
func Read[T any](tx *Tx, v *Var[T]) T {
	boxed := tx.readBase(&v.b, func() any { return v.p.Load() })
	return *(boxed.(*T))
}

// Write buffers val as the transaction's pending write to v. The write
// becomes visible to other transactions only if this attempt commits.
// Under eager detection (Config.EagerWriteLock) the location's versioned
// lock is acquired here, at encounter time.
func Write[T any](tx *Tx, v *Var[T], val T) {
	if tx.readOnly {
		panic(errWriteInReadOnly{})
	}
	tx.maybeYield()
	b := &v.b
	if tx.rt.cfg.EagerWriteLock {
		if _, buffered := tx.writes[b]; !buffered {
			tx.lockEager(b)
		}
	}
	tx.writes[b] = &val
}

// lockEager acquires b's versioned lock at encounter time with bounded
// spinning, validating the version against rv (a newer version means a
// conflicting commit already happened).
func (tx *Tx) lockEager(b *base) {
	for spins := 0; ; spins++ {
		w := b.word.Load()
		if wordLocked(w) {
			if spins >= tx.rt.cfg.MaxLockSpin {
				tx.conflict(0)
			}
			spinYield()
			continue
		}
		if v := wordVersion(w); v > tx.rv {
			tx.conflict(v)
		}
		if b.word.CompareAndSwap(w, w|lockedBit) {
			tx.lockIdx = append(tx.lockIdx, b)
			tx.lockPre = append(tx.lockPre, w)
			return
		}
	}
}

// ReadAt is shorthand for Read on an Array element.
func ReadAt[T any](tx *Tx, a *Array[T], i int) T { return Read(tx, a.At(i)) }

// WriteAt is shorthand for Write on an Array element.
func WriteAt[T any](tx *Tx, a *Array[T], i int, val T) { Write(tx, a.At(i), val) }

// lockWriteSet acquires the versioned lock of every written location with
// bounded spinning. It reports failure (and releases everything acquired)
// when some lock cannot be taken, the TL2 deadlock-avoidance rule.
func (tx *Tx) lockWriteSet() bool {
	for b := range tx.writes {
		if _, mine := tx.ownedPre(b); mine {
			continue // already taken at encounter time (eager mode)
		}
		acquired := false
		for spins := 0; spins <= tx.rt.cfg.MaxLockSpin; spins++ {
			w := b.word.Load()
			if wordLocked(w) {
				spinYield()
				continue
			}
			if b.word.CompareAndSwap(w, w|lockedBit) {
				tx.lockIdx = append(tx.lockIdx, b)
				tx.lockPre = append(tx.lockPre, w)
				acquired = true
				break
			}
		}
		if !acquired {
			tx.releaseLocks(0)
			return false
		}
	}
	return true
}

// releaseLocks restores every acquired lock word. When wv is zero the
// pre-lock words are restored (abort path); otherwise each location is
// published at version wv (commit path).
func (tx *Tx) releaseLocks(wv uint64) {
	for i, b := range tx.lockIdx {
		if wv == 0 {
			b.word.Store(tx.lockPre[i])
		} else {
			b.word.Store(makeWord(wv, false))
		}
	}
	tx.lockIdx = tx.lockIdx[:0]
	tx.lockPre = tx.lockPre[:0]
}

// scrub clears the attempt's read/write bookkeeping so a Tx abandoned on a
// user panic can be pooled without retaining the dead attempt's sets.
// Releasing any held locks is the caller's job (releaseLocks).
func (tx *Tx) scrub() {
	tx.reads = tx.reads[:0]
	if len(tx.writes) != 0 {
		clear(tx.writes)
	}
	tx.lockIdx = tx.lockIdx[:0]
	tx.lockPre = tx.lockPre[:0]
}

// ownedPre returns the pre-lock word of b if this transaction holds its
// lock.
func (tx *Tx) ownedPre(b *base) (uint64, bool) {
	for i, lb := range tx.lockIdx {
		if lb == b {
			return tx.lockPre[i], true
		}
	}
	return 0, false
}

// commit runs the TL2 commit protocol. On success it returns the commit's
// write version. On conflict it returns the invalidating write version (0
// when unknown) and ok=false; all locks are released and no writes are
// published.
//
// Read-only transactions also draw a write version: the clock tick gives
// every commit — including read-only ones — a unique global sequence
// number, which the tracing layer relies on to order the transaction
// sequence. No location version is advanced, so TL2 semantics are
// unaffected (see DESIGN.md).
func (tx *Tx) commit() (wv uint64, byWV uint64, ok bool) {
	if len(tx.writes) == 0 {
		// Reads were validated against rv at access time; nothing to do.
		return tx.rt.clk().tick(), 0, true
	}
	if !tx.lockWriteSet() {
		return 0, 0, false
	}
	if fi := tx.rt.injector(); fi != nil {
		// Fault point: hold the write-set locks longer, widening the
		// mid-commit window other transactions see as locked words.
		for i, n := 0, fi.CommitDelay(tx.self, tx.attempt); i < n; i++ {
			spinYield()
		}
	}
	wv = tx.rt.clk().tick()
	if wv != tx.rv+1 {
		// Something committed since we sampled rv: validate the read set.
		var vt0 time.Time
		if tx.measure {
			vt0 = time.Now()
		}
		for _, b := range tx.reads {
			w := b.word.Load()
			if wordLocked(w) {
				pre, mine := tx.ownedPre(b)
				if !mine {
					tx.releaseLocks(0)
					return 0, 0, false
				}
				w = pre
			}
			if v := wordVersion(w); v > tx.rv {
				tx.releaseLocks(0)
				return 0, v, false
			}
		}
		if tx.measure {
			tx.valDur = time.Since(vt0)
			tx.validated = true
		}
	}
	for b, boxed := range tx.writes {
		b.apply(boxed)
	}
	// Publish attribution before the new version becomes observable.
	tx.rt.reg.Record(wv, tx.self)
	tx.releaseLocks(wv)
	return wv, 0, true
}
