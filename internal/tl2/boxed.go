package tl2

import (
	"unsafe"

	"gstm/internal/obs"
)

// Boxed baseline.
//
// Before the unboxed slot protocol, every transactional access paid
// interface machinery: reads routed the snapshot load through a func() any
// closure and asserted boxed.(*T) back out, writes round-tripped the redo
// box through any, and each Var (and each Array element) carried a
// func(any) publish closure. BoxedVar preserves that access plumbing on
// top of the current engine so the -speed-bench sweep can measure boxed
// vs unboxed in one binary; it is a measurement artifact, not API — the
// rest of the repository uses Var. Commit publishing is shared with the
// unboxed path (a raw pointer store), which flatters the baseline if
// anything: the deltas BENCH_speed reports are per-access costs only.

// BoxedVar is a transactional location accessed through the retired
// any-boxed protocol. It carries the per-location apply closure the old
// layout allocated, so footprint and indirection match the baseline.
//
// Deprecated: BoxedVar is a measurement baseline for the -speed-bench
// sweep, not API. Use Var; the boxed protocol exists only so the unboxed
// redesign's deltas stay reproducible in one binary.
type BoxedVar[T any] struct {
	v     Var[T]
	apply func(boxed any) // retired publish hook, kept for layout fidelity
}

// NewBoxedVar returns a boxed-protocol location initialized to val.
//
// Deprecated: measurement baseline only; use NewVar.
func NewBoxedVar[T any](val T) *BoxedVar[T] {
	bv := &BoxedVar[T]{}
	bv.v.b.storePtr(unsafe.Pointer(&val))
	bv.apply = func(boxed any) { bv.v.b.storePtr(unsafe.Pointer(boxed.(*T))) }
	return bv
}

// Reset stores val non-transactionally (setup only).
func (bv *BoxedVar[T]) Reset(val T) { bv.v.Reset(val) }

// Peek loads the current value non-transactionally (verification only).
func (bv *BoxedVar[T]) Peek() T { return bv.v.Peek() }

// BoxedArray is the boxed-protocol Array: one BoxedVar per element, each
// with its own apply closure — exactly the N-closure construction cost
// NewArray used to pay.
//
// Deprecated: BoxedArray is a measurement baseline for the -speed-bench
// sweep, not API. Use Array.
type BoxedArray[T any] struct {
	cells []BoxedVar[T]
}

// NewBoxedArray returns a BoxedArray of n zero-valued elements.
//
// Deprecated: measurement baseline only; use NewArray.
func NewBoxedArray[T any](n int) *BoxedArray[T] {
	a := &BoxedArray[T]{cells: make([]BoxedVar[T], n)}
	for i := range a.cells {
		bv := &a.cells[i]
		var zero T
		bv.v.b.storePtr(unsafe.Pointer(&zero))
		bv.apply = func(boxed any) { bv.v.b.storePtr(unsafe.Pointer(boxed.(*T))) }
	}
	return a
}

// Len returns the number of elements.
func (a *BoxedArray[T]) Len() int { return len(a.cells) }

// At returns the i'th element.
func (a *BoxedArray[T]) At(i int) *BoxedVar[T] { return &a.cells[i] }

// Reset stores val into element i non-transactionally (setup only).
func (a *BoxedArray[T]) Reset(i int, val T) { a.cells[i].Reset(val) }

// Peek loads element i non-transactionally (verification only).
func (a *BoxedArray[T]) Peek(i int) T { return a.cells[i].Peek() }

// readBoxed is the retired closure-based read protocol: identical
// validation to readBase, but the snapshot load is an indirect call
// returning an interface value the caller asserts back to *T.
func (tx *Tx) readBoxed(b *base, load func() any) any {
	lk := tx.rt.lockFor(b)
	for spins := 0; ; spins++ {
		w1 := lk.word.Load()
		if wordLocked(w1) {
			if pre, mine := tx.ownedPre(lk, b); mine {
				if v := wordVersion(pre); v > tx.rv {
					tx.conflict(v, obs.CauseReadValidation)
				}
				val := load()
				if tx.trackReads {
					tx.reads = append(tx.reads, b)
				}
				return val
			}
			if spins < tx.rt.cfg.MaxReadSpin {
				spinYield()
				continue
			}
			tx.conflict(0, obs.CauseLockBusy)
		}
		val := load()
		w2 := lk.word.Load()
		if w1 != w2 {
			continue
		}
		if v := wordVersion(w1); v > tx.rv {
			tx.conflict(v, obs.CauseReadValidation)
		}
		if tx.trackReads {
			tx.reads = append(tx.reads, b)
		}
		return val
	}
}

// BoxedRead is the retired read path: closure-loaded snapshot, interface
// round trip, type assertion.
func BoxedRead[T any](tx *Tx, bv *BoxedVar[T]) T {
	tx.maybeYield()
	b := &bv.v.b
	if e, fp := tx.ws.Lookup(baseAddr(b)); e != nil {
		boxed := any((*T)(e.Val))
		return *(boxed.(*T))
	} else if fp {
		tx.rt.tel.FilterFalsePositives.Inc(uint64(tx.self.Thread))
	}
	boxed := tx.readBoxed(b, func() any { return (*T)(b.loadPtr()) })
	return *(boxed.(*T))
}

// BoxedWrite is the retired write path: the redo box round-trips through
// any on both the insert and the rewrite branch.
func BoxedWrite[T any](tx *Tx, bv *BoxedVar[T], val T) {
	if tx.readOnly {
		panic(errWriteInReadOnly{})
	}
	tx.maybeYield()
	b := &bv.v.b
	addr := baseAddr(b)
	if e, fp := tx.ws.Lookup(addr); e != nil {
		boxed := any((*T)(e.Val))
		if p, ok := boxed.(*T); ok {
			*p = val
		}
		return
	} else if fp {
		tx.rt.tel.FilterFalsePositives.Inc(uint64(tx.self.Thread))
	}
	e, spilled := tx.ws.Insert(b, addr)
	var boxed any = box(val)
	e.Val = unsafe.Pointer(boxed.(*T))
	if spilled {
		tx.rt.tel.WriteSetSpills.Inc(uint64(tx.self.Thread))
	}
	if tx.rt.cfg.EagerWriteLock {
		tx.lockEager(e, b)
	}
}
