package tl2

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gstm/internal/obs"
	"gstm/internal/retry"
)

// TestRetryWithoutBlockReturnsErrWouldBlock: outside blocking mode a
// Retry must surface as the sentinel, not spin or park.
func TestRetryWithoutBlockReturnsErrWouldBlock(t *testing.T) {
	rt := New(Config{})
	v := NewVar(0)
	err := rt.Atomic(0, 0, func(tx *Tx) error {
		if Read(tx, v) == 0 {
			tx.Retry()
		}
		return nil
	})
	if !errors.Is(err, retry.ErrWouldBlock) {
		t.Fatalf("got %v, want ErrWouldBlock", err)
	}
}

// TestRetryEmptyReadSetWouldBlock: a Retry before any read can never be
// woken, so even blocking mode must refuse to park.
func TestRetryEmptyReadSetWouldBlock(t *testing.T) {
	rt := New(Config{})
	err := rt.RunOpt(nil, 0, 0, func(tx *Tx) error {
		tx.Retry()
		return nil
	}, RunOpts{Block: true})
	if !errors.Is(err, retry.ErrWouldBlock) {
		t.Fatalf("got %v, want ErrWouldBlock", err)
	}
}

// TestRetryParksUntilCommit: the blocked consumer must wake on the
// producer's commit — no polling, one park — and the park must be stamped
// on the span (PhasePark/CauseWakeup) and the parked counter.
func TestRetryParksUntilCommit(t *testing.T) {
	rt := New(Config{})
	v := NewVar(0)
	parked0 := rt.Telemetry().Snapshot().Parked

	var sp obs.Span
	sp.Start(1, 0, 0, 0, 1, true, time.Now().UnixNano())
	got := make(chan int, 1)
	go func() {
		var out int
		err := rt.RunOpt(nil, 0, 0, func(tx *Tx) error {
			out = Read(tx, v)
			if out == 0 {
				tx.Retry()
			}
			return nil
		}, RunOpts{Block: true, Span: &sp})
		if err != nil {
			t.Error(err)
		}
		got <- out
	}()

	// Wait for the real park (the telemetry counter ticks after waiter
	// registration and validation, just before the sleep).
	deadline := time.Now().Add(5 * time.Second)
	for rt.Telemetry().Snapshot().Parked == parked0 {
		if time.Now().After(deadline) {
			t.Fatal("consumer never parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case out := <-got:
		t.Fatalf("consumer returned %d before the producer committed", out)
	default:
	}

	if err := rt.Atomic(1, 1, func(tx *Tx) error {
		Write(tx, v, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-got:
		if out != 7 {
			t.Fatalf("consumer read %d, want 7", out)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("consumer did not wake on the producer's commit")
	}

	sp.Finish(obs.CauseNone, time.Now().UnixNano())
	found := false
	for _, ev := range sp.Events() {
		if ev.Phase == obs.PhasePark && ev.Cause == obs.CauseWakeup {
			found = true
		}
	}
	if !found {
		t.Fatal("span has no park event with cause wakeup")
	}
}

// TestBlockCtxCancelEndsPark: a canceled park context must resolve the
// park with ErrCanceled wrapping the context error.
func TestBlockCtxCancelEndsPark(t *testing.T) {
	rt := New(Config{})
	v := NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- rt.RunOpt(nil, 0, 0, func(tx *Tx) error {
			if Read(tx, v) == 0 {
				tx.Retry()
			}
			return nil
		}, RunOpts{Block: true, BlockCtx: ctx})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Telemetry().Snapshot().Parked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, retry.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want ErrCanceled wrapping context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not end the park")
	}
}

// TestSelectFirstReadyWins: alternatives are tried in order; the first
// that does not Retry decides the transaction.
func TestSelectFirstReadyWins(t *testing.T) {
	rt := New(Config{})
	a, b := NewVar(0), NewVar(5)
	var from string
	err := rt.Atomic(0, 0, Select(
		func(tx *Tx) error {
			if Read(tx, a) == 0 {
				tx.Retry()
			}
			from = "a"
			return nil
		},
		func(tx *Tx) error {
			if Read(tx, b) == 0 {
				tx.Retry()
			}
			from = "b"
			return nil
		},
	))
	if err != nil {
		t.Fatal(err)
	}
	if from != "b" {
		t.Fatalf("selected %q, want b (a retried, b was ready)", from)
	}
}

// TestSelectAllRetryParksOnUnion: when every alternative retries, the
// transaction parks on the union of their reads — a commit enabling the
// second alternative must wake it.
func TestSelectAllRetryParksOnUnion(t *testing.T) {
	rt := New(Config{})
	a, b := NewVar(0), NewVar(0)
	got := make(chan string, 1)
	go func() {
		var from string
		err := rt.RunOpt(nil, 0, 0, Select(
			func(tx *Tx) error {
				if Read(tx, a) == 0 {
					tx.Retry()
				}
				from = "a"
				return nil
			},
			func(tx *Tx) error {
				if Read(tx, b) == 0 {
					tx.Retry()
				}
				from = "b"
				return nil
			},
		), RunOpts{Block: true})
		if err != nil {
			t.Error(err)
		}
		got <- from
	}()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Telemetry().Snapshot().Parked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := rt.Atomic(1, 1, func(tx *Tx) error {
		Write(tx, b, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case from := <-got:
		if from != "b" {
			t.Fatalf("woke into %q, want b", from)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("commit on the second alternative's read did not wake the select")
	}
}

// TestComposeChainsAtomically: Compose runs its parts in order inside one
// transaction and stops at the first error.
func TestComposeChainsAtomically(t *testing.T) {
	rt := New(Config{})
	a, b := NewVar(0), NewVar(0)
	if err := rt.Atomic(0, 0, Compose(
		func(tx *Tx) error { Write(tx, a, 1); return nil },
		func(tx *Tx) error { Write(tx, b, Read(tx, a)+1); return nil },
	)); err != nil {
		t.Fatal(err)
	}
	var ga, gb int
	_ = rt.AtomicRO(0, 0, func(tx *Tx) error { ga, gb = Read(tx, a), Read(tx, b); return nil })
	if ga != 1 || gb != 2 {
		t.Fatalf("composed state = (%d,%d), want (1,2)", ga, gb)
	}

	boom := errors.New("boom")
	ran := false
	err := rt.Atomic(0, 0, Compose(
		func(tx *Tx) error { Write(tx, a, 99); return boom },
		func(tx *Tx) error { ran = true; return nil },
	))
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if ran {
		t.Fatal("Compose ran past a failing part")
	}
	_ = rt.AtomicRO(0, 0, func(tx *Tx) error { ga = Read(tx, a); return nil })
	if ga != 1 {
		t.Fatalf("failed composition published a write: a = %d, want 1", ga)
	}
}

// TestSelectConflictStillRetries: a real conflict inside an alternative
// must propagate through Select's recover (engine retry, not orElse).
func TestSelectConflictStillRetries(t *testing.T) {
	rt := New(Config{Interleave: 2})
	v := NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := rt.Atomic(0, 0, Select(func(tx *Tx) error {
					Write(tx, v, Read(tx, v)+1)
					return nil
				})); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var got int
	_ = rt.AtomicRO(0, 0, func(tx *Tx) error { got = Read(tx, v); return nil })
	if got != 800 {
		t.Fatalf("counter = %d, want 800 (conflicts lost under Select)", got)
	}
}

// TestBlockingFastPathZeroAllocs is CI bench-smoke's gate on the waiter
// machinery's cost to transactions that never park: enabling blocking on
// a Run whose body finds its data must not allocate, and neither may the
// commit-side waiter check of a non-blocking writer.
func TestBlockingFastPathZeroAllocs(t *testing.T) {
	rt := New(Config{})
	v := NewVar(1)
	sel := Select(func(tx *Tx) error {
		if Read(tx, v) == 0 {
			tx.Retry()
		}
		return nil
	})
	if avg := testing.AllocsPerRun(200, func() {
		if err := rt.RunOpt(nil, 0, 0, sel, RunOpts{Block: true}); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("non-parking blocking Run = %.2f allocs/op, want 0", avg)
	}
	// A full write commit allocates exactly its redo box (first write to a
	// location, see Write) — pinning the total at 1 proves the commit-time
	// waiter walk (wakeWaiters nil-check per written base) adds nothing.
	inc := func(tx *Tx) error {
		Write(tx, v, Read(tx, v)+1)
		return nil
	}
	if avg := testing.AllocsPerRun(200, func() {
		if err := rt.Atomic(0, 0, inc); err != nil {
			t.Fatal(err)
		}
	}); avg > 1 {
		t.Errorf("writer commit with waiter check = %.2f allocs/op, want <= 1 (the redo box)", avg)
	}
}

// BenchmarkParkWake measures one full park/wake handoff: an echo goroutine
// blocks until the request cell advances, then answers; the driver commits
// the request and blocks until the answer. Run by CI bench-smoke.
func BenchmarkParkWake(b *testing.B) {
	rt := New(Config{})
	req, resp := NewVar(0), NewVar(0)
	stop := make(chan struct{})
	var echoErr atomic.Value
	go func() {
		last := 0
		for {
			var cur int
			err := rt.RunOpt(nil, 1, 1, func(tx *Tx) error {
				cur = Read(tx, req)
				if cur == last || cur < 0 {
					if cur < 0 {
						return nil // poison: exit
					}
					tx.Retry()
				}
				return nil
			}, RunOpts{Block: true})
			if err != nil {
				echoErr.Store(err)
				close(stop)
				return
			}
			if cur < 0 {
				close(stop)
				return
			}
			last = cur
			if err := rt.Atomic(1, 1, func(tx *Tx) error {
				Write(tx, resp, cur)
				return nil
			}); err != nil {
				echoErr.Store(err)
				close(stop)
				return
			}
		}
	}()

	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		if err := rt.Atomic(0, 0, func(tx *Tx) error {
			Write(tx, req, i)
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if err := rt.RunOpt(nil, 0, 0, func(tx *Tx) error {
			if Read(tx, resp) != i {
				tx.Retry()
			}
			return nil
		}, RunOpts{Block: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_ = rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, req, -1)
		return nil
	})
	<-stop
	if err := echoErr.Load(); err != nil {
		b.Fatal(err)
	}
}
