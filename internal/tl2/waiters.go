package tl2

import (
	"context"
	"sync/atomic"

	"gstm/internal/retry"
)

// Composable blocking (tx.Retry / Select / Compose).
//
// A transaction that finds the state unusable — an empty queue, a key that
// is not there yet — calls tx.Retry(): the attempt aborts, and instead of
// spinning through retries the goroutine parks until some commit changes a
// location the attempt read. The design follows the classic STM `retry`
// (SNIPPETS.md §2–3 shows the anacrolix/stm surface) with one deliberate
// departure: wakeup tracking is a per-base waiter list riding the existing
// lock-word publish path, not a global broadcast. A commit already walks
// its write set holding the stripe/lock words; waking the waiters of
// exactly the bases it wrote costs one atomic nil-check per written
// location on the non-blocking fast path (CI-gated zero-alloc) and scales
// with real conflicts, not with the number of parked connections — the
// shared-metadata-contention trap the Pasqualin survey warns about and the
// ROADMAP's "millions of connections" target forbids.
//
// Lost-wakeup safety is the register → validate → sleep protocol:
//
//  1. the parker pushes a node onto the waiter stack of every base it read;
//  2. it then re-loads each base's versioned lock word: a version above the
//     attempt's read version rv (or a held lock) means something already
//     changed, so it retries immediately instead of sleeping;
//  3. only then does it sleep on its wakeup channel.
//
// A committing writer stores the new versions (releaseLocks) strictly
// before detaching and signalling the waiter stacks. Go's atomics are
// sequentially consistent, so a parker whose push lands after the writer's
// detach must observe the already-published version in step 2 and skips the
// sleep; a push that lands before the detach is in the detached list and
// gets signalled. Either way the wakeup cannot fall between the cracks.
//
// Nodes are allocated per park (the parking path is the slow path; the
// zero-alloc budget protects only non-blocking transactions) and are
// reclaimed when their base is next written. A node the waiter abandons —
// it woke via another base, or its park context ended — stays linked until
// then; signalling it later is a spurious wakeup, which the validate step
// of the next park absorbs. All races therefore degrade to spurious
// wakeups, never lost ones.

// waiterNode is one parked transaction's registration on one base: a link
// in the base's Treiber-stack waiter list.
type waiterNode struct {
	w    *parkWaiter
	next *waiterNode
}

// parkWaiter is the per-Tx wakeup record shared by all of a park's nodes.
// It is embedded in the pooled Tx and reused across parks: fired gates the
// single channel send per park cycle, and stale signals from nodes of an
// earlier park at worst deliver a spurious wakeup.
type parkWaiter struct {
	ch    chan struct{}
	fired atomic.Bool
}

// prepare readies the waiter for a new park cycle: any stale token from an
// abandoned earlier park is drained before the fired gate reopens.
func (w *parkWaiter) prepare() {
	if w.ch == nil {
		w.ch = make(chan struct{}, 1)
	}
	select {
	case <-w.ch:
	default:
	}
	w.fired.Store(false)
}

// wake delivers at most one wakeup per park cycle. Safe to call from any
// number of committers concurrently, including stale ones.
func (w *parkWaiter) wake() {
	if w.fired.CompareAndSwap(false, true) {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// registerWaiter pushes n onto b's waiter stack.
func (b *base) registerWaiter(n *waiterNode) {
	for {
		h := b.wtrs.Load()
		n.next = h
		if b.wtrs.CompareAndSwap(h, n) {
			return
		}
	}
}

// wakeWaiters detaches b's whole waiter stack and signals every waiter on
// it. Called by the commit protocol after the new version is published, and
// only when the stack head was observed non-nil.
func (b *base) wakeWaiters() {
	for n := b.wtrs.Swap(nil); n != nil; n = n.next {
		n.w.wake()
	}
}

// retrySignal is panicked by Tx.Retry and recovered by runBody (ending the
// attempt) or by Select (moving to the next alternative).
type retrySignal struct{}

// Retry aborts the current attempt and declares it blocked: the state the
// body observed is not usable yet. Under WithBlocking the goroutine parks
// on every location the attempt read and re-runs when a commit changes one
// of them; without blocking the Run call returns ErrWouldBlock. Writes
// buffered before Retry are discarded with the attempt.
func (tx *Tx) Retry() {
	panic(retrySignal{})
}

// parkOnReads implements steps 1–3 above for the current attempt's read
// set. It returns parked=true when the goroutine actually slept and was
// woken by a commit; parked=false when validation found a change already
// published (retry immediately). A non-nil error is terminal for the Run
// call: retry.ErrWouldBlock for an empty read set (nothing could ever wake
// us), or the park context's error.
func (tx *Tx) parkOnReads(ctx context.Context) (parked bool, err error) {
	if len(tx.reads) == 0 {
		return false, retry.ErrWouldBlock
	}
	w := &tx.parkW
	w.prepare()
	for _, b := range tx.reads {
		b.registerWaiter(&waiterNode{w: w})
	}
	for _, b := range tx.reads {
		wd := tx.rt.lockFor(b).word.Load()
		// A held lock is a commit in flight on this base (or, striped, an
		// alias of one); skip the sleep rather than reason about whether its
		// publish will cover our registration.
		if wordLocked(wd) || wordVersion(wd) > tx.rv {
			return false, nil
		}
	}
	tx.rt.tel.TxParked(uint64(tx.self.Thread))
	if ctx == nil {
		<-w.ch
		return true, nil
	}
	select {
	case <-w.ch:
		return true, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// Select returns a transaction function that races alternatives: each fn is
// tried in order and the first one that does not call Retry decides the
// transaction (its error return included). When every alternative retries,
// the combined function itself retries — the transaction then parks on the
// union of everything the alternatives read, so a commit enabling any one
// of them wakes it.
//
// Like the classic STM orElse, a retrying alternative's *reads* stay on the
// attempt's read set, and — matching the anacrolix/stm exemplar — its
// buffered writes are not rolled back either: alternatives should check
// their guard (and Retry) before writing.
func Select(fns ...func(*Tx) error) func(*Tx) error {
	return func(tx *Tx) error {
		for _, fn := range fns {
			if err, retried := catchRetry(fn, tx); !retried {
				return err
			}
		}
		tx.Retry()
		panic("unreachable")
	}
}

// Compose returns a transaction function that chains fns into one atomic
// unit: each runs in order, a non-nil error stops the chain, and a Retry in
// any of them blocks (or ErrWouldBlock's) the whole composition.
func Compose(fns ...func(*Tx) error) func(*Tx) error {
	return func(tx *Tx) error {
		for _, fn := range fns {
			if err := fn(tx); err != nil {
				return err
			}
		}
		return nil
	}
}

// catchRetry runs fn, converting a Retry into a flag while letting every
// other panic — including conflictSignal, which must reach the engine —
// propagate.
func catchRetry(fn func(*Tx) error, tx *Tx) (err error, retried bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(retrySignal); ok {
				retried = true
				return
			}
			panic(r)
		}
	}()
	return fn(tx), false
}
