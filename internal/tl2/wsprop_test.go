package tl2

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestWriteSetMatchesMapOracle is the engine-level equivalence property for
// the small-vector write set: a single-threaded transaction driving random
// Read/Write sequences must observe exactly the semantics of the old
// map[*base]any buffer — last write wins, reads-after-writes see the buffer,
// unwritten locations see their committed values, and commit publishes the
// final buffered value of every written location and nothing else.
func TestWriteSetMatchesMapOracle(t *testing.T) {
	type op struct {
		Kind uint8
		Idx  uint8
		Val  int16
	}
	const n = 24 // enough locations to cross the inline→spill boundary
	run := func(ops []op) bool {
		rt := New(Config{})
		arr := NewArray[int](n)
		for i := 0; i < n; i++ {
			arr.Reset(i, i*100)
		}
		model := make(map[int]int) // the map-oracle: pending writes by index
		if err := rt.Atomic(0, 0, func(tx *Tx) error {
			for _, o := range ops {
				i := int(o.Idx) % n
				switch o.Kind % 3 {
				case 0: // read through both entry points
					var got int
					if o.Val%2 == 0 {
						got = ReadAt(tx, arr, i)
					} else {
						got = Read(tx, arr.At(i))
					}
					want, buffered := model[i]
					if !buffered {
						want = i * 100
					}
					if got != want {
						t.Errorf("read[%d] = %d, oracle %d (buffered=%v)", i, got, want, buffered)
					}
				default: // write (biased 2:1, matching write-heavy paths)
					if o.Val%2 == 0 {
						WriteAt(tx, arr, i, int(o.Val))
					} else {
						Write(tx, arr.At(i), int(o.Val))
					}
					model[i] = int(o.Val)
				}
			}
			return nil
		}); err != nil {
			t.Errorf("atomic failed: %v", err)
			return false
		}
		for i := 0; i < n; i++ {
			want, written := model[i]
			if !written {
				want = i * 100
			}
			if got := arr.Peek(i); got != want {
				t.Errorf("post-commit arr[%d] = %d, oracle %d (written=%v)", i, got, want, written)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(0x5eed)),
		Values:   nil,
	}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestStripedWriteSetMatchesMapOracle re-runs the map-oracle equivalence
// property on a two-stripe runtime, the maximal-aliasing configuration:
// 24 distinct locations share 2 lock words, so nearly every multi-location
// commit dedups stripes. Aliasing must be invisible to single-transaction
// semantics — last write wins, read-after-write sees the buffer — and must
// leave the stripe table fully unlocked and the collision counter hot.
func TestStripedWriteSetMatchesMapOracle(t *testing.T) {
	type op struct {
		Kind uint8
		Idx  uint8
		Val  int16
	}
	const n = 24
	rt := New(Config{LockStripes: 2})
	rt.Telemetry().Reset()
	run := func(ops []op) bool {
		arr := NewArray[int](n)
		for i := 0; i < n; i++ {
			arr.Reset(i, i*100)
		}
		model := make(map[int]int)
		if err := rt.Atomic(0, 0, func(tx *Tx) error {
			for _, o := range ops {
				i := int(o.Idx) % n
				switch o.Kind % 3 {
				case 0:
					got := ReadAt(tx, arr, i)
					want, buffered := model[i]
					if !buffered {
						want = i * 100
					}
					if got != want {
						t.Errorf("read[%d] = %d, oracle %d (buffered=%v)", i, got, want, buffered)
					}
				default:
					WriteAt(tx, arr, i, int(o.Val))
					model[i] = int(o.Val)
				}
			}
			return nil
		}); err != nil {
			t.Errorf("atomic failed: %v", err)
			return false
		}
		for i := 0; i < n; i++ {
			want, written := model[i]
			if !written {
				want = i * 100
			}
			if got := arr.Peek(i); got != want {
				t.Errorf("post-commit arr[%d] = %d, oracle %d (written=%v)", i, got, want, written)
				return false
			}
		}
		if locked, _ := rt.LockedStripes(); locked != 0 {
			t.Errorf("%d stripes left locked after commit", locked)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(0x5eed))}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
	if rt.Telemetry().StripeCollisions.Load() == 0 {
		t.Fatal("two-stripe runtime committed 24-location write sets without counting a single stripe collision")
	}
}

// TestStripedEagerAbortRestoresStripes locks aliased locations at
// encounter time, aborts on a user error, and requires every stripe
// restored to its pre-lock word: values untouched, table quiescent, and
// the runtime still able to commit.
func TestStripedEagerAbortRestoresStripes(t *testing.T) {
	rt := New(Config{LockStripes: 2, EagerWriteLock: true})
	const n = 16
	arr := NewArray[int](n)
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		for i := 0; i < n; i++ {
			WriteAt(tx, arr, i, i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("abort with eager stripe locks held")
	err := rt.Atomic(0, 0, func(tx *Tx) error {
		for i := 0; i < n; i++ {
			WriteAt(tx, arr, i, 1000+i)
			// Read-after-write through the stripe: must come from the
			// buffer even though our own stripe lock is held.
			if got := ReadAt(tx, arr, i); got != 1000+i {
				t.Errorf("read-own-striped-lock[%d] = %d, want %d", i, got, 1000+i)
			}
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if locked, total := rt.LockedStripes(); locked != 0 {
		t.Fatalf("%d/%d stripes left locked by eager abort", locked, total)
	}
	for i := 0; i < n; i++ {
		if got := arr.Peek(i); got != i {
			t.Fatalf("arr[%d] = %d leaked from aborted eager tx", i, got)
		}
	}
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		WriteAt(tx, arr, 0, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := arr.Peek(0); got != 42 {
		t.Fatalf("follow-up commit wrote %d", got)
	}
}

// TestStripedConcurrentAliasedTransfers hammers a two-stripe runtime with
// concurrent transfers between aliased accounts, in both lazy and eager
// write modes. False conflicts from aliasing may abort attempts but must
// never break atomicity: the account sum is invariant, and the table is
// quiescent afterwards. Run under -race this is also the memory-model
// check on the shared stripe words.
func TestStripedConcurrentAliasedTransfers(t *testing.T) {
	for _, eager := range []bool{false, true} {
		name := "lazy"
		if eager {
			name = "eager"
		}
		t.Run(name, func(t *testing.T) {
			rt := New(Config{LockStripes: 2, EagerWriteLock: eager, Interleave: 3})
			const accounts, workers, transfers, initial = 32, 4, 300, 1000
			arr := NewArray[int](accounts)
			for i := 0; i < accounts; i++ {
				arr.Reset(i, initial)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w + 1)))
					for k := 0; k < transfers; k++ {
						from, to := rng.Intn(accounts), rng.Intn(accounts)
						if from == to {
							to = (to + 1) % accounts
						}
						if err := rt.Atomic(0, 0, func(tx *Tx) error {
							a := ReadAt(tx, arr, from)
							b := ReadAt(tx, arr, to)
							WriteAt(tx, arr, from, a-1)
							WriteAt(tx, arr, to, b+1)
							return nil
						}); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			sum := 0
			for i := 0; i < accounts; i++ {
				sum += arr.Peek(i)
			}
			if sum != accounts*initial {
				t.Fatalf("sum = %d, want %d: aliased transfer broke atomicity", sum, accounts*initial)
			}
			if locked, total := rt.LockedStripes(); locked != 0 {
				t.Fatalf("%d/%d stripes locked at quiescence", locked, total)
			}
		})
	}
}
