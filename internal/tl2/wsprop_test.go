package tl2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWriteSetMatchesMapOracle is the engine-level equivalence property for
// the small-vector write set: a single-threaded transaction driving random
// Read/Write sequences must observe exactly the semantics of the old
// map[*base]any buffer — last write wins, reads-after-writes see the buffer,
// unwritten locations see their committed values, and commit publishes the
// final buffered value of every written location and nothing else.
func TestWriteSetMatchesMapOracle(t *testing.T) {
	type op struct {
		Kind uint8
		Idx  uint8
		Val  int16
	}
	const n = 24 // enough locations to cross the inline→spill boundary
	run := func(ops []op) bool {
		rt := New(Config{})
		arr := NewArray[int](n)
		for i := 0; i < n; i++ {
			arr.Reset(i, i*100)
		}
		model := make(map[int]int) // the map-oracle: pending writes by index
		if err := rt.Atomic(0, 0, func(tx *Tx) error {
			for _, o := range ops {
				i := int(o.Idx) % n
				switch o.Kind % 3 {
				case 0: // read through both entry points
					var got int
					if o.Val%2 == 0 {
						got = ReadAt(tx, arr, i)
					} else {
						got = Read(tx, arr.At(i))
					}
					want, buffered := model[i]
					if !buffered {
						want = i * 100
					}
					if got != want {
						t.Errorf("read[%d] = %d, oracle %d (buffered=%v)", i, got, want, buffered)
					}
				default: // write (biased 2:1, matching write-heavy paths)
					if o.Val%2 == 0 {
						WriteAt(tx, arr, i, int(o.Val))
					} else {
						Write(tx, arr.At(i), int(o.Val))
					}
					model[i] = int(o.Val)
				}
			}
			return nil
		}); err != nil {
			t.Errorf("atomic failed: %v", err)
			return false
		}
		for i := 0; i < n; i++ {
			want, written := model[i]
			if !written {
				want = i * 100
			}
			if got := arr.Peek(i); got != want {
				t.Errorf("post-commit arr[%d] = %d, oracle %d (written=%v)", i, got, want, written)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(0x5eed)),
		Values:   nil,
	}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}
