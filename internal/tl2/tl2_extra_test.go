package tl2

import (
	"runtime"
	"sync"
	"testing"

	"gstm/internal/txid"
)

// TestStructAndSliceValues exercises Vars of composite types: values are
// published as immutable snapshots, so copies written back must not alias
// the originals.
func TestStructAndSliceValues(t *testing.T) {
	type rec struct {
		Name  string
		Items []int
	}
	rt := New(Config{})
	v := NewVar(rec{Name: "a", Items: []int{1, 2}})
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		r := Read(tx, v)
		items := make([]int, len(r.Items), len(r.Items)+1)
		copy(items, r.Items)
		items = append(items, 3)
		Write(tx, v, rec{Name: r.Name + "b", Items: items})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	got := v.Peek()
	if got.Name != "ab" || len(got.Items) != 3 || got.Items[2] != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestPointerVars(t *testing.T) {
	type node struct{ v int }
	rt := New(Config{})
	v := NewVar[*node](nil)
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		if Read(tx, v) != nil {
			t.Error("initial pointer not nil")
		}
		Write(tx, v, &node{v: 5})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got == nil || got.v != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestLargeWriteSet(t *testing.T) {
	rt := New(Config{})
	const n = 500
	arr := NewArray[int](n)
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		for i := 0; i < n; i++ {
			WriteAt(tx, arr, i, i*i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if arr.Peek(i) != i*i {
			t.Fatalf("arr[%d] = %d", i, arr.Peek(i))
		}
	}
}

func TestWriteThenWriteKeepsLast(t *testing.T) {
	rt := New(Config{})
	v := NewVar(0)
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 1)
		Write(tx, v, 2)
		Write(tx, v, 3)
		if got := Read(tx, v); got != 3 {
			t.Errorf("buffered read = %d", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Peek() != 3 {
		t.Fatalf("Peek = %d", v.Peek())
	}
}

func TestSinkRemovableMidRun(t *testing.T) {
	rt := New(Config{Interleave: 4})
	sink := &recordingSink{}
	rt.SetSink(sink)
	v := NewVar(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = rt.Atomic(0, 0, func(tx *Tx) error {
				Write(tx, v, Read(tx, v)+1)
				return nil
			})
		}
	}()
	for i := 0; i < 50; i++ {
		rt.SetSink(sink)
		rt.SetSink(nil)
		runtime.Gosched()
	}
	// Let the worker make progress before stopping (single-core runs may
	// not have scheduled it yet).
	for v.Peek() == 0 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if v.Peek() == 0 {
		t.Fatal("no work done")
	}
}

func TestTxSelfAndAttempt(t *testing.T) {
	rt := New(Config{})
	want := txid.Pair{Txn: 3, Thread: 5}
	if err := rt.Atomic(5, 3, func(tx *Tx) error {
		if tx.Self() != want {
			t.Errorf("Self = %v", tx.Self())
		}
		if tx.Attempt() != 0 {
			t.Errorf("Attempt = %d", tx.Attempt())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAttemptIncrementsOnRetry(t *testing.T) {
	rt := New(Config{})
	v := NewVar(0)
	release := make(chan struct{})
	started := make(chan struct{})
	attempts := []int{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		first := true
		_ = rt.Atomic(0, 0, func(tx *Tx) error {
			attempts = append(attempts, tx.Attempt())
			x := Read(tx, v)
			if first {
				first = false
				close(started)
				<-release
			}
			Write(tx, v, x+1)
			return nil
		})
	}()
	<-started
	_ = rt.Atomic(1, 1, func(tx *Tx) error {
		Write(tx, v, 100)
		return nil
	})
	close(release)
	<-done
	if len(attempts) < 2 || attempts[0] != 0 || attempts[1] != 1 {
		t.Fatalf("attempts = %v", attempts)
	}
}

func TestVarResetClearsVersion(t *testing.T) {
	rt := New(Config{})
	v := NewVar(1)
	// Commit a write so the version advances.
	_ = rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 2)
		return nil
	})
	v.Reset(9)
	// A fresh transaction must read the reset value without conflicting.
	var got int
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		got = Read(tx, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("got %d", got)
	}
}

func TestCrossRuntimeSharing(t *testing.T) {
	// The global version clock means Vars populated under one Runtime are
	// readable under another (the setup-phase pattern of the STAMP ports).
	setup := New(Config{})
	v := NewVar(0)
	if err := setup.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 41)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	other := New(Config{})
	if err := other.Atomic(1, 1, func(tx *Tx) error {
		Write(tx, v, Read(tx, v)+1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := v.Peek(); got != 42 {
		t.Fatalf("cross-runtime value = %d, want 42", got)
	}
}

func TestManyVarsManyThreadsStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rt := New(Config{Interleave: 3})
	const nv, workers, ops = 4, 10, 300
	vars := make([]*Var[int64], nv)
	for i := range vars {
		vars[i] = NewVar[int64](0)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				_ = rt.Atomic(id, txid.TxnID(i%3), func(tx *Tx) error {
					// Move a unit around a ring of vars: total stays 0.
					a := vars[i%nv]
					b := vars[(i+1)%nv]
					Write(tx, a, Read(tx, a)-1)
					Write(tx, b, Read(tx, b)+1)
					return nil
				})
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	var total int64
	for _, v := range vars {
		total += v.Peek()
	}
	if total != 0 {
		t.Fatalf("ring total = %d, want 0", total)
	}
}

func TestAtomicROReadsConsistently(t *testing.T) {
	rt := New(Config{Interleave: 2})
	a, b := NewVar(0), NewVar(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = rt.Atomic(0, 0, func(tx *Tx) error {
				Write(tx, a, i)
				Write(tx, b, i)
				return nil
			})
		}
	}()
	torn := 0
	go func() {
		defer wg.Done()
		defer close(stop)
		for j := 0; j < 2000; j++ {
			_ = rt.AtomicRO(1, 1, func(tx *Tx) error {
				if Read(tx, a) != Read(tx, b) {
					torn++
				}
				return nil
			})
		}
	}()
	wg.Wait()
	if torn != 0 {
		t.Fatalf("read-only fast path observed %d torn states", torn)
	}
}

func TestAtomicRORejectsWrites(t *testing.T) {
	rt := New(Config{})
	v := NewVar(5)
	err := rt.AtomicRO(0, 0, func(tx *Tx) error {
		Write(tx, v, 6)
		return nil
	})
	if err == nil {
		t.Fatal("Write inside AtomicRO succeeded")
	}
	if v.Peek() != 5 {
		t.Fatal("write leaked")
	}
	// The runtime stays usable afterwards.
	if err := rt.Atomic(0, 0, func(tx *Tx) error {
		Write(tx, v, 7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Peek() != 7 {
		t.Fatal("follow-up write failed")
	}
}

func TestAtomicROStillCommitsAndCounts(t *testing.T) {
	rt := New(Config{})
	// Tracing installed: read-only commits must still draw a sequence
	// number (tick elision is reserved for the untraced fast path).
	sink := &recordingSink{}
	rt.SetSink(sink)
	v := NewVar(1)
	before, _ := rt.Stats()
	clock := rt.Clock()
	if err := rt.AtomicRO(0, 0, func(tx *Tx) error {
		_ = Read(tx, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	after, _ := rt.Stats()
	if after != before+1 {
		t.Fatalf("commits %d → %d", before, after)
	}
	if rt.Clock() != clock+1 {
		t.Fatal("traced read-only commit must still be sequenced")
	}
}
