package tl2

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gstm/internal/commitreg"
	"gstm/internal/obs"
	"gstm/internal/retry"
	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// Config parameterizes a Runtime. The zero value is usable; Normalize fills
// in defaults.
type Config struct {
	// Interleave, when positive, makes each transactional operation yield
	// the processor with probability 1/Interleave. It substitutes for true
	// multi-core interleaving on the single-core test machine (DESIGN.md).
	Interleave int

	// MaxReadSpin bounds how many times a read spins on a locked location
	// before declaring a conflict.
	MaxReadSpin int

	// MaxLockSpin bounds how many times commit-time lock acquisition spins
	// per location before aborting, TL2's deadlock-avoidance rule.
	MaxLockSpin int

	// RegistryCapacity sizes the wv→committer attribution ring.
	RegistryCapacity int

	// EagerWriteLock switches conflict detection on writes from lazy
	// (commit-time, the TL2 default the paper evaluates) to eager
	// (encounter-time): the versioned lock is taken at the first Write, so
	// write-write conflicts and writer/reader conflicts surface
	// immediately. Section II argues results on lazy detection imply the
	// eager case; this knob lets the ablation benches check that claim.
	EagerWriteLock bool

	// Label names this runtime's telemetry registration (default "tl2").
	// Sharded deployments label each shard's runtime distinctly so Gather
	// can report per-shard series next to the aggregate.
	Label string

	// PrivateClock gives the runtime its own version clock instead of the
	// process-wide one. Transactions on a private-clock runtime must only
	// touch Vars owned by that runtime: a Var written under one clock may
	// carry a version another clock has not reached yet, which would make
	// a reader under the other clock spin or abort forever. The shard
	// router relies on this to keep unrelated transactions off a shared
	// clock cache line entirely.
	PrivateClock bool

	// LockStripes, when positive, replaces per-location versioned lock
	// words with a striped lock table of that many cache-line-padded
	// stripes (rounded up to a power of two): location addresses hash to
	// stripes, so Array elements share lock words instead of carrying one
	// each. Aliased locations conflict falsely but never unsafely (see
	// stripe.go). Like PrivateClock, a striped runtime's Vars must be used
	// exclusively under that runtime. Zero keeps the per-location default.
	LockStripes int
}

// Normalize returns cfg with defaults applied to zero fields.
func (cfg Config) Normalize() Config {
	if cfg.MaxReadSpin <= 0 {
		cfg.MaxReadSpin = 64
	}
	if cfg.MaxLockSpin <= 0 {
		cfg.MaxLockSpin = 64
	}
	if cfg.RegistryCapacity <= 0 {
		cfg.RegistryCapacity = 1 << 16
	}
	if cfg.LockStripes < 0 {
		cfg.LockStripes = 0
	}
	if cfg.LockStripes > 0 {
		// Round up to a power of two so stripe selection is a mask.
		n := 1
		for n < cfg.LockStripes {
			n <<= 1
		}
		cfg.LockStripes = n
	}
	return cfg
}

// EventSink receives the instrumentation stream the paper adds to TL2
// (TX_commit / TX_abort): every commit with its global sequence number wv,
// and every abort with the commit that caused it when attribution
// succeeded. Implementations must be safe for concurrent use.
type EventSink interface {
	// TxCommit reports that p committed with write version wv after
	// aborting `aborts` times (its failed attempts). wv values are unique
	// and drawn from a single global clock, so sorting commits by wv
	// reconstructs the global commit order.
	TxCommit(p txid.Pair, wv uint64, aborts int)

	// TxAbort reports that p aborted an attempt. byWV identifies the
	// invalidating commit; byKnown is false when attribution failed, in
	// which case by holds the runtime's best-effort guess (the most recent
	// commit) and byWV is that commit's wv.
	TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool)
}

// Gate is consulted at every transaction start (the paper's modified
// TM_BEGIN). Arrive may delay the calling goroutine to steer execution, and
// must eventually return to guarantee progress. The returned outcome feeds
// the span tracer: GatePass for an undelayed arrival, GateHold when the
// caller was delayed, GateEscape when a bounded wait gave up (surfaced as a
// gate-timeout cause on the span's gate event).
type Gate interface {
	Arrive(p txid.Pair) telemetry.GateOutcome
}

// FaultInjector is the engine's chaos-testing hook (internal/faultinject
// implements it). Decisions must be deterministic functions of their
// arguments plus the injector's seed so fault schedules replay identically
// regardless of goroutine interleaving. A nil injector (the default)
// disables all fault points.
type FaultInjector interface {
	// SpuriousAbort, consulted after the body ran cleanly and before the
	// commit protocol, forces the attempt to abort and retry as if a
	// conflict had been detected.
	SpuriousAbort(p txid.Pair, attempt int) bool

	// CommitDelay returns extra scheduler yields to insert while the
	// commit holds the write-set locks, widening the mid-commit window
	// other transactions observe as locked words.
	CommitDelay(p txid.Pair, attempt int) int
}

// Runtime is a TL2 STM instance: configuration and instrumentation hooks
// shared by all transactions it executes. By default all Runtimes in the
// process share the single global version clock (as in the original TL2
// library), so Vars may be created and populated under one Runtime and used
// under another; Config.PrivateClock opts a runtime out of the shared clock
// at the cost of that portability.
type Runtime struct {
	cfg   Config
	reg   *commitreg.Registry
	clock *clock
	sink  atomic.Pointer[sinkBox]
	gate  atomic.Pointer[gateBox]
	fault atomic.Pointer[faultBox]
	pool  sync.Pool

	// stripes is the striped lock table (Config.LockStripes), or nil in
	// the default per-location mode. Immutable after New.
	stripes *stripeTable

	// tel holds all runtime counters and latency histograms (sharded by
	// worker thread), registered in the process-wide telemetry registry.
	tel *telemetry.Metrics
}

type sinkBox struct{ s EventSink }
type gateBox struct{ g Gate }
type faultBox struct{ f FaultInjector }

// New returns a Runtime with cfg (zero fields defaulted).
func New(cfg Config) *Runtime {
	label := cfg.Label
	if label == "" {
		label = "tl2"
	}
	rt := &Runtime{cfg: cfg.Normalize(), tel: telemetry.New(label), clock: &globalClock}
	if cfg.PrivateClock {
		rt.clock = new(clock)
	}
	if rt.cfg.LockStripes > 0 {
		rt.stripes = newStripeTable(rt.cfg.LockStripes)
	}
	rt.reg = commitreg.New(rt.cfg.RegistryCapacity)
	rt.pool.New = func() any { return &Tx{} }
	return rt
}

// Telemetry returns this runtime's metrics: sharded lifecycle counters,
// sampled latency histograms, and the diagnostic event ring.
func (rt *Runtime) Telemetry() *telemetry.Metrics { return rt.tel }

// SetSink installs (or, with nil, removes) the instrumentation sink.
// Safe to call while transactions run; events race benignly around the
// switch point.
func (rt *Runtime) SetSink(s EventSink) {
	if s == nil {
		rt.sink.Store(nil)
		return
	}
	rt.sink.Store(&sinkBox{s: s})
}

// SetGate installs (or, with nil, removes) the transaction-start gate used
// by guided execution.
func (rt *Runtime) SetGate(g Gate) {
	if g == nil {
		rt.gate.Store(nil)
		return
	}
	rt.gate.Store(&gateBox{g: g})
}

// SetFaultInjector installs (or, with nil, removes) the chaos-testing fault
// injector. Production systems never call this; the fault points reduce to
// one atomic load when no injector is set.
func (rt *Runtime) SetFaultInjector(f FaultInjector) {
	if f == nil {
		rt.fault.Store(nil)
		return
	}
	rt.fault.Store(&faultBox{f: f})
}

// injector returns the installed fault injector, or nil.
func (rt *Runtime) injector() FaultInjector {
	if fb := rt.fault.Load(); fb != nil {
		return fb.f
	}
	return nil
}

// clk returns this runtime's version clock: the process-wide one unless
// Config.PrivateClock selected an unshared instance.
func (rt *Runtime) clk() *clock { return rt.clock }

// Clock returns the current global version clock value. With a sink
// installed every commit ticks it exactly once, so it counts commits; in
// the untraced fast path read-only commits elide the tick and GV4 clock
// sharing lets concurrent writers reuse one tick, so it only bounds the
// number of write commits from below. Exported for tests and harnesses.
func (rt *Runtime) Clock() uint64 { return rt.clk().now() }

// AdvanceClock raises the runtime's version clock to at least v (no-op
// when it is already past v). Crash recovery calls this after replaying a
// durable log so the first post-recovery commit draws a write version
// strictly above every logged one. Never lowers the clock.
func (rt *Runtime) AdvanceClock(v uint64) { rt.clk().advanceTo(v) }

// Stats returns the cumulative number of committed transactions and of
// aborted attempts.
func (rt *Runtime) Stats() (commits, aborts uint64) {
	return rt.tel.Commits.Load(), rt.tel.Aborts.Load()
}

// ResetStats zeroes the cumulative telemetry — counters, latency
// histograms, gate tallies and the event ring (the clock is never reset —
// versions must stay monotone).
func (rt *Runtime) ResetStats() {
	rt.tel.Reset()
}

// ResilienceStats returns the cumulative number of transactions abandoned
// because their per-call retry budget ran out, and abandoned because their
// context was canceled or its deadline passed. Both are whole-transaction
// outcomes; the per-attempt aborts they incurred along the way are counted
// by Stats as usual.
func (rt *Runtime) ResilienceStats() (budgetExceeded, canceled uint64) {
	return rt.tel.RetryBudgetExceeded.Load(), rt.tel.ContextCanceled.Load()
}

// RunOpts bundles the per-call execution options of RunOpt, the options
// form of Run. The zero value is a plain read-write, non-blocking,
// unbounded, untraced transaction.
type RunOpts struct {
	// ReadOnly selects TL2's read-only fast path; a Write inside the body
	// returns an error without retrying.
	ReadOnly bool

	// MaxAttempts > 0 bounds attempts without a context allocation,
	// overriding any retry.WithBudget budget carried by ctx; <= 0 defers to
	// the context budget (0 = unlimited).
	MaxAttempts int

	// Span, when non-nil, receives the variance-observatory timeline: gate
	// waits, aborted attempts with causes, commit phases, and parks.
	Span *obs.Span

	// Block enables composable blocking: a tx.Retry parks the goroutine on
	// the attempt's read set until a commit changes one of those locations,
	// then the transaction re-runs. Without Block a Retry returns
	// retry.ErrWouldBlock. Blocking forces read-set tracking even when
	// ReadOnly is set.
	Block bool

	// BlockCtx, when non-nil, bounds parks separately from the run context:
	// its cancellation or deadline ends a park (and the Run call) with
	// retry.ErrCanceled wrapping the context's error. When nil, parks are
	// bounded by the run ctx; with neither, a park waits indefinitely.
	BlockCtx context.Context
}

// Atomic executes fn transactionally as transaction site txn on worker
// thread. fn may be re-executed any number of times; it must not have side
// effects outside transactional Reads/Writes. A non-nil error from fn
// aborts the attempt, discards its writes and is returned without retry.
//
// Atomic must not be nested.
func (rt *Runtime) Atomic(thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error) error {
	return rt.run(nil, thread, txn, fn, RunOpts{})
}

// AtomicRO executes fn as a read-only transaction: TL2's fast path, which
// skips read-set bookkeeping entirely because reads are fully validated at
// access time and a read-only commit validates nothing further. A Write
// inside fn returns an error without retrying.
func (rt *Runtime) AtomicRO(thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error) error {
	return rt.run(nil, thread, txn, fn, RunOpts{ReadOnly: true})
}

// AtomicCtx is Atomic honoring ctx: cancellation or deadline expiry is
// checked between retry attempts (never mid-attempt — an attempt either
// aborts cleanly or commits) and surfaces as ctx.Err(). A per-call attempt
// budget attached with retry.WithBudget bounds retries; when the last
// budgeted attempt aborts, AtomicCtx returns retry.ErrBudgetExceeded. In
// both cases no locks remain held and no writes were published.
func (rt *Runtime) AtomicCtx(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error) error {
	return rt.run(ctx, thread, txn, fn, RunOpts{})
}

// AtomicROCtx is AtomicRO honoring ctx like AtomicCtx.
func (rt *Runtime) AtomicROCtx(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error) error {
	return rt.run(ctx, thread, txn, fn, RunOpts{ReadOnly: true})
}

// Run is the unified entrypoint behind gstm's System.Run: one code path
// for all four Atomic* shapes. ctx may be nil (never canceled, checked
// between attempts otherwise). readOnly selects the validation-free
// read-only fast path. maxAttempts > 0 bounds attempts without a context
// allocation, overriding any retry.WithBudget budget carried by ctx;
// maxAttempts <= 0 defers to the context budget (0 = unlimited).
func (rt *Runtime) Run(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error, readOnly bool, maxAttempts int) error {
	return rt.run(ctx, thread, txn, fn, RunOpts{ReadOnly: readOnly, MaxAttempts: maxAttempts})
}

// RunSpan is Run with a variance-observatory span attached: gate waits,
// per-attempt retries (with their abort causes) and the commit protocol's
// lock/validate/publish phases are recorded into span's timeline. span may
// be nil, in which case RunSpan is exactly Run.
func (rt *Runtime) RunSpan(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error, readOnly bool, maxAttempts int, span *obs.Span) error {
	return rt.run(ctx, thread, txn, fn, RunOpts{ReadOnly: readOnly, MaxAttempts: maxAttempts, Span: span})
}

// RunOpt is Run taking the full options struct — the entrypoint gstm's
// System.Run uses, and the only one exposing blocking mode.
func (rt *Runtime) RunOpt(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error, o RunOpts) error {
	return rt.run(ctx, thread, txn, fn, o)
}

func (rt *Runtime) run(ctx context.Context, thread txid.ThreadID, txn txid.TxnID, fn func(*Tx) error, o RunOpts) error {
	readOnly, maxAttempts, span := o.ReadOnly, o.MaxAttempts, o.Span
	self := txid.Pair{Txn: txn, Thread: thread}
	tx := rt.pool.Get().(*Tx)
	defer func() {
		if r := recover(); r != nil {
			// A panic escaped the user's transaction body. Release every
			// lock this attempt still holds (eager mode takes them at
			// encounter time) and scrub the read/write sets so a clean Tx
			// goes back to the pool, then let the panic continue.
			tx.releaseLocks(0)
			tx.scrub()
			rt.pool.Put(tx)
			panic(r)
		}
		rt.pool.Put(tx)
	}()

	budget := maxAttempts
	if budget <= 0 {
		budget = retry.Budget(ctx)
	}
	shard := uint64(thread)
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				rt.tel.TxCanceled(shard)
				return fmt.Errorf("%w: %w", retry.ErrCanceled, err)
			}
		}
		if gb := rt.gate.Load(); gb != nil {
			if span != nil {
				g0 := time.Now()
				outcome := gb.g.Arrive(self)
				gc := obs.CauseNone
				if outcome == telemetry.GateEscape {
					gc = obs.CauseGateTimeout
				}
				span.AddSince(obs.PhaseGate, gc, attempt+1, g0)
			} else {
				gb.g.Arrive(self)
			}
		}
		sampled := rt.tel.TxStart(shard)
		tx.reset(rt, self, attempt, readOnly, o.Block)
		tx.measure = sampled
		tx.span = span
		span.NoteAttempt()
		// The attempt's start boundary is the end of the last recorded event
		// (gate wait, queue, or the previous retry) — a field read, not a
		// clock read, so the committing fast path pays no time.Now here and
		// backoff gaps fold into the retry event that caused them.
		attStart := span.LastEndNs()

		err, conflict, retried := runBody(tx, fn)
		if retried {
			// The body called Retry: the attempt is abandoned (not an abort
			// — the state simply wasn't usable yet).
			tx.releaseLocks(0) // eager mode may hold encounter-time locks
			if !o.Block {
				return retry.ErrWouldBlock
			}
			parkCtx := o.BlockCtx
			if parkCtx == nil {
				parkCtx = ctx
			}
			parked, perr := tx.parkOnReads(parkCtx)
			if perr != nil {
				if perr == retry.ErrWouldBlock {
					// Empty read set: no commit could ever wake us.
					return perr
				}
				span.AddSinceNs(obs.PhasePark, obs.CauseCanceled, attempt+1, attStart)
				rt.tel.TxCanceled(shard)
				return fmt.Errorf("%w: %w", retry.ErrCanceled, perr)
			}
			if parked {
				span.AddSinceNs(obs.PhasePark, obs.CauseWakeup, attempt+1, attStart)
			}
			continue
		}
		if conflict != nil {
			tx.releaseLocks(0) // eager mode may hold encounter-time locks
			span.AddSinceNs(obs.PhaseRetry, conflict.cause, attempt+1, attStart)
			rt.noteAbort(self, conflict.byWV, conflict.cause)
			if rt.budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		if err != nil {
			tx.releaseLocks(0)
			return err
		}
		if fi := rt.injector(); fi != nil && fi.SpuriousAbort(self, attempt) {
			tx.releaseLocks(0)
			span.AddSinceNs(obs.PhaseRetry, obs.CauseSpurious, attempt+1, attStart)
			rt.noteAbort(self, 0, obs.CauseSpurious)
			if rt.budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		var t0 time.Time
		if sampled {
			t0 = time.Now()
		}
		// The sink is sampled once so the clock discipline the commit chose
		// (unique ticks vs GV4/tick elision) matches the delivery decision;
		// installs racing the commit are picked up by the next transaction.
		sb := rt.sink.Load()
		wv, byWV, cause, ok := tx.commit(sb != nil)
		if !ok {
			span.AddSinceNs(obs.PhaseRetry, cause, attempt+1, attStart)
			rt.noteAbort(self, byWV, cause)
			if rt.budgetSpent(shard, budget, attempt) {
				return retry.ErrBudgetExceeded
			}
			backoff(attempt)
			continue
		}
		if sampled {
			rt.tel.ObserveCommit(shard, time.Since(t0), tx.valDur, tx.validated)
		}
		rt.tel.TxCommit(shard)
		if sb != nil {
			sb.s.TxCommit(self, wv, attempt)
		}
		return nil
	}
}

// budgetSpent reports whether the aborted attempt was the last one the
// call's budget allows, counting the exhaustion when it was.
func (rt *Runtime) budgetSpent(shard uint64, budget, attempt int) bool {
	if budget > 0 && attempt+1 >= budget {
		rt.tel.TxBudgetExceeded(shard)
		return true
	}
	return false
}

// noteAbort counts an abort (under its taxonomy cause) and reports it,
// resolving the invalidating commit's identity through the registry. When
// attribution is impossible (byWV == 0 or the registry slot was recycled)
// the most recent commit is reported as a best-effort guess, flagged
// byKnown=false.
func (rt *Runtime) noteAbort(self txid.Pair, byWV uint64, cause obs.Cause) {
	rt.tel.TxAbort(uint64(self.Thread), cause)
	sb := rt.sink.Load()
	if sb == nil {
		return
	}
	if byWV != 0 {
		if by, ok := rt.reg.Lookup(byWV); ok {
			sb.s.TxAbort(self, byWV, by, true)
			return
		}
	}
	guessWV := rt.clk().now()
	by, ok := rt.reg.Lookup(guessWV)
	if !ok {
		by = txid.Pair{}
	}
	sb.s.TxAbort(self, guessWV, by, false)
}

// backoff applies bounded, contention-proportional backoff between retry
// attempts: early retries just yield, persistent losers sleep briefly so
// the winner's transaction can finish. Without it, high-contention sites
// (queue heads, heap roots) churn on the oversubscribed test machine.
func backoff(attempt int) {
	// Yield-based only: timer sleeps have ~100µs OS granularity, orders of
	// magnitude above a transaction, and their jitter would dominate the
	// very execution-time variance these experiments measure. Yield counts
	// grow with persistence so chronic losers step aside longer.
	yields := 0
	switch {
	case attempt < 2:
		// Retry immediately: most conflicts are transient.
	case attempt < 8:
		yields = 1
	case attempt < 32:
		yields = 4
	default:
		yields = 16
	}
	for i := 0; i < yields; i++ {
		spinYield()
	}
}

// runBody executes fn, converting a conflictSignal panic into a conflict
// result and a retrySignal (tx.Retry) into the retried flag, while letting
// every other panic propagate.
func runBody(tx *Tx, fn func(*Tx) error) (err error, conflict *conflictSignal, retried bool) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(*conflictSignal); ok {
				conflict = c
				return
			}
			if _, ok := r.(retrySignal); ok {
				retried = true
				return
			}
			if e, ok := r.(errWriteInReadOnly); ok {
				err = e
				return
			}
			panic(r)
		}
	}()
	return fn(tx), nil, false
}
