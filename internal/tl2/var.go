package tl2

import "sync/atomic"

// base is the non-generic core of a transactional location: its versioned
// lock word plus a type-erased store hook installed by the generic Var
// constructor. Transactions track read and write sets as *base pointers so
// the commit protocol never needs to know element types.
type base struct {
	word atomic.Uint64
	// owner is the ownership tag (Tx.tag) of the transaction currently
	// holding word's lock bit, or zero. It is stored immediately after a
	// successful lock CAS and cleared immediately before the unlocking
	// store, so read-set validation answers "is this locked word mine?"
	// with one atomic load instead of scanning the lock list — the O(1)
	// ownership check that removes the O(reads×locks) validation scan. A
	// reader that observes the lock bit with owner still 0 (the acquire
	// window) correctly treats the location as locked by someone else: the
	// window only exists on other transactions' acquisitions, never on the
	// reader's own, whose stores are ordered by program order.
	owner atomic.Uint64
	// apply publishes a buffered write (a *T boxed in an any) into the
	// location. Installed once by NewVar; never nil for a reachable base.
	apply func(boxed any)
}

// Var is a transactional memory location holding a value of type T.
// All access inside a transaction must go through Read/Write (or the
// ReadVar/WriteVar methods on Tx for interface use); the initial value is
// set at construction and may be reset outside any transaction with Reset.
//
// Values are published as immutable *T snapshots: a transactional Write
// buffers a fresh pointer, and commit swings the atomic pointer. Mutating
// the interior of a value previously read from a Var without writing a copy
// back is a logic error, exactly as in any write-back STM.
type Var[T any] struct {
	b base
	p atomic.Pointer[T]
}

// NewVar returns a transactional location initialized to val.
func NewVar[T any](val T) *Var[T] {
	v := &Var[T]{}
	v.p.Store(&val)
	v.b.apply = func(boxed any) { v.p.Store(boxed.(*T)) }
	return v
}

// Reset stores val non-transactionally. It must only be used during
// single-threaded setup or teardown phases (the paper's benchmarks
// initialize shared data before the timed transactional region).
func (v *Var[T]) Reset(val T) {
	v.p.Store(&val)
	v.b.word.Store(0)
	v.b.owner.Store(0)
}

// Peek loads the current value non-transactionally. Like Reset it is only
// safe when no transactions are running; it exists for result verification
// after a parallel phase completes.
func (v *Var[T]) Peek() T { return *v.p.Load() }

// LockState reports v's versioned lock word split into version and lock
// bit. It is a diagnostic for tests and fault-injection sweeps: at any
// quiescent point every location must report locked == false, or an abort
// path leaked a lock.
func (v *Var[T]) LockState() (version uint64, locked bool) {
	w := v.b.word.Load()
	return wordVersion(w), wordLocked(w)
}

// Array is a fixed-length sequence of transactional locations of type T,
// the analogue of a striped TL2 array: every element has its own versioned
// lock word, so disjoint-index accesses never conflict.
type Array[T any] struct {
	cells []Var[T]
}

// NewArray returns an Array of n elements, each initialized to the zero
// value of T.
func NewArray[T any](n int) *Array[T] {
	a := &Array[T]{cells: make([]Var[T], n)}
	for i := range a.cells {
		v := &a.cells[i]
		var zero T
		v.p.Store(&zero)
		v.b.apply = func(boxed any) { v.p.Store(boxed.(*T)) }
	}
	return a
}

// Len returns the number of elements.
func (a *Array[T]) Len() int { return len(a.cells) }

// At returns the i'th element as a *Var for use with Read/Write.
func (a *Array[T]) At(i int) *Var[T] { return &a.cells[i] }

// Reset stores val into element i non-transactionally (setup only).
func (a *Array[T]) Reset(i int, val T) { a.cells[i].Reset(val) }

// Peek loads element i non-transactionally (verification only).
func (a *Array[T]) Peek(i int) T { return a.cells[i].Peek() }
