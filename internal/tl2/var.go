package tl2

import (
	"sync/atomic"
	"unsafe"
)

// lockSlot is one TL2 versioned write-lock: the lock word (version<<1 |
// lockedBit) plus the ownership tag of the transaction currently holding
// the lock bit. In the default per-location mode every base embeds its own
// slot; in striped mode (Config.LockStripes) the runtime hashes base
// addresses onto a shared stripe table and the embedded slot is unused.
type lockSlot struct {
	word atomic.Uint64
	// owner is the ownership tag (Tx.tag) of the transaction currently
	// holding word's lock bit, or zero. It is stored immediately after a
	// successful lock CAS and cleared immediately before the unlocking
	// store, so read-set validation answers "is this locked word mine?"
	// with one atomic load instead of scanning the lock list — the O(1)
	// ownership check that removes the O(reads×locks) validation scan. A
	// reader that observes the lock bit with owner still 0 (the acquire
	// window) correctly treats the location as locked by someone else: the
	// window only exists on other transactions' acquisitions, never on the
	// reader's own, whose stores are ordered by program order.
	owner atomic.Uint64
}

// base is the non-generic core of a transactional location: its versioned
// lock slot plus the published value snapshot as a raw pointer.
// Transactions track read and write sets as *base pointers so the commit
// protocol never needs to know element types.
//
// slot is the unboxed replacement for the old (atomic.Pointer[T] + apply
// closure) pair: the generic Var[T] constructor stores a *T here as an
// unsafe.Pointer, reads load it and dereference through the statically
// known T, and commit publishes a buffered write by storing the redo
// pointer — one word moved, zero interface conversions, zero closures.
type base struct {
	lk   lockSlot
	slot unsafe.Pointer // the current *T snapshot, loaded/stored atomically

	// wtrs heads the Treiber stack of transactions parked on this location
	// (tx.Retry under blocking mode; see waiters.go). The commit publish
	// path checks it with one atomic load per written location and wakes the
	// whole stack when it installs a new version — per-base wakeups instead
	// of a global broadcast. nil whenever nothing is parked here, which is
	// the permanent state of every location non-blocking workloads touch.
	wtrs atomic.Pointer[waiterNode]
}

// loadPtr atomically loads the published value snapshot.
func (b *base) loadPtr() unsafe.Pointer { return atomic.LoadPointer(&b.slot) }

// storePtr atomically publishes p as the new value snapshot.
func (b *base) storePtr(p unsafe.Pointer) { atomic.StorePointer(&b.slot, p) }

// Var is a transactional memory location holding a value of type T.
// All access inside a transaction must go through Read/Write; the initial
// value is set at construction and may be reset outside any transaction
// with Reset.
//
// Values are published as immutable *T snapshots: a transactional Write
// buffers a fresh pointer, and commit swings the slot pointer. Mutating
// the interior of a value previously read from a Var without writing a copy
// back is a logic error, exactly as in any write-back STM.
type Var[T any] struct {
	b base
}

// NewVar returns a transactional location initialized to val.
func NewVar[T any](val T) *Var[T] {
	v := &Var[T]{}
	v.b.storePtr(unsafe.Pointer(&val))
	return v
}

// Reset stores val non-transactionally. It must only be used during
// single-threaded setup or teardown phases (the paper's benchmarks
// initialize shared data before the timed transactional region). On a
// striped runtime Reset does not touch the shared stripe table — stripe
// versions stay monotone across resets, which is exactly what readers
// validating `version > rv` require.
func (v *Var[T]) Reset(val T) {
	v.b.storePtr(unsafe.Pointer(&val))
	v.b.lk.word.Store(0)
	v.b.lk.owner.Store(0)
}

// Peek loads the current value non-transactionally. Like Reset it is only
// safe when no transactions are running; it exists for result verification
// after a parallel phase completes.
func (v *Var[T]) Peek() T { return *(*T)(v.b.loadPtr()) }

// LockState reports v's embedded versioned lock word split into version
// and lock bit. It is a diagnostic for tests and fault-injection sweeps: at
// any quiescent point every location must report locked == false, or an
// abort path leaked a lock. On a striped runtime the embedded word is
// unused (always 0/false); use Runtime.LockedStripes for the equivalent
// quiescence check there.
func (v *Var[T]) LockState() (version uint64, locked bool) {
	w := v.b.lk.word.Load()
	return wordVersion(w), wordLocked(w)
}

// Array is a fixed-length sequence of transactional locations of type T,
// the analogue of a striped TL2 array: in per-location mode every element
// has its own versioned lock word, so disjoint-index accesses never
// conflict; under Config.LockStripes elements share the runtime's stripe
// table, trading occasional false conflicts for a lock-metadata footprint
// independent of array length.
type Array[T any] struct {
	cells []Var[T]
}

// NewArray returns an Array of n elements, each initialized to the zero
// value of T. Construction allocates the cell slice and one shared zero
// box — published snapshots are immutable (Write buffers a fresh box and
// commit swings the pointer), so every element can alias the same initial
// *T. The old per-element apply closure (n func(any) allocations) is gone
// with the boxed protocol.
func NewArray[T any](n int) *Array[T] {
	a := &Array[T]{cells: make([]Var[T], n)}
	var zero T
	zp := unsafe.Pointer(&zero)
	for i := range a.cells {
		a.cells[i].b.storePtr(zp)
	}
	return a
}

// Len returns the number of elements.
func (a *Array[T]) Len() int { return len(a.cells) }

// At returns the i'th element as a *Var for use with Read/Write.
func (a *Array[T]) At(i int) *Var[T] { return &a.cells[i] }

// Reset stores val into element i non-transactionally (setup only).
func (a *Array[T]) Reset(i int, val T) { a.cells[i].Reset(val) }

// Peek loads element i non-transactionally (verification only).
func (a *Array[T]) Peek(i int) T { return a.cells[i].Peek() }
