// Package tl2 implements the Transactional Locking II software transactional
// memory of Dice, Shalev and Shavit (DISC'06), the STM the paper builds its
// guided execution on.
//
// The implementation follows the published algorithm:
//
//   - a global version clock, sampled into rv at transaction start;
//   - per-location versioned lock words (version in the high bits, a lock
//     bit in the low bit), checked on every transactional read;
//   - lazy (commit-time) conflict detection: writes are buffered in a
//     write-back redo log and only published after all written locations
//     have been locked, a new write version wv has been drawn from the
//     clock, and the read set has been validated against rv;
//   - bounded spinning on locked words with scheduler yields, then abort.
//
// Two departures from the C original are deliberate and documented in
// DESIGN.md: locations are object-granularity Vars holding an
// atomic.Pointer (Go's memory model forbids the C version's racy word
// loads), and the runtime exposes commit/abort event hooks plus a start
// gate so the tracing and guided-execution layers (internal/trace,
// internal/guide) can observe and steer execution — the paper's
// instrumented TX_start/TX_abort/TX_commit.
package tl2

import (
	"runtime"
	"sync/atomic"
)

// clock is the global version clock. It starts at zero and is incremented
// once per commit; the post-increment value is the commit's unique write
// version wv.
type clock struct {
	_ [7]uint64 // pad to keep the hot word on its own cache line
	v atomic.Uint64
	_ [7]uint64
}

// globalClock is the process-wide version clock, exactly as in the original
// TL2 library (a single global counter shared by every transaction in the
// process). Sharing it across Runtime instances means a Var written under
// one Runtime is always readable under another: location versions can never
// exceed the clock any transaction samples rv from.
var globalClock clock

// now returns the current clock value (the rv sample at transaction start).
func (c *clock) now() uint64 { return c.v.Load() }

// tick advances the clock and returns the new value, the write version wv
// of the committing transaction. Every tick result is unique, which the
// tracing layer relies on to totally order the transaction sequence — so
// this is the clock used whenever an event sink is installed.
func (c *clock) tick() uint64 { return c.v.Add(1) }

// advanceTo raises the clock to at least v (CAS-max; a no-op when the
// clock already passed v). Recovery uses it to move a rebooted shard's
// clock past the last durable commit's wv, so versions published by
// replay and by post-recovery traffic stay monotone with the log.
func (c *clock) advanceTo(v uint64) {
	for {
		cur := c.v.Load()
		if cur >= v || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// tickGV4 draws a write version using TL2's GV4 "pass on failure" variant:
// one CAS attempt to advance the clock, and on failure the loser adopts the
// winner's (already advanced) value as its own wv instead of retrying. Two
// commits may then share a wv, which is safe: the sharers held disjoint
// write-set locks (overlapping sets would have serialized on a lock), both
// published versions exceed every rv sampled before either commit, and a
// reader validates `version > rv`, which ties do not weaken. What sharing
// buys is that the global clock line is written once per contention burst
// instead of once per commit — the uncontended-loser retry loop that made
// the clock the first scaling wall is gone.
//
// needValidate is false only when this caller itself moved the clock
// rv→rv+1, i.e. provably no transaction committed between the rv sample and
// the tick (the classic TL2 validation elision). An adopted value never
// elides validation: the winner it was adopted from committed after our rv.
//
// adopted reports the pass-on-failure path was taken (telemetry).
func (c *clock) tickGV4(rv uint64) (wv uint64, needValidate, adopted bool) {
	v := c.v.Load()
	if c.v.CompareAndSwap(v, v+1) {
		return v + 1, v != rv, false
	}
	// Pass on failure: a winner advanced the clock past v; its value is
	// > v ≥ rv, so it is a valid write version for this commit too.
	return c.v.Load(), true, true
}

// A versioned lock word packs a version number and a lock bit:
//
//	word = version<<1 | lockedBit
//
// While a location is locked (mid-commit) the version field still carries
// the pre-commit version, so concurrent readers spinning on the word can
// tell how stale their view is once the lock is released.
const lockedBit uint64 = 1

func makeWord(version uint64, locked bool) uint64 {
	w := version << 1
	if locked {
		w |= lockedBit
	}
	return w
}

func wordVersion(w uint64) uint64 { return w >> 1 }
func wordLocked(w uint64) bool    { return w&lockedBit != 0 }

// spinYield is called in bounded-spin loops. On the oversubscribed
// single-core configuration this repository runs on, yielding to the Go
// scheduler is what lets a mid-commit lock holder finish; busy-waiting
// would deadlock the core.
func spinYield() { runtime.Gosched() }
