// Package commitreg provides the commit-attribution registry shared by the
// STM runtimes (internal/tl2, internal/libtm): a lock-free ring mapping a
// commit's global sequence number to the (thread, txn) pair that committed
// it. An aborting transaction that knows which commit invalidated it (by
// sequence number) resolves the committer's identity here, which is how the
// tracer pairs each commit with "its" aborts into a thread transactional
// state without any global serialization.
package commitreg

import (
	"sync/atomic"

	"gstm/internal/txid"
)

// Registry is a power-of-two ring of (sequence, pair) slots. Entries are
// published with a sequence check so a reader racing far behind detects
// that its slot was recycled and reports attribution failure instead of a
// wrong pair.
type Registry struct {
	mask  uint64
	slots []slot
}

type slot struct {
	wv   atomic.Uint64
	pair atomic.Uint32 // txid.Packed
}

// New returns a registry with capacity rounded up to the next power of two
// (minimum 1024 slots).
func New(capacity int) *Registry {
	n := 1024
	for n < capacity {
		n <<= 1
	}
	return &Registry{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Record publishes that pair committed sequence number wv. Callers invoke
// it before making the commit observable, so any transaction that can see
// the commit's effects can also resolve it.
func (r *Registry) Record(wv uint64, pair txid.Pair) {
	s := &r.slots[wv&r.mask]
	// Invalidate first so a torn observer never pairs an old wv with a new
	// pair: readers re-check wv after loading the pair.
	s.wv.Store(0)
	s.pair.Store(uint32(pair.Pack()))
	s.wv.Store(wv)
}

// Lookup resolves wv to its committing pair. ok is false when the slot was
// recycled by a later commit (attribution lost) or wv was never recorded.
func (r *Registry) Lookup(wv uint64) (pair txid.Pair, ok bool) {
	if wv == 0 {
		return txid.Pair{}, false
	}
	s := &r.slots[wv&r.mask]
	if s.wv.Load() != wv {
		return txid.Pair{}, false
	}
	p := txid.Packed(s.pair.Load())
	if s.wv.Load() != wv { // recycled mid-read
		return txid.Pair{}, false
	}
	return p.Unpack(), true
}
