package commitreg

import (
	"testing"

	"gstm/internal/txid"
)

func TestRoundTrip(t *testing.T) {
	r := New(1024)
	p := txid.Pair{Txn: 3, Thread: 7}
	r.Record(42, p)
	got, ok := r.Lookup(42)
	if !ok || got != p {
		t.Fatalf("Lookup(42) = %v, %v; want %v, true", got, ok, p)
	}
	if _, ok := r.Lookup(43); ok {
		t.Fatal("Lookup(43) succeeded for unrecorded version")
	}
	if _, ok := r.Lookup(0); ok {
		t.Fatal("Lookup(0) must fail")
	}
	// Recycling the slot must invalidate the old wv.
	r.Record(42+1024, txid.Pair{Txn: 1, Thread: 1})
	if _, ok := r.Lookup(42); ok {
		t.Fatal("Lookup(42) succeeded after slot recycled")
	}
}

func TestCapacityRounding(t *testing.T) {
	r := New(3000)
	if len(r.slots) != 4096 {
		t.Fatalf("slots = %d, want 4096", len(r.slots))
	}
	if m := New(0); len(m.slots) != 1024 {
		t.Fatalf("minimum slots = %d, want 1024", len(m.slots))
	}
}

func TestDistinctSlotsIndependent(t *testing.T) {
	r := New(1024)
	a := txid.Pair{Txn: 1, Thread: 2}
	b := txid.Pair{Txn: 3, Thread: 4}
	r.Record(5, a)
	r.Record(6, b)
	if got, ok := r.Lookup(5); !ok || got != a {
		t.Fatalf("Lookup(5) = %v, %v", got, ok)
	}
	if got, ok := r.Lookup(6); !ok || got != b {
		t.Fatalf("Lookup(6) = %v, %v", got, ok)
	}
}
