package trace

import (
	"fmt"
	"io"
	"sort"

	"gstm/internal/stats"
	"gstm/internal/txid"
)

// Comparison quantifies the difference between two groups of traces —
// typically a default group and a guided group, the artifact's
// ND_only-vs-ND_mcmc post-processing.
type Comparison struct {
	// NDA and NDB are the distinct-state counts of each group.
	NDA, NDB int
	// OnlyA and OnlyB count states exercised by exactly one group.
	OnlyA, OnlyB int
	// Shared counts states both groups exercised.
	Shared int
	// TailA and TailB are the per-thread abort tail metrics (merged over
	// each group's runs), keyed by thread.
	TailA, TailB map[txid.ThreadID]float64
}

// Compare builds the comparison between two groups of traces.
func Compare(groupA, groupB []*Trace) *Comparison {
	setA := stateSet(groupA)
	setB := stateSet(groupB)
	c := &Comparison{
		NDA:   len(setA),
		NDB:   len(setB),
		TailA: tails(groupA),
		TailB: tails(groupB),
	}
	for k := range setA {
		if _, ok := setB[k]; ok {
			c.Shared++
		} else {
			c.OnlyA++
		}
	}
	c.OnlyB = len(setB) - c.Shared
	return c
}

func stateSet(group []*Trace) map[Key]struct{} {
	set := make(map[Key]struct{})
	for _, t := range group {
		for _, s := range t.Seq {
			set[s.Key()] = struct{}{}
		}
	}
	return set
}

func tails(group []*Trace) map[txid.ThreadID]float64 {
	merged := make(map[txid.ThreadID]*stats.Histogram)
	for _, t := range group {
		for th, h := range t.AbortHist {
			m := merged[th]
			if m == nil {
				m = stats.NewHistogram()
				merged[th] = m
			}
			m.Merge(h)
		}
	}
	out := make(map[txid.ThreadID]float64, len(merged))
	for th, h := range merged {
		out[th] = h.TailMetric()
	}
	return out
}

// NDReduction returns the percentage reduction in distinct states from
// group A to group B (positive when B is more deterministic).
func (c *Comparison) NDReduction() float64 {
	return stats.PercentImprovement(float64(c.NDA), float64(c.NDB))
}

// MeanTailImprovement averages the per-thread tail-metric improvement from
// A to B over threads present in both groups with a non-zero baseline.
func (c *Comparison) MeanTailImprovement() float64 {
	sum, n := 0.0, 0
	for th, ta := range c.TailA {
		tb, ok := c.TailB[th]
		if !ok || ta == 0 {
			continue
		}
		sum += stats.PercentImprovement(ta, tb)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Write renders the comparison.
func (c *Comparison) Write(w io.Writer) {
	fmt.Fprintf(w, "non-determinism: A=%d states, B=%d states (%.1f%% reduction)\n",
		c.NDA, c.NDB, c.NDReduction())
	fmt.Fprintf(w, "state overlap: %d shared, %d only in A, %d only in B\n",
		c.Shared, c.OnlyA, c.OnlyB)
	fmt.Fprintf(w, "abort tail improvement (mean over threads): %.1f%%\n", c.MeanTailImprovement())
	threads := make([]int, 0, len(c.TailA))
	for th := range c.TailA {
		threads = append(threads, int(th))
	}
	sort.Ints(threads)
	for _, th := range threads {
		fmt.Fprintf(w, "  thread %2d: tail %g -> %g\n",
			th, c.TailA[txid.ThreadID(th)], c.TailB[txid.ThreadID(th)])
	}
}

// Dump renders a single trace: summary counters and the first maxStates
// states in the paper's notation.
func Dump(w io.Writer, t *Trace, maxStates int) {
	fmt.Fprintf(w, "commits=%d aborts=%d unattributed=%d distinct-states=%d\n",
		t.Commits, t.Aborts, t.Unattributed, t.DistinctStates())
	threads := make([]int, 0, len(t.AbortHist))
	for th := range t.AbortHist {
		threads = append(threads, int(th))
	}
	sort.Ints(threads)
	for _, th := range threads {
		fmt.Fprintf(w, "thread %2d aborts: %s\n", th, t.AbortHist[txid.ThreadID(th)].String())
	}
	n := len(t.Seq)
	if maxStates > 0 && n > maxStates {
		n = maxStates
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%6d  %s\n", i, t.Seq[i].String())
	}
	if n < len(t.Seq) {
		fmt.Fprintf(w, "... (%d more states)\n", len(t.Seq)-n)
	}
}
