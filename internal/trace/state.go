// Package trace implements the paper's profiling instrumentation: it
// captures the transaction sequence (Tseq) — every commit paired with the
// aborts it caused — and folds each such tuple into a thread transactional
// state (TTS, Section II-B).
//
// A TTS is the tuple {<aborted pairs...>, <committing pair>}: the set of
// (transaction, thread) pairs that aborted because of one commit, together
// with the pair that committed. The number of distinct TTSes exercised by a
// run is the paper's measure of non-determinism; the succession of TTSes is
// the input to model generation (internal/model).
package trace

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"gstm/internal/txid"
)

// State is a thread transactional state. Aborted is sorted and duplicate
// free; a state with no aborts ({<c3>} in the paper's notation) is a commit
// that conflicted with nobody.
type State struct {
	Aborted []txid.Packed
	Commit  txid.Packed
}

// Key is a compact, comparable encoding of a State, used as a map key by
// the model and the guided-execution gate. It is the paper's "efficient
// bitwise structure": 4 big-endian bytes per participant, aborted pairs
// first (sorted), committing pair last.
type Key string

// NewState builds a normalized State: aborted is copied, sorted and
// de-duplicated.
func NewState(aborted []txid.Packed, commit txid.Packed) State {
	if len(aborted) == 0 {
		return State{Commit: commit}
	}
	cp := append([]txid.Packed(nil), aborted...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	out := cp[:1]
	for _, p := range cp[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return State{Aborted: out, Commit: commit}
}

// Key returns the state's compact encoding.
func (s State) Key() Key {
	buf := make([]byte, 0, 4*(len(s.Aborted)+1))
	for _, p := range s.Aborted {
		buf = appendPacked(buf, p)
	}
	buf = appendPacked(buf, s.Commit)
	return Key(buf)
}

func appendPacked(buf []byte, p txid.Packed) []byte {
	return append(buf, byte(p>>24), byte(p>>16), byte(p>>8), byte(p))
}

// ParseKey decodes a Key back into its State. It returns an error when the
// key length is not a positive multiple of four bytes.
func ParseKey(k Key) (State, error) {
	b := []byte(k)
	if len(b) == 0 || len(b)%4 != 0 {
		return State{}, fmt.Errorf("trace: malformed state key of %d bytes", len(b))
	}
	n := len(b)/4 - 1
	s := State{}
	if n > 0 {
		s.Aborted = make([]txid.Packed, n)
	}
	for i := 0; i <= n; i++ {
		p := txid.Packed(uint32(b[4*i])<<24 | uint32(b[4*i+1])<<16 | uint32(b[4*i+2])<<8 | uint32(b[4*i+3]))
		if i == n {
			s.Commit = p
		} else {
			s.Aborted[i] = p
		}
	}
	return s, nil
}

// Participants reports every pair appearing in the state (aborted or
// committing).
func (s State) Participants() []txid.Packed {
	out := make([]txid.Packed, 0, len(s.Aborted)+1)
	out = append(out, s.Aborted...)
	return append(out, s.Commit)
}

// Contains reports whether pair p participates in the state, either as an
// abort or as the commit. This is the membership test guided execution runs
// at TM_BEGIN.
func (s State) Contains(p txid.Packed) bool {
	if s.Commit == p {
		return true
	}
	for _, a := range s.Aborted {
		if a == p {
			return true
		}
	}
	return false
}

// KeyContains is Contains without decoding the key: it scans the 4-byte
// groups directly.
func KeyContains(k Key, p txid.Packed) bool {
	b := []byte(k)
	for i := 0; i+4 <= len(b); i += 4 {
		q := txid.Packed(uint32(b[i])<<24 | uint32(b[i+1])<<16 | uint32(b[i+2])<<8 | uint32(b[i+3]))
		if q == p {
			return true
		}
	}
	return false
}

// Hash64 returns an FNV-1a hash of the key, used to shard gate lookups.
func (k Key) Hash64() uint64 {
	h := fnv.New64a()
	h.Write([]byte(k))
	return h.Sum64()
}

// String renders the state in the paper's notation, e.g.
// "{<a1b2c3>, <d4>}" for threads 1,2,3 aborted by thread 4 committing d,
// or "{<c3>}" for an uncontended commit by thread 3.
func (s State) String() string {
	var b strings.Builder
	b.WriteByte('{')
	if len(s.Aborted) > 0 {
		b.WriteByte('<')
		for _, p := range s.Aborted {
			b.WriteString(p.String())
		}
		b.WriteString(">, ")
	}
	b.WriteByte('<')
	b.WriteString(s.Commit.String())
	b.WriteString(">}")
	return b.String()
}
