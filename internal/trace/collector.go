package trace

import (
	"sort"
	"sync"

	"gstm/internal/stats"
	"gstm/internal/txid"
)

// Collector is the EventSink installed during profiling (and during guided
// runs, to measure them). It buffers raw commit/abort events with minimal
// synchronization and reconstructs the exact transaction sequence offline
// in Finalize, using each commit's unique write version as the global
// order.
type Collector struct {
	mu      sync.Mutex
	commits []commitEvent
	aborts  []abortEvent
}

type commitEvent struct {
	wv     uint64
	pair   txid.Packed
	aborts int32
}

type abortEvent struct {
	byWV  uint64
	pair  txid.Packed
	known bool
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// TxCommit implements tl2.EventSink.
func (c *Collector) TxCommit(p txid.Pair, wv uint64, aborts int) {
	c.mu.Lock()
	c.commits = append(c.commits, commitEvent{wv: wv, pair: p.Pack(), aborts: int32(aborts)})
	c.mu.Unlock()
}

// TxAbort implements tl2.EventSink.
func (c *Collector) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	c.mu.Lock()
	c.aborts = append(c.aborts, abortEvent{byWV: byWV, pair: p.Pack(), known: byKnown})
	c.mu.Unlock()
}

// Trace is the finalized observation of one run: the ordered transaction
// sequence, per-thread abort histograms (number of aborts a transaction
// suffered before committing, keyed by thread), and summary counters.
type Trace struct {
	// Seq is the transaction sequence: one State per commit, in global
	// commit order.
	Seq []State

	// AbortHist maps each thread to the histogram of per-transaction abort
	// counts its commits experienced (the paper's abort distribution).
	AbortHist map[txid.ThreadID]*stats.Histogram

	// Commits and Aborts are the run's totals.
	Commits int
	Aborts  int

	// Unattributed counts aborts whose invalidating commit could not be
	// identified precisely (they are grouped with the collector's
	// best-effort guess, flagged by the runtime).
	Unattributed int
}

// Finalize reconstructs the transaction sequence: commits sorted by write
// version, each paired with the aborts attributed to it. The Collector may
// be reused after Finalize (it is reset).
func (c *Collector) Finalize() *Trace {
	c.mu.Lock()
	commits := c.commits
	aborts := c.aborts
	c.commits = nil
	c.aborts = nil
	c.mu.Unlock()

	sort.Slice(commits, func(i, j int) bool { return commits[i].wv < commits[j].wv })

	byCommit := make(map[uint64][]txid.Packed)
	unattributed := 0
	for _, a := range aborts {
		if !a.known {
			unattributed++
		}
		byCommit[a.byWV] = append(byCommit[a.byWV], a.pair)
	}

	tr := &Trace{
		Seq:          make([]State, 0, len(commits)),
		AbortHist:    make(map[txid.ThreadID]*stats.Histogram),
		Commits:      len(commits),
		Aborts:       len(aborts),
		Unattributed: unattributed,
	}
	for _, ce := range commits {
		st := NewState(byCommit[ce.wv], ce.pair)
		tr.Seq = append(tr.Seq, st)
		th := ce.pair.Unpack().Thread
		h := tr.AbortHist[th]
		if h == nil {
			h = stats.NewHistogram()
			tr.AbortHist[th] = h
		}
		// aborts is bounded by the retry count, always >= 0.
		_ = h.Add(int(ce.aborts))
	}
	return tr
}

// DistinctStates returns the number of distinct thread transactional states
// in the trace — the paper's non-determinism measure |S|.
func (t *Trace) DistinctStates() int {
	seen := make(map[Key]struct{}, len(t.Seq))
	for _, s := range t.Seq {
		seen[s.Key()] = struct{}{}
	}
	return len(seen)
}

// MergedAbortHist returns one histogram merging all threads' abort
// distributions.
func (t *Trace) MergedAbortHist() *stats.Histogram {
	h := stats.NewHistogram()
	for _, th := range t.AbortHist {
		h.Merge(th)
	}
	return h
}

// ThreadHistograms returns the per-thread histograms for threads 0..n-1 in
// order, substituting empty histograms for threads that never committed.
func (t *Trace) ThreadHistograms(n int) []*stats.Histogram {
	out := make([]*stats.Histogram, n)
	for i := range out {
		if h, ok := t.AbortHist[txid.ThreadID(i)]; ok {
			out[i] = h
		} else {
			out[i] = stats.NewHistogram()
		}
	}
	return out
}

// DistinctStatesAcross unions the distinct states of several traces,
// matching the paper's protocol of building the model (and counting
// non-determinism) over 20 runs.
func DistinctStatesAcross(traces []*Trace) int {
	seen := make(map[Key]struct{})
	for _, t := range traces {
		for _, s := range t.Seq {
			seen[s.Key()] = struct{}{}
		}
	}
	return len(seen)
}
