package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"gstm/internal/stats"
	"gstm/internal/txid"
)

// Binary trace format (the artifact's on-disk transaction-sequence logs,
// which let profiling runs and model generation happen in separate
// processes):
//
//	magic    "GSTQ"            4 bytes
//	version  u8 (=1)
//	commits  u64, aborts u64, unattributed u64
//	nstates  u32
//	states   nstates × { u16 nAborted, nAborted × u32 packed, u32 commit }
//	nthreads u32
//	threads  nthreads × { u16 thread, u32 nbuckets,
//	                      nbuckets × { u32 value, u64 count } }
//
// All integers little-endian.

var traceMagic = [4]byte{'G', 'S', 'T', 'Q'}

const traceVersion = 1

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(traceVersion); err != nil {
		return err
	}
	for _, v := range []uint64{uint64(t.Commits), uint64(t.Aborts), uint64(t.Unattributed)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Seq))); err != nil {
		return err
	}
	for _, s := range t.Seq {
		if len(s.Aborted) > 0xffff {
			return fmt.Errorf("trace: state with %d aborts exceeds format limit", len(s.Aborted))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s.Aborted))); err != nil {
			return err
		}
		for _, a := range s.Aborted {
			if err := binary.Write(bw, binary.LittleEndian, uint32(a)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(s.Commit)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.AbortHist))); err != nil {
		return err
	}
	for th, h := range t.AbortHist {
		if err := binary.Write(bw, binary.LittleEndian, uint16(th)); err != nil {
			return err
		}
		vals := h.Values()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(vals))); err != nil {
			return err
		}
		for _, v := range vals {
			if err := binary.Write(bw, binary.LittleEndian, uint32(v)); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint64(h.Count(v))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by Write.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if got != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", got[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	var counters [3]uint64
	for i := range counters {
		if err := binary.Read(br, binary.LittleEndian, &counters[i]); err != nil {
			return nil, err
		}
	}
	var nstates uint32
	if err := binary.Read(br, binary.LittleEndian, &nstates); err != nil {
		return nil, err
	}
	const maxStates = 1 << 28
	if nstates > maxStates {
		return nil, fmt.Errorf("trace: state count %d exceeds sanity limit", nstates)
	}
	// Cap the preallocation: nstates comes straight off the wire, and a
	// corrupt header must not let a 4-byte field commit gigabytes before a
	// single state has been decoded. Growth past the cap falls back to
	// append's normal doubling, paced by actual bytes read.
	prealloc := nstates
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	t := &Trace{
		Commits:      int(counters[0]),
		Aborts:       int(counters[1]),
		Unattributed: int(counters[2]),
		Seq:          make([]State, 0, prealloc),
		AbortHist:    make(map[txid.ThreadID]*stats.Histogram),
	}
	for i := uint32(0); i < nstates; i++ {
		var nab uint16
		if err := binary.Read(br, binary.LittleEndian, &nab); err != nil {
			return nil, err
		}
		st := State{}
		if nab > 0 {
			st.Aborted = make([]txid.Packed, nab)
			for j := range st.Aborted {
				var p uint32
				if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
					return nil, err
				}
				st.Aborted[j] = txid.Packed(p)
			}
		}
		var c uint32
		if err := binary.Read(br, binary.LittleEndian, &c); err != nil {
			return nil, err
		}
		st.Commit = txid.Packed(c)
		t.Seq = append(t.Seq, st)
	}
	var nthreads uint32
	if err := binary.Read(br, binary.LittleEndian, &nthreads); err != nil {
		return nil, err
	}
	// thread IDs are u16, so more than 65536 entries is necessarily corrupt.
	if nthreads > 1<<16 {
		return nil, fmt.Errorf("trace: thread count %d exceeds format limit", nthreads)
	}
	for i := uint32(0); i < nthreads; i++ {
		var th uint16
		if err := binary.Read(br, binary.LittleEndian, &th); err != nil {
			return nil, err
		}
		var nbuckets uint32
		if err := binary.Read(br, binary.LittleEndian, &nbuckets); err != nil {
			return nil, err
		}
		// Bucket values are distinct u32 abort counts; a histogram cannot
		// legitimately hold more distinct values than profiling could have
		// produced, and an absurd count here is a corrupt stream.
		const maxBuckets = 1 << 24
		if nbuckets > maxBuckets {
			return nil, fmt.Errorf("trace: thread %d bucket count %d exceeds sanity limit", th, nbuckets)
		}
		h := stats.NewHistogram()
		for j := uint32(0); j < nbuckets; j++ {
			var v uint32
			var c uint64
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &c); err != nil {
				return nil, err
			}
			if err := h.AddN(int(v), int64(c)); err != nil {
				return nil, err
			}
		}
		t.AbortHist[txid.ThreadID(th)] = h
	}
	return t, nil
}

// SaveTrace writes t to path.
func SaveTrace(t *Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTrace reads a trace from path.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
