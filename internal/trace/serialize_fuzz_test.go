package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"gstm/internal/txid"
)

// validTraceBytes serializes a small but fully populated trace — states
// with and without aborts plus per-thread abort histograms — for use as a
// fuzz seed and as the base of the truncation tests.
func validTraceBytes(t testing.TB) []byte {
	t.Helper()
	c := NewCollector()
	t1 := txid.Pair{Txn: 0, Thread: 1}
	t2 := txid.Pair{Txn: 1, Thread: 2}
	c.TxAbort(t1, 5, t2, true)
	c.TxCommit(t2, 5, 0)
	c.TxCommit(t1, 9, 1)
	var buf bytes.Buffer
	if err := c.Finalize().Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// corruptHeader builds a stream with a valid magic/version/counters prefix
// followed by the given section counts, to probe the reader's sanity caps.
func corruptHeader(nstates uint32, body func(*bytes.Buffer)) []byte {
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.WriteByte(traceVersion)
	for i := 0; i < 3; i++ {
		binary.Write(&buf, binary.LittleEndian, uint64(0))
	}
	binary.Write(&buf, binary.LittleEndian, nstates)
	if body != nil {
		body(&buf)
	}
	return buf.Bytes()
}

func TestReadTraceTruncated(t *testing.T) {
	full := validTraceBytes(t)
	if _, err := ReadTrace(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream rejected: %v", err)
	}
	// The format has no trailing marker, but every section is mandatory,
	// so any strict prefix must fail a required read — cleanly, not by
	// panicking or fabricating a trace.
	for n := 0; n < len(full); n++ {
		if _, err := ReadTrace(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("accepted %d-byte prefix of a %d-byte trace", n, len(full))
		}
	}
}

func TestReadTraceRejectsInsaneCounts(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"nstates over cap", corruptHeader(1<<28+1, nil)},
		{"nthreads over cap", corruptHeader(0, func(b *bytes.Buffer) {
			binary.Write(b, binary.LittleEndian, uint32(1<<16+1))
		})},
		{"nbuckets over cap", corruptHeader(0, func(b *bytes.Buffer) {
			binary.Write(b, binary.LittleEndian, uint32(1)) // nthreads
			binary.Write(b, binary.LittleEndian, uint16(0)) // thread id
			binary.Write(b, binary.LittleEndian, uint32(1<<24+1))
		})},
	}
	for _, tc := range cases {
		if _, err := ReadTrace(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: accepted corrupt stream", tc.name)
		}
	}
}

func TestReadTraceHugeClaimedStatesNoOverAlloc(t *testing.T) {
	// nstates under the sanity cap but wildly larger than the stream: the
	// capped preallocation must keep this from committing gigabytes before
	// the inevitable EOF.
	data := corruptHeader(1<<27, nil)
	if _, err := ReadTrace(bytes.NewReader(data)); err == nil {
		t.Fatal("accepted truncated stream claiming 1<<27 states")
	}
}

func FuzzTraceLoad(f *testing.F) {
	f.Add(validTraceBytes(f))
	f.Add([]byte("GSTQ"))
	f.Add([]byte("GSTQ\x01"))
	f.Add(corruptHeader(3, nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the reader accepts must survive a write/read round trip
		// with identical structure.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-serialize of accepted trace failed: %v", err)
		}
		got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-serialized trace failed: %v", err)
		}
		if got.Commits != tr.Commits || got.Aborts != tr.Aborts || got.Unattributed != tr.Unattributed {
			t.Fatalf("counters drifted: %d/%d/%d vs %d/%d/%d",
				got.Commits, got.Aborts, got.Unattributed, tr.Commits, tr.Aborts, tr.Unattributed)
		}
		if len(got.Seq) != len(tr.Seq) {
			t.Fatalf("seq length drifted: %d vs %d", len(got.Seq), len(tr.Seq))
		}
		for i := range tr.Seq {
			if got.Seq[i].Key() != tr.Seq[i].Key() {
				t.Fatalf("state %d drifted", i)
			}
		}
		if len(got.AbortHist) != len(tr.AbortHist) {
			t.Fatalf("hist thread count drifted: %d vs %d", len(got.AbortHist), len(tr.AbortHist))
		}
	})
}
