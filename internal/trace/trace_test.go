package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"gstm/internal/txid"
)

func pk(txn, thread int) txid.Packed {
	return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}.Pack()
}

func TestNewStateNormalizes(t *testing.T) {
	ab := []txid.Packed{pk(2, 3), pk(0, 1), pk(2, 3), pk(0, 1)}
	s := NewState(ab, pk(3, 4))
	if len(s.Aborted) != 2 {
		t.Fatalf("dedup failed: %v", s.Aborted)
	}
	if s.Aborted[0] != pk(0, 1) || s.Aborted[1] != pk(2, 3) {
		t.Fatalf("sort failed: %v", s.Aborted)
	}
	// Input must not be mutated.
	if ab[0] != pk(2, 3) {
		t.Fatal("NewState mutated its input")
	}
}

func TestStateKeyRoundTrip(t *testing.T) {
	f := func(raw []uint32, commit uint32) bool {
		ab := make([]txid.Packed, len(raw))
		for i, r := range raw {
			ab[i] = txid.Packed(r)
		}
		s := NewState(ab, txid.Packed(commit))
		got, err := ParseKey(s.Key())
		if err != nil {
			return false
		}
		if got.Commit != s.Commit || len(got.Aborted) != len(s.Aborted) {
			return false
		}
		for i := range got.Aborted {
			if got.Aborted[i] != s.Aborted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseKeyRejectsMalformed(t *testing.T) {
	for _, k := range []Key{"", "abc", "abcde"} {
		if _, err := ParseKey(k); err == nil {
			t.Errorf("ParseKey(%q) accepted malformed key", k)
		}
	}
}

func TestKeysDistinguishStates(t *testing.T) {
	s1 := NewState([]txid.Packed{pk(0, 1)}, pk(1, 2))
	s2 := NewState([]txid.Packed{pk(0, 1)}, pk(1, 3))
	s3 := NewState(nil, pk(1, 2))
	if s1.Key() == s2.Key() || s1.Key() == s3.Key() || s2.Key() == s3.Key() {
		t.Fatal("distinct states share a key")
	}
	// Same logical state, different input order: same key.
	s4 := NewState([]txid.Packed{pk(4, 4), pk(0, 1)}, pk(1, 2))
	s5 := NewState([]txid.Packed{pk(0, 1), pk(4, 4)}, pk(1, 2))
	if s4.Key() != s5.Key() {
		t.Fatal("order-insensitive states have different keys")
	}
}

func TestContainsAndKeyContains(t *testing.T) {
	s := NewState([]txid.Packed{pk(0, 1), pk(2, 3)}, pk(5, 6))
	for _, p := range []txid.Packed{pk(0, 1), pk(2, 3), pk(5, 6)} {
		if !s.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
		if !KeyContains(s.Key(), p) {
			t.Errorf("KeyContains(%v) = false", p)
		}
	}
	if s.Contains(pk(9, 9)) || KeyContains(s.Key(), pk(9, 9)) {
		t.Error("Contains reported a non-participant")
	}
}

func TestStatePaperNotation(t *testing.T) {
	// The kmeans example from the paper: state {<a6>, <b7>} — transaction a
	// on thread 6 aborted by thread 7 committing b.
	s := NewState([]txid.Packed{pk(0, 6)}, pk(1, 7))
	if got := s.String(); got != "{<a6>, <b7>}" {
		t.Fatalf("String = %q, want {<a6>, <b7>}", got)
	}
	solo := NewState(nil, pk(2, 3))
	if got := solo.String(); got != "{<c3>}" {
		t.Fatalf("String = %q, want {<c3>}", got)
	}
}

func TestCollectorFinalizeOrdersAndGroups(t *testing.T) {
	c := NewCollector()
	t1 := txid.Pair{Txn: 0, Thread: 1}
	t2 := txid.Pair{Txn: 1, Thread: 2}
	t3 := txid.Pair{Txn: 0, Thread: 3}

	// Commit wv=5 by t2 aborts t1 and t3; later commit wv=9 by t1 aborts
	// nobody. Events arrive out of order, as they would concurrently.
	c.TxAbort(t3, 5, t2, true)
	c.TxCommit(t1, 9, 2)
	c.TxCommit(t2, 5, 0)
	c.TxAbort(t1, 5, t2, true)

	tr := c.Finalize()
	if tr.Commits != 2 || tr.Aborts != 2 {
		t.Fatalf("Commits/Aborts = %d/%d", tr.Commits, tr.Aborts)
	}
	if len(tr.Seq) != 2 {
		t.Fatalf("Seq len = %d", len(tr.Seq))
	}
	first := tr.Seq[0]
	if first.Commit != t2.Pack() || len(first.Aborted) != 2 {
		t.Fatalf("first state = %v", first)
	}
	second := tr.Seq[1]
	if second.Commit != t1.Pack() || len(second.Aborted) != 0 {
		t.Fatalf("second state = %v", second)
	}
	// Abort histogram: t1 committed after 2 aborts, t2 after 0.
	if tr.AbortHist[1].Count(2) != 1 {
		t.Fatalf("thread 1 hist = %v", tr.AbortHist[1])
	}
	if tr.AbortHist[2].Count(0) != 1 {
		t.Fatalf("thread 2 hist = %v", tr.AbortHist[2])
	}
	if tr.Unattributed != 0 {
		t.Fatalf("Unattributed = %d", tr.Unattributed)
	}
}

func TestCollectorReusableAfterFinalize(t *testing.T) {
	c := NewCollector()
	c.TxCommit(txid.Pair{Thread: 1}, 1, 0)
	if got := c.Finalize(); got.Commits != 1 {
		t.Fatalf("first Finalize commits = %d", got.Commits)
	}
	if got := c.Finalize(); got.Commits != 0 {
		t.Fatalf("second Finalize should be empty, got %d commits", got.Commits)
	}
	c.TxCommit(txid.Pair{Thread: 2}, 2, 1)
	if got := c.Finalize(); got.Commits != 1 {
		t.Fatalf("reuse failed: commits = %d", got.Commits)
	}
}

func TestDistinctStates(t *testing.T) {
	c := NewCollector()
	a := txid.Pair{Txn: 0, Thread: 0}
	b := txid.Pair{Txn: 0, Thread: 1}
	c.TxCommit(a, 1, 0)
	c.TxCommit(b, 2, 0)
	c.TxCommit(a, 3, 0) // repeats state {<a0>}
	tr := c.Finalize()
	if got := tr.DistinctStates(); got != 2 {
		t.Fatalf("DistinctStates = %d, want 2", got)
	}
}

func TestDistinctStatesAcross(t *testing.T) {
	mkTrace := func(threads ...int) *Trace {
		c := NewCollector()
		for i, th := range threads {
			c.TxCommit(txid.Pair{Txn: 0, Thread: txid.ThreadID(th)}, uint64(i+1), 0)
		}
		return c.Finalize()
	}
	t1 := mkTrace(0, 1)
	t2 := mkTrace(1, 2)
	if got := DistinctStatesAcross([]*Trace{t1, t2}); got != 3 {
		t.Fatalf("DistinctStatesAcross = %d, want 3", got)
	}
}

func TestThreadHistograms(t *testing.T) {
	c := NewCollector()
	c.TxCommit(txid.Pair{Txn: 0, Thread: 1}, 1, 3)
	tr := c.Finalize()
	hs := tr.ThreadHistograms(4)
	if len(hs) != 4 {
		t.Fatalf("len = %d", len(hs))
	}
	if hs[1].Count(3) != 1 {
		t.Fatalf("thread 1 hist = %v", hs[1])
	}
	for _, i := range []int{0, 2, 3} {
		if hs[i].Total() != 0 {
			t.Fatalf("thread %d should be empty", i)
		}
	}
}

func TestMergedAbortHist(t *testing.T) {
	c := NewCollector()
	c.TxCommit(txid.Pair{Txn: 0, Thread: 0}, 1, 2)
	c.TxCommit(txid.Pair{Txn: 0, Thread: 1}, 2, 2)
	h := c.Finalize().MergedAbortHist()
	if h.Count(2) != 2 {
		t.Fatalf("merged hist = %v", h)
	}
}

func TestTraceSerializeRoundTrip(t *testing.T) {
	c := NewCollector()
	t1 := txid.Pair{Txn: 0, Thread: 1}
	t2 := txid.Pair{Txn: 1, Thread: 2}
	c.TxAbort(t1, 5, t2, true)
	c.TxCommit(t2, 5, 0)
	c.TxCommit(t1, 9, 1)
	c.TxAbort(t2, 9, t1, false)
	tr := c.Finalize()

	dir := t.TempDir()
	path := dir + "/tseq.bin"
	if err := SaveTrace(tr, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Commits != tr.Commits || got.Aborts != tr.Aborts || got.Unattributed != tr.Unattributed {
		t.Fatalf("counters: %+v vs %+v", got, tr)
	}
	if len(got.Seq) != len(tr.Seq) {
		t.Fatalf("seq length %d vs %d", len(got.Seq), len(tr.Seq))
	}
	for i := range tr.Seq {
		if got.Seq[i].Key() != tr.Seq[i].Key() {
			t.Fatalf("state %d differs: %v vs %v", i, got.Seq[i], tr.Seq[i])
		}
	}
	for th, h := range tr.AbortHist {
		gh := got.AbortHist[th]
		if gh == nil || gh.String() != h.String() {
			t.Fatalf("thread %d hist %v vs %v", th, gh, h)
		}
	}
	if got.DistinctStates() != tr.DistinctStates() {
		t.Fatal("distinct states differ after round trip")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("nope")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := ReadTrace(strings.NewReader("GSTQ\x09")); err == nil {
		t.Fatal("accepted unknown version")
	}
	if _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty input")
	}
}

func TestLoadTraceMissingFile(t *testing.T) {
	if _, err := LoadTrace(t.TempDir() + "/missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompareGroups(t *testing.T) {
	mk := func(abortsPerCommit int, threads ...int) *Trace {
		c := NewCollector()
		wv := uint64(1)
		for _, th := range threads {
			c.TxCommit(txid.Pair{Txn: 0, Thread: txid.ThreadID(th)}, wv, abortsPerCommit)
			wv++
		}
		return c.Finalize()
	}
	groupA := []*Trace{mk(4, 0, 1), mk(4, 1, 2)} // states a0,a1,a2; tails j=4
	groupB := []*Trace{mk(1, 0, 1)}              // states a0,a1; tails j=1
	c := Compare(groupA, groupB)
	if c.NDA != 3 || c.NDB != 2 {
		t.Fatalf("ND = %d/%d", c.NDA, c.NDB)
	}
	if c.Shared != 2 || c.OnlyA != 1 || c.OnlyB != 0 {
		t.Fatalf("overlap = %d/%d/%d", c.Shared, c.OnlyA, c.OnlyB)
	}
	if got := c.NDReduction(); got < 33 || got > 34 {
		t.Fatalf("NDReduction = %v", got)
	}
	// tails: A threads 0/1/2 have tail 16; B threads 0/1 tail 1 → 93.75%.
	if got := c.MeanTailImprovement(); got != 93.75 {
		t.Fatalf("MeanTailImprovement = %v", got)
	}
	var sb strings.Builder
	c.Write(&sb)
	if !strings.Contains(sb.String(), "non-determinism") {
		t.Fatal("Write output missing header")
	}
}

func TestDumpRendersStates(t *testing.T) {
	c := NewCollector()
	c.TxAbort(txid.Pair{Txn: 0, Thread: 6}, 1, txid.Pair{Txn: 1, Thread: 7}, true)
	c.TxCommit(txid.Pair{Txn: 1, Thread: 7}, 1, 0)
	tr := c.Finalize()
	var sb strings.Builder
	Dump(&sb, tr, 10)
	out := sb.String()
	if !strings.Contains(out, "{<a6>, <b7>}") {
		t.Fatalf("Dump missing paper-notation state:\n%s", out)
	}
	if !strings.Contains(out, "commits=1 aborts=1") {
		t.Fatalf("Dump missing counters:\n%s", out)
	}
	// Truncation marker when maxStates < len(seq).
	c2 := NewCollector()
	for i := 0; i < 5; i++ {
		c2.TxCommit(txid.Pair{Txn: 0, Thread: 0}, uint64(i+1), 0)
	}
	var sb2 strings.Builder
	Dump(&sb2, c2.Finalize(), 2)
	if !strings.Contains(sb2.String(), "3 more states") {
		t.Fatalf("Dump truncation marker missing:\n%s", sb2.String())
	}
}
