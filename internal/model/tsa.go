// Package model implements the paper's Thread State Automaton (TSA): a
// probabilistic finite automaton over thread transactional states built
// from profiled transaction sequences (Algorithm 1), the model analyzer
// that decides whether a model can reduce variance (Section IV), and the
// compiled guide table used by guided execution (Sections V–VI).
package model

import (
	"math"
	"sort"

	"gstm/internal/trace"
)

// TSA is the Thread State Automaton. Nodes are thread transactional states;
// each node records the observed frequency of every outbound transition.
// Transition probabilities are frequencies normalized by the node's total
// outbound count (Section II-B).
type TSA struct {
	Threads int // thread count the model was trained for (metadata)
	nodes   map[trace.Key]*Node
}

// Node is one TSA state with its outbound transition frequencies.
type Node struct {
	Key   trace.Key
	Out   map[trace.Key]int64
	Total int64
}

// Edge is a single outbound transition with its probability.
type Edge struct {
	To   trace.Key
	Freq int64
	Prob float64
}

// New returns an empty TSA for the given thread count.
func New(threads int) *TSA {
	return &TSA{Threads: threads, nodes: make(map[trace.Key]*Node)}
}

// Build runs Algorithm 1 over a set of profiled transaction sequences: for
// every consecutive pair (s_i, s_{i+1}) within a run it increments the
// transition frequency s_i → s_{i+1}. Runs are independent — no transition
// is recorded across run boundaries, matching the paper's per-run Tseq
// parsing.
func Build(threads int, runs [][]trace.State) *TSA {
	m := New(threads)
	for _, seq := range runs {
		m.AddRun(seq)
	}
	return m
}

// BuildFromTraces is Build over finalized traces.
func BuildFromTraces(threads int, traces []*trace.Trace) *TSA {
	runs := make([][]trace.State, len(traces))
	for i, t := range traces {
		runs[i] = t.Seq
	}
	return Build(threads, runs)
}

// AddRun folds one run's transaction sequence into the automaton.
func (m *TSA) AddRun(seq []trace.State) {
	for i := 0; i+1 < len(seq); i++ {
		from := seq[i].Key()
		to := seq[i+1].Key()
		n := m.nodes[from]
		if n == nil {
			n = &Node{Key: from, Out: make(map[trace.Key]int64)}
			m.nodes[from] = n
		}
		n.Out[to]++
		n.Total++
	}
	// Terminal states with no outbound edges still exist as nodes so that
	// state counts (Table III) include them.
	if len(seq) > 0 {
		last := seq[len(seq)-1].Key()
		if m.nodes[last] == nil {
			m.nodes[last] = &Node{Key: last, Out: make(map[trace.Key]int64)}
		}
	}
}

// NumStates returns the number of distinct states in the model (Table III).
func (m *TSA) NumStates() int { return len(m.nodes) }

// Node returns the node for key k, or nil when the state is not in the
// model.
func (m *TSA) Node(k trace.Key) *Node { return m.nodes[k] }

// Keys returns every state key, in deterministic (byte-sorted) order.
func (m *TSA) Keys() []trace.Key {
	ks := make([]trace.Key, 0, len(m.nodes))
	for k := range m.nodes {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// Edges returns the outbound edges of k sorted by descending probability
// (ties broken by key for determinism). It returns nil for unknown states.
func (m *TSA) Edges(k trace.Key) []Edge {
	n := m.nodes[k]
	if n == nil || n.Total == 0 {
		return nil
	}
	es := make([]Edge, 0, len(n.Out))
	for to, f := range n.Out {
		es = append(es, Edge{To: to, Freq: f, Prob: float64(f) / float64(n.Total)})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].Freq != es[j].Freq {
			return es[i].Freq > es[j].Freq
		}
		return es[i].To < es[j].To
	})
	return es
}

// TransitionProb returns P(from → to), or 0 when either state or the edge
// is absent.
func (m *TSA) TransitionProb(from, to trace.Key) float64 {
	n := m.nodes[from]
	if n == nil || n.Total == 0 {
		return 0
	}
	return float64(n.Out[to]) / float64(n.Total)
}

// Merge folds other into m, summing transition frequencies. Useful for
// combining models trained on different input quests (SynQuake trains on
// two quests).
func (m *TSA) Merge(other *TSA) {
	if other == nil {
		return
	}
	for k, on := range other.nodes {
		n := m.nodes[k]
		if n == nil {
			n = &Node{Key: k, Out: make(map[trace.Key]int64)}
			m.nodes[k] = n
		}
		for to, f := range on.Out {
			n.Out[to] += f
			n.Total += f
		}
	}
}

// destinations returns the destination set D of state k under the Tfactor
// rule: every edge whose probability is at least P_h / tfactor, where P_h
// is the highest outbound probability (Section VI).
func (m *TSA) destinations(k trace.Key, tfactor float64) []Edge {
	es := m.Edges(k)
	if len(es) == 0 || tfactor <= 0 {
		return nil
	}
	threshold := es[0].Prob / tfactor
	cut := len(es)
	for i, e := range es {
		if e.Prob < threshold {
			cut = i
			break
		}
	}
	return es[:cut]
}

// Destinations exposes the Tfactor-thresholded destination set (used by the
// analyzer, the compiler and the cmd/gstm-model inspector).
func (m *TSA) Destinations(k trace.Key, tfactor float64) []Edge {
	return m.destinations(k, tfactor)
}

// AddTransitionKeys records a single observed transition between two
// already-encoded states. It is the online-learning entry point used by
// guide.Adaptive; Build/AddRun remain the offline path.
func (m *TSA) AddTransitionKeys(from, to trace.Key) {
	n := m.nodes[from]
	if n == nil {
		n = &Node{Key: from, Out: make(map[trace.Key]int64)}
		m.nodes[from] = n
	}
	n.Out[to]++
	n.Total++
	if m.nodes[to] == nil {
		m.nodes[to] = &Node{Key: to, Out: make(map[trace.Key]int64)}
	}
}

// Stats summarizes a model: state/edge counts, the byte size of its
// serialized form (the paper reports ~118KB at 8 threads and ~1.3MB at 16
// for its STAMP models), and the mean normalized entropy of the transition
// distributions (0 = fully deterministic transitions, 1 = uniform — the
// intuition the analyzer's guidance metric quantifies).
type Stats struct {
	States          int
	Edges           int
	Transitions     int64 // total observed transition count
	SerializedBytes int
	MeanEntropy     float64
}

// ComputeStats derives the model's summary statistics.
func (m *TSA) ComputeStats() Stats {
	s := Stats{States: m.NumStates()}
	entropySum, branchStates := 0.0, 0
	var keyBytes int
	for k, n := range m.nodes {
		keyBytes += len(k)
		s.Edges += len(n.Out)
		s.Transitions += n.Total
		if n.Total == 0 || len(n.Out) < 2 {
			continue
		}
		h := 0.0
		for _, f := range n.Out {
			p := float64(f) / float64(n.Total)
			if p > 0 {
				h -= p * math.Log2(p)
			}
		}
		entropySum += h / math.Log2(float64(len(n.Out)))
		branchStates++
	}
	if branchStates > 0 {
		s.MeanEntropy = entropySum / float64(branchStates)
	}
	// Serialized form: header (13B) + per state (2B length + key) +
	// per state edge count (4B) + per edge (4B index + 8B freq).
	s.SerializedBytes = 13 + keyBytes + s.States*6 + s.Edges*12
	return s
}
