package model

import (
	"bytes"
	"testing"

	"gstm/internal/trace"
	"gstm/internal/txid"
)

// fuzzSeedModel builds a small but non-trivial TSA for the fuzz corpus.
func fuzzSeedModel() *TSA {
	pk := func(txn, thread int) txid.Packed {
		return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}.Pack()
	}
	s1 := trace.NewState(nil, pk(0, 0))
	s2 := trace.NewState([]txid.Packed{pk(1, 1)}, pk(0, 2))
	s3 := trace.NewState([]txid.Packed{pk(0, 1), pk(2, 3)}, pk(1, 0))
	return Build(4, [][]trace.State{
		{s1, s2, s3, s1, s2},
		{s2, s1, s3},
	})
}

// FuzzModelLoad exercises the binary state_data decoder: for any input it
// must either return a (wrapped) error or produce a model that survives a
// Write/Read round trip. It must never panic and never silently accept a
// short read.
func FuzzModelLoad(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedModel().Write(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// Truncations of a valid model at every prefix length are exactly the
	// "short read" class the decoder must reject cleanly.
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(valid.Bytes()[:5])

	var empty bytes.Buffer
	if err := New(2).Write(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{})
	f.Add([]byte("GSTM"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected; all that matters is that it didn't panic
		}
		var out bytes.Buffer
		if err := m.Write(&out); err != nil {
			t.Fatalf("re-serializing accepted model: %v", err)
		}
		back, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading round-tripped model: %v", err)
		}
		if back.NumStates() != m.NumStates() {
			t.Fatalf("round trip changed state count: %d → %d", m.NumStates(), back.NumStates())
		}
	})
}

// TestModelLoadTruncations rejects every strict prefix of a valid model
// file with an error (regression for the short-read hardening; the fuzzer
// covers the same ground probabilistically).
func TestModelLoadTruncations(t *testing.T) {
	var valid bytes.Buffer
	if err := fuzzSeedModel().Write(&valid); err != nil {
		t.Fatal(err)
	}
	full := valid.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(full))
		}
	}
	if _, err := Read(bytes.NewReader(full)); err != nil {
		t.Fatalf("full file failed to decode: %v", err)
	}
}
