package model

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"gstm/internal/trace"
	"gstm/internal/txid"
)

func pk(txn, thread int) txid.Packed {
	return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}.Pack()
}

func st(commit txid.Packed, aborted ...txid.Packed) trace.State {
	return trace.NewState(aborted, commit)
}

// chain builds a run visiting the given states in order.
func chain(states ...trace.State) []trace.State { return states }

func TestBuildCountsTransitions(t *testing.T) {
	a, b, c := st(pk(0, 0)), st(pk(0, 1)), st(pk(0, 2))
	m := Build(2, [][]trace.State{
		chain(a, b, a, b, a, c),
		chain(a, b),
	})
	if m.NumStates() != 3 {
		t.Fatalf("NumStates = %d, want 3", m.NumStates())
	}
	// a→b occurred 3 times, a→c once.
	if got := m.TransitionProb(a.Key(), b.Key()); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("P(a→b) = %v, want 0.75", got)
	}
	if got := m.TransitionProb(a.Key(), c.Key()); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("P(a→c) = %v, want 0.25", got)
	}
	// No transition recorded across run boundaries (c at end of run 1,
	// a at start of run 2).
	if got := m.TransitionProb(c.Key(), a.Key()); got != 0 {
		t.Fatalf("cross-run transition recorded: %v", got)
	}
}

func TestEdgesSortedByProbability(t *testing.T) {
	a, b, c := st(pk(0, 0)), st(pk(0, 1)), st(pk(0, 2))
	m := Build(2, [][]trace.State{chain(a, b, a, b, a, c, a, b)})
	es := m.Edges(a.Key())
	if len(es) != 2 {
		t.Fatalf("edges = %d", len(es))
	}
	if es[0].To != b.Key() || es[0].Freq != 3 || es[1].To != c.Key() {
		t.Fatalf("edges not sorted: %+v", es)
	}
	var sum float64
	for _, e := range es {
		sum += e.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestUnknownStateQueries(t *testing.T) {
	m := New(2)
	if m.Edges("nope") != nil {
		t.Fatal("Edges of unknown state should be nil")
	}
	if m.TransitionProb("a", "b") != 0 {
		t.Fatal("prob of unknown state should be 0")
	}
	if m.Node("x") != nil {
		t.Fatal("Node of unknown state should be nil")
	}
}

func TestDestinationsTfactorRule(t *testing.T) {
	// Frequencies: b:8, c:4, d:1 out of 13. P_h = 8/13. With Tfactor 4 the
	// threshold is 2/13, so b and c qualify, d (1/13) does not.
	a, b, c, d := st(pk(0, 0)), st(pk(0, 1)), st(pk(0, 2)), st(pk(0, 3))
	var run []trace.State
	for i := 0; i < 8; i++ {
		run = append(run, a, b)
	}
	for i := 0; i < 4; i++ {
		run = append(run, a, c)
	}
	run = append(run, a, d)
	// Interleave so transitions come only from a: rebuild properly.
	m := New(2)
	for i := 0; i+1 < len(run); i += 2 {
		m.AddRun(run[i : i+2])
	}
	dests := m.Destinations(a.Key(), 4)
	if len(dests) != 2 {
		t.Fatalf("destinations = %d, want 2 (%+v)", len(dests), dests)
	}
	if dests[0].To != b.Key() || dests[1].To != c.Key() {
		t.Fatalf("wrong destinations: %+v", dests)
	}
	// Tfactor 1 keeps only the top edge; a huge Tfactor keeps all.
	if got := len(m.Destinations(a.Key(), 1)); got != 1 {
		t.Fatalf("Tfactor=1 destinations = %d, want 1", got)
	}
	if got := len(m.Destinations(a.Key(), 100)); got != 3 {
		t.Fatalf("Tfactor=100 destinations = %d, want 3", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := st(pk(0, 0)), st(pk(0, 1))
	m1 := Build(2, [][]trace.State{chain(a, b)})
	m2 := Build(2, [][]trace.State{chain(a, b), chain(b, a)})
	m1.Merge(m2)
	if m1.Node(a.Key()).Out[b.Key()] != 2 {
		t.Fatalf("merged freq = %d, want 2", m1.Node(a.Key()).Out[b.Key()])
	}
	if m1.Node(b.Key()).Out[a.Key()] != 1 {
		t.Fatal("merge dropped b→a")
	}
	m1.Merge(nil) // must not panic
}

func TestSerializeRoundTrip(t *testing.T) {
	a, b, c := st(pk(0, 0), pk(1, 1)), st(pk(0, 1)), st(pk(2, 2), pk(0, 0), pk(1, 3))
	m := Build(8, [][]trace.State{
		chain(a, b, c, a, b, a, c),
		chain(c, b, a),
	})
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Threads != 8 {
		t.Fatalf("Threads = %d", got.Threads)
	}
	if got.NumStates() != m.NumStates() {
		t.Fatalf("NumStates = %d, want %d", got.NumStates(), m.NumStates())
	}
	for _, k := range m.Keys() {
		want := m.Node(k)
		gn := got.Node(k)
		if gn == nil {
			t.Fatalf("state %q missing after round trip", k)
		}
		if gn.Total != want.Total || len(gn.Out) != len(want.Out) {
			t.Fatalf("node %q mismatch: %+v vs %+v", k, gn, want)
		}
		for to, f := range want.Out {
			if gn.Out[to] != f {
				t.Fatalf("edge %q→%q freq %d, want %d", k, to, gn.Out[to], f)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("Read accepted garbage")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("Read accepted empty input")
	}
	bad := append([]byte{}, magic[:]...)
	bad = append(bad, 99) // unsupported version
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("Read accepted unknown version")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/state_data"
	a, b := st(pk(0, 0)), st(pk(0, 1))
	m := Build(4, [][]trace.State{chain(a, b, a)})
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != 2 || got.Threads != 4 {
		t.Fatalf("loaded model wrong: states=%d threads=%d", got.NumStates(), got.Threads)
	}
}

func TestAnalyzerAcceptsBiasedModel(t *testing.T) {
	// One dominant edge and many rare ones per state: strongly guidable.
	states := make([]trace.State, 120)
	for i := range states {
		states[i] = st(pk(0, i))
	}
	var runs [][]trace.State
	for i := range states {
		next := states[(i+1)%len(states)]
		for r := 0; r < 40; r++ {
			runs = append(runs, chain(states[i], next)) // dominant
		}
		runs = append(runs, chain(states[i], states[(i+5)%len(states)]))
		runs = append(runs, chain(states[i], states[(i+7)%len(states)]))
	}
	m := Build(8, runs)
	rep := DefaultAnalyzer().Analyze(m)
	if !rep.Guidable {
		t.Fatalf("biased model rejected: %+v", rep)
	}
	if rep.Metric >= 50 {
		t.Fatalf("metric = %v, want < 50", rep.Metric)
	}
}

func TestAnalyzerRejectsUniformModel(t *testing.T) {
	// Every transition equally likely (the ssca2 shape): metric 100.
	states := make([]trace.State, 120)
	for i := range states {
		states[i] = st(pk(0, i))
	}
	var runs [][]trace.State
	for i := range states {
		for j := 1; j <= 3; j++ {
			runs = append(runs, chain(states[i], states[(i+j)%len(states)]))
		}
	}
	m := Build(8, runs)
	rep := DefaultAnalyzer().Analyze(m)
	if rep.Guidable {
		t.Fatalf("uniform model accepted: %+v", rep)
	}
	if rep.Metric != 100 {
		t.Fatalf("metric = %v, want 100", rep.Metric)
	}
}

func TestAnalyzerRejectsTinyModel(t *testing.T) {
	a, b := st(pk(0, 0)), st(pk(0, 1))
	m := Build(2, [][]trace.State{chain(a, b)})
	rep := DefaultAnalyzer().Analyze(m)
	if rep.Guidable {
		t.Fatal("2-state model accepted")
	}
	if rep.Reason == "" {
		t.Fatal("rejection must carry a reason")
	}
}

func TestGuideTableMembership(t *testing.T) {
	// a → b (common), a → c (rare). Table at Tfactor 4 should allow b's
	// participants from a, not c's.
	pa, pb, pc := pk(0, 0), pk(1, 1), pk(2, 2)
	a, b, c := st(pa), st(pb), st(pc)
	var runs [][]trace.State
	for i := 0; i < 20; i++ {
		runs = append(runs, chain(a, b))
	}
	runs = append(runs, chain(a, c))
	m := Build(2, runs)
	g := Compile(m, 4)
	if g.Tfactor() != 4 {
		t.Fatalf("Tfactor = %v", g.Tfactor())
	}
	if !g.Known(a.Key()) {
		t.Fatal("state a unknown in table")
	}
	if allowed, known := g.Allowed(a.Key(), pb); !allowed || !known {
		t.Fatal("pb should be allowed from a")
	}
	if allowed, _ := g.Allowed(a.Key(), pc); allowed {
		t.Fatal("pc should be blocked from a (low probability path)")
	}
	// Unknown state: always allowed, flagged unknown.
	if allowed, known := g.Allowed("bogus-key!", pc); !allowed || known {
		t.Fatal("unknown state must allow and report !known")
	}
	// Terminal states (no outbound edges) are not retained.
	if g.Known(b.Key()) {
		t.Fatal("terminal state should not be in compiled table")
	}
}

func TestExportJSON(t *testing.T) {
	a := st(pk(0, 6))            // {<a6>}
	bx := st(pk(1, 7), pk(0, 6)) // {<a6>, <b7>}
	m := Build(8, [][]trace.State{chain(a, bx, a, bx, a)})
	var buf bytes.Buffer
	if err := m.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Threads int `json:"threads"`
		States  []struct {
			State  string `json:"state"`
			Visits int64  `json:"visits"`
			Edges  []struct {
				To   string  `json:"to"`
				Prob float64 `json:"prob"`
			} `json:"edges"`
		} `json:"states"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Threads != 8 || len(decoded.States) != 2 {
		t.Fatalf("decoded: %+v", decoded)
	}
	found := false
	for _, s := range decoded.States {
		if s.State == "{<a6>, <b7>}" {
			found = true
		}
	}
	if !found {
		t.Fatalf("paper-notation state missing from JSON:\n%s", buf.String())
	}
}

func TestComputeStats(t *testing.T) {
	a, b, c := st(pk(0, 0)), st(pk(0, 1)), st(pk(0, 2))
	// a→b twice, a→c twice: uniform 2-way branch (entropy 1); b→a once.
	m := Build(4, [][]trace.State{chain(a, b, a, c), chain(a, c, a, b)})
	got := m.ComputeStats()
	if got.States != 3 {
		t.Fatalf("States = %d", got.States)
	}
	if got.Transitions != 6 {
		t.Fatalf("Transitions = %d", got.Transitions)
	}
	if got.Edges < 3 {
		t.Fatalf("Edges = %d", got.Edges)
	}
	if math.Abs(got.MeanEntropy-1) > 1e-9 {
		t.Fatalf("MeanEntropy = %v, want 1 (uniform branches)", got.MeanEntropy)
	}
	// SerializedBytes must match the real encoding exactly.
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if got.SerializedBytes != buf.Len() {
		t.Fatalf("SerializedBytes = %d, actual encoding = %d", got.SerializedBytes, buf.Len())
	}
	// A deterministic chain has zero entropy.
	det := Build(2, [][]trace.State{chain(a, b, a, b, a, b)})
	if e := det.ComputeStats().MeanEntropy; e != 0 {
		t.Fatalf("deterministic entropy = %v", e)
	}
}
