package model

import "fmt"

// Analyzer validates a model's fitness for guided execution (Section IV).
// The guidance metric is the percentage ratio of the number of transition
// states reachable under guidance (the Tfactor-thresholded destination set
// S') to the number reachable unguided (all outbound states S), summed over
// every state. A high metric means S ≈ S' — the bias guided execution needs
// simply does not exist (the paper's ssca2 at 72%/57%).
type Analyzer struct {
	// Tfactor is the destination-set threshold divisor (paper default 4).
	Tfactor float64

	// MaxMetric is the guidance-metric rejection threshold in percent.
	// The paper observes that above ~50 most transition states are high
	// probability and guidance cannot help.
	MaxMetric float64

	// MinStates rejects models with too few states to encode any usable
	// bias ("if the model contains too few states ... unfit").
	MinStates int
}

// DefaultAnalyzer returns an Analyzer with the paper's parameters. The
// state-count floor follows the paper's Table III, where the one rejected
// benchmark (ssca2, "model only consists few states") has 59 states while
// every accepted one has at least 445.
func DefaultAnalyzer() Analyzer {
	return Analyzer{Tfactor: 4, MaxMetric: 50, MinStates: 96}
}

// Report is the analyzer's verdict on a model.
type Report struct {
	States         int     // total states in the model (Table III)
	BranchStates   int     // states with at least one outbound edge
	GuidedStates   int     // Σ |S'| over all states
	UnguidedStates int     // Σ |S| over all states
	Metric         float64 // guidance metric percentage (Table I / Table V)
	Guidable       bool
	Reason         string // populated when !Guidable
}

// Analyze computes the guidance metric and the accept/reject decision.
func (a Analyzer) Analyze(m *TSA) Report {
	tf := a.Tfactor
	if tf <= 0 {
		tf = 4
	}
	r := Report{States: m.NumStates()}
	for _, k := range m.Keys() {
		all := m.Edges(k)
		if len(all) == 0 {
			continue
		}
		r.BranchStates++
		r.UnguidedStates += len(all)
		r.GuidedStates += len(m.destinations(k, tf))
	}
	if r.UnguidedStates > 0 {
		r.Metric = float64(r.GuidedStates) / float64(r.UnguidedStates) * 100
	}
	switch {
	case r.States < a.MinStates:
		r.Reason = fmt.Sprintf("model has only %d states (< %d): too little structure to bias", r.States, a.MinStates)
	case r.UnguidedStates == 0:
		r.Reason = "model has no transitions"
	case r.Metric > a.MaxMetric:
		r.Reason = fmt.Sprintf("guidance metric %.0f%% exceeds %.0f%%: transition probabilities are near-uniform", r.Metric, a.MaxMetric)
	default:
		r.Guidable = true
	}
	return r
}
