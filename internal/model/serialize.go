package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"gstm/internal/trace"
)

// Binary model format ("state_data" in the paper's artifact):
//
//	magic   "GSTM"                      4 bytes
//	version u8 (=1)
//	threads u32
//	nstates u32
//	keys    nstates × { u16 len, bytes }   (byte-sorted order)
//	edges   nstates × { u32 nedges, nedges × { u32 toIndex, u64 freq } }
//
// All integers are little-endian. Keys are indexed by their position in the
// key table so edges cost 12 bytes each.

var magic = [4]byte{'G', 'S', 'T', 'M'}

const formatVersion = 1

// Write serializes m to w in the binary model format.
func (m *TSA) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(formatVersion); err != nil {
		return err
	}
	keys := m.Keys()
	if err := writeU32(bw, uint32(m.Threads)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(keys))); err != nil {
		return err
	}
	index := make(map[trace.Key]uint32, len(keys))
	for i, k := range keys {
		index[k] = uint32(i)
		if len(k) > 0xffff {
			return fmt.Errorf("model: state key of %d bytes exceeds format limit", len(k))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(k))); err != nil {
			return err
		}
		if _, err := bw.WriteString(string(k)); err != nil {
			return err
		}
	}
	for _, k := range keys {
		n := m.nodes[k]
		if err := writeU32(bw, uint32(len(n.Out))); err != nil {
			return err
		}
		// Deterministic edge order: reuse Edges (sorted by freq then key).
		for _, e := range m.Edges(k) {
			to, ok := index[e.To]
			if !ok {
				return fmt.Errorf("model: edge to unknown state %q", e.To)
			}
			if err := writeU32(bw, to); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint64(e.Freq)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a model written by Write.
//
// Read is hardened against truncated and corrupt inputs: every decode path
// returns a wrapped error describing where decoding failed — it never
// panics and never silently succeeds on a short read. Corruption that a
// well-formed file cannot exhibit (duplicate state keys, edge counts
// exceeding the state count, frequencies overflowing int64) is rejected
// even when structurally decodable.
func Read(r io.Reader) (*TSA, error) {
	br := bufio.NewReader(r)
	var got [4]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("model: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("model: bad magic %q", got[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("model: reading format version: %w", err)
	}
	if ver != formatVersion {
		return nil, fmt.Errorf("model: unsupported format version %d", ver)
	}
	threads, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("model: reading thread count: %w", err)
	}
	const maxThreads = 1 << 20
	if threads > maxThreads {
		return nil, fmt.Errorf("model: thread count %d exceeds sanity limit", threads)
	}
	nstates, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("model: reading state count: %w", err)
	}
	const maxStates = 1 << 26
	if nstates > maxStates {
		return nil, fmt.Errorf("model: state count %d exceeds sanity limit", nstates)
	}
	// Grow incrementally rather than trusting the declared count: a corrupt
	// header must not be able to force a huge up-front allocation before
	// the (truncated) key table fails to decode.
	keys := make([]trace.Key, 0, min(nstates, 4096))
	seen := make(map[trace.Key]struct{}, min(nstates, 4096))
	for i := uint32(0); i < nstates; i++ {
		var klen uint16
		if err := binary.Read(br, binary.LittleEndian, &klen); err != nil {
			return nil, fmt.Errorf("model: reading key %d length: %w", i, err)
		}
		buf := make([]byte, klen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("model: reading key %d (%d bytes): %w", i, klen, err)
		}
		k := trace.Key(buf)
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("model: duplicate state key at index %d", i)
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	m := New(int(threads))
	for i := range keys {
		m.nodes[keys[i]] = &Node{Key: keys[i], Out: make(map[trace.Key]int64)}
	}
	for i := range keys {
		n := m.nodes[keys[i]]
		nedges, err := readU32(br)
		if err != nil {
			return nil, fmt.Errorf("model: reading edge count of state %d: %w", i, err)
		}
		if nedges > nstates {
			// A well-formed file has at most one edge per destination.
			return nil, fmt.Errorf("model: state %d edge count %d exceeds state count %d", i, nedges, nstates)
		}
		for e := uint32(0); e < nedges; e++ {
			to, err := readU32(br)
			if err != nil {
				return nil, fmt.Errorf("model: reading edge %d of state %d: %w", e, i, err)
			}
			if to >= nstates {
				return nil, fmt.Errorf("model: state %d edge %d index %d out of range", i, e, to)
			}
			var freq uint64
			if err := binary.Read(br, binary.LittleEndian, &freq); err != nil {
				return nil, fmt.Errorf("model: reading edge %d frequency of state %d: %w", e, i, err)
			}
			if freq > math.MaxInt64 {
				return nil, fmt.Errorf("model: state %d edge %d frequency %d overflows int64", i, e, freq)
			}
			if n.Total > math.MaxInt64-int64(freq) {
				return nil, fmt.Errorf("model: state %d outbound total overflows int64", i)
			}
			n.Out[keys[to]] += int64(freq)
			n.Total += int64(freq)
		}
	}
	return m, nil
}

// Save writes the model to path (the artifact's state_data file).
func (m *TSA) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model from path.
func Load(path string) (*TSA, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return m, nil
}

func writeU32(w io.Writer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
