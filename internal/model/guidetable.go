package model

import (
	"gstm/internal/trace"
	"gstm/internal/txid"
)

// GuideTable is the run-time form of a TSA, "cut down to exclude
// low-probability states and stored in an efficient bitwise structure"
// (Section VI). For every known state it precomputes the set of
// (transaction, thread) pairs that participate in any high-probability
// destination state; the guided-execution gate only performs two hash
// lookups per check.
type GuideTable struct {
	tfactor float64
	allowed map[trace.Key]map[txid.Packed]struct{}
}

// Compile builds the guide table for m under the given Tfactor (paper
// default 4; some machines need 6 per the artifact notes).
func Compile(m *TSA, tfactor float64) *GuideTable {
	if tfactor <= 0 {
		tfactor = 4
	}
	g := &GuideTable{
		tfactor: tfactor,
		allowed: make(map[trace.Key]map[txid.Packed]struct{}, m.NumStates()),
	}
	for _, k := range m.Keys() {
		dests := m.destinations(k, tfactor)
		if len(dests) == 0 {
			continue // terminal state: treated as unknown at run time
		}
		set := make(map[txid.Packed]struct{})
		for _, e := range dests {
			st, err := trace.ParseKey(e.To)
			if err != nil {
				continue // defensively skip malformed keys
			}
			for _, p := range st.Participants() {
				set[p] = struct{}{}
			}
		}
		g.allowed[k] = set
	}
	return g
}

// Tfactor returns the threshold divisor the table was compiled with.
func (g *GuideTable) Tfactor() float64 { return g.tfactor }

// NumStates returns the number of states retained in the compiled table.
func (g *GuideTable) NumStates() int { return len(g.allowed) }

// Known reports whether state k exists in the table. Unknown states never
// block a thread: training cannot capture all states, so execution is
// allowed to continue until the current state changes into a known one
// (Section V).
func (g *GuideTable) Known(k trace.Key) bool {
	_, ok := g.allowed[k]
	return ok
}

// Allowed reports whether pair p participates in any high-probability
// destination state of state k. The second result mirrors Known.
func (g *GuideTable) Allowed(k trace.Key, p txid.Packed) (allowed, known bool) {
	set, ok := g.allowed[k]
	if !ok {
		return true, false
	}
	_, in := set[p]
	return in, true
}
