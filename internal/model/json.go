package model

import (
	"encoding/json"
	"io"

	"gstm/internal/trace"
)

// jsonModel is the human-readable export schema used by
// `gstm-model -inspect -json`: states render in the paper's notation.
type jsonModel struct {
	Threads int         `json:"threads"`
	States  []jsonState `json:"states"`
}

type jsonState struct {
	State  string     `json:"state"`
	Visits int64      `json:"visits"`
	Edges  []jsonEdge `json:"edges,omitempty"`
}

type jsonEdge struct {
	To   string  `json:"to"`
	Freq int64   `json:"freq"`
	Prob float64 `json:"prob"`
}

// ExportJSON writes the model as indented JSON with states in the paper's
// {<a6>, <b7>} notation, for inspection and external tooling.
func (m *TSA) ExportJSON(w io.Writer) error {
	out := jsonModel{Threads: m.Threads}
	for _, k := range m.Keys() {
		st, err := trace.ParseKey(k)
		if err != nil {
			return err
		}
		js := jsonState{State: st.String(), Visits: m.Node(k).Total}
		for _, e := range m.Edges(k) {
			to, err := trace.ParseKey(e.To)
			if err != nil {
				return err
			}
			js.Edges = append(js.Edges, jsonEdge{To: to.String(), Freq: e.Freq, Prob: e.Prob})
		}
		out.States = append(out.States, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
