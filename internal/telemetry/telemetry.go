// Package telemetry is the runtime observability layer of the STM: always-on,
// low-overhead instrumentation threaded through both engines (tl2, libtm)
// and the guidance path, with a stable snapshot API and Prometheus/JSON/HTTP
// exporters.
//
// Design constraints, in order:
//
//  1. The record path must be cheap enough to leave on during the paper's
//     variance measurements: sharded cache-line-padded counters (one
//     uncontended atomic add), sampled latency timestamps (1 in SampleEvery
//     commits), and zero allocation anywhere on the record path.
//  2. Reads must not perturb writers: snapshots merge per-shard values with
//     plain atomic loads, taking no locks the record path touches.
//  3. Everything must be mergeable, so per-runtime metrics roll up into the
//     process-wide view served by the HTTP exporter (Gather).
//
// Each engine Runtime owns one Metrics, auto-registered in a process-wide
// registry; Gather merges every registered Metrics into the single Snapshot
// the /metrics endpoint serves.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gstm/internal/obs"
)

// SampleEvery is the commit-latency sampling period: one in every
// SampleEvery commits (per counter shard) has its commit and validation
// phases timed. Sampling keeps the two time.Now calls and the histogram
// update — the only non-trivial costs on the commit path — off all but
// 1/SampleEvery of commits, while a few hundred commits already give
// stable p99 estimates. 64 keeps the amortized cost under ~2ns per commit
// (the <5% budget on the shortest read-only transactions) and still yields
// thousands of samples on any run long enough for its tail to matter.
// Must be a power of two.
const SampleEvery = 64

// maxGateStates bounds the per-state gate table; arrivals in states beyond
// the cap are folded into the synthetic OverflowState entry so the hot path
// never grows the map unboundedly on adversarial workloads.
const maxGateStates = 512

// OverflowState is the synthetic state key that absorbs gate telemetry once
// maxGateStates distinct automaton states have been seen.
const OverflowState = "(other)"

// gateStateStats is the per-automaton-state gate telemetry. Plain atomics
// (not sharded): arrivals in any single state are already serialized by the
// workload far more than by the counter line.
type gateStateStats struct {
	visits  atomic.Uint64
	holds   atomic.Uint64
	escapes atomic.Uint64
}

// GateOutcome classifies one gate arrival.
type GateOutcome int

// Gate arrival outcomes.
const (
	// GatePass: the arrival proceeded without ever being delayed.
	GatePass GateOutcome = iota
	// GateHold: the arrival was delayed at least once, then allowed.
	GateHold
	// GateEscape: the arrival exhausted the K re-checks and was forced
	// through (the progress escape hatch).
	GateEscape
)

// Metrics is one instrumented component's telemetry: sharded counters,
// latency histograms, per-state gate telemetry and a bounded event ring.
// All record methods are safe for concurrent use and nil-safe, so optional
// holders (the guidance controller) can call through without a check.
type Metrics struct {
	label string

	// Transaction lifecycle counters (sharded by worker thread). Attempt
	// starts are not counted separately: every attempt ends in exactly one
	// of Commits or Aborts (budget exhaustion and cancellation are decided
	// after the final abort, before the next attempt), so Snapshot derives
	// Starts as their sum and the start path pays no atomic RMW at all.
	Commits             Counter // committed transactions
	Aborts              Counter // aborted attempts
	RetryBudgetExceeded Counter // transactions abandoned on a spent retry budget
	ContextCanceled     Counter // transactions abandoned on ctx cancellation
	WALUnavailable      Counter // operations refused because the shard's WAL is failed
	Parked              Counter // blocking transactions parked on their read set (tx.Retry)

	// Cross-shard commit-protocol counters. A k-shard transaction counts
	// once on every participant shard's Metrics, so the Gather aggregate
	// counts participant-commits, not transactions — divide by the mean
	// participant count for a transaction rate.
	XShardCommits Counter // cross-shard sub-transactions published atomically
	XShardAborts  Counter // cross-shard prepare rounds aborted all-or-nothing

	// AbortsByCause breaks Aborts down by the obs taxonomy (index =
	// obs.Cause): the same labels the span tracer stamps on captured
	// spans, so /metrics and /debug/trace agree on why attempts died.
	AbortsByCause [obs.NumCauses]Counter

	// Commit-path micro-counters: the engines' hot-path diagnostics added
	// with the small-vector write set and the GV4 clock (see DESIGN.md
	// "Commit-path deviations").
	ClockCASFallbacks    Counter // GV4 pass-on-failure: commits that adopted a winner's clock value
	WriteSetSpills       Counter // write sets that outgrew the inline fast path
	FilterFalsePositives Counter // write-set filter hits that found no entry
	StripeCollisions     Counter // striped mode: distinct written locations sharing one stripe lock

	// Guidance-gate decision counters.
	GatePassed  Counter
	GateHeld    Counter
	GateEscaped Counter

	// Watchdog transitions.
	WatchdogTrips  Counter
	WatchdogRearms Counter

	// Durability counters (internal/wal). Appends and bytes count records
	// accepted into the log buffer; fsyncs count physical fsync(2) calls
	// (group commit batches many appends per fsync); snapshots count
	// completed snapshot+truncate cycles. RecoveryReplayed counts records
	// re-applied during crash recovery and RecoveryNanos the wall time it
	// took, both recorded once at startup.
	WALAppends       Counter
	WALFsyncs        Counter
	WALBytes         Counter
	WALSnapshots     Counter
	RecoveryReplayed Counter
	RecoveryNanos    Counter

	// Latency histograms (nanosecond observations).
	CommitLatency     Histogram // whole commit protocol, sampled 1/SampleEvery
	ValidationLatency Histogram // read-set validation when it ran, same samples
	GateHoldTime      Histogram // time a held arrival spent at the gate
	TimeToFirstCommit Histogram // Metrics creation (or Reset) → first commit

	// Events is the bounded ring of recent diagnostic events.
	Events *Ring

	gateStates sync.Map // state key (string) → *gateStateStats
	gateCount  atomic.Int64

	firstDone atomic.Bool
	markMu    sync.Mutex
	mark      time.Time
}

// Process-wide registry of every live Metrics, merged by Gather for the
// exporter endpoint.
var registry struct {
	mu   sync.Mutex
	list []*Metrics
}

// New returns a fresh Metrics labeled for diagnostics (e.g. "tl2",
// "libtm") and registers it in the process-wide registry served by Gather.
func New(label string) *Metrics {
	m := NewDetached(label)
	registry.mu.Lock()
	registry.list = append(registry.list, m)
	registry.mu.Unlock()
	return m
}

// NewDetached returns a Metrics that is NOT merged into Gather — for tests
// and benchmarks that want isolation from the process-wide view.
func NewDetached(label string) *Metrics {
	m := &Metrics{label: label, Events: NewRing(DefaultRingCapacity)}
	m.mark = time.Now()
	return m
}

// Label returns the diagnostic label given at creation.
func (m *Metrics) Label() string {
	if m == nil {
		return ""
	}
	return m.label
}

// Gather merges every registered Metrics into one process-wide Snapshot —
// what the /metrics endpoint of the exporter serves. Snapshots of Metrics
// sharing a registration label are first merged into one component
// snapshot each; the aggregate carries the per-label breakdown in
// Components (sorted by label) so sharded deployments can report
// per-shard series alongside the process-wide totals.
func Gather() Snapshot {
	registry.mu.Lock()
	list := make([]*Metrics, len(registry.list))
	copy(list, registry.list)
	registry.mu.Unlock()

	out := Snapshot{Label: "all", TakenAt: time.Now()}
	byLabel := make(map[string]*Snapshot)
	var labels []string
	for _, m := range list {
		snap := m.Snapshot()
		out.Merge(snap)
		comp, ok := byLabel[snap.Label]
		if !ok {
			labels = append(labels, snap.Label)
			c := Snapshot{Label: snap.Label, TakenAt: out.TakenAt}
			comp = &c
			byLabel[snap.Label] = comp
		}
		comp.Merge(snap)
	}
	sort.Strings(labels)
	for _, l := range labels {
		comp := byLabel[l]
		comp.Events = nil // the aggregate ring already has them
		out.Components = append(out.Components, *comp)
	}
	out.Gauges = gatherGauges()
	return out
}

// TxStart marks one transaction attempt start by thread and reports
// whether this attempt's commit should be latency-sampled (one in
// SampleEvery commits per shard). The decision is a single plain atomic
// load of the shard's commit count — a cache line the calling thread
// already owns — so an unsampled start costs no locked RMW. When a sampled
// attempt aborts, the retry is sampled again until one commits, which
// keeps the effective commit sampling rate at 1/SampleEvery.
func (m *Metrics) TxStart(thread uint64) bool {
	if m == nil {
		return false
	}
	return m.Commits.shardLoad(thread)&(SampleEvery-1) == SampleEvery-1
}

// TxCommit records one committed transaction. The first commit after
// creation or Reset also records the time-to-first-commit sample.
func (m *Metrics) TxCommit(thread uint64) {
	if m == nil {
		return
	}
	m.Commits.Inc(thread)
	if !m.firstDone.Load() && m.firstDone.CompareAndSwap(false, true) {
		m.markMu.Lock()
		mark := m.mark
		m.markMu.Unlock()
		m.TimeToFirstCommit.Observe(thread, time.Since(mark))
	}
}

// TxAbort records one aborted attempt with its taxonomy cause.
func (m *Metrics) TxAbort(thread uint64, cause obs.Cause) {
	if m == nil {
		return
	}
	m.Aborts.Inc(thread)
	if cause >= obs.NumCauses {
		cause = obs.CauseNone
	}
	m.AbortsByCause[cause].Inc(thread)
}

// WALRefused records an operation refused because the write-ahead log is
// in a terminal failure state (the serving layer's StatusUnavailable).
func (m *Metrics) WALRefused(thread uint64) {
	if m == nil {
		return
	}
	m.WALUnavailable.Inc(thread)
}

// TxParked records one blocking transaction parking on its read set after
// tx.Retry: the goroutine is about to sleep until a commit wakes it (or its
// park context ends).
func (m *Metrics) TxParked(thread uint64) {
	if m == nil {
		return
	}
	m.Parked.Inc(thread)
}

// TxBudgetExceeded records a transaction abandoned on a spent retry budget.
func (m *Metrics) TxBudgetExceeded(thread uint64) {
	if m == nil {
		return
	}
	m.RetryBudgetExceeded.Inc(thread)
	m.Events.Record(KindBudgetExhausted, "", "")
}

// TxCanceled records a transaction abandoned on context cancellation.
func (m *Metrics) TxCanceled(thread uint64) {
	if m == nil {
		return
	}
	m.ContextCanceled.Inc(thread)
	m.Events.Record(KindContextCanceled, "", "")
}

// ObserveCommit records a sampled commit's protocol latency and, when the
// commit ran read-set validation, the validation latency.
func (m *Metrics) ObserveCommit(thread uint64, total, validation time.Duration, validated bool) {
	if m == nil {
		return
	}
	m.CommitLatency.Observe(thread, total)
	if validated {
		m.ValidationLatency.Observe(thread, validation)
	}
}

// GateArrival records one guidance-gate decision: the aggregate outcome
// counter, the per-state visit/hold/escape tally under the automaton state
// current at arrival, the hold-time sample for delayed arrivals, and a ring
// event for escapes (the diagnostic signature of a stale model).
func (m *Metrics) GateArrival(state string, outcome GateOutcome, thread uint64, hold time.Duration) {
	if m == nil {
		return
	}
	switch outcome {
	case GateHold:
		m.GateHeld.Inc(thread)
	case GateEscape:
		m.GateEscaped.Inc(thread)
		m.Events.Record(KindGateEscape, state, "")
	default:
		m.GatePassed.Inc(thread)
	}
	if hold > 0 {
		m.GateHoldTime.Observe(thread, hold)
	}
	st := m.gateState(state)
	st.visits.Add(1)
	switch outcome {
	case GateHold:
		st.holds.Add(1)
	case GateEscape:
		st.escapes.Add(1)
	}
}

// gateState returns the stats cell for state, folding new states into
// OverflowState once the cap is reached. The double-checked LoadOrStore
// keeps the steady-state path to one lock-free map read.
func (m *Metrics) gateState(state string) *gateStateStats {
	if state == "" {
		state = "(bootstrap)"
	}
	if v, ok := m.gateStates.Load(state); ok {
		return v.(*gateStateStats)
	}
	if m.gateCount.Load() >= maxGateStates && state != OverflowState {
		return m.gateState(OverflowState)
	}
	v, loaded := m.gateStates.LoadOrStore(state, &gateStateStats{})
	if !loaded {
		m.gateCount.Add(1)
	}
	return v.(*gateStateStats)
}

// WatchdogTrip records a guidance-watchdog trip with its reason.
func (m *Metrics) WatchdogTrip(state, reason string) {
	if m == nil {
		return
	}
	m.WatchdogTrips.Inc(0)
	m.Events.Record(KindWatchdogTrip, state, reason)
}

// WatchdogRearm records a watchdog re-arm after cooldown.
func (m *Metrics) WatchdogRearm(state string) {
	if m == nil {
		return
	}
	m.WatchdogRearms.Inc(0)
	m.Events.Record(KindWatchdogRearm, state, "")
}

// Snapshot returns a point-in-time view of this Metrics. Safe to call
// while recording continues; the snapshot is internally consistent per
// metric but not across metrics (monitoring semantics).
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Label:                m.label,
		TakenAt:              time.Now(),
		Commits:              m.Commits.Load(),
		Aborts:               m.Aborts.Load(),
		RetryBudgetExceeded:  m.RetryBudgetExceeded.Load(),
		ContextCanceled:      m.ContextCanceled.Load(),
		WALUnavailable:       m.WALUnavailable.Load(),
		Parked:               m.Parked.Load(),
		XShardCommits:        m.XShardCommits.Load(),
		XShardAborts:         m.XShardAborts.Load(),
		ClockCASFallbacks:    m.ClockCASFallbacks.Load(),
		WriteSetSpills:       m.WriteSetSpills.Load(),
		FilterFalsePositives: m.FilterFalsePositives.Load(),
		StripeCollisions:     m.StripeCollisions.Load(),
		GatePassed:           m.GatePassed.Load(),
		GateHeld:             m.GateHeld.Load(),
		GateEscaped:          m.GateEscaped.Load(),
		WatchdogTrips:        m.WatchdogTrips.Load(),
		WatchdogRearms:       m.WatchdogRearms.Load(),
		WALAppends:           m.WALAppends.Load(),
		WALFsyncs:            m.WALFsyncs.Load(),
		WALBytes:             m.WALBytes.Load(),
		WALSnapshots:         m.WALSnapshots.Load(),
		RecoveryReplayed:     m.RecoveryReplayed.Load(),
		RecoveryNanos:        m.RecoveryNanos.Load(),
		CommitLatency:        m.CommitLatency.Snapshot(),
		ValidationLatency:    m.ValidationLatency.Snapshot(),
		GateHoldTime:         m.GateHoldTime.Snapshot(),
		TimeToFirstCommit:    m.TimeToFirstCommit.Snapshot(),
		Events:               m.Events.Snapshot(),
	}
	// Derived, not counted: every finished attempt committed or aborted, so
	// their sum is the attempt-start total (in-flight attempts show up on
	// the next scrape — fine for a monotone monitoring counter).
	s.Starts = s.Commits + s.Aborts
	s.AbortsByCause = make([]uint64, obs.NumCauses)
	for i := range m.AbortsByCause {
		s.AbortsByCause[i] = m.AbortsByCause[i].Load()
	}
	m.gateStates.Range(func(k, v any) bool {
		st := v.(*gateStateStats)
		s.GateStates = append(s.GateStates, GateStateSnapshot{
			State:   k.(string),
			Visits:  st.visits.Load(),
			Holds:   st.holds.Load(),
			Escapes: st.escapes.Load(),
		})
		return true
	})
	sort.Slice(s.GateStates, func(i, j int) bool {
		if s.GateStates[i].Visits != s.GateStates[j].Visits {
			return s.GateStates[i].Visits > s.GateStates[j].Visits
		}
		return s.GateStates[i].State < s.GateStates[j].State
	})
	return s
}

// Reset zeroes all counters, histograms, gate-state telemetry and the
// event ring, and restarts the time-to-first-commit clock. Intended between
// measurement phases; concurrent recording races benignly.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	for _, c := range []*Counter{
		&m.Commits, &m.Aborts, &m.RetryBudgetExceeded,
		&m.ContextCanceled, &m.WALUnavailable, &m.Parked,
		&m.XShardCommits, &m.XShardAborts, &m.ClockCASFallbacks,
		&m.WriteSetSpills,
		&m.FilterFalsePositives, &m.StripeCollisions,
		&m.GatePassed, &m.GateHeld, &m.GateEscaped,
		&m.WatchdogTrips, &m.WatchdogRearms,
		&m.WALAppends, &m.WALFsyncs, &m.WALBytes, &m.WALSnapshots,
		&m.RecoveryReplayed, &m.RecoveryNanos,
	} {
		c.reset()
	}
	for i := range m.AbortsByCause {
		m.AbortsByCause[i].reset()
	}
	for _, h := range []*Histogram{
		&m.CommitLatency, &m.ValidationLatency, &m.GateHoldTime, &m.TimeToFirstCommit,
	} {
		h.reset()
	}
	m.Events.reset()
	m.gateStates.Range(func(k, _ any) bool {
		m.gateStates.Delete(k)
		return true
	})
	m.gateCount.Store(0)
	m.markMu.Lock()
	m.mark = time.Now()
	m.markMu.Unlock()
	m.firstDone.Store(false)
}
