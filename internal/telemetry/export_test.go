package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"gstm/internal/obs"
	"strconv"
	"strings"
	"testing"
	"time"
)

func sampleSnapshot() Snapshot {
	m := NewDetached("test")
	for i := 0; i < 20; i++ {
		m.TxStart(uint64(i))
		m.TxCommit(uint64(i))
	}
	m.TxAbort(0, obs.CauseReadValidation)
	m.TxBudgetExceeded(0)
	m.ObserveCommit(0, 5*time.Microsecond, time.Microsecond, true)
	m.ObserveCommit(1, 50*time.Microsecond, 2*time.Microsecond, true)
	m.GateArrival("s0/w2", GatePass, 0, 0)
	m.GateArrival("s0/w2", GateHold, 1, 3*time.Microsecond)
	m.GateArrival(`s1"quoted\`, GateEscape, 2, 8*time.Microsecond)
	m.WatchdogTrip("s0/w2", "escape-rate 0.80>0.25")
	m.StripeCollisions.Inc(0)
	m.StripeCollisions.Inc(1)
	m.StripeCollisions.Inc(1)
	return m.Snapshot()
}

func TestWritePrometheusFamilies(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"gstm_tx_starts_total 21", // derived: 20 commits + 1 abort
		"gstm_tx_commits_total 20",
		"gstm_tx_aborts_total 1",
		"gstm_tx_retry_budget_exceeded_total 1",
		"gstm_tx_context_canceled_total 0",
		"gstm_stripe_collisions_total 3",
		"gstm_watchdog_trips_total 1",
		`gstm_gate_decisions_total{outcome="passed"} 1`,
		`gstm_gate_decisions_total{outcome="held"} 1`,
		`gstm_gate_decisions_total{outcome="escaped"} 1`,
		"gstm_commit_latency_seconds_count 2",
		"gstm_validation_latency_seconds_count 2",
		"gstm_gate_hold_seconds_count 2",
		"gstm_time_to_first_commit_seconds_count 1",
		`gstm_gate_state_visits_total{state="s0/w2"} 2`,
		`gstm_gate_state_holds_total{state="s0/w2"} 1`,
		`gstm_gate_state_escapes_total{state="s1\"quoted\\"} 1`,
		`_bucket{le="+Inf"}`,
		"# TYPE gstm_commit_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
}

func TestWritePrometheusComponentSeries(t *testing.T) {
	s := sampleSnapshot()
	s.Components = []Snapshot{
		{Label: "shard0", Commits: 7, Aborts: 2, GatePassed: 5, GateHeld: 1, GateEscaped: 0},
		{Label: "shard1", Commits: 9, Aborts: 0, GatePassed: 8, GateHeld: 0, GateEscaped: 1},
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gstm_component_tx_commits_total{component="shard0"} 7`,
		`gstm_component_tx_commits_total{component="shard1"} 9`,
		`gstm_component_tx_aborts_total{component="shard0"} 2`,
		`gstm_component_gate_decisions_total{component="shard0",outcome="held"} 1`,
		`gstm_component_gate_decisions_total{component="shard1",outcome="escaped"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
}

// TestPrometheusHistogramCumulative checks the textbook histogram
// invariants: bucket counts are cumulative and non-decreasing, and the
// +Inf bucket equals _count.
func TestPrometheusHistogramCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var infCount, totalCount uint64
	sawBucket := false
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "gstm_commit_latency_seconds_bucket{le=\"+Inf\"}"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &infCount)
		case strings.HasPrefix(line, "gstm_commit_latency_seconds_bucket"):
			sawBucket = true
			var n uint64
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &n)
			if n < prev {
				t.Fatalf("bucket counts not cumulative: %d after %d in %q", n, prev, line)
			}
			prev = n
		case strings.HasPrefix(line, "gstm_commit_latency_seconds_count"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &totalCount)
		}
	}
	if !sawBucket {
		t.Fatal("no finite buckets emitted")
	}
	if infCount != totalCount || totalCount != 2 {
		t.Fatalf("+Inf bucket %d != count %d (want 2)", infCount, totalCount)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v\n%s", err, buf.String())
	}
	if back.Commits != s.Commits || back.Aborts != s.Aborts {
		t.Fatalf("round-trip lost counters: %+v", back)
	}
	if back.CommitLatency.Count != s.CommitLatency.Count {
		t.Fatalf("round-trip lost histogram: %+v", back.CommitLatency)
	}
	if len(back.GateStates) != len(s.GateStates) {
		t.Fatalf("round-trip lost gate states: %+v", back.GateStates)
	}
	if len(back.Events) != len(s.Events) {
		t.Fatalf("round-trip lost events: %+v", back.Events)
	}
}

func TestSnapshotMergeCounters(t *testing.T) {
	a, b := sampleSnapshot(), sampleSnapshot()
	a.Merge(b)
	if a.Commits != 40 || a.Aborts != 2 {
		t.Fatalf("merged commits/aborts = %d/%d", a.Commits, a.Aborts)
	}
	if a.CommitLatency.Count != 4 {
		t.Fatalf("merged commit-latency count = %d", a.CommitLatency.Count)
	}
	if len(a.GateStates) != 2 || a.GateStates[0].Visits != 4 {
		t.Fatalf("merged gate states = %+v", a.GateStates)
	}
	// Each snapshot carries budget-exhausted + gate-escape + trip = 3 events.
	if len(a.Events) != 6 {
		t.Fatalf("merged events = %d, want 6", len(a.Events))
	}
}

func TestFormatSeconds(t *testing.T) {
	for _, tc := range []struct {
		v float64
	}{{0}, {1e-9}, {0.000005}, {1.5}, {60}} {
		s := formatSeconds(tc.v)
		got, err := strconv.ParseFloat(s, 64)
		if err != nil || got != tc.v {
			t.Fatalf("formatSeconds(%v) = %q (parse: %v %v)", tc.v, s, got, err)
		}
	}
}

type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.n -= len(p)
	if f.n < 0 {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestWritePrometheusPropagatesWriteError(t *testing.T) {
	if err := WritePrometheus(&failAfter{n: 64}, sampleSnapshot()); err == nil {
		t.Fatal("want write error, got nil")
	}
}
