package telemetry

import "sync/atomic"

// NumShards is the number of cache-line-padded shards per Counter. Sixteen
// covers the thread counts the experiments run (8 and 16 workers) with at
// most two threads folding onto one shard, and keeps a Counter at 1KB.
// Must be a power of two.
const NumShards = 16

// counterShard is one cache line's worth of counter: the padding keeps
// adjacent shards from false-sharing, which is the whole point of the type —
// an un-padded [16]atomic.Uint64 would put eight shards on one line and
// serialize the "independent" writers through the cache-coherence protocol.
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotone event counter sharded by worker thread. Writers
// call Inc/Add with their thread number (any value — it is folded onto a
// shard by masking); readers merge all shards with Load. The zero value is
// ready for use.
//
// The counter is eventually consistent: Load observes each shard with a
// separate atomic load, so a sum taken while writers run may miss in-flight
// increments, which is fine for monitoring (the value is monotone and
// catches up on the next scrape).
type Counter struct {
	shards [NumShards]counterShard
}

// Inc adds one to the shard selected by thread and returns the new
// shard-local count.
func (c *Counter) Inc(thread uint64) uint64 {
	return c.shards[thread&(NumShards-1)].n.Add(1)
}

// shardLoad returns the shard-local count for thread without modifying it:
// a plain atomic load of a cache line the calling thread usually owns, so
// it is far cheaper than an Inc (no locked read-modify-write).
func (c *Counter) shardLoad(thread uint64) uint64 {
	return c.shards[thread&(NumShards-1)].n.Load()
}

// Add adds n to the shard selected by thread.
func (c *Counter) Add(thread, n uint64) {
	c.shards[thread&(NumShards-1)].n.Add(n)
}

// Load returns the sum over all shards.
func (c *Counter) Load() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// reset zeroes every shard. Concurrent increments race benignly (they land
// before or after the zeroing, never corrupt).
func (c *Counter) reset() {
	for i := range c.shards {
		c.shards[i].n.Store(0)
	}
}
