package telemetry

import (
	"sync"
	"time"
)

// Event kinds recorded in the ring buffer.
const (
	KindWatchdogTrip    = "watchdog-trip"
	KindWatchdogRearm   = "watchdog-rearm"
	KindGateEscape      = "gate-escape"
	KindBudgetExhausted = "retry-budget-exhausted"
	KindContextCanceled = "context-canceled"
)

// Event is one entry of the bounded event ring: a rare, diagnostic runtime
// occurrence (watchdog trip, gate escape, abandoned transaction) with
// enough context to answer "what was the system doing just before".
type Event struct {
	// Seq is the event's process-order sequence number within its ring;
	// gaps after a wrap reveal how many events were overwritten.
	Seq uint64 `json:"seq"`

	// At is the wall-clock time the event was recorded.
	At time.Time `json:"at"`

	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`

	// State is the guidance automaton state key current at the event, or
	// empty when no state applies (engine-level events).
	State string `json:"state,omitempty"`

	// Detail is a human-readable elaboration (e.g. a watchdog trip reason).
	Detail string `json:"detail,omitempty"`
}

// DefaultRingCapacity is the event ring size used by NewMetrics.
const DefaultRingCapacity = 256

// Ring is a fixed-capacity, overwrite-oldest event buffer, safe for
// concurrent use. Recording is mutex-guarded: ring events are rare (trips,
// escapes, abandonments), so a lock costs nothing measurable and keeps the
// overwrite arithmetic trivially correct.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	seq uint64
}

// NewRing returns a ring holding the most recent n events (n <= 0 selects
// DefaultRingCapacity).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Record appends an event, overwriting the oldest once full. Nil-safe.
func (r *Ring) Record(kind, state, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ev := Event{Seq: r.seq, At: time.Now(), Kind: kind, State: state, Detail: detail}
	r.seq++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[ev.Seq%uint64(cap(r.buf))] = ev
	}
	r.mu.Unlock()
}

// Snapshot returns the buffered events oldest-first. Nil-safe.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	// Full ring: oldest entry sits at seq % cap.
	start := int(r.seq % uint64(cap(r.buf)))
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// reset discards all buffered events and restarts the sequence.
func (r *Ring) reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.seq = 0
	r.mu.Unlock()
}
