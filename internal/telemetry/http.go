package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
)

// Handler returns the telemetry endpoint: an http.Handler serving
//
//	/metrics     — Prometheus text exposition of src()
//	/debug/vars  — expvar-shaped JSON: cmdline, memstats and the snapshot
//	/debug/pprof — the standard net/http/pprof profile endpoints
//
// src is called per request; pass Gather for the process-wide view or a
// specific (*Metrics).Snapshot for one component.
func Handler(src func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, src())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"cmdline":  os.Args,
			"memstats": ms,
			"gstm":     src(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry endpoint on addr (":0" picks a free port) and
// returns the server and its bound address. The server runs until Close or
// Shutdown; serving errors after startup are dropped (the endpoint is
// auxiliary to the workload, never the other way round).
func Serve(addr string, src func() Snapshot) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// Server is a running telemetry endpoint: the underlying http.Server plus
// the address it actually bound (which differs from the requested one for
// ":0").
type Server struct {
	*http.Server
	BoundAddr net.Addr
}

// ServeAddr starts the process-wide telemetry endpoint (backed by Gather)
// on addr. It is the one-call form the -metrics-addr command-line flags use.
func ServeAddr(addr string) (*Server, error) {
	srv, bound, err := Serve(addr, Gather)
	if err != nil {
		return nil, err
	}
	return &Server{Server: srv, BoundAddr: bound}, nil
}
