package telemetry

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
)

// Mount is an extra route served by the telemetry endpoint next to the
// standard ones — the server uses it to expose /debug/trace (the variance
// observatory) on the same listener as /metrics.
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Handler returns the telemetry endpoint: an http.Handler serving
//
//	/metrics     — Prometheus text exposition of src()
//	/debug/vars  — expvar-shaped JSON: cmdline, memstats and the snapshot
//	/debug/pprof — the standard net/http/pprof profile endpoints
//
// plus any extra mounts. src is called per request; pass Gather for the
// process-wide view or a specific (*Metrics).Snapshot for one component.
func Handler(src func() Snapshot, mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	for _, m := range mounts {
		if m.Pattern != "" && m.Handler != nil {
			mux.Handle(m.Pattern, m.Handler)
		}
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, src())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"cmdline":  os.Args,
			"memstats": ms,
			"gstm":     src(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the telemetry endpoint on addr (":0" picks a free port) and
// returns the server and its bound address. The server runs until Close or
// Shutdown; serving errors after startup are dropped (the endpoint is
// auxiliary to the workload, never the other way round).
func Serve(addr string, src func() Snapshot) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// Server is a running telemetry endpoint: the underlying http.Server plus
// the address it actually bound (which differs from the requested one for
// ":0"). Stop it with Close (immediate) or Shutdown (graceful).
type Server struct {
	srv       *http.Server
	BoundAddr net.Addr

	inflight sync.WaitGroup // open scrapes, for Shutdown's drain
}

// ServeAddr starts the process-wide telemetry endpoint (backed by Gather)
// on addr, with any extra mounts served from the same listener. It is the
// one-call form the -metrics-addr command-line flags use.
func ServeAddr(addr string, mounts ...Mount) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{BoundAddr: ln.Addr()}
	inner := Handler(Gather, mounts...)
	s.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		inner.ServeHTTP(w, r)
	})}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the endpoint immediately, dropping in-flight scrapes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops the endpoint gracefully: the listener closes at once (no
// new scrapes), then Shutdown waits for every in-flight scrape to finish
// writing — or for ctx to expire, whichever comes first, in which case the
// remaining connections are dropped and ctx.Err() is returned. Drained
// this way, the port is safe to rebind immediately; tests and the
// gstm-server drain sequence rely on that.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		_ = s.srv.Close()
		return ctx.Err()
	}
}
