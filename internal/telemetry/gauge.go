package telemetry

import (
	"sort"
	"sync"
)

// Gauges are point-in-time readings (queue depths, backlogs) sampled at
// scrape time rather than counted on a hot path: a component registers a
// closure and the exporter calls it during Gather. Unlike Counters they
// are not owned by a Metrics — a gauge usually spans one (the acker's
// backlog belongs to the server, not any shard's engine) — so they live in
// their own process-wide registry keyed by (name, component).

// GaugeSample is one evaluated gauge reading.
type GaugeSample struct {
	Name      string  `json:"name"`
	Component string  `json:"component,omitempty"`
	Value     float64 `json:"value"`
}

type gaugeEntry struct {
	name      string
	component string
	fn        func() float64
}

var gaugeReg struct {
	mu   sync.Mutex
	seq  int
	list map[int]gaugeEntry
}

// RegisterGauge registers a scrape-time gauge under a Prometheus-style
// name (e.g. "gstm_wal_queue_depth") with an optional component label.
// fn is called on every Gather and must be safe for concurrent use. The
// returned function unregisters the gauge; components with bounded
// lifetimes (a server under test) must call it on shutdown or their dead
// closures keep being scraped.
func RegisterGauge(name, component string, fn func() float64) (unregister func()) {
	gaugeReg.mu.Lock()
	defer gaugeReg.mu.Unlock()
	if gaugeReg.list == nil {
		gaugeReg.list = make(map[int]gaugeEntry)
	}
	id := gaugeReg.seq
	gaugeReg.seq++
	gaugeReg.list[id] = gaugeEntry{name: name, component: component, fn: fn}
	return func() {
		gaugeReg.mu.Lock()
		delete(gaugeReg.list, id)
		gaugeReg.mu.Unlock()
	}
}

// gatherGauges evaluates every registered gauge, sorted by (name,
// component) for deterministic export. The closures run outside the
// registry lock's critical section would be nicer, but they are cheap
// reads by contract and scrapes are rare.
func gatherGauges() []GaugeSample {
	gaugeReg.mu.Lock()
	defer gaugeReg.mu.Unlock()
	if len(gaugeReg.list) == 0 {
		return nil
	}
	out := make([]GaugeSample, 0, len(gaugeReg.list))
	for _, e := range gaugeReg.list {
		out = append(out, GaugeSample{Name: e.name, Component: e.component, Value: e.fn()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Component < out[j].Component
	})
	return out
}
