package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-bucketed latency histogram with a fixed HDR-style bucket layout:
// values (nanoseconds) map to buckets whose width grows geometrically, with
// subCount sub-buckets per power of two for ≤25% relative bucket width.
// The layout is identical for every Histogram, so histograms merge by
// adding bucket counts — no rebinning, no allocation on the record path.
const (
	subBits  = 2
	subCount = 1 << subBits // sub-buckets per octave

	// numBuckets caps the representable range: the last bucket starts at
	// 7<<33 ns ≈ 60s and absorbs everything longer. STM commit latencies
	// are ns–ms; 60s headroom covers even pathological gate holds.
	numBuckets = 140

	// histShards is the record-path sharding. Latency observations are
	// sampled (see Metrics.TxStart), so contention is far below the raw
	// counters' and four shards suffice.
	histShards = 4
)

// bucketOf maps a non-negative nanosecond value to its bucket index.
// Values 0..3 get exact buckets; beyond that, bucket i covers
// [lower(i), lower(i+1)) with lower(i) = (subCount + i%subCount) << (i/subCount - 1).
func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(v) - subBits - 1
	idx := exp*subCount + int(v>>uint(exp)) // v>>exp ∈ [subCount, 2*subCount)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketLow returns the inclusive lower bound (ns) of bucket i.
func bucketLow(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	exp := i/subCount - 1
	mant := uint64(subCount + i%subCount)
	return mant << uint(exp)
}

// bucketHigh returns the exclusive upper bound (ns) of bucket i, which is
// the next bucket's lower bound. The last bucket is open-ended; doubling
// its lower bound keeps quantile estimates finite while still mapping back
// into the last bucket when snapshots are re-binned for merging.
func bucketHigh(i int) uint64 {
	if i >= numBuckets-1 {
		return 2 * bucketLow(numBuckets-1)
	}
	return bucketLow(i + 1)
}

// histShard is one shard of a Histogram. Trailing fields pad the shard's
// tail so adjacent shards' hot counters do not share a line.
type histShard struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	_      [40]byte
}

// Histogram is a mergeable, allocation-free latency histogram sharded by
// worker thread. The zero value is ready for use. Negative durations clamp
// to zero.
type Histogram struct {
	shards [histShards]histShard
}

// Observe records one duration on the shard selected by thread.
func (h *Histogram) Observe(thread uint64, d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	s := &h.shards[thread&(histShards-1)]
	s.counts[bucketOf(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot merges all shards into a point-in-time view with quantile
// estimates. Safe to call while writers run.
func (h *Histogram) Snapshot() HistSnapshot {
	var merged [numBuckets]uint64
	var snap HistSnapshot
	var sum uint64
	for i := range h.shards {
		s := &h.shards[i]
		for b := range merged {
			merged[b] += s.counts[b].Load()
		}
		snap.Count += s.count.Load()
		sum += s.sum.Load()
		if m := s.max.Load(); m > uint64(snap.Max) {
			snap.Max = time.Duration(m)
		}
	}
	snap.Sum = time.Duration(sum)
	// Quantiles from the merged buckets. The per-bucket counter sum may
	// momentarily exceed snap.Count under concurrent writers (counts are
	// bumped before count); re-total so cumulative walks are consistent.
	var total uint64
	for _, n := range merged {
		total += n
	}
	if total == 0 {
		return snap
	}
	snap.Count = total
	snap.P50 = quantile(&merged, total, 0.50, snap.Max)
	snap.P95 = quantile(&merged, total, 0.95, snap.Max)
	snap.P99 = quantile(&merged, total, 0.99, snap.Max)
	for b, n := range merged {
		if n > 0 {
			snap.Buckets = append(snap.Buckets, HistBucket{
				Le:    time.Duration(bucketHigh(b)),
				Count: n,
			})
		}
	}
	return snap
}

// quantile returns the q-quantile estimate: the midpoint of the bucket
// where the cumulative count crosses ceil(q*total), capped at the observed
// maximum.
func quantile(merged *[numBuckets]uint64, total uint64, q float64, max time.Duration) time.Duration {
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b, n := range merged {
		cum += n
		if cum >= target {
			mid := (bucketLow(b) + bucketHigh(b)) / 2
			if d := time.Duration(mid); d < max || max == 0 {
				return d
			}
			return max
		}
	}
	return max
}

// reset zeroes every shard (racing observations land before or after).
func (h *Histogram) reset() {
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.counts {
			s.counts[b].Store(0)
		}
		s.count.Store(0)
		s.sum.Store(0)
		s.max.Store(0)
	}
}
