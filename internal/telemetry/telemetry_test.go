package telemetry

import (
	"fmt"
	"gstm/internal/obs"
	"sync"
	"testing"
	"time"
)

func TestCounterShardingAndLoad(t *testing.T) {
	var c Counter
	for thread := uint64(0); thread < 64; thread++ {
		for i := uint64(0); i <= thread; i++ {
			c.Inc(thread)
		}
	}
	want := uint64(64 * 65 / 2) // Σ (thread+1)
	if got := c.Load(); got != want {
		t.Fatalf("Load = %d, want %d", got, want)
	}
	c.Add(3, 100)
	if got := c.Load(); got != want+100 {
		t.Fatalf("Load after Add = %d, want %d", got, want+100)
	}
	c.reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("Load after reset = %d, want 0", got)
	}
}

func TestCounterIncReturnsShardLocalCount(t *testing.T) {
	var c Counter
	// Threads 0 and 16 share shard 0; thread 1 does not.
	if n := c.Inc(0); n != 1 {
		t.Fatalf("first Inc = %d, want 1", n)
	}
	if n := c.Inc(16); n != 2 {
		t.Fatalf("same-shard Inc = %d, want 2", n)
	}
	if n := c.Inc(1); n != 1 {
		t.Fatalf("other-shard Inc = %d, want 1", n)
	}
}

func TestBucketMappingMonotoneAndConsistent(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1000, 1e6, 1e9, 60e9, 1e12, 1 << 62} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, b, prev)
		}
		prev = b
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		if low := bucketLow(b); b < numBuckets-1 && (v < low || v >= bucketHigh(b)) {
			t.Fatalf("value %d outside its bucket %d: [%d, %d)", v, b, low, bucketHigh(b))
		}
	}
	// Every bucket's lower bound maps back to itself.
	for i := 0; i < numBuckets; i++ {
		if got := bucketOf(bucketLow(i)); got != i {
			t.Fatalf("bucketOf(bucketLow(%d)) = %d", i, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations at 1µs, 10 slow at 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(uint64(i), time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(uint64(i), time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.Max != time.Millisecond {
		t.Fatalf("max = %v, want 1ms", s.Max)
	}
	if s.P50 < 800*time.Nanosecond || s.P50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want ≈1µs", s.P50)
	}
	if s.P99 < 800*time.Microsecond || s.P99 > time.Millisecond {
		t.Fatalf("p99 = %v, want ≈1ms (≤ max)", s.P99)
	}
	if s.Mean() == 0 {
		t.Fatal("mean = 0")
	}
	// Bucket counts must sum to the total and be ascending in bound.
	var sum uint64
	var prev time.Duration
	for _, b := range s.Buckets {
		sum += b.Count
		if b.Le <= prev {
			t.Fatalf("buckets not ascending: %v after %v", b.Le, prev)
		}
		prev = b.Le
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 50; i++ {
		a.Observe(0, time.Microsecond)
		b.Observe(0, time.Millisecond)
	}
	m := a.Snapshot().merge(b.Snapshot())
	if m.Count != 100 {
		t.Fatalf("merged count = %d, want 100", m.Count)
	}
	if m.Max != time.Millisecond {
		t.Fatalf("merged max = %v", m.Max)
	}
	if m.P50 < 800*time.Nanosecond || m.P50 > 2*time.Millisecond {
		t.Fatalf("merged p50 = %v", m.P50)
	}
	if m.P99 < 500*time.Microsecond {
		t.Fatalf("merged p99 = %v, want ≈1ms", m.P99)
	}
	// Merging with an empty snapshot is identity.
	if got := a.Snapshot().merge(HistSnapshot{}); got.Count != 50 {
		t.Fatalf("identity merge count = %d", got.Count)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(KindGateEscape, fmt.Sprintf("s%d", i), "")
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("s%d", 6+i); ev.State != want {
			t.Fatalf("event %d state = %q, want %q (oldest-first)", i, ev.State, want)
		}
		if ev.Seq != uint64(6+i) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, 6+i)
		}
	}
	var nilRing *Ring
	nilRing.Record("x", "", "") // must not panic
	if got := nilRing.Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot = %v", got)
	}
}

func TestMetricsLifecycleAndSnapshot(t *testing.T) {
	m := NewDetached("test")
	sampled := 0
	for i := 0; i < 64; i++ {
		if m.TxStart(0) {
			sampled++
		}
		m.TxCommit(0)
	}
	m.TxAbort(1, obs.CauseReadValidation)
	m.TxAbort(1, obs.CauseReadValidation)
	m.TxBudgetExceeded(2)
	m.TxCanceled(3)
	m.ObserveCommit(0, 2*time.Microsecond, time.Microsecond, true)
	m.GateArrival("stateA", GatePass, 0, 0)
	m.GateArrival("stateA", GateHold, 0, 5*time.Microsecond)
	m.GateArrival("stateB", GateEscape, 0, 10*time.Microsecond)
	m.WatchdogTrip("stateB", "escape-rate 1.00>0.25")
	m.WatchdogRearm("stateB")

	if sampled != 64/SampleEvery {
		t.Fatalf("sampled %d of 64 starts, want %d", sampled, 64/SampleEvery)
	}
	s := m.Snapshot()
	// Starts is derived: 64 commits + 2 aborts = 66 finished attempts.
	if s.Starts != 66 || s.Commits != 64 || s.Aborts != 2 {
		t.Fatalf("starts/commits/aborts = %d/%d/%d", s.Starts, s.Commits, s.Aborts)
	}
	if s.RetryBudgetExceeded != 1 || s.ContextCanceled != 1 {
		t.Fatalf("budget/canceled = %d/%d", s.RetryBudgetExceeded, s.ContextCanceled)
	}
	if s.GatePassed != 1 || s.GateHeld != 1 || s.GateEscaped != 1 {
		t.Fatalf("gate = %d/%d/%d", s.GatePassed, s.GateHeld, s.GateEscaped)
	}
	if s.WatchdogTrips != 1 || s.WatchdogRearms != 1 {
		t.Fatalf("watchdog = %d/%d", s.WatchdogTrips, s.WatchdogRearms)
	}
	if s.CommitLatency.Count != 1 || s.ValidationLatency.Count != 1 {
		t.Fatalf("latency counts = %d/%d", s.CommitLatency.Count, s.ValidationLatency.Count)
	}
	if s.GateHoldTime.Count != 2 {
		t.Fatalf("gate hold count = %d", s.GateHoldTime.Count)
	}
	if s.TimeToFirstCommit.Count != 1 {
		t.Fatalf("time-to-first-commit count = %d", s.TimeToFirstCommit.Count)
	}
	if len(s.GateStates) != 2 || s.GateStates[0].State != "stateA" || s.GateStates[0].Visits != 2 {
		t.Fatalf("gate states = %+v", s.GateStates)
	}
	// Trip + rearm + escape + budget + cancel = 5 ring events.
	if len(s.Events) != 5 {
		t.Fatalf("events = %d: %+v", len(s.Events), s.Events)
	}

	m.Reset()
	s = m.Snapshot()
	if s.Starts != 0 || s.Commits != 0 || s.CommitLatency.Count != 0 ||
		len(s.GateStates) != 0 || len(s.Events) != 0 {
		t.Fatalf("snapshot after reset not empty: %+v", s)
	}
	// First commit after reset records a fresh time-to-first-commit.
	m.TxCommit(0)
	if got := m.Snapshot().TimeToFirstCommit.Count; got != 1 {
		t.Fatalf("TTFC after reset = %d, want 1", got)
	}
}

func TestGateStateOverflowFoldsIntoOther(t *testing.T) {
	m := NewDetached("test")
	for i := 0; i < maxGateStates+50; i++ {
		m.GateArrival(fmt.Sprintf("state-%04d", i), GatePass, 0, 0)
	}
	s := m.Snapshot()
	var other *GateStateSnapshot
	for i := range s.GateStates {
		if s.GateStates[i].State == OverflowState {
			other = &s.GateStates[i]
		}
	}
	if other == nil || other.Visits != 50 {
		t.Fatalf("overflow entry = %+v, want 50 visits", other)
	}
	if len(s.GateStates) > maxGateStates+1 {
		t.Fatalf("tracked states = %d, want ≤ %d", len(s.GateStates), maxGateStates+1)
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	if m.TxStart(0) {
		t.Fatal("nil TxStart sampled")
	}
	m.TxCommit(0)
	m.TxAbort(0, obs.CauseReadValidation)
	m.TxBudgetExceeded(0)
	m.TxCanceled(0)
	m.ObserveCommit(0, time.Microsecond, 0, false)
	m.GateArrival("s", GatePass, 0, 0)
	m.WatchdogTrip("s", "r")
	m.WatchdogRearm("s")
	m.Reset()
	if s := m.Snapshot(); s.Commits != 0 {
		t.Fatal("nil snapshot non-zero")
	}
	if m.Label() != "" {
		t.Fatal("nil label")
	}
}

func TestGatherMergesRegisteredMetrics(t *testing.T) {
	before := Gather()
	a, b := New("tl2"), New("libtm")
	a.TxStart(0)
	a.TxCommit(0)
	b.TxStart(0)
	b.TxCommit(0)
	b.TxAbort(0, obs.CauseReadValidation)
	after := Gather()
	if d := after.Commits - before.Commits; d != 2 {
		t.Fatalf("gathered commit delta = %d, want 2", d)
	}
	if d := after.Aborts - before.Aborts; d != 1 {
		t.Fatalf("gathered abort delta = %d, want 1", d)
	}
}

func TestGatherComponentBreakdown(t *testing.T) {
	before := Gather()
	prev := make(map[string]uint64)
	for _, c := range before.Components {
		prev[c.Label] = c.Commits
	}
	a, b := New("shardA"), New("shardB")
	for i := 0; i < 3; i++ {
		a.TxStart(0)
		a.TxCommit(0)
	}
	b.TxStart(0)
	b.TxCommit(0)
	b.TxAbort(0, obs.CauseReadValidation)
	after := Gather()
	got := make(map[string]Snapshot)
	for _, c := range after.Components {
		got[c.Label] = c
	}
	if c := got["shardA"]; c.Commits-prev["shardA"] != 3 {
		t.Fatalf("shardA component commits delta = %d, want 3", c.Commits-prev["shardA"])
	}
	if c := got["shardB"]; c.Commits-prev["shardB"] != 1 || c.Aborts == 0 {
		t.Fatalf("shardB component = %+v", got["shardB"])
	}
	for i := 1; i < len(after.Components); i++ {
		if after.Components[i-1].Label >= after.Components[i].Label {
			t.Fatalf("components not sorted by label: %q before %q",
				after.Components[i-1].Label, after.Components[i].Label)
		}
	}
	if len(got["shardA"].Events) != 0 {
		t.Fatal("component snapshot carries events; only the aggregate should")
	}
}

// TestConcurrentRecordSnapshotReset exercises the record path, snapshots
// and resets concurrently; meaningful under -race.
func TestConcurrentRecordSnapshotReset(t *testing.T) {
	m := NewDetached("race")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(thread uint64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sampled := m.TxStart(thread)
				if i%7 == 0 {
					m.TxAbort(thread, obs.CauseReadValidation)
				} else {
					m.TxCommit(thread)
					if sampled {
						m.ObserveCommit(thread, time.Duration(i%1000), time.Duration(i%100), i%2 == 0)
					}
				}
				m.GateArrival("s", GateOutcome(i%3), thread, time.Duration(i%50))
			}
		}(uint64(w))
	}
	for i := 0; i < 50; i++ {
		_ = m.Snapshot()
		if i%10 == 9 {
			m.Reset()
		}
	}
	close(stop)
	wg.Wait()
	_ = m.Snapshot()
}

// TestRecordPathZeroAlloc pins the acceptance criterion: the sharded
// counter and histogram record paths allocate nothing.
func TestRecordPathZeroAlloc(t *testing.T) {
	m := NewDetached("alloc")
	m.TxCommit(0) // retire the one-time first-commit sample
	if n := testing.AllocsPerRun(1000, func() {
		sampled := m.TxStart(1)
		m.TxCommit(1)
		if sampled {
			m.ObserveCommit(1, time.Microsecond, 100*time.Nanosecond, true)
		}
		m.TxAbort(1, obs.CauseReadValidation)
	}); n != 0 {
		t.Fatalf("counter+histogram record path allocates %v bytes-ish/op, want 0", n)
	}
	m.GateArrival("warm", GatePass, 0, 0) // pre-create the state cell
	if n := testing.AllocsPerRun(1000, func() {
		m.GateArrival("warm", GateHold, 0, time.Microsecond)
	}); n != 0 {
		t.Fatalf("gate-state record path allocates %v/op, want 0", n)
	}
}
