package telemetry

import (
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkTelemetryOverhead measures the record-path cost the engines pay
// per transaction. The acceptance budget: zero allocations everywhere, and
// the counter path within a small constant of a plain atomic add.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("baseline-atomic-add", func(b *testing.B) {
		var n atomic.Uint64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n.Add(1)
		}
	})

	b.Run("counter-inc", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc(uint64(i) & 7)
		}
	})

	b.Run("counter-inc-parallel", func(b *testing.B) {
		var c Counter
		var next atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			thread := next.Add(1)
			for pb.Next() {
				c.Inc(thread)
			}
		})
	})

	b.Run("txstart-txcommit", func(b *testing.B) {
		m := NewDetached("bench")
		m.TxCommit(0) // retire the one-time first-commit sample
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.TxStart(1)
			m.TxCommit(1)
		}
	})

	b.Run("histogram-observe", func(b *testing.B) {
		var h Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(uint64(i)&3, time.Duration(500+i%1000))
		}
	})

	b.Run("observe-commit-sampled", func(b *testing.B) {
		// The full per-commit cost when the attempt is the 1-in-SampleEvery
		// sampled one: two clock reads plus two histogram observations.
		m := NewDetached("bench")
		m.TxCommit(0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			m.ObserveCommit(1, time.Since(t0), time.Since(t0), true)
		}
	})

	b.Run("gate-arrival", func(b *testing.B) {
		m := NewDetached("bench")
		m.GateArrival("s0/w2", GatePass, 0, 0) // pre-create the state cell
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.GateArrival("s0/w2", GatePass, uint64(i)&7, 0)
		}
	})

	b.Run("snapshot", func(b *testing.B) {
		m := NewDetached("bench")
		for i := 0; i < 1000; i++ {
			m.TxStart(uint64(i))
			m.TxCommit(uint64(i))
			m.ObserveCommit(uint64(i), time.Duration(i), 0, false)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Snapshot()
		}
	})
}
