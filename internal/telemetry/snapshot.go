package telemetry

import (
	"sort"
	"time"
)

// HistBucket is one non-empty histogram bucket: Count observations at most
// Le (the bucket's exclusive upper bound, reported inclusively in the
// Prometheus encoding as is conventional).
type HistBucket struct {
	Le    time.Duration `json:"le_ns"`
	Count uint64        `json:"count"`
}

// HistSnapshot is a merged, point-in-time view of a latency histogram.
type HistSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`

	// Buckets holds the non-empty buckets ascending by bound. Because every
	// Histogram shares one fixed bucket layout, snapshots merge exactly.
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the mean observed duration.
func (h HistSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// merge combines two fixed-layout histogram snapshots: bucket counts add,
// quantiles are recomputed from the merged buckets.
func (h HistSnapshot) merge(o HistSnapshot) HistSnapshot {
	if o.Count == 0 {
		return h
	}
	if h.Count == 0 {
		return o
	}
	var merged [numBuckets]uint64
	for _, hs := range []HistSnapshot{h, o} {
		for _, b := range hs.Buckets {
			merged[bucketOf(uint64(b.Le-1))] += b.Count
		}
	}
	out := HistSnapshot{Count: h.Count + o.Count, Sum: h.Sum + o.Sum, Max: h.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	var total uint64
	for _, n := range merged {
		total += n
	}
	if total > 0 {
		out.P50 = quantile(&merged, total, 0.50, out.Max)
		out.P95 = quantile(&merged, total, 0.95, out.Max)
		out.P99 = quantile(&merged, total, 0.99, out.Max)
	}
	for b, n := range merged {
		if n > 0 {
			out.Buckets = append(out.Buckets, HistBucket{Le: time.Duration(bucketHigh(b)), Count: n})
		}
	}
	return out
}

// GateStateSnapshot is the gate telemetry of one automaton state.
type GateStateSnapshot struct {
	State   string `json:"state"`
	Visits  uint64 `json:"visits"`
	Holds   uint64 `json:"holds"`
	Escapes uint64 `json:"escapes"`
}

// Snapshot is the stable exported view of the telemetry layer: every
// counter, histogram, gate-state tally and recent event, merged across
// shards (and across components, for Gather). It marshals directly to the
// JSON encoding the /debug/vars endpoint serves.
type Snapshot struct {
	Label   string    `json:"label"`
	TakenAt time.Time `json:"taken_at"`

	Starts              uint64 `json:"tx_starts"`
	Commits             uint64 `json:"tx_commits"`
	Aborts              uint64 `json:"tx_aborts"`
	RetryBudgetExceeded uint64 `json:"tx_retry_budget_exceeded"`
	ContextCanceled     uint64 `json:"tx_context_canceled"`
	WALUnavailable      uint64 `json:"wal_unavailable"`
	Parked              uint64 `json:"tx_parked"`

	// XShardCommits/XShardAborts count cross-shard commit-protocol
	// outcomes per participant shard (a k-shard transaction counts k).
	XShardCommits uint64 `json:"xshard_commits"`
	XShardAborts  uint64 `json:"xshard_aborts"`

	// AbortsByCause indexes by obs.Cause (length obs.NumCauses when set);
	// obs.CauseName maps indexes to labels.
	AbortsByCause []uint64 `json:"tx_aborts_by_cause,omitempty"`

	ClockCASFallbacks    uint64 `json:"clock_cas_fallbacks"`
	WriteSetSpills       uint64 `json:"write_set_spills"`
	FilterFalsePositives uint64 `json:"write_filter_false_positives"`
	StripeCollisions     uint64 `json:"stripe_collisions"`

	GatePassed  uint64 `json:"gate_passed"`
	GateHeld    uint64 `json:"gate_held"`
	GateEscaped uint64 `json:"gate_escaped"`

	WatchdogTrips  uint64 `json:"watchdog_trips"`
	WatchdogRearms uint64 `json:"watchdog_rearms"`

	WALAppends       uint64 `json:"wal_appends"`
	WALFsyncs        uint64 `json:"wal_fsyncs"`
	WALBytes         uint64 `json:"wal_bytes"`
	WALSnapshots     uint64 `json:"wal_snapshots"`
	RecoveryReplayed uint64 `json:"recovery_replayed_records"`
	RecoveryNanos    uint64 `json:"recovery_duration_ns"`

	CommitLatency     HistSnapshot `json:"commit_latency"`
	ValidationLatency HistSnapshot `json:"validation_latency"`
	GateHoldTime      HistSnapshot `json:"gate_hold"`
	TimeToFirstCommit HistSnapshot `json:"time_to_first_commit"`

	GateStates []GateStateSnapshot `json:"gate_states,omitempty"`
	Events     []Event             `json:"events,omitempty"`

	// Gauges are the scrape-time readings (see RegisterGauge); only the
	// Gather aggregate carries them.
	Gauges []GaugeSample `json:"gauges,omitempty"`

	// Components holds the per-label breakdown when this snapshot is a
	// Gather aggregate: one merged snapshot per distinct registration
	// label ("shard0", "shard1", …), sorted by label. Component snapshots
	// carry counters, histograms and gate-state tallies but not events —
	// the aggregate's ring already interleaves every component's events.
	Components []Snapshot `json:"components,omitempty"`
}

// AbortRatio returns aborts per commit.
func (s Snapshot) AbortRatio() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits)
}

// Merge folds o into s: counters add, histograms merge bucket-wise,
// gate-state tallies combine by state key, and events interleave by time
// (keeping the most recent DefaultRingCapacity).
func (s *Snapshot) Merge(o Snapshot) {
	s.Starts += o.Starts
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.RetryBudgetExceeded += o.RetryBudgetExceeded
	s.ContextCanceled += o.ContextCanceled
	s.WALUnavailable += o.WALUnavailable
	s.Parked += o.Parked
	s.XShardCommits += o.XShardCommits
	s.XShardAborts += o.XShardAborts
	if len(o.AbortsByCause) > 0 {
		if len(s.AbortsByCause) < len(o.AbortsByCause) {
			grown := make([]uint64, len(o.AbortsByCause))
			copy(grown, s.AbortsByCause)
			s.AbortsByCause = grown
		}
		for i, n := range o.AbortsByCause {
			s.AbortsByCause[i] += n
		}
	}
	s.ClockCASFallbacks += o.ClockCASFallbacks
	s.WriteSetSpills += o.WriteSetSpills
	s.FilterFalsePositives += o.FilterFalsePositives
	s.StripeCollisions += o.StripeCollisions
	s.GatePassed += o.GatePassed
	s.GateHeld += o.GateHeld
	s.GateEscaped += o.GateEscaped
	s.WatchdogTrips += o.WatchdogTrips
	s.WatchdogRearms += o.WatchdogRearms
	s.WALAppends += o.WALAppends
	s.WALFsyncs += o.WALFsyncs
	s.WALBytes += o.WALBytes
	s.WALSnapshots += o.WALSnapshots
	s.RecoveryReplayed += o.RecoveryReplayed
	s.RecoveryNanos += o.RecoveryNanos
	s.CommitLatency = s.CommitLatency.merge(o.CommitLatency)
	s.ValidationLatency = s.ValidationLatency.merge(o.ValidationLatency)
	s.GateHoldTime = s.GateHoldTime.merge(o.GateHoldTime)
	s.TimeToFirstCommit = s.TimeToFirstCommit.merge(o.TimeToFirstCommit)

	if len(o.GateStates) > 0 {
		byState := make(map[string]GateStateSnapshot, len(s.GateStates)+len(o.GateStates))
		for _, g := range s.GateStates {
			byState[g.State] = g
		}
		for _, g := range o.GateStates {
			cur := byState[g.State]
			cur.State = g.State
			cur.Visits += g.Visits
			cur.Holds += g.Holds
			cur.Escapes += g.Escapes
			byState[g.State] = cur
		}
		s.GateStates = s.GateStates[:0]
		for _, g := range byState {
			s.GateStates = append(s.GateStates, g)
		}
		sort.Slice(s.GateStates, func(i, j int) bool {
			if s.GateStates[i].Visits != s.GateStates[j].Visits {
				return s.GateStates[i].Visits > s.GateStates[j].Visits
			}
			return s.GateStates[i].State < s.GateStates[j].State
		})
	}

	if len(o.Events) > 0 {
		s.Events = append(s.Events, o.Events...)
		sort.SliceStable(s.Events, func(i, j int) bool {
			return s.Events[i].At.Before(s.Events[j].At)
		})
		if n := len(s.Events); n > DefaultRingCapacity {
			s.Events = s.Events[n-DefaultRingCapacity:]
		}
	}
}
