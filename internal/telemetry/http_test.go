package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHandlerEndpoints(t *testing.T) {
	m := NewDetached("test")
	m.TxStart(0)
	m.TxCommit(0)
	m.ObserveCommit(0, time.Microsecond, 0, false)

	srv := httptest.NewServer(Handler(m.Snapshot))
	defer srv.Close()

	code, body, ctype := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Fatalf("/metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "gstm_tx_commits_total 1") {
		t.Fatalf("/metrics body missing commit counter:\n%s", body)
	}

	code, body, ctype = get(t, srv.URL+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/vars content-type = %q", ctype)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	for _, key := range []string{"cmdline", "memstats", "gstm"} {
		if _, ok := vars[key]; !ok {
			t.Fatalf("/debug/vars missing %q", key)
		}
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["gstm"], &snap); err != nil {
		t.Fatalf("/debug/vars gstm not a Snapshot: %v", err)
	}
	if snap.Commits != 1 {
		t.Fatalf("/debug/vars gstm commits = %d", snap.Commits)
	}

	code, body, _ = get(t, srv.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected:\n%s", body)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	m := NewDetached("test")
	m.TxCommit(0)
	srv, addr, err := Serve("127.0.0.1:0", m.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(addr.String(), ":") || strings.HasSuffix(addr.String(), ":0") {
		t.Fatalf("bound addr = %q, want a real port", addr)
	}
	code, body, _ := get(t, "http://"+addr.String()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "gstm_tx_commits_total 1") {
		t.Fatalf("scrape via Serve failed: %d\n%s", code, body)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, _, err := Serve("256.0.0.1:bad", Gather); err == nil {
		t.Fatal("want listen error")
	}
}

// TestServerShutdownDrains scrapes the process-wide endpoint, shuts it
// down gracefully, and checks the exact port is immediately rebindable —
// the test-order-dependent flake the Close-only API risked.
func TestServerShutdownDrains(t *testing.T) {
	s, err := ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if code, _, _ := get(t, "http://"+s.BoundAddr.String()+"/metrics"); code != http.StatusOK {
		t.Fatalf("scrape before shutdown: status %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// After shutdown new scrapes must fail...
	if _, err := http.Get("http://" + s.BoundAddr.String() + "/metrics"); err == nil {
		t.Fatal("scrape succeeded after Shutdown")
	}
	// ...and the drained port is free to rebind at once.
	s2, err := ServeAddr(s.BoundAddr.String())
	if err != nil {
		t.Fatalf("rebind %s after Shutdown: %v", s.BoundAddr, err)
	}
	_ = s2.Close()
}

// TestServerShutdownExpiredContext: a context that expires mid-drain makes
// Shutdown return its error rather than hanging.
func TestServerShutdownExpiredContext(t *testing.T) {
	s, err := ServeAddr("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown with expired context returned nil")
	}
}
