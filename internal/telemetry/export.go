package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"

	"gstm/internal/obs"
)

// maxExportedGateStates bounds the per-state series the Prometheus encoding
// emits (states are sorted by visits, so the hottest survive the cut).
const maxExportedGateStates = 16

// WriteJSON writes s as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes s in the Prometheus text exposition format
// (version 0.0.4): counters as *_total, latency histograms as conventional
// cumulative-bucket histogram families in seconds, and per-state gate
// telemetry as labeled series (top states by visits).
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := &errWriter{w: w}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("gstm_tx_starts_total", "Transaction attempt starts, including retries.", s.Starts)
	counter("gstm_tx_commits_total", "Committed transactions.", s.Commits)
	counter("gstm_tx_aborts_total", "Aborted transaction attempts.", s.Aborts)
	counter("gstm_tx_retry_budget_exceeded_total", "Transactions abandoned on a spent retry budget.", s.RetryBudgetExceeded)
	counter("gstm_tx_context_canceled_total", "Transactions abandoned on context cancellation.", s.ContextCanceled)
	counter("gstm_wal_unavailable_total", "Operations refused because the shard's write-ahead log failed.", s.WALUnavailable)
	counter("gstm_tx_parked_total", "Blocking transactions parked on their read set (tx.Retry).", s.Parked)
	counter("gstm_xshard_commits_total", "Cross-shard sub-transactions published atomically (one per participant shard).", s.XShardCommits)
	counter("gstm_xshard_aborts_total", "Cross-shard prepare rounds aborted all-or-nothing (one per participant shard).", s.XShardAborts)
	counter("gstm_clock_cas_fallbacks_total", "GV4 pass-on-failure adoptions of a winner's clock value.", s.ClockCASFallbacks)
	counter("gstm_write_set_spills_total", "Write sets that outgrew the inline fast path.", s.WriteSetSpills)
	counter("gstm_write_filter_false_positives_total", "Write-set filter hits that found no entry.", s.FilterFalsePositives)
	counter("gstm_stripe_collisions_total", "Distinct written locations that shared one stripe lock (striped mode).", s.StripeCollisions)
	counter("gstm_watchdog_trips_total", "Guidance watchdog armed-to-tripped transitions.", s.WatchdogTrips)
	counter("gstm_watchdog_rearms_total", "Guidance watchdog tripped-to-armed transitions.", s.WatchdogRearms)
	counter("gstm_wal_appends_total", "Records appended to the write-ahead log.", s.WALAppends)
	counter("gstm_wal_fsyncs_total", "Physical fsync calls issued by the write-ahead log.", s.WALFsyncs)
	counter("gstm_wal_bytes_total", "Bytes appended to the write-ahead log.", s.WALBytes)
	counter("gstm_wal_snapshots_total", "Completed snapshot+truncate cycles.", s.WALSnapshots)
	counter("gstm_recovery_replayed_records_total", "Log records re-applied during crash recovery.", s.RecoveryReplayed)
	counter("gstm_recovery_duration_ns_total", "Wall time spent in crash recovery, nanoseconds.", s.RecoveryNanos)

	// Every taxonomy label is always written (zero or not) so scrapers and
	// tests see a stable series set; CauseNone is skipped — a counted abort
	// always has a cause.
	fmt.Fprintf(bw, "# HELP gstm_tx_aborts_by_cause_total Aborted attempts by taxonomy cause.\n# TYPE gstm_tx_aborts_by_cause_total counter\n")
	for i := 1; i < int(obs.NumCauses); i++ {
		var v uint64
		if i < len(s.AbortsByCause) {
			v = s.AbortsByCause[i]
		}
		fmt.Fprintf(bw, "gstm_tx_aborts_by_cause_total{cause=%s} %d\n", promQuote(obs.CauseName(i)), v)
	}

	fmt.Fprintf(bw, "# HELP gstm_gate_decisions_total Guidance-gate arrival outcomes.\n# TYPE gstm_gate_decisions_total counter\n")
	fmt.Fprintf(bw, "gstm_gate_decisions_total{outcome=\"passed\"} %d\n", s.GatePassed)
	fmt.Fprintf(bw, "gstm_gate_decisions_total{outcome=\"held\"} %d\n", s.GateHeld)
	fmt.Fprintf(bw, "gstm_gate_decisions_total{outcome=\"escaped\"} %d\n", s.GateEscaped)

	if len(s.Gauges) > 0 {
		written := map[string]bool{}
		for _, g := range s.Gauges {
			if !written[g.Name] {
				fmt.Fprintf(bw, "# TYPE %s gauge\n", g.Name)
				written[g.Name] = true
			}
			if g.Component != "" {
				fmt.Fprintf(bw, "%s{component=%s} %s\n", g.Name, promQuote(g.Component), formatSeconds(g.Value))
			} else {
				fmt.Fprintf(bw, "%s %s\n", g.Name, formatSeconds(g.Value))
			}
		}
	}

	writeBuildInfo(bw)

	histogram(bw, "gstm_commit_latency_seconds", "Commit protocol latency (sampled).", s.CommitLatency)
	histogram(bw, "gstm_validation_latency_seconds", "Read-set validation latency when validation ran (sampled).", s.ValidationLatency)
	histogram(bw, "gstm_gate_hold_seconds", "Time held arrivals spent delayed at the guidance gate.", s.GateHoldTime)
	histogram(bw, "gstm_time_to_first_commit_seconds", "Time from runtime creation or reset to its first commit.", s.TimeToFirstCommit)

	if len(s.Components) > 0 {
		fmt.Fprintf(bw, "# HELP gstm_component_tx_commits_total Committed transactions by component (shard).\n# TYPE gstm_component_tx_commits_total counter\n")
		for _, c := range s.Components {
			fmt.Fprintf(bw, "gstm_component_tx_commits_total{component=%s} %d\n", promQuote(c.Label), c.Commits)
		}
		fmt.Fprintf(bw, "# HELP gstm_component_tx_aborts_total Aborted transaction attempts by component (shard).\n# TYPE gstm_component_tx_aborts_total counter\n")
		for _, c := range s.Components {
			fmt.Fprintf(bw, "gstm_component_tx_aborts_total{component=%s} %d\n", promQuote(c.Label), c.Aborts)
		}
		fmt.Fprintf(bw, "# HELP gstm_component_gate_decisions_total Guidance-gate arrival outcomes by component (shard).\n# TYPE gstm_component_gate_decisions_total counter\n")
		for _, c := range s.Components {
			fmt.Fprintf(bw, "gstm_component_gate_decisions_total{component=%s,outcome=\"passed\"} %d\n", promQuote(c.Label), c.GatePassed)
			fmt.Fprintf(bw, "gstm_component_gate_decisions_total{component=%s,outcome=\"held\"} %d\n", promQuote(c.Label), c.GateHeld)
			fmt.Fprintf(bw, "gstm_component_gate_decisions_total{component=%s,outcome=\"escaped\"} %d\n", promQuote(c.Label), c.GateEscaped)
		}
		compCounter := func(name, help string, v func(Snapshot) uint64) {
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, c := range s.Components {
				fmt.Fprintf(bw, "%s{component=%s} %d\n", name, promQuote(c.Label), v(c))
			}
		}
		compCounter("gstm_component_wal_appends_total", "WAL records appended by component (shard).", func(c Snapshot) uint64 { return c.WALAppends })
		compCounter("gstm_component_wal_fsyncs_total", "WAL fsync calls by component (shard).", func(c Snapshot) uint64 { return c.WALFsyncs })
		compCounter("gstm_component_wal_bytes_total", "WAL bytes appended by component (shard).", func(c Snapshot) uint64 { return c.WALBytes })
		compCounter("gstm_component_recovery_replayed_records_total", "Recovery-replayed records by component (shard).", func(c Snapshot) uint64 { return c.RecoveryReplayed })
		compCounter("gstm_component_recovery_duration_ns_total", "Recovery wall time by component (shard), nanoseconds.", func(c Snapshot) uint64 { return c.RecoveryNanos })
	}

	if len(s.GateStates) > 0 {
		fmt.Fprintf(bw, "# HELP gstm_gate_state_visits_total Gate arrivals per automaton state (top states).\n# TYPE gstm_gate_state_visits_total counter\n")
		top := s.GateStates
		if len(top) > maxExportedGateStates {
			top = top[:maxExportedGateStates]
		}
		for _, g := range top {
			fmt.Fprintf(bw, "gstm_gate_state_visits_total{state=%s} %d\n", promQuote(g.State), g.Visits)
		}
		fmt.Fprintf(bw, "# HELP gstm_gate_state_holds_total Gate holds per automaton state (top states).\n# TYPE gstm_gate_state_holds_total counter\n")
		for _, g := range top {
			fmt.Fprintf(bw, "gstm_gate_state_holds_total{state=%s} %d\n", promQuote(g.State), g.Holds)
		}
		fmt.Fprintf(bw, "# HELP gstm_gate_state_escapes_total Gate K-exhausted escapes per automaton state (top states).\n# TYPE gstm_gate_state_escapes_total counter\n")
		for _, g := range top {
			fmt.Fprintf(bw, "gstm_gate_state_escapes_total{state=%s} %d\n", promQuote(g.State), g.Escapes)
		}
	}
	return bw.err
}

// buildInfoLine is the gstm_build_info series, computed once: the
// conventional always-1 gauge whose labels carry the build's identity.
var buildInfoLine = sync.OnceValue(func() string {
	goVer, path, rev, modified := "unknown", "unknown", "unknown", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVer = bi.GoVersion
		path = bi.Main.Path
		if path == "" {
			path = bi.Path
		}
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				modified = kv.Value
			}
		}
	}
	return fmt.Sprintf("gstm_build_info{goversion=%s,path=%s,revision=%s,modified=%s} 1\n",
		promQuote(goVer), promQuote(path), promQuote(rev), promQuote(modified))
})

func writeBuildInfo(w io.Writer) {
	fmt.Fprintf(w, "# HELP gstm_build_info Build identity; the value is always 1.\n# TYPE gstm_build_info gauge\n")
	io.WriteString(w, buildInfoLine())
}

// histogram writes one histogram family with cumulative buckets in seconds.
func histogram(w io.Writer, name, help string, h HistSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatSeconds(b.Le.Seconds()), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatSeconds(h.Sum.Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// formatSeconds renders a seconds value compactly without exponent noise
// for the common sub-second range.
func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', 9, 64)
}

// promQuote renders a label value with Prometheus escaping.
func promQuote(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// errWriter latches the first write error so the exposition code can stay
// free of per-line error plumbing.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
