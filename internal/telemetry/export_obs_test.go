package telemetry

// Exposition tests for the variance-observatory additions: the abort-cause
// taxonomy series, the WAL-unavailable counter, scrape-time gauges, and the
// build-info series.

import (
	"bytes"
	"strings"
	"testing"

	"gstm/internal/obs"
)

func TestWritePrometheusAbortCauseTaxonomy(t *testing.T) {
	m := NewDetached("causes")
	m.TxStart(0)
	m.TxAbort(0, obs.CauseLockBusy)
	m.TxAbort(0, obs.CauseLockBusy)
	m.TxAbort(2, obs.CauseWALUnavailable)
	m.WALRefused(3)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gstm_tx_aborts_by_cause_total{cause="lock-busy"} 2`,
		`gstm_tx_aborts_by_cause_total{cause="wal-unavailable"} 1`,
		// Untouched causes still emit a stable zero series.
		`gstm_tx_aborts_by_cause_total{cause="read-validation"} 0`,
		`gstm_tx_aborts_by_cause_total{cause="clock-cas"} 0`,
		`gstm_tx_aborts_by_cause_total{cause="gate-timeout"} 0`,
		`gstm_tx_aborts_by_cause_total{cause="retry-budget"} 0`,
		"gstm_wal_unavailable_total 1",
		"gstm_tx_aborts_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// A counted abort always has a cause; "none" must not be a series.
	if strings.Contains(out, `cause="none"`) {
		t.Errorf("exposition emits a cause=\"none\" series\n%s", out)
	}
	// Every taxonomy label appears exactly once.
	for i := 1; i < int(obs.NumCauses); i++ {
		label := `cause="` + obs.CauseName(i) + `"`
		if n := strings.Count(out, label); n != 1 {
			t.Errorf("label %s appears %d times, want 1", label, n)
		}
	}
}

func TestWritePrometheusGaugesAndBuildInfo(t *testing.T) {
	unregQueue := RegisterGauge("gstm_wal_queue_depth", "shard0", func() float64 { return 7 })
	unregBacklog := RegisterGauge("gstm_acker_backlog", "server", func() float64 { return 3 })
	defer unregBacklog()

	// Gauges are scrape-time readings attached by the registry-level Gather
	// (they span Metrics instances), not by a single Metrics.Snapshot.
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, Gather()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gstm_wal_queue_depth gauge",
		`gstm_wal_queue_depth{component="shard0"} 7`,
		"# TYPE gstm_acker_backlog gauge",
		`gstm_acker_backlog{component="server"} 3`,
		"# TYPE gstm_build_info gauge",
		"gstm_build_info{goversion=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}

	// Unregistering removes the series from the next scrape: a shut-down
	// server's dead closures must not linger.
	unregQueue()
	buf.Reset()
	if err := WritePrometheus(&buf, Gather()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "gstm_wal_queue_depth") {
		t.Errorf("unregistered gauge still exported:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "gstm_acker_backlog") {
		t.Errorf("unrelated gauge vanished with the unregistered one:\n%s", buf.String())
	}
}
