package guide

import (
	"runtime"
	"sync"
	"testing"

	"gstm/internal/model"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

func TestStateSequenceTracking(t *testing.T) {
	c := NewController(buildTable(t))
	// Drive a chain of commits; the tracked state must always be the
	// second-to-last commit's TTS (one-commit delay).
	pairs := []txid.Pair{pair(0, 0), pair(1, 1), pair(2, 2), pair(3, 3)}
	for i, p := range pairs {
		c.TxCommit(p, uint64(i+1), 0)
	}
	k, ok := c.CurrentState()
	if !ok {
		t.Fatal("no state")
	}
	want := trace.NewState(nil, pk(2, 2)).Key() // commit 3 of 4 (last is pending)
	if k != want {
		t.Fatalf("state = %q, want %q", k, want)
	}
}

func TestGateStatsCategoriesDisjoint(t *testing.T) {
	c := NewController(buildTable(t), WithGateRetries(2))
	// Current state A; destination B high, C low.
	c.TxCommit(pair(0, 0), 1, 0)
	c.TxCommit(pair(9, 9), 2, 0)

	c.Arrive(pair(1, 1)) // allowed: passes
	c.Arrive(pair(2, 2)) // blocked: escapes after 2 retries
	passed, held, escaped := c.GateStats()
	if passed != 1 || escaped != 1 {
		t.Fatalf("stats = %d/%d/%d", passed, held, escaped)
	}
	if held != 0 {
		// held counts threads that were delayed but eventually allowed;
		// the escaping thread is counted separately.
		t.Fatalf("held = %d, want 0", held)
	}
}

func TestHeldThenAllowedCountsAsHeld(t *testing.T) {
	c := NewController(buildTable(t), WithGateRetries(1<<20))
	c.TxCommit(pair(0, 0), 1, 0)
	c.TxCommit(pair(9, 9), 2, 0) // current = A, so (2,2) is blocked

	var wg sync.WaitGroup
	wg.Add(1)
	entered := make(chan struct{})
	go func() {
		defer wg.Done()
		close(entered)
		c.Arrive(pair(2, 2)) // blocked until the state changes
	}()
	<-entered
	// Give the arriving goroutine time to be held at least once (each
	// blocked re-check yields back to us).
	for i := 0; i < 200; i++ {
		runtime.Gosched()
	}
	// Change current state to an unknown one: (2,2) becomes allowed.
	c.TxCommit(pair(25, 9), 3, 0)
	c.TxCommit(pair(25, 9), 4, 0)
	wg.Wait()
	_, held, _ := c.GateStats()
	if held != 1 {
		t.Fatalf("held = %d, want 1", held)
	}
}

func TestConcurrentEventsAndArrivals(t *testing.T) {
	c := NewController(buildTable(t), WithGateRetries(4))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := pair(i%3, id)
				c.Arrive(p)
				c.TxCommit(p, uint64(id*1000+i+1), i%2)
				if i%3 == 0 {
					c.TxAbort(pair(1, (id+1)%4), uint64(id*1000+i+1), p, true)
				}
			}
		}(g)
	}
	wg.Wait()
	passed, held, escaped := c.GateStats()
	if passed+held+escaped != 4*500 {
		t.Fatalf("gate decisions %d+%d+%d != 2000", passed, held, escaped)
	}
}

func TestDefaultGateRetriesApplied(t *testing.T) {
	c := NewController(buildTable(t))
	if c.retries != DefaultGateRetries {
		t.Fatalf("retries = %d, want %d", c.retries, DefaultGateRetries)
	}
	c2 := NewController(buildTable(t), WithGateRetries(0)) // ignored
	if c2.retries != DefaultGateRetries {
		t.Fatalf("retries = %d after WithGateRetries(0)", c2.retries)
	}
}

func TestCompiledTableReflectsTfactor(t *testing.T) {
	// With a huge Tfactor every destination qualifies, so even the rare
	// pair (2,2) from state A should be allowed.
	a := trace.NewState(nil, pk(0, 0))
	b := trace.NewState(nil, pk(1, 1))
	cst := trace.NewState(nil, pk(2, 2))
	var runs [][]trace.State
	for i := 0; i < 40; i++ {
		runs = append(runs, []trace.State{a, b})
	}
	runs = append(runs, []trace.State{a, cst})
	m := model.Build(2, runs)

	wide := NewController(model.Compile(m, 1000))
	wide.TxCommit(pair(0, 0), 1, 0)
	wide.TxCommit(pair(9, 9), 2, 0)
	wide.Arrive(pair(2, 2))
	passed, _, escaped := wide.GateStats()
	if passed != 1 || escaped != 0 {
		t.Fatalf("wide table blocked a kept destination: %d/%d", passed, escaped)
	}
}
