package guide

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gstm/internal/telemetry"
	"gstm/internal/txid"
)

// Watchdog defaults (see WatchdogConfig).
const (
	DefaultWatchdogWindow     = 512
	DefaultWatchdogMinSamples = 32
	DefaultMaxEscapeRate      = 0.25
)

// WatchdogConfig tunes the guidance watchdog, the runtime analogue of the
// paper's offline model rejection: where the analyzer rejects unguidable
// models (ssca2) before execution, the watchdog detects a model that is
// degrading execution *while* guiding it and trips guidance into
// pass-through mode.
type WatchdogConfig struct {
	// Window is how many commit/abort events form one evaluation window.
	// Zero selects DefaultWatchdogWindow.
	Window int

	// MinGateSamples is the minimum number of gate decisions inside a
	// window before the escape/hold rates are considered meaningful; with
	// fewer, the window is inconclusive and no trip happens. Zero selects
	// DefaultWatchdogMinSamples.
	MinGateSamples int

	// MaxEscapeRate trips the breaker when more than this fraction of the
	// window's gate arrivals were forced through by the K-retry escape
	// hatch — the signature of a model whose destination sets no longer
	// match the running workload (every hold is wasted delay). Zero
	// selects DefaultMaxEscapeRate; negative disables the check.
	MaxEscapeRate float64

	// MaxHoldRate, when positive, trips the breaker when more than this
	// fraction of gate arrivals were delayed at least once.
	MaxHoldRate float64

	// MaxAbortRate, when positive, trips the breaker when more than this
	// fraction of the window's events were aborts. High-contention
	// workloads legitimately run hot, so this check is opt-in.
	MaxAbortRate float64

	// Cooldown, when positive, re-arms guidance after that many events in
	// pass-through mode, giving the model another chance (the workload may
	// have left the phase that confused it). Zero means a trip is final.
	Cooldown int

	// Clock supplies the timestamps stamped onto trip reasons. Nil selects
	// time.Now; tests inject a fake clock for deterministic reasons.
	Clock func() time.Time
}

func (c WatchdogConfig) normalize() WatchdogConfig {
	if c.Window <= 0 {
		c.Window = DefaultWatchdogWindow
	}
	if c.MinGateSamples <= 0 {
		c.MinGateSamples = DefaultWatchdogMinSamples
	}
	if c.MaxEscapeRate == 0 {
		c.MaxEscapeRate = DefaultMaxEscapeRate
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// TripReason is the full diagnostic record of one watchdog trip: the window
// rates at the moment of the trip, the thresholds they were judged against,
// and which checks fired. Retrieved via WatchdogSnapshot.LastTrip.
type TripReason struct {
	// At is the trip time per the configured Clock.
	At time.Time

	// Window and GateSamples size the evidence: how many commit/abort
	// events the closed window held and how many gate decisions fell in it.
	Window      int
	GateSamples int

	// Observed window rates (see WatchdogSnapshot).
	EscapeRate float64
	HoldRate   float64
	AbortRate  float64

	// Configured thresholds the rates were compared to (≤0 = check disabled).
	MaxEscapeRate float64
	MaxHoldRate   float64
	MaxAbortRate  float64

	// Causes lists the checks that fired, e.g. "escape-rate 0.40>0.25".
	// At least one entry; multiple when several thresholds tripped at once.
	Causes []string
}

// String renders the reason compactly for logs and ring events.
func (r TripReason) String() string {
	return fmt.Sprintf("%s (window=%d gate=%d)",
		strings.Join(r.Causes, ", "), r.Window, r.GateSamples)
}

// WatchdogState is the breaker position.
type WatchdogState int

// Watchdog states.
const (
	// WatchdogArmed: guidance active, windows being evaluated.
	WatchdogArmed WatchdogState = iota
	// WatchdogTripped: guidance suspended, every arrival passes through.
	WatchdogTripped
)

func (s WatchdogState) String() string {
	if s == WatchdogTripped {
		return "tripped"
	}
	return "armed"
}

// WatchdogSnapshot is a point-in-time view of the watchdog for health
// reporting.
type WatchdogSnapshot struct {
	State  WatchdogState
	Trips  uint64 // armed → tripped transitions so far
	Rearms uint64 // tripped → armed transitions so far

	// Rates from the last completed evaluation window (0 until one
	// completes with enough samples).
	EscapeRate float64 // escaped / gate decisions
	HoldRate   float64 // (held + escaped) / gate decisions
	AbortRate  float64 // aborts / events

	// LastTrip is the diagnostic record of the most recent trip, nil until
	// the first trip. The pointee is immutable once published.
	LastTrip *TripReason
}

// Watchdog wraps a Controller as a circuit breaker: it stays on the gate
// and sink paths permanently, delegating to the controller while armed and
// short-circuiting the gate while tripped (events still flow to the
// controller so its current-state tracking stays warm for a re-arm).
//
// Install the Watchdog — not the inner controller — as both the runtime's
// Gate and EventSink.
type Watchdog struct {
	ctrl *Controller
	cfg  WatchdogConfig

	tripped atomic.Bool // read on every Arrive; the hot flag

	mu           sync.Mutex
	winEvents    int
	winAborts    int
	basePassed   uint64
	baseHeld     uint64
	baseEscaped  uint64
	escRate      float64
	holdRate     float64
	abortRate    float64
	trips        uint64
	rearms       uint64
	cooldownLeft int
	lastTrip     *TripReason
}

// NewWatchdog returns a Watchdog guarding ctrl under cfg (zero fields
// defaulted).
func NewWatchdog(ctrl *Controller, cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{ctrl: ctrl, cfg: cfg.normalize()}
	w.basePassed, w.baseHeld, w.baseEscaped = ctrl.GateStats()
	return w
}

// Controller returns the guarded controller.
func (w *Watchdog) Controller() *Controller { return w.ctrl }

// Tripped reports whether the breaker is currently open (pass-through).
func (w *Watchdog) Tripped() bool { return w.tripped.Load() }

// Snapshot returns the current watchdog state and window rates.
func (w *Watchdog) Snapshot() WatchdogSnapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := WatchdogSnapshot{
		State:      WatchdogArmed,
		Trips:      w.trips,
		Rearms:     w.rearms,
		EscapeRate: w.escRate,
		HoldRate:   w.holdRate,
		AbortRate:  w.abortRate,
		LastTrip:   w.lastTrip,
	}
	if w.tripped.Load() {
		s.State = WatchdogTripped
	}
	return s
}

// Arrive implements the gate: pass-through while tripped, guided otherwise.
func (w *Watchdog) Arrive(p txid.Pair) telemetry.GateOutcome {
	if w.tripped.Load() {
		return telemetry.GatePass
	}
	return w.ctrl.Arrive(p)
}

// TxCommit implements the event sink: state tracking first, then window
// accounting.
func (w *Watchdog) TxCommit(p txid.Pair, wv uint64, aborts int) {
	w.ctrl.TxCommit(p, wv, aborts)
	w.observe(false)
}

// TxAbort implements the event sink.
func (w *Watchdog) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	w.ctrl.TxAbort(p, byWV, by, byKnown)
	w.observe(true)
}

// observe advances the sliding window by one event and runs the breaker
// logic at window boundaries (armed) or the cooldown countdown (tripped).
func (w *Watchdog) observe(abort bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.winEvents++
	if abort {
		w.winAborts++
	}
	if w.tripped.Load() {
		if w.cfg.Cooldown > 0 {
			w.cooldownLeft--
			if w.cooldownLeft <= 0 {
				w.rearmLocked()
			}
		}
		return
	}
	if w.winEvents >= w.cfg.Window {
		w.evaluateLocked()
	}
}

// evaluateLocked closes the current window: computes the three rates,
// trips the breaker when any enabled threshold is exceeded, and opens a
// fresh window. Called with mu held.
func (w *Watchdog) evaluateLocked() {
	p, h, e := w.ctrl.GateStats()
	dp, dh, de := p-w.basePassed, h-w.baseHeld, e-w.baseEscaped
	gateTotal := dp + dh + de

	w.abortRate = float64(w.winAborts) / float64(w.winEvents)
	var causes []string
	if gateTotal >= uint64(w.cfg.MinGateSamples) {
		w.escRate = float64(de) / float64(gateTotal)
		w.holdRate = float64(dh+de) / float64(gateTotal)
		if w.cfg.MaxEscapeRate > 0 && w.escRate > w.cfg.MaxEscapeRate {
			causes = append(causes, fmt.Sprintf("escape-rate %.2f>%.2f", w.escRate, w.cfg.MaxEscapeRate))
		}
		if w.cfg.MaxHoldRate > 0 && w.holdRate > w.cfg.MaxHoldRate {
			causes = append(causes, fmt.Sprintf("hold-rate %.2f>%.2f", w.holdRate, w.cfg.MaxHoldRate))
		}
	}
	if w.cfg.MaxAbortRate > 0 && w.abortRate > w.cfg.MaxAbortRate {
		causes = append(causes, fmt.Sprintf("abort-rate %.2f>%.2f", w.abortRate, w.cfg.MaxAbortRate))
	}
	if len(causes) > 0 {
		reason := &TripReason{
			At:            w.cfg.Clock(),
			Window:        w.winEvents,
			GateSamples:   int(gateTotal),
			EscapeRate:    w.escRate,
			HoldRate:      w.holdRate,
			AbortRate:     w.abortRate,
			MaxEscapeRate: w.cfg.MaxEscapeRate,
			MaxHoldRate:   w.cfg.MaxHoldRate,
			MaxAbortRate:  w.cfg.MaxAbortRate,
			Causes:        causes,
		}
		w.tripped.Store(true)
		w.trips++
		w.cooldownLeft = w.cfg.Cooldown
		w.lastTrip = reason
		w.ctrl.tel.WatchdogTrip(w.currentStateKey(), reason.String())
	}
	w.winEvents, w.winAborts = 0, 0
	w.basePassed, w.baseHeld, w.baseEscaped = p, h, e
}

// rearmLocked closes pass-through mode and resumes guidance with a fresh
// window. Called with mu held.
func (w *Watchdog) rearmLocked() {
	w.tripped.Store(false)
	w.rearms++
	w.winEvents, w.winAborts = 0, 0
	w.basePassed, w.baseHeld, w.baseEscaped = w.ctrl.GateStats()
	w.ctrl.tel.WatchdogRearm(w.currentStateKey())
}

// currentStateKey returns the controller's tracked state key for event
// annotation, or "" before the first commit.
func (w *Watchdog) currentStateKey() string {
	k, ok := w.ctrl.CurrentState()
	if !ok {
		return ""
	}
	return string(k)
}
