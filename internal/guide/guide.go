// Package guide implements the paper's guided execution (Section V): a
// transaction-start gate that holds back threads whose (transaction,
// thread) pair does not participate in any high-probability destination
// state of the automaton's current state, re-checking up to K times before
// letting the thread proceed (the deadlock/progress escape hatch).
//
// The controller tracks the STM's current thread transactional state
// online: it observes the commit/abort event stream and finalizes each
// commit's state one commit late, so that aborts attributed to a commit —
// which are reported by the aborting threads shortly *after* the commit —
// have time to arrive before the state is published.
package guide

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gstm/internal/model"
	"gstm/internal/telemetry"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

// DefaultGateRetries is the paper's k: how many times the gate re-checks a
// held-back thread before forcing progress.
const DefaultGateRetries = 16

// Controller implements tl2.Gate and tl2.EventSink. Install it as both on
// a runtime (SetGate/SetSink) to obtain guided execution; it forwards
// events to an optional inner sink so measurement can continue during
// guided runs.
type Controller struct {
	table   atomic.Pointer[model.GuideTable]
	retries int
	inner   innerSink
	onState func(trace.Key) // optional hook: fires when the tracked state updates

	cur atomic.Pointer[stateBox] // current TTS key; nil until first commit

	mu      sync.Mutex
	pending pendingCommit
	hasPend bool
	aborts  map[uint64][]txid.Packed // byWV → aborted pairs (recent window)
	seen    uint64                   // commits processed, for periodic pruning

	held    atomic.Uint64 // gate decisions that delayed a thread
	passed  atomic.Uint64 // gate decisions that let a thread through at once
	escaped atomic.Uint64 // gate decisions forced through after K retries

	// tel, when set (WithTelemetry), receives per-state gate telemetry and
	// hold-time samples. Nil-safe: all record calls no-op without it.
	tel *telemetry.Metrics
}

type stateBox struct{ key trace.Key }

type pendingCommit struct {
	wv   uint64
	pair txid.Packed
}

// innerSink mirrors tl2.EventSink without importing tl2 (avoids a cycle if
// tl2 ever grows a dependency on guide configuration types).
type innerSink interface {
	TxCommit(p txid.Pair, wv uint64, aborts int)
	TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool)
}

// Option configures a Controller.
type Option func(*Controller)

// WithGateRetries overrides the paper's k.
func WithGateRetries(k int) Option {
	return func(c *Controller) {
		if k > 0 {
			c.retries = k
		}
	}
}

// WithInnerSink tees all events to s after state tracking.
func WithInnerSink(s innerSink) Option {
	return func(c *Controller) { c.inner = s }
}

// WithStateCallback registers fn to be called (synchronously, under the
// controller's lock) each time the tracked current state changes. The
// adaptive controller uses it to learn transitions online.
func WithStateCallback(fn func(trace.Key)) Option {
	return func(c *Controller) { c.onState = fn }
}

// WithTelemetry routes per-state gate telemetry (visits, holds, escapes,
// hold-time samples, watchdog events) into m — typically the guided
// runtime's own Metrics so gate and engine telemetry land in one snapshot.
func WithTelemetry(m *telemetry.Metrics) Option {
	return func(c *Controller) { c.tel = m }
}

// NewController returns a Controller over a compiled guide table.
func NewController(table *model.GuideTable, opts ...Option) *Controller {
	c := &Controller{
		retries: DefaultGateRetries,
		aborts:  make(map[uint64][]txid.Packed),
	}
	c.table.Store(table)
	for _, o := range opts {
		o(c)
	}
	return c
}

// SetTable atomically replaces the guide table; in-flight gate checks see
// either the old or the new table.
func (c *Controller) SetTable(table *model.GuideTable) {
	c.table.Store(table)
}

// CurrentState returns the tracked current state key and whether any state
// has been observed yet.
func (c *Controller) CurrentState() (trace.Key, bool) {
	b := c.cur.Load()
	if b == nil {
		return "", false
	}
	return b.key, true
}

// GateStats reports how many gate arrivals passed immediately, were held at
// least once, and were forced through by the K-retry escape hatch.
func (c *Controller) GateStats() (passed, held, escaped uint64) {
	return c.passed.Load(), c.held.Load(), c.escaped.Load()
}

// Arrive implements the gate (tl2.Gate). It blocks the calling thread for
// up to retries re-checks while its pair is outside every high-probability
// destination of the current state; an unknown current state, or exhausting
// the retries, lets the thread proceed (Section V progress rule).
func (c *Controller) Arrive(p txid.Pair) telemetry.GateOutcome {
	pk := p.Pack()
	heldOnce := false
	var stateKey string
	var t0 time.Time // first-hold timestamp; hold time spans all re-checks
	for i := 0; ; i++ {
		b := c.cur.Load()
		if b == nil {
			// No state observed yet: execution has just begun.
			break
		}
		stateKey = string(b.key)
		allowed, known := c.table.Load().Allowed(b.key, pk)
		if !known || allowed {
			break
		}
		if i >= c.retries {
			c.escaped.Add(1)
			c.tel.GateArrival(stateKey, telemetry.GateEscape, uint64(p.Thread), time.Since(t0))
			return telemetry.GateEscape
		}
		if !heldOnce {
			t0 = time.Now()
		}
		heldOnce = true
		// Step aside so a thread that *is* in the destination set can run
		// and change the current state. A scheduler yield hands the core to
		// every other runnable worker once, which is exactly one "round" of
		// other threads' progress; sleeping would over-hold (the OS timer
		// granularity dwarfs a transaction) and serialize the program.
		// Yield counts follow tl2.backoff's tiers so chronically held
		// threads step aside longer instead of busy-spinning a single
		// Gosched on oversubscribed machines.
		heldYield(i)
	}
	if heldOnce {
		c.held.Add(1)
		c.tel.GateArrival(stateKey, telemetry.GateHold, uint64(p.Thread), time.Since(t0))
		return telemetry.GateHold
	}
	c.passed.Add(1)
	c.tel.GateArrival(stateKey, telemetry.GatePass, uint64(p.Thread), 0)
	return telemetry.GatePass
}

// heldYield yields the processor with the same tiered schedule as
// tl2.backoff (minimum one yield per re-check round, or the held thread
// would busy-spin the gate loop).
func heldYield(round int) {
	yields := 1
	switch {
	case round < 8:
		yields = 1
	case round < 32:
		yields = 4
	default:
		yields = 16
	}
	for i := 0; i < yields; i++ {
		runtime.Gosched()
	}
}

// TxCommit implements tl2.EventSink: it finalizes the previous pending
// commit into the new current state, then makes this commit pending.
func (c *Controller) TxCommit(p txid.Pair, wv uint64, aborts int) {
	c.mu.Lock()
	if c.hasPend {
		ab := c.aborts[c.pending.wv]
		delete(c.aborts, c.pending.wv)
		st := trace.NewState(ab, c.pending.pair)
		k := st.Key()
		c.cur.Store(&stateBox{key: k})
		if c.onState != nil {
			c.onState(k)
		}
	}
	c.pending = pendingCommit{wv: wv, pair: p.Pack()}
	c.hasPend = true
	c.seen++
	if c.seen%1024 == 0 {
		c.prune(wv)
	}
	c.mu.Unlock()

	if c.inner != nil {
		c.inner.TxCommit(p, wv, aborts)
	}
}

// TxAbort implements tl2.EventSink: it records the abort against the
// commit that caused it so the state finalized for that commit includes it.
func (c *Controller) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, byKnown bool) {
	c.mu.Lock()
	c.aborts[byWV] = append(c.aborts[byWV], p.Pack())
	c.mu.Unlock()

	if c.inner != nil {
		c.inner.TxAbort(p, byWV, by, byKnown)
	}
}

// prune drops abort records for commits far older than wv; their states
// have long been finalized. Called with mu held.
func (c *Controller) prune(wv uint64) {
	const window = 256
	for k := range c.aborts {
		if k+window < wv {
			delete(c.aborts, k)
		}
	}
}
