package guide

import (
	"strings"
	"testing"
	"time"

	"gstm/internal/model"
	"gstm/internal/telemetry"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

func pairOf(txn, thread int) txid.Pair {
	return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}
}

func soloStateKey(p txid.Pair) trace.Key {
	return trace.NewState(nil, p.Pack()).Key()
}

// adversarialTable compiles a guide table whose every known state's
// destination set contains only `ghost` — a pair that never actually runs
// — so every real arrival in a known state is held and finally escapes.
func adversarialTable(realPairs []txid.Pair, ghost txid.Pair) *model.GuideTable {
	m := model.New(4)
	for _, p := range realPairs {
		m.AddTransitionKeys(soloStateKey(p), soloStateKey(ghost))
	}
	return model.Compile(m, 4)
}

// TestWatchdogTripsOnEscapeRate drives an adversarial model: every gate
// arrival escapes, so the first full window must trip the breaker into
// pass-through mode.
func TestWatchdogTripsOnEscapeRate(t *testing.T) {
	a, b, c := pairOf(0, 0), pairOf(1, 1), pairOf(2, 2)
	ghost := pairOf(9, 9)
	ctrl := NewController(adversarialTable([]txid.Pair{a, b, c}, ghost), WithGateRetries(2))
	w := NewWatchdog(ctrl, WatchdogConfig{Window: 8, MinGateSamples: 2, MaxEscapeRate: 0.25})

	// Two commits establish a tracked current state (key {<a>}).
	w.TxCommit(a, 1, 0)
	w.TxCommit(b, 2, 0)
	if k, ok := ctrl.CurrentState(); !ok || k != soloStateKey(a) {
		t.Fatalf("current state not established: %q ok=%v", k, ok)
	}

	// Six arrivals by a disallowed pair, six more events: closes the
	// 8-event window with a 100% escape rate.
	for i := 0; i < 6; i++ {
		w.Arrive(c) // held twice, then forced through
		w.TxCommit(b, uint64(3+i), 0)
	}
	if !w.Tripped() {
		t.Fatal("watchdog did not trip on 100% escape rate")
	}
	snap := w.Snapshot()
	if snap.State != WatchdogTripped || snap.Trips != 1 {
		t.Fatalf("snapshot = %+v, want tripped with 1 trip", snap)
	}
	if snap.EscapeRate != 1.0 {
		t.Fatalf("escape rate = %v, want 1.0", snap.EscapeRate)
	}
	if snap.HoldRate != 1.0 {
		t.Fatalf("hold rate = %v, want 1.0", snap.HoldRate)
	}

	// Pass-through: arrivals short-circuit, so gate stats stop moving.
	p0, h0, e0 := ctrl.GateStats()
	for i := 0; i < 10; i++ {
		w.Arrive(c)
	}
	if p1, h1, e1 := ctrl.GateStats(); p1 != p0 || h1 != h0 || e1 != e0 {
		t.Fatalf("tripped watchdog still consulted the gate: %d/%d/%d → %d/%d/%d", p0, h0, e0, p1, h1, e1)
	}
	// Cooldown is 0: the trip is final.
	for i := 0; i < 50; i++ {
		w.TxCommit(b, uint64(100+i), 0)
	}
	if !w.Tripped() {
		t.Fatal("watchdog re-armed despite Cooldown=0")
	}
}

// TestWatchdogRearmsAfterCooldown verifies the tripped → armed transition
// and that a still-bad model trips it again.
func TestWatchdogRearmsAfterCooldown(t *testing.T) {
	a, b, c := pairOf(0, 0), pairOf(1, 1), pairOf(2, 2)
	ctrl := NewController(adversarialTable([]txid.Pair{a, b, c}, pairOf(9, 9)), WithGateRetries(1))
	dog := NewWatchdog(ctrl, WatchdogConfig{Window: 4, MinGateSamples: 1, MaxEscapeRate: 0.5, Cooldown: 3})

	wv := uint64(0)
	commit := func(p txid.Pair) { wv++; dog.TxCommit(p, wv, 0) }

	commit(a)
	commit(b)
	for i := 0; i < 2; i++ { // closes the first 4-event window
		dog.Arrive(c)
		commit(b)
	}
	if !dog.Tripped() {
		t.Fatal("watchdog did not trip")
	}
	for i := 0; i < 3; i++ { // cooldown events
		commit(b)
	}
	if dog.Tripped() {
		t.Fatal("watchdog did not re-arm after cooldown")
	}
	snap := dog.Snapshot()
	if snap.Trips != 1 || snap.Rearms != 1 {
		t.Fatalf("trips/rearms = %d/%d, want 1/1", snap.Trips, snap.Rearms)
	}
	// Model is still adversarial: next window trips again.
	for i := 0; i < 4; i++ {
		dog.Arrive(c)
		commit(b)
	}
	if !dog.Tripped() {
		t.Fatal("re-armed watchdog failed to trip on a still-bad model")
	}
	if s := dog.Snapshot(); s.Trips != 2 {
		t.Fatalf("trips = %d, want 2", s.Trips)
	}
}

// TestWatchdogTripsOnAbortRate covers the opt-in abort-rate breaker,
// which needs no gate samples at all.
func TestWatchdogTripsOnAbortRate(t *testing.T) {
	a, b := pairOf(0, 0), pairOf(1, 1)
	ctrl := NewController(adversarialTable([]txid.Pair{a, b}, pairOf(9, 9)))
	dog := NewWatchdog(ctrl, WatchdogConfig{
		Window:        4,
		MaxEscapeRate: -1,  // disabled
		MaxAbortRate:  0.5, // trip when >50% of events are aborts
	})
	dog.TxCommit(a, 1, 0)
	dog.TxAbort(b, 1, a, true)
	dog.TxAbort(b, 1, a, true)
	dog.TxAbort(b, 1, a, true)
	if !dog.Tripped() {
		t.Fatal("watchdog did not trip on 75% abort rate")
	}
	if s := dog.Snapshot(); s.AbortRate != 0.75 {
		t.Fatalf("abort rate = %v, want 0.75", s.AbortRate)
	}
}

// TestWatchdogHealthyModelStaysArmed: a model matching the workload never
// trips the breaker.
func TestWatchdogHealthyModelStaysArmed(t *testing.T) {
	a, b := pairOf(0, 0), pairOf(1, 1)
	// The controller tracks the current state one commit late: when pair p
	// arrives under an alternating a,b,a,b schedule the finalized state is
	// {<p>} itself, so a model matching this workload has self-loops.
	m := model.New(2)
	m.AddTransitionKeys(soloStateKey(a), soloStateKey(a))
	m.AddTransitionKeys(soloStateKey(b), soloStateKey(b))
	ctrl := NewController(model.Compile(m, 4))
	dog := NewWatchdog(ctrl, WatchdogConfig{Window: 8, MinGateSamples: 1})

	wv := uint64(0)
	for i := 0; i < 64; i++ {
		p := a
		if i%2 == 1 {
			p = b
		}
		dog.Arrive(p)
		wv++
		dog.TxCommit(p, wv, 0)
	}
	if dog.Tripped() {
		t.Fatal("watchdog tripped on a healthy model")
	}
	if s := dog.Snapshot(); s.EscapeRate != 0 || s.Trips != 0 {
		t.Fatalf("snapshot = %+v, want zero escapes and trips", s)
	}
}

// TestWatchdogTripReason verifies the typed trip-reason record: window
// rates, thresholds, firing causes, and the injected-clock timestamp.
func TestWatchdogTripReason(t *testing.T) {
	a, b, c := pairOf(0, 0), pairOf(1, 1), pairOf(2, 2)
	ctrl := NewController(adversarialTable([]txid.Pair{a, b, c}, pairOf(9, 9)), WithGateRetries(1))
	fakeNow := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	dog := NewWatchdog(ctrl, WatchdogConfig{
		Window:         4,
		MinGateSamples: 1,
		MaxEscapeRate:  0.5,
		MaxAbortRate:   0.1,
		Clock:          func() time.Time { return fakeNow },
	})

	if dog.Snapshot().LastTrip != nil {
		t.Fatal("LastTrip non-nil before any trip")
	}
	wv := uint64(0)
	commit := func(p txid.Pair) { wv++; dog.TxCommit(p, wv, 0) }
	commit(a)
	commit(b)
	dog.Arrive(c) // escapes (retries=1)
	dog.TxAbort(c, wv, b, true)
	commit(b) // closes the 4-event window: escape rate 1.0, abort rate 0.25

	if !dog.Tripped() {
		t.Fatal("watchdog did not trip")
	}
	r := dog.Snapshot().LastTrip
	if r == nil {
		t.Fatal("LastTrip nil after trip")
	}
	if !r.At.Equal(fakeNow) {
		t.Fatalf("At = %v, want injected clock %v", r.At, fakeNow)
	}
	if r.Window != 4 || r.GateSamples != 1 {
		t.Fatalf("window/samples = %d/%d, want 4/1", r.Window, r.GateSamples)
	}
	if r.EscapeRate != 1.0 || r.AbortRate != 0.25 {
		t.Fatalf("escape/abort rate = %v/%v, want 1.0/0.25", r.EscapeRate, r.AbortRate)
	}
	if r.MaxEscapeRate != 0.5 || r.MaxAbortRate != 0.1 {
		t.Fatalf("thresholds = %v/%v", r.MaxEscapeRate, r.MaxAbortRate)
	}
	if len(r.Causes) != 2 {
		t.Fatalf("causes = %v, want escape-rate and abort-rate", r.Causes)
	}
	s := r.String()
	for _, want := range []string{"escape-rate 1.00>0.50", "abort-rate 0.25>0.10", "window=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

// TestWatchdogTelemetryEvents verifies trips and re-arms land in the
// attached Metrics: counters plus ring events carrying the trip reason.
func TestWatchdogTelemetryEvents(t *testing.T) {
	a, b, c := pairOf(0, 0), pairOf(1, 1), pairOf(2, 2)
	tel := telemetry.NewDetached("guide-test")
	ctrl := NewController(adversarialTable([]txid.Pair{a, b, c}, pairOf(9, 9)),
		WithGateRetries(1), WithTelemetry(tel))
	dog := NewWatchdog(ctrl, WatchdogConfig{Window: 4, MinGateSamples: 1, MaxEscapeRate: 0.5, Cooldown: 3})

	wv := uint64(0)
	commit := func(p txid.Pair) { wv++; dog.TxCommit(p, wv, 0) }
	commit(a)
	commit(b)
	for i := 0; i < 2; i++ {
		dog.Arrive(c)
		commit(b)
	}
	for i := 0; i < 3; i++ { // cooldown → re-arm
		commit(b)
	}
	snap := tel.Snapshot()
	if snap.WatchdogTrips != 1 || snap.WatchdogRearms != 1 {
		t.Fatalf("telemetry trips/rearms = %d/%d, want 1/1", snap.WatchdogTrips, snap.WatchdogRearms)
	}
	if snap.GateEscaped != 2 {
		t.Fatalf("gate escapes = %d, want 2", snap.GateEscaped)
	}
	if snap.GateHoldTime.Count != 2 {
		t.Fatalf("gate hold-time samples = %d, want 2 (escapes were first held)", snap.GateHoldTime.Count)
	}
	if len(snap.GateStates) == 0 {
		t.Fatal("no per-state gate telemetry recorded")
	}
	var sawTrip bool
	for _, ev := range snap.Events {
		if ev.Kind == telemetry.KindWatchdogTrip && strings.Contains(ev.Detail, "escape-rate") {
			sawTrip = true
		}
	}
	if !sawTrip {
		t.Fatalf("no trip event with reason in ring: %+v", snap.Events)
	}
}
