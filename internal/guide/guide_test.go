package guide

import (
	"sync"
	"testing"

	"gstm/internal/model"
	"gstm/internal/tl2"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

func pk(txn, thread int) txid.Packed {
	return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}.Pack()
}

func pair(txn, thread int) txid.Pair {
	return txid.Pair{Txn: txid.TxnID(txn), Thread: txid.ThreadID(thread)}
}

// buildTable builds a table where from state A={<a0>} the only
// high-probability destination is B={<b1>}, and C={<c2>} is low
// probability.
func buildTable(t *testing.T) *model.GuideTable {
	t.Helper()
	a := trace.NewState(nil, pk(0, 0))
	b := trace.NewState(nil, pk(1, 1))
	c := trace.NewState(nil, pk(2, 2))
	var runs [][]trace.State
	for i := 0; i < 40; i++ {
		runs = append(runs, []trace.State{a, b})
	}
	runs = append(runs, []trace.State{a, c})
	m := model.Build(2, runs)
	return model.Compile(m, 4)
}

func TestArriveBeforeAnyState(t *testing.T) {
	c := NewController(buildTable(t))
	// Must not block: no state observed yet.
	c.Arrive(pair(2, 2))
	passed, held, escaped := c.GateStats()
	if passed != 1 || held != 0 || escaped != 0 {
		t.Fatalf("stats = %d/%d/%d", passed, held, escaped)
	}
}

func TestStateTrackingOneCommitDelay(t *testing.T) {
	c := NewController(buildTable(t))
	if _, ok := c.CurrentState(); ok {
		t.Fatal("state before any commit")
	}
	c.TxCommit(pair(0, 0), 1, 0)
	if _, ok := c.CurrentState(); ok {
		t.Fatal("state finalized too early (no delay)")
	}
	c.TxCommit(pair(1, 1), 2, 0)
	k, ok := c.CurrentState()
	if !ok {
		t.Fatal("no state after second commit")
	}
	want := trace.NewState(nil, pk(0, 0)).Key()
	if k != want {
		t.Fatalf("current state = %q, want %q", k, want)
	}
}

func TestAbortsFoldedIntoState(t *testing.T) {
	c := NewController(buildTable(t))
	c.TxCommit(pair(1, 7), 5, 0)               // pending commit wv=5
	c.TxAbort(pair(0, 6), 5, pair(1, 7), true) // abort attributed to wv=5
	c.TxCommit(pair(0, 0), 6, 0)               // finalizes wv=5's state
	k, ok := c.CurrentState()
	if !ok {
		t.Fatal("no state")
	}
	want := trace.NewState([]txid.Packed{pk(0, 6)}, pk(1, 7))
	if k != want.Key() {
		t.Fatalf("state = %q, want %q (the paper's {<a6>, <b7>})", k, want.Key())
	}
}

func TestGateBlocksLowProbabilityPair(t *testing.T) {
	c := NewController(buildTable(t), WithGateRetries(3))
	// Drive current state to A.
	c.TxCommit(pair(0, 0), 1, 0)
	c.TxCommit(pair(9, 9), 2, 0)
	k, _ := c.CurrentState()
	wantA := trace.NewState(nil, pk(0, 0)).Key()
	if k != wantA {
		t.Fatalf("setup: current state %q, want %q", k, wantA)
	}
	// Pair (2,2) — only in low-probability destination C — must be held
	// and eventually escape.
	c.Arrive(pair(2, 2))
	_, _, escaped := c.GateStats()
	if escaped != 1 {
		t.Fatalf("escaped = %d, want 1", escaped)
	}
	// Pair (1,1) participates in B, the high-probability destination.
	c.Arrive(pair(1, 1))
	passed, _, _ := c.GateStats()
	if passed != 1 {
		t.Fatalf("passed = %d, want 1", passed)
	}
}

func TestUnknownStateNeverBlocks(t *testing.T) {
	c := NewController(buildTable(t), WithGateRetries(1000000))
	// Current state becomes {<z9>}, absent from the model.
	c.TxCommit(pair(25, 9), 1, 0)
	c.TxCommit(pair(25, 9), 2, 0)
	done := make(chan struct{})
	go func() {
		c.Arrive(pair(2, 2)) // would block ~forever if unknown states gated
		close(done)
	}()
	<-done
}

type countSink struct {
	mu              sync.Mutex
	commits, aborts int
}

func (s *countSink) TxCommit(p txid.Pair, wv uint64, aborts int) {
	s.mu.Lock()
	s.commits++
	s.mu.Unlock()
}

func (s *countSink) TxAbort(p txid.Pair, byWV uint64, by txid.Pair, known bool) {
	s.mu.Lock()
	s.aborts++
	s.mu.Unlock()
}

func TestInnerSinkTee(t *testing.T) {
	inner := &countSink{}
	c := NewController(buildTable(t), WithInnerSink(inner))
	c.TxCommit(pair(0, 0), 1, 0)
	c.TxAbort(pair(1, 1), 1, pair(0, 0), true)
	if inner.commits != 1 || inner.aborts != 1 {
		t.Fatalf("tee lost events: %d/%d", inner.commits, inner.aborts)
	}
}

func TestPruneDropsStaleAborts(t *testing.T) {
	c := NewController(buildTable(t))
	c.TxAbort(pair(1, 1), 1, pair(0, 0), true)
	for wv := uint64(2); wv < 2100; wv++ {
		c.TxCommit(pair(0, 0), wv, 0)
	}
	c.mu.Lock()
	n := len(c.aborts)
	c.mu.Unlock()
	if n > 2 {
		t.Fatalf("abort map grew to %d entries; prune failed", n)
	}
}

// TestGuidedEndToEnd wires a Controller into a real TL2 runtime and checks
// that guided execution still completes all work correctly.
func TestGuidedEndToEnd(t *testing.T) {
	// Profile phase: run a contended counter workload, collect the trace.
	profileRT := tl2.New(tl2.Config{Interleave: 4})
	col := trace.NewCollector()
	profileRT.SetSink(col)
	run := func(rt *tl2.Runtime, v *tl2.Var[int]) {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(id txid.ThreadID) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					_ = rt.Atomic(id, txid.TxnID(int(id)%2), func(tx *tl2.Tx) error {
						tl2.Write(tx, v, tl2.Read(tx, v)+1)
						return nil
					})
				}
			}(txid.ThreadID(w))
		}
		wg.Wait()
	}
	v1 := tl2.NewVar(0)
	run(profileRT, v1)
	tr := col.Finalize()
	if tr.Commits != 400 {
		t.Fatalf("profile commits = %d", tr.Commits)
	}

	// Model + guided phase.
	m := model.BuildFromTraces(4, []*trace.Trace{tr})
	if m.NumStates() == 0 {
		t.Fatal("model is empty")
	}
	table := model.Compile(m, 4)
	guidedRT := tl2.New(tl2.Config{Interleave: 4})
	inner := &countSink{}
	ctrl := NewController(table, WithInnerSink(inner))
	guidedRT.SetSink(ctrl)
	guidedRT.SetGate(ctrl)

	v2 := tl2.NewVar(0)
	run(guidedRT, v2)
	if got := v2.Peek(); got != 400 {
		t.Fatalf("guided counter = %d, want 400 (guidance broke correctness)", got)
	}
	if inner.commits != 400 {
		t.Fatalf("inner sink commits = %d", inner.commits)
	}
}
