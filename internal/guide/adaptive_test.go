package guide

import (
	"sync"
	"testing"

	"gstm/internal/model"
	"gstm/internal/tl2"
	"gstm/internal/trace"
	"gstm/internal/txid"
)

func TestAdaptiveColdStartPassesEverything(t *testing.T) {
	a := NewAdaptive(4, nil, 4, 0)
	// No model yet: no state is known, every arrival passes.
	a.TxCommit(pair(0, 0), 1, 0)
	a.TxCommit(pair(1, 1), 2, 0)
	a.Arrive(pair(5, 3))
	passed, held, escaped := a.GateStats()
	if passed != 1 || held+escaped != 0 {
		t.Fatalf("stats = %d/%d/%d", passed, held, escaped)
	}
}

func TestAdaptiveLearnsTransitions(t *testing.T) {
	a := NewAdaptive(2, nil, 4, 4)
	// Feed a repeating commit pattern; the one-commit delay means state i
	// is finalized when commit i+1 arrives.
	for i := 0; i < 40; i++ {
		a.TxCommit(pair(txnOf(i), 0), uint64(i+1), 0)
	}
	if got := a.ModelStates(); got < 2 {
		t.Fatalf("model states = %d, want >= 2", got)
	}
	if a.Recompiles() == 0 {
		t.Fatal("guide table never recompiled")
	}
}

func txnOf(i int) int {
	if i%2 == 0 {
		return 0
	}
	return 1
}

func TestAdaptiveSeedModelUsedImmediately(t *testing.T) {
	// Seed with a model where from state A only B's participants may
	// start; the adaptive gate must enforce it before any online learning.
	a := trace.NewState(nil, pk(0, 0))
	b := trace.NewState(nil, pk(1, 1))
	c := trace.NewState(nil, pk(2, 2))
	var runs [][]trace.State
	for i := 0; i < 40; i++ {
		runs = append(runs, []trace.State{a, b})
	}
	runs = append(runs, []trace.State{a, c})
	seed := model.Build(2, runs)

	ad := NewAdaptive(2, seed, 4, 1<<20, WithGateRetries(3))
	ad.TxCommit(pair(0, 0), 1, 0)
	ad.TxCommit(pair(9, 9), 2, 0) // finalize A as current
	ad.Arrive(pair(2, 2))         // low-probability participant: must escape
	_, _, escaped := ad.GateStats()
	if escaped != 1 {
		t.Fatalf("escaped = %d, want 1", escaped)
	}
}

func TestAdaptiveSnapshotIndependent(t *testing.T) {
	ad := NewAdaptive(2, nil, 4, 4)
	for i := 0; i < 10; i++ {
		ad.TxCommit(pair(0, 0), uint64(i+1), 0)
	}
	snap := ad.Snapshot()
	before := snap.NumStates()
	for i := 10; i < 30; i++ {
		ad.TxCommit(pair(txnOf(i), 1), uint64(i+1), 0)
	}
	if snap.NumStates() != before {
		t.Fatal("snapshot mutated by continued learning")
	}
}

func TestAdaptiveEndToEndCorrectness(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	ad := NewAdaptive(4, nil, 2, 256)
	rt.SetSink(ad)
	rt.SetGate(ad)
	v := tl2.NewVar(0)
	var wg sync.WaitGroup
	const workers, per = 4, 250
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id txid.ThreadID) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(id, txid.TxnID(i%2), func(tx *tl2.Tx) error {
					tl2.Write(tx, v, tl2.Read(tx, v)+1)
					return nil
				})
			}
		}(txid.ThreadID(w))
	}
	wg.Wait()
	if got := v.Peek(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if ad.ModelStates() == 0 {
		t.Fatal("nothing learned during execution")
	}
	if ad.Recompiles() == 0 {
		t.Fatal("table never rebuilt during execution")
	}
}
