package guide

import (
	"sync"

	"gstm/internal/model"
	"gstm/internal/trace"
)

// Adaptive is an online-learning extension of guided execution (not in the
// paper, which trains offline and observes that unrepresentative training
// inputs weaken the model — Section VII "Remarks"). It starts from an
// optional pre-trained automaton (or empty), keeps learning transitions
// from the live event stream, and periodically recompiles the guide table
// so guidance tracks the workload it is actually steering.
//
// While the model is empty every state is unknown and the gate lets
// everything pass, so a cold-started Adaptive behaves like default
// execution and tightens as evidence accumulates.
type Adaptive struct {
	*Controller

	tfactor float64
	every   int // recompile period, in tracked state changes

	mu      sync.Mutex
	tsa     *model.TSA
	prev    trace.Key
	hasPrev bool
	seen    int
	builds  int
}

// NewAdaptive returns an adaptive controller for a workload with the given
// thread count. seedModel may be nil (cold start); it is copied by
// reference and extended in place, so do not reuse it elsewhere.
// recompileEvery <= 0 selects 2048 state changes.
func NewAdaptive(threads int, seedModel *model.TSA, tfactor float64, recompileEvery int, opts ...Option) *Adaptive {
	if tfactor <= 0 {
		tfactor = 4
	}
	if recompileEvery <= 0 {
		recompileEvery = 2048
	}
	a := &Adaptive{
		tfactor: tfactor,
		every:   recompileEvery,
		tsa:     seedModel,
	}
	if a.tsa == nil {
		a.tsa = model.New(threads)
	}
	opts = append(opts, WithStateCallback(a.observe))
	a.Controller = NewController(model.Compile(a.tsa, tfactor), opts...)
	return a
}

// observe is invoked by the embedded Controller whenever the tracked
// current state changes; it learns the transition and periodically
// recompiles the guide table.
func (a *Adaptive) observe(k trace.Key) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.hasPrev {
		a.tsa.AddTransitionKeys(a.prev, k)
	}
	a.prev, a.hasPrev = k, true
	a.seen++
	if a.seen%a.every == 0 {
		a.Controller.SetTable(model.Compile(a.tsa, a.tfactor))
		a.builds++
	}
}

// ModelStates returns the current size of the online model.
func (a *Adaptive) ModelStates() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.tsa.NumStates()
}

// Recompiles returns how many times the guide table has been rebuilt.
func (a *Adaptive) Recompiles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.builds
}

// Snapshot returns an independent copy of the online model, suitable for
// saving or offline analysis while execution continues.
func (a *Adaptive) Snapshot() *model.TSA {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := model.New(a.tsa.Threads)
	cp.Merge(a.tsa)
	return cp
}
