// Package txid defines the (thread, transaction) identifier pair used by
// every layer of GSTM: the STM runtimes tag commit and abort events with a
// Pair, the tracer folds pairs into thread transactional states, and the
// guided-execution gate matches a starting transaction's Pair against the
// model's destination states.
//
// The paper statically numbers each transactional site in the source
// (TM_BEGIN(ID)); TxnID plays that role here. ThreadID identifies the worker
// ("thread function") executing the transaction.
package txid

import "fmt"

// ThreadID identifies a worker thread (goroutine) in an application.
type ThreadID uint16

// TxnID identifies a static transaction site in the program source,
// mirroring the paper's TM_BEGIN(ID) instrumentation.
type TxnID uint16

// Pair is a (transaction site, thread) pair — the unit the paper
// concatenates into state tuples, e.g. <a6> is transaction "a" on thread 6.
type Pair struct {
	Txn    TxnID
	Thread ThreadID
}

// Packed is a Pair packed into a single comparable machine word:
// Txn in the high 16 bits, Thread in the low 16 bits.
type Packed uint32

// Pack returns the packed representation of p.
func (p Pair) Pack() Packed {
	return Packed(uint32(p.Txn)<<16 | uint32(p.Thread))
}

// Unpack returns the Pair encoded in k.
func (k Packed) Unpack() Pair {
	return Pair{Txn: TxnID(k >> 16), Thread: ThreadID(k & 0xffff)}
}

// String renders the pair in the paper's notation: transaction site as a
// letter sequence (a, b, ..., z, aa, ab, ...) concatenated with the thread
// number, e.g. "a6".
func (p Pair) String() string {
	return txnLetters(p.Txn) + fmt.Sprintf("%d", p.Thread)
}

// String renders the packed pair like Pair.String.
func (k Packed) String() string { return k.Unpack().String() }

// txnLetters converts a transaction site number to a base-26 letter string:
// 0→a, 1→b, ..., 25→z, 26→aa.
func txnLetters(t TxnID) string {
	// Bijective base-26 over 'a'..'z'.
	n := int(t) + 1
	buf := make([]byte, 0, 4)
	for n > 0 {
		n--
		buf = append(buf, byte('a'+n%26))
		n /= 26
	}
	// Reverse.
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return string(buf)
}
