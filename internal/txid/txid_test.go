package txid

import (
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(txn uint16, thread uint16) bool {
		p := Pair{Txn: TxnID(txn), Thread: ThreadID(thread)}
		return p.Pack().Unpack() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackOrdering(t *testing.T) {
	// Packing puts the transaction site in the high bits, so packed values
	// sort primarily by transaction site.
	a := Pair{Txn: 1, Thread: 65535}.Pack()
	b := Pair{Txn: 2, Thread: 0}.Pack()
	if a >= b {
		t.Fatalf("Pack ordering broken: %v >= %v", a, b)
	}
}

func TestPaperNotation(t *testing.T) {
	cases := []struct {
		p    Pair
		want string
	}{
		{Pair{Txn: 0, Thread: 6}, "a6"},
		{Pair{Txn: 1, Thread: 7}, "b7"},
		{Pair{Txn: 2, Thread: 3}, "c3"},
		{Pair{Txn: 3, Thread: 4}, "d4"},
		{Pair{Txn: 25, Thread: 0}, "z0"},
		{Pair{Txn: 26, Thread: 15}, "aa15"},
		{Pair{Txn: 27, Thread: 1}, "ab1"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.p, got, c.want)
		}
		if got := c.p.Pack().String(); got != c.want {
			t.Errorf("Packed String = %q, want %q", got, c.want)
		}
	}
}

func TestLettersDistinctProperty(t *testing.T) {
	// Distinct transaction IDs must render to distinct letter strings.
	seen := make(map[string]TxnID)
	for i := 0; i < 1000; i++ {
		s := txnLetters(TxnID(i))
		if prev, dup := seen[s]; dup {
			t.Fatalf("txnLetters collision: %d and %d both map to %q", prev, i, s)
		}
		seen[s] = TxnID(i)
	}
}
