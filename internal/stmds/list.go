// Package stmds provides transactional data structures built on the TL2
// engine: a sorted linked list, a hash table, a treap-based ordered map, a
// FIFO queue and a binary heap. They are the building blocks of the STAMP
// workload ports (internal/stamp), mirroring the C suite's lib/ directory
// (list.c, hashtable.c, rbtree.c, queue.c, heap.c).
//
// Every structure is manipulated inside a *tl2.Tx; all mutable fields are
// tl2.Var cells, so conflicts are detected at the same granularity as the
// original benchmarks (per node / per bucket).
package stmds

import "gstm/internal/tl2"

// listNode is a sorted-list node. Key is immutable after insertion; Val and
// Next are transactional.
type listNode[V any] struct {
	key  int64
	val  *tl2.Var[V]
	next *tl2.Var[*listNode[V]]
}

// List is a sorted singly-linked list mapping int64 keys to values, the
// analogue of STAMP's list.c. Duplicate keys are rejected by Insert.
type List[V any] struct {
	head *tl2.Var[*listNode[V]] // sentinel-free: head points at first node
	size *tl2.Var[int]
}

// NewList returns an empty list.
func NewList[V any]() *List[V] {
	return &List[V]{
		head: tl2.NewVar[*listNode[V]](nil),
		size: tl2.NewVar(0),
	}
}

// find returns the node with key k and its predecessor's next-cell
// (the head cell when the node would be first). node is nil when absent, in
// which case prev is where a new node must be linked.
func (l *List[V]) find(tx *tl2.Tx, k int64) (prev *tl2.Var[*listNode[V]], node *listNode[V]) {
	prev = l.head
	for {
		n := tl2.Read(tx, prev)
		if n == nil || n.key > k {
			return prev, nil
		}
		if n.key == k {
			return prev, n
		}
		prev = n.next
	}
}

// Insert adds k→v. It reports false (and changes nothing) when k is already
// present.
func (l *List[V]) Insert(tx *tl2.Tx, k int64, v V) bool {
	prev, node := l.find(tx, k)
	if node != nil {
		return false
	}
	succ := tl2.Read(tx, prev)
	n := &listNode[V]{
		key:  k,
		val:  tl2.NewVar(v),
		next: tl2.NewVar(succ),
	}
	tl2.Write(tx, prev, n)
	tl2.Write(tx, l.size, tl2.Read(tx, l.size)+1)
	return true
}

// Get returns the value for k.
func (l *List[V]) Get(tx *tl2.Tx, k int64) (V, bool) {
	_, node := l.find(tx, k)
	if node == nil {
		var zero V
		return zero, false
	}
	return tl2.Read(tx, node.val), true
}

// Set updates the value of an existing key, reporting whether it existed.
func (l *List[V]) Set(tx *tl2.Tx, k int64, v V) bool {
	_, node := l.find(tx, k)
	if node == nil {
		return false
	}
	tl2.Write(tx, node.val, v)
	return true
}

// Remove deletes k, reporting whether it was present.
func (l *List[V]) Remove(tx *tl2.Tx, k int64) bool {
	prev, node := l.find(tx, k)
	if node == nil {
		return false
	}
	tl2.Write(tx, prev, tl2.Read(tx, node.next))
	tl2.Write(tx, l.size, tl2.Read(tx, l.size)-1)
	return true
}

// Contains reports whether k is present.
func (l *List[V]) Contains(tx *tl2.Tx, k int64) bool {
	_, node := l.find(tx, k)
	return node != nil
}

// Len returns the number of elements.
func (l *List[V]) Len(tx *tl2.Tx) int { return tl2.Read(tx, l.size) }

// Range calls fn for each key/value in ascending key order until fn
// returns false. The iteration itself is transactional (every traversed
// node joins the read set).
func (l *List[V]) Range(tx *tl2.Tx, fn func(k int64, v V) bool) {
	cur := tl2.Read(tx, l.head)
	for cur != nil {
		if !fn(cur.key, tl2.Read(tx, cur.val)) {
			return
		}
		cur = tl2.Read(tx, cur.next)
	}
}
