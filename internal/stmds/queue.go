package stmds

import "gstm/internal/tl2"

// Queue is a transactional FIFO queue (STAMP's queue.c), a linked queue
// whose head and tail pointers are transactional cells. Concurrent
// enqueuers conflict on the tail, dequeuers on the head — the same
// contention points as the original.
type Queue[V any] struct {
	head *tl2.Var[*qnode[V]]
	tail *tl2.Var[*qnode[V]]
	size *tl2.Var[int]
}

type qnode[V any] struct {
	val  V
	next *tl2.Var[*qnode[V]]
}

// NewQueue returns an empty queue.
func NewQueue[V any]() *Queue[V] {
	return &Queue[V]{
		head: tl2.NewVar[*qnode[V]](nil),
		tail: tl2.NewVar[*qnode[V]](nil),
		size: tl2.NewVar(0),
	}
}

// Enqueue appends v.
func (q *Queue[V]) Enqueue(tx *tl2.Tx, v V) {
	n := &qnode[V]{val: v, next: tl2.NewVar[*qnode[V]](nil)}
	t := tl2.Read(tx, q.tail)
	if t == nil {
		tl2.Write(tx, q.head, n)
	} else {
		tl2.Write(tx, t.next, n)
	}
	tl2.Write(tx, q.tail, n)
	tl2.Write(tx, q.size, tl2.Read(tx, q.size)+1)
}

// Dequeue removes and returns the oldest element; ok is false when empty.
func (q *Queue[V]) Dequeue(tx *tl2.Tx) (v V, ok bool) {
	h := tl2.Read(tx, q.head)
	if h == nil {
		var zero V
		return zero, false
	}
	next := tl2.Read(tx, h.next)
	tl2.Write(tx, q.head, next)
	if next == nil {
		tl2.Write(tx, q.tail, nil)
	}
	tl2.Write(tx, q.size, tl2.Read(tx, q.size)-1)
	return h.val, true
}

// DequeueWait removes and returns the oldest element, calling tx.Retry
// when the queue is empty: under a blocking Run the goroutine parks on the
// queue head until an Enqueue commits; without blocking the Run returns
// ErrWouldBlock. The wakeup is precise — the park registers on exactly the
// cells this attempt read, so only commits touching this queue wake it.
func (q *Queue[V]) DequeueWait(tx *tl2.Tx) V {
	v, ok := q.Dequeue(tx)
	if !ok {
		tx.Retry()
	}
	return v
}

// Peek returns the oldest element without removing it.
func (q *Queue[V]) Peek(tx *tl2.Tx) (v V, ok bool) {
	h := tl2.Read(tx, q.head)
	if h == nil {
		var zero V
		return zero, false
	}
	return h.val, true
}

// Len returns the number of elements.
func (q *Queue[V]) Len(tx *tl2.Tx) int { return tl2.Read(tx, q.size) }

// Empty reports whether the queue has no elements.
func (q *Queue[V]) Empty(tx *tl2.Tx) bool { return tl2.Read(tx, q.size) == 0 }
