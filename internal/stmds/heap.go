package stmds

import (
	"errors"

	"gstm/internal/tl2"
)

// ErrHeapFull is returned by Heap.Push when the fixed capacity is
// exhausted.
var ErrHeapFull = errors.New("stmds: heap capacity exhausted")

// Heap is a transactional binary heap of fixed capacity (STAMP's heap.c,
// used by yada's work queue). Every slot is a transactional cell; pops
// conflict at the root, the hottest location of the original benchmark.
//
// The ordering is defined by the less function supplied at construction:
// less(a, b) true means a is popped before b.
type Heap[V any] struct {
	data *tl2.Array[V]
	size *tl2.Var[int]
	less func(a, b V) bool
}

// NewHeap returns an empty heap with the given capacity and ordering.
func NewHeap[V any](capacity int, less func(a, b V) bool) *Heap[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Heap[V]{
		data: tl2.NewArray[V](capacity),
		size: tl2.NewVar(0),
		less: less,
	}
}

// Push inserts v, returning ErrHeapFull at capacity.
func (h *Heap[V]) Push(tx *tl2.Tx, v V) error {
	n := tl2.Read(tx, h.size)
	if n >= h.data.Len() {
		return ErrHeapFull
	}
	tl2.WriteAt(tx, h.data, n, v)
	tl2.Write(tx, h.size, n+1)
	// Sift up.
	i := n
	cur := v
	for i > 0 {
		parent := (i - 1) / 2
		pv := tl2.ReadAt(tx, h.data, parent)
		if !h.less(cur, pv) {
			break
		}
		tl2.WriteAt(tx, h.data, i, pv)
		tl2.WriteAt(tx, h.data, parent, cur)
		i = parent
	}
	return nil
}

// Pop removes and returns the minimum element (per less); ok is false when
// empty.
func (h *Heap[V]) Pop(tx *tl2.Tx) (v V, ok bool) {
	n := tl2.Read(tx, h.size)
	if n == 0 {
		var zero V
		return zero, false
	}
	top := tl2.ReadAt(tx, h.data, 0)
	last := tl2.ReadAt(tx, h.data, n-1)
	n--
	tl2.Write(tx, h.size, n)
	if n == 0 {
		return top, true
	}
	tl2.WriteAt(tx, h.data, 0, last)
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		sv := last
		if l < n {
			lv := tl2.ReadAt(tx, h.data, l)
			if h.less(lv, sv) {
				smallest, sv = l, lv
			}
		}
		if r < n {
			rv := tl2.ReadAt(tx, h.data, r)
			if h.less(rv, sv) {
				smallest, sv = r, rv
			}
		}
		if smallest == i {
			break
		}
		tl2.WriteAt(tx, h.data, i, sv)
		tl2.WriteAt(tx, h.data, smallest, last)
		i = smallest
	}
	return top, true
}

// PopWait removes and returns the minimum element, calling tx.Retry when
// the heap is empty: under a blocking Run the goroutine parks on the heap
// size cell until a Push commits; without blocking the Run returns
// ErrWouldBlock.
func (h *Heap[V]) PopWait(tx *tl2.Tx) V {
	v, ok := h.Pop(tx)
	if !ok {
		tx.Retry()
	}
	return v
}

// Peek returns the minimum element without removing it.
func (h *Heap[V]) Peek(tx *tl2.Tx) (v V, ok bool) {
	if tl2.Read(tx, h.size) == 0 {
		var zero V
		return zero, false
	}
	return tl2.ReadAt(tx, h.data, 0), true
}

// Len returns the number of elements.
func (h *Heap[V]) Len(tx *tl2.Tx) int { return tl2.Read(tx, h.size) }

// Cap returns the fixed capacity.
func (h *Heap[V]) Cap() int { return h.data.Len() }
