package stmds

import "gstm/internal/tl2"

// HashTable maps int64 keys to values using fixed-size bucketing with one
// sorted List per bucket — STAMP's hashtable.c shape. Conflicts occur per
// bucket chain, so tables sized well above the working set behave like the
// original's low-contention dictionaries while a deliberately small table
// produces hot buckets.
type HashTable[V any] struct {
	buckets []*List[V]
	mask    uint64
	size    *tl2.Var[int]
}

// NewHashTable returns a table with nbuckets rounded up to a power of two
// (minimum 16).
func NewHashTable[V any](nbuckets int) *HashTable[V] {
	n := 16
	for n < nbuckets {
		n <<= 1
	}
	h := &HashTable[V]{
		buckets: make([]*List[V], n),
		mask:    uint64(n - 1),
		size:    tl2.NewVar(0),
	}
	for i := range h.buckets {
		h.buckets[i] = NewList[V]()
	}
	return h
}

func (h *HashTable[V]) bucket(k int64) *List[V] {
	x := uint64(k)
	// Fibonacci scrambling spreads sequential keys across buckets.
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return h.buckets[x&h.mask]
}

// Insert adds k→v, reporting false when k already exists.
func (h *HashTable[V]) Insert(tx *tl2.Tx, k int64, v V) bool {
	if !h.bucket(k).Insert(tx, k, v) {
		return false
	}
	tl2.Write(tx, h.size, tl2.Read(tx, h.size)+1)
	return true
}

// InsertNoCount is Insert without maintaining the global size counter.
// STAMP's genome builds its segment table this way to avoid serializing all
// inserts on one counter; Len is then unavailable.
func (h *HashTable[V]) InsertNoCount(tx *tl2.Tx, k int64, v V) bool {
	return h.bucket(k).Insert(tx, k, v)
}

// RemoveNoCount is Remove without maintaining the global size counter —
// the deletion dual of InsertNoCount, for stores whose keys are tracked
// (or deliberately untracked) outside the transaction, such as the
// serving layer's KV table where a transactional size cell would
// serialize every otherwise-disjoint insert and delete.
func (h *HashTable[V]) RemoveNoCount(tx *tl2.Tx, k int64) bool {
	return h.bucket(k).Remove(tx, k)
}

// Get returns the value stored under k.
func (h *HashTable[V]) Get(tx *tl2.Tx, k int64) (V, bool) {
	return h.bucket(k).Get(tx, k)
}

// Set updates an existing key, reporting whether it existed.
func (h *HashTable[V]) Set(tx *tl2.Tx, k int64, v V) bool {
	return h.bucket(k).Set(tx, k, v)
}

// Remove deletes k, reporting whether it was present. It only maintains the
// size counter for keys inserted with Insert.
func (h *HashTable[V]) Remove(tx *tl2.Tx, k int64) bool {
	if !h.bucket(k).Remove(tx, k) {
		return false
	}
	tl2.Write(tx, h.size, tl2.Read(tx, h.size)-1)
	return true
}

// Contains reports whether k is present.
func (h *HashTable[V]) Contains(tx *tl2.Tx, k int64) bool {
	return h.bucket(k).Contains(tx, k)
}

// Len returns the number of Insert-ed elements.
func (h *HashTable[V]) Len(tx *tl2.Tx) int { return tl2.Read(tx, h.size) }

// NumBuckets returns the bucket count (for tests and sizing heuristics).
func (h *HashTable[V]) NumBuckets() int { return len(h.buckets) }

// RangeAll calls fn for every key/value pair, bucket by bucket, until fn
// returns false. Order is unspecified but deterministic for a fixed table.
func (h *HashTable[V]) RangeAll(tx *tl2.Tx, fn func(k int64, v V) bool) {
	for _, b := range h.buckets {
		stop := false
		b.Range(tx, func(k int64, v V) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}
