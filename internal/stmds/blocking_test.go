package stmds

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gstm/internal/tl2"
	"gstm/internal/txid"
)

// TestSelectProducersConsumers is the blocking-composition property test
// (run under -race in CI): N producers feed two queues, M consumers drain
// them through a single Select — parking when both are empty, woken by
// whichever enqueue commits first — and the union of everything consumed
// must be exactly the multiset produced: nothing lost (a lost wakeup
// would park a consumer forever and hang the drain), nothing duplicated,
// and no deadlock (a watchdog bounds the whole run).
//
// The oracle is the produced multiset itself — the same check a channel
// fan-in would give: every value sent is received exactly once.
func TestSelectProducersConsumers(t *testing.T) {
	const (
		producers = 4
		consumers = 3
		perProd   = 250
		total     = producers * perProd
		poison    = -1
	)
	rt := tl2.New(tl2.Config{})
	qa, qb := NewQueue[int](), NewQueue[int]()

	done := make(chan struct{})
	go func() {
		defer close(done)
		var consumed atomic.Int64
		var mu sync.Mutex
		var got []int

		var consWG sync.WaitGroup
		for c := 0; c < consumers; c++ {
			consWG.Add(1)
			go func(c int) {
				defer consWG.Done()
				thread := txid.ThreadID(producers + c)
				var local []int
				for {
					var v int
					sel := tl2.Select(
						func(tx *tl2.Tx) error { v = qa.DequeueWait(tx); return nil },
						func(tx *tl2.Tx) error { v = qb.DequeueWait(tx); return nil },
					)
					if err := rt.RunOpt(nil, thread, 0, sel, tl2.RunOpts{Block: true}); err != nil {
						t.Errorf("consumer %d: %v", c, err)
						return
					}
					if v == poison {
						break
					}
					local = append(local, v)
					consumed.Add(1)
				}
				mu.Lock()
				got = append(got, local...)
				mu.Unlock()
			}(c)
		}

		var prodWG sync.WaitGroup
		for p := 0; p < producers; p++ {
			prodWG.Add(1)
			go func(p int) {
				defer prodWG.Done()
				thread := txid.ThreadID(p)
				for i := 0; i < perProd; i++ {
					val := p*perProd + i
					q := qa
					if i%2 == 1 {
						q = qb
					}
					if err := rt.Atomic(thread, 1, func(tx *tl2.Tx) error {
						q.Enqueue(tx, val)
						return nil
					}); err != nil {
						t.Errorf("producer %d: %v", p, err)
						return
					}
				}
			}(p)
		}
		prodWG.Wait()

		// Poison only after every real value is consumed, so no consumer
		// can exit past items still sitting in the other queue.
		for consumed.Load() < total {
			time.Sleep(time.Millisecond)
		}
		for c := 0; c < consumers; c++ {
			if err := rt.Atomic(txid.ThreadID(producers+consumers), 1, func(tx *tl2.Tx) error {
				qa.Enqueue(tx, poison)
				return nil
			}); err != nil {
				t.Errorf("poison: %v", err)
				return
			}
		}
		consWG.Wait()

		sort.Ints(got)
		if len(got) != total {
			t.Errorf("consumed %d values, want %d", len(got), total)
			return
		}
		for i, v := range got {
			if v != i {
				t.Errorf("consumed multiset diverges at %d: got %d", i, v)
				return
			}
		}
	}()

	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("producer/consumer run deadlocked (lost wakeup?)")
	}
}

// TestDequeueWaitWouldBlock: without blocking enabled, DequeueWait on an
// empty queue surfaces the sentinel instead of parking.
func TestDequeueWaitWouldBlock(t *testing.T) {
	rt := tl2.New(tl2.Config{})
	q := NewQueue[int]()
	err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
		q.DequeueWait(tx)
		return nil
	})
	if err == nil {
		t.Fatal("DequeueWait on empty queue succeeded without blocking mode")
	}
}

// TestPopWaitWakesOnPush: a blocked PopWait parks on the heap cells and
// wakes when a Push commits.
func TestPopWaitWakesOnPush(t *testing.T) {
	rt := tl2.New(tl2.Config{})
	h := NewHeap[int](8, func(a, b int) bool { return a < b })
	got := make(chan int, 1)
	go func() {
		var v int
		if err := rt.RunOpt(nil, 0, 0, func(tx *tl2.Tx) error {
			v = h.PopWait(tx)
			return nil
		}, tl2.RunOpts{Block: true}); err != nil {
			t.Error(err)
			return
		}
		got <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Telemetry().Snapshot().Parked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("PopWait never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if err := rt.Atomic(1, 1, func(tx *tl2.Tx) error {
		return h.Push(tx, 42)
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("PopWait = %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PopWait did not wake on Push")
	}
}
