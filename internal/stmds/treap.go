package stmds

import "gstm/internal/tl2"

// Map is a transactional ordered map implemented as a treap: a binary
// search tree on keys that is simultaneously a heap on per-key pseudo-random
// priorities, giving expected O(log n) paths. It stands in for STAMP's
// rbtree.c (vacation's reservation tables): transactions read a
// root-to-leaf path and perform local rotations, the same conflict
// footprint as a red-black tree without its recoloring machinery.
//
// Priorities are derived deterministically from the key (splitmix64), so
// the tree shape is a pure function of the key set — helpful for
// reproducible experiments.
type Map[V any] struct {
	root *tl2.Var[*treapNode[V]]
	size *tl2.Var[int]
}

type treapNode[V any] struct {
	key         int64
	prio        uint64
	val         *tl2.Var[V]
	left, right *tl2.Var[*treapNode[V]]
}

// NewMap returns an empty ordered map.
func NewMap[V any]() *Map[V] {
	return &Map[V]{
		root: tl2.NewVar[*treapNode[V]](nil),
		size: tl2.NewVar(0),
	}
}

func prioOf(key int64) uint64 {
	z := uint64(key) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Get returns the value stored under k.
func (m *Map[V]) Get(tx *tl2.Tx, k int64) (V, bool) {
	n := tl2.Read(tx, m.root)
	for n != nil {
		switch {
		case k < n.key:
			n = tl2.Read(tx, n.left)
		case k > n.key:
			n = tl2.Read(tx, n.right)
		default:
			return tl2.Read(tx, n.val), true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(tx *tl2.Tx, k int64) bool {
	_, ok := m.Get(tx, k)
	return ok
}

// Insert adds k→v, reporting false when k already exists.
func (m *Map[V]) Insert(tx *tl2.Tx, k int64, v V) bool {
	if !m.insert(tx, m.root, k, v) {
		return false
	}
	tl2.Write(tx, m.size, tl2.Read(tx, m.size)+1)
	return true
}

func (m *Map[V]) insert(tx *tl2.Tx, cell *tl2.Var[*treapNode[V]], k int64, v V) bool {
	n := tl2.Read(tx, cell)
	if n == nil {
		tl2.Write(tx, cell, &treapNode[V]{
			key:   k,
			prio:  prioOf(k),
			val:   tl2.NewVar(v),
			left:  tl2.NewVar[*treapNode[V]](nil),
			right: tl2.NewVar[*treapNode[V]](nil),
		})
		return true
	}
	switch {
	case k == n.key:
		return false
	case k < n.key:
		if !m.insert(tx, n.left, k, v) {
			return false
		}
		if child := tl2.Read(tx, n.left); child != nil && child.prio > n.prio {
			rotateRight(tx, cell, n)
		}
	default:
		if !m.insert(tx, n.right, k, v) {
			return false
		}
		if child := tl2.Read(tx, n.right); child != nil && child.prio > n.prio {
			rotateLeft(tx, cell, n)
		}
	}
	return true
}

// Set updates the value of an existing key, reporting whether it existed.
func (m *Map[V]) Set(tx *tl2.Tx, k int64, v V) bool {
	n := tl2.Read(tx, m.root)
	for n != nil {
		switch {
		case k < n.key:
			n = tl2.Read(tx, n.left)
		case k > n.key:
			n = tl2.Read(tx, n.right)
		default:
			tl2.Write(tx, n.val, v)
			return true
		}
	}
	return false
}

// Upsert inserts k→v or overwrites an existing value.
func (m *Map[V]) Upsert(tx *tl2.Tx, k int64, v V) {
	if !m.Set(tx, k, v) {
		m.Insert(tx, k, v)
	}
}

// Remove deletes k, reporting whether it was present.
func (m *Map[V]) Remove(tx *tl2.Tx, k int64) bool {
	if !m.remove(tx, m.root, k) {
		return false
	}
	tl2.Write(tx, m.size, tl2.Read(tx, m.size)-1)
	return true
}

func (m *Map[V]) remove(tx *tl2.Tx, cell *tl2.Var[*treapNode[V]], k int64) bool {
	n := tl2.Read(tx, cell)
	if n == nil {
		return false
	}
	switch {
	case k < n.key:
		return m.remove(tx, n.left, k)
	case k > n.key:
		return m.remove(tx, n.right, k)
	}
	// Found: rotate the higher-priority child up until n is a (half-)leaf.
	l := tl2.Read(tx, n.left)
	r := tl2.Read(tx, n.right)
	switch {
	case l == nil:
		tl2.Write(tx, cell, r)
		return true
	case r == nil:
		tl2.Write(tx, cell, l)
		return true
	case l.prio > r.prio:
		rotateRight(tx, cell, n)
		return m.remove(tx, l.right, k)
	default:
		rotateLeft(tx, cell, n)
		return m.remove(tx, r.left, k)
	}
}

// rotateRight lifts n's left child into cell.
func rotateRight[V any](tx *tl2.Tx, cell *tl2.Var[*treapNode[V]], n *treapNode[V]) {
	l := tl2.Read(tx, n.left)
	tl2.Write(tx, n.left, tl2.Read(tx, l.right))
	tl2.Write(tx, l.right, n)
	tl2.Write(tx, cell, l)
}

// rotateLeft lifts n's right child into cell.
func rotateLeft[V any](tx *tl2.Tx, cell *tl2.Var[*treapNode[V]], n *treapNode[V]) {
	r := tl2.Read(tx, n.right)
	tl2.Write(tx, n.right, tl2.Read(tx, r.left))
	tl2.Write(tx, r.left, n)
	tl2.Write(tx, cell, r)
}

// Len returns the number of elements.
func (m *Map[V]) Len(tx *tl2.Tx) int { return tl2.Read(tx, m.size) }

// Range calls fn in ascending key order until fn returns false.
func (m *Map[V]) Range(tx *tl2.Tx, fn func(k int64, v V) bool) {
	m.walk(tx, tl2.Read(tx, m.root), fn)
}

func (m *Map[V]) walk(tx *tl2.Tx, n *treapNode[V], fn func(k int64, v V) bool) bool {
	if n == nil {
		return true
	}
	if !m.walk(tx, tl2.Read(tx, n.left), fn) {
		return false
	}
	if !fn(n.key, tl2.Read(tx, n.val)) {
		return false
	}
	return m.walk(tx, tl2.Read(tx, n.right), fn)
}
