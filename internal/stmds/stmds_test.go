package stmds

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"gstm/internal/tl2"
	"gstm/internal/txid"
	"gstm/internal/xrand"
)

// atomically runs fn in a fresh single-threaded transaction and fails the
// test on error.
func atomically(t *testing.T, rt *tl2.Runtime, fn func(tx *tl2.Tx) error) {
	t.Helper()
	if err := rt.Atomic(0, 0, fn); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func newRT() *tl2.Runtime { return tl2.New(tl2.Config{}) }

func TestListSequentialOps(t *testing.T) {
	rt := newRT()
	l := NewList[string]()
	atomically(t, rt, func(tx *tl2.Tx) error {
		for _, k := range []int64{5, 1, 3, 9, 7} {
			if !l.Insert(tx, k, "v") {
				t.Errorf("Insert(%d) failed", k)
			}
		}
		if l.Insert(tx, 3, "dup") {
			t.Error("duplicate Insert succeeded")
		}
		if l.Len(tx) != 5 {
			t.Errorf("Len = %d", l.Len(tx))
		}
		if v, ok := l.Get(tx, 7); !ok || v != "v" {
			t.Errorf("Get(7) = %q, %v", v, ok)
		}
		if _, ok := l.Get(tx, 4); ok {
			t.Error("Get(4) found absent key")
		}
		if !l.Set(tx, 9, "nine") {
			t.Error("Set(9) failed")
		}
		if v, _ := l.Get(tx, 9); v != "nine" {
			t.Errorf("Get(9) = %q", v)
		}
		if l.Set(tx, 100, "x") {
			t.Error("Set of absent key succeeded")
		}
		if !l.Remove(tx, 5) || l.Remove(tx, 5) {
			t.Error("Remove semantics wrong")
		}
		// Ascending iteration order.
		var keys []int64
		l.Range(tx, func(k int64, v string) bool {
			keys = append(keys, k)
			return true
		})
		want := []int64{1, 3, 7, 9}
		if len(keys) != len(want) {
			t.Fatalf("Range keys = %v", keys)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("Range keys = %v, want %v", keys, want)
			}
		}
		return nil
	})
}

func TestListRangeEarlyStop(t *testing.T) {
	rt := newRT()
	l := NewList[int]()
	atomically(t, rt, func(tx *tl2.Tx) error {
		for i := int64(0); i < 10; i++ {
			l.Insert(tx, i, int(i))
		}
		n := 0
		l.Range(tx, func(k int64, v int) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Errorf("early stop visited %d", n)
		}
		return nil
	})
}

func TestHashTableSequential(t *testing.T) {
	rt := newRT()
	h := NewHashTable[int](64)
	if h.NumBuckets() != 64 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
	atomically(t, rt, func(tx *tl2.Tx) error {
		for i := int64(0); i < 200; i++ {
			if !h.Insert(tx, i, int(i*2)) {
				t.Fatalf("Insert(%d) failed", i)
			}
		}
		if h.Insert(tx, 100, 0) {
			t.Error("duplicate insert succeeded")
		}
		if h.Len(tx) != 200 {
			t.Errorf("Len = %d", h.Len(tx))
		}
		for i := int64(0); i < 200; i++ {
			v, ok := h.Get(tx, i)
			if !ok || v != int(i*2) {
				t.Fatalf("Get(%d) = %d, %v", i, v, ok)
			}
		}
		if !h.Remove(tx, 50) || h.Contains(tx, 50) {
			t.Error("Remove(50) broken")
		}
		if h.Len(tx) != 199 {
			t.Errorf("Len after remove = %d", h.Len(tx))
		}
		count := 0
		h.RangeAll(tx, func(k int64, v int) bool {
			count++
			return true
		})
		if count != 199 {
			t.Errorf("RangeAll visited %d", count)
		}
		return nil
	})
}

func TestHashTableNoCountInsertSkipsCounter(t *testing.T) {
	rt := newRT()
	h := NewHashTable[int](16)
	atomically(t, rt, func(tx *tl2.Tx) error {
		h.InsertNoCount(tx, 1, 1)
		if h.Len(tx) != 0 {
			t.Errorf("Len = %d after InsertNoCount", h.Len(tx))
		}
		if !h.Contains(tx, 1) {
			t.Error("InsertNoCount element missing")
		}
		return nil
	})
}

func TestMapSequentialOpsMatchReference(t *testing.T) {
	rt := newRT()
	m := NewMap[int]()
	ref := map[int64]int{}
	rng := xrand.New(7)
	atomically(t, rt, func(tx *tl2.Tx) error {
		for op := 0; op < 3000; op++ {
			k := int64(rng.Intn(200))
			switch rng.Intn(4) {
			case 0:
				got := m.Insert(tx, k, op)
				_, exists := ref[k]
				if got == exists {
					t.Fatalf("Insert(%d) = %v but exists = %v", k, got, exists)
				}
				if got {
					ref[k] = op
				}
			case 1:
				got := m.Remove(tx, k)
				_, exists := ref[k]
				if got != exists {
					t.Fatalf("Remove(%d) = %v but exists = %v", k, got, exists)
				}
				delete(ref, k)
			case 2:
				v, ok := m.Get(tx, k)
				rv, exists := ref[k]
				if ok != exists || (ok && v != rv) {
					t.Fatalf("Get(%d) = %d,%v; ref %d,%v", k, v, ok, rv, exists)
				}
			case 3:
				m.Upsert(tx, k, op)
				ref[k] = op
			}
		}
		if m.Len(tx) != len(ref) {
			t.Fatalf("Len = %d, ref %d", m.Len(tx), len(ref))
		}
		// In-order traversal yields ascending keys matching ref.
		var keys []int64
		m.Range(tx, func(k int64, v int) bool {
			if rv := ref[k]; v != rv {
				t.Fatalf("Range value for %d = %d, want %d", k, v, rv)
			}
			keys = append(keys, k)
			return true
		})
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatal("Range not in ascending order")
		}
		if len(keys) != len(ref) {
			t.Fatalf("Range visited %d, want %d", len(keys), len(ref))
		}
		return nil
	})
}

func TestQueueFIFO(t *testing.T) {
	rt := newRT()
	q := NewQueue[int]()
	atomically(t, rt, func(tx *tl2.Tx) error {
		if _, ok := q.Dequeue(tx); ok {
			t.Error("Dequeue on empty succeeded")
		}
		if !q.Empty(tx) {
			t.Error("new queue not empty")
		}
		for i := 0; i < 50; i++ {
			q.Enqueue(tx, i)
		}
		if q.Len(tx) != 50 {
			t.Errorf("Len = %d", q.Len(tx))
		}
		if v, ok := q.Peek(tx); !ok || v != 0 {
			t.Errorf("Peek = %d, %v", v, ok)
		}
		for i := 0; i < 50; i++ {
			v, ok := q.Dequeue(tx)
			if !ok || v != i {
				t.Fatalf("Dequeue #%d = %d, %v", i, v, ok)
			}
		}
		if !q.Empty(tx) {
			t.Error("queue not empty after draining")
		}
		// Tail must reset: enqueue after drain still works.
		q.Enqueue(tx, 99)
		if v, _ := q.Dequeue(tx); v != 99 {
			t.Error("enqueue after drain broken")
		}
		return nil
	})
}

func TestHeapOrdering(t *testing.T) {
	rt := newRT()
	h := NewHeap[int](64, func(a, b int) bool { return a < b })
	rng := xrand.New(11)
	var want []int
	atomically(t, rt, func(tx *tl2.Tx) error {
		if _, ok := h.Pop(tx); ok {
			t.Error("Pop on empty succeeded")
		}
		for i := 0; i < 50; i++ {
			v := rng.Intn(1000)
			want = append(want, v)
			if err := h.Push(tx, v); err != nil {
				t.Fatalf("Push: %v", err)
			}
		}
		if h.Len(tx) != 50 {
			t.Errorf("Len = %d", h.Len(tx))
		}
		sort.Ints(want)
		if v, ok := h.Peek(tx); !ok || v != want[0] {
			t.Errorf("Peek = %d, want %d", v, want[0])
		}
		for i, w := range want {
			v, ok := h.Pop(tx)
			if !ok || v != w {
				t.Fatalf("Pop #%d = %d, want %d", i, v, w)
			}
		}
		return nil
	})
}

func TestHeapCapacity(t *testing.T) {
	rt := newRT()
	h := NewHeap[int](2, func(a, b int) bool { return a < b })
	atomically(t, rt, func(tx *tl2.Tx) error {
		if err := h.Push(tx, 1); err != nil {
			t.Fatal(err)
		}
		if err := h.Push(tx, 2); err != nil {
			t.Fatal(err)
		}
		if err := h.Push(tx, 3); err != ErrHeapFull {
			t.Fatalf("err = %v, want ErrHeapFull", err)
		}
		return nil
	})
	if h.Cap() != 2 {
		t.Fatalf("Cap = %d", h.Cap())
	}
}

func TestConcurrentHashTableInserts(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	h := NewHashTable[int](32) // small: force bucket conflicts
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := int64(id*per + i)
				if err := rt.Atomic(txid.ThreadID(id), 0, func(tx *tl2.Tx) error {
					if !h.Insert(tx, k, id) {
						t.Errorf("Insert(%d) failed", k)
					}
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	atomically(t, rt, func(tx *tl2.Tx) error {
		if h.Len(tx) != workers*per {
			t.Errorf("Len = %d, want %d", h.Len(tx), workers*per)
		}
		return nil
	})
}

func TestConcurrentQueueTransfersEveryElementOnce(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	src := NewQueue[int]()
	dst := NewQueue[int]()
	const n = 400
	if err := rt.Atomic(0, 0, func(tx *tl2.Tx) error {
		for i := 0; i < n; i++ {
			src.Enqueue(tx, i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				moved := false
				if err := rt.Atomic(txid.ThreadID(id), 1, func(tx *tl2.Tx) error {
					v, ok := src.Dequeue(tx)
					if !ok {
						return nil
					}
					dst.Enqueue(tx, v)
					moved = true
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
				if !moved {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[int]bool, n)
	atomically(t, rt, func(tx *tl2.Tx) error {
		for {
			v, ok := dst.Dequeue(tx)
			if !ok {
				break
			}
			if seen[v] {
				t.Fatalf("element %d transferred twice", v)
			}
			seen[v] = true
		}
		return nil
	})
	if len(seen) != n {
		t.Fatalf("transferred %d elements, want %d", len(seen), n)
	}
}

func TestConcurrentMapMixedOps(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	m := NewMap[int]()
	const workers = 6
	var wg sync.WaitGroup
	var inserted [workers][]int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.NewThread(99, id)
			for i := 0; i < 120; i++ {
				// Each worker owns a disjoint key range, so final content
				// is checkable; conflicts still happen on shared tree paths.
				k := int64(id*1000 + rng.Intn(200))
				_ = rt.Atomic(txid.ThreadID(id), 0, func(tx *tl2.Tx) error {
					if m.Insert(tx, k, id) {
						return nil
					}
					return nil
				})
				inserted[id] = append(inserted[id], k)
			}
		}(w)
	}
	wg.Wait()
	atomically(t, rt, func(tx *tl2.Tx) error {
		for id := range inserted {
			for _, k := range inserted[id] {
				v, ok := m.Get(tx, k)
				if !ok || v != id {
					t.Fatalf("Get(%d) = %d,%v; want %d,true", k, v, ok, id)
				}
			}
		}
		// Tree invariant: in-order traversal strictly ascending.
		prev := int64(-1)
		m.Range(tx, func(k int64, v int) bool {
			if k <= prev {
				t.Fatalf("BST invariant violated: %d after %d", k, prev)
			}
			prev = k
			return true
		})
		return nil
	})
}

func TestHeapConcurrentPushPop(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	h := NewHeap[int](4096, func(a, b int) bool { return a < b })
	const workers, per = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = rt.Atomic(txid.ThreadID(id), 0, func(tx *tl2.Tx) error {
					return h.Push(tx, id*per+i)
				})
			}
		}(w)
	}
	wg.Wait()
	atomically(t, rt, func(tx *tl2.Tx) error {
		if h.Len(tx) != workers*per {
			t.Fatalf("Len = %d", h.Len(tx))
		}
		prev := -1
		for {
			v, ok := h.Pop(tx)
			if !ok {
				break
			}
			if v < prev {
				t.Fatalf("heap order violated: %d after %d", v, prev)
			}
			prev = v
		}
		return nil
	})
}

func TestMapQuickInsertRemoveProperty(t *testing.T) {
	// Property: inserting a set of keys then removing a subset leaves
	// exactly the difference, regardless of order.
	rt := newRT()
	f := func(keys []int16, removeMask []bool) bool {
		m := NewMap[struct{}]()
		ref := map[int64]bool{}
		ok := true
		_ = rt.Atomic(0, 0, func(tx *tl2.Tx) error {
			for _, k := range keys {
				m.Insert(tx, int64(k), struct{}{})
				ref[int64(k)] = true
			}
			for i, k := range keys {
				if i < len(removeMask) && removeMask[i] {
					m.Remove(tx, int64(k))
					delete(ref, int64(k))
				}
			}
			if m.Len(tx) != len(ref) {
				ok = false
				return nil
			}
			for k := range ref {
				if !m.Contains(tx, k) {
					ok = false
					return nil
				}
			}
			return nil
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentListInsertRemoveDisjoint(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	l := NewList[int]()
	const workers, per = 4, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			base := int64(id * 1000)
			for i := 0; i < per; i++ {
				k := base + int64(i)
				_ = rt.Atomic(txid.ThreadID(id), 0, func(tx *tl2.Tx) error {
					l.Insert(tx, k, id)
					return nil
				})
			}
			// Remove every other key.
			for i := 0; i < per; i += 2 {
				k := base + int64(i)
				_ = rt.Atomic(txid.ThreadID(id), 1, func(tx *tl2.Tx) error {
					if !l.Remove(tx, k) {
						t.Errorf("Remove(%d) failed", k)
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	atomically(t, rt, func(tx *tl2.Tx) error {
		if got, want := l.Len(tx), workers*per/2; got != want {
			t.Errorf("Len = %d, want %d", got, want)
		}
		for w := 0; w < workers; w++ {
			for i := 0; i < per; i++ {
				k := int64(w*1000 + i)
				want := i%2 == 1
				if got := l.Contains(tx, k); got != want {
					t.Errorf("Contains(%d) = %v, want %v", k, got, want)
				}
			}
		}
		return nil
	})
}

func TestHashTableGetSetConcurrentWithRemovals(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	h := NewHashTable[int](16)
	// Pre-populate.
	atomically(t, rt, func(tx *tl2.Tx) error {
		for i := int64(0); i < 64; i++ {
			h.Insert(tx, i, 0)
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.NewThread(3, id)
			for i := 0; i < 150; i++ {
				k := int64(rng.Intn(64))
				switch rng.Intn(3) {
				case 0:
					_ = rt.Atomic(txid.ThreadID(id), 0, func(tx *tl2.Tx) error {
						h.Set(tx, k, id+1)
						return nil
					})
				case 1:
					_ = rt.Atomic(txid.ThreadID(id), 1, func(tx *tl2.Tx) error {
						h.Remove(tx, k)
						return nil
					})
				default:
					_ = rt.Atomic(txid.ThreadID(id), 2, func(tx *tl2.Tx) error {
						h.Insert(tx, k, id+1)
						return nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	// Size counter must agree with an actual scan.
	atomically(t, rt, func(tx *tl2.Tx) error {
		count := 0
		h.RangeAll(tx, func(int64, int) bool {
			count++
			return true
		})
		if got := h.Len(tx); got != count {
			t.Errorf("Len = %d but scan found %d", got, count)
		}
		return nil
	})
}

func TestHeapStableUnderMixedConcurrentOps(t *testing.T) {
	rt := tl2.New(tl2.Config{Interleave: 4})
	h := NewHeap[int](1<<12, func(a, b int) bool { return a < b })
	var pushed, popped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.NewThread(5, id)
			for i := 0; i < 200; i++ {
				if rng.Intn(2) == 0 {
					_ = rt.Atomic(txid.ThreadID(id), 0, func(tx *tl2.Tx) error {
						if err := h.Push(tx, rng.Intn(1000)); err != nil {
							return err
						}
						return nil
					})
					pushed.Add(1)
				} else {
					got := false
					_ = rt.Atomic(txid.ThreadID(id), 1, func(tx *tl2.Tx) error {
						_, got = h.Pop(tx)
						return nil
					})
					if got {
						popped.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	atomically(t, rt, func(tx *tl2.Tx) error {
		if got, want := int64(h.Len(tx)), pushed.Load()-popped.Load(); got != want {
			t.Errorf("heap len %d, want pushed-popped %d", got, want)
		}
		// Remaining pops come out sorted (heap invariant held).
		prev := -1
		for {
			v, ok := h.Pop(tx)
			if !ok {
				break
			}
			if v < prev {
				t.Fatalf("heap invariant broken: %d after %d", v, prev)
			}
			prev = v
		}
		return nil
	})
}
