package server

import (
	"strings"
	"testing"

	"gstm/internal/obs"
)

func hist(bucket, count, sum uint64) obs.HistCounts {
	return obs.HistCounts{Count: count, SumNs: sum, Buckets: []uint64{bucket, count}}
}

func TestDiffTraceAgg(t *testing.T) {
	prev := obs.AggSnapshot{Shards: []obs.ShardAggSnapshot{
		{Shard: 0, Phases: map[string]obs.HistCounts{
			"lock":    hist(10, 2, 200),
			"publish": hist(12, 2, 300),
		}, Total: hist(14, 2, 500)},
	}}
	cur := obs.AggSnapshot{Shards: []obs.ShardAggSnapshot{
		{Shard: 0, Phases: map[string]obs.HistCounts{
			"lock":    hist(10, 5, 650),
			"publish": hist(12, 2, 300), // unchanged: must drop from the diff
		}, Total: hist(14, 5, 1400)},
		// A shard absent from prev passes through whole.
		{Shard: 1, Phases: map[string]obs.HistCounts{
			"lock": hist(10, 3, 330),
		}, Total: hist(14, 3, 700)},
	}}

	d := DiffTraceAgg(cur, prev)
	if len(d.Shards) != 2 {
		t.Fatalf("diff has %d shards, want 2", len(d.Shards))
	}
	s0 := d.Shards[0]
	if got := s0.Phases["lock"]; got.Count != 3 || got.SumNs != 450 {
		t.Fatalf("shard0 lock diff = %+v, want count 3 sum 450", got)
	}
	if _, ok := s0.Phases["publish"]; ok {
		t.Fatalf("unchanged publish phase survived the diff: %+v", s0.Phases)
	}
	if s0.Total.Count != 3 || s0.Total.SumNs != 900 {
		t.Fatalf("shard0 total diff = %+v, want count 3 sum 900", s0.Total)
	}
	s1 := d.Shards[1]
	if got := s1.Phases["lock"]; got.Count != 3 || got.SumNs != 330 {
		t.Fatalf("new shard1 diff = %+v, want pass-through", got)
	}
}

func TestFormatTailTable(t *testing.T) {
	a := obs.AggSnapshot{Shards: []obs.ShardAggSnapshot{
		// Out of order on purpose: the table must sort by shard.
		{Shard: 1, Phases: map[string]obs.HistCounts{
			"queue": hist(40, 4, 40_000),
		}, Total: hist(44, 4, 90_000)},
		{Shard: 0, Phases: map[string]obs.HistCounts{
			"decode":  hist(8, 10, 1_000),
			"publish": hist(30, 10, 25_000),
		}, Total: hist(33, 10, 60_000)},
	}}
	table := FormatTailTable(a)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	// Header + (decode, publish, total) for shard 0 + (queue, total) for shard 1.
	if len(lines) != 6 {
		t.Fatalf("table has %d lines, want 6:\n%s", len(lines), table)
	}
	for i, want := range []string{"phase", "decode", "publish", "total", "queue", "total"} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("line %d = %q, want it to mention %q\n%s", i, lines[i], want, table)
		}
	}
	// Shard 0's rows precede shard 1's despite input order.
	if !strings.Contains(lines[1], "0") || !strings.Contains(lines[4], "1") {
		t.Fatalf("shard ordering wrong:\n%s", table)
	}
	// Phases print in request order: decode before publish.
	if strings.Index(table, "decode") > strings.Index(table, "publish") {
		t.Fatalf("phase ordering wrong:\n%s", table)
	}
}

func TestFmtNs(t *testing.T) {
	for _, tc := range []struct {
		ns   uint64
		want string
	}{
		{0, "-"},
		{1_500, "1.50µs"},
		{45_000, "45.0µs"},
		{3_200_000, "3.20ms"},
		{2_000_000_000, "2.00s"},
	} {
		if got := fmtNs(tc.ns); got != tc.want {
			t.Errorf("fmtNs(%d) = %q, want %q", tc.ns, got, tc.want)
		}
	}
}
