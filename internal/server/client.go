package server

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"gstm"
)

// Client is a synchronous protocol client: one outstanding request per
// Client. It is not safe for concurrent use — the load generator and
// tests open one Client per goroutine, which also gives the server's
// batching real cross-connection queue depth to coalesce.
type Client struct {
	nc    net.Conn
	br    *bufio.Reader
	buf   []byte
	id    uint32
	trace bool
}

// SetTrace toggles the protocol trace-request bit on every subsequent
// request: the server then retains a full variance-observatory span for
// each of this client's operations (the /debug/trace "forced" ring)
// regardless of its sampling rate.
func (c *Client) SetTrace(on bool) { c.trace = on }

// Dial connects to a gstm-server at addr.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{nc: nc, br: bufio.NewReaderSize(nc, 8*RespFrameLen)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// Do sends one operation and waits for its response.
func (c *Client) Do(op Op, key, arg uint64) (Status, uint64, error) {
	c.id++
	c.buf = AppendRequest(c.buf[:0], Request{Op: op, ID: c.id, Key: key, Arg: arg, Trace: c.trace})
	if _, err := c.nc.Write(c.buf); err != nil {
		return 0, 0, err
	}
	var frame [RespFrameLen]byte
	if _, err := io.ReadFull(c.br, frame[:]); err != nil {
		return 0, 0, err
	}
	n := uint32(frame[0])<<24 | uint32(frame[1])<<16 | uint32(frame[2])<<8 | uint32(frame[3])
	if n != RespFrameLen-4 {
		return 0, 0, fmt.Errorf("server: bad response frame length %d", n)
	}
	resp, err := DecodeResponse(frame[4:])
	if err != nil {
		return 0, 0, err
	}
	if resp.ID != c.id {
		return 0, 0, fmt.Errorf("server: response id %d for request %d", resp.ID, c.id)
	}
	return resp.Status, resp.Value, nil
}

// Get reads key ((value, true) when present).
func (c *Client) Get(key uint64) (uint64, bool, error) {
	st, v, err := c.Do(OpGet, key, 0)
	if err != nil {
		return 0, false, err
	}
	switch st {
	case StatusOK:
		return v, true, nil
	case StatusNotFound:
		return 0, false, nil
	default:
		return 0, false, fmt.Errorf("server: get status %d", st)
	}
}

// Put upserts key=val, reporting whether the key already existed.
func (c *Client) Put(key, val uint64) (bool, error) {
	st, v, err := c.Do(OpPut, key, val)
	if err != nil {
		return false, err
	}
	if st != StatusOK {
		return false, fmt.Errorf("server: put status %d", st)
	}
	return v == 1, nil
}

// Add adds delta (signed, two's complement) to key, returning the new
// value.
func (c *Client) Add(key uint64, delta int64) (uint64, error) {
	st, v, err := c.Do(OpAdd, key, uint64(delta))
	if err != nil {
		return 0, err
	}
	if st != StatusOK {
		return 0, fmt.Errorf("server: add status %d", st)
	}
	return v, nil
}

// Del removes key, reporting whether it was present.
func (c *Client) Del(key uint64) (bool, error) {
	st, _, err := c.Do(OpDel, key, 0)
	if err != nil {
		return false, err
	}
	switch st {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("server: del status %d", st)
	}
}

// Txn executes ops as one atomic multi-key transaction — across shards
// when the keys home to different shards. The returned value is the last
// sub-op's result (see OpTxn for sub-op semantics). len(ops) must be in
// [1, MaxTxnOps].
func (c *Client) Txn(ops []TxnOp) (Status, uint64, error) {
	if len(ops) == 0 || len(ops) > MaxTxnOps {
		return 0, 0, fmt.Errorf("server: txn with %d ops (want 1..%d)", len(ops), MaxTxnOps)
	}
	c.id++
	c.buf = AppendTxnRequest(c.buf[:0], Request{ID: c.id, Trace: c.trace}, ops)
	if _, err := c.nc.Write(c.buf); err != nil {
		return 0, 0, err
	}
	var frame [RespFrameLen]byte
	if _, err := io.ReadFull(c.br, frame[:]); err != nil {
		return 0, 0, err
	}
	n := uint32(frame[0])<<24 | uint32(frame[1])<<16 | uint32(frame[2])<<8 | uint32(frame[3])
	if n != RespFrameLen-4 {
		return 0, 0, fmt.Errorf("server: bad response frame length %d", n)
	}
	resp, err := DecodeResponse(frame[4:])
	if err != nil {
		return 0, 0, err
	}
	if resp.ID != c.id {
		return 0, 0, fmt.Errorf("server: response id %d for request %d", resp.ID, c.id)
	}
	return resp.Status, resp.Value, nil
}

// Transfer atomically moves amt from one key's balance to another's: two
// adds in one transaction, committed on both home shards or neither.
// Zero-sum by construction, which makes it the oracle-friendly cross-shard
// op for correctness checks (balances always conserve).
func (c *Client) Transfer(from, to uint64, amt int64) error {
	st, _, err := c.Txn([]TxnOp{
		{Op: OpAdd, Key: from, Arg: uint64(-amt)},
		{Op: OpAdd, Key: to, Arg: uint64(amt)},
	})
	if err != nil {
		return err
	}
	if st != StatusOK {
		return fmt.Errorf("server: transfer status %d", st)
	}
	return nil
}

// Watch long-polls key until its value differs from last (or the key
// appears when last is its current absence), returning the new value. The
// call blocks on the wire for as long as the server keeps the watch
// parked — use one Client per concurrent watch. gstm.ErrWouldBlock is
// returned when the server refuses to park (it is draining); the caller
// may poll or retry elsewhere. A server shutting down mid-park surfaces
// as an error wrapping StatusShutdown.
func (c *Client) Watch(key, last uint64) (uint64, error) {
	return c.longPoll(OpWatch, key, last)
}

// WaitKey blocks until key exists, returning its value (immediately when
// already present). Same drain semantics as Watch.
func (c *Client) WaitKey(key uint64) (uint64, error) {
	return c.longPoll(OpWaitKey, key, 0)
}

func (c *Client) longPoll(op Op, key, arg uint64) (uint64, error) {
	st, v, err := c.Do(op, key, arg)
	if err != nil {
		return 0, err
	}
	switch st {
	case StatusOK:
		return v, nil
	case StatusWouldBlock:
		return 0, gstm.ErrWouldBlock
	default:
		return 0, fmt.Errorf("server: watch status %d", st)
	}
}

// Ctl issues a control command.
func (c *Client) Ctl(cmd CtlCommand, arg uint64) error {
	st, _, err := c.Do(OpCtl, uint64(cmd), arg)
	if err != nil {
		return err
	}
	if st != StatusOK {
		return fmt.Errorf("server: ctl %d status %d", cmd, st)
	}
	return nil
}

// Info reads one server gauge.
func (c *Client) Info(sel InfoSelector) (uint64, error) {
	return c.InfoArg(sel, 0)
}

// InfoArg reads one server gauge with an argument — the shard index for
// the per-shard selectors (InfoShardMode, InfoShardCommits, ...).
func (c *Client) InfoArg(sel InfoSelector, arg uint64) (uint64, error) {
	st, v, err := c.Do(OpInfo, uint64(sel), arg)
	if err != nil {
		return 0, err
	}
	if st != StatusOK {
		return 0, fmt.Errorf("server: info %d status %d", sel, st)
	}
	return v, nil
}
