package server

import (
	"errors"
	"time"

	"gstm"
	"gstm/internal/obs"
	"gstm/internal/shard"
	"gstm/internal/wal"
)

// The coordinator executes OpTxn multi-key transactions. It is one
// dedicated goroutine draining its own queue, running every transaction
// as gstm.ThreadID(Workers) at site siteTxn — a single stable (site,
// thread) label for the TSA on every shard it touches. Single-shard
// transactions degenerate to the ordinary Run fast path inside
// Router.RunMulti; cross-shard ones go through the all-or-nothing commit
// protocol (DESIGN.md "Cross-shard commit").
//
// Durability: the coordinator stages each participant shard's redo on
// that shard's log from inside the body (re-staged per attempt, like the
// workers), and on success hands the acker ONE item carrying one task and
// one wait per participant. Every record of a cross-shard commit carries
// the same exchanged write version, so replay on any shard positions the
// transaction identically in the global wv order.

// txnTask is one queued OpTxn awaiting the coordinator. ops is owned by
// the task (decoded off the connection's reusable payload buffer).
type txnTask struct {
	req   Request
	ops   []TxnOp
	c     *conn
	enq   int64
	decNs int64
}

// coordThread is the STM thread every OpTxn transaction runs as. It sits
// inside the WAL stager range (slots 0..Workers), unlike the scan and
// watch threads above it.
func (s *Server) coordThread() gstm.ThreadID { return gstm.ThreadID(s.cfg.Workers) }

type coordinator struct {
	srv   *Server
	queue chan txnTask

	// Per-transaction scratch, reused so the steady-state path allocates
	// only what RunMulti itself needs.
	byShard [][]int // byShard[sh]: sub-op indexes homed on shard sh
	shards  []int   // participant shards of the current transaction
	deltas  []int64 // deltas[i]: sub-op i's live-key adjustment
	stgs    []wal.Staging
	logging bool
	span    obs.Span
	resp    []byte
}

func newCoordinator(s *Server) *coordinator {
	return &coordinator{
		srv:     s,
		queue:   make(chan txnTask, s.cfg.QueueDepth),
		byShard: make([][]int, s.cfg.Shards),
		stgs:    make([]wal.Staging, s.cfg.Shards),
	}
}

func (co *coordinator) loop() {
	for {
		select {
		case t := <-co.queue:
			co.execTxn(t)
		case <-co.srv.stop:
			return
		}
	}
}

// execTxn runs one multi-key transaction to completion and writes (or
// hands to the acker) its single response.
func (co *coordinator) execTxn(t txnTask) {
	s := co.srv
	for sh := range co.byShard {
		co.byShard[sh] = co.byShard[sh][:0]
	}
	co.shards = co.shards[:0]
	mutating := false
	for i, op := range t.ops {
		sh := s.router.HomeOf(op.Key)
		if len(co.byShard[sh]) == 0 {
			co.shards = append(co.shards, sh)
		}
		co.byShard[sh] = append(co.byShard[sh], i)
		if op.Op != OpGet {
			mutating = true
		}
	}

	sp := &co.span
	begin := t.enq - t.decNs
	deq := time.Now().UnixNano()
	sp.Start(t.req.ID, uint8(OpTxn), uint8(co.shards[0]), uint8(s.coordThread()), len(t.ops), t.req.Trace, begin)
	sp.Add(obs.PhaseDecode, obs.CauseNone, 0, begin, t.decNs)
	sp.Add(obs.PhaseQueue, obs.CauseNone, 0, t.enq, deq-t.enq)

	durable := s.wals != nil && mutating
	var value uint64
	var delta int64
	err := s.router.RunMulti(nil, co.shards, s.coordThread(), siteTxn, func(m *shard.MultiTx) error {
		co.logging = false
		value, delta = 0, 0
		if durable {
			for _, sh := range m.Shards() {
				if s.wals[sh].Failed() {
					return errWALUnavailable
				}
			}
			// Stage inside the body so a retry starts fresh records; every
			// participant's commit event stamps its staged ops with the one
			// exchanged write version.
			for _, sh := range m.Shards() {
				co.stgs[sh] = s.wals[sh].Stage(int(s.coordThread()), uint16(siteTxn))
			}
			co.logging = true
		}
		co.deltas = co.deltas[:0]
		for _, op := range t.ops {
			sh := s.router.HomeOf(op.Key)
			v, d := co.applyTxnOp(m.On(sh), sh, op)
			value = v
			delta += d
			co.deltas = append(co.deltas, d)
		}
		return nil
	}, gstm.WithMaxAttempts(s.cfg.MaxAttempts), gstm.WithSpan(sp))

	resp := Response{ID: t.req.ID, Value: value}
	if err != nil {
		if durable {
			// A failed attempt may have staged ops on any participant; drop
			// them before the coordinator's next transaction on those shards.
			for _, sh := range co.shards {
				s.wals[sh].Abandon(int(s.coordThread()))
			}
		}
		switch {
		case errors.Is(err, errWALUnavailable) || errors.Is(err, wal.ErrFailed):
			resp.Status = StatusUnavailable
			for _, sh := range co.shards {
				s.router.System(sh).Telemetry().WALRefused(uint64(s.coordThread()))
			}
			co.finish(obs.CauseWALUnavailable)
		case errors.Is(err, gstm.ErrRetryBudgetExhausted):
			resp.Status = StatusBudget
			co.finish(obs.CauseRetryBudget)
		case errors.Is(err, gstm.ErrCanceled):
			resp.Status = StatusCanceled
			co.finish(obs.CauseCanceled)
		default:
			resp.Status = StatusBadRequest
			co.finish(obs.CauseSpurious)
		}
		co.respond(t, resp)
		return
	}

	if durable {
		it := s.getAckItem(1)
		it.worker = int(s.coordThread())
		it.shardOf[0] = shardAll
		refused := false
		for _, sh := range co.shards {
			seq, werr := s.wals[sh].ThreadSeq(int(s.coordThread()))
			if werr != nil {
				refused = true
				s.router.System(sh).Telemetry().WALRefused(uint64(s.coordThread()))
				continue
			}
			var shDelta int64
			for _, i := range co.byShard[sh] {
				shDelta += co.deltas[i]
			}
			it.waits = append(it.waits, ackWait{sh: sh, seq: seq, nops: len(co.byShard[sh]), delta: shDelta})
		}
		if refused {
			// At least one participant's log refused the record: the commit
			// executed in memory but its durability cannot be promised.
			s.ackPool.Put(it)
			resp.Status = StatusUnavailable
			co.finish(obs.CauseWALUnavailable)
			co.respond(t, resp)
			return
		}
		// The span rides on the first wait; the others are span-less so the
		// observatory sees exactly one record per transaction.
		it.waits[0].span = co.span
		it.waits[0].spanned = true
		it.tasks = append(it.tasks, task{req: t.req, c: t.c, enq: t.enq, decNs: t.decNs})
		it.results = append(it.results, opResult{status: resp.Status, value: resp.Value, delta: delta})
		s.acks <- it
		return
	}

	if delta != 0 {
		s.liveKeys.Add(delta)
	}
	for _, sh := range co.shards {
		s.batches.Add(1)
		s.batchedOps.Add(uint64(len(co.byShard[sh])))
		s.lcs[sh].noteOps(len(co.byShard[sh]))
	}
	co.finish(obs.CauseNone)
	co.respond(t, resp)
}

// applyTxnOp performs one sub-operation on its home shard's
// sub-transaction. Sub-op semantics are unconditional: reads of absent
// keys yield 0 and deletes of absent keys are no-ops, so a transaction
// never fails on absence (status codes describe the whole transaction).
func (co *coordinator) applyTxnOp(tx *gstm.Tx, sh int, op TxnOp) (value uint64, delta int64) {
	st := co.srv.stores[sh]
	k := int64(op.Key)
	switch op.Op {
	case OpGet:
		v, _ := st.Get(tx, k)
		return v, 0
	case OpPut:
		if st.Set(tx, k, op.Arg) {
			co.stagePut(sh, op.Key, op.Arg)
			return op.Arg, 0
		}
		st.InsertNoCount(tx, k, op.Arg)
		co.stagePut(sh, op.Key, op.Arg)
		return op.Arg, 1
	case OpAdd:
		if v, ok := st.Get(tx, k); ok {
			nv := uint64(int64(v) + int64(op.Arg))
			st.Set(tx, k, nv)
			co.stagePut(sh, op.Key, nv)
			return nv, 0
		}
		st.InsertNoCount(tx, k, op.Arg)
		co.stagePut(sh, op.Key, op.Arg)
		return op.Arg, 1
	default: // OpDel
		if !st.RemoveNoCount(tx, k) {
			return 0, 0
		}
		if co.logging {
			co.stgs[sh].Del(op.Key)
		}
		return 0, -1
	}
}

func (co *coordinator) stagePut(sh int, key, val uint64) {
	if co.logging {
		co.stgs[sh].Put(key, val)
	}
}

func (co *coordinator) finish(cause obs.Cause) {
	co.span.Finish(cause, time.Now().UnixNano())
	co.srv.obs.Collect(int(co.srv.coordThread()), &co.span)
}

func (co *coordinator) respond(t txnTask, r Response) {
	co.resp = AppendResponse(co.resp[:0], r)
	t.c.writeFrames(co.resp)
	co.srv.inflight.Done()
}
