package server

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"gstm/internal/stats"
)

// WALBenchConfig parameterizes BenchDurability: the same write-heavy
// pipelined fixed-work load is driven against an in-process server with
// durability off (baseline) and then across a sweep of fsync windows, so
// the report isolates what the WAL costs at each point of the
// strictness/throughput trade-off.
type WALBenchConfig struct {
	Runs       int // measured runs per point
	Workers    int
	Batch      int
	Conns      int
	Window     int // pipeline depth (saturates the commit path)
	OpsPerConn int
	Keys       int
	Skew       float64
	// SnapshotEvery is forwarded to the durable points (0 = no snapshots).
	SnapshotEvery int
	// FsyncIntervals is the sweep; 0 means strict. Default {0, 1ms, 5ms,
	// 20ms}.
	FsyncIntervals []time.Duration
	// Dir is where the points keep their WAL directories (default: a fresh
	// temp dir, removed afterwards).
	Dir      string
	Progress io.Writer
}

func (cfg WALBenchConfig) normalize() WALBenchConfig {
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 8
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.OpsPerConn <= 0 {
		cfg.OpsPerConn = 6000
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 512
	}
	if cfg.Skew < 1 {
		cfg.Skew = 3
	}
	if len(cfg.FsyncIntervals) == 0 {
		cfg.FsyncIntervals = []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	}
	return cfg
}

// WALBenchPoint is one durability setting's measurement.
type WALBenchPoint struct {
	Name          string        `json:"name"` // "off", "strict", "relaxed-1ms", ...
	Durable       bool          `json:"durable"`
	FsyncInterval time.Duration `json:"fsync_interval_ns"`

	ThroughputMean  float64 `json:"throughput_mean_ops_per_s"`
	ThroughputCVPct float64 `json:"throughput_cv_pct"`
	// RelativeThroughput is this point's mean throughput over the
	// non-durable baseline's (1.0 for the baseline itself).
	RelativeThroughput float64 `json:"relative_throughput"`

	// WAL activity over the point's whole life (all shards).
	WALAppends   uint64 `json:"wal_appends,omitempty"`
	WALBytes     uint64 `json:"wal_bytes,omitempty"`
	WALFsyncs    uint64 `json:"wal_fsyncs,omitempty"`
	WALSnapshots uint64 `json:"wal_snapshots,omitempty"`
}

// WALBenchReport is the durability cost comparison written to
// BENCH_wal.json by cmd/gstm-loadgen -durability.
type WALBenchReport struct {
	Description string          `json:"description"`
	Config      WALBenchConfig  `json:"config"`
	Points      []WALBenchPoint `json:"points"`
	// RelaxedTargetMet reports the acceptance condition: some relaxed
	// (FsyncInterval > 0) point keeps at least 70% of the non-durable
	// baseline's write-heavy throughput.
	RelaxedTargetMet bool `json:"relaxed_target_met"`
}

// BenchDurability measures the WAL's throughput cost: baseline (no WAL)
// first, then each fsync window, all serving the same pipelined
// write-heavy fixed-work load unguided (guidance off isolates the
// durability cost from the guidance comparison, which BENCH_server.json
// already covers).
func BenchDurability(cfg WALBenchConfig) (WALBenchReport, error) {
	cfg = cfg.normalize()
	rep := WALBenchReport{
		Description: "gstm-loadgen durability cost sweep: identical pipelined write-heavy fixed-work runs against an unguided in-process server with durability off (baseline) and a WAL at each fsync window. Strict (interval 0) fsyncs before every ack; relaxed acks from the page cache and fsyncs per window. relative_throughput is vs the baseline.",
		Config:      cfg,
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "gstm-walbench")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(dir)
	}

	points := []WALBenchPoint{{Name: "off"}}
	for _, iv := range cfg.FsyncIntervals {
		name := "strict"
		if iv > 0 {
			name = fmt.Sprintf("relaxed-%s", iv)
		}
		points = append(points, WALBenchPoint{Name: name, Durable: true, FsyncInterval: iv})
	}

	for i := range points {
		pt := &points[i]
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "walbench: %s (%d runs x %d conns x %d ops)\n",
				pt.Name, cfg.Runs, cfg.Conns, cfg.OpsPerConn)
		}
		if err := runWALPoint(cfg, dir, pt); err != nil {
			return rep, fmt.Errorf("point %s: %w", pt.Name, err)
		}
		if base := points[0].ThroughputMean; base > 0 {
			pt.RelativeThroughput = pt.ThroughputMean / base
		}
		if pt.Durable && pt.FsyncInterval > 0 && pt.RelativeThroughput >= 0.70 {
			rep.RelaxedTargetMet = true
		}
	}
	rep.Points = points
	return rep, nil
}

func runWALPoint(cfg WALBenchConfig, dir string, pt *WALBenchPoint) error {
	scfg := Config{
		Workers:  cfg.Workers,
		Batch:    cfg.Batch,
		Buckets:  2 * cfg.Keys,
		Unguided: true,
	}
	if pt.Durable {
		scfg.WALDir = fmt.Sprintf("%s/%s", dir, pt.Name)
		scfg.FsyncInterval = pt.FsyncInterval
		scfg.SnapshotEvery = cfg.SnapshotEvery
	}
	srv := New(scfg)
	if err := srv.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = srv.Shutdown(ctx)
		cancel()
	}()

	load := LoadConfig{
		Addr:       srv.Addr().String(),
		Conns:      cfg.Conns,
		Window:     cfg.Window,
		OpsPerConn: cfg.OpsPerConn,
		Keys:       cfg.Keys,
		Skew:       cfg.Skew,
		GetPct:     -1, // sentinel: keep 100% Add (see shardbench)
		Seed:       0xC0FFEE,
	}
	var tputs []float64
	for r := 0; r < cfg.Runs; r++ {
		st, err := RunLoad(load)
		if err != nil {
			return err
		}
		tputs = append(tputs, st.Throughput)
	}
	pt.ThroughputMean = stats.Mean(tputs)
	pt.ThroughputCVPct = 100 * stats.CoefficientOfVariation(tputs)
	if l := srv.WAL(0); l != nil {
		pt.WALAppends, pt.WALBytes, pt.WALFsyncs, pt.WALSnapshots = l.Stats()
	}
	return nil
}
