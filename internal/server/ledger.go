package server

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"gstm/internal/xrand"
)

// Ledger is the client-side record of an add-only load run, kept for
// kill-and-recover verification. Adds commute, so per-key sums are a
// complete oracle: after a crash and recovery, every key must hold at
// least the sum of its acknowledged adds (acked writes are durable by the
// WAL contract) and at most acked+inflight (an in-flight add may have
// committed and reached the log just before the kill, or not — either
// outcome is correct; losing an acked one is not).
type Ledger struct {
	// Acked[key] sums the Arg of every add whose StatusOK response was
	// received. Inflight[key] sums adds that were sent but unanswered when
	// the run ended (connection died or run stopped).
	Acked    map[uint64]uint64 `json:"acked"`
	Inflight map[uint64]uint64 `json:"inflight"`
	// Ops/Errors describe the run for reporting.
	Ops    uint64 `json:"ops"`
	Errors uint64 `json:"errors"`
}

// merge folds o into l.
func (l *Ledger) merge(o *Ledger) {
	for k, v := range o.Acked {
		l.Acked[k] += v
	}
	for k, v := range o.Inflight {
		l.Inflight[k] += v
	}
	l.Ops += o.Ops
	l.Errors += o.Errors
}

// WriteFile serializes the ledger as JSON.
func (l *Ledger) WriteFile(path string) error {
	buf, err := json.Marshal(l)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadLedger loads a ledger written by WriteFile.
func ReadLedger(path string) (*Ledger, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	l := &Ledger{}
	if err := json.Unmarshal(buf, l); err != nil {
		return nil, err
	}
	if l.Acked == nil {
		l.Acked = map[uint64]uint64{}
	}
	if l.Inflight == nil {
		l.Inflight = map[uint64]uint64{}
	}
	return l, nil
}

// RunLedgerLoad drives an add-only load (Arg always 1) against cfg.Addr,
// recording every acknowledged add. Unlike RunLoad it expects the server
// to die mid-run: a connection error ends that connection's work with its
// last unanswered add recorded as in-flight, not as a run failure. The
// run ends when every connection has finished its fixed work, hit the
// deadline, or lost its connection.
func RunLedgerLoad(cfg LoadConfig) *Ledger {
	cfg = cfg.normalize()
	leds := make([]*Ledger, cfg.Conns)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Conns; i++ {
		leds[i] = &Ledger{Acked: map[uint64]uint64{}, Inflight: map[uint64]uint64{}}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ledgerConn(cfg, i, leds[i])
		}(i)
	}
	wg.Wait()
	total := &Ledger{Acked: map[uint64]uint64{}, Inflight: map[uint64]uint64{}}
	for _, l := range leds {
		total.merge(l)
	}
	return total
}

func ledgerConn(cfg LoadConfig, i int, led *Ledger) {
	cl, err := Dial(cfg.Addr)
	if err != nil {
		return // server already gone: nothing sent, nothing owed
	}
	defer cl.Close()
	r := xrand.NewThread(cfg.Seed, i)
	deadline := time.Now().Add(cfg.Duration)
	for n := 0; ; n++ {
		if cfg.OpsPerConn > 0 {
			if n >= cfg.OpsPerConn {
				return
			}
		} else if !time.Now().Before(deadline) {
			return
		}
		key := skewKey(r, cfg)
		st, _, err := cl.Do(OpAdd, key, 1)
		if err != nil {
			// Connection died mid-request: the add was sent (or partially
			// sent) and never answered — in-flight, outcome unknown.
			led.Inflight[key]++
			return
		}
		led.Ops++
		if st == StatusOK {
			led.Acked[key]++
		} else {
			// StatusShutdown, StatusUnavailable, ...: answered and
			// explicitly NOT acknowledged; the server may still have
			// committed it in memory (Unavailable), but durability makes no
			// promise either way — same contract as in-flight.
			led.Errors++
			led.Inflight[key]++
		}
	}
}

// skewKey mirrors nextOp's key draw (add-only runs share the keyspace
// shape of the mixed workload).
func skewKey(r *xrand.Rand, cfg LoadConfig) uint64 {
	return uint64(float64(cfg.Keys-1) * math.Pow(r.Float64(), cfg.Skew))
}

// VerifyLedger checks a recovered server against a ledger: for every key,
// acked ≤ recovered value ≤ acked + inflight. It returns the list of
// violations (empty = the recovery kept every acknowledged write).
func VerifyLedger(addr string, led *Ledger) ([]string, error) {
	cl, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	keys := make(map[uint64]struct{}, len(led.Acked)+len(led.Inflight))
	for k := range led.Acked {
		keys[k] = struct{}{}
	}
	for k := range led.Inflight {
		keys[k] = struct{}{}
	}
	var violations []string
	for k := range keys {
		st, v, err := cl.Do(OpGet, k, 0)
		if err != nil {
			return violations, err
		}
		if st == StatusNotFound {
			v = 0
		} else if st != StatusOK {
			return violations, fmt.Errorf("get %d: status %d", k, st)
		}
		lo := led.Acked[k]
		hi := lo + led.Inflight[k]
		if v < lo || v > hi {
			violations = append(violations,
				fmt.Sprintf("key %d: recovered %d outside [acked %d, acked+inflight %d]", k, v, lo, hi))
		}
	}
	return violations, nil
}
