package server

import (
	"context"
	"testing"
	"time"

	"gstm/internal/faultinject"
)

// TestDurableCleanShutdown: every operation acknowledged before a
// graceful shutdown must be present after recovery — a clean exit leaves
// no committed-but-unlogged record behind.
func TestDurableCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 2, Batch: 4, Unguided: true,
		WALDir: dir, FsyncInterval: 5 * time.Millisecond,
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	addr := s.Addr().String()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	acked := map[uint64]uint64{}
	for i := uint64(0); i < 300; i++ {
		k := i % 37
		st, v, err := cl.Do(OpAdd, k, 1)
		if err != nil || st != StatusOK {
			t.Fatalf("add %d: status %d err %v", i, st, err)
		}
		acked[k] = v
	}
	cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()

	// Recover into a fresh server on the same directory; acked state must
	// be exactly there (relaxed mode: the clean shutdown flushed + fsynced
	// everything on Close, so even the page-cache window is closed).
	s2 := startServer(t, cfg)
	cl2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatalf("dial recovered: %v", err)
	}
	defer cl2.Close()
	for k, want := range acked {
		st, v, err := cl2.Do(OpGet, k, 0)
		if err != nil || st != StatusOK {
			t.Fatalf("get %d after recovery: status %d err %v", k, st, err)
		}
		if v != want {
			t.Fatalf("key %d: recovered %d, acked %d", k, v, want)
		}
	}
	// liveKeys was recounted from the recovered store.
	n, err := cl2.Info(InfoKeys)
	if err != nil || n != uint64(len(acked)) {
		t.Fatalf("InfoKeys = %d (err %v), want %d", n, err, len(acked))
	}
}

// TestKillAndRecoverChaos is the tentpole acceptance test: an add-only
// ledgered load is cut short by Crash (the in-process SIGKILL), the
// server recovers from the same WAL directory with guided warmup on, and
// every acknowledged write must be present — with the recovered Tseq
// pre-training the shard models so the server restarts guided.
func TestKillAndRecoverChaos(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery stays 0 here: truncation discards Tseq history, and the
	// warmup assertion below needs the full commit trace in the log. The
	// snapshot+crash path is covered by TestSnapshotCrashRecovery.
	cfg := Config{
		Shards: 2, Workers: 2, Batch: 4, Unguided: true,
		WALDir: dir, FsyncInterval: 10 * time.Millisecond,
		GuidedWarmup: true, ForceGuidance: true,
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}

	load := LoadConfig{
		Addr:  s.Addr().String(),
		Conns: 4, Duration: 30 * time.Second, // cut short by the crash
		Keys: 64, Skew: 2, Seed: 0xDEAD,
	}
	ledCh := make(chan *Ledger, 1)
	go func() { ledCh <- RunLedgerLoad(load) }()
	// Crash only after every shard has logged comfortably more commits
	// than warmup needs, so the recovered Tseq can train a model per shard.
	deadline := time.Now().Add(20 * time.Second)
	for {
		minCommits := uint64(1 << 62)
		for sh := 0; sh < cfg.Shards; sh++ {
			c, _ := s.Router().System(sh).Stats()
			if c < minCommits {
				minCommits = c
			}
		}
		if minCommits >= 4*warmupMinCommits {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load never reached %d commits per shard", 4*warmupMinCommits)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.Crash()
	led := <-ledCh
	if led.Ops < 100 {
		t.Fatalf("only %d ops before the crash; load never got going", led.Ops)
	}

	// Recover. Unguided stays false now so warmup can install guidance.
	cfg.Unguided = false
	s2 := New(cfg)
	if err := s2.Start(); err != nil {
		t.Fatalf("recovery start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	})

	violations, err := VerifyLedger(s2.Addr().String(), led)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, v := range violations {
		t.Errorf("ledger violation: %s", v)
	}

	// Guided warmup: the replayed Tseq trained and force-installed a model
	// on every shard, so the server serves guided without re-profiling.
	if m := s2.Mode(); m != ModeGuided {
		t.Fatalf("recovered mode = %v, want ModeGuided via warmup", m)
	}
	for sh := 0; sh < cfg.Shards; sh++ {
		snap := s2.Router().System(sh).TelemetrySnapshot()
		if snap.RecoveryReplayed == 0 {
			t.Errorf("shard %d: recovery_replayed_records = 0 after a loaded crash", sh)
		}
	}
}

// TestSnapshotCrashRecovery: periodic snapshots truncate the log
// mid-load, the process dies without flushing (Crash), and recovery
// rebuilds exact acked state from snapshot + the post-snapshot record
// tail.
func TestSnapshotCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 2, Batch: 4, Unguided: true,
		WALDir: dir, FsyncInterval: 5 * time.Millisecond, SnapshotEvery: 60,
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	acked := map[uint64]uint64{}
	for i := uint64(0); i < 300; i++ {
		k := i % 37
		st, v, err := cl.Do(OpAdd, k, 1)
		if err != nil || st != StatusOK {
			t.Fatalf("add %d: status %d err %v", i, st, err)
		}
		acked[k] = v
	}
	cl.Close()
	snaps := s.Router().System(0).TelemetrySnapshot().WALSnapshots
	if snaps == 0 {
		t.Fatal("no snapshot fired over 300 appends with SnapshotEvery=60")
	}
	s.Crash()

	s2 := startServer(t, cfg)
	cl2, err := Dial(s2.Addr().String())
	if err != nil {
		t.Fatalf("dial recovered: %v", err)
	}
	defer cl2.Close()
	for k, want := range acked {
		st, v, err := cl2.Do(OpGet, k, 0)
		if err != nil || st != StatusOK {
			t.Fatalf("get %d after recovery: status %d err %v", k, st, err)
		}
		if v != want {
			t.Fatalf("key %d: recovered %d, acked %d", k, v, want)
		}
	}
	// Truncation must have done its job: replay handled only the tail
	// after the last snapshot, not the full history.
	snap := s2.Router().System(0).TelemetrySnapshot()
	if snap.RecoveryReplayed >= 300 {
		t.Fatalf("replayed %d records; snapshots never truncated the log", snap.RecoveryReplayed)
	}
}

// TestWALFailureMapsToUnavailable: when a shard's log dies (injected
// fsync failure in strict mode), mutating operations answer
// StatusUnavailable rather than acking unlogged state; reads keep
// working.
func TestWALFailureMapsToUnavailable(t *testing.T) {
	inj := faultinject.NewDisk(faultinject.DiskConfig{Seed: 11, FsyncErrorProb: 1})
	s := startServer(t, Config{
		Workers: 2, Batch: 4, Unguided: true,
		WALDir: t.TempDir(), DiskFaults: inj,
	})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	sawUnavailable := false
	for i := uint64(0); i < 50; i++ {
		st, _, err := cl.Do(OpAdd, i, 1)
		if err != nil {
			t.Fatalf("add: %v", err)
		}
		if st == StatusUnavailable {
			sawUnavailable = true
			break
		}
	}
	if !sawUnavailable {
		t.Fatal("no StatusUnavailable despite every fsync failing")
	}
	if st, _, err := cl.Do(OpGet, 0, 0); err != nil || (st != StatusOK && st != StatusNotFound) {
		t.Fatalf("read after WAL failure: status %d err %v", st, err)
	}
	fsyncErrs, _, _ := inj.DiskCounts()
	if fsyncErrs == 0 {
		t.Fatal("injector never fired")
	}
}
