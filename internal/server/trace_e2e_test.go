package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gstm/internal/obs"
)

// validCauses is the abort-cause taxonomy as label strings; every span's
// terminal cause and event cause must come from it.
func validCauses() map[string]bool {
	m := make(map[string]bool)
	for i := 0; i < int(obs.NumCauses); i++ {
		m[obs.CauseName(i)] = true
	}
	return m
}

// phaseRank orders phases as a request experiences them; events within a
// span must never go backwards through it.
var phaseRank = map[string]int{
	"decode":   0,
	"queue":    1,
	"gate":     2,
	"retry":    2, // interleaves with gate across attempts
	"lock":     3,
	"validate": 4,
	"publish":  5,
	"walack":   6,
}

// TestServerTraceEndToEnd drives traced operations through a live sharded
// server and scrapes the variance observatory over HTTP: the protocol
// trace-request bit must land spans in the forced ring, every span must
// carry a well-formed phase timeline (decode, then queue, then the commit
// phases in protocol order) with taxonomy cause labels, and the agg and
// chrome formats must serve.
func TestServerTraceEndToEnd(t *testing.T) {
	s := startServer(t, Config{
		Shards:           2,
		Workers:          2,
		Batch:            4,
		Unguided:         true,
		TraceSampleEvery: 1,
	})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTrace(true)

	const ops = 200
	for i := 0; i < ops; i++ {
		if _, err := cl.Add(uint64(i), 1); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}

	ts := httptest.NewServer(s.Observatory().Handler())
	defer ts.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return body
	}

	var snap obs.Snapshot
	if err := json.Unmarshal(get("/"), &snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if len(snap.Forced) == 0 {
		t.Fatal("trace-request bit set on every op but the forced ring is empty")
	}
	if len(snap.Sampled) == 0 {
		t.Fatal("SampleEvery=1 but the sampled rings are empty")
	}
	causes := validCauses()
	shardsSeen := map[int]bool{}
	for _, sp := range snap.Forced {
		if !sp.Forced {
			t.Fatalf("span %d in the forced ring without the forced flag", sp.ID)
		}
		if !causes[sp.Cause] {
			t.Fatalf("span %d: terminal cause %q not in the taxonomy", sp.ID, sp.Cause)
		}
		if sp.Shard < 0 || sp.Shard >= 2 {
			t.Fatalf("span %d: shard %d out of range", sp.ID, sp.Shard)
		}
		shardsSeen[sp.Shard] = true
		if len(sp.Events) < 3 {
			t.Fatalf("span %d: %d events, want at least decode+queue+commit phases", sp.ID, len(sp.Events))
		}
		if sp.Events[0].Phase != "decode" || sp.Events[1].Phase != "queue" {
			t.Fatalf("span %d: timeline starts %q,%q, want decode,queue", sp.ID, sp.Events[0].Phase, sp.Events[1].Phase)
		}
		prev := -1
		for _, e := range sp.Events {
			r, ok := phaseRank[e.Phase]
			if !ok {
				t.Fatalf("span %d: unknown phase %q", sp.ID, e.Phase)
			}
			if r < prev {
				t.Fatalf("span %d: phase %q out of order (rank %d after %d)", sp.ID, e.Phase, r, prev)
			}
			prev = r
			if e.Cause != "" && !causes[e.Cause] {
				t.Fatalf("span %d: event cause %q not in the taxonomy", sp.ID, e.Cause)
			}
		}
		// A committed Add publishes: its span must show the publish phase.
		if sp.Cause == "none" {
			found := false
			for _, e := range sp.Events {
				if e.Phase == "publish" {
					found = true
				}
			}
			if !found {
				t.Fatalf("span %d committed but records no publish phase: %+v", sp.ID, sp.Events)
			}
		}
	}
	if len(shardsSeen) != 2 {
		t.Fatalf("200 hash-spread keys touched shards %v, want both", shardsSeen)
	}

	var agg obs.AggSnapshot
	if err := json.Unmarshal(get("/?format=agg"), &agg); err != nil {
		t.Fatalf("agg decode: %v", err)
	}
	if len(agg.Shards) != 2 {
		t.Fatalf("agg covers %d shards, want 2", len(agg.Shards))
	}
	var total uint64
	for _, sh := range agg.Shards {
		total += sh.Total.Count
		for _, name := range []string{"decode", "queue", "publish"} {
			if agg := sh.Phases[name]; agg.Count == 0 {
				t.Fatalf("shard %d: phase %q absent from the aggregation", sh.Shard, name)
			}
		}
	}
	if total == 0 {
		t.Fatal("aggregation total count is zero after 200 traced ops")
	}

	if chrome := string(get("/?format=chrome")); !strings.Contains(chrome, "traceEvents") {
		t.Fatalf("chrome export missing traceEvents envelope: %.120s", chrome)
	}
	if resp, err := http.Get(ts.URL + "/?format=bogus"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus format: status %v err %v, want 400", resp.StatusCode, err)
	}
}

// TestServerTraceDiffTable runs the loadgen-style scrape-diff-format path
// against a live server: two agg scrapes around a burst of traffic must
// diff to a non-empty run-local table.
func TestServerTraceDiffTable(t *testing.T) {
	s := startServer(t, Config{Shards: 2, Workers: 2, Unguided: true, TraceSampleEvery: 1})
	ts := httptest.NewServer(s.Observatory().Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Add(1, 1); err != nil {
		t.Fatal(err)
	}

	before, err := FetchTraceAgg(addr)
	if err != nil {
		t.Fatalf("scrape before: %v", err)
	}
	const burst = 64
	for i := 0; i < burst; i++ {
		if _, err := cl.Add(uint64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	after, err := FetchTraceAgg(addr)
	if err != nil {
		t.Fatalf("scrape after: %v", err)
	}

	diff := DiffTraceAgg(after, before)
	var count uint64
	for _, sh := range diff.Shards {
		count += sh.Total.Count
	}
	if count != burst {
		t.Fatalf("diffed total count = %d, want exactly the %d spans of the burst", count, burst)
	}
	table := FormatTailTable(diff)
	for _, want := range []string{"shard", "phase", "p99.9", "total", "publish"} {
		if !strings.Contains(table, want) {
			t.Fatalf("tail table missing %q:\n%s", want, table)
		}
	}
}
