package server

import (
	"errors"
	"time"

	"gstm"
	"gstm/internal/obs"
)

// The watch subsystem serves OpWatch/OpWaitKey long-polls as blocking STM
// transactions: the body reads the key and calls tx.Retry when the wait
// condition holds, which parks the goroutine on exactly the cells the
// read touched (the key's hash bucket chain). A commit that changes the
// key wakes the parked transaction through tl2's per-base waiter lists —
// no server-side polling loop, no periodic revalidation.
//
// Watches run outside the worker pool, one goroutine per outstanding
// watch, all on the dedicated watch thread (ThreadID Workers+2; the txn
// coordinator owns Workers and the WAL scan Workers+1). Concurrent
// transactions on one ThreadID are
// safe — telemetry stripes are atomic and the guidance gate is lock-free —
// they only share a telemetry stripe and a TSA site, which is the point:
// the watch site is a single stable label instead of Workers noisy ones.
//
// Drain: Shutdown and Crash cancel watchCtx before waiting out inflight,
// so every parked watch wakes with gstm.ErrCanceled and answers
// StatusShutdown; a watch arriving while draining is refused with
// StatusWouldBlock without ever parking (see serveConn).

// watchThread is the STM thread every watch transaction runs as.
func (s *Server) watchThread() gstm.ThreadID {
	return gstm.ThreadID(s.cfg.Workers + 2)
}

// serveWatch runs one OpWatch/OpWaitKey long-poll to completion and writes
// its response. Called on a dedicated goroutine holding one inflight slot.
func (s *Server) serveWatch(req Request, c *conn) {
	defer s.inflight.Done()
	sh := s.router.HomeOf(req.Key)
	st := s.stores[sh]

	var sp obs.Span
	begin := time.Now().UnixNano()
	sp.Start(req.ID, uint8(req.Op), uint8(sh), uint8(s.watchThread()), 1, req.Trace, begin)

	var val uint64
	err := s.router.System(sh).Run(nil, s.watchThread(), siteWatch, func(tx *gstm.Tx) error {
		v, ok := st.Get(tx, int64(req.Key))
		if !ok || (req.Op == OpWatch && v == req.Arg) {
			tx.Retry()
		}
		val = v
		return nil
	}, gstm.WithBlocking(s.watchCtx), gstm.WithSpan(&sp))

	resp := Response{ID: req.ID, Value: val}
	cause := obs.CauseNone
	switch {
	case err == nil:
	case errors.Is(err, gstm.ErrWouldBlock):
		// Cannot park (empty read set — impossible for a hash-table Get, but
		// the mapping stays total).
		resp = Response{ID: req.ID, Status: StatusWouldBlock}
		cause = obs.CauseSpurious
	case errors.Is(err, gstm.ErrCanceled):
		// watchCtx fired: the server is draining out from under the park.
		resp = Response{ID: req.ID, Status: StatusShutdown}
		cause = obs.CauseCanceled
	default:
		resp = Response{ID: req.ID, Status: StatusBadRequest}
		cause = obs.CauseSpurious
	}
	sp.Finish(cause, time.Now().UnixNano())
	s.obs.Collect(int(s.watchThread()), &sp)
	c.writeFrames(AppendResponse(nil, resp))
}
