package server

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"gstm"
)

// ServingMode is the lifecycle's externally visible state, reported by
// OpInfo(InfoMode). It is the package-level gstm.Mode: the server overlays
// the two transitional states only a lifecycle driver can know
// (ModeTraining, ModeRejected) on top of the states gstm.System.Mode
// derives itself.
type ServingMode = gstm.Mode

const (
	// ModeUnguided: plain TL2, no profiling (forced via CtlModeUnguided,
	// or configured at start).
	ModeUnguided = gstm.ModeUnguided
	// ModeProfiling: serving unguided while the collector captures the
	// transaction sequence of live traffic.
	ModeProfiling = gstm.ModeProfiling
	// ModeTraining: profiling finished; the model is being built and
	// analyzed in the background while serving continues unguided.
	ModeTraining = gstm.ModeTraining
	// ModeGuided: a model passed (or was forced) and the guidance gate is
	// installed — the hot-swap happened under load.
	ModeGuided = gstm.ModeGuided
	// ModeRejected: the analyzer rejected the trained model
	// (gstm.ErrGuidanceRejected); serving stays unguided. The reason is
	// kept for RejectReason.
	ModeRejected = gstm.ModeRejected
	// ModeDegraded: guided, but the watchdog has tripped guidance into
	// pass-through. Derived in Server.Mode, never stored.
	ModeDegraded = gstm.ModeDegraded
)

// lifecycle drives the paper's profile → model → analyze → guided flow
// over live traffic for ONE shard's System. Workers call noteOps on every
// committed batch; the worker that crosses a slice boundary finalizes the
// trace, and the one that completes the last slice kicks off background
// training. Control commands can reset the machine at any time; a
// generation counter makes stale background training results no-ops. Each
// shard owns an independent lifecycle, so one shard's rejected model never
// holds back a neighbor's hot-swap.
type lifecycle struct {
	sys *gstm.System
	cfg *Config

	mode    atomic.Uint32
	counted atomic.Int64 // committed ops in the current profiling slice
	target  atomic.Int64 // ops per slice for the current auto cycle

	mu        sync.Mutex
	gen       uint64 // bumped on every reconfiguration
	traces    []*gstm.Trace
	reason    string
	lastModel *gstm.Model // most recently trained model, for CtlModeGuided
}

func (lc *lifecycle) init(sys *gstm.System, cfg *Config) {
	lc.sys = sys
	lc.cfg = cfg
}

func (lc *lifecycle) currentMode() ServingMode { return ServingMode(lc.mode.Load()) }

func (lc *lifecycle) rejectReason() string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.reason
}

// forceUnguided parks the lifecycle: guidance uninstalled, profiling off.
func (lc *lifecycle) forceUnguided() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.gen++
	lc.sys.StopProfiling() // discard a partial trace, if any
	lc.sys.DisableGuidance()
	lc.traces = nil
	lc.reason = ""
	lc.mode.Store(uint32(ModeUnguided))
}

// startAuto (re)starts the profile→guide cycle with the given slice size.
func (lc *lifecycle) startAuto(profileOps int) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.gen++
	lc.sys.StopProfiling()
	lc.sys.DisableGuidance()
	lc.traces = nil
	lc.reason = ""
	lc.target.Store(int64(profileOps))
	lc.counted.Store(0)
	lc.sys.StartProfiling()
	lc.mode.Store(uint32(ModeProfiling))
}

// forceReject parks the shard in ModeRejected with the given reason:
// guidance uninstalled, profiling off, serving continues unguided. Used by
// the CtlShardReject control command (and tests) to exercise the
// one-shard-rejected-neighbors-guided topology on demand.
func (lc *lifecycle) forceReject(reason string) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.gen++
	lc.sys.StopProfiling()
	lc.sys.DisableGuidance()
	lc.traces = nil
	lc.reason = reason
	lc.mode.Store(uint32(ModeRejected))
}

// noteOps credits n committed operations to the current profiling slice.
// Cheap when not profiling: one atomic load.
func (lc *lifecycle) noteOps(n int) {
	if lc.currentMode() != ModeProfiling {
		return
	}
	if lc.counted.Add(int64(n)) < lc.target.Load() {
		return
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	// Re-check under the lock: another worker may have closed the slice,
	// or a control command reconfigured everything.
	if lc.currentMode() != ModeProfiling || lc.counted.Load() < lc.target.Load() {
		return
	}
	tr := lc.sys.StopProfiling()
	lc.counted.Store(0)
	if tr != nil {
		lc.traces = append(lc.traces, tr)
	}
	if len(lc.traces) < lc.cfg.ProfileSlices {
		lc.sys.StartProfiling()
		return
	}
	traces := lc.traces
	lc.traces = nil
	lc.mode.Store(uint32(ModeTraining))
	gen := lc.gen
	go pprof.Do(context.Background(), pprof.Labels("gstm", "lifecycle-train"),
		func(context.Context) { lc.train(gen, traces) })
}

// train builds and analyzes the model off the serving path, then — if it
// passes (or ForceGuidance) and no reconfiguration intervened — hot-swaps
// the guidance gate under load.
func (lc *lifecycle) train(gen uint64, traces []*gstm.Trace) {
	m := gstm.BuildModel(lc.cfg.Workers, traces)
	opts := lc.guidanceOptions()

	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.gen != gen {
		return // a control command reconfigured the server mid-training
	}
	if lc.cfg.ForceGuidance {
		lc.lastModel = m
		lc.sys.ForceGuidance(m, opts...)
		lc.mode.Store(uint32(ModeGuided))
		return
	}
	if err := lc.sys.EnableGuidance(m, opts...); err != nil {
		lc.reason = err.Error()
		lc.mode.Store(uint32(ModeRejected))
		return
	}
	lc.lastModel = m
	lc.mode.Store(uint32(ModeGuided))
}

func (lc *lifecycle) guidanceOptions() []gstm.GuidanceOption {
	opts := []gstm.GuidanceOption{
		gstm.WithTfactor(lc.cfg.Tfactor),
		gstm.WithGateRetries(lc.cfg.GateRetries),
	}
	if lc.cfg.Watchdog != nil {
		opts = append(opts, gstm.WithWatchdog(*lc.cfg.Watchdog))
	}
	return opts
}

// warmStart installs a model reconstructed from the shard's recovered
// write-ahead log before serving begins (guided warmup): the same
// install path as train, minus the profiling that produced the traces.
// Reports false when the analyzer rejects the model (and ForceGuidance is
// off) — the caller falls back to the normal cold start.
func (lc *lifecycle) warmStart(m *gstm.Model) bool {
	opts := lc.guidanceOptions()
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.gen++
	if lc.cfg.ForceGuidance {
		lc.lastModel = m
		lc.sys.ForceGuidance(m, opts...)
		lc.mode.Store(uint32(ModeGuided))
		return true
	}
	if err := lc.sys.EnableGuidance(m, opts...); err != nil {
		lc.reason = err.Error()
		return false
	}
	lc.lastModel = m
	lc.mode.Store(uint32(ModeGuided))
	return true
}

// reinstallGuided force-installs the most recently trained model without
// re-profiling. Reports false when no model has been trained yet.
func (lc *lifecycle) reinstallGuided() bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.lastModel == nil {
		return false
	}
	lc.gen++
	lc.sys.StopProfiling()
	lc.sys.ForceGuidance(lc.lastModel, lc.guidanceOptions()...)
	lc.mode.Store(uint32(ModeGuided))
	return true
}
