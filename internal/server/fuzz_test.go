package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest exercises the request codec with arbitrary payloads:
// DecodeRequest must never panic, and every payload it accepts must
// re-encode to the identical frame (the codec is bijective on valid
// frames — that is what lets the server trust framing after one decode).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendRequest(nil, Request{Op: OpGet, ID: 1, Key: 42})[4:])
	f.Add(AppendRequest(nil, Request{Op: OpPut, ID: 0xFFFFFFFF, Key: ^uint64(0), Arg: 7})[4:])
	f.Add(AppendRequest(nil, Request{Op: OpCtl, ID: 3, Key: uint64(CtlModeAuto), Arg: 512})[4:])
	f.Add(AppendRequest(nil, Request{Op: OpWatch, ID: 9, Key: 17, Arg: 3, Trace: true})[4:])
	f.Add(AppendRequest(nil, Request{Op: OpWaitKey, ID: 10, Key: 99})[4:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, reqPayloadLen))
	f.Add(bytes.Repeat([]byte{0x00}, reqPayloadLen+1))

	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		if len(payload) != reqPayloadLen {
			t.Fatalf("accepted %d-byte payload, want exactly %d", len(payload), reqPayloadLen)
		}
		if req.Op < OpGet || req.Op > OpWaitKey {
			t.Fatalf("accepted invalid op %d", req.Op)
		}
		frame := AppendRequest(nil, req)
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", payload, frame[4:])
		}
	})
}

// FuzzDecodeResponse is the response-side dual.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendResponse(nil, Response{ID: 1, Status: StatusOK, Value: 2})[4:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, respPayloadLen))

	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		frame := AppendResponse(nil, resp)
		if !bytes.Equal(frame[4:], payload) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", payload, frame[4:])
		}
	})
}
