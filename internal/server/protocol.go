// Package server is gstm's network-facing transactional serving layer: a
// length-prefixed binary KV protocol decoded per connection, a worker pool
// whose workers map 1:1 onto STM ThreadIDs (so the Thread State Automaton
// trained on live traffic stays meaningful), and disjoint-key request
// batching that coalesces up to Batch queued operations into one
// transaction per worker. The server drives the paper's full lifecycle
// over live traffic: serve unguided while profiling, build and analyze
// the TSA in the background, and hot-swap into guided mode when the model
// passes (watchdog armed). See DESIGN.md "Serving layer".
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is a request operation code.
type Op uint8

const (
	// OpGet reads Key; the response carries the value (StatusNotFound when
	// absent). Get batches run on TL2's read-only fast path.
	OpGet Op = 1
	// OpPut stores Arg under Key; the response value is 1 when the key
	// already existed, 0 when it was created.
	OpPut Op = 2
	// OpAdd adds Arg (two's-complement signed) to Key's value, inserting
	// Arg when absent; the response carries the new value. Adds commute,
	// which makes them the oracle-friendly op for correctness tests.
	OpAdd Op = 3
	// OpDel removes Key (StatusNotFound when absent).
	OpDel Op = 4
	// OpCtl is the control plane: Key selects a CtlCommand, Arg its
	// argument. Control requests bypass the STM entirely.
	OpCtl Op = 5
	// OpInfo reads one server gauge: Key selects an InfoSelector; the
	// response carries the value. Bypasses the STM.
	OpInfo Op = 6
	// OpWatch long-polls Key for a change: it blocks while the key is
	// absent or its value equals Arg (the client's last-seen value), and
	// responds with the new value once a commit changes it. Served by a
	// blocking transaction parked on the key's cells — no server-side
	// polling. During graceful drain a parked watch completes with
	// StatusShutdown; a newly arriving one gets StatusWouldBlock.
	OpWatch Op = 7
	// OpWaitKey blocks until Key exists, responding with its value
	// (immediately when already present). Arg is ignored. Same long-poll
	// and drain semantics as OpWatch.
	OpWaitKey Op = 8
	// OpTxn executes a multi-key transaction: up to MaxTxnOps sub-operations
	// applied atomically — all of them commit or none do, even when their
	// keys home to different shards (the cross-shard commit protocol; see
	// DESIGN.md "Cross-shard commit"). The 21-byte request header carries
	// the sub-op count in Key (Arg is reserved, must be 0), followed by
	// count 17-byte sub-operations: op u8 | key u64 | arg u64. Sub-ops are
	// OpGet/OpPut/OpAdd/OpDel with unconditional semantics: a sub-Get of an
	// absent key reads 0 and a sub-Del of an absent key is a no-op, so a
	// transaction never fails on absence. The single response carries the
	// last sub-op's value. OpTxn frames are the protocol's only
	// variable-length requests, dispatched before the fixed-size decode
	// (DecodeTxnRequest).
	OpTxn Op = 9
)

// CtlCommand values travel in the Key field of an OpCtl request.
type CtlCommand uint64

const (
	// CtlModeUnguided forces plain unguided execution: guidance off,
	// profiling off. The serving mode latches to ModeUnguided.
	CtlModeUnguided CtlCommand = 0
	// CtlModeAuto (re)starts the paper's lifecycle: profile Arg committed
	// operations (0 = the server's configured default), then build and
	// analyze the model in the background and hot-swap into guided mode if
	// it passes.
	CtlModeAuto CtlCommand = 1
	// CtlReset zeroes the system's cumulative counters (commits, aborts,
	// latency histograms) so a load run measures only itself.
	CtlReset CtlCommand = 2
	// CtlModeGuided re-installs the most recently trained model without
	// re-profiling (StatusUnguidable when none has been trained yet on any
	// shard). With CtlModeUnguided this lets a benchmark alternate modes
	// run by run, so both sample the same machine-noise window.
	CtlModeGuided CtlCommand = 3
	// CtlShardReject force-rejects shard Arg's guidance lifecycle: its
	// model is dropped and the shard latches ModeRejected, serving
	// unguided while its neighbors keep their gates. StatusBadRequest for
	// an out-of-range shard. Exists to exercise the partial-degradation
	// topology on a live server (chaos drills, tests).
	CtlShardReject CtlCommand = 4
)

// InfoSelector values travel in the Key field of an OpInfo request.
type InfoSelector uint64

const (
	InfoCommits    InfoSelector = 0 // cumulative committed transactions, all shards
	InfoAborts     InfoSelector = 1 // cumulative aborted attempts, all shards
	InfoMode       InfoSelector = 2 // aggregate ServingMode (see Server.Mode)
	InfoBatches    InfoSelector = 3 // transactions executed by workers
	InfoBatchedOps InfoSelector = 4 // operations carried by those transactions
	InfoKeys       InfoSelector = 5 // live keys in the store

	// Per-shard selectors: Arg carries the shard index (StatusBadRequest
	// when out of range).
	InfoShards       InfoSelector = 6 // shard count
	InfoShardMode    InfoSelector = 7 // shard Arg's ServingMode
	InfoShardCommits InfoSelector = 8 // shard Arg's committed transactions
	InfoShardAborts  InfoSelector = 9 // shard Arg's aborted attempts
)

// Status is a response status code. The server maps gstm's error
// sentinels onto these: ErrRetryBudgetExhausted → StatusBudget,
// ErrCanceled → StatusCanceled, ErrGuidanceRejected → StatusUnguidable.
type Status uint8

const (
	StatusOK         Status = 0
	StatusNotFound   Status = 1
	StatusCanceled   Status = 2
	StatusBudget     Status = 3
	StatusUnguidable Status = 4
	StatusBadRequest Status = 5
	StatusShutdown   Status = 6
	// StatusUnavailable: the operation's durability could not be promised —
	// the shard's write-ahead log refused or failed to acknowledge the
	// record. The mutation may or may not have executed in memory; it was
	// never acked, so recovery makes no promise about it either way.
	StatusUnavailable Status = 7
	// StatusWouldBlock: the wire mapping of gstm.ErrWouldBlock — a watch
	// (or other blocking op) could not park, e.g. because it arrived while
	// the server was draining. The state is unchanged; the client may retry
	// against another replica or poll.
	StatusWouldBlock Status = 8
)

// Wire format: every frame is a 4-byte big-endian payload length followed
// by the payload. Requests and responses are fixed-size, so the decode
// path allocates nothing and the encode path is a plain append.
//
//	request payload  (21 B): op u8 | id u32 | key u64 | arg u64
//	response payload (13 B): id u32 | status u8 | value u64
const (
	reqPayloadLen  = 1 + 4 + 8 + 8
	respPayloadLen = 4 + 1 + 8

	// ReqFrameLen and RespFrameLen are full frame sizes including the
	// length prefix, for buffer sizing.
	ReqFrameLen  = 4 + reqPayloadLen
	RespFrameLen = 4 + respPayloadLen

	// MaxFrame bounds accepted payload lengths; anything larger is a
	// protocol error, so a corrupt prefix cannot make the reader allocate
	// or block on gigabytes.
	MaxFrame = 1 << 10

	// txnOpLen is one OpTxn sub-operation: op u8 | key u64 | arg u64.
	txnOpLen = 1 + 8 + 8

	// MaxTxnOps bounds sub-operations per OpTxn request so the largest
	// transaction frame still fits MaxFrame (21 + 59*17 = 1024).
	MaxTxnOps = (MaxFrame - reqPayloadLen) / txnOpLen
)

// TraceBit is the high bit of the wire op byte: a client sets it to demand
// a full span trace for the request regardless of the observatory's
// sampling rate. DecodeRequest strips it into Request.Trace, so op codes
// stay confined to the low 7 bits.
const TraceBit = 0x80

// Request is one decoded client operation.
type Request struct {
	Op    Op
	ID    uint32 // echoed verbatim in the response
	Key   uint64
	Arg   uint64
	Trace bool // client set the wire trace bit (see TraceBit)
}

// Response is one server reply.
type Response struct {
	ID     uint32
	Status Status
	Value  uint64
}

// ErrShortFrame reports a request payload of the wrong size.
var ErrShortFrame = errors.New("server: request payload has wrong length")

// ErrBadOp reports an unknown operation code.
var ErrBadOp = errors.New("server: unknown op")

// DecodeRequest decodes one request payload (the bytes after the length
// prefix). It allocates nothing and never retains buf.
func DecodeRequest(buf []byte) (Request, error) {
	if len(buf) != reqPayloadLen {
		return Request{}, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(buf))
	}
	r := Request{
		Op:    Op(buf[0] &^ TraceBit),
		ID:    binary.BigEndian.Uint32(buf[1:5]),
		Key:   binary.BigEndian.Uint64(buf[5:13]),
		Arg:   binary.BigEndian.Uint64(buf[13:21]),
		Trace: buf[0]&TraceBit != 0,
	}
	if r.Op < OpGet || r.Op > OpWaitKey {
		return Request{}, fmt.Errorf("%w: %d", ErrBadOp, r.Op)
	}
	return r, nil
}

// AppendRequest appends r's full frame (length prefix + payload) to dst.
func AppendRequest(dst []byte, r Request) []byte {
	var b [ReqFrameLen]byte
	binary.BigEndian.PutUint32(b[0:4], reqPayloadLen)
	b[4] = byte(r.Op)
	if r.Trace {
		b[4] |= TraceBit
	}
	binary.BigEndian.PutUint32(b[5:9], r.ID)
	binary.BigEndian.PutUint64(b[9:17], r.Key)
	binary.BigEndian.PutUint64(b[17:25], r.Arg)
	return append(dst, b[:]...)
}

// TxnOp is one sub-operation of an OpTxn multi-key transaction: Op is one
// of OpGet/OpPut/OpAdd/OpDel, Key its target, Arg its argument (ignored
// for Get/Del).
type TxnOp struct {
	Op  Op
	Key uint64
	Arg uint64
}

// DecodeTxnRequest decodes one OpTxn request payload. The header decodes
// like a fixed request (op|id|key|arg) with the sub-op count in Key; the
// sub-ops are appended to dst (pass a reused slice to avoid allocating).
// It never retains buf.
func DecodeTxnRequest(buf []byte, dst []TxnOp) (Request, []TxnOp, error) {
	if len(buf) < reqPayloadLen {
		return Request{}, dst, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(buf))
	}
	r := Request{
		Op:    Op(buf[0] &^ TraceBit),
		ID:    binary.BigEndian.Uint32(buf[1:5]),
		Key:   binary.BigEndian.Uint64(buf[5:13]),
		Arg:   binary.BigEndian.Uint64(buf[13:21]),
		Trace: buf[0]&TraceBit != 0,
	}
	if r.Op != OpTxn {
		return Request{}, dst, fmt.Errorf("%w: %d", ErrBadOp, r.Op)
	}
	n := int(r.Key)
	if r.Key == 0 || r.Key > MaxTxnOps || len(buf) != reqPayloadLen+n*txnOpLen {
		return Request{}, dst, fmt.Errorf("%w: txn with %d ops in %d bytes", ErrShortFrame, r.Key, len(buf))
	}
	for i := 0; i < n; i++ {
		b := buf[reqPayloadLen+i*txnOpLen:]
		op := TxnOp{
			Op:  Op(b[0]),
			Key: binary.BigEndian.Uint64(b[1:9]),
			Arg: binary.BigEndian.Uint64(b[9:17]),
		}
		if op.Op < OpGet || op.Op > OpDel {
			return Request{}, dst, fmt.Errorf("%w: txn sub-op %d", ErrBadOp, op.Op)
		}
		dst = append(dst, op)
	}
	return r, dst, nil
}

// AppendTxnRequest appends an OpTxn request's full frame (length prefix +
// header + sub-ops) to dst. The header's Key field is overwritten with
// len(ops); Arg is zeroed.
func AppendTxnRequest(dst []byte, r Request, ops []TxnOp) []byte {
	payload := reqPayloadLen + len(ops)*txnOpLen
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(payload))
	dst = append(dst, b[:4]...)
	hdr := byte(OpTxn)
	if r.Trace {
		hdr |= TraceBit
	}
	dst = append(dst, hdr)
	binary.BigEndian.PutUint32(b[0:4], r.ID)
	dst = append(dst, b[:4]...)
	binary.BigEndian.PutUint64(b[:], uint64(len(ops)))
	dst = append(dst, b[:]...)
	binary.BigEndian.PutUint64(b[:], 0)
	dst = append(dst, b[:]...)
	for _, op := range ops {
		dst = append(dst, byte(op.Op))
		binary.BigEndian.PutUint64(b[:], op.Key)
		dst = append(dst, b[:]...)
		binary.BigEndian.PutUint64(b[:], op.Arg)
		dst = append(dst, b[:]...)
	}
	return dst
}

// DecodeResponse decodes one response payload.
func DecodeResponse(buf []byte) (Response, error) {
	if len(buf) != respPayloadLen {
		return Response{}, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(buf))
	}
	return Response{
		ID:     binary.BigEndian.Uint32(buf[0:4]),
		Status: Status(buf[4]),
		Value:  binary.BigEndian.Uint64(buf[5:13]),
	}, nil
}

// AppendResponse appends r's full frame (length prefix + payload) to dst.
func AppendResponse(dst []byte, r Response) []byte {
	var b [RespFrameLen]byte
	binary.BigEndian.PutUint32(b[0:4], respPayloadLen)
	binary.BigEndian.PutUint32(b[4:8], r.ID)
	b[8] = byte(r.Status)
	binary.BigEndian.PutUint64(b[9:17], r.Value)
	return append(dst, b[:]...)
}
