package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"gstm"
)

// waitParked polls the shards' telemetry until at least n transactions
// have parked (tx.Retry put a watch to sleep on its read set).
func waitParked(t *testing.T, s *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var parked uint64
		for sh := 0; sh < s.Shards(); sh++ {
			parked += s.Router().System(sh).Telemetry().Snapshot().Parked
		}
		if parked >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no watch parked within deadline (parked=%d, want >= %d)", parked, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchWakesOnCommit is the acceptance scenario: a blocked watch must
// wake on a concurrent commit without polling. One client parks an OpWatch
// on an absent key; a second client's Put must wake it with the new value,
// and the park must be visible in telemetry (gstm_tx_parked_total's
// counter) and in the span timeline (a "park" event with cause "wakeup").
func TestWatchWakesOnCommit(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Unguided: true, TraceSampleEvery: 1})

	watcher, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	watcher.SetTrace(true) // retain the watch span in the forced ring

	type watchResult struct {
		v   uint64
		err error
	}
	got := make(chan watchResult, 1)
	go func() {
		v, err := watcher.Watch(42, 0)
		got <- watchResult{v, err}
	}()

	waitParked(t, s, 1)
	select {
	case r := <-got:
		t.Fatalf("watch returned before any commit: %+v", r)
	default:
	}

	writer, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	if _, err := writer.Put(42, 7); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("watch: %v", r.err)
		}
		if r.v != 7 {
			t.Fatalf("watch woke with value %d, want 7", r.v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not wake on the writer's commit")
	}

	// The park must be attributable: the forced ring retains the watch
	// span, whose timeline carries a park event resolved by a wakeup.
	snap := s.Observatory().Snapshot()
	found := false
	for _, sp := range append(snap.Forced, snap.Slowest...) {
		for _, ev := range sp.Events {
			if ev.Phase == "park" && ev.Cause == "wakeup" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no span with a park/wakeup event in /debug/trace retention")
	}
}

// TestWatchValueChange: a watch on a present key must not return until the
// value differs from the client's last-seen one.
func TestWatchValueChange(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Unguided: true})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put(5, 10); err != nil {
		t.Fatal(err)
	}

	watcher, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	got := make(chan uint64, 1)
	go func() {
		v, err := watcher.Watch(5, 10) // last-seen 10: must block until it changes
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	waitParked(t, s, 1)
	if _, err := cl.Add(5, 1); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 11 {
			t.Fatalf("watch woke with %d, want 11", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not wake on value change")
	}
}

// TestWaitKeyImmediate: OpWaitKey on a present key answers without
// parking.
func TestWaitKeyImmediate(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Unguided: true})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put(9, 99); err != nil {
		t.Fatal(err)
	}
	v, err := cl.WaitKey(9)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("WaitKey = %d, want 99", v)
	}
}

// TestWatchDrainAnswersShutdown: graceful drain must resolve a parked
// watch with StatusShutdown instead of waiting for a commit that will
// never come, and refuse a newly arriving watch with StatusWouldBlock.
func TestWatchDrainAnswersShutdown(t *testing.T) {
	s := New(Config{Workers: 2, Unguided: true})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	watcher, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := watcher.WaitKey(1234) // never created: parks until drain
		errc <- err
	}()
	waitParked(t, s, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain the parked watch: %v", err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("parked watch resolved OK through a drain; want StatusShutdown error")
		}
		if errors.Is(err, gstm.ErrWouldBlock) {
			t.Fatalf("parked watch got would-block; want shutdown status: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked watch unresolved after shutdown")
	}
}

// TestWatchDrainAfterConnClose: a client that walks away mid-park must
// not wedge the drain — the parked goroutine still holds an inflight
// slot, and Shutdown's watch cancellation has to release it even though
// the response write will hit a dead connection.
func TestWatchDrainAfterConnClose(t *testing.T) {
	s := New(Config{Workers: 2, Unguided: true})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	watcher, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = watcher.WaitKey(777) }()
	waitParked(t, s, 1)
	watcher.Close()
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain hung after client conn close: %v", err)
	}
}

// TestLoadgenSubscribers drives the long-poll subscriber scenario: watch
// connections riding alongside an add-heavy load on a tiny hot keyspace
// must observe real change notifications.
func TestLoadgenSubscribers(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Unguided: true})
	st, err := RunLoad(LoadConfig{
		Addr:       s.Addr().String(),
		Conns:      4,
		OpsPerConn: 500,
		Keys:       4, // every subscriber's key is hot
		Skew:       1,
		GetPct:     0, PutPct: 1, DelPct: 0, // 99% Add: nearly every op changes a value
		Subscribers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops == 0 {
		t.Fatal("no load ops completed")
	}
	if st.SubWakeups == 0 {
		t.Fatal("subscribers saw no wakeups under an all-Add load on 4 keys")
	}
	t.Logf("load ops=%d subscriber wakeups=%d", st.Ops, st.SubWakeups)
}
