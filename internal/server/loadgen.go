package server

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"gstm/internal/shard"
	"gstm/internal/stats"
	"gstm/internal/xrand"
)

// LoadConfig parameterizes one load-generation run against a server.
type LoadConfig struct {
	Addr     string
	Conns    int           // concurrent connections (one goroutine each)
	Duration time.Duration // fixed run length (timed mode; ignored when OpsPerConn > 0)
	// OpsPerConn switches to fixed-work mode: every connection performs
	// exactly this many operations and the run measures completion time.
	// Fixed work is how the paper measures execution variance — identical
	// input, repeated runs, dispersion of execution time.
	OpsPerConn int
	Keys       int     // key-space size
	Skew       float64 // >= 1; key = Keys * u^Skew, so larger = hotter head (1 = uniform)
	// Mix in percent; must sum to 100. The remainder after Get+Put+Del is
	// Add (the default workload is add-heavy on a skewed key space: the
	// contended read-modify-write pattern guidance pays off on).
	GetPct, PutPct, DelPct int
	// TransferPct diverts that percent of issued operations into two-key
	// transfers: each is one OpTxn atomically moving 1 from one skew-drawn
	// key to another (usually crossing shards), exercising the cross-shard
	// commit protocol. Transfers are zero-sum, so a run whose only
	// mutations are transfers conserves the keyspace's total balance (see
	// VerifyBalance). The remaining (100-TransferPct)% follow the
	// Get/Put/Del/Add mix.
	TransferPct int
	Seed        uint64
	// Window > 1 switches a connection from synchronous request/response
	// to pipelining: up to Window requests outstanding per connection.
	// Pipelining takes the network round-trip off the critical path, so
	// throughput measures the server's STM, not the wire — it is how the
	// shard bench saturates the commit path. Per-op latency quantiles are
	// not recorded in this mode (a frame's wait time measures queue depth,
	// not service time).
	Window int
	// Shards, when > 0, makes the run attribute each issued operation to
	// its home shard (the router's hash) and fill RunStats.ShardOps /
	// ShardSpreadPct — the client-side view of keyspace balance.
	Shards int
	// Trace sets the protocol trace-request bit on every issued operation,
	// forcing the server's variance observatory to retain a span for each
	// (the /debug/trace "forced" ring) regardless of its sampling rate.
	Trace bool
	// Subscribers adds that many long-poll connections alongside the load:
	// each picks one key from the skewed distribution and chains OpWatch
	// requests on it (last-seen value as the argument), so every response
	// is a real change notification delivered by a parked transaction
	// waking — the pub/sub pattern the blocking STM exists for. Their
	// wakeup counts land in RunStats.SubWakeups; they issue no ops of
	// their own and stop when the load connections finish.
	Subscribers int
}

func (cfg LoadConfig) normalize() LoadConfig {
	if cfg.Conns <= 0 {
		cfg.Conns = 16
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 128
	}
	if cfg.Skew < 1 {
		cfg.Skew = 5
	}
	if cfg.GetPct+cfg.PutPct+cfg.DelPct == 0 {
		cfg.GetPct, cfg.PutPct, cfg.DelPct = 10, 5, 5 // remainder 80% Add
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xC0FFEE
	}
	return cfg
}

// RunStats is the outcome of one fixed-duration load run. Commits,
// Aborts and AbortRatio are filled by BenchModes from server-side counter
// deltas around the run; plain RunLoad leaves them zero.
type RunStats struct {
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
	DurationS  float64 `json:"duration_s"`
	Throughput float64 `json:"ops_per_s"`
	P50us      float64 `json:"p50_us"`
	P95us      float64 `json:"p95_us"`
	P99us      float64 `json:"p99_us"`
	Commits    uint64  `json:"commits,omitempty"`
	Aborts     uint64  `json:"aborts,omitempty"`
	AbortRatio float64 `json:"abort_ratio,omitempty"`
	// ConnSpreadPct is the relative dispersion of per-connection
	// completion times within this run (100 * std/mean), filled only in
	// fixed-work mode. Machine speed is common to all connections in a
	// run, so it divides out — this is the serving analogue of the
	// paper's per-thread execution-time dispersion.
	ConnSpreadPct float64 `json:"conn_spread_pct,omitempty"`
	// ShardOps counts issued operations by home shard and ShardSpreadPct
	// is their relative dispersion (100 * std/mean) — both filled only
	// when LoadConfig.Shards > 0.
	ShardOps       []uint64 `json:"shard_ops,omitempty"`
	ShardSpreadPct float64  `json:"shard_spread_pct,omitempty"`
	// SubWakeups counts change notifications delivered to the long-poll
	// subscriber connections (LoadConfig.Subscribers): each is one parked
	// watch transaction woken by a commit on its key.
	SubWakeups uint64 `json:"sub_wakeups,omitempty"`
	// Transfers counts the OpTxn two-key transfers issued
	// (LoadConfig.TransferPct); each is one op in Ops.
	Transfers uint64 `json:"transfers,omitempty"`
}

// RunLoad drives one run — fixed-work when OpsPerConn > 0, otherwise
// fixed-duration — with Conns connections issuing the configured mix over
// the skewed key space, recording per-op latency.
func RunLoad(cfg LoadConfig) (RunStats, error) {
	cfg = cfg.normalize()

	outs := make([]connOut, cfg.Conns)
	subOuts := make([]connOut, cfg.Subscribers)
	start := make(chan struct{})
	done := make(chan struct{})
	var wg, subWG sync.WaitGroup
	for i := 0; i < cfg.Subscribers; i++ {
		subWG.Add(1)
		go func(i int) {
			defer subWG.Done()
			subConn(cfg, i, &subOuts[i], start, done)
		}(i)
	}
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if cfg.Window > 1 {
				pipeConn(cfg, i, &outs[i], start)
			} else {
				syncConn(cfg, i, &outs[i], start)
			}
		}(i)
	}
	close(start)
	t0 := time.Now()
	wg.Wait()
	elapsed := time.Since(t0)
	close(done)
	subWG.Wait()

	var res RunStats
	var all, took []float64
	if cfg.Shards > 0 {
		res.ShardOps = make([]uint64, cfg.Shards)
	}
	for i := range outs {
		if outs[i].err != nil {
			return res, fmt.Errorf("conn %d: %w", i, outs[i].err)
		}
		res.Ops += outs[i].ops
		res.Errors += outs[i].errs
		res.Transfers += outs[i].transfers
		all = append(all, outs[i].lats...)
		took = append(took, outs[i].took)
		for s, n := range outs[i].shardOps {
			res.ShardOps[s] += n
		}
	}
	for i := range subOuts {
		if subOuts[i].err != nil {
			return res, fmt.Errorf("subscriber %d: %w", i, subOuts[i].err)
		}
		res.SubWakeups += subOuts[i].ops
	}
	res.DurationS = elapsed.Seconds()
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	if cfg.OpsPerConn > 0 {
		if m := stats.Mean(took); m > 0 {
			res.ConnSpreadPct = 100 * stats.CoefficientOfVariation(took)
		}
	}
	if len(res.ShardOps) > 0 {
		per := make([]float64, len(res.ShardOps))
		for s, n := range res.ShardOps {
			per[s] = float64(n)
		}
		res.ShardSpreadPct = 100 * stats.CoefficientOfVariation(per)
	}
	sort.Float64s(all)
	res.P50us = stats.Percentile(all, 50)
	res.P95us = stats.Percentile(all, 95)
	res.P99us = stats.Percentile(all, 99)
	return res, nil
}

// connOut is one connection's contribution to a run.
type connOut struct {
	ops, errs uint64
	transfers uint64
	lats      []float64     // µs, synchronous mode only
	took      float64       // seconds, fixed-work mode
	shardOps  []uint64      // ops by home shard, when LoadConfig.Shards > 0
	routing   *shard.Router // routing-only, lazily built with shardOps
	err       error
}

func (o *connOut) noteShard(cfg LoadConfig, key uint64) {
	if cfg.Shards > 0 {
		if o.shardOps == nil {
			o.shardOps = make([]uint64, cfg.Shards)
			o.routing = shard.NewRouting(cfg.Shards)
		}
		o.shardOps[o.routing.HomeOf(key)]++
	}
}

// syncConn is the classic one-outstanding-request connection loop.
func syncConn(cfg LoadConfig, i int, out *connOut, start <-chan struct{}) {
	cl, err := Dial(cfg.Addr)
	if err != nil {
		out.err = err
		return
	}
	defer cl.Close()
	cl.SetTrace(cfg.Trace)
	r := xrand.NewThread(cfg.Seed, i)
	out.lats = make([]float64, 0, 1<<14)
	txn := make([]TxnOp, 2)
	<-start
	begin := time.Now()
	deadline := begin.Add(cfg.Duration)
	for {
		if cfg.OpsPerConn > 0 {
			if out.ops >= uint64(cfg.OpsPerConn) {
				break
			}
		} else if !time.Now().Before(deadline) {
			break
		}
		var st Status
		var err error
		t0 := time.Now()
		if cfg.TransferPct > 0 && r.Intn(100) < cfg.TransferPct {
			from, to := transferKeys(r, cfg)
			out.noteShard(cfg, from)
			out.noteShard(cfg, to)
			out.transfers++
			txn[0] = TxnOp{Op: OpAdd, Key: from, Arg: ^uint64(0)} // -1
			txn[1] = TxnOp{Op: OpAdd, Key: to, Arg: 1}
			st, _, err = cl.Txn(txn)
		} else {
			op, key, arg := nextOp(r, cfg)
			out.noteShard(cfg, key)
			st, _, err = cl.Do(op, key, arg)
		}
		if err != nil {
			out.err = err
			return
		}
		out.lats = append(out.lats, float64(time.Since(t0).Nanoseconds())/1e3)
		out.ops++
		if st != StatusOK && st != StatusNotFound {
			out.errs++
		}
	}
	out.took = time.Since(begin).Seconds()
}

// pipeConn keeps up to cfg.Window requests in flight on one connection:
// fill the window with encoded frames in one write, block for one
// response, then opportunistically drain whatever else has arrived. In
// timed mode it stops issuing at the deadline and drains the window
// before returning, so every counted op has a received response.
func pipeConn(cfg LoadConfig, i int, out *connOut, start <-chan struct{}) {
	nc, err := net.Dial("tcp", cfg.Addr)
	if err != nil {
		out.err = err
		return
	}
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 2*cfg.Window*RespFrameLen)
	r := xrand.NewThread(cfg.Seed, i)
	var buf []byte
	txn := make([]TxnOp, 2)
	frame := make([]byte, RespFrameLen)
	sent, recvd := 0, 0
	<-start
	begin := time.Now()
	deadline := begin.Add(cfg.Duration)
	recvOne := func() bool {
		if _, err := io.ReadFull(br, frame); err != nil {
			out.err = err
			return false
		}
		if resp, err := DecodeResponse(frame[4:]); err != nil {
			out.err = err
			return false
		} else if resp.Status != StatusOK && resp.Status != StatusNotFound {
			out.errs++
		}
		recvd++
		return true
	}
	for {
		issuing := true
		if cfg.OpsPerConn > 0 {
			if recvd >= cfg.OpsPerConn {
				break
			}
			issuing = sent < cfg.OpsPerConn
		} else if !time.Now().Before(deadline) {
			if sent == recvd {
				break
			}
			issuing = false
		}
		buf = buf[:0]
		for issuing && sent-recvd < cfg.Window {
			sent++
			if cfg.TransferPct > 0 && r.Intn(100) < cfg.TransferPct {
				from, to := transferKeys(r, cfg)
				out.noteShard(cfg, from)
				out.noteShard(cfg, to)
				out.transfers++
				txn[0] = TxnOp{Op: OpAdd, Key: from, Arg: ^uint64(0)} // -1
				txn[1] = TxnOp{Op: OpAdd, Key: to, Arg: 1}
				buf = AppendTxnRequest(buf, Request{ID: uint32(sent), Trace: cfg.Trace}, txn)
				continue
			}
			op, key, arg := nextOp(r, cfg)
			out.noteShard(cfg, key)
			buf = AppendRequest(buf, Request{Op: op, ID: uint32(sent), Key: key, Arg: arg, Trace: cfg.Trace})
		}
		if len(buf) > 0 {
			if _, err := nc.Write(buf); err != nil {
				out.err = err
				return
			}
		}
		if !recvOne() {
			return
		}
		for br.Buffered() >= RespFrameLen && recvd < sent {
			if !recvOne() {
				return
			}
		}
	}
	out.ops = uint64(recvd)
	out.took = time.Since(begin).Seconds()
}

// subConn chains long-poll watches on one skew-drawn key until the load
// connections finish. Each completed Watch is one real change delivery:
// the server-side transaction parked on the key's cells and a writer's
// commit woke it. The final park is broken by closing the connection —
// the server-side watch stays parked until a later commit or shutdown
// resolves it, which is the long-poll contract.
func subConn(cfg LoadConfig, i int, out *connOut, start, done <-chan struct{}) {
	cl, err := Dial(cfg.Addr)
	if err != nil {
		out.err = err
		return
	}
	defer cl.Close()
	cl.SetTrace(cfg.Trace)
	go func() { <-done; cl.Close() }() // unblock a parked watch at run end
	r := xrand.NewThread(cfg.Seed, 1<<20+i)
	key := uint64(float64(cfg.Keys-1) * math.Pow(r.Float64(), cfg.Skew))
	<-start
	var last uint64
	for {
		select {
		case <-done:
			return
		default:
		}
		v, err := cl.Watch(key, last)
		if err != nil {
			// A wire error after done is the expected close; anything else
			// (including a would-block refusal) just ends this subscriber —
			// the load run's outcome should not hinge on watch timing.
			return
		}
		last = v
		out.ops++
	}
}

// transferKeys draws a (from, to) pair of distinct skewed keys.
func transferKeys(r *xrand.Rand, cfg LoadConfig) (uint64, uint64) {
	from := skewKey(r, cfg)
	to := skewKey(r, cfg)
	if to == from {
		to = (from + 1) % uint64(cfg.Keys)
	}
	return from, to
}

// nextOp draws one operation from the configured mix and key skew.
func nextOp(r *xrand.Rand, cfg LoadConfig) (Op, uint64, uint64) {
	key := skewKey(r, cfg)
	p := r.Intn(100)
	switch {
	case p < cfg.GetPct:
		return OpGet, key, 0
	case p < cfg.GetPct+cfg.PutPct:
		return OpPut, key, r.Uint64() >> 1
	case p < cfg.GetPct+cfg.PutPct+cfg.DelPct:
		return OpDel, key, 0
	default:
		return OpAdd, key, 1
	}
}

// VerifyBalance sums the signed values of keys [0, keys) on the server at
// addr. A keyspace whose only mutations were zero-sum transfers
// (TransferPct load with a Get-only residual mix) must total zero — the
// client-visible conservation check for cross-shard atomicity.
func VerifyBalance(addr string, keys int) (int64, error) {
	cl, err := Dial(addr)
	if err != nil {
		return 0, err
	}
	defer cl.Close()
	var sum int64
	for k := 0; k < keys; k++ {
		v, ok, err := cl.Get(uint64(k))
		if err != nil {
			return sum, err
		}
		if ok {
			sum += int64(v)
		}
	}
	return sum, nil
}

// ModeReport aggregates R repeated runs in one serving mode. Variance is
// reported as the coefficient of variation (σ/µ, in percent) of per-run
// throughput and p95 latency — the paper's run-to-run variance metric
// applied to service-level numbers.
type ModeReport struct {
	Mode            string     `json:"mode"`
	Runs            []RunStats `json:"runs"`
	ThroughputMean  float64    `json:"throughput_mean_ops_per_s"`
	ThroughputCVPct float64    `json:"throughput_cv_pct"`
	P50MeanUs       float64    `json:"p50_mean_us"`
	P95MeanUs       float64    `json:"p95_mean_us"`
	P99MeanUs       float64    `json:"p99_mean_us"`
	P95CVPct        float64    `json:"p95_cv_pct"`
	// AbortRatioMean and AbortRatioCVPct describe the per-run abort ratio
	// (aborts / commits) and its run-to-run coefficient of variation.
	AbortRatioMean  float64 `json:"abort_ratio_mean"`
	AbortRatioCVPct float64 `json:"abort_ratio_cv_pct"`
	// ConnSpreadMeanPct averages the per-run normalized spread of
	// per-connection completion times (fixed-work mode only). It is the
	// serving analogue of the paper's per-thread execution-time dispersion
	// (Figures 4/6): every connection gets identical work, and machine
	// speed is common within a run so it divides out — which makes this
	// the headline variance metric on noisy shared hardware.
	ConnSpreadMeanPct float64 `json:"conn_spread_mean_pct,omitempty"`
	// RunTimeCVPct is the run-to-run CV of fixed-work completion time
	// (fixed-work mode only).
	RunTimeCVPct float64 `json:"run_time_cv_pct,omitempty"`
	Commits      uint64  `json:"commits"`
	Aborts       uint64  `json:"aborts"`
	Batches      uint64  `json:"batches"`
	BatchedOps   uint64  `json:"batched_ops"`
}

func summarize(mode string, runs []RunStats) ModeReport {
	rep := ModeReport{Mode: mode, Runs: runs}
	var tput, p50, p95, p99, ratio, spread, rtime []float64
	for _, r := range runs {
		tput = append(tput, r.Throughput)
		p50 = append(p50, r.P50us)
		p95 = append(p95, r.P95us)
		p99 = append(p99, r.P99us)
		ratio = append(ratio, r.AbortRatio)
		spread = append(spread, r.ConnSpreadPct)
		rtime = append(rtime, r.DurationS)
	}
	rep.ThroughputMean = stats.Mean(tput)
	rep.ThroughputCVPct = 100 * stats.CoefficientOfVariation(tput)
	rep.P50MeanUs = stats.Mean(p50)
	rep.P95MeanUs = stats.Mean(p95)
	rep.P99MeanUs = stats.Mean(p99)
	rep.P95CVPct = 100 * stats.CoefficientOfVariation(p95)
	rep.AbortRatioMean = stats.Mean(ratio)
	rep.AbortRatioCVPct = 100 * stats.CoefficientOfVariation(ratio)
	if rep.ConnSpreadMeanPct = stats.Mean(spread); rep.ConnSpreadMeanPct > 0 {
		rep.RunTimeCVPct = 100 * stats.CoefficientOfVariation(rtime)
	}
	return rep
}

// BenchConfig parameterizes BenchModes.
type BenchConfig struct {
	Load LoadConfig
	Runs int // fixed-duration runs per mode (R)
	// GuideTimeout bounds how long the warmup load may take to flip the
	// server into guided (or rejected) mode.
	GuideTimeout time.Duration
}

// BenchReport is the full guided-vs-unguided serving comparison, written
// to BENCH_server.json by cmd/gstm-loadgen.
type BenchReport struct {
	Description string     `json:"description"`
	Config      LoadConfig `json:"config"`
	RunsPerMode int        `json:"runs_per_mode"`
	Unguided    ModeReport `json:"unguided"`
	Guided      ModeReport `json:"guided"`
	GuidedMode  string     `json:"guided_mode"` // guided | rejected | degraded
	// VarianceReduced reports the acceptance condition: guided execution
	// variance <= unguided. In fixed-work mode the variance metric is the
	// per-connection completion-time spread (ConnSpreadMeanPct); in timed
	// mode it is the run-to-run throughput CV.
	VarianceReduced bool `json:"variance_reduced"`
}

// BenchModes runs the full comparison against a live server: warmup load
// drives the profile→train→guide flip, then R pairs of runs alternate
// CtlModeUnguided and CtlModeGuided so both modes sample the same
// machine-noise window. One control connection handles mode changes and
// counter deltas.
func BenchModes(cfg BenchConfig) (BenchReport, error) {
	cfg.Load = cfg.Load.normalize()
	if cfg.Runs <= 0 {
		cfg.Runs = 5
	}
	if cfg.GuideTimeout <= 0 {
		cfg.GuideTimeout = 60 * time.Second
	}
	rep := BenchReport{
		Description: "gstm-loadgen guided vs unguided serving comparison: R repeated runs per mode, alternating modes run by run so both sample the same machine-noise window. Fixed-work runs measure execution variance as the per-connection completion-time spread (the paper's per-thread dispersion); timed runs fall back to run-to-run throughput CV.",
		Config:      cfg.Load,
		RunsPerMode: cfg.Runs,
	}

	ctrl, err := Dial(cfg.Load.Addr)
	if err != nil {
		return rep, fmt.Errorf("control connection: %w", err)
	}
	defer ctrl.Close()

	counters := func() (c, a, b, o uint64, err error) {
		if c, err = ctrl.Info(InfoCommits); err != nil {
			return
		}
		if a, err = ctrl.Info(InfoAborts); err != nil {
			return
		}
		if b, err = ctrl.Info(InfoBatches); err != nil {
			return
		}
		o, err = ctrl.Info(InfoBatchedOps)
		return
	}

	// Phase 1: drive warmup load through the lifecycle until a model is
	// trained and installed (or rejected).
	if err := ctrl.Ctl(CtlModeAuto, 0); err != nil {
		return rep, err
	}
	deadline := time.Now().Add(cfg.GuideTimeout)
	for {
		warm := cfg.Load
		warm.Duration = 500 * time.Millisecond
		if _, err := RunLoad(warm); err != nil {
			return rep, fmt.Errorf("warmup: %w", err)
		}
		mode, err := ctrl.Info(InfoMode)
		if err != nil {
			return rep, err
		}
		if m := ServingMode(mode); m == ModeGuided || m == ModeRejected || m == ModeDegraded {
			rep.GuidedMode = m.String()
			break
		}
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("server did not leave profiling/training within %v", cfg.GuideTimeout)
		}
	}

	// Phase 2: measure, alternating modes run by run. Pairing each
	// unguided run with a guided run taken moments later means both mode
	// samples see the same machine-noise window, so the CV comparison
	// reflects the system, not drift in the environment. CtlModeGuided
	// re-installs the already-trained model, so no re-profiling happens
	// mid-measurement. When the model was rejected the "guided" side
	// still serves unguided — the report labels it honestly.
	guidedInstallable := rep.GuidedMode == ModeGuided.String() || rep.GuidedMode == ModeDegraded.String()
	if err := ctrl.Ctl(CtlReset, 0); err != nil {
		return rep, err
	}
	measure := func(seedOff uint64) (RunStats, error) {
		c0, a0, _, _, err := counters()
		if err != nil {
			return RunStats{}, err
		}
		lc := cfg.Load
		lc.Seed = cfg.Load.Seed + seedOff // same seed every run: measure the system's variance, not the workload's
		st, err := RunLoad(lc)
		if err != nil {
			return RunStats{}, err
		}
		c1, a1, _, _, err := counters()
		if err != nil {
			return RunStats{}, err
		}
		st.Commits, st.Aborts = c1-c0, a1-a0
		if st.Commits > 0 {
			st.AbortRatio = float64(st.Aborts) / float64(st.Commits)
		}
		return st, nil
	}
	var unguidedRuns, guidedRuns []RunStats
	var ubat, uops, gbat, gops uint64
	for r := 0; r < cfg.Runs; r++ {
		if err := ctrl.Ctl(CtlModeUnguided, 0); err != nil {
			return rep, err
		}
		_, _, b0, o0, err := counters()
		if err != nil {
			return rep, err
		}
		st, err := measure(0)
		if err != nil {
			return rep, fmt.Errorf("unguided run %d: %w", r, err)
		}
		_, _, b1, o1, err := counters()
		if err != nil {
			return rep, err
		}
		ubat += b1 - b0
		uops += o1 - o0
		unguidedRuns = append(unguidedRuns, st)

		if guidedInstallable {
			if err := ctrl.Ctl(CtlModeGuided, 0); err != nil {
				return rep, err
			}
		}
		_, _, b0, o0, err = counters()
		if err != nil {
			return rep, err
		}
		st, err = measure(1)
		if err != nil {
			return rep, fmt.Errorf("%s run %d: %w", rep.GuidedMode, r, err)
		}
		_, _, b1, o1, err = counters()
		if err != nil {
			return rep, err
		}
		gbat += b1 - b0
		gops += o1 - o0
		guidedRuns = append(guidedRuns, st)
	}

	rep.Unguided = summarize("unguided", unguidedRuns)
	rep.Guided = summarize(rep.GuidedMode, guidedRuns)
	rep.Unguided.Batches, rep.Unguided.BatchedOps = ubat, uops
	rep.Guided.Batches, rep.Guided.BatchedOps = gbat, gops
	for _, r := range unguidedRuns {
		rep.Unguided.Commits += r.Commits
		rep.Unguided.Aborts += r.Aborts
	}
	for _, r := range guidedRuns {
		rep.Guided.Commits += r.Commits
		rep.Guided.Aborts += r.Aborts
	}
	if cfg.Load.OpsPerConn > 0 {
		rep.VarianceReduced = rep.Guided.ConnSpreadMeanPct <= rep.Unguided.ConnSpreadMeanPct
	} else {
		rep.VarianceReduced = rep.Guided.ThroughputCVPct <= rep.Unguided.ThroughputCVPct
	}
	return rep, nil
}
