package server

import (
	"errors"
	"time"

	"gstm"
	"gstm/internal/obs"
	"gstm/internal/shard"
	"gstm/internal/stmds"
	"gstm/internal/wal"
)

// Transaction sites: one static TM_BEGIN(ID) per operation kind, so the
// Thread State Automaton's (site, thread) states describe what the server
// actually does. A batch only ever coalesces operations of one kind, which
// keeps the site label exact (see DESIGN.md "Batching rules"). Sites are
// per shard: the same kind maps to the same site on every shard's
// automaton.
const (
	siteGet gstm.TxnID = iota
	sitePut
	siteAdd
	siteDel
	// siteScan is the WAL's consistent snapshot scan and recovery replay —
	// run on the dedicated scan thread (ThreadID Workers+1), outside the
	// WAL stager range, so its commits never touch a staging slot.
	siteScan
	// siteWatch is the blocking long-poll site (OpWatch/OpWaitKey), run on
	// the dedicated watch thread (ThreadID Workers+2) — any number of
	// watches may be parked on it concurrently (see watch.go).
	siteWatch
	// siteTxn is the multi-key transaction site (OpTxn), run on the
	// dedicated coordinator thread (ThreadID Workers) — inside the WAL
	// stager range, since a cross-shard transaction stages redo on every
	// participant shard's log (see coordinator.go).
	siteTxn
)

func site(op Op) gstm.TxnID {
	switch op {
	case OpGet:
		return siteGet
	case OpPut:
		return sitePut
	case OpAdd:
		return siteAdd
	default:
		return siteDel
	}
}

// task is one queued data operation awaiting a worker. enq/decNs carry the
// reader's span timestamps: when the task was queued (unix nanos) and how
// long the frame read + decode took, so the worker can reconstruct the
// request's decode and queue-wait phases without another clock read.
type task struct {
	req   Request
	c     *conn
	enq   int64
	decNs int64
}

// opResult is one operation's outcome, filled inside the batch
// transaction body (and therefore overwritten wholesale when the body
// re-runs after a conflict).
type opResult struct {
	status Status
	value  uint64
	delta  int64 // liveKeys adjustment, applied only after commit
}

// worker executes batches of operations as transactions on a fixed STM
// thread: worker w is gstm.ThreadID(w) on every shard it touches. A batch
// is scatter-gathered by home shard — one sub-transaction per shard, in
// ascending shard order — so a batch that happens to live on one shard
// runs exactly as the unsharded server ran it.
type worker struct {
	srv   *Server
	id    gstm.ThreadID
	queue chan task

	pending    task // holdover that closed the previous batch
	hasPending bool

	batch   []task
	results []opResult
	plan    *shard.Plan
	resp    []byte
	runOpts [1]gstm.TxOption // reused option slice (ReadOnly or MaxAttempts)

	// spans[sh] is the scratch span for shard sh's sub-transaction of the
	// current batch; spanOpts[sh] is the prebuilt option slice threading it
	// into that shard's Run call (slot 0 is refilled per batch with the
	// ReadOnly/MaxAttempts option). Reused every batch: the observatory
	// retains spans by value, so the record path never allocates.
	spans    []obs.Span
	spanOpts [][]gstm.TxOption

	// stg is the current shard sub-transaction's WAL redo staging; valid
	// only while logging is true (durable server, mutating batch).
	stg     wal.Staging
	logging bool
}

func newWorker(s *Server, id int) *worker {
	w := &worker{
		srv:     s,
		id:      gstm.ThreadID(id),
		queue:   make(chan task, s.cfg.QueueDepth),
		batch:   make([]task, 0, s.cfg.Batch),
		results: make([]opResult, s.cfg.Batch),
		plan:    s.router.NewPlan(),
		spans:   make([]obs.Span, s.cfg.Shards),
	}
	w.spanOpts = make([][]gstm.TxOption, s.cfg.Shards)
	for sh := range w.spanOpts {
		w.spanOpts[sh] = []gstm.TxOption{gstm.WithMaxAttempts(0), gstm.WithSpan(&w.spans[sh])}
	}
	return w
}

func (w *worker) loop() {
	for {
		if !w.fillBatch() {
			return
		}
		w.execBatch()
	}
}

// fillBatch blocks for the first operation (the holdover from the last
// round, if any), then greedily drains already-queued operations into the
// batch while they share the first one's kind and touch pairwise-disjoint
// keys. The first operation violating either rule is held over — never
// reordered past, so per-connection request order is preserved within a
// worker. Returns false when the server is stopping.
func (w *worker) fillBatch() bool {
	w.batch = w.batch[:0]
	if w.hasPending {
		w.batch = append(w.batch, w.pending)
		w.hasPending = false
	} else {
		select {
		case t := <-w.queue:
			w.batch = append(w.batch, t)
		case <-w.srv.stop:
			return false
		}
	}
	kind := w.batch[0].req.Op
	for len(w.batch) < w.srv.cfg.Batch {
		select {
		case t := <-w.queue:
			if t.req.Op != kind || w.batchHasKey(t.req.Key) {
				w.pending, w.hasPending = t, true
				return true
			}
			w.batch = append(w.batch, t)
		default:
			return true
		}
	}
	return true
}

func (w *worker) batchHasKey(k uint64) bool {
	for i := range w.batch {
		if w.batch[i].req.Key == k {
			return true
		}
	}
	return false
}

// execBatch scatter-gathers the batch by home shard, runs one transaction
// per touched shard, and writes every response. Operations against
// disjoint keys are independent, so folding a shard's sub-batch into one
// atomic block changes neither their results nor the store's final state
// versus running them back to back — it only spends one commit (and one
// Tseq slot) for up to Batch operations. Shards commit independently:
// a cross-shard batch is not atomic as a whole, which is fine for the
// same reason — its operations never share a key.
func (w *worker) execBatch() {
	s := w.srv
	kind := w.batch[0].req.Op
	w.plan.Build(len(w.batch), func(i int) uint64 { return w.batch[i].req.Key })
	if kind == OpGet {
		w.runOpts[0] = gstm.WithReadOnly()
	} else {
		w.runOpts[0] = gstm.WithMaxAttempts(s.cfg.MaxAttempts)
	}

	// Open one span per touched shard before running: the decode and
	// queue-wait phases are reconstructed from the first homed task's
	// timestamps, then the STM run appends gate/retry/commit events.
	deq := time.Now().UnixNano()
	for _, sh := range w.plan.Active() {
		idxs := w.plan.Group(sh)
		first := &w.batch[idxs[0]]
		forced := false
		for _, i := range idxs {
			if w.batch[i].req.Trace {
				forced = true
				break
			}
		}
		sp := &w.spans[sh]
		begin := first.enq - first.decNs
		sp.Start(first.req.ID, uint8(kind), uint8(sh), uint8(w.id), len(idxs), forced, begin)
		sp.Add(obs.PhaseDecode, obs.CauseNone, 0, begin, first.decNs)
		sp.Add(obs.PhaseQueue, obs.CauseNone, 0, first.enq, deq-first.enq)
		w.spanOpts[sh][0] = w.runOpts[0]
	}

	durable := s.wals != nil && kind != OpGet
	w.plan.Run(nil, w.id, site(kind), func(tx *gstm.Tx, sh int, idxs []int) error {
		w.logging = false
		if durable {
			// Fail fast on a dead log: committing state whose durability
			// can never be promised would make memory diverge from disk.
			if s.wals[sh].Failed() {
				return errWALUnavailable
			}
			// Stage inside the body so a retry starts a fresh record; the
			// commit event stamps the staged ops with this commit's wv.
			w.stg = s.wals[sh].Stage(int(w.id), uint16(site(kind)))
			w.logging = true
		}
		st := s.stores[sh]
		for _, i := range idxs {
			w.results[i] = w.applyOp(tx, st, w.batch[i].req)
		}
		return nil
	}, shard.WithShardOptions(func(sh int) []gstm.TxOption { return w.spanOpts[sh] }))

	var it *ackItem
	if durable {
		it = s.getAckItem(len(w.batch))
		it.worker = int(w.id)
	}
	for _, sh := range w.plan.Active() {
		idxs := w.plan.Group(sh)
		err := w.plan.Err(sh)
		if durable {
			for _, i := range idxs {
				it.shardOf[i] = int32(sh)
			}
		}
		if err != nil && durable {
			// The failed attempt may have staged ops; drop them before the
			// next transaction on this shard can inherit them.
			s.wals[sh].Abandon(int(w.id))
		}
		switch {
		case err == nil:
			if durable {
				// Don't block for the flush here: capture the record seq and
				// let the acker withhold the responses until it is durable
				// per the mode — written (relaxed) or fsynced (strict) —
				// while this worker moves on to its next batch. The acker
				// also does this group's accounting, post-ack, and stamps
				// the span's WAL-ack phase (the span rides in the wait).
				seq, werr := s.wals[sh].ThreadSeq(int(w.id))
				if werr != nil {
					for _, i := range idxs {
						w.results[i] = opResult{status: StatusUnavailable}
					}
					s.router.System(sh).Telemetry().WALRefused(uint64(w.id))
					w.finishSpan(sh, obs.CauseWALUnavailable)
					continue
				}
				var delta int64
				for _, i := range idxs {
					delta += w.results[i].delta
				}
				it.waits = append(it.waits, ackWait{sh: sh, seq: seq, span: w.spans[sh], spanned: true, nops: len(idxs), delta: delta})
				continue
			}
			var delta int64
			for _, i := range idxs {
				delta += w.results[i].delta
			}
			if delta != 0 {
				s.liveKeys.Add(delta)
			}
			s.batches.Add(1)
			s.batchedOps.Add(uint64(len(idxs)))
			s.lcs[sh].noteOps(len(idxs))
			w.finishSpan(sh, obs.CauseNone)
		case errors.Is(err, errWALUnavailable) || errors.Is(err, wal.ErrFailed):
			for _, i := range idxs {
				w.results[i] = opResult{status: StatusUnavailable}
			}
			s.router.System(sh).Telemetry().WALRefused(uint64(w.id))
			w.finishSpan(sh, obs.CauseWALUnavailable)
		case errors.Is(err, gstm.ErrRetryBudgetExhausted):
			for _, i := range idxs {
				w.results[i] = opResult{status: StatusBudget}
			}
			w.finishSpan(sh, obs.CauseRetryBudget)
		case errors.Is(err, gstm.ErrCanceled):
			for _, i := range idxs {
				w.results[i] = opResult{status: StatusCanceled}
			}
			w.finishSpan(sh, obs.CauseCanceled)
		default:
			for _, i := range idxs {
				w.results[i] = opResult{status: StatusBadRequest}
			}
			// Not in the abort taxonomy (a body error, not an STM outcome);
			// spurious is the closest "not a modeled conflict" label.
			w.finishSpan(sh, obs.CauseSpurious)
		}
	}

	if durable {
		// Hand the batch to the acker (copies: these slices are reused by
		// the next batch); it writes the responses and releases inflight.
		it.tasks = append(it.tasks[:0], w.batch...)
		it.results = append(it.results[:0], w.results[:len(w.batch)]...)
		s.acks <- it
		return
	}

	// Write responses, coalescing consecutive same-connection frames into
	// one buffer (and one syscall) each.
	i := 0
	for i < len(w.batch) {
		c := w.batch[i].c
		w.resp = w.resp[:0]
		j := i
		for j < len(w.batch) && w.batch[j].c == c {
			w.resp = AppendResponse(w.resp, Response{
				ID:     w.batch[j].req.ID,
				Status: w.results[j].status,
				Value:  w.results[j].value,
			})
			j++
		}
		c.writeFrames(w.resp)
		i = j
	}
	for range w.batch {
		s.inflight.Done()
	}
}

// applyOp performs one operation inside shard st's sub-transaction,
// staging each mutation's redo image for the WAL when logging is on.
func (w *worker) applyOp(tx *gstm.Tx, st *stmds.HashTable[uint64], req Request) opResult {
	k := int64(req.Key)
	switch req.Op {
	case OpGet:
		v, ok := st.Get(tx, k)
		if !ok {
			return opResult{status: StatusNotFound}
		}
		return opResult{value: v}
	case OpPut:
		if st.Set(tx, k, req.Arg) {
			w.stagePut(req.Key, req.Arg)
			return opResult{value: 1}
		}
		st.InsertNoCount(tx, k, req.Arg)
		w.stagePut(req.Key, req.Arg)
		return opResult{value: 0, delta: 1}
	case OpAdd:
		if v, ok := st.Get(tx, k); ok {
			nv := uint64(int64(v) + int64(req.Arg))
			st.Set(tx, k, nv)
			w.stagePut(req.Key, nv)
			return opResult{value: nv}
		}
		st.InsertNoCount(tx, k, req.Arg)
		w.stagePut(req.Key, req.Arg)
		return opResult{value: req.Arg, delta: 1}
	default: // OpDel
		if !st.RemoveNoCount(tx, k) {
			return opResult{status: StatusNotFound}
		}
		if w.logging {
			w.stg.Del(req.Key)
		}
		return opResult{delta: -1}
	}
}

func (w *worker) stagePut(key, val uint64) {
	if w.logging {
		w.stg.Put(key, val)
	}
}

// finishSpan closes shard sh's scratch span with the sub-transaction's
// terminal cause and hands it to the observatory (which copies it out).
func (w *worker) finishSpan(sh int, cause obs.Cause) {
	sp := &w.spans[sh]
	sp.Finish(cause, time.Now().UnixNano())
	w.srv.obs.Collect(int(w.id), sp)
}
