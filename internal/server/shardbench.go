package server

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"gstm/internal/stats"
)

// ShardWorkload names one operation mix for the shard bench. Percentages
// follow LoadConfig: the remainder after Get+Put+Del is Add.
type ShardWorkload struct {
	Name                   string `json:"name"`
	GetPct, PutPct, DelPct int
}

// ShardBenchConfig parameterizes BenchShards. The defaults are the tuned
// operating point for the single-core CI box: pipelined connections deep
// enough to saturate the commit path, batches wide enough that an
// unsharded System thrashes on its own footprint, and a uniform keyspace
// sized so a 4-shard split lands at the PR 4 guided abort-ratio baseline.
// Uniform keys matter for the per-shard numbers: a skewed head hashes its
// hot keys unevenly across shards, which spreads the per-shard abort
// ratios far around their mean.
type ShardBenchConfig struct {
	Shards     []int   `json:"shards"`       // shard counts to sweep (default 1,2,4,8)
	Conns      int     `json:"conns"`        // pipelined client connections (default 16)
	Window     int     `json:"window"`       // requests in flight per connection (default 96)
	OpsPerConn int     `json:"ops_per_conn"` // fixed work per connection per run (default 6000)
	Keys       int     `json:"keys"`         // key-space size (default 2816)
	Skew       float64 `json:"skew"`         // key skew exponent (default 1 = uniform)
	Runs       int     `json:"runs"`         // measured runs per mode per point (default 5)

	Workers       int     `json:"workers"`        // server workers (default 8)
	Batch         int     `json:"batch"`          // server batch cap (default 48)
	Interleave    int     `json:"interleave"`     // forced interleaving (default 2)
	ProfileOps    int     `json:"profile_ops"`    // per-shard profiling slice size (default 4096)
	ProfileSlices int     `json:"profile_slices"` // slices per model (default 2)
	Tfactor       float64 `json:"tfactor"`        // guidance gate Tfactor (default 8)

	GuideTimeout time.Duration   `json:"-"`
	Workloads    []ShardWorkload `json:"-"`
	Progress     io.Writer       `json:"-"` // optional per-point progress lines
}

func (cfg ShardBenchConfig) normalize() ShardBenchConfig {
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1, 2, 4, 8}
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 16
	}
	if cfg.Window <= 1 {
		cfg.Window = 96
	}
	if cfg.OpsPerConn <= 0 {
		cfg.OpsPerConn = 6000
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 2816
	}
	if cfg.Skew < 1 {
		cfg.Skew = 1
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 5
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 48
	}
	if cfg.Interleave <= 0 {
		cfg.Interleave = 2
	}
	if cfg.ProfileOps <= 0 {
		cfg.ProfileOps = 4096
	}
	if cfg.ProfileSlices <= 0 {
		cfg.ProfileSlices = 2
	}
	if cfg.Tfactor <= 0 {
		cfg.Tfactor = 8
	}
	if cfg.GuideTimeout <= 0 {
		cfg.GuideTimeout = 120 * time.Second
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []ShardWorkload{
			{Name: "write-heavy"},                               // 100% Add
			{Name: "mixed", GetPct: 20, PutPct: 10, DelPct: 10}, // 60% Add
		}
	}
	return cfg
}

// ShardModeStats is one serving mode's aggregate over the measured runs
// at one shard count.
type ShardModeStats struct {
	ThroughputMedian float64   `json:"throughput_median_ops_per_s"`
	ThroughputRuns   []float64 `json:"throughput_runs_ops_per_s"`
	// AbortRatio is total aborts / total commits over the measured runs;
	// PerShardAbortRatio breaks the same totals down by shard.
	AbortRatio         float64   `json:"abort_ratio"`
	PerShardAbortRatio []float64 `json:"per_shard_abort_ratio"`
	AbortRatioMax      float64   `json:"per_shard_abort_ratio_max"`
	// ConnSpreadMeanPct is the aggregate completion-spread: the mean over
	// runs of the per-connection completion-time dispersion.
	ConnSpreadMeanPct float64 `json:"conn_spread_mean_pct"`
	// ShardSpreadPct is the per-shard completion-spread: the relative
	// dispersion of per-shard commit counts over the measured runs — how
	// evenly the hash split the work.
	ShardSpreadPct float64 `json:"shard_spread_pct"`
	AvgBatch       float64 `json:"avg_batch"`
}

// ShardPoint is one shard count's guided and unguided measurements.
type ShardPoint struct {
	Shards   int            `json:"shards"`
	Guided   ShardModeStats `json:"guided"`
	Unguided ShardModeStats `json:"unguided"`
}

// ShardWorkloadReport is one workload's full shard sweep.
type ShardWorkloadReport struct {
	Workload ShardWorkload `json:"workload"`
	Points   []ShardPoint  `json:"points"`
	// Speedup4x compares 4-shard to 1-shard median throughput (present
	// when both counts are in the sweep).
	GuidedSpeedup4x   float64 `json:"guided_speedup_4x,omitempty"`
	UnguidedSpeedup4x float64 `json:"unguided_speedup_4x,omitempty"`
}

// ShardBenchReport is the full sweep, written to BENCH_shard.json.
type ShardBenchReport struct {
	Description string                `json:"description"`
	Config      ShardBenchConfig      `json:"config"`
	Workloads   []ShardWorkloadReport `json:"workloads"`
}

// BenchShards sweeps shard counts × workloads against in-process servers.
// For each workload it boots every shard count's server up front, warms
// each in-regime until every shard is guided, then interleaves the
// measured rounds across shard counts (and, within a round, alternates
// unguided and guided). Interleaving is what makes the speedup ratios
// robust on noisy shared hardware: every shard count samples every
// machine-noise window, so a slow minute degrades all curves together
// instead of denting whichever point happened to be measuring.
func BenchShards(cfg ShardBenchConfig) (ShardBenchReport, error) {
	cfg = cfg.normalize()
	rep := ShardBenchReport{
		Description: "Shard sweep: aggregate throughput and abort-ratio curves per shard count, guided vs unguided, on pipelined fixed-work load. Rounds are interleaved across shard counts so every point samples the same machine-noise windows. Per-shard abort ratios come from per-shard commit/abort counter deltas around each run; throughput is the median over runs.",
		Config:      cfg,
	}
	for _, wl := range cfg.Workloads {
		wr, err := benchWorkload(cfg, wl)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", wl.Name, err)
		}
		rep.Workloads = append(rep.Workloads, wr)
	}
	return rep, nil
}

func findPoint(pts []ShardPoint, shards int) *ShardPoint {
	for i := range pts {
		if pts[i].Shards == shards {
			return &pts[i]
		}
	}
	return nil
}

// pointAcc accumulates one serving mode's counters at one shard count.
type pointAcc struct {
	tputs         []float64
	spread        []float64
	commits       []uint64 // per shard
	aborts        []uint64
	batches, bops uint64
}

// benchPoint is one live shard count under measurement.
type benchPoint struct {
	shards     int
	srv        *Server
	ctl        *Client
	load       LoadConfig
	uacc, gacc pointAcc
}

func (p *benchPoint) close() {
	if p.ctl != nil {
		p.ctl.Close()
	}
	if p.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_ = p.srv.Shutdown(ctx)
		cancel()
	}
}

// start boots the point's server and warms it in-regime: the profiling
// slices must see the batch compositions the measurement runs will
// produce, or the per-shard models describe the wrong workload.
func (p *benchPoint) start(cfg ShardBenchConfig, wl ShardWorkload) error {
	p.srv = New(Config{
		Shards:        p.shards,
		Workers:       cfg.Workers,
		Batch:         cfg.Batch,
		Buckets:       2 * cfg.Keys,
		Interleave:    cfg.Interleave,
		ProfileOps:    cfg.ProfileOps,
		ProfileSlices: cfg.ProfileSlices,
		Tfactor:       cfg.Tfactor,
		ForceGuidance: true,
	})
	if err := p.srv.Start(); err != nil {
		return err
	}
	p.load = LoadConfig{
		Addr:       p.srv.Addr().String(),
		Conns:      cfg.Conns,
		Window:     cfg.Window,
		OpsPerConn: cfg.OpsPerConn,
		Keys:       cfg.Keys,
		Skew:       cfg.Skew,
		GetPct:     wl.GetPct,
		PutPct:     wl.PutPct,
		DelPct:     wl.DelPct,
		Shards:     p.shards,
		Seed:       0xC0FFEE,
	}
	if p.load.GetPct+p.load.PutPct+p.load.DelPct == 0 {
		p.load.GetPct = -1 // sentinel defeat of normalize()'s default mix: keep 100% Add
	}
	var err error
	if p.ctl, err = Dial(p.load.Addr); err != nil {
		return err
	}
	p.uacc = pointAcc{commits: make([]uint64, p.shards), aborts: make([]uint64, p.shards)}
	p.gacc = pointAcc{commits: make([]uint64, p.shards), aborts: make([]uint64, p.shards)}

	deadline := time.Now().Add(cfg.GuideTimeout)
	for round := uint64(1); ; round++ {
		warm := p.load
		warm.OpsPerConn = cfg.OpsPerConn / 4
		warm.Seed = p.load.Seed + 1000*round
		if _, err := RunLoad(warm); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
		all := true
		for sh := uint64(0); sh < uint64(p.shards); sh++ {
			m, err := p.ctl.InfoArg(InfoShardMode, sh)
			if err != nil {
				return err
			}
			if ServingMode(m) != ModeGuided && ServingMode(m) != ModeDegraded {
				all = false
			}
		}
		if all {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shards never all guided within %v", cfg.GuideTimeout)
		}
	}
}

func (p *benchPoint) shardCounters() (c, a []uint64, err error) {
	c, a = make([]uint64, p.shards), make([]uint64, p.shards)
	for sh := uint64(0); sh < uint64(p.shards); sh++ {
		if c[sh], err = p.ctl.InfoArg(InfoShardCommits, sh); err != nil {
			return
		}
		if a[sh], err = p.ctl.InfoArg(InfoShardAborts, sh); err != nil {
			return
		}
	}
	return
}

// measure performs one fixed-work run, folding server counter deltas into
// the accumulator.
func (p *benchPoint) measure(a *pointAcc, seedOff uint64) error {
	c0, a0, err := p.shardCounters()
	if err != nil {
		return err
	}
	b0, err := p.ctl.Info(InfoBatches)
	if err != nil {
		return err
	}
	o0, err := p.ctl.Info(InfoBatchedOps)
	if err != nil {
		return err
	}
	lc := p.load
	lc.Seed = p.load.Seed + seedOff
	st, err := RunLoad(lc)
	if err != nil {
		return err
	}
	c1, a1, err := p.shardCounters()
	if err != nil {
		return err
	}
	b1, err := p.ctl.Info(InfoBatches)
	if err != nil {
		return err
	}
	o1, err := p.ctl.Info(InfoBatchedOps)
	if err != nil {
		return err
	}
	a.tputs = append(a.tputs, st.Throughput)
	a.spread = append(a.spread, st.ConnSpreadPct)
	for sh := 0; sh < p.shards; sh++ {
		a.commits[sh] += c1[sh] - c0[sh]
		a.aborts[sh] += a1[sh] - a0[sh]
	}
	a.batches += b1 - b0
	a.bops += o1 - o0
	return nil
}

func (p *benchPoint) finish(a pointAcc) ShardModeStats {
	ms := ShardModeStats{ThroughputRuns: a.tputs, ThroughputMedian: median(a.tputs)}
	var tc, ta uint64
	perCommit := make([]float64, p.shards)
	ms.PerShardAbortRatio = make([]float64, p.shards)
	for sh := 0; sh < p.shards; sh++ {
		tc += a.commits[sh]
		ta += a.aborts[sh]
		perCommit[sh] = float64(a.commits[sh])
		if a.commits[sh] > 0 {
			ms.PerShardAbortRatio[sh] = float64(a.aborts[sh]) / float64(a.commits[sh])
		}
		if ms.PerShardAbortRatio[sh] > ms.AbortRatioMax {
			ms.AbortRatioMax = ms.PerShardAbortRatio[sh]
		}
	}
	if tc > 0 {
		ms.AbortRatio = float64(ta) / float64(tc)
	}
	ms.ConnSpreadMeanPct = stats.Mean(a.spread)
	ms.ShardSpreadPct = 100 * stats.CoefficientOfVariation(perCommit)
	if a.batches > 0 {
		ms.AvgBatch = float64(a.bops) / float64(a.batches)
	}
	return ms
}

// benchWorkload measures one workload's full shard sweep with interleaved
// rounds.
func benchWorkload(cfg ShardBenchConfig, wl ShardWorkload) (ShardWorkloadReport, error) {
	wr := ShardWorkloadReport{Workload: wl}
	pts := make([]*benchPoint, len(cfg.Shards))
	defer func() {
		for _, p := range pts {
			if p != nil {
				p.close()
			}
		}
	}()
	for i, s := range cfg.Shards {
		pts[i] = &benchPoint{shards: s}
		if err := pts[i].start(cfg, wl); err != nil {
			return wr, fmt.Errorf("%d shards: %w", s, err)
		}
	}

	// Interleaved rounds: within a round every point runs unguided then
	// guided, so all 2×len(Shards) samples of a round share one noise
	// window.
	for r := uint64(0); r < uint64(cfg.Runs); r++ {
		for _, p := range pts {
			if err := p.ctl.Ctl(CtlModeUnguided, 0); err != nil {
				return wr, err
			}
			if err := p.measure(&p.uacc, 2*r); err != nil {
				return wr, fmt.Errorf("%d shards unguided run %d: %w", p.shards, r, err)
			}
			if err := p.ctl.Ctl(CtlModeGuided, 0); err != nil {
				return wr, err
			}
			if err := p.measure(&p.gacc, 2*r+1); err != nil {
				return wr, fmt.Errorf("%d shards guided run %d: %w", p.shards, r, err)
			}
		}
	}

	for _, p := range pts {
		pt := ShardPoint{Shards: p.shards, Unguided: p.finish(p.uacc), Guided: p.finish(p.gacc)}
		wr.Points = append(wr.Points, pt)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-11s shards=%d  guided %8.0f ops/s abort %.3f (max shard %.3f)  unguided %8.0f ops/s abort %.3f\n",
				wl.Name, pt.Shards, pt.Guided.ThroughputMedian, pt.Guided.AbortRatio, pt.Guided.AbortRatioMax,
				pt.Unguided.ThroughputMedian, pt.Unguided.AbortRatio)
		}
	}
	base, quad := findPoint(wr.Points, 1), findPoint(wr.Points, 4)
	if base != nil && quad != nil && base.Guided.ThroughputMedian > 0 {
		wr.GuidedSpeedup4x = quad.Guided.ThroughputMedian / base.Guided.ThroughputMedian
		wr.UnguidedSpeedup4x = quad.Unguided.ThroughputMedian / base.Unguided.ThroughputMedian
	}
	return wr, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
