package server

import (
	"time"

	"gstm/internal/obs"
)

// Asynchronous durability acknowledgment. A worker that commits a durable
// batch does not block until the batch's WAL records are flushed — it
// captures each touched shard's record seq, hands the batch to the
// server's acker goroutine, and immediately starts its next batch. The
// acker waits for the seqs per the durability mode, performs the
// post-commit accounting, and writes the client responses. Decoupling the
// wait from the worker lets group commit batch adaptively: while one
// flush is in flight the workers keep appending, so the next write(2)
// carries everything that accumulated, instead of each worker stalling
// for one flush cycle per batch.
//
// Reordering this introduces is invisible to clients: responses carry
// request IDs and per-connection ordering across workers was never
// guaranteed (requests round-robin over the pool).

// ackWait is one shard sub-transaction's durability obligation, with its
// post-ack accounting precomputed (nops operations, delta live-key
// adjustment). When spanned is set the sub-transaction's span rides along
// by value: the acker stamps its WAL-ack phase (the time the response was
// withheld for durability), finishes it with the terminal cause and hands
// it to the observatory. A cross-shard transaction produces one wait per
// participant shard but carries its single span on only one of them.
type ackWait struct {
	sh      int
	seq     uint64 // 0: commit carried no record; nothing to wait for
	span    obs.Span
	spanned bool
	nops    int
	delta   int64
}

// shardAll is the wildcard in ackItem.shardOf for an operation that spans
// every participant shard (a cross-shard OpTxn): any failed wait demotes
// it.
const shardAll int32 = -1

// ackItem is one durable batch in flight between its worker (or the txn
// coordinator) and the acker. tasks/results are copies (the producer
// reuses its own slices); shardOf[i] is task i's home shard — or shardAll
// for a cross-shard transaction — for mapping a failed shard's wait back
// onto exactly its operations; worker attributes the spans to the
// producer's observatory ring.
type ackItem struct {
	tasks   []task
	results []opResult
	shardOf []int32
	waits   []ackWait
	worker  int
}

func (s *Server) getAckItem(n int) *ackItem {
	v := s.ackPool.Get()
	if v == nil {
		v = &ackItem{}
	}
	it := v.(*ackItem)
	if cap(it.shardOf) < n {
		it.shardOf = make([]int32, n)
	}
	it.shardOf = it.shardOf[:n]
	it.tasks = it.tasks[:0]
	it.results = it.results[:0]
	it.waits = it.waits[:0]
	return it
}

// ackLoop is the server's single acker goroutine; it exits when s.acks
// closes (after every producer worker has stopped).
func (s *Server) ackLoop() {
	defer close(s.ackDone)
	var resp []byte
	for it := range s.acks {
		resp = s.finishDurable(it, resp)
	}
}

// finishDurable settles one durable batch: wait out each shard's
// obligation, demote a failed shard's operations to StatusUnavailable,
// account the survivors, write the responses, release the in-flight
// slots.
func (s *Server) finishDurable(it *ackItem, resp []byte) []byte {
	for wi := range it.waits {
		wt := &it.waits[wi]
		sp := &wt.span
		if !wt.spanned {
			sp = nil // secondary wait of a cross-shard txn: span rides elsewhere
		}
		if wt.seq > 0 {
			w0 := time.Now()
			if werr := s.wals[wt.sh].WaitAcked(wt.seq); werr != nil {
				// The commit executed in memory but its record never became
				// durable; the ack must not happen. (After a crash the replay
				// won't have it — exactly what StatusUnavailable promises.)
				sp.AddSince(obs.PhaseWALAck, obs.CauseWALUnavailable, 0, w0)
				sp.Finish(obs.CauseWALUnavailable, time.Now().UnixNano())
				if sp != nil {
					s.obs.Collect(it.worker, sp)
				}
				s.router.System(wt.sh).Telemetry().WALRefused(uint64(it.worker))
				for i := range it.tasks {
					if it.shardOf[i] == shardAll || int(it.shardOf[i]) == wt.sh {
						it.results[i] = opResult{status: StatusUnavailable}
					}
				}
				continue
			}
			sp.AddSince(obs.PhaseWALAck, obs.CauseNone, 0, w0)
		}
		sp.Finish(obs.CauseNone, time.Now().UnixNano())
		if sp != nil {
			s.obs.Collect(it.worker, sp)
		}
		if wt.delta != 0 {
			s.liveKeys.Add(wt.delta)
		}
		s.batches.Add(1)
		s.batchedOps.Add(uint64(wt.nops))
		s.lcs[wt.sh].noteOps(wt.nops)
	}

	// Same coalescing as the worker's inline path: consecutive
	// same-connection responses share one buffer and one syscall.
	i := 0
	for i < len(it.tasks) {
		c := it.tasks[i].c
		resp = resp[:0]
		j := i
		for j < len(it.tasks) && it.tasks[j].c == c {
			resp = AppendResponse(resp, Response{
				ID:     it.tasks[j].req.ID,
				Status: it.results[j].status,
				Value:  it.results[j].value,
			})
			j++
		}
		c.writeFrames(resp)
		i = j
	}
	for range it.tasks {
		s.inflight.Done()
	}
	s.ackPool.Put(it)
	return resp
}

// stopAcker closes the hand-off channel (all workers must have exited)
// and waits for the acker to drain. Safe to call multiple times and with
// durability off.
func (s *Server) stopAcker() {
	if s.acks == nil {
		return
	}
	s.ackOnce.Do(func() { close(s.acks) })
	<-s.ackDone
}
