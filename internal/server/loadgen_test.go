package server

import (
	"testing"
	"time"
)

// TestRunLoadFixedWork: every connection performs exactly OpsPerConn
// operations and the run reports the per-connection spread.
func TestRunLoadFixedWork(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Unguided: true})
	st, err := RunLoad(LoadConfig{
		Addr:       s.Addr().String(),
		Conns:      4,
		OpsPerConn: 100,
		Keys:       32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != 400 {
		t.Fatalf("ops = %d, want exactly 4x100", st.Ops)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d", st.Errors)
	}
	if st.P50us <= 0 || st.Throughput <= 0 {
		t.Fatalf("missing latency/throughput: %+v", st)
	}
}

// TestBenchModesEndToEnd drives the whole comparison pipeline against a
// small server: warmup through the lifecycle flip, then alternating
// unguided/guided pairs via CtlModeGuided, producing a complete report.
func TestBenchModesEndToEnd(t *testing.T) {
	s := startServer(t, Config{
		Workers:       2,
		ProfileOps:    64,
		ProfileSlices: 2,
		ForceGuidance: true,
	})
	rep, err := BenchModes(BenchConfig{
		Load: LoadConfig{
			Addr:       s.Addr().String(),
			Conns:      4,
			OpsPerConn: 200,
			Keys:       32,
		},
		Runs:         2,
		GuideTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GuidedMode != "guided" && rep.GuidedMode != "degraded" {
		t.Fatalf("guided mode = %q", rep.GuidedMode)
	}
	if len(rep.Unguided.Runs) != 2 || len(rep.Guided.Runs) != 2 {
		t.Fatalf("runs: unguided %d guided %d, want 2 each", len(rep.Unguided.Runs), len(rep.Guided.Runs))
	}
	for _, m := range []ModeReport{rep.Unguided, rep.Guided} {
		if m.Commits == 0 {
			t.Fatalf("%s: no commits recorded", m.Mode)
		}
		for _, r := range m.Runs {
			if r.Ops != 800 {
				t.Fatalf("%s: run ops = %d, want 4x200", m.Mode, r.Ops)
			}
		}
	}
	// The unguided side of each pair must actually have served unguided,
	// and the guided side guided: guided execution gates transactions, so
	// gate decisions accumulate only there.
	if passed, held, _ := s.System().GateStats(); passed+held == 0 {
		t.Fatal("no gate activity recorded during guided runs")
	}
}

// TestCtlModeGuidedBeforeTraining: re-installing a model before one was
// ever trained must fail cleanly with StatusUnguidable.
func TestCtlModeGuidedBeforeTraining(t *testing.T) {
	s := startServer(t, Config{Workers: 2, Unguided: true})
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, _, err := cl.Do(OpCtl, uint64(CtlModeGuided), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st != StatusUnguidable {
		t.Fatalf("status = %d, want StatusUnguidable", st)
	}
	if mode, err := cl.Info(InfoMode); err != nil || ServingMode(mode) != ModeUnguided {
		t.Fatalf("mode = %v (err %v), want unguided", ServingMode(mode), err)
	}
}
