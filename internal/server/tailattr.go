package server

// Client-side tail attribution: gstm-loadgen scrapes the variance
// observatory's aggregation (/debug/trace?format=agg) before and after a
// measured run, diffs the raw bucket counts, and renders a per-shard
// per-phase latency table. Diffing snapshots makes the table run-local —
// it attributes only the time the run itself spent, even against a server
// that has been up for hours.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"gstm/internal/obs"
)

// TraceAgg aliases the observatory's aggregation snapshot for callers
// (gstm-loadgen) that hold scrapes without importing internal/obs.
type TraceAgg = obs.AggSnapshot

// FetchTraceAgg scrapes /debug/trace?format=agg from the telemetry
// endpoint at addr (host:port, no scheme).
func FetchTraceAgg(addr string) (obs.AggSnapshot, error) {
	var out obs.AggSnapshot
	resp, err := http.Get("http://" + addr + "/debug/trace?format=agg")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("trace agg scrape: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// DiffTraceAgg subtracts an earlier aggregation scrape from a later one,
// shard by shard and phase by phase, yielding the counts accumulated
// between the two.
func DiffTraceAgg(cur, prev obs.AggSnapshot) obs.AggSnapshot {
	prevAt := make(map[int]obs.ShardAggSnapshot, len(prev.Shards))
	for _, sh := range prev.Shards {
		prevAt[sh.Shard] = sh
	}
	out := obs.AggSnapshot{Shards: make([]obs.ShardAggSnapshot, 0, len(cur.Shards))}
	for _, sh := range cur.Shards {
		p := prevAt[sh.Shard]
		d := obs.ShardAggSnapshot{
			Shard:  sh.Shard,
			Phases: make(map[string]obs.HistCounts, len(sh.Phases)),
			Total:  sh.Total.Sub(p.Total),
		}
		for name, hc := range sh.Phases {
			if dc := hc.Sub(p.Phases[name]); dc.Count > 0 {
				d.Phases[name] = dc
			}
		}
		out.Shards = append(out.Shards, d)
	}
	return out
}

// FormatTailTable renders a per-shard per-phase tail-attribution table
// (count, p50/p99/p99.9, mean) from an aggregation snapshot — typically a
// DiffTraceAgg of two scrapes around one run. Phases print in request
// order, with the whole-span total last.
func FormatTailTable(a obs.AggSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s  %-8s  %10s  %9s  %9s  %9s  %9s\n",
		"shard", "phase", "count", "p50", "p99", "p99.9", "mean")
	shards := append([]obs.ShardAggSnapshot(nil), a.Shards...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].Shard < shards[j].Shard })
	row := func(shard int, name string, hc obs.HistCounts) {
		fmt.Fprintf(&b, "%5d  %-8s  %10d  %9s  %9s  %9s  %9s\n",
			shard, name, hc.Count,
			fmtNs(hc.Quantile(0.50)), fmtNs(hc.Quantile(0.99)),
			fmtNs(hc.Quantile(0.999)), fmtNs(hc.MeanNs()))
	}
	for _, sh := range shards {
		for ph := 0; ph < int(obs.NumPhases); ph++ {
			name := obs.PhaseName(ph)
			if hc, ok := sh.Phases[name]; ok && hc.Count > 0 {
				row(sh.Shard, name, hc)
			}
		}
		if sh.Total.Count > 0 {
			row(sh.Shard, "total", sh.Total)
		}
	}
	return b.String()
}

// fmtNs renders a nanosecond quantile compactly (µs/ms resolution).
func fmtNs(ns uint64) string {
	d := time.Duration(ns)
	switch {
	case d == 0:
		return "-"
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d)/1e3)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
